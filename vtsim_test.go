package vtsim

import (
	"strings"
	"testing"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	cfg := SmallConfig()
	w, err := BuildWorkload("vecadd", 1)
	if err != nil {
		t.Fatal(err)
	}
	w.Launch.GridDim.X = 16
	res, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.IPC() <= 0 {
		t.Fatal("empty result")
	}
}

func TestPublicVTRun(t *testing.T) {
	cfg := SmallConfig().WithPolicy(PolicyVT)
	w, err := BuildWorkload("nw", 1)
	if err != nil {
		t.Fatal(err)
	}
	w.Launch.GridDim.X = 32
	var events int
	res, err := RunTraced(w, cfg, func(TraceEvent) { events++ })
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != PolicyVT {
		t.Fatalf("policy = %v", res.Policy)
	}
	if events == 0 {
		t.Fatal("no trace events from VT run")
	}
}

func TestPublicWorkloadNames(t *testing.T) {
	names := WorkloadNames()
	if len(names) != 22 {
		t.Fatalf("suite = %d workloads", len(names))
	}
	if len(Suite(1)) != 22 {
		t.Fatal("Suite size mismatch")
	}
}

func TestPublicExperiments(t *testing.T) {
	if len(Experiments()) != 19 {
		t.Fatalf("experiments = %d", len(Experiments()))
	}
	var sb strings.Builder
	if err := RunExperiment("table1-config", DefaultExperimentParams(), &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "register file") {
		t.Fatal("config table missing content")
	}
	if err := RunExperiment("bogus", DefaultExperimentParams(), &sb); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestPublicRunLaunchKeepsBacking(t *testing.T) {
	w, err := BuildWorkload("vecadd", 1)
	if err != nil {
		t.Fatal(err)
	}
	w.Launch.GridDim.X = 8
	var kept *Backing
	_, err = RunLaunch(w.Launch, SmallConfig(), w.Init, func(b *Backing) { kept = b })
	if err != nil {
		t.Fatal(err)
	}
	if kept == nil {
		t.Fatal("backing not returned")
	}
}

func TestPublicRunConcurrent(t *testing.T) {
	cfg := SmallConfig().WithPolicy(PolicyVT)
	res, err := RunConcurrentNames([]string{"nw", "montecarlo"}, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerKernel) != 2 {
		t.Fatalf("PerKernel = %+v", res.PerKernel)
	}
	if res.PerKernel[0].Issued == 0 || res.PerKernel[1].Issued == 0 {
		t.Fatal("both kernels must issue")
	}
}
