// Package energy provides a first-order analytic energy model over the
// simulator's event counts, in the style of GPUWattch/McPAT estimates: a
// per-event dynamic energy for each microarchitectural activity plus
// leakage proportional to execution time. The paper argues Virtual Thread
// is cheap in hardware; this model quantifies the consequence — the same
// work finishing in fewer cycles burns less static energy, while swap
// traffic adds a (tiny) dynamic term.
//
// Absolute joules are ballpark 40 nm-class constants; only relative
// comparisons between policies on the same workload are meaningful, which
// is how the table-energy experiment uses them.
package energy

import (
	"repro/internal/config"
	"repro/internal/gpu"
)

// Model holds per-event dynamic energies (picojoules) and static power
// (watts per SM).
type Model struct {
	ALUOpPJ      float64 // per thread ALU instruction
	SFUOpPJ      float64 // per thread SFU instruction
	RFAccessPJ   float64 // per operand read/write per thread
	SMemPJ       float64 // per shared-memory warp access
	L1PJ         float64 // per L1 transaction
	L2PJ         float64 // per L2 transaction
	DRAMPJ       float64 // per DRAM burst
	SwapBytePJ   float64 // per context byte moved by a VT swap
	StaticWPerSM float64 // leakage + clock tree per SM
	CoreClockHz  float64
}

// Default returns 40 nm-class constants (Fermi generation).
func Default() Model {
	return Model{
		ALUOpPJ:      10,
		SFUOpPJ:      40,
		RFAccessPJ:   4,
		SMemPJ:       110,
		L1PJ:         180,
		L2PJ:         400,
		DRAMPJ:       8000,
		SwapBytePJ:   2,
		StaticWPerSM: 1.2,
		CoreClockHz:  700e6,
	}
}

// Breakdown is the estimated energy of one simulation, in millijoules.
type Breakdown struct {
	ALU    float64
	SFU    float64
	RF     float64
	SMem   float64
	L1     float64
	L2     float64
	DRAM   float64
	Swap   float64
	Static float64
}

// Dynamic returns the total dynamic energy (mJ).
func (b Breakdown) Dynamic() float64 {
	return b.ALU + b.SFU + b.RF + b.SMem + b.L1 + b.L2 + b.DRAM + b.Swap
}

// Total returns dynamic + static energy (mJ).
func (b Breakdown) Total() float64 { return b.Dynamic() + b.Static }

// Estimate computes the energy breakdown for a simulation result.
func (m Model) Estimate(res *gpu.Result, cfg *config.GPUConfig) Breakdown {
	const pJtomJ = 1e-9
	threadALU := float64(res.SM.ThreadInstrs - res.SM.SFUIssued*int64(cfg.WarpSize))
	if threadALU < 0 {
		threadALU = 0
	}
	threadSFU := float64(res.SM.SFUIssued * int64(cfg.WarpSize))
	// ~3 register-file operand accesses per thread instruction.
	rfAccesses := 3 * float64(res.SM.ThreadInstrs)

	var b Breakdown
	b.ALU = threadALU * m.ALUOpPJ * pJtomJ
	b.SFU = threadSFU * m.SFUOpPJ * pJtomJ
	b.RF = rfAccesses * m.RFAccessPJ * pJtomJ
	b.SMem = float64(res.SM.SMemAccesses) * m.SMemPJ * pJtomJ
	b.L1 = float64(res.Mem.L1Accesses) * m.L1PJ * pJtomJ
	b.L2 = float64(res.Mem.L2Accesses) * m.L2PJ * pJtomJ
	b.DRAM = float64(res.Mem.DRAMReads+res.Mem.DRAMWrites) * m.DRAMPJ * pJtomJ
	// Swap traffic: both directions move roughly the peak per-CTA context.
	swapBytes := float64(res.VT.SwapsOut+res.VT.SwapsIn) * avgCtxBytes(res)
	b.Swap = swapBytes * m.SwapBytePJ * pJtomJ

	seconds := float64(res.Cycles) / m.CoreClockHz
	b.Static = m.StaticWPerSM * float64(cfg.NumSMs) * seconds * 1e3 // W*s -> mJ
	return b
}

// avgCtxBytes approximates the context footprint per swap from the
// occupancy footprint: warps x depth-1 context.
func avgCtxBytes(res *gpu.Result) float64 {
	return float64(res.Occupancy.Footprint.Warps * 92)
}

// EDP returns the energy-delay product (mJ x Mcycles) for ranking designs.
func EDP(b Breakdown, cycles int64) float64 {
	return b.Total() * float64(cycles) / 1e6
}
