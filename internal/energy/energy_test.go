package energy

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cta"
	"repro/internal/gpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sm"
)

func fakeResult() *gpu.Result {
	return &gpu.Result{
		Cycles: 1_000_000,
		SM: sm.Stats{
			ThreadInstrs: 32_000_000,
			SFUIssued:    10_000,
			SMemAccesses: 50_000,
		},
		Mem: mem.Stats{
			L1Accesses: 200_000,
			L2Accesses: 100_000,
			DRAMReads:  40_000,
			DRAMWrites: 10_000,
		},
		VT: core.Stats{SwapsOut: 1000, SwapsIn: 1000},
		Occupancy: cta.Occupancy{
			Footprint: cta.Footprint{Warps: 2},
		},
	}
}

func TestEstimatePositiveAndComposable(t *testing.T) {
	cfg := config.GTX480()
	m := Default()
	b := m.Estimate(fakeResult(), &cfg)
	parts := []float64{b.ALU, b.SFU, b.RF, b.SMem, b.L1, b.L2, b.DRAM, b.Swap, b.Static}
	sum := 0.0
	for i, p := range parts {
		if p < 0 {
			t.Fatalf("component %d negative: %v", i, p)
		}
		sum += p
	}
	if b.Total() <= 0 {
		t.Fatal("total energy must be positive")
	}
	if diff := b.Total() - sum; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("Total() != sum of parts: %v vs %v", b.Total(), sum)
	}
	if b.Dynamic() >= b.Total() {
		t.Fatal("static component missing")
	}
}

func TestFewerCyclesLessStatic(t *testing.T) {
	cfg := config.GTX480()
	m := Default()
	fast := fakeResult()
	slow := fakeResult()
	slow.Cycles *= 2
	bf := m.Estimate(fast, &cfg)
	bs := m.Estimate(slow, &cfg)
	if bs.Static <= bf.Static {
		t.Fatal("more cycles must burn more static energy")
	}
	if bs.Dynamic() != bf.Dynamic() {
		t.Fatal("same work must have same dynamic energy")
	}
	if EDP(bs, slow.Cycles) <= EDP(bf, fast.Cycles) {
		t.Fatal("EDP must penalize the slower run")
	}
}

func TestSwapEnergyCounted(t *testing.T) {
	cfg := config.GTX480()
	m := Default()
	with := fakeResult()
	without := fakeResult()
	without.VT = core.Stats{}
	bw := m.Estimate(with, &cfg)
	bo := m.Estimate(without, &cfg)
	if bw.Swap <= bo.Swap {
		t.Fatal("swaps must add energy")
	}
	if bo.Swap != 0 {
		t.Fatal("no swaps, no swap energy")
	}
}

func TestEstimateOnRealSimulation(t *testing.T) {
	// End-to-end: VT's total energy on a scheduling-limited workload must
	// not exceed baseline's by much (it should typically be lower thanks
	// to static savings).
	b := isa.NewBuilder("e")
	b.S2R(0, isa.SrCTAIdX)
	b.ShlImm(1, 0, 7)
	b.MovImm(4, 0)
	b.MovImm(5, 0)
	b.Label("l")
	b.LdParam(6, 0)
	b.IAdd(7, 6, 1)
	b.LdG(8, 7, 0)
	b.IAdd(4, 4, 8)
	b.IAddImm(1, 1, 128*512+128)
	b.AndImm(1, 1, 0x3FFFF)
	b.IAddImm(5, 5, 1)
	b.SetpImm(9, isa.CmpILT, 5, 10)
	b.Bra(9, "l", "d")
	b.Label("d")
	b.Exit()
	mk := func() *isa.Launch {
		return &isa.Launch{Kernel: b.MustBuild(), GridDim: isa.Dim1(64),
			BlockDim: isa.Dim1(64), Params: []uint32{0x100000}}
	}
	base, err := gpu.Run(mk(), config.Small(), gpu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	vt, err := gpu.Run(mk(), config.Small().WithPolicy(config.PolicyVT), gpu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Small()
	m := Default()
	be := m.Estimate(base, &cfg)
	ve := m.Estimate(vt, &cfg)
	if ve.Total() > be.Total()*1.1 {
		t.Fatalf("VT energy %.3f mJ far exceeds baseline %.3f mJ", ve.Total(), be.Total())
	}
}
