package cta

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/isa"
)

func launchWith(t *testing.T, regs, smem, block, grid int) *isa.Launch {
	t.Helper()
	b := isa.NewBuilder("k").ReserveRegs(regs).SharedMem(smem)
	b.Nop().Exit()
	k := b.MustBuild()
	return &isa.Launch{Kernel: k, GridDim: isa.Dim1(grid), BlockDim: isa.Dim1(block)}
}

func TestFootprintRounding(t *testing.T) {
	cfg := config.GTX480()
	l := launchWith(t, 10, 100, 96, 1000)
	fp := ComputeFootprint(l, &cfg)
	if fp.Threads != 96 || fp.Warps != 3 {
		t.Fatalf("threads/warps = %d/%d", fp.Threads, fp.Warps)
	}
	// 10 regs x 32 lanes = 320, rounded to 64-granularity = 320; x3 warps.
	if fp.Regs != 3*320 {
		t.Errorf("regs = %d, want 960", fp.Regs)
	}
	// 100 B rounded to 128.
	if fp.SMem != 128 {
		t.Errorf("smem = %d, want 128", fp.SMem)
	}
}

func TestFootprintOddRegs(t *testing.T) {
	cfg := config.GTX480()
	l := launchWith(t, 9, 0, 32, 1)
	fp := ComputeFootprint(l, &cfg)
	// 9 x 32 = 288, rounded up to 320.
	if fp.Regs != 320 {
		t.Errorf("regs = %d, want 320", fp.Regs)
	}
	if fp.SMem != 0 {
		t.Errorf("smem = %d, want 0", fp.SMem)
	}
}

func TestOccupancySchedulingLimited(t *testing.T) {
	cfg := config.GTX480()
	// Tiny CTAs (64 threads, few regs): CTA-slot limited like the
	// paper's motivating workloads.
	l := launchWith(t, 12, 0, 64, 10000)
	o := ComputeOccupancy(l, &cfg)
	if o.Limiter != LimitCTASlots {
		t.Fatalf("limiter = %v, want cta-slots", o.Limiter)
	}
	if o.CTAs != 8 {
		t.Fatalf("CTAs = %d, want 8", o.CTAs)
	}
	if !o.SchedulingLimited() {
		t.Fatal("must be scheduling limited")
	}
	if o.CapacityCTAs <= o.CTAs {
		t.Fatalf("capacity CTAs %d must exceed scheduling CTAs %d", o.CapacityCTAs, o.CTAs)
	}
}

func TestOccupancyWarpLimited(t *testing.T) {
	cfg := config.GTX480()
	// 256-thread CTAs, light resources: 48 warps / 8 warps-per-CTA = 6 CTAs.
	l := launchWith(t, 8, 0, 256, 10000)
	o := ComputeOccupancy(l, &cfg)
	if o.Limiter != LimitWarpSlots && o.Limiter != LimitThreads {
		t.Fatalf("limiter = %v, want warp/thread slots", o.Limiter)
	}
	if o.CTAs != 6 {
		t.Fatalf("CTAs = %d, want 6", o.CTAs)
	}
	if !o.SchedulingLimited() {
		t.Fatal("must be scheduling limited")
	}
}

func TestOccupancyRegisterLimited(t *testing.T) {
	cfg := config.GTX480()
	// 63 regs x 256 threads: 63x32=2016 -> 2048/warp x 8 warps = 16384
	// regs per CTA; 32768/16384 = 2 CTAs.
	l := launchWith(t, 63, 0, 256, 10000)
	o := ComputeOccupancy(l, &cfg)
	if o.Limiter != LimitRegisters {
		t.Fatalf("limiter = %v, want registers", o.Limiter)
	}
	if o.CTAs != 2 {
		t.Fatalf("CTAs = %d, want 2", o.CTAs)
	}
	if o.SchedulingLimited() {
		t.Fatal("register-limited launch is capacity limited")
	}
}

func TestOccupancySharedMemLimited(t *testing.T) {
	cfg := config.GTX480()
	// 16 KB of shared memory per CTA: 48/16 = 3 CTAs.
	l := launchWith(t, 8, 16*1024, 64, 10000)
	o := ComputeOccupancy(l, &cfg)
	if o.Limiter != LimitSharedMem {
		t.Fatalf("limiter = %v, want shared-mem", o.Limiter)
	}
	if o.CTAs != 3 {
		t.Fatalf("CTAs = %d, want 3", o.CTAs)
	}
	if o.SchedulingLimited() {
		t.Fatal("smem-limited launch is capacity limited")
	}
}

func TestOccupancyGridLimited(t *testing.T) {
	cfg := config.GTX480()
	l := launchWith(t, 8, 0, 64, 15) // one CTA per SM
	o := ComputeOccupancy(l, &cfg)
	if o.Limiter != LimitGrid {
		t.Fatalf("limiter = %v, want grid", o.Limiter)
	}
	if o.CTAs != 1 {
		t.Fatalf("CTAs = %d, want 1", o.CTAs)
	}
}

func TestLimiterNames(t *testing.T) {
	for l, want := range map[Limiter]string{
		LimitCTASlots:  "cta-slots",
		LimitWarpSlots: "warp-slots",
		LimitThreads:   "threads",
		LimitRegisters: "registers",
		LimitSharedMem: "shared-mem",
		LimitGrid:      "grid",
	} {
		if l.String() != want {
			t.Errorf("%v != %q", l, want)
		}
	}
	if !LimitCTASlots.IsScheduling() || !LimitWarpSlots.IsScheduling() ||
		!LimitThreads.IsScheduling() {
		t.Error("scheduling limiters misclassified")
	}
	if LimitRegisters.IsScheduling() || LimitSharedMem.IsScheduling() {
		t.Error("capacity limiters misclassified")
	}
}

func TestGridDispenser(t *testing.T) {
	cfg := config.GTX480()
	l := launchWith(t, 4, 0, 64, 5)
	g := NewGrid(l, &cfg)
	if g.Total() != 5 || g.Remaining() != 5 {
		t.Fatalf("total/remaining = %d/%d", g.Total(), g.Remaining())
	}
	fp := g.Footprint()
	for i := 0; i < 5; i++ {
		c := g.Next(nil)
		if c == nil {
			t.Fatalf("Next returned nil at %d", i)
		}
		if c.FlatID != i {
			t.Fatalf("FlatID = %d, want %d", c.FlatID, i)
		}
		if c.RegsAlloc != fp.Regs || c.SMemAlloc != fp.SMem || c.Threads != fp.Threads {
			t.Fatalf("CTA footprint not stamped: %+v vs %+v", c, fp)
		}
	}
	if g.Next(nil) != nil {
		t.Fatal("exhausted grid must return nil")
	}
	if g.Remaining() != 0 {
		t.Fatalf("remaining = %d", g.Remaining())
	}
}

func TestGridFitCallback(t *testing.T) {
	cfg := config.GTX480()
	l := launchWith(t, 4, 0, 64, 3)
	g := NewGrid(l, &cfg)
	// A rejecting fit must not consume the CTA.
	if c := g.Next(func(regs, smem, warps, threads int) bool { return false }); c != nil {
		t.Fatal("rejected CTA was dispensed")
	}
	if g.Remaining() != 3 {
		t.Fatalf("rejection consumed a CTA: remaining = %d", g.Remaining())
	}
	if c := g.Next(func(regs, smem, warps, threads int) bool { return true }); c == nil {
		t.Fatal("accepting fit must dispense")
	}
}

func TestMultiGridRoundRobin(t *testing.T) {
	cfg := config.GTX480()
	a := launchWith(t, 4, 0, 64, 2)
	b := launchWith(t, 4, 0, 64, 2)
	m := NewMultiGrid([]*isa.Launch{a, b}, &cfg)
	if m.Remaining() != 4 {
		t.Fatalf("remaining = %d", m.Remaining())
	}
	var kernels []int
	for {
		c := m.Next(nil)
		if c == nil {
			break
		}
		kernels = append(kernels, c.KernelID)
	}
	want := []int{0, 1, 0, 1}
	if len(kernels) != len(want) {
		t.Fatalf("dispensed %v", kernels)
	}
	for i := range want {
		if kernels[i] != want[i] {
			t.Fatalf("round robin order = %v, want %v", kernels, want)
		}
	}
}

func TestMultiGridSkipsNonFitting(t *testing.T) {
	cfg := config.GTX480()
	small := launchWith(t, 4, 0, 32, 2) // tiny CTAs
	big := launchWith(t, 40, 0, 512, 2) // huge CTAs
	m := NewMultiGrid([]*isa.Launch{big, small}, &cfg)
	onlySmall := func(regs, smem, warps, threads int) bool { return threads <= 32 }
	c := m.Next(onlySmall)
	if c == nil || c.KernelID != 1 {
		t.Fatalf("expected the small kernel's CTA, got %+v", c)
	}
}

// Property: occupancy respects every individual bound, and capacity CTAs
// always >= realized CTAs when not grid limited.
func TestOccupancyBoundsProperty(t *testing.T) {
	cfg := config.GTX480()
	f := func(regs8, smemKB, blockW uint8) bool {
		regs := int(regs8%60) + 1
		smem := int(smemKB%48) * 1024
		block := (int(blockW%16) + 1) * 32
		b := isa.NewBuilder("q").ReserveRegs(regs).SharedMem(smem)
		b.Nop().Exit()
		k := b.MustBuild()
		l := &isa.Launch{Kernel: k, GridDim: isa.Dim1(100000), BlockDim: isa.Dim1(block)}
		o := ComputeOccupancy(l, &cfg)
		fp := o.Footprint
		if o.CTAs <= 0 {
			// Zero occupancy only if a single CTA exceeds capacity.
			return fp.Regs > cfg.RegFileSize || fp.SMem > cfg.SharedMemPerSM ||
				fp.Warps > cfg.MaxWarpsPerSM || fp.Threads > cfg.MaxThreadsPerSM
		}
		ok := o.CTAs <= cfg.MaxCTAsPerSM &&
			o.CTAs*fp.Warps <= cfg.MaxWarpsPerSM &&
			o.CTAs*fp.Threads <= cfg.MaxThreadsPerSM &&
			o.CTAs*fp.Regs <= cfg.RegFileSize &&
			o.CTAs*fp.SMem <= cfg.SharedMemPerSM
		return ok && o.CapacityCTAs >= o.CTAs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
