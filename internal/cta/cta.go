// Package cta models the CTA-level view of a kernel launch: the static
// resource footprint a CTA occupies on an SM, the occupancy calculation
// that determines how many CTAs fit under each hardware constraint (and
// which constraint binds — the paper's motivating analysis), and the grid
// dispenser that hands out CTA instances to SMs in launch order.
package cta

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/warp"
)

// Footprint is the per-CTA resource demand on an SM, after allocation
// -granularity rounding.
type Footprint struct {
	Threads int // threads per CTA
	Warps   int // warp slots per CTA
	Regs    int // SM registers (granular)
	SMem    int // SM shared-memory bytes (granular)
}

// ComputeFootprint returns the rounded per-CTA resource demand of a launch
// on the configured hardware.
func ComputeFootprint(l *isa.Launch, cfg *config.GPUConfig) Footprint {
	threads := l.BlockDim.Size()
	warps := l.WarpsPerCTA(cfg.WarpSize)
	regsPerWarp := roundUp(l.Kernel.NumRegs*cfg.WarpSize, cfg.RegAllocUnit)
	smem := roundUp(l.Kernel.SMemBytes, cfg.SMemAllocUnit)
	return Footprint{
		Threads: threads,
		Warps:   warps,
		Regs:    warps * regsPerWarp,
		SMem:    smem,
	}
}

func roundUp(v, unit int) int {
	if unit <= 0 || v == 0 {
		return v
	}
	return (v + unit - 1) / unit * unit
}

// Limiter names the hardware constraint that binds a launch's occupancy.
type Limiter int

// Occupancy limiters, in the order they are checked.
const (
	LimitCTASlots  Limiter = iota // scheduling: CTA slots (PCs, barrier units)
	LimitWarpSlots                // scheduling: warp slots (SIMT stacks)
	LimitThreads                  // scheduling: thread slots
	LimitRegisters                // capacity: register file
	LimitSharedMem                // capacity: shared memory
	LimitGrid                     // grid smaller than hardware concurrency
)

// String names the limiter.
func (l Limiter) String() string {
	switch l {
	case LimitCTASlots:
		return "cta-slots"
	case LimitWarpSlots:
		return "warp-slots"
	case LimitThreads:
		return "threads"
	case LimitRegisters:
		return "registers"
	case LimitSharedMem:
		return "shared-mem"
	case LimitGrid:
		return "grid"
	default:
		return fmt.Sprintf("limiter(%d)", int(l))
	}
}

// IsScheduling reports whether the limiter is a scheduling structure (the
// kind Virtual Thread virtualizes) rather than a capacity resource.
func (l Limiter) IsScheduling() bool {
	return l == LimitCTASlots || l == LimitWarpSlots || l == LimitThreads
}

// Occupancy is the static concurrency analysis of a launch on an SM.
type Occupancy struct {
	Footprint Footprint

	// Maximum resident CTAs under each constraint in isolation.
	ByCTASlots int
	ByWarps    int
	ByThreads  int
	ByRegs     int
	BySMem     int

	// CTAs is the realized CTAs per SM (the minimum) and Limiter the
	// first constraint achieving it.
	CTAs    int
	Limiter Limiter

	// CapacityCTAs is the resident-CTA count when only capacity
	// (registers + shared memory) binds — what Virtual Thread can keep
	// resident per SM.
	CapacityCTAs int
}

// SchedulingLimited reports whether a scheduling structure binds before
// capacity, i.e. whether VT has headroom on this launch.
func (o Occupancy) SchedulingLimited() bool {
	return o.Limiter.IsScheduling() && o.CapacityCTAs > o.CTAs
}

// ComputeOccupancy performs the occupancy analysis of a launch against the
// configuration's *baseline* limits (policy-independent).
func ComputeOccupancy(l *isa.Launch, cfg *config.GPUConfig) Occupancy {
	fp := ComputeFootprint(l, cfg)
	o := Occupancy{Footprint: fp}
	o.ByCTASlots = cfg.MaxCTAsPerSM
	o.ByWarps = cfg.MaxWarpsPerSM / fp.Warps
	o.ByThreads = cfg.MaxThreadsPerSM / fp.Threads
	o.ByRegs = cfg.RegFileSize / maxInt(fp.Regs, 1)
	if fp.SMem == 0 {
		o.BySMem = cfg.MaxCTAsPerSM * 1024 // effectively unlimited
	} else {
		o.BySMem = cfg.SharedMemPerSM / fp.SMem
	}

	o.CTAs = o.ByCTASlots
	o.Limiter = LimitCTASlots
	for _, c := range []struct {
		n   int
		lim Limiter
	}{
		{o.ByWarps, LimitWarpSlots},
		{o.ByThreads, LimitThreads},
		{o.ByRegs, LimitRegisters},
		{o.BySMem, LimitSharedMem},
	} {
		if c.n < o.CTAs {
			o.CTAs = c.n
			o.Limiter = c.lim
		}
	}

	o.CapacityCTAs = minInt(o.ByRegs, o.BySMem)

	// A grid smaller than the hardware's aggregate concurrency is its
	// own limiter.
	perSM := (l.GridDim.Size() + cfg.NumSMs - 1) / cfg.NumSMs
	if perSM < o.CTAs {
		o.CTAs = perSM
		o.Limiter = LimitGrid
	}
	return o
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Source dispenses CTA instances to SMs. Next must only instantiate (and
// consume) a CTA whose footprint the fit callback accepts, so controllers
// can express their admission constraints without peeking at internals.
type Source interface {
	// Next returns the next CTA whose (regs, smem, warps, threads)
	// footprint satisfies fit, or nil if none is available right now.
	Next(fit func(regs, smem, warps, threads int) bool) *warp.CTA
	// Remaining returns the number of CTAs not yet dispensed.
	Remaining() int
}

// Grid dispenses CTA instances of one launch in flat-index order, stamping
// each with its resource footprint.
type Grid struct {
	launch   *isa.Launch
	warpSize int
	kernelID int
	fp       Footprint
	next     int
	total    int
}

// NewGrid returns a dispenser over all CTAs of the launch.
func NewGrid(l *isa.Launch, cfg *config.GPUConfig) *Grid {
	return &Grid{
		launch:   l,
		warpSize: cfg.WarpSize,
		fp:       ComputeFootprint(l, cfg),
		total:    l.GridDim.Size(),
	}
}

// SetKernelID tags dispensed CTAs with the launch's index in a
// multi-kernel run.
func (g *Grid) SetKernelID(id int) { g.kernelID = id }

// Footprint returns the per-CTA resource demand of this grid's launch.
func (g *Grid) Footprint() Footprint { return g.fp }

// Remaining returns the number of CTAs not yet dispensed.
func (g *Grid) Remaining() int { return g.total - g.next }

// Total returns the grid size in CTAs.
func (g *Grid) Total() int { return g.total }

// Next instantiates and returns the next CTA if its footprint fits, or nil.
func (g *Grid) Next(fit func(regs, smem, warps, threads int) bool) *warp.CTA {
	if g.next >= g.total {
		return nil
	}
	if fit != nil && !fit(g.fp.Regs, g.fp.SMem, g.fp.Warps, g.fp.Threads) {
		return nil
	}
	c := warp.NewCTA(g.launch, g.next, g.warpSize)
	c.KernelID = g.kernelID
	c.RegsAlloc = g.fp.Regs
	c.SMemAlloc = g.fp.SMem
	c.Threads = g.fp.Threads
	g.next++
	return c
}

// Cursor returns the number of CTAs already dispensed, for snapshotting.
func (g *Grid) Cursor() int { return g.next }

// SetCursor restores the dispense position (the inverse of Cursor).
func (g *Grid) SetCursor(n int) { g.next = n }

// Materialize instantiates the flatID'th CTA of this grid with a fresh
// (pristine) runtime state and the grid's footprint stamps, without
// touching the dispense cursor. Checkpoint restore uses it to rebuild the
// deterministic structure of a resident CTA before overlaying dynamic
// state.
func (g *Grid) Materialize(flatID int) *warp.CTA {
	c := warp.NewCTA(g.launch, flatID, g.warpSize)
	c.KernelID = g.kernelID
	c.RegsAlloc = g.fp.Regs
	c.SMemAlloc = g.fp.SMem
	c.Threads = g.fp.Threads
	return c
}

var _ Source = (*Grid)(nil)

// MultiGrid interleaves several grids round-robin, the concurrent-kernel
// dispatcher: each call resumes after the grid that last dispensed, and a
// grid whose head CTA does not fit is skipped so smaller kernels can fill
// the gaps.
type MultiGrid struct {
	grids []*Grid
	rr    int
}

// NewMultiGrid builds a round-robin dispatcher over the launches, tagging
// each grid with its kernel index.
func NewMultiGrid(launches []*isa.Launch, cfg *config.GPUConfig) *MultiGrid {
	m := &MultiGrid{}
	for i, l := range launches {
		g := NewGrid(l, cfg)
		g.SetKernelID(i)
		m.grids = append(m.grids, g)
	}
	return m
}

// Next returns the next fitting CTA from the round-robin order, or nil.
func (m *MultiGrid) Next(fit func(regs, smem, warps, threads int) bool) *warp.CTA {
	n := len(m.grids)
	for i := 0; i < n; i++ {
		g := m.grids[(m.rr+i)%n]
		if c := g.Next(fit); c != nil {
			m.rr = (m.rr + i + 1) % n
			return c
		}
	}
	return nil
}

// Remaining sums the undispensed CTAs across all grids.
func (m *MultiGrid) Remaining() int {
	total := 0
	for _, g := range m.grids {
		total += g.Remaining()
	}
	return total
}

// Cursors returns each grid's dispense position plus the round-robin
// index — the dispatcher's complete serializable state.
func (m *MultiGrid) Cursors() (next []int, rr int) {
	next = make([]int, len(m.grids))
	for i, g := range m.grids {
		next[i] = g.Cursor()
	}
	return next, m.rr
}

// SetCursors restores the dispatcher state (the inverse of Cursors).
func (m *MultiGrid) SetCursors(next []int, rr int) error {
	if len(next) != len(m.grids) {
		return fmt.Errorf("cta: cursor count %d does not match %d grids", len(next), len(m.grids))
	}
	for i, g := range m.grids {
		if next[i] < 0 || next[i] > g.Total() {
			return fmt.Errorf("cta: grid %d cursor %d out of range [0,%d]", i, next[i], g.Total())
		}
		g.SetCursor(next[i])
	}
	m.rr = rr
	return nil
}

// Materialize rebuilds the flatID'th CTA of the kernelID'th grid; see
// Grid.Materialize.
func (m *MultiGrid) Materialize(kernelID, flatID int) (*warp.CTA, error) {
	if kernelID < 0 || kernelID >= len(m.grids) {
		return nil, fmt.Errorf("cta: kernel id %d out of range", kernelID)
	}
	return m.grids[kernelID].Materialize(flatID), nil
}

var _ Source = (*MultiGrid)(nil)
