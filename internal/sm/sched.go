package sm

import (
	"math/bits"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/warp"
)

// scheduler is one warp scheduler: it owns the warp slots whose index is
// congruent to its id modulo the scheduler count, and issues at most one
// instruction per cycle from them.
type scheduler struct {
	sm     *SM
	id     int
	greedy *warp.Warp // GTO: the warp currently being issued greedily
	rrNext int        // LRR: next owned-slot offset to consider

	busyUntil int64 // register-file bank-conflict stall (RegFileBanks > 0)

	group   []*warp.Warp // two-level: active fetch group
	groupRR int          // two-level: round-robin cursor within the group

	// Counts of owned warps by cached issue classification, maintained by
	// SM.noteClass. They replace the full-scan stall classification when
	// the fast path is enabled.
	nReady int
	nMem   int
	nALU   int
	nBar   int
}

func newScheduler(s *SM, id int) *scheduler {
	return &scheduler{sm: s, id: id}
}

// owns reports whether the scheduler serves the slot index.
func (sc *scheduler) owns(slot int) bool {
	return slot%len(sc.sm.schedulers) == sc.id
}

// schedulable reports whether the warp can issue this cycle, and when it
// cannot, classifies the impediment for the stall breakdown.
func (sc *scheduler) schedulable(w *warp.Warp) (ok bool, blocked warp.Blocked, structural bool) {
	s := sc.sm
	if w.Finished || w.CTA.State != warp.CTAActive {
		return false, warp.BlockedDone, false
	}
	if w.AtBarrier {
		return false, warp.BlockedBarrier, false
	}
	code := w.CTA.Launch.Kernel.Code
	pc, _, okc := w.Stack.Current()
	if !okc {
		return false, warp.BlockedDone, false
	}
	in := &code[pc]
	conflict, onLoad := w.SB.Conflicts(in, s.srcBuf)
	if conflict {
		if onLoad {
			return false, warp.BlockedMem, false
		}
		return false, warp.BlockedALU, false
	}
	// Structural hazards.
	now := s.Ev.Now()
	switch in.Unit() {
	case isa.UnitSFU:
		if now < s.sfuFreeAt {
			return false, warp.BlockedNot, true
		}
	case isa.UnitMem:
		if in.Op.IsGlobal() {
			if !s.lsuHasRoom() {
				return false, warp.BlockedNot, true
			}
		} else if now < s.smemFreeAt {
			return false, warp.BlockedNot, true
		}
	}
	return true, warp.BlockedNot, false
}

// older reports whether a should be prioritized over b under
// oldest-first ordering: earlier CTA assignment, then CTA id, then warp id.
func older(a, b *warp.Warp) bool {
	if a.CTA.AssignedAt != b.CTA.AssignedAt {
		return a.CTA.AssignedAt < b.CTA.AssignedAt
	}
	if a.CTA.FlatID != b.CTA.FlatID {
		return a.CTA.FlatID < b.CTA.FlatID
	}
	return a.IdxInCTA < b.IdxInCTA
}

// structural reports whether the warp's next instruction is blocked only
// by execution-unit availability this cycle. The caller guarantees the
// warp is otherwise ready (cached BlockedNot), so the SIMT stack has a
// current instruction.
func (sc *scheduler) structural(w *warp.Warp) bool {
	s := sc.sm
	pc, _, _ := w.Stack.Current()
	in := &w.CTA.Launch.Kernel.Code[pc]
	now := s.Ev.Now()
	switch in.Unit() {
	case isa.UnitSFU:
		return now < s.sfuFreeAt
	case isa.UnitMem:
		if in.Op.IsGlobal() {
			return !s.lsuHasRoom()
		}
		return now < s.smemFreeAt
	}
	return false
}

// classifyStall records one stall sample for this scheduler based on the
// current warp states, weighted by n cycles. Used both for a no-issue
// cycle (n=1) and for cycles the engine fast-forwards across (the SM is
// quiescent, so the classification is constant over the skipped span).
func (sc *scheduler) classifyStall(st *Stats, n int64) {
	if !sc.sm.DisableFastPath {
		sc.classifyStallFast(st, n)
		return
	}
	s := sc.sm
	var sawMem, sawALU, sawBar, sawStruct, sawAny bool
	for slot := sc.id; slot < len(s.Slots); slot += len(s.schedulers) {
		w := s.Slots[slot]
		if w == nil {
			continue
		}
		_, blocked, structural := sc.schedulable(w)
		if blocked != warp.BlockedDone {
			sawAny = true
		}
		switch {
		case structural:
			sawStruct = true
		case blocked == warp.BlockedMem:
			sawMem = true
		case blocked == warp.BlockedALU:
			sawALU = true
		case blocked == warp.BlockedBarrier:
			sawBar = true
		}
	}
	switch {
	case !sawAny:
		st.SlotIdle += n
	case sawStruct:
		st.SlotStallStr += n
	case sawMem:
		st.SlotStallMem += n
	case sawBar:
		st.SlotStallBar += n
	case sawALU:
		st.SlotStallALU += n
	default:
		st.SlotIdle += n
	}
}

// classifyStallFast is classifyStall driven by the cached per-warp
// classification counters instead of a slot scan. The switch mirrors the
// slow version exactly, including its quirk that a ready warp contributes
// only "saw any warp" — so a scheduler whose sole candidates are ready yet
// unpicked lands in SlotIdle through the default arm.
func (sc *scheduler) classifyStallFast(st *Stats, n int64) {
	s := sc.sm
	sawStruct := false
	if sc.nReady > 0 {
		step := len(s.schedulers)
		for wi, word := range s.ready {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &= word - 1
				slot := wi<<6 + b
				if slot%step != sc.id {
					continue
				}
				if sc.structural(s.Slots[slot]) {
					sawStruct = true
				}
			}
			if sawStruct {
				break
			}
		}
	}
	switch {
	case sc.nReady+sc.nMem+sc.nALU+sc.nBar == 0:
		st.SlotIdle += n
	case sawStruct:
		st.SlotStallStr += n
	case sc.nMem > 0:
		st.SlotStallMem += n
	case sc.nBar > 0:
		st.SlotStallBar += n
	case sc.nALU > 0:
		st.SlotStallALU += n
	default:
		st.SlotIdle += n
	}
}

// issueFast is the O(ready warps) issue selection: it walks the SM's ready
// bitset instead of re-deriving schedulable() for every owned slot, and
// classifies a no-issue cycle from the cached counters.
func (sc *scheduler) issueFast() bool {
	s := sc.sm
	var pick *warp.Warp
	sawStruct := false
	if sc.nReady > 0 {
		step := len(s.schedulers)
		for wi, word := range s.ready {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &= word - 1
				slot := wi<<6 + b
				if slot%step != sc.id {
					continue
				}
				w := s.Slots[slot]
				if sc.structural(w) {
					sawStruct = true
					continue
				}
				if pick == nil || older(w, pick) {
					pick = w
				}
			}
		}
	}

	if pick != nil {
		switch s.Cfg.Scheduler {
		case config.SchedLRR:
			pick = sc.lrrPickFast()
		case config.SchedTwoLevel:
			if g := sc.twoLevelPick(); g != nil {
				pick = g
			}
		}
		sc.greedy = pick
		sc.issue(pick)
		s.Stats.SlotIssued++
		return true
	}

	sc.greedy = nil
	st := &s.Stats
	switch {
	case sc.nReady+sc.nMem+sc.nALU+sc.nBar == 0:
		st.SlotIdle++
	case sawStruct:
		st.SlotStallStr++
	case sc.nMem > 0:
		st.SlotStallMem++
	case sc.nBar > 0:
		st.SlotStallBar++
	case sc.nALU > 0:
		st.SlotStallALU++
	default:
		st.SlotIdle++
	}
	return false
}

// issueOne tries to issue one instruction from this scheduler's warps and
// updates the stall breakdown. Returns true on issue.
func (sc *scheduler) issueOne() bool {
	s := sc.sm
	if s.Ev.Now() < sc.busyUntil {
		// Register-file bank conflict from a previous issue occupies the
		// operand-read ports.
		s.Stats.SlotStallStr++
		return false
	}

	if s.Cfg.Scheduler == config.SchedGTO && sc.greedy != nil {
		// Greedy warp keeps priority while it can issue.
		g := sc.greedy
		var ok bool
		if !s.DisableFastPath {
			ok = g.IssueState == warp.BlockedNot && !sc.structural(g)
		} else {
			ok, _, _ = sc.schedulable(g)
		}
		if ok {
			sc.issue(g)
			s.Stats.SlotIssued++
			return true
		}
	}

	if !s.DisableFastPath {
		return sc.issueFast()
	}

	var pick *warp.Warp
	var sawMem, sawALU, sawBar, sawStruct, sawAny bool

	consider := func(w *warp.Warp) {
		ok, blocked, structural := sc.schedulable(w)
		if blocked != warp.BlockedDone {
			sawAny = true
		}
		if ok {
			if pick == nil || older(w, pick) {
				pick = w
			}
			return
		}
		switch {
		case structural:
			sawStruct = true
		case blocked == warp.BlockedMem:
			sawMem = true
		case blocked == warp.BlockedALU:
			sawALU = true
		case blocked == warp.BlockedBarrier:
			sawBar = true
		}
	}

	for slot := sc.id; slot < len(s.Slots); slot += len(s.schedulers) {
		w := s.Slots[slot]
		if w == nil {
			continue
		}
		consider(w)
	}

	if pick != nil {
		switch s.Cfg.Scheduler {
		case config.SchedLRR:
			// Loose round-robin: rotate priority among ready warps.
			pick = sc.lrrPick()
		case config.SchedTwoLevel:
			if g := sc.twoLevelPick(); g != nil {
				pick = g
			}
		}
		sc.greedy = pick
		sc.issue(pick)
		s.Stats.SlotIssued++
		return true
	}

	sc.greedy = nil
	st := &s.Stats
	switch {
	case !sawAny:
		st.SlotIdle++
	case sawStruct:
		st.SlotStallStr++
	case sawMem:
		st.SlotStallMem++
	case sawBar:
		st.SlotStallBar++
	case sawALU:
		st.SlotStallALU++
	default:
		st.SlotIdle++
	}
	return false
}

// AccountSkipped charges n fast-forwarded cycles to the SM's statistics:
// stall-slot samples per scheduler and the occupancy accumulators. The
// engine only skips cycles when the SM is quiescent, so the classification
// is the same for every skipped cycle.
func (s *SM) AccountSkipped(n int64) { s.accountSkippedInto(&s.Stats, n) }

// accountSkippedInto is AccountSkipped targeting an arbitrary Stats, so
// StatsAt can charge an in-progress span into a copy without touching
// live state. classifyStall and the occupancy math only read SM state.
func (s *SM) accountSkippedInto(st *Stats, n int64) {
	st.Cycles += n
	for _, sc := range s.schedulers {
		sc.classifyStall(st, n)
	}
	st.ActiveWarpAccum += n * int64(s.WarpsUsed)
	st.ActiveCTAAccum += n * int64(s.ActiveCTAs)
	st.ResidentCTAAccum += n * int64(len(s.Resident))
	rw := 0
	for _, c := range s.Resident {
		rw += len(c.Warps)
	}
	st.ResidentWarpAccum += n * int64(rw)
}

// StatsAt returns a copy of the SM's statistics as they stand at the
// start of cycle at, including charges the engine has deferred: an
// in-progress per-SM fast-forward span (the SM is asleep and WakeUp will
// charge it later), or — when pendingFrom >= 0 — a whole-GPU idle skip
// beginning at pendingFrom whose AccountSkipped the caller applies after
// sampling. The charge lands in the copy, so this is a pure observer.
// Splitting a skipped span across sampling boundaries is exact because
// the SM is quiescent throughout: the stall classification and occupancy
// gauges are constant over the span and AccountSkipped is linear in the
// cycle count.
func (s *SM) StatsAt(at, pendingFrom int64) Stats {
	st := s.Stats
	from := int64(-1)
	if s.asleep {
		from = s.sleptFrom
	} else if pendingFrom >= 0 {
		from = pendingFrom
	}
	if from >= 0 && at > from {
		s.accountSkippedInto(&st, at-from)
	}
	return st
}

// lrrPick scans owned slots starting after the previous issue point and
// returns the first schedulable warp.
func (sc *scheduler) lrrPick() *warp.Warp {
	s := sc.sm
	n := len(s.Slots)
	step := len(s.schedulers)
	owned := (n + step - 1 - sc.id) / step
	for i := 1; i <= owned; i++ {
		slot := sc.id + ((sc.rrNext + i) % owned * step)
		w := s.Slots[slot]
		if w == nil {
			continue
		}
		if ok, _, _ := sc.schedulable(w); ok {
			sc.rrNext = (sc.rrNext + i) % owned
			return w
		}
	}
	return nil
}

// lrrPickFast is lrrPick over the ready bitset: among the issuable owned
// warps it returns the one at the smallest circular distance past rrNext,
// which is exactly the warp the sequential scan would reach first.
func (sc *scheduler) lrrPickFast() *warp.Warp {
	s := sc.sm
	step := len(s.schedulers)
	owned := (len(s.Slots) + step - 1 - sc.id) / step
	var best *warp.Warp
	bestI := 0
	for wi, word := range s.ready {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			slot := wi<<6 + b
			if slot%step != sc.id {
				continue
			}
			w := s.Slots[slot]
			if sc.structural(w) {
				continue
			}
			o := (slot - sc.id) / step
			i := o - sc.rrNext
			if i <= 0 {
				i += owned // distance wraps; o == rrNext means a full lap
			}
			if best == nil || i < bestI {
				best = w
				bestI = i
			}
		}
	}
	if best == nil {
		return nil
	}
	sc.rrNext = (sc.rrNext + bestI) % owned
	return best
}

// twoLevelPick maintains the scheduler's active fetch group — up to
// FetchGroupWarps warps that are not blocked on long-latency memory — and
// round-robins within it. Warps that hit a long stall leave the group and
// pending warps take their place, so only a small subset needs operand
// buffering each cycle. Returns nil when no group member can issue (the
// caller falls back to a group switch).
func (sc *scheduler) twoLevelPick() *warp.Warp {
	s := sc.sm
	size := s.Cfg.FetchGroupWarps
	if size <= 0 {
		size = 8
	}

	// Evict group members that left the SM, finished, or hit a long
	// memory stall.
	kept := sc.group[:0]
	for _, w := range sc.group {
		if w.Finished || w.CTA.State != warp.CTAActive {
			continue
		}
		if w.BlockedState(w.CTA.Launch.Kernel.Code, s.srcBuf) == warp.BlockedMem {
			continue
		}
		kept = append(kept, w)
	}
	sc.group = kept

	// Refill from owned slots, oldest first.
	if len(sc.group) < size {
		inGroup := func(w *warp.Warp) bool {
			for _, g := range sc.group {
				if g == w {
					return true
				}
			}
			return false
		}
		for slot := sc.id; slot < len(s.Slots) && len(sc.group) < size; slot += len(s.schedulers) {
			w := s.Slots[slot]
			if w == nil || w.Finished || w.CTA.State != warp.CTAActive || inGroup(w) {
				continue
			}
			if w.BlockedState(w.CTA.Launch.Kernel.Code, s.srcBuf) == warp.BlockedMem {
				continue
			}
			sc.group = append(sc.group, w)
		}
	}
	if len(sc.group) == 0 {
		return nil
	}
	for i := 1; i <= len(sc.group); i++ {
		idx := (sc.groupRR + i) % len(sc.group)
		if ok, _, _ := sc.schedulable(sc.group[idx]); ok {
			sc.groupRR = idx
			return sc.group[idx]
		}
	}
	return nil
}

// rfBankStall charges the scheduler for register-file bank conflicts among
// the instruction's source operands: one extra cycle per colliding read on
// a single-ported banked file.
func (sc *scheduler) rfBankStall(w *warp.Warp, in *isa.Instr) {
	banks := sc.sm.Cfg.RegFileBanks
	if banks <= 0 {
		return
	}
	var counts [64]int
	extra := 0
	srcs := in.SrcList[:in.NSrc]
	if !in.Decoded {
		srcs = in.SrcRegs(sc.sm.srcBuf[:0])
	}
	for _, r := range srcs {
		b := int(r) % banks
		counts[b]++
		if counts[b] > 1 {
			extra++
		}
	}
	if extra > 0 {
		// busyUntil is the first cycle the scheduler may issue again:
		// the current issue plus `extra` dead operand-read cycles.
		sc.busyUntil = sc.sm.Ev.Now() + int64(extra) + 1
		sc.sm.Stats.RFBankConflictCyc += int64(extra)
	}
}

// issue functionally executes the warp's next instruction and models its
// timing on the appropriate unit.
func (sc *scheduler) issue(w *warp.Warp) {
	s := sc.sm
	now := s.Ev.Now()
	code := w.CTA.Launch.Kernel.Code
	pc, _, _ := w.Stack.Current()
	in := &code[pc]

	sc.rfBankStall(w, in)
	info := warp.Execute(w, in, s.Gmem, s.addrBuf, s.Glog)
	w.LastIssue = now
	w.IssuedInstrs++
	w.ThreadInstrs += int64(info.Lanes)
	s.Stats.Issued++
	s.Stats.ThreadInstrs += int64(info.Lanes)
	if k := w.CTA.KernelID; k < len(s.Stats.IssuedPerKernel) {
		s.Stats.IssuedPerKernel[k]++
	}

	switch {
	case info.IsExit:
		if w.Finished {
			c := w.CTA
			c.Finished++
			if c.Done() {
				s.retire(c)
			}
		}
	case info.IsBar:
		sc.barrier(w)
	case info.MemOp:
		sc.memIssue(w, in, info)
	default:
		sc.aluIssue(w, in)
	}
	// Execute moved the SIMT stack and may have marked scoreboard pending,
	// parked at a barrier, or finished/retired the warp — re-derive its
	// cached classification. If the CTA retired, the warp is already
	// unbound and this is a no-op.
	s.refreshWarp(w)
}

func (sc *scheduler) aluIssue(w *warp.Warp, in *isa.Instr) {
	s := sc.sm
	if !in.Op.HasDst() || in.Dst == isa.RZ {
		return
	}
	var lat int64
	switch in.Unit() {
	case isa.UnitSFU:
		lat = int64(s.Cfg.SFULatency)
		s.sfuFreeAt = s.Ev.Now() + int64(s.Cfg.SFUInitInterval)
		s.Stats.SFUIssued++
	default:
		lat = int64(s.Cfg.ALULatency)
	}
	dst := in.Dst
	w.SB.MarkPending(dst, false)
	s.scheduleWB(lat, w, dst)
}

func (sc *scheduler) barrier(w *warp.Warp) {
	s := sc.sm
	c := w.CTA
	w.AtBarrier = true
	c.Arrived++
	if c.BarrierReleased() {
		for _, ww := range c.Warps {
			ww.AtBarrier = false
		}
		c.Arrived = 0
		s.Stats.BarrierReleases++
		for _, ww := range c.Warps {
			s.refreshWarp(ww)
		}
	}
}

func (sc *scheduler) memIssue(w *warp.Warp, in *isa.Instr, info warp.ExecInfo) {
	s := sc.sm
	now := s.Ev.Now()
	if !in.Op.IsGlobal() {
		// Shared memory: serialization by bank-conflict factor.
		s.Stats.SMemAccesses++
		f := mem.BankConflictFactor(info.Addrs, info.Active, 32)
		if f < 1 {
			f = 1
		}
		s.smemFreeAt = now + int64(f)
		s.Stats.SMemConflictCyc += int64(f - 1)
		if in.Op.IsLoad() && in.Dst != isa.RZ {
			dst := in.Dst
			w.SB.MarkPending(dst, false)
			s.scheduleWB(int64(s.Cfg.SMemLatency+f-1), w, dst)
		}
		return
	}

	lineSize := s.Cfg.L1D.LineSize
	if !s.Cfg.L1D.Enabled {
		lineSize = s.Cfg.L2.LineSize
	}
	idx := s.allocOp()
	op := &s.lsuPool[idx]
	op.lines = mem.CoalesceLinesInto(op.lines[:0], info.Addrs, info.Active, lineSize)
	if len(op.lines) == 0 {
		s.freeOp(idx)
		return // no active lanes touched memory
	}
	s.Stats.GlobalTxns += int64(len(op.lines))
	op.w = w
	op.dst = 0
	op.write = in.Op.IsStore()
	op.next = 0
	op.remaining = len(op.lines)
	if in.Op.IsLoad() || in.Op.IsAtomic() {
		// Atomics wait for the round trip like loads (the old value —
		// or at least the completion — comes back from the L2/ROP).
		op.dst = in.Dst
		w.SB.MarkPending(in.Dst, true)
		w.OutstandingLoads++
	}
	s.lsuQueue = append(s.lsuQueue, idx)
}
