package sm

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/simt"
	"repro/internal/warp"
)

// Snapshot support for the SM. The guiding rule: anything an event
// operand or a scheduling decision can observe is serialized verbatim,
// everything derivable is rebuilt. Pending typed events embed arena
// indices (lsuPool for evLoadLine, farWBs for evFarWB), so both arenas —
// including their free lists and the lsuQueue/lsuHead cursor — restore to
// the exact captured layout. Warp pointers serialize as (kernel, flat CTA,
// warp index) triples; CTA structure is rebuilt deterministically from
// the launch (cta.Grid.Materialize) and the dynamic warp state overlaid.
// The cached issue classification (IssueState, RestoreReady, the ready
// bitset, and the per-scheduler class counters) is re-derived through
// refreshWarp on every bound warp, which reproduces it exactly because it
// is a pure function of the serialized state.
//
// Sleep state (asleep, sleptFrom, wakeAt) travels verbatim: waking the SM
// at capture time would run extra control cycles on resume (clearing, for
// example, a GTO scheduler's greedy pointer) and diverge from the
// uninterrupted run.

// WarpRef names a warp by stable indices; Kernel < 0 encodes a nil warp.
type WarpRef struct {
	Kernel int `json:"k"`
	Flat   int `json:"c"`
	Idx    int `json:"w"`
}

// NilWarpRef is the encoding of a nil warp pointer.
func NilWarpRef() WarpRef { return WarpRef{Kernel: -1} }

func warpRef(w *warp.Warp) WarpRef {
	if w == nil {
		return NilWarpRef()
	}
	return WarpRef{Kernel: w.CTA.KernelID, Flat: w.CTA.FlatID, Idx: w.IdxInCTA}
}

// WarpState is one warp's serialized dynamic state. Structure (lane
// count, register-file shape) is rebuilt from the launch.
type WarpState struct {
	Regs             []uint32     `json:"regs"`
	Stack            []simt.Entry `json:"stack"`
	Exited           uint64       `json:"exited"`
	SBPend           isa.RegMask  `json:"sb_pend"`
	SBLoad           isa.RegMask  `json:"sb_load"`
	AtBarrier        bool         `json:"at_barrier"`
	Finished         bool         `json:"finished"`
	OutstandingLoads int          `json:"outstanding_loads"`
	Slot             int          `json:"slot"`
	LastIssue        int64        `json:"last_issue"`
	IssuedInstrs     int64        `json:"issued_instrs"`
	ThreadInstrs     int64        `json:"thread_instrs"`
}

// CTASnapshot is one resident CTA's serialized state.
type CTASnapshot struct {
	Kernel      int           `json:"kernel"`
	Flat        int           `json:"flat"`
	SMem        []uint32      `json:"smem"`
	Arrived     int           `json:"arrived"`
	Finished    int           `json:"finished"`
	State       warp.CTAState `json:"state"`
	AssignedAt  int64         `json:"assigned_at"`
	ActivatedAt int64         `json:"activated_at"`
	Activations int           `json:"activations"`
	Warps       []WarpState   `json:"warps"`
}

// SchedulerState is one warp scheduler's serialized state.
type SchedulerState struct {
	Greedy    WarpRef   `json:"greedy"`
	RRNext    int       `json:"rr_next"`
	BusyUntil int64     `json:"busy_until"`
	Group     []WarpRef `json:"group"`
	GroupRR   int       `json:"group_rr"`
}

// LSUOpState is one lsuPool arena slot (Used=false for free-list slots).
type LSUOpState struct {
	Used      bool     `json:"used"`
	W         WarpRef  `json:"w"`
	Dst       isa.Reg  `json:"dst"`
	Write     bool     `json:"write"`
	Lines     []uint32 `json:"lines"`
	Next      int      `json:"next"`
	Remaining int      `json:"remaining"`
}

// FarWBState is one farWBs arena slot.
type FarWBState struct {
	Used bool    `json:"used"`
	W    WarpRef `json:"w"`
	Reg  isa.Reg `json:"reg"`
}

// WBEntryState is one pending local-wheel writeback.
type WBEntryState struct {
	Cycle int64   `json:"cycle"`
	W     WarpRef `json:"w"`
	Reg   isa.Reg `json:"reg"`
}

// SMState is one SM's complete serialized state.
type SMState struct {
	Resident   []CTASnapshot    `json:"resident"`
	Schedulers []SchedulerState `json:"schedulers"`

	SFUFreeAt  int64 `json:"sfu_free_at"`
	SMemFreeAt int64 `json:"smem_free_at"`

	LSUPool  []LSUOpState `json:"lsu_pool"`
	LSUFree  []int32      `json:"lsu_free"`
	LSUQueue []int32      `json:"lsu_queue"`
	LSUHead  int          `json:"lsu_head"`

	FarWBs    []FarWBState `json:"far_wbs"`
	FarWBFree []int32      `json:"far_wb_free"`

	// Wheel entries in slot-scan order (per-slot order preserved), plus
	// the drain cursor.
	WBEntries []WBEntryState `json:"wb_entries"`
	WBDrained int64          `json:"wb_drained"`

	Asleep    bool  `json:"asleep"`
	SleptFrom int64 `json:"slept_from"`
	WakeAt    int64 `json:"wake_at"`

	Stats Stats `json:"stats"`
}

// State captures the SM. Pure read.
func (s *SM) State() *SMState {
	st := &SMState{
		SFUFreeAt:  s.sfuFreeAt,
		SMemFreeAt: s.smemFreeAt,
		LSUFree:    append([]int32(nil), s.lsuFree...),
		LSUQueue:   append([]int32(nil), s.lsuQueue...),
		LSUHead:    s.lsuHead,
		FarWBFree:  append([]int32(nil), s.farWBFree...),
		WBDrained:  s.wb.drained,
		Asleep:     s.asleep,
		SleptFrom:  s.sleptFrom,
		WakeAt:     s.wakeAt,
		Stats:      s.Stats,
	}
	st.Stats.IssuedPerKernel = append([]int64(nil), s.Stats.IssuedPerKernel...)
	for _, c := range s.Resident {
		cs := CTASnapshot{
			Kernel:      c.KernelID,
			Flat:        c.FlatID,
			SMem:        append([]uint32(nil), c.SMem...),
			Arrived:     c.Arrived,
			Finished:    c.Finished,
			State:       c.State,
			AssignedAt:  c.AssignedAt,
			ActivatedAt: c.ActivatedAt,
			Activations: c.Activations,
		}
		for _, w := range c.Warps {
			pend, load := w.SB.Masks()
			cs.Warps = append(cs.Warps, WarpState{
				Regs:             append([]uint32(nil), w.Regs...),
				Stack:            w.Stack.Entries(),
				Exited:           uint64(w.Stack.Exited()),
				SBPend:           pend,
				SBLoad:           load,
				AtBarrier:        w.AtBarrier,
				Finished:         w.Finished,
				OutstandingLoads: w.OutstandingLoads,
				Slot:             w.Slot,
				LastIssue:        w.LastIssue,
				IssuedInstrs:     w.IssuedInstrs,
				ThreadInstrs:     w.ThreadInstrs,
			})
		}
		st.Resident = append(st.Resident, cs)
	}
	// Scheduler refs may dangle: a GTO greedy pointer (or a two-level
	// group member) can still name a warp whose CTA completed and left
	// the SM. Live, such a pointer is inert — the warp is Finished, so
	// every issue check rejects it and twoLevelPick evicts it before the
	// group is consulted — but it is unresolvable after restore. Encode
	// departed refs as nil (greedy) or drop them (group); both are
	// behaviorally identical to the stale original.
	resident := make(map[*warp.CTA]bool, len(s.Resident))
	for _, c := range s.Resident {
		resident[c] = true
	}
	liveRef := func(w *warp.Warp) WarpRef {
		if w == nil || !resident[w.CTA] {
			return NilWarpRef()
		}
		return warpRef(w)
	}
	for _, sc := range s.schedulers {
		ss := SchedulerState{
			Greedy:    liveRef(sc.greedy),
			RRNext:    sc.rrNext,
			BusyUntil: sc.busyUntil,
			GroupRR:   sc.groupRR,
		}
		for _, w := range sc.group {
			if r := liveRef(w); r.Kernel >= 0 {
				ss.Group = append(ss.Group, r)
			}
		}
		st.Schedulers = append(st.Schedulers, ss)
	}
	for i := range s.lsuPool {
		op := &s.lsuPool[i]
		os := LSUOpState{Used: op.w != nil}
		if op.w != nil {
			os.W = warpRef(op.w)
			os.Dst = op.dst
			os.Write = op.write
			os.Lines = append([]uint32(nil), op.lines...)
			os.Next = op.next
			os.Remaining = op.remaining
		}
		st.LSUPool = append(st.LSUPool, os)
	}
	for i := range s.farWBs {
		r := &s.farWBs[i]
		fs := FarWBState{Used: r.w != nil}
		if r.w != nil {
			fs.W = warpRef(r.w)
			fs.Reg = r.reg
		}
		st.FarWBs = append(st.FarWBs, fs)
	}
	for slot := range s.wb.slots {
		for _, e := range s.wb.slots[slot] {
			st.WBEntries = append(st.WBEntries, WBEntryState{
				Cycle: e.cycle, W: warpRef(e.w), Reg: e.reg,
			})
		}
	}
	return st
}

// Materializer rebuilds the pristine structure of a CTA from its stable
// indices (the grid dispenser provides one).
type Materializer func(kernel, flat int) (*warp.CTA, error)

// SetState restores a freshly built SM (same configuration) to the
// captured state. mat rebuilds CTA structure; the warp resolver for
// cross-references (schedulers, arenas, wheel) is derived from the CTAs
// restored here.
func (s *SM) SetState(st *SMState, mat Materializer) error {
	if len(st.Schedulers) != len(s.schedulers) {
		return fmt.Errorf("sm %d: scheduler count mismatch (%d, want %d)", s.ID, len(st.Schedulers), len(s.schedulers))
	}

	// Rebuild resident CTAs and overlay dynamic state.
	type ctaKey struct{ k, f int }
	ctas := make(map[ctaKey]*warp.CTA, len(st.Resident))
	s.Resident = s.Resident[:0]
	s.RegsUsed, s.SMemUsed = 0, 0
	s.ActiveCTAs, s.WarpsUsed, s.ThreadsUsed = 0, 0, 0
	for i := range st.Resident {
		cs := &st.Resident[i]
		c, err := mat(cs.Kernel, cs.Flat)
		if err != nil {
			return fmt.Errorf("sm %d: %w", s.ID, err)
		}
		if len(cs.Warps) != len(c.Warps) {
			return fmt.Errorf("sm %d: CTA %d/%d warp count mismatch (%d, want %d)",
				s.ID, cs.Kernel, cs.Flat, len(cs.Warps), len(c.Warps))
		}
		if len(cs.SMem) != len(c.SMem) {
			return fmt.Errorf("sm %d: CTA %d/%d smem size mismatch", s.ID, cs.Kernel, cs.Flat)
		}
		copy(c.SMem, cs.SMem)
		c.Arrived = cs.Arrived
		c.Finished = cs.Finished
		c.State = cs.State
		c.AssignedAt = cs.AssignedAt
		c.ActivatedAt = cs.ActivatedAt
		c.Activations = cs.Activations
		for wi, w := range c.Warps {
			ws := &cs.Warps[wi]
			if len(ws.Regs) != len(w.Regs) {
				return fmt.Errorf("sm %d: CTA %d/%d warp %d regfile mismatch", s.ID, cs.Kernel, cs.Flat, wi)
			}
			copy(w.Regs, ws.Regs)
			w.Stack.SetState(ws.Stack, simt.Mask(ws.Exited))
			w.SB.SetMasks(ws.SBPend, ws.SBLoad)
			w.AtBarrier = ws.AtBarrier
			w.Finished = ws.Finished
			w.OutstandingLoads = ws.OutstandingLoads
			w.LastIssue = ws.LastIssue
			w.IssuedInstrs = ws.IssuedInstrs
			w.ThreadInstrs = ws.ThreadInstrs
			// Slot binding happens below; keep the pristine -1 /
			// BlockedDone so refreshWarp transitions from a clean base.
		}
		s.Resident = append(s.Resident, c)
		s.RegsUsed += c.RegsAlloc
		s.SMemUsed += c.SMemAlloc
		if c.State == warp.CTAActive || c.State == warp.CTARestoring {
			s.ActiveCTAs++
			s.WarpsUsed += len(c.Warps)
			s.ThreadsUsed += c.Threads
		}
		ctas[ctaKey{cs.Kernel, cs.Flat}] = c
	}

	resolve := func(r WarpRef) (*warp.Warp, error) {
		if r.Kernel < 0 {
			return nil, nil
		}
		c, ok := ctas[ctaKey{r.Kernel, r.Flat}]
		if !ok {
			return nil, fmt.Errorf("sm %d: warp ref %d/%d not resident", s.ID, r.Kernel, r.Flat)
		}
		if r.Idx < 0 || r.Idx >= len(c.Warps) {
			return nil, fmt.Errorf("sm %d: warp ref %d/%d idx %d out of range", s.ID, r.Kernel, r.Flat, r.Idx)
		}
		return c.Warps[r.Idx], nil
	}

	// Bind warps to their captured slots, then re-derive the cached
	// classification (counters start at the pristine zero state).
	for i := range s.Slots {
		s.Slots[i] = nil
	}
	for i := range st.Resident {
		cs := &st.Resident[i]
		c := ctas[ctaKey{cs.Kernel, cs.Flat}]
		for wi, w := range c.Warps {
			slot := cs.Warps[wi].Slot
			if slot < 0 {
				continue
			}
			if slot >= len(s.Slots) || s.Slots[slot] != nil {
				return fmt.Errorf("sm %d: slot %d invalid or doubly bound", s.ID, slot)
			}
			s.Slots[slot] = w
			w.Slot = slot
		}
	}
	for _, w := range s.Slots {
		if w != nil {
			s.refreshWarp(w)
		}
	}

	for i, sc := range s.schedulers {
		ss := &st.Schedulers[i]
		g, err := resolve(ss.Greedy)
		if err != nil {
			return err
		}
		sc.greedy = g
		sc.rrNext = ss.RRNext
		sc.busyUntil = ss.BusyUntil
		sc.groupRR = ss.GroupRR
		sc.group = sc.group[:0]
		for _, r := range ss.Group {
			w, err := resolve(r)
			if err != nil {
				return err
			}
			sc.group = append(sc.group, w)
		}
	}

	s.sfuFreeAt = st.SFUFreeAt
	s.smemFreeAt = st.SMemFreeAt

	// LSU arena: exact layout (pending events address it by index).
	s.lsuPool = s.lsuPool[:0]
	for i := range st.LSUPool {
		os := &st.LSUPool[i]
		var op lsuOp
		if os.Used {
			w, err := resolve(os.W)
			if err != nil {
				return err
			}
			if w == nil {
				return fmt.Errorf("sm %d: lsu op %d has nil warp", s.ID, i)
			}
			op = lsuOp{
				w: w, dst: os.Dst, write: os.Write,
				lines:     append([]uint32(nil), os.Lines...),
				next:      os.Next,
				remaining: os.Remaining,
			}
		}
		s.lsuPool = append(s.lsuPool, op)
	}
	s.lsuFree = append(s.lsuFree[:0], st.LSUFree...)
	s.lsuQueue = append(s.lsuQueue[:0], st.LSUQueue...)
	s.lsuHead = st.LSUHead

	s.farWBs = s.farWBs[:0]
	for i := range st.FarWBs {
		fs := &st.FarWBs[i]
		var rec farWB
		if fs.Used {
			w, err := resolve(fs.W)
			if err != nil {
				return err
			}
			rec = farWB{w: w, reg: fs.Reg}
		}
		s.farWBs = append(s.farWBs, rec)
	}
	s.farWBFree = append(s.farWBFree[:0], st.FarWBFree...)

	// Writeback wheel: direct bucket inserts, bypassing schedule()'s
	// drained-clamp (restored cycles are already in the live window).
	for i := range s.wb.slots {
		s.wb.slots[i] = s.wb.slots[i][:0]
	}
	s.wb.pending = 0
	s.wb.drained = st.WBDrained
	for _, e := range st.WBEntries {
		w, err := resolve(e.W)
		if err != nil {
			return err
		}
		if w == nil {
			return fmt.Errorf("sm %d: wheel entry has nil warp", s.ID)
		}
		slot := e.Cycle & s.wb.mask
		s.wb.slots[slot] = append(s.wb.slots[slot], wbEntry{cycle: e.Cycle, w: w, reg: e.Reg})
		s.wb.pending++
	}

	s.asleep = st.Asleep
	s.sleptFrom = st.SleptFrom
	s.wakeAt = st.WakeAt

	s.Stats = st.Stats
	s.Stats.IssuedPerKernel = append([]int64(nil), st.Stats.IssuedPerKernel...)
	return nil
}

// ResolveWarp finds a resident warp by its stable reference; nil for the
// nil reference. The VT controller's snapshot uses it to rebuild its
// restore arena.
func (s *SM) ResolveWarp(r WarpRef) (*warp.Warp, error) {
	if r.Kernel < 0 {
		return nil, nil
	}
	for _, c := range s.Resident {
		if c.KernelID == r.Kernel && c.FlatID == r.Flat {
			if r.Idx < 0 || r.Idx >= len(c.Warps) {
				return nil, fmt.Errorf("sm %d: warp ref %d/%d idx %d out of range", s.ID, r.Kernel, r.Flat, r.Idx)
			}
			return c.Warps[r.Idx], nil
		}
	}
	return nil, fmt.Errorf("sm %d: warp ref %d/%d not resident", s.ID, r.Kernel, r.Flat)
}

// ResolveCTA finds a resident CTA by stable indices.
func (s *SM) ResolveCTA(kernel, flat int) (*warp.CTA, error) {
	for _, c := range s.Resident {
		if c.KernelID == kernel && c.FlatID == flat {
			return c, nil
		}
	}
	return nil, fmt.Errorf("sm %d: CTA %d/%d not resident", s.ID, kernel, flat)
}
