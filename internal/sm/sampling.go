package sm

import (
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/warp"
)

// Interval/sampled simulation support: the gpu run loop's fast-forward
// spans retire instructions functionally through FunctionalRetire, after
// DrainTick/FunctionallyQuiescent brought the SM to a boundary with no
// in-flight timing state. See internal/gpu/sampling.go and
// docs/ARCHITECTURE.md, "Sampled simulation & error model".

// DrainTick advances only the SM's completion machinery by one cycle:
// due local writebacks retire and the LSU streams its next coalesced
// line. Neither the controller phase nor warp issue runs, so draining to
// quiescence starts no new swaps, admissions, or instructions.
func (s *SM) DrainTick() {
	s.wb.drainTo(s.Ev.Now(), s)
	s.lsuTick()
}

// FunctionallyQuiescent reports whether the SM holds no in-flight timing
// state: an empty LSU queue, an empty writeback wheel, no warp with
// outstanding scoreboard writes, and no CTA mid-restore. At such a
// boundary every bound warp's next instruction is determined purely by
// architectural state, which is what lets a fast-forward span retire
// instructions functionally.
func (s *SM) FunctionallyQuiescent() bool {
	if s.LSUQueueLen() != 0 || s.wb.pending != 0 {
		return false
	}
	for _, c := range s.Resident {
		if c.State == warp.CTARestoring {
			return false
		}
		for _, w := range c.Warps {
			if w.SB.Busy() {
				return false
			}
		}
	}
	return true
}

// FunctionalAdmitter is the optional controller interface fast-forward
// spans drive. FunctionalAdmit must admit and activate CTAs with zero
// latency and schedule no events: during a span memory is functionally
// instant, so a controller that would eventually activate a ready CTA in
// detailed mode activates it immediately here. FunctionalCTARetired
// releases any policy claim (VT's context-buffer bytes) held by a CTA
// that completes while swapped out — possible only during spans, where
// inactive CTAs keep executing.
type FunctionalAdmitter interface {
	FunctionalAdmit(s *SM)
	FunctionalCTARetired(s *SM, c *warp.CTA)
}

// funcRetireBatch is how many instructions one warp retires per visit in
// a FunctionalRetire pass. One gives the finest interleaving — closest
// to the detailed machine's cycle-by-cycle multiplexing — and costs
// nothing measurable: warp.Execute dominates the span's wall time, so
// coarser batches were measured to buy no speed while visibly biasing
// the post-span IPC measurement (batch 8 pushed a 1.4% cycle error to
// 2.8% on VT oversubscribed runs).
const funcRetireBatch = 1

// FunctionalRetire retires up to max warp instructions functionally,
// round-robining a small batch per resident warp per pass — including
// the warps of swapped-out and still-pending CTAs, whose registers and
// shared memory are resident under VT (and never modeled as moving). The
// per-CTA fairness matters as much as the execution itself: the detailed
// machine time-multiplexes every resident CTA through the active set, so
// a span that ran only the currently active CTAs to completion would
// drain the latency-hiding CTA pool and the next detailed window would
// measure an IPC the exact run never exhibits. Barriers release the way
// interleaved issue releases them, and end the arriving warp's batch.
//
// Execution goes through the same warp.Execute as detailed issue
// (registers, SIMT stacks, and functional memory advance identically);
// what is skipped is timing: no scoreboard marks, no writeback
// scheduling, no LSU queueing. Global accesses warm the cache tags
// through mem.System.WarmGlobal and shared accesses charge their
// conflict statistics, so counters and tag state track the instructions
// that executed. Each warp's cached issue classification refreshes once
// per batch, keeping the ready bitsets warm for the next detailed
// window. The controller's zero-latency admission runs at entry and
// again whenever a CTA retires — the only points where slots or policy
// capacity free up. Returns the number retired. The call stops only at
// pass boundaries, overshooting max by at most one batch per warp:
// stopping mid-pass would hand the CTAs early in the resident list an
// extra batch on every call, and that skew compounds across a span into
// a progress imbalance the detailed machine never exhibits. A return
// below max means no resident warp could make progress (all finished,
// at a barrier no sibling can release, or mid-restore).
func (s *SM) FunctionalRetire(max int64) int64 {
	fa, _ := s.Ctl.(FunctionalAdmitter)
	now := s.Ev.Now()
	var done int64
	admit := true
	for done < max {
		if admit && fa != nil {
			fa.FunctionalAdmit(s)
		}
		admit = false
		progress := false
		for ci := 0; ci < len(s.Resident); ci++ {
			c := s.Resident[ci]
			if c.State == warp.CTARestoring {
				continue
			}
			code := c.Launch.Kernel.Code
			retired := false
			for _, w := range c.Warps {
				if w.Finished || w.AtBarrier {
					continue
				}
				ran := false
				for b := 0; b < funcRetireBatch; b++ {
					pc, _, ok := w.Stack.Current()
					if !ok {
						break
					}
					in := &code[pc]
					// nil log: global lanes execute inline. Spans run on the
					// coordinator with engine workers parked, so this is
					// race-free even under the parallel engine.
					info := warp.Execute(w, in, s.Gmem, s.addrBuf, nil)
					w.IssuedInstrs++
					w.ThreadInstrs += int64(info.Lanes)
					s.Stats.Issued++
					s.Stats.ThreadInstrs += int64(info.Lanes)
					if k := c.KernelID; k < len(s.Stats.IssuedPerKernel) {
						s.Stats.IssuedPerKernel[k]++
					}
					done++
					ran = true

					if info.IsExit {
						if w.Finished {
							c.Finished++
							if c.Done() {
								s.funcRetireCTA(c, fa)
								retired = true
								admit = true
							}
						}
						break
					}
					if info.IsBar {
						// barrier only touches SM-level state, never the
						// scheduler's own; any scheduler handle works for
						// unbound warps.
						s.schedulers[0].barrier(w)
						if w.AtBarrier {
							break
						}
						continue
					}
					if info.MemOp {
						s.functionalMem(w, in, info)
					} else if in.Unit() == isa.UnitSFU {
						s.Stats.SFUIssued++
					}
				}
				if ran {
					w.LastIssue = now
					s.refreshWarp(w)
					progress = true
				}
				if retired {
					break
				}
			}
			if retired {
				ci-- // retire removed c from Resident; its successor shifted in
			}
		}
		if !progress {
			break
		}
	}
	return done
}

// FunctionalAdmitNow runs the controller's zero-latency admission once,
// outside a retire pass. The gpu span loop calls it before sampling
// occupancy so a CTA retirement at the tail of one SM's round is refilled
// (when the grid still has work) before the span decides whether the
// machine's composition changed.
func (s *SM) FunctionalAdmitNow() {
	if fa, ok := s.Ctl.(FunctionalAdmitter); ok {
		fa.FunctionalAdmit(s)
	}
}

// ResidentWarps counts the warps of every resident CTA (any state).
func (s *SM) ResidentWarps() int {
	n := 0
	for _, c := range s.Resident {
		n += len(c.Warps)
	}
	return n
}

// funcRetireCTA retires a CTA that completed during a functional span.
// Active CTAs take the ordinary retire path; a CTA that finishes while
// holding no warp slots (it progressed functionally while swapped out or
// pending) releases its capacity directly, after the policy releases any
// claim of its own.
func (s *SM) funcRetireCTA(c *warp.CTA, fa FunctionalAdmitter) {
	if c.State == warp.CTAActive {
		s.retire(c)
		return
	}
	if fa != nil {
		fa.FunctionalCTARetired(s, c)
	}
	c.State = warp.CTADone
	s.RegsUsed -= c.RegsAlloc
	s.SMemUsed -= c.SMemAlloc
	for i, r := range s.Resident {
		if r == c {
			s.Resident = append(s.Resident[:i], s.Resident[i+1:]...)
			break
		}
	}
	s.Stats.CTAsCompleted++
	s.Ctl.CTARetired(s, c)
}

// functionalMem charges a functionally retired memory instruction's
// statistics and warms the cache hierarchy, without queueing LSU traffic
// or marking scoreboard state.
func (s *SM) functionalMem(w *warp.Warp, in *isa.Instr, info warp.ExecInfo) {
	if !in.Op.IsGlobal() {
		s.Stats.SMemAccesses++
		f := mem.BankConflictFactor(info.Addrs, info.Active, 32)
		if f > 1 {
			s.Stats.SMemConflictCyc += int64(f - 1)
		}
		return
	}
	lineSize := s.Cfg.L1D.LineSize
	if !s.Cfg.L1D.Enabled {
		lineSize = s.Cfg.L2.LineSize
	}
	s.sampLines = mem.CoalesceLinesInto(s.sampLines[:0], info.Addrs, info.Active, lineSize)
	s.Stats.GlobalTxns += int64(len(s.sampLines))
	write := in.Op.IsStore()
	for _, line := range s.sampLines {
		s.Mem.WarmGlobal(s.ID, line, write)
	}
}

// AccountSampled charges n extrapolated cycles to the SM's statistics.
// issued is how many warp instructions this SM retired functionally
// during the span; it fills issue slots first and the remainder is
// distributed across the schedulers through classifyStall, so the
// issue-slot conservation invariant (slot samples == cycles x schedulers)
// holds exactly across sampled spans. Occupancy accumulators use the
// end-of-span gauges, mirroring AccountSkipped's treatment of
// fast-forwarded idle spans.
func (s *SM) AccountSampled(n, issued int64) {
	if n <= 0 {
		return
	}
	st := &s.Stats
	st.Cycles += n
	nSched := int64(len(s.schedulers))
	slots := n * nSched
	if issued > slots {
		issued = slots
	}
	if issued < 0 {
		issued = 0
	}
	st.SlotIssued += issued
	rem := slots - issued
	base := rem / nSched
	extra := rem % nSched
	for i, sc := range s.schedulers {
		ni := base
		if int64(i) < extra {
			ni++
		}
		if ni > 0 {
			sc.classifyStall(st, ni)
		}
	}
	st.ActiveWarpAccum += n * int64(s.WarpsUsed)
	st.ActiveCTAAccum += n * int64(s.ActiveCTAs)
	st.ResidentCTAAccum += n * int64(len(s.Resident))
	rw := 0
	for _, c := range s.Resident {
		rw += len(c.Warps)
	}
	st.ResidentWarpAccum += n * int64(rw)
}
