package sm

import (
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/warp"
)

// This file is the SM's failure-forensics surface: a point-in-time state
// snapshot (Diagnose) attached to abort errors, and an exhaustive
// invariant checker (CheckInvariants) that re-derives every piece of
// cached bookkeeping from scratch. Both are pure reads — taking a
// snapshot or running the checker must never perturb a simulation.

// BarrierDiag describes one resident CTA with warps parked at a barrier.
type BarrierDiag struct {
	CTA      int `json:"cta"`      // flat CTA id within its grid
	Kernel   int `json:"kernel"`   // launch index (multi-kernel runs)
	Arrived  int `json:"arrived"`  // warps parked at the barrier
	Finished int `json:"finished"` // warps that have exited
	Warps    int `json:"warps"`    // total warps in the CTA
}

// Diag is a point-in-time snapshot of one SM, captured when a run aborts
// so the failure report shows where every warp was stuck.
type Diag struct {
	SM     int  `json:"sm"`
	Asleep bool `json:"asleep,omitempty"` // in per-SM fast-forward at abort

	// Residency and capacity bookkeeping.
	ResidentCTAs int `json:"resident_ctas"`
	ActiveCTAs   int `json:"active_ctas"`
	RegsUsed     int `json:"regs_used"`
	SMemUsed     int `json:"smem_used"`
	WarpsUsed    int `json:"warps_used"`
	ThreadsUsed  int `json:"threads_used"`

	// Warp issue-class counters summed over the SM's schedulers (the
	// fast path's incrementally maintained classification).
	Ready          int `json:"ready"`
	BlockedMem     int `json:"blocked_mem"`
	BlockedALU     int `json:"blocked_alu"`
	BlockedBarrier int `json:"blocked_barrier"`
	RestoreReady   int `json:"restore_ready,omitempty"`

	// ReadyMask is the slot-indexed ready bitset (64 slots per word).
	ReadyMask []uint64 `json:"ready_mask"`

	// In-flight memory operations.
	LSUOps           int `json:"lsu_ops"`            // warp memory instructions queued
	LSULinesPending  int `json:"lsu_lines_pending"`  // coalesced lines not yet injected
	OutstandingLoads int `json:"outstanding_loads"`  // global loads awaiting responses
	WheelPending     int `json:"wheel_pending"`      // local writebacks not yet retired

	// CTAStates counts resident CTAs by state name.
	CTAStates map[string]int `json:"cta_states,omitempty"`

	// Barriers lists every CTA with warps parked at a barrier.
	Barriers []BarrierDiag `json:"barriers,omitempty"`
}

// Diagnose captures the SM's current state for a failure report.
func (s *SM) Diagnose() Diag {
	d := Diag{
		SM:           s.ID,
		Asleep:       s.asleep,
		ResidentCTAs: len(s.Resident),
		ActiveCTAs:   s.ActiveCTAs,
		RegsUsed:     s.RegsUsed,
		SMemUsed:     s.SMemUsed,
		WarpsUsed:    s.WarpsUsed,
		ThreadsUsed:  s.ThreadsUsed,
		RestoreReady: s.restoreReady,
		ReadyMask:    append([]uint64(nil), s.ready...),
		LSUOps:       s.LSUQueueLen(),
		WheelPending: s.wb.pending,
	}
	for _, sc := range s.schedulers {
		d.Ready += sc.nReady
		d.BlockedMem += sc.nMem
		d.BlockedALU += sc.nALU
		d.BlockedBarrier += sc.nBar
	}
	for _, idx := range s.lsuQueue[s.lsuHead:] {
		op := &s.lsuPool[idx]
		d.LSULinesPending += len(op.lines) - op.next
	}
	for _, c := range s.Resident {
		if d.CTAStates == nil {
			d.CTAStates = map[string]int{}
		}
		d.CTAStates[c.State.String()]++
		for _, w := range c.Warps {
			d.OutstandingLoads += w.OutstandingLoads
		}
		if c.Arrived > 0 {
			d.Barriers = append(d.Barriers, BarrierDiag{
				CTA:      c.FlatID,
				Kernel:   c.KernelID,
				Arrived:  c.Arrived,
				Finished: c.Finished,
				Warps:    len(c.Warps),
			})
		}
	}
	return d
}

// CheckInvariants re-derives the SM's cached bookkeeping from scratch and
// reports every mismatch (joined with errors.Join), or nil. It validates:
//
//   - issue-slot conservation: issued + stalls + idle samples equal
//     cycles × schedulers (every scheduler accounts exactly one slot per
//     simulated cycle, including fast-forwarded spans);
//   - capacity and scheduling bounds: used resources within the SM's
//     limits and non-negative;
//   - residency accounting: RegsUsed/SMemUsed (and WarpsUsed/ThreadsUsed/
//     ActiveCTAs for active CTAs) match a recount over Resident;
//   - ready-bitset consistency: the bitset's population matches the
//     schedulers' cached ready counters and every set bit names a bound,
//     ready warp;
//   - writeback-wheel occupancy: the pending counter matches a recount of
//     the ring's entries.
//
// The checker must only run at a cycle boundary (after the engine's cycle
// barrier), where asleep SMs hold consistently frozen statistics.
func (s *SM) CheckInvariants() error {
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("SM%d: "+format, append([]any{s.ID}, args...)...))
	}

	st := &s.Stats
	samples := st.SlotIssued + st.SlotStallMem + st.SlotStallALU +
		st.SlotStallBar + st.SlotStallStr + st.SlotIdle
	if want := st.Cycles * int64(len(s.schedulers)); samples != want {
		fail("issue-slot conservation: %d samples != %d cycles x %d schedulers = %d",
			samples, st.Cycles, len(s.schedulers), want)
	}

	if s.RegsUsed < 0 || s.RegsUsed > s.Cfg.RegFileSize {
		fail("RegsUsed %d outside [0, %d]", s.RegsUsed, s.Cfg.RegFileSize)
	}
	if s.SMemUsed < 0 || s.SMemUsed > s.Cfg.SharedMemPerSM {
		fail("SMemUsed %d outside [0, %d]", s.SMemUsed, s.Cfg.SharedMemPerSM)
	}
	if s.WarpsUsed < 0 || s.WarpsUsed > s.MaxWarps {
		fail("WarpsUsed %d outside [0, %d]", s.WarpsUsed, s.MaxWarps)
	}
	if s.ThreadsUsed < 0 || s.ThreadsUsed > s.MaxThreads {
		fail("ThreadsUsed %d outside [0, %d]", s.ThreadsUsed, s.MaxThreads)
	}
	if s.ActiveCTAs < 0 || s.ActiveCTAs > s.MaxCTAs {
		fail("ActiveCTAs %d outside [0, %d]", s.ActiveCTAs, s.MaxCTAs)
	}

	regs, smem, warps, threads, active := 0, 0, 0, 0, 0
	for _, c := range s.Resident {
		regs += c.RegsAlloc
		smem += c.SMemAlloc
		if c.State == warp.CTAActive || c.State == warp.CTARestoring {
			warps += len(c.Warps)
			threads += c.Threads
			active++
		}
	}
	if regs != s.RegsUsed {
		fail("RegsUsed %d but resident CTAs hold %d", s.RegsUsed, regs)
	}
	if smem != s.SMemUsed {
		fail("SMemUsed %d but resident CTAs hold %d", s.SMemUsed, smem)
	}
	if warps != s.WarpsUsed {
		fail("WarpsUsed %d but active CTAs bind %d warps", s.WarpsUsed, warps)
	}
	if threads != s.ThreadsUsed {
		fail("ThreadsUsed %d but active CTAs bind %d threads", s.ThreadsUsed, threads)
	}
	if active != s.ActiveCTAs {
		fail("ActiveCTAs %d but %d resident CTAs are active", s.ActiveCTAs, active)
	}

	pop := 0
	for _, wd := range s.ready {
		pop += bits.OnesCount64(wd)
	}
	nReady := 0
	for i, sc := range s.schedulers {
		if sc.nReady < 0 || sc.nMem < 0 || sc.nALU < 0 || sc.nBar < 0 {
			fail("scheduler %d has a negative class counter (ready=%d mem=%d alu=%d bar=%d)",
				i, sc.nReady, sc.nMem, sc.nALU, sc.nBar)
		}
		nReady += sc.nReady
	}
	if pop != nReady {
		fail("ready bitset population %d != cached ready count %d", pop, nReady)
	}
	for wi, wd := range s.ready {
		for wd != 0 {
			slot := wi*64 + bits.TrailingZeros64(wd)
			wd &= wd - 1
			if slot >= len(s.Slots) || s.Slots[slot] == nil {
				fail("ready bit set for empty slot %d", slot)
				continue
			}
			if got := s.Slots[slot].IssueState; got != warp.BlockedNot {
				fail("ready bit set for slot %d but its cached class is %v", slot, got)
			}
		}
	}

	wheel := 0
	for _, entries := range s.wb.slots {
		wheel += len(entries)
	}
	if wheel != s.wb.pending {
		fail("writeback wheel holds %d entries but pending counter is %d", wheel, s.wb.pending)
	}

	return errors.Join(errs...)
}
