package sm

import (
	"testing"

	"repro/internal/config"
	"repro/internal/cta"
	"repro/internal/event"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/warp"
)

// testController admits CTAs greedily like the baseline dispatcher.
type testController struct {
	grid    *cta.Grid
	retired []int
}

func (tc *testController) Cycle(s *SM) {
	for {
		c := tc.grid.Next(func(regs, smem, warps, threads int) bool {
			return s.HasCapacityFor(regs, smem) && s.CanActivateFor(warps, threads)
		})
		if c == nil {
			return
		}
		s.AddResident(c)
		s.Activate(c)
	}
}
func (tc *testController) CTARetired(s *SM, c *warp.CTA) {
	tc.retired = append(tc.retired, c.FlatID)
}
func (tc *testController) LoadsDrained(s *SM, c *warp.CTA) {}

// rig bundles one SM with its environment for direct pipeline tests.
type rig struct {
	cfg  config.GPUConfig
	ev   *event.Queue
	sm   *SM
	ctl  *testController
	gmem *mem.Backing
}

func newRig(t *testing.T, cfg config.GPUConfig, l *isa.Launch) *rig {
	t.Helper()
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	ev := event.NewQueue()
	gmem := mem.NewBacking()
	msys := mem.NewSystem(&cfg, ev)
	ctl := &testController{grid: cta.NewGrid(l, &cfg)}
	s := New(0, &cfg, ev, msys, gmem, 1, ctl)
	return &rig{cfg: cfg, ev: ev, sm: s, ctl: ctl, gmem: gmem}
}

// run cycles the SM until the grid drains or maxCycles elapse.
func (r *rig) run(t *testing.T, maxCycles int64) {
	t.Helper()
	for c := int64(1); ; c++ {
		r.sm.Cycle()
		if r.ctl.grid.Remaining() == 0 && r.sm.Idle() {
			return
		}
		r.ev.AdvanceTo(c)
		if c >= maxCycles {
			t.Fatalf("SM did not drain in %d cycles", maxCycles)
		}
	}
}

func launch(k *isa.Kernel, ctas, block int, params ...uint32) *isa.Launch {
	return &isa.Launch{Kernel: k, GridDim: isa.Dim1(ctas), BlockDim: isa.Dim1(block), Params: params}
}

func aluKernel(n int) *isa.Kernel {
	b := isa.NewBuilder("alu")
	b.MovImm(0, 1)
	for i := 0; i < n; i++ {
		b.IAddImm(0, 0, 1)
	}
	b.Exit()
	return b.MustBuild()
}

func TestALUDependencyStalls(t *testing.T) {
	// A chain of dependent adds: each issue must wait ALULatency.
	cfg := config.Small()
	cfg.NumSMs = 1
	const chain = 10
	r := newRig(t, cfg, launch(aluKernel(chain), 1, 32))
	r.run(t, 10000)
	st := r.sm.Stats
	// chain+2 instructions, each (after the first) stalled ~ALULatency.
	minCycles := int64(chain * cfg.ALULatency)
	if st.Cycles < minCycles {
		t.Fatalf("cycles = %d, want >= %d (dependent chain must stall)", st.Cycles, minCycles)
	}
	if st.SlotStallALU == 0 {
		t.Fatal("expected ALU-dependency stalls")
	}
	if st.Issued != chain+2 {
		t.Fatalf("issued = %d, want %d", st.Issued, chain+2)
	}
}

func TestIndependentWarpsHideALULatency(t *testing.T) {
	// Many warps: the scheduler interleaves them, so total cycles grow
	// far slower than warps x chain latency.
	cfg := config.Small()
	cfg.NumSMs = 1
	one := newRig(t, cfg, launch(aluKernel(10), 1, 32))
	one.run(t, 100000)
	many := newRig(t, cfg, launch(aluKernel(10), 1, 512)) // 16 warps
	many.run(t, 100000)
	if many.sm.Stats.Cycles > one.sm.Stats.Cycles*4 {
		t.Fatalf("16 warps took %d cycles vs 1 warp %d: latency not hidden",
			many.sm.Stats.Cycles, one.sm.Stats.Cycles)
	}
}

func TestBarrierSynchronizesCTA(t *testing.T) {
	b := isa.NewBuilder("bar")
	b.Bar()
	b.Exit()
	cfg := config.Small()
	r := newRig(t, cfg, launch(b.MustBuild(), 1, 128)) // 4 warps
	r.run(t, 10000)
	if r.sm.Stats.BarrierReleases != 1 {
		t.Fatalf("barrier releases = %d, want 1", r.sm.Stats.BarrierReleases)
	}
	if len(r.ctl.retired) != 1 {
		t.Fatalf("retired = %v", r.ctl.retired)
	}
}

func TestBarrierStallsUnevenWarps(t *testing.T) {
	// Warp 0 does extra work before the barrier; others must wait.
	b := isa.NewBuilder("uneven")
	b.S2R(0, isa.SrWarpID)
	b.SetpImm(1, isa.CmpIEQ, 0, 0)
	b.Bra(1, "slow", "meet")
	b.Jmp("meet")
	b.Label("slow")
	for i := 0; i < 20; i++ {
		b.IAddImm(2, 2, 1) // dependent chain: slow
	}
	b.Label("meet")
	b.Bar()
	b.Exit()
	cfg := config.Small()
	r := newRig(t, cfg, launch(b.MustBuild(), 1, 64))
	r.run(t, 100000)
	if r.sm.Stats.SlotStallBar == 0 {
		t.Fatal("expected barrier stalls from the fast warp")
	}
	if r.sm.Stats.BarrierReleases != 1 {
		t.Fatalf("releases = %d", r.sm.Stats.BarrierReleases)
	}
}

func loadKernel() *isa.Kernel {
	b := isa.NewBuilder("ld")
	b.S2R(0, isa.SrTidX)
	b.ShlImm(1, 0, 2)
	b.LdParam(2, 0)
	b.IAdd(2, 2, 1)
	b.LdG(3, 2, 0)
	b.IAdd(4, 3, 3) // consume the load -> stall until it returns
	b.Exit()
	return b.MustBuild()
}

func TestGlobalLoadStallsAndCompletes(t *testing.T) {
	cfg := config.Small()
	r := newRig(t, cfg, launch(loadKernel(), 1, 32, 0x10000))
	r.run(t, 100000)
	st := r.sm.Stats
	if st.SlotStallMem == 0 {
		t.Fatal("expected memory stalls on the dependent add")
	}
	if st.GlobalTxns != 1 {
		t.Fatalf("transactions = %d, want 1 (fully coalesced)", st.GlobalTxns)
	}
	// The stall must be at least the L2+interconnect round trip.
	min := int64(2*cfg.InterconnectDelay + cfg.L2.Latency)
	if st.Cycles < min {
		t.Fatalf("cycles = %d, want >= %d", st.Cycles, min)
	}
}

func TestUncoalescedLoadGeneratesManyTxns(t *testing.T) {
	b := isa.NewBuilder("gather")
	b.S2R(0, isa.SrTidX)
	b.IMulImm(1, 0, 512) // 512-byte stride: one line per lane
	b.LdParam(2, 0)
	b.IAdd(2, 2, 1)
	b.LdG(3, 2, 0)
	b.IAdd(4, 3, 3)
	b.Exit()
	cfg := config.Small()
	r := newRig(t, cfg, launch(b.MustBuild(), 1, 32, 0x10000))
	r.run(t, 100000)
	if r.sm.Stats.GlobalTxns != 32 {
		t.Fatalf("transactions = %d, want 32", r.sm.Stats.GlobalTxns)
	}
}

func TestSharedMemoryBankConflictSerializes(t *testing.T) {
	// All lanes hit the same bank with different words: 32-way conflict.
	mk := func(stride int32) *isa.Kernel {
		b := isa.NewBuilder("smem")
		b.SharedMem(16 * 1024)
		b.S2R(0, isa.SrTidX)
		b.IMulImm(1, 0, stride)
		b.StS(1, 0, 0)
		b.LdS(2, 1, 0)
		b.IAdd(3, 2, 2)
		b.Exit()
		return b.MustBuild()
	}
	cfg := config.Small()
	fast := newRig(t, cfg, launch(mk(4), 1, 32)) // conflict-free
	fast.run(t, 100000)
	slow := newRig(t, cfg, launch(mk(128), 1, 32)) // 32-way conflicts
	slow.run(t, 100000)
	if slow.sm.Stats.SMemConflictCyc == 0 {
		t.Fatal("expected bank-conflict cycles")
	}
	if slow.sm.Stats.Cycles <= fast.sm.Stats.Cycles {
		t.Fatalf("conflicted access (%d cyc) must be slower than conflict-free (%d cyc)",
			slow.sm.Stats.Cycles, fast.sm.Stats.Cycles)
	}
}

func TestCTAResourceAccounting(t *testing.T) {
	b := isa.NewBuilder("res").ReserveRegs(16).SharedMem(1024)
	b.Nop().Exit()
	k := b.MustBuild()
	cfg := config.Small()
	l := launch(k, 100, 64)
	r := newRig(t, cfg, l)
	// After the first cycle the controller saturates the SM.
	r.sm.Cycle()
	fp := cta.ComputeFootprint(l, &cfg)
	if r.sm.ActiveCTAs != cfg.MaxCTAsPerSM {
		t.Fatalf("active CTAs = %d, want %d", r.sm.ActiveCTAs, cfg.MaxCTAsPerSM)
	}
	if r.sm.RegsUsed != fp.Regs*cfg.MaxCTAsPerSM {
		t.Fatalf("regs used = %d", r.sm.RegsUsed)
	}
	if r.sm.SMemUsed != fp.SMem*cfg.MaxCTAsPerSM {
		t.Fatalf("smem used = %d", r.sm.SMemUsed)
	}
	r.run(t, 1000000)
	if r.sm.RegsUsed != 0 || r.sm.SMemUsed != 0 || r.sm.WarpsUsed != 0 || r.sm.ThreadsUsed != 0 {
		t.Fatalf("leaked resources: regs=%d smem=%d warps=%d threads=%d",
			r.sm.RegsUsed, r.sm.SMemUsed, r.sm.WarpsUsed, r.sm.ThreadsUsed)
	}
	if len(r.ctl.retired) != 100 {
		t.Fatalf("retired = %d, want 100", len(r.ctl.retired))
	}
}

func TestGTOPrefersGreedyWarp(t *testing.T) {
	// GTO should keep issuing from one warp while it is ready; with
	// independent instructions, consecutive issues come from one warp.
	b := isa.NewBuilder("ind")
	for i := 0; i < 8; i++ {
		b.MovImm(isa.Reg(i), uint32(i))
	}
	b.Exit()
	cfg := config.Small()
	cfg.NumSchedulers = 1
	r := newRig(t, cfg, launch(b.MustBuild(), 1, 64)) // 2 warps
	// Cycle a few times and confirm one warp runs ahead.
	for c := int64(1); c <= 4; c++ {
		r.sm.Cycle()
		r.ev.AdvanceTo(c)
	}
	w0 := r.sm.Slots[0]
	w1 := r.sm.Slots[1]
	if w0 == nil || w1 == nil {
		t.Fatal("warps not attached")
	}
	diff := w0.IssuedInstrs - w1.IssuedInstrs
	if diff < 0 {
		diff = -diff
	}
	if diff < 3 {
		t.Fatalf("GTO should run one warp ahead; issued %d vs %d", w0.IssuedInstrs, w1.IssuedInstrs)
	}
}

func TestLRRInterleavesWarps(t *testing.T) {
	b := isa.NewBuilder("ind")
	for i := 0; i < 8; i++ {
		b.MovImm(isa.Reg(i), uint32(i))
	}
	b.Exit()
	cfg := config.Small()
	cfg.NumSchedulers = 1
	cfg.Scheduler = config.SchedLRR
	r := newRig(t, cfg, launch(b.MustBuild(), 1, 64))
	for c := int64(1); c <= 4; c++ {
		r.sm.Cycle()
		r.ev.AdvanceTo(c)
	}
	w0, w1 := r.sm.Slots[0], r.sm.Slots[1]
	diff := w0.IssuedInstrs - w1.IssuedInstrs
	if diff < -1 || diff > 1 {
		t.Fatalf("LRR should interleave; issued %d vs %d", w0.IssuedInstrs, w1.IssuedInstrs)
	}
}

func TestSFUInitiationInterval(t *testing.T) {
	b := isa.NewBuilder("sfu")
	b.MovImm(0, 0x3F800000) // 1.0f
	b.FSin(1, 0)
	b.FSin(2, 0)
	b.FSin(3, 0)
	b.Exit()
	cfg := config.Small()
	cfg.NumSchedulers = 1
	r := newRig(t, cfg, launch(b.MustBuild(), 1, 32))
	r.run(t, 10000)
	// 3 SFU ops with init interval 4 need >= 8 extra cycles beyond issue.
	if r.sm.Stats.SlotStallStr == 0 {
		t.Fatal("expected structural stalls from SFU initiation interval")
	}
}

func TestDeactivateReactivate(t *testing.T) {
	// Directly exercise the VT primitives the controller uses.
	cfg := config.Small()
	k := loadKernel()
	l := launch(k, 4, 32, 0x10000)
	r := newRig(t, cfg, l)
	r.sm.Cycle() // admit CTAs
	c := r.sm.Resident[0]
	if c.State != warp.CTAActive {
		t.Fatalf("state = %v", c.State)
	}
	before := r.sm.WarpsUsed
	r.sm.Deactivate(c)
	if c.State != warp.CTAInactiveReady {
		t.Fatalf("state after deactivate = %v (no loads outstanding)", c.State)
	}
	if r.sm.WarpsUsed != before-len(c.Warps) {
		t.Fatal("warp slots not released")
	}
	for _, w := range r.sm.Slots {
		if w != nil && w.CTA == c {
			t.Fatal("slot still bound to deactivated CTA")
		}
	}
	r.sm.Activate(c)
	if c.State != warp.CTAActive || r.sm.WarpsUsed != before {
		t.Fatal("reactivation failed")
	}
	if c.Activations != 2 {
		t.Fatalf("activations = %d, want 2", c.Activations)
	}
}

func TestStatsIPC(t *testing.T) {
	var st Stats
	if st.IPC() != 0 {
		t.Fatal("empty stats IPC must be 0")
	}
	st.Cycles, st.Issued = 100, 250
	if st.IPC() != 2.5 {
		t.Fatalf("IPC = %v", st.IPC())
	}
}

func TestQuiescentDetection(t *testing.T) {
	cfg := config.Small()
	r := newRig(t, cfg, launch(loadKernel(), 1, 32, 0x10000))
	if !r.sm.Quiescent() {
		t.Fatal("empty SM must be quiescent")
	}
	// Admit and run until the load is issued and the warp stalls.
	for c := int64(1); c < 50; c++ {
		r.sm.Cycle()
		r.ev.AdvanceTo(c)
	}
	// At this point the only warp is blocked on memory and the LSU is
	// drained: the SM must be quiescent so the engine can skip ahead.
	if !r.sm.Quiescent() {
		t.Fatal("memory-stalled SM must be quiescent")
	}
}

func TestTwoLevelScheduler(t *testing.T) {
	cfg := config.Small()
	cfg.Scheduler = config.SchedTwoLevel
	cfg.FetchGroupWarps = 2
	cfg.NumSchedulers = 1
	r := newRig(t, cfg, launch(aluKernel(12), 4, 128)) // 16 warps over 4 CTAs
	r.run(t, 1000000)
	if len(r.ctl.retired) != 4 {
		t.Fatalf("retired %d CTAs", len(r.ctl.retired))
	}
	if r.sm.Stats.Issued == 0 {
		t.Fatal("nothing issued under two-level scheduling")
	}
}

func TestTwoLevelSwapsStalledWarpsOut(t *testing.T) {
	// Memory-stalled warps must leave the fetch group so others issue.
	cfg := config.Small()
	cfg.Scheduler = config.SchedTwoLevel
	cfg.FetchGroupWarps = 2
	cfg.NumSchedulers = 1
	r := newRig(t, cfg, launch(loadKernel(), 8, 32, 0x10000))
	r.run(t, 1000000)
	if len(r.ctl.retired) != 8 {
		t.Fatalf("retired %d CTAs", len(r.ctl.retired))
	}
}

func TestRegFileBankConflicts(t *testing.T) {
	// An instruction reading two registers in the same bank stalls the
	// scheduler; with 2 banks, regs 0 and 2 collide.
	// Many warps keep the scheduler saturated, so the extra operand-read
	// cycle per conflicting instruction becomes the throughput limit.
	mk := func(banks int) *rig {
		b := isa.NewBuilder("rf")
		b.MovImm(0, 1)
		b.MovImm(2, 2)
		for i := 0; i < 20; i++ {
			d := isa.Reg(4 + i%8)
			b.Emit(isa.Instr{Op: isa.OpIAdd, Dst: d, SrcA: 0, SrcB: 2})
		}
		b.Exit()
		cfg := config.Small()
		cfg.RegFileBanks = banks
		cfg.NumSchedulers = 1
		r := newRig(t, cfg, launch(b.MustBuild(), 2, 256)) // 16 warps
		r.run(t, 100000)
		return r
	}
	off := mk(0)
	on := mk(2)
	if on.sm.Stats.RFBankConflictCyc == 0 {
		t.Fatal("expected register bank conflicts with 2 banks")
	}
	if off.sm.Stats.RFBankConflictCyc != 0 {
		t.Fatal("disabled model must not count conflicts")
	}
	if on.sm.Stats.Cycles <= off.sm.Stats.Cycles {
		t.Fatalf("conflicts must cost cycles: %d vs %d",
			on.sm.Stats.Cycles, off.sm.Stats.Cycles)
	}
}

func TestRegFileBanksNoFalseConflicts(t *testing.T) {
	// Registers 0 and 1 in different banks: no conflict with 16 banks.
	b := isa.NewBuilder("rfok")
	b.MovImm(0, 1)
	b.MovImm(1, 2)
	b.IAdd(2, 0, 1)
	b.Exit()
	cfg := config.Small()
	cfg.RegFileBanks = 16
	r := newRig(t, cfg, launch(b.MustBuild(), 1, 32))
	r.run(t, 100000)
	if r.sm.Stats.RFBankConflictCyc != 0 {
		t.Fatalf("false conflicts: %d", r.sm.Stats.RFBankConflictCyc)
	}
}
