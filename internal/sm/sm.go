// Package sm implements the streaming multiprocessor pipeline: warp slots,
// multiple warp schedulers (greedy-then-oldest, loose round-robin, or
// two-level), scoreboard-checked issue, SP/SFU execution pipelines, a
// load-store unit with coalescing and MSHR backpressure, shared-memory
// bank-conflict serialization, optional register-file bank conflicts, and
// CTA barriers. CTAs may come from multiple concurrent kernels; every CTA
// carries its own resource footprint. Residency and activation decisions
// are delegated to a Controller, which is where the baseline and Virtual
// Thread policies differ.
package sm

import (
	"repro/internal/config"
	"repro/internal/event"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/warp"
)

// Controller is the CTA scheduling policy attached to an SM. The SM calls
// Cycle before issuing each cycle so the policy can assign new CTAs,
// activate ready ones, and (under VT) swap stalled ones out; it calls
// CTARetired when a CTA's last warp exits and LoadsDrained when a CTA's
// last outstanding global load returns.
type Controller interface {
	Cycle(s *SM)
	CTARetired(s *SM, c *warp.CTA)
	LoadsDrained(s *SM, c *warp.CTA)
}

// Stats collects per-SM pipeline counters.
type Stats struct {
	Cycles       int64
	Issued       int64 // warp instructions issued
	ThreadInstrs int64 // thread instructions (lanes x issues)

	// Issue-slot stall breakdown: one sample per scheduler per cycle.
	SlotIssued   int64
	SlotStallMem int64 // every candidate blocked on a global-load dependence
	SlotStallALU int64 // blocked on short-latency dependences
	SlotStallBar int64 // blocked at barriers
	SlotStallStr int64 // ready warp existed but its unit was busy
	SlotIdle     int64 // no schedulable warp attached

	// Occupancy accumulators (per cycle).
	ActiveWarpAccum   int64 // warps bound to slots
	ResidentWarpAccum int64 // warps of all resident CTAs (incl. inactive)
	ActiveCTAAccum    int64
	ResidentCTAAccum  int64

	SFUIssued         int64 // warp instructions issued to the SFU
	SMemAccesses      int64 // shared-memory warp accesses
	CTAsCompleted     int64
	BarrierReleases   int64
	SMemConflictCyc   int64 // extra cycles lost to shared-memory bank conflicts
	RFBankConflictCyc int64 // scheduler cycles lost to register-file bank conflicts
	GlobalTxns        int64 // coalesced global transactions generated
	LSURetries        int64 // transactions retried after L1 MSHR rejection

	// IssuedPerKernel splits Issued by launch index in multi-kernel runs.
	IssuedPerKernel []int64
}

// IPC returns issued warp instructions per cycle.
func (st *Stats) IPC() float64 {
	if st.Cycles == 0 {
		return 0
	}
	return float64(st.Issued) / float64(st.Cycles)
}

// lsuOp is one in-flight warp memory instruction being streamed into the
// memory system, one coalesced line per cycle.
type lsuOp struct {
	w         *warp.Warp
	dst       isa.Reg
	write     bool
	lines     []uint32
	next      int // next line to inject
	remaining int // responses outstanding (reads)
}

// SM is one streaming multiprocessor.
type SM struct {
	ID   int
	Cfg  *config.GPUConfig
	Ev   *event.Queue
	Mem  *mem.System
	Gmem *mem.Backing

	Ctl Controller

	// Effective scheduling limits under the configured policy.
	MaxCTAs    int
	MaxWarps   int
	MaxThreads int

	Slots []*warp.Warp // warp slots; nil = free

	// Resident CTAs: active and (under VT) inactive.
	Resident    []*warp.CTA
	ActiveCTAs  int
	RegsUsed    int
	SMemUsed    int
	ThreadsUsed int // threads bound to slots (scheduling resource)
	WarpsUsed   int // warp slots bound

	schedulers []*scheduler
	sfuFreeAt  int64
	smemFreeAt int64
	lsuQueue   []*lsuOp

	Stats Stats

	addrBuf []uint32
	srcBuf  []isa.Reg
}

// New builds an SM under the configuration; numKernels sizes the
// per-kernel issue counters (1 for single-launch runs). Slots and limits
// are derived from the policy's effective scheduling limits.
func New(id int, cfg *config.GPUConfig, ev *event.Queue, msys *mem.System,
	gmem *mem.Backing, numKernels int, ctl Controller) *SM {

	if numKernels < 1 {
		numKernels = 1
	}
	maxCTAs, maxWarps, maxThreads := cfg.EffectiveSchedulingLimits()
	s := &SM{
		ID:         id,
		Cfg:        cfg,
		Ev:         ev,
		Mem:        msys,
		Gmem:       gmem,
		Ctl:        ctl,
		MaxCTAs:    maxCTAs,
		MaxWarps:   maxWarps,
		MaxThreads: maxThreads,
		Slots:      make([]*warp.Warp, maxWarps),
		addrBuf:    make([]uint32, cfg.WarpSize),
		srcBuf:     make([]isa.Reg, 8),
	}
	s.Stats.IssuedPerKernel = make([]int64, numKernels)
	for i := 0; i < cfg.NumSchedulers; i++ {
		s.schedulers = append(s.schedulers, newScheduler(s, i))
	}
	return s
}

// HasCapacityFor reports whether a CTA needing the given registers and
// shared memory fits on the SM — the capacity-limit check that Virtual
// Thread admits against.
func (s *SM) HasCapacityFor(regs, smem int) bool {
	return s.RegsUsed+regs <= s.Cfg.RegFileSize &&
		s.SMemUsed+smem <= s.Cfg.SharedMemPerSM
}

// CanActivateFor reports whether the scheduling structures can host one
// more active CTA of the given shape (CTA slots, warp slots, thread
// slots).
func (s *SM) CanActivateFor(warps, threads int) bool {
	return s.ActiveCTAs < s.MaxCTAs &&
		s.WarpsUsed+warps <= s.MaxWarps &&
		s.ThreadsUsed+threads <= s.MaxThreads
}

// CanActivateCTA reports whether the specific CTA can take warp slots now.
func (s *SM) CanActivateCTA(c *warp.CTA) bool {
	return s.CanActivateFor(len(c.Warps), c.Threads)
}

// AddResident makes the CTA resident, charging its capacity footprint.
func (s *SM) AddResident(c *warp.CTA) {
	c.AssignedAt = s.Ev.Now()
	s.Resident = append(s.Resident, c)
	s.RegsUsed += c.RegsAlloc
	s.SMemUsed += c.SMemAlloc
}

// Activate binds the CTA's warps to free warp slots. The caller must have
// checked CanActivate.
func (s *SM) Activate(c *warp.CTA) {
	slot := 0
	for _, w := range c.Warps {
		for s.Slots[slot] != nil {
			slot++
		}
		s.Slots[slot] = w
	}
	s.WarpsUsed += len(c.Warps)
	s.ThreadsUsed += c.Threads
	s.ActiveCTAs++
	c.State = warp.CTAActive
	c.ActivatedAt = s.Ev.Now()
	c.Activations++
}

// Deactivate unbinds the CTA's warps from their slots (a VT swap-out). The
// CTA stays resident; its registers and shared memory are untouched.
func (s *SM) Deactivate(c *warp.CTA) {
	for i, w := range s.Slots {
		if w != nil && w.CTA == c {
			s.Slots[i] = nil
		}
	}
	s.WarpsUsed -= len(c.Warps)
	s.ThreadsUsed -= c.Threads
	s.ActiveCTAs--
	if s.anyOutstandingLoads(c) {
		c.State = warp.CTAInactiveWaiting
	} else {
		c.State = warp.CTAInactiveReady
	}
}

func (s *SM) anyOutstandingLoads(c *warp.CTA) bool {
	for _, w := range c.Warps {
		if w.OutstandingLoads > 0 {
			return true
		}
	}
	return false
}

// retire releases everything a completed CTA holds and notifies the
// controller.
func (s *SM) retire(c *warp.CTA) {
	s.Deactivate(c)
	c.State = warp.CTADone
	s.RegsUsed -= c.RegsAlloc
	s.SMemUsed -= c.SMemAlloc
	for i, r := range s.Resident {
		if r == c {
			s.Resident = append(s.Resident[:i], s.Resident[i+1:]...)
			break
		}
	}
	s.Stats.CTAsCompleted++
	s.Ctl.CTARetired(s, c)
}

// Idle reports whether the SM holds no work at all.
func (s *SM) Idle() bool { return len(s.Resident) == 0 }

// Cycle advances the SM by one core cycle. It returns true when any warp
// instruction issued (used by the engine's idle-skip heuristic).
func (s *SM) Cycle() bool {
	s.Stats.Cycles++
	s.Ctl.Cycle(s)
	s.lsuTick()

	issued := false
	for _, sch := range s.schedulers {
		if sch.issueOne() {
			issued = true
		}
	}
	s.accumOccupancy()
	return issued
}

// Quiescent reports whether nothing inside the SM can change state without
// an external event: no LSU traffic pending and no warp ready to issue.
// The engine uses it to fast-forward across long memory stalls.
func (s *SM) Quiescent() bool {
	if len(s.lsuQueue) > 0 {
		return false
	}
	now := s.Ev.Now()
	if now < s.sfuFreeAt || now < s.smemFreeAt {
		return false
	}
	for _, w := range s.Slots {
		if w == nil || w.Finished {
			continue
		}
		if w.BlockedState(w.CTA.Launch.Kernel.Code, s.srcBuf) == warp.BlockedNot {
			return false
		}
	}
	return true
}

func (s *SM) accumOccupancy() {
	st := &s.Stats
	st.ActiveWarpAccum += int64(s.WarpsUsed)
	st.ActiveCTAAccum += int64(s.ActiveCTAs)
	st.ResidentCTAAccum += int64(len(s.Resident))
	rw := 0
	for _, c := range s.Resident {
		rw += len(c.Warps)
	}
	st.ResidentWarpAccum += int64(rw)
}

// lsuTick streams one coalesced transaction of the head LSU operation into
// the memory system per cycle, retrying on MSHR backpressure.
func (s *SM) lsuTick() {
	if len(s.lsuQueue) == 0 {
		return
	}
	op := s.lsuQueue[0]
	line := op.lines[op.next]
	var done func()
	if !op.write {
		done = func() {
			op.remaining--
			if op.remaining == 0 {
				s.loadComplete(op)
			}
		}
	}
	if !s.Mem.AccessGlobal(s.ID, line, op.write, done) {
		s.Stats.LSURetries++
		return // MSHRs full; retry next cycle
	}
	op.next++
	if op.next == len(op.lines) {
		s.lsuQueue = s.lsuQueue[1:]
	}
}

// loadComplete fires when the last line of a warp load returns: the
// destination becomes readable and, if this was the CTA's last outstanding
// load while swapped out, the controller learns it is ready again.
func (s *SM) loadComplete(op *lsuOp) {
	w := op.w
	w.SB.ClearPending(op.dst)
	w.OutstandingLoads--
	c := w.CTA
	if c.State == warp.CTAInactiveWaiting && !s.anyOutstandingLoads(c) {
		c.State = warp.CTAInactiveReady
		s.Ctl.LoadsDrained(s, c)
	}
}

// lsuHasRoom reports whether another warp memory instruction can enter the
// LSU queue.
func (s *SM) lsuHasRoom() bool { return len(s.lsuQueue) < s.Cfg.LSUQueueDepth }
