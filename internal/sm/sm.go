// Package sm implements the streaming multiprocessor pipeline: warp slots,
// multiple warp schedulers (greedy-then-oldest, loose round-robin, or
// two-level), scoreboard-checked issue, SP/SFU execution pipelines, a
// load-store unit with coalescing and MSHR backpressure, shared-memory
// bank-conflict serialization, optional register-file bank conflicts, and
// CTA barriers. CTAs may come from multiple concurrent kernels; every CTA
// carries its own resource footprint. Residency and activation decisions
// are delegated to a Controller, which is where the baseline and Virtual
// Thread policies differ.
package sm

import (
	"repro/internal/config"
	"repro/internal/event"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/warp"
)

// Controller is the CTA scheduling policy attached to an SM. The SM calls
// Cycle before issuing each cycle so the policy can assign new CTAs,
// activate ready ones, and (under VT) swap stalled ones out; it calls
// CTARetired when a CTA's last warp exits and LoadsDrained when a CTA's
// last outstanding global load returns.
type Controller interface {
	Cycle(s *SM)
	CTARetired(s *SM, c *warp.CTA)
	LoadsDrained(s *SM, c *warp.CTA)
}

// Probe observes SM state transitions for telemetry. Every method is
// invoked synchronously at the transition site and must be a pure
// observer: a Probe may not mutate simulator state, and results must be
// bit-identical with and without one attached (gpu's telemetry
// equivalence test enforces this, like CheckInvariants). Under the
// parallel engine CTADeactivated can fire on a worker goroutine (CTA
// retirement happens inside the step phase), so implementations must not
// share mutable state across SMs; per-SM sharding is race-free because
// each SM is driven by exactly one goroutine at a time.
type Probe interface {
	// CTAActivated fires after the CTA's warps are bound to warp slots
	// (fresh activations and VT swap-ins alike).
	CTAActivated(s *SM, c *warp.CTA)
	// CTADeactivated fires after the CTA's warps are unbound from their
	// slots (VT swap-outs and CTA retirement).
	CTADeactivated(s *SM, c *warp.CTA)
	// SMWoke fires when a per-SM fast-forward span ends: the SM slept
	// from cycle from up to (excluding) cycle to.
	SMWoke(s *SM, from, to int64)
}

// Stats collects per-SM pipeline counters.
type Stats struct {
	Cycles       int64
	Issued       int64 // warp instructions issued
	ThreadInstrs int64 // thread instructions (lanes x issues)

	// Issue-slot stall breakdown: one sample per scheduler per cycle.
	SlotIssued   int64
	SlotStallMem int64 // every candidate blocked on a global-load dependence
	SlotStallALU int64 // blocked on short-latency dependences
	SlotStallBar int64 // blocked at barriers
	SlotStallStr int64 // ready warp existed but its unit was busy
	SlotIdle     int64 // no schedulable warp attached

	// Occupancy accumulators (per cycle).
	ActiveWarpAccum   int64 // warps bound to slots
	ResidentWarpAccum int64 // warps of all resident CTAs (incl. inactive)
	ActiveCTAAccum    int64
	ResidentCTAAccum  int64

	SFUIssued         int64 // warp instructions issued to the SFU
	SMemAccesses      int64 // shared-memory warp accesses
	CTAsCompleted     int64
	BarrierReleases   int64
	SMemConflictCyc   int64 // extra cycles lost to shared-memory bank conflicts
	RFBankConflictCyc int64 // scheduler cycles lost to register-file bank conflicts
	GlobalTxns        int64 // coalesced global transactions generated
	LSURetries        int64 // transactions retried after L1 MSHR rejection

	// IssuedPerKernel splits Issued by launch index in multi-kernel runs.
	IssuedPerKernel []int64
}

// IPC returns issued warp instructions per cycle.
func (st *Stats) IPC() float64 {
	if st.Cycles == 0 {
		return 0
	}
	return float64(st.Issued) / float64(st.Cycles)
}

// lsuOp is one in-flight warp memory instruction being streamed into the
// memory system, one coalesced line per cycle. Ops live in the SM's
// lsuPool arena and are referenced by index (pool growth would invalidate
// pointers); the lines buffer is recycled with the op.
type lsuOp struct {
	w         *warp.Warp
	dst       isa.Reg
	write     bool
	lines     []uint32
	next      int // next line to inject
	remaining int // responses outstanding (reads)
}

// farWB is one writeback completion scheduled past the local wheel's
// horizon (out-of-range latency configs only); pooled like lsuOps.
type farWB struct {
	w   *warp.Warp
	reg isa.Reg
}

// SM event kinds delivered through HandleEvent.
const (
	evLoadLine uint8 = iota // one coalesced line of a global load arrived (a = lsuPool index)
	evFarWB                 // beyond-wheel writeback latency elapsed (a = farWBs index)
)

// HandleEvent dispatches the SM's typed memory-completion events.
func (s *SM) HandleEvent(kind uint8, a, b uint32) {
	switch kind {
	case evLoadLine:
		op := &s.lsuPool[a]
		op.remaining--
		if op.remaining == 0 {
			s.loadComplete(int32(a))
		}
	case evFarWB:
		rec := s.farWBs[a]
		s.farWBs[a] = farWB{}
		s.farWBFree = append(s.farWBFree, int32(a))
		s.WakeUp()
		rec.w.SB.ClearPending(rec.reg)
		s.refreshWarp(rec.w)
	}
}

// SM is one streaming multiprocessor.
type SM struct {
	ID   int
	Cfg  *config.GPUConfig
	Ev   *event.Lane // per-SM event lane over the shared queue
	Mem  *mem.System
	Gmem *mem.Backing

	Ctl Controller

	// Probe, when non-nil, observes CTA bind/unbind transitions and
	// fast-forward spans for telemetry. Nil costs one pointer check at
	// each (rare) transition; see the Probe contract above.
	Probe Probe

	// Glog, when non-nil, defers global-memory lane loops so the parallel
	// engine can commit them in SM-index order after the cycle barrier.
	// Nil (the sequential default) executes them inline at issue.
	Glog *warp.GmemLog

	// Effective scheduling limits under the configured policy.
	MaxCTAs    int
	MaxWarps   int
	MaxThreads int

	Slots []*warp.Warp // warp slots; nil = free

	// Fit reports whether a CTA with the given footprint can launch
	// right now (capacity and scheduling limits). Built once in New so
	// per-cycle dispatch avoids allocating a fresh closure.
	Fit func(regs, smem, warps, threads int) bool

	// Resident CTAs: active and (under VT) inactive.
	Resident    []*warp.CTA
	ActiveCTAs  int
	RegsUsed    int
	SMemUsed    int
	ThreadsUsed int // threads bound to slots (scheduling resource)
	WarpsUsed   int // warp slots bound

	schedulers []*scheduler
	sfuFreeAt  int64
	smemFreeAt int64

	// Load-store unit state: ops live in the lsuPool arena, recycled
	// through lsuFree; lsuQueue[lsuHead:] orders in-flight ops by pool
	// index (head index instead of re-slicing so the backing array is
	// reused instead of reallocated as the queue drains and refills).
	lsuPool  []lsuOp
	lsuFree  []int32
	lsuQueue []int32
	lsuHead  int

	// Beyond-wheel writeback records (rare), pooled the same way.
	farWBs    []farWB
	farWBFree []int32

	wb wbWheel // short-latency writeback completions (SM-local)

	// DisableFastPath routes issue selection, stall classification, and
	// quiescence detection through the original full scans instead of the
	// incrementally maintained ready sets below. The cached state is
	// maintained either way, so the two modes are interchangeable and must
	// produce identical results (gpu's fast-path equivalence test).
	DisableFastPath bool

	// ready is a slot-indexed bitset of warps whose cached IssueState is
	// BlockedNot; restoreReady counts bound warps that would be ready but
	// for an in-flight CTA context restore (they keep the SM non-quiescent
	// exactly like the full Quiescent scan does). Both are maintained by
	// refreshWarp at every transition that can change a classification.
	ready        []uint64
	restoreReady int

	// Per-SM fast-forward (engine idle skip at SM granularity): while
	// asleep the engine runs neither CtlPhase nor StepPhase for this SM;
	// WakeUp charges the skipped span through AccountSkipped before any
	// state mutation makes the frozen classification stale.
	asleep    bool
	sleptFrom int64 // first fast-forwarded cycle
	wakeAt    int64 // earliest local-wheel completion at sleep time; 0 = none

	Stats Stats

	addrBuf []uint32
	srcBuf  []isa.Reg

	// sampLines is coalescing scratch for the functional-retire path
	// (see sampling.go); transient, never serialized.
	sampLines []uint32
}

// wbEntry is one pending scoreboard clear.
type wbEntry struct {
	cycle int64
	w     *warp.Warp
	reg   isa.Reg
}

// wbWheel is a timing wheel for the SM's own fixed-latency writebacks (ALU,
// SFU, shared-memory loads). These completions touch only the issuing
// warp's scoreboard, so routing them through the shared event queue bought
// nothing but heap churn and a closure allocation per issued instruction;
// the wheel keeps them SM-local, which also lets the parallel engine retire
// them without locking. Completions commute with every same-cycle event
// (nothing reads a scoreboard between event callbacks), so draining at the
// start of the SM's cycle is timing-identical to the old queue events.
type wbWheel struct {
	slots   [][]wbEntry // ring, indexed by cycle & mask
	mask    int64
	drained int64 // completions at cycles <= drained have been applied
	pending int
}

func (wb *wbWheel) init(maxLat int) {
	size := int64(2)
	for size < int64(maxLat)+2 {
		size <<= 1
	}
	// Carve each slot's initial capacity from one slab so first-use
	// growth across the ring is a single allocation; hot slots that
	// outgrow it reallocate individually and keep the larger capacity.
	const slotCap = 2
	slab := make([]wbEntry, size*slotCap)
	wb.slots = make([][]wbEntry, size)
	for i := range wb.slots {
		wb.slots[i] = slab[i*slotCap : i*slotCap : (i+1)*slotCap]
	}
	wb.mask = size - 1
}

// schedule registers a scoreboard clear for reg of w at the given cycle.
// Cycles at or before the drain point are pulled to the next drain, which
// matches the old Queue.After(0, ...) behavior of firing before the next
// cycle's scheduling decisions.
func (wb *wbWheel) schedule(cycle int64, w *warp.Warp, reg isa.Reg) {
	if cycle <= wb.drained {
		cycle = wb.drained + 1
	}
	slot := cycle & wb.mask
	wb.slots[slot] = append(wb.slots[slot], wbEntry{cycle: cycle, w: w, reg: reg})
	wb.pending++
}

// capacity reports whether the wheel can represent a completion `delay`
// cycles out without aliasing.
func (wb *wbWheel) capacity() int64 { return wb.mask - 1 }

// drainTo applies every completion due at or before now, refreshing the
// retired warps' cached issue classification on s.
func (wb *wbWheel) drainTo(now int64, s *SM) {
	if wb.pending == 0 {
		wb.drained = now
		return
	}
	stop := now
	if max := wb.drained + wb.mask + 1; stop > max {
		stop = max // every slot visited once covers the whole ring
	}
	for c := wb.drained + 1; c <= stop; c++ {
		slot := c & wb.mask
		entries := wb.slots[slot]
		if len(entries) == 0 {
			continue
		}
		kept := entries[:0]
		for _, e := range entries {
			if e.cycle <= now {
				e.w.SB.ClearPending(e.reg)
				wb.pending--
				s.refreshWarp(e.w)
			} else {
				kept = append(kept, e)
			}
		}
		wb.slots[slot] = kept
	}
	wb.drained = now
}

// next returns the earliest pending completion cycle, ok=false when none.
func (wb *wbWheel) next() (int64, bool) {
	if wb.pending == 0 {
		return 0, false
	}
	min := int64(-1)
	for c := wb.drained + 1; c <= wb.drained+wb.mask+1; c++ {
		for _, e := range wb.slots[c&wb.mask] {
			if min < 0 || e.cycle < min {
				min = e.cycle
			}
		}
		if min >= 0 {
			return min, true
		}
	}
	return 0, false
}

// New builds an SM under the configuration; numKernels sizes the
// per-kernel issue counters (1 for single-launch runs). Slots and limits
// are derived from the policy's effective scheduling limits.
func New(id int, cfg *config.GPUConfig, ev *event.Queue, msys *mem.System,
	gmem *mem.Backing, numKernels int, ctl Controller) *SM {

	if numKernels < 1 {
		numKernels = 1
	}
	maxCTAs, maxWarps, maxThreads := cfg.EffectiveSchedulingLimits()
	s := &SM{
		ID:         id,
		Cfg:        cfg,
		Ev:         event.NewLane(ev),
		Mem:        msys,
		Gmem:       gmem,
		Ctl:        ctl,
		MaxCTAs:    maxCTAs,
		MaxWarps:   maxWarps,
		MaxThreads: maxThreads,
		Slots:      make([]*warp.Warp, maxWarps),
		ready:      make([]uint64, (maxWarps+63)/64),
		addrBuf:    make([]uint32, cfg.WarpSize),
		srcBuf:     make([]isa.Reg, 8),
	}
	s.Fit = func(regs, smem, warps, threads int) bool {
		return s.HasCapacityFor(regs, smem) && s.CanActivateFor(warps, threads)
	}
	s.Stats.IssuedPerKernel = make([]int64, numKernels)
	for i := 0; i < cfg.NumSchedulers; i++ {
		s.schedulers = append(s.schedulers, newScheduler(s, i))
	}
	maxLat := cfg.ALULatency
	if cfg.SFULatency > maxLat {
		maxLat = cfg.SFULatency
	}
	if l := cfg.SMemLatency + cfg.WarpSize; l > maxLat {
		maxLat = l // shared-memory latency grows with bank conflicts
	}
	s.wb.init(maxLat)
	return s
}

// scheduleWB registers a scoreboard clear for dst after lat cycles on the
// SM-local wheel, falling back to a typed event on the queue for latencies
// beyond the wheel's horizon (possible only with out-of-range configs).
func (s *SM) scheduleWB(lat int64, w *warp.Warp, dst isa.Reg) {
	if lat <= s.wb.capacity() {
		s.wb.schedule(s.Ev.Now()+lat, w, dst)
		return
	}
	var idx int32
	if n := len(s.farWBFree); n > 0 {
		idx = s.farWBFree[n-1]
		s.farWBFree = s.farWBFree[:n-1]
		s.farWBs[idx] = farWB{w: w, reg: dst}
	} else {
		idx = int32(len(s.farWBs))
		s.farWBs = append(s.farWBs, farWB{w: w, reg: dst})
	}
	s.Ev.PostAfter(lat, s, evFarWB, uint32(idx), 0)
}

// NextWake returns the earliest cycle at which this SM's local wheel will
// change state, ok=false when it holds nothing. The engine's idle-skip
// takes the minimum over the shared queue and every SM's wheel so local
// writebacks are never skipped past.
func (s *SM) NextWake() (int64, bool) { return s.wb.next() }

// HasCapacityFor reports whether a CTA needing the given registers and
// shared memory fits on the SM — the capacity-limit check that Virtual
// Thread admits against.
func (s *SM) HasCapacityFor(regs, smem int) bool {
	return s.RegsUsed+regs <= s.Cfg.RegFileSize &&
		s.SMemUsed+smem <= s.Cfg.SharedMemPerSM
}

// CanActivateFor reports whether the scheduling structures can host one
// more active CTA of the given shape (CTA slots, warp slots, thread
// slots).
func (s *SM) CanActivateFor(warps, threads int) bool {
	return s.ActiveCTAs < s.MaxCTAs &&
		s.WarpsUsed+warps <= s.MaxWarps &&
		s.ThreadsUsed+threads <= s.MaxThreads
}

// CanActivateCTA reports whether the specific CTA can take warp slots now.
func (s *SM) CanActivateCTA(c *warp.CTA) bool {
	return s.CanActivateFor(len(c.Warps), c.Threads)
}

// AddResident makes the CTA resident, charging its capacity footprint.
func (s *SM) AddResident(c *warp.CTA) {
	c.AssignedAt = s.Ev.Now()
	s.Resident = append(s.Resident, c)
	s.RegsUsed += c.RegsAlloc
	s.SMemUsed += c.SMemAlloc
}

// Activate binds the CTA's warps to free warp slots. The caller must have
// checked CanActivate.
func (s *SM) Activate(c *warp.CTA) {
	slot := 0
	for _, w := range c.Warps {
		for s.Slots[slot] != nil {
			slot++
		}
		s.Slots[slot] = w
		w.Slot = slot
	}
	s.WarpsUsed += len(c.Warps)
	s.ThreadsUsed += c.Threads
	s.ActiveCTAs++
	c.State = warp.CTAActive
	c.ActivatedAt = s.Ev.Now()
	c.Activations++
	for _, w := range c.Warps {
		s.refreshWarp(w)
	}
	if s.Probe != nil {
		s.Probe.CTAActivated(s, c)
	}
}

// Deactivate unbinds the CTA's warps from their slots (a VT swap-out). The
// CTA stays resident; its registers and shared memory are untouched.
func (s *SM) Deactivate(c *warp.CTA) {
	for i, w := range s.Slots {
		if w != nil && w.CTA == c {
			s.unbindWarp(w)
			s.Slots[i] = nil
		}
	}
	s.WarpsUsed -= len(c.Warps)
	s.ThreadsUsed -= c.Threads
	s.ActiveCTAs--
	if s.anyOutstandingLoads(c) {
		c.State = warp.CTAInactiveWaiting
	} else {
		c.State = warp.CTAInactiveReady
	}
	if s.Probe != nil {
		s.Probe.CTADeactivated(s, c)
	}
}

// NoteCTAStateChanged re-derives the cached classification of every warp
// of c after an externally applied CTA state change: the VT controller
// flips CTAActive <-> CTARestoring outside Activate/Deactivate.
func (s *SM) NoteCTAStateChanged(c *warp.CTA) {
	for _, w := range c.Warps {
		s.refreshWarp(w)
	}
}

// refreshWarp recomputes the warp's cached issue classification and folds
// any change into the owning scheduler's stall counters, the SM's ready
// bitset, and the restore-ready count. It must run after every mutation
// that can change the classification: instruction issue, scoreboard
// writeback, barrier arrival/release, warp finish, and CTA
// bind/unbind/state changes.
func (s *SM) refreshWarp(w *warp.Warp) {
	cls := warp.BlockedDone
	rr := false
	if w.Slot >= 0 {
		bs := w.BlockedState(w.CTA.Launch.Kernel.Code, s.srcBuf)
		switch w.CTA.State {
		case warp.CTAActive:
			cls = bs
		case warp.CTARestoring:
			rr = bs == warp.BlockedNot
		}
	}
	if rr != w.RestoreReady {
		if rr {
			s.restoreReady++
		} else {
			s.restoreReady--
		}
		w.RestoreReady = rr
	}
	s.noteClass(w, cls)
}

// noteClass moves the warp's cached classification to cls, updating the
// scheduler counters and the ready bitset. No-op when unchanged; unbound
// warps are always BlockedDone, so the slot index is valid whenever the
// counters move.
func (s *SM) noteClass(w *warp.Warp, cls warp.Blocked) {
	old := w.IssueState
	if cls == old {
		return
	}
	sc := s.schedulers[w.Slot%len(s.schedulers)]
	switch old {
	case warp.BlockedNot:
		sc.nReady--
		s.ready[w.Slot>>6] &^= 1 << (uint(w.Slot) & 63)
	case warp.BlockedMem:
		sc.nMem--
	case warp.BlockedALU:
		sc.nALU--
	case warp.BlockedBarrier:
		sc.nBar--
	}
	switch cls {
	case warp.BlockedNot:
		sc.nReady++
		s.ready[w.Slot>>6] |= 1 << (uint(w.Slot) & 63)
	case warp.BlockedMem:
		sc.nMem++
	case warp.BlockedALU:
		sc.nALU++
	case warp.BlockedBarrier:
		sc.nBar++
	}
	w.IssueState = cls
}

// unbindWarp clears the warp's cached state contributions before it loses
// its slot.
func (s *SM) unbindWarp(w *warp.Warp) {
	s.noteClass(w, warp.BlockedDone)
	if w.RestoreReady {
		s.restoreReady--
		w.RestoreReady = false
	}
	w.Slot = -1
}

func (s *SM) anyOutstandingLoads(c *warp.CTA) bool {
	for _, w := range c.Warps {
		if w.OutstandingLoads > 0 {
			return true
		}
	}
	return false
}

// retire releases everything a completed CTA holds and notifies the
// controller.
func (s *SM) retire(c *warp.CTA) {
	s.Deactivate(c)
	c.State = warp.CTADone
	s.RegsUsed -= c.RegsAlloc
	s.SMemUsed -= c.SMemAlloc
	for i, r := range s.Resident {
		if r == c {
			s.Resident = append(s.Resident[:i], s.Resident[i+1:]...)
			break
		}
	}
	s.Stats.CTAsCompleted++
	s.Ctl.CTARetired(s, c)
}

// Idle reports whether the SM holds no work at all.
func (s *SM) Idle() bool { return len(s.Resident) == 0 }

// Cycle advances the SM by one core cycle. It returns true when any warp
// instruction issued (used by the engine's idle-skip heuristic).
func (s *SM) Cycle() bool {
	s.CtlPhase()
	return s.StepPhase()
}

// CtlPhase is the serial half of a cycle: it retires due local writebacks
// and runs the CTA-scheduling controller, which may touch GPU-shared state
// (the grid dispenser, controller-wide statistics). The parallel engine
// runs CtlPhase for every SM in index order on one thread; this is exactly
// the order the sequential engine interleaves them in, and no SM's step
// phase mutates anything another SM's controller reads, so decisions are
// identical (see docs/ARCHITECTURE.md, "Parallel engine & determinism").
func (s *SM) CtlPhase() {
	s.Stats.Cycles++
	s.wb.drainTo(s.Ev.Now(), s)
	s.Ctl.Cycle(s)
}

// StepPhase is the shardable half of a cycle: LSU streaming and warp
// issue. It touches only SM-local state plus three buffered channels — the
// SM's event lane, its L1's stat shard, and its global-memory log — so
// shards of SMs step concurrently and the engine commits the buffers in
// SM-index order after the barrier. Returns true when any warp instruction
// issued.
func (s *SM) StepPhase() bool {
	s.lsuTick()

	issued := false
	for _, sch := range s.schedulers {
		if sch.issueOne() {
			issued = true
		}
	}
	s.accumOccupancy()
	return issued
}

// Quiescent reports whether nothing inside the SM can change state without
// an external event: no LSU traffic pending and no warp ready to issue.
// The engine uses it to fast-forward across long memory stalls.
func (s *SM) Quiescent() bool {
	if s.lsuHead != len(s.lsuQueue) {
		return false
	}
	now := s.Ev.Now()
	if now < s.sfuFreeAt || now < s.smemFreeAt {
		return false
	}
	if !s.DisableFastPath {
		// A ready warp of a restoring CTA blocks quiescence in the scan
		// below (BlockedState ignores CTA state), so mirror it here.
		if s.restoreReady > 0 {
			return false
		}
		for _, sc := range s.schedulers {
			if sc.nReady > 0 {
				return false
			}
		}
		return true
	}
	for _, w := range s.Slots {
		if w == nil || w.Finished {
			continue
		}
		if w.BlockedState(w.CTA.Launch.Kernel.Code, s.srcBuf) == warp.BlockedNot {
			return false
		}
	}
	return true
}

// Asleep reports whether the SM is being fast-forwarded by the engine.
func (s *SM) Asleep() bool { return s.asleep }

// sleepGate is an optional Controller refinement: CanSleep vetoes per-SM
// fast-forward while the controller still has an actionable decision (an
// activation or swap-out that needs no external event). Controllers whose
// per-cycle work is fully event-driven once the SM is quiescent need not
// implement it.
type sleepGate interface {
	CanSleep(*SM) bool
}

// TrySleep puts the SM into per-SM fast-forward if nothing local can change
// state: it is quiescent and no scheduler holds a register-file bank stall
// that expires after next cycle. While asleep the engine skips both phases;
// any event that can change the SM's state wakes it first (WakeUp), and the
// local writeback wheel wakes it through WheelWakeDue.
func (s *SM) TrySleep() {
	now := s.Ev.Now()
	for _, sc := range s.schedulers {
		if sc.busyUntil > now+1 {
			return
		}
	}
	if !s.Quiescent() {
		return
	}
	if g, ok := s.Ctl.(sleepGate); ok && !g.CanSleep(s) {
		return
	}
	s.asleep = true
	s.sleptFrom = now + 1
	if c, ok := s.wb.next(); ok {
		s.wakeAt = c
	} else {
		s.wakeAt = 0
	}
}

// WakeUp ends a fast-forward span, charging the skipped cycles through
// AccountSkipped. Every event callback that mutates SM state calls it
// first, so the classification counters the accounting reads are exactly
// the ones frozen when the SM went to sleep.
func (s *SM) WakeUp() {
	if !s.asleep {
		return
	}
	s.asleep = false
	if n := s.Ev.Now() - s.sleptFrom; n > 0 {
		s.AccountSkipped(n)
		if s.Probe != nil {
			s.Probe.SMWoke(s, s.sleptFrom, s.Ev.Now())
		}
	}
}

// WheelWakeDue reports whether the sleeping SM's local writeback wheel has
// a completion due at or before now (wheel cycles are always >= 1, so 0
// safely encodes "none").
func (s *SM) WheelWakeDue(now int64) bool { return s.wakeAt != 0 && s.wakeAt <= now }

func (s *SM) accumOccupancy() {
	st := &s.Stats
	st.ActiveWarpAccum += int64(s.WarpsUsed)
	st.ActiveCTAAccum += int64(s.ActiveCTAs)
	st.ResidentCTAAccum += int64(len(s.Resident))
	rw := 0
	for _, c := range s.Resident {
		rw += len(c.Warps)
	}
	st.ResidentWarpAccum += int64(rw)
}

// allocOp takes an lsuOp from the free list (or grows the arena) and
// returns its pool index.
func (s *SM) allocOp() int32 {
	if n := len(s.lsuFree); n > 0 {
		idx := s.lsuFree[n-1]
		s.lsuFree = s.lsuFree[:n-1]
		return idx
	}
	s.lsuPool = append(s.lsuPool, lsuOp{})
	return int32(len(s.lsuPool) - 1)
}

// freeOp recycles an op, keeping its lines buffer for reuse.
func (s *SM) freeOp(idx int32) {
	op := &s.lsuPool[idx]
	op.w = nil
	op.lines = op.lines[:0]
	s.lsuFree = append(s.lsuFree, idx)
}

// lsuTick streams one coalesced transaction of the head LSU operation into
// the memory system per cycle, retrying on MSHR backpressure.
func (s *SM) lsuTick() {
	if s.lsuHead == len(s.lsuQueue) {
		return
	}
	idx := s.lsuQueue[s.lsuHead]
	op := &s.lsuPool[idx]
	line := op.lines[op.next]
	var done event.Completion
	if !op.write {
		done = event.Completion{H: s, Kind: evLoadLine, A: uint32(idx)}
	}
	if !s.Mem.AccessGlobal(s.ID, line, op.write, done) {
		s.Stats.LSURetries++
		return // MSHRs full; retry next cycle
	}
	op.next++
	if op.next == len(op.lines) {
		s.lsuHead++
		if s.lsuHead == len(s.lsuQueue) {
			s.lsuHead = 0
			s.lsuQueue = s.lsuQueue[:0]
		}
		if op.write {
			s.freeOp(idx) // stores have no responses; reads free in loadComplete
		}
	}
}

// loadComplete fires when the last line of a warp load returns: the
// destination becomes readable and, if this was the CTA's last outstanding
// load while swapped out, the controller learns it is ready again.
func (s *SM) loadComplete(idx int32) {
	s.WakeUp() // flush fast-forward accounting before mutating state
	op := &s.lsuPool[idx]
	w, dst := op.w, op.dst
	s.freeOp(idx)
	w.SB.ClearPending(dst)
	w.OutstandingLoads--
	s.refreshWarp(w)
	c := w.CTA
	if c.State == warp.CTAInactiveWaiting && !s.anyOutstandingLoads(c) {
		c.State = warp.CTAInactiveReady
		s.Ctl.LoadsDrained(s, c)
	}
}

// lsuHasRoom reports whether another warp memory instruction can enter the
// LSU queue.
func (s *SM) lsuHasRoom() bool { return len(s.lsuQueue)-s.lsuHead < s.Cfg.LSUQueueDepth }

// LSUQueueLen returns the number of warp memory instructions queued in
// the load-store unit (telemetry occupancy gauge).
func (s *SM) LSUQueueLen() int { return len(s.lsuQueue) - s.lsuHead }

// WheelPending returns the number of writeback completions pending on the
// SM-local timing wheel (telemetry occupancy gauge).
func (s *SM) WheelPending() int { return s.wb.pending }
