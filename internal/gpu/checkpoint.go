package gpu

import (
	"fmt"
	"reflect"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sm"
	"repro/internal/warp"
)

// CheckpointVersion is bumped whenever the serialized layout changes so
// persisted checkpoints from older builds are rejected instead of
// misinterpreted.
const CheckpointVersion = 1

// Checkpoint is the complete machine state at a quiescent cycle boundary:
// the top of the run loop, where the event queue sits exactly at the
// current cycle, every event lane is committed, and no SM is mid-step.
// Resuming from a checkpoint and running to completion produces a Result
// bit-identical (reflect.DeepEqual) to the uninterrupted run.
//
// The checkpoint is a value: restore never aliases its slices into live
// machine state, so one checkpoint can seed any number of forked runs —
// including concurrent ones — without copying it first.
type Checkpoint struct {
	Version int    `json:"version"`
	Cycle   int64  `json:"cycle"`
	Seq     uint64 `json:"seq"` // event-queue sequence counter
	Kernel  string `json:"kernel"`

	// Config is the configuration the checkpoint was captured under.
	// Resume accepts any config that matches it structurally; see
	// ForkNeutralizedConfig for the parameters allowed to differ.
	Config      config.GPUConfig `json:"config"`
	NumLaunches int              `json:"num_launches"`

	GridNext []int `json:"grid_next"` // per-grid dispense cursors
	GridRR   int   `json:"grid_rr"`   // multi-grid round-robin index

	Events  []event.EventRec      `json:"events"`
	SMs     []*sm.SMState         `json:"sms"`
	VT      *core.ControllerState `json:"vt,omitempty"`
	Mem     *mem.SystemState      `json:"mem"`
	Backing mem.BackingState      `json:"backing"`

	// Run-loop bookkeeping, so Result.Timeline of a forked run matches
	// the uninterrupted one.
	Timeline        []Sample `json:"timeline,omitempty"`
	NextSample      int64    `json:"next_sample,omitempty"`
	LastIssuedTot   int64    `json:"last_issued_tot,omitempty"`
	LastSampleCycle int64    `json:"last_sample_cycle,omitempty"`
}

// ForkNeutralizedConfig zeroes the configuration parameters a prefix fork
// is allowed to vary: the VT swap latencies (consumed only when a swap
// actually happens, so any checkpoint taken before the first swap is
// independent of them) and the max-cycle abort bound (never part of
// machine state). Two configurations whose neutralized forms are equal
// may share checkpoints, provided the capture guard held (no swaps yet);
// the harness keys its prefix cache on exactly this neutralized form.
func ForkNeutralizedConfig(cfg config.GPUConfig) config.GPUConfig {
	cfg.VT.SwapOutLatency = 0
	cfg.VT.SwapInLatency = 0
	cfg.MaxCycles = 0
	return cfg
}

// registry returns the machine's handler registry, building it on first
// use. Registration order is part of the checkpoint format: SMs in index
// order, then the VT controller (when the policy has one), then the
// memory system's L1s and partitions. Any machine built from the same
// structural config reproduces the same IDs.
func (m *machine) registry() *event.Registry {
	if m.reg == nil {
		m.reg = event.NewRegistry()
		for _, s := range m.sms {
			m.reg.Register(s)
		}
		if m.vt != nil {
			m.reg.Register(m.vt)
		}
		m.msys.RegisterHandlers(m.reg)
	}
	return m.reg
}

// capture serializes the whole machine. Pure read: the run can continue
// as if the capture never happened.
func (m *machine) capture() (*Checkpoint, error) {
	reg := m.registry()
	now, seq, recs, err := m.ev.CaptureEvents(reg)
	if err != nil {
		return nil, err
	}
	if now != m.cycle {
		return nil, fmt.Errorf("queue at cycle %d, machine at %d", now, m.cycle)
	}
	next, rr := m.grid.Cursors()
	ck := &Checkpoint{
		Version:         CheckpointVersion,
		Cycle:           m.cycle,
		Seq:             seq,
		Kernel:          m.name,
		Config:          m.cfg,
		NumLaunches:     len(m.launches),
		GridNext:        next,
		GridRR:          rr,
		Events:          recs,
		Backing:         m.backing.State(),
		Timeline:        append([]Sample(nil), m.timeline...),
		NextSample:      m.nextSample,
		LastIssuedTot:   m.lastIssuedTot,
		LastSampleCycle: m.lastSampleCycle,
	}
	for _, s := range m.sms {
		ck.SMs = append(ck.SMs, s.State())
	}
	if m.vt != nil {
		ck.VT = m.vt.State()
	}
	if ck.Mem, err = m.msys.State(reg); err != nil {
		return nil, err
	}
	return ck, nil
}

// restore overlays a checkpoint onto a freshly built machine. The
// checkpoint is only read; every slice lands in machine-owned storage.
func (m *machine) restore(ck *Checkpoint) error {
	if ck.Version != CheckpointVersion {
		return fmt.Errorf("gpu: checkpoint version %d, want %d", ck.Version, CheckpointVersion)
	}
	if ck.NumLaunches != len(m.launches) {
		return fmt.Errorf("gpu: checkpoint has %d launches, machine has %d", ck.NumLaunches, len(m.launches))
	}
	if ck.Kernel != m.name {
		return fmt.Errorf("gpu: checkpoint kernel %q, machine runs %q", ck.Kernel, m.name)
	}
	if len(ck.SMs) != len(m.sms) {
		return fmt.Errorf("gpu: checkpoint has %d SMs, machine has %d", len(ck.SMs), len(m.sms))
	}
	if (ck.VT != nil) != (m.vt != nil) {
		return fmt.Errorf("gpu: checkpoint VT-controller presence does not match policy %v", m.cfg.Policy)
	}
	reg := m.registry()
	if err := m.grid.SetCursors(ck.GridNext, ck.GridRR); err != nil {
		return err
	}
	mat := func(kernel, flat int) (*warp.CTA, error) {
		return m.grid.Materialize(kernel, flat)
	}
	for i, s := range m.sms {
		if err := s.SetState(ck.SMs[i], mat); err != nil {
			return err
		}
	}
	if m.vt != nil {
		if err := m.vt.SetState(ck.VT, m.sms); err != nil {
			return err
		}
	}
	if err := m.msys.SetState(ck.Mem, reg); err != nil {
		return err
	}
	if err := m.backing.SetState(ck.Backing); err != nil {
		return err
	}
	if err := m.ev.RestoreEvents(ck.Cycle, ck.Seq, ck.Events, reg); err != nil {
		return err
	}
	m.cycle = ck.Cycle
	m.timeline = append([]Sample(nil), ck.Timeline...)
	m.nextSample = ck.NextSample
	m.lastIssuedTot = ck.LastIssuedTot
	m.lastSampleCycle = ck.LastSampleCycle
	if m.opts.SampleInterval > 0 && m.nextSample <= m.cycle {
		// Captured without sampling (or at a different interval): resume
		// at the first boundary past the fork point.
		m.nextSample = (m.cycle/m.opts.SampleInterval + 1) * m.opts.SampleInterval
	}
	return nil
}

// Resume reconstructs a runnable machine from a checkpoint and runs it to
// completion. The configuration must match the checkpoint's structurally
// — only the parameters ForkNeutralizedConfig clears may differ — and the
// launches must be the ones the checkpoint was captured from (grid shape
// and kernel code are rebuilt from them, not stored in the checkpoint).
// Options.InitMemory is ignored: the functional memory image, including
// every store the prefix performed, comes from the checkpoint.
//
// The returned Result covers the whole run, prefix included: Cycles,
// statistics, and Timeline are exactly those of an uninterrupted run with
// the same configuration.
func Resume(ck *Checkpoint, launches []*isa.Launch, cfg config.GPUConfig, opts Options) (*Result, error) {
	if ck == nil {
		return nil, fmt.Errorf("gpu: nil checkpoint")
	}
	if !reflect.DeepEqual(ForkNeutralizedConfig(ck.Config), ForkNeutralizedConfig(cfg)) {
		return nil, fmt.Errorf("gpu: config differs structurally from the checkpoint's")
	}
	opts.InitMemory = nil
	m, err := newMachine(launches, cfg, opts)
	if err != nil {
		return nil, err
	}
	defer m.release()
	if err := m.restore(ck); err != nil {
		return nil, err
	}
	return m.run()
}
