package gpu

import (
	"runtime"
	"sync"

	"repro/internal/event"
	"repro/internal/mem"
	"repro/internal/sm"
	"repro/internal/warp"
)

// engine drives the per-cycle simulation loop. Two modes share every
// policy decision and produce bit-identical results:
//
//   - sequential (parallelism 1): each cycle runs SM[i].Cycle() in index
//     order, exactly the original single-threaded loop.
//   - parallel: each cycle runs the serial controller phase for every SM
//     in index order, then steps shards of SMs concurrently under a cycle
//     barrier, then commits each SM's buffered side effects (event-lane
//     schedules, global-memory lane loops) in ascending SM-index order —
//     which reproduces the sequential engine's event sequence numbers and
//     memory interleaving exactly.
type engine struct {
	sms      []*sm.SM
	ev       *event.Queue
	parallel bool

	// allowSleep enables per-SM fast-forward: an SM that is quiescent at
	// the end of its cycle goes to sleep and is skipped — controller phase
	// included — until an event wakes it or its local writeback wheel
	// comes due. Skipped spans are charged through AccountSkipped at wake,
	// so results are identical to simulating every cycle.
	allowSleep bool
	ran        []bool // per cycle: SMs that ran (were not asleep)

	// Parallel-mode machinery.
	glogs   []*warp.GmemLog
	backing *mem.Backing
	start   []chan struct{}
	done    sync.WaitGroup
	issued  []bool // one flag per worker, written only by that worker
	panics  []any  // one slot per worker
	stop    chan struct{}
}

// newEngine prepares the loop. workers <= 1 selects the sequential mode.
func newEngine(sms []*sm.SM, ev *event.Queue, msys *mem.System,
	backing *mem.Backing, workers int, allowSleep bool) *engine {

	e := &engine{sms: sms, ev: ev, allowSleep: allowSleep,
		ran: make([]bool, len(sms))}
	if workers <= 1 || len(sms) <= 1 {
		return e
	}
	if workers > len(sms) {
		workers = len(sms)
	}
	e.parallel = true
	e.backing = backing
	e.glogs = make([]*warp.GmemLog, len(sms))
	for i, s := range e.sms {
		e.glogs[i] = &warp.GmemLog{}
		s.Glog = e.glogs[i]
		msys.BindLane(i, s.Ev) // L1 traffic joins the SM's event lane
	}
	msys.ShardStats()

	e.start = make([]chan struct{}, workers)
	e.issued = make([]bool, workers)
	e.panics = make([]any, workers)
	e.stop = make(chan struct{})
	for k := range e.start {
		e.start[k] = make(chan struct{}, 1)
		go e.worker(k)
	}
	return e
}

// worker steps its shard (SMs k, k+W, k+2W, ...) each time it is signaled.
func (e *engine) worker(k int) {
	for {
		select {
		case <-e.stop:
			return
		case <-e.start[k]:
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					e.panics[k] = r
				}
				e.done.Done()
			}()
			issued := false
			for i := k; i < len(e.sms); i += len(e.start) {
				if !e.ran[i] {
					continue
				}
				s := e.sms[i]
				if s.StepPhase() {
					issued = true
				} else if e.allowSleep {
					s.TrySleep()
				}
			}
			e.issued[k] = issued
		}()
	}
}

// shutdown releases the worker goroutines.
func (e *engine) shutdown() {
	if e.parallel {
		close(e.stop)
	}
}

// cycle advances every SM by one core cycle and reports whether any warp
// instruction issued anywhere.
func (e *engine) cycle() bool {
	now := e.ev.Now()
	if !e.parallel {
		issued := false
		for _, s := range e.sms {
			if s.Asleep() {
				if !s.WheelWakeDue(now) {
					continue
				}
				s.WakeUp()
			}
			if s.Cycle() {
				issued = true
			} else if e.allowSleep {
				s.TrySleep()
			}
		}
		return issued
	}

	// Serial controller phase, SM-index order, with event lanes buffering
	// so controller wakeups interleave into the queue at exactly the
	// sequential engine's position. Sleeping SMs skip the whole cycle
	// (their controllers could change nothing: admission and swap outcomes
	// are frozen while the SM is quiescent).
	for i, s := range e.sms {
		if s.Asleep() {
			if !s.WheelWakeDue(now) {
				e.ran[i] = false
				continue
			}
			s.WakeUp()
		}
		e.ran[i] = true
		s.Ev.StartBuffering()
		s.CtlPhase()
	}

	// Parallel step phase under the cycle barrier.
	e.done.Add(len(e.start))
	for k := range e.start {
		e.start[k] <- struct{}{}
	}
	e.done.Wait()
	for k, p := range e.panics {
		if p != nil {
			e.panics[k] = nil
			panic(p)
		}
	}

	// Commit buffered cross-SM effects in ascending SM-index order. SMs
	// that slept through the cycle never started buffering and logged
	// nothing.
	issued := false
	for i, s := range e.sms {
		if !e.ran[i] {
			continue
		}
		s.Ev.Commit()
		e.glogs[i].Flush(e.backing)
	}
	for _, is := range e.issued {
		if is {
			issued = true
		}
	}
	return issued
}

// quiescent reports whether no SM can change state without an event.
func (e *engine) quiescent() bool {
	for _, s := range e.sms {
		if !s.Quiescent() {
			return false
		}
	}
	return true
}

// nextEvent returns the earliest cycle at which anything — the shared
// queue, any SM's uncommitted lane, or any SM's local writeback wheel —
// will change state. ok=false means the simulation can make no progress.
func (e *engine) nextEvent() (int64, bool) {
	next, ok := e.ev.NextCycle()
	merge := func(c int64, cok bool) {
		if cok && (!ok || c < next) {
			next, ok = c, true
		}
	}
	for _, s := range e.sms {
		merge(s.NextWake())
		merge(s.Ev.MinPending())
	}
	return next, ok
}

// resolveWorkers maps an Options.Parallelism setting to a worker count:
// 0 (auto) uses one worker per core up to one per SM; 1 forces the
// sequential engine; larger values are capped at the SM count.
func resolveWorkers(parallelism, numSMs int) int {
	w := parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > numSMs {
		w = numSMs
	}
	if w < 1 {
		w = 1
	}
	return w
}
