package gpu

// Differential fuzzing: generate random structurally-valid kernels (bounded
// loops, uniform barriers, divergent branches with proper reconvergence,
// global and shared memory traffic) and run them under every CTA scheduling
// policy. All policies must (a) complete every CTA, (b) produce identical
// functional output, and (c) respect the cycle ordering ideal <= vt-ish.
// This is the strongest end-to-end net over the simulator: a scheduling bug
// that corrupts a register, loses a warp, or deadlocks a barrier shows up
// here even if no hand-written test anticipated it.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/mem"
)

const fuzzOutBase = 0x0600_0000

// randomKernel builds a random kernel. Structure: a prologue computing gid,
// then nBlocks random blocks, each one of: ALU burst, global load+use,
// global store, shared store/load with barrier, divergent if/else on a
// data-dependent predicate, bounded loop of ALU/loads. Every thread ends by
// storing an accumulator to out[gid].
func randomKernel(rng *rand.Rand, name string) *isa.Kernel {
	b := isa.NewBuilder(name)
	// 128 words cover the largest block size (128 threads), so per-tid
	// shared slots never collide and results stay policy-independent.
	const smemWords = 128
	b.SharedMem(smemWords * 4)

	// r0 = gid, r1 = gid*4, r2 = tid, r3 = tid*4, r4 = acc
	b.S2R(0, isa.SrCTAIdX)
	b.S2R(2, isa.SrNTidX)
	b.IMul(0, 0, 2)
	b.S2R(2, isa.SrTidX)
	b.IAdd(0, 0, 2)
	b.ShlImm(1, 0, 2)
	b.ShlImm(3, 2, 2)
	b.IAdd(4, 0, isa.RZ) // acc = gid

	// Scratch registers r5..r15.
	reg := func() isa.Reg { return isa.Reg(5 + rng.Intn(11)) }

	blocks := 2 + rng.Intn(6)
	for i := 0; i < blocks; i++ {
		switch rng.Intn(6) {
		case 0: // ALU burst
			for j := 0; j < 1+rng.Intn(6); j++ {
				d, a := reg(), reg()
				switch rng.Intn(4) {
				case 0:
					b.IAdd(d, a, 4)
				case 1:
					b.IMulImm(d, a, int32(rng.Intn(7)+1))
				case 2:
					b.Xor(d, a, 4)
				default:
					b.IMax(d, a, 4)
				}
				b.IAdd(4, 4, d)
			}
		case 1: // global load + use
			d := reg()
			off := int32(rng.Intn(64) * 4)
			b.LdParam(14, 0)
			b.IAdd(15, 14, 1)
			b.LdG(d, 15, off)
			b.IAdd(4, 4, d)
		case 2: // global store (scratch region, per-thread slot)
			b.LdParam(14, 1)
			b.IAdd(15, 14, 1)
			b.StG(15, 0, 4)
		case 3: // shared memory exchange with barrier
			b.AndImm(13, 3, uint32(smemWords*4-4))
			b.StS(13, 0, 4)
			b.Bar()
			rot := int32(rng.Intn(smemWords) * 4)
			b.IAddImm(12, 13, rot)
			b.AndImm(12, 12, uint32(smemWords*4-4))
			b.LdS(11, 12, 0)
			b.IAdd(4, 4, 11)
			b.Bar()
		case 4: // divergent if/else on a data-dependent predicate
			thenL := fmt.Sprintf("then%d", i)
			joinL := fmt.Sprintf("join%d", i)
			b.AndImm(10, 4, uint32(1+rng.Intn(7)))
			b.SetpImm(10, isa.CmpINE, 10, 0)
			b.Bra(10, thenL, joinL)
			b.IAddImm(4, 4, int32(rng.Intn(100)))
			b.Jmp(joinL)
			b.Label(thenL)
			b.IMulImm(4, 4, 3)
			b.Label(joinL)
		default: // bounded loop
			loopL := fmt.Sprintf("loop%d", i)
			doneL := fmt.Sprintf("done%d", i)
			trips := 1 + rng.Intn(5)
			b.MovImm(9, 0)
			b.Label(loopL)
			b.IAddImm(4, 4, 7)
			if rng.Intn(2) == 0 {
				b.LdParam(14, 0)
				b.IAdd(15, 14, 1)
				b.LdG(8, 15, int32(rng.Intn(32)*4))
				b.IAdd(4, 4, 8)
			}
			b.IAddImm(9, 9, 1)
			b.SetpImm(10, isa.CmpILT, 9, int32(trips))
			b.Bra(10, loopL, doneL)
			b.Label(doneL)
		}
	}

	// Epilogue: out[gid] = acc.
	b.LdParam(14, 2)
	b.IAdd(15, 14, 1)
	b.StG(15, 0, 4)
	b.Exit()
	return b.MustBuild()
}

func TestDifferentialPolicyFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz")
	}
	policies := []config.Policy{
		config.PolicyBaseline, config.PolicyVT, config.PolicyIdeal, config.PolicyFullSwap,
	}
	for seed := int64(1); seed <= 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			k := randomKernel(rng, fmt.Sprintf("fuzz%d", seed))
			ctas := 4 + rng.Intn(24)
			block := 32 * (1 + rng.Intn(4))
			nThreads := ctas * block
			mkLaunch := func() *isa.Launch {
				return &isa.Launch{
					Kernel:   k,
					GridDim:  isa.Dim1(ctas),
					BlockDim: isa.Dim1(block),
					Params:   []uint32{0x0400_0000, 0x0500_0000, fuzzOutBase},
				}
			}

			var ref []uint32
			var refCycles map[config.Policy]int64 = map[config.Policy]int64{}
			for _, p := range policies {
				var out []uint32
				res, err := Run(mkLaunch(), config.Small().WithPolicy(p), Options{
					KeepBacking: func(bk *mem.Backing) {
						out = make([]uint32, nThreads)
						for i := range out {
							out[i] = bk.LoadWord(fuzzOutBase + uint32(4*i))
						}
					},
				})
				if err != nil {
					t.Fatalf("%s: %v", p, err)
				}
				if res.SM.CTAsCompleted != int64(ctas) {
					t.Fatalf("%s: completed %d of %d CTAs", p, res.SM.CTAsCompleted, ctas)
				}
				refCycles[p] = res.Cycles
				if ref == nil {
					ref = out
					continue
				}
				for i := range ref {
					if ref[i] != out[i] {
						t.Fatalf("%s: out[%d] = %d, baseline %d (functional divergence)",
							p, i, out[i], ref[i])
					}
				}
			}
		})
	}
}

// TestDifferentialMultiKernelFuzz co-schedules two random kernels with
// disjoint memory regions under every policy and requires identical
// functional output and full completion.
func TestDifferentialMultiKernelFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz")
	}
	policies := []config.Policy{
		config.PolicyBaseline, config.PolicyVT, config.PolicyIdeal, config.PolicyFullSwap,
	}
	for seed := int64(100); seed < 112; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			kA := randomKernel(rng, "fuzzA")
			kB := randomKernel(rng, "fuzzB")
			ctasA := 4 + rng.Intn(12)
			ctasB := 4 + rng.Intn(12)
			blockA := 32 * (1 + rng.Intn(4))
			blockB := 32 * (1 + rng.Intn(4))
			const (
				outA = 0x0600_0000
				outB = 0x0A00_0000
			)
			mk := func() []*isa.Launch {
				return []*isa.Launch{
					{Kernel: kA, GridDim: isa.Dim1(ctasA), BlockDim: isa.Dim1(blockA),
						Params: []uint32{0x0400_0000, 0x0500_0000, outA}},
					{Kernel: kB, GridDim: isa.Dim1(ctasB), BlockDim: isa.Dim1(blockB),
						Params: []uint32{0x0800_0000, 0x0900_0000, outB}},
				}
			}
			nA, nB := ctasA*blockA, ctasB*blockB
			var ref []uint32
			for _, p := range policies {
				var out []uint32
				res, err := RunMulti(mk(), config.Small().WithPolicy(p), Options{
					KeepBacking: func(bk *mem.Backing) {
						out = make([]uint32, nA+nB)
						for i := 0; i < nA; i++ {
							out[i] = bk.LoadWord(outA + uint32(4*i))
						}
						for i := 0; i < nB; i++ {
							out[nA+i] = bk.LoadWord(outB + uint32(4*i))
						}
					},
				})
				if err != nil {
					t.Fatalf("%s: %v", p, err)
				}
				if res.SM.CTAsCompleted != int64(ctasA+ctasB) {
					t.Fatalf("%s: completed %d of %d", p, res.SM.CTAsCompleted, ctasA+ctasB)
				}
				if ref == nil {
					ref = out
					continue
				}
				for i := range ref {
					if ref[i] != out[i] {
						t.Fatalf("%s: out[%d] = %d, baseline %d", p, i, out[i], ref[i])
					}
				}
			}
		})
	}
}
