package gpu

import (
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
)

// mixedKernel exercises every readiness-flipping path the issue fast path
// caches: global loads (long-latency scoreboard), shared memory with a
// barrier, SFU instructions (structural hazards), plain ALU chains, and an
// atomic. out[gid] = f(a[gid]) staged through a shared tile.
func mixedKernel(t testing.TB) *isa.Kernel {
	b := isa.NewBuilder("mixed_test").SharedMem(256)
	b.S2R(0, isa.SrCTAIdX)
	b.S2R(1, isa.SrNTidX)
	b.IMul(2, 0, 1)
	b.S2R(3, isa.SrTidX)
	b.IAdd(2, 2, 3)   // gid
	b.ShlImm(4, 2, 2) // gid byte offset
	b.LdParam(5, 0)
	b.IAdd(5, 5, 4)
	b.LdG(6, 5, 0)    // a[gid]
	b.ShlImm(7, 3, 2) // tid byte offset into the shared tile
	b.StS(7, 0, 6)
	b.Bar()
	b.LdS(8, 7, 0)
	b.FSin(9, 8)
	b.FRcp(10, 9)
	b.FMul(11, 10, 8)
	b.LdParam(12, 1)
	b.IAdd(12, 12, 4)
	b.StG(12, 0, 11)
	b.LdParam(13, 2)
	b.AtomAdd(14, 13, 0, 3)
	b.Exit()
	k, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func mixedLaunch(t testing.TB, ctas, block int) *isa.Launch {
	const accumBase = 0x0040_0000
	return &isa.Launch{
		Kernel:   mixedKernel(t),
		GridDim:  isa.Dim1(ctas),
		BlockDim: isa.Dim1(block),
		Params:   []uint32{aBase, outBase, accumBase},
	}
}

// TestIssueFastPathEquivalence proves the O(1) issue fast path is
// observation-equivalent to the original full scans: for every policy and
// scheduler the complete Result struct — cycles, every stat counter, the
// stall breakdown — is identical with the fast path on and off.
func TestIssueFastPathEquivalence(t *testing.T) {
	policies := []config.Policy{
		config.PolicyBaseline, config.PolicyVT,
		config.PolicyIdeal, config.PolicyFullSwap,
	}
	schedulers := []config.SchedulerKind{
		config.SchedGTO, config.SchedLRR, config.SchedTwoLevel,
	}
	for _, p := range policies {
		for _, sched := range schedulers {
			t.Run(p.String()+"/"+sched.String(), func(t *testing.T) {
				cfg := config.Small().WithPolicy(p)
				cfg.Scheduler = sched
				const ctas, block = 16, 64
				run := func(disable bool) *Result {
					res, err := Run(mixedLaunch(t, ctas, block), cfg, Options{
						InitMemory:           initVec(ctas * block),
						DisableIssueFastPath: disable,
					})
					if err != nil {
						t.Fatal(err)
					}
					return res
				}
				fast, slow := run(false), run(true)
				if !reflect.DeepEqual(fast, slow) {
					t.Fatalf("fast path diverges:\nfast: %+v\nslow: %+v", fast, slow)
				}
			})
		}
	}
}

// memLoopKernel strides loads across 4 KiB so every iteration misses:
// warps spend most cycles memory-blocked, which drives the VT controller
// through its full swap-out/swap-in cycle.
func memLoopKernel(t testing.TB, iters int) *isa.Kernel {
	b := isa.NewBuilder("memloop_test")
	b.S2R(0, isa.SrCTAIdX)
	b.S2R(1, isa.SrNTidX)
	b.IMul(2, 0, 1)
	b.S2R(3, isa.SrTidX)
	b.IAdd(2, 2, 3)
	b.ShlImm(4, 2, 2)
	b.LdParam(5, 0)
	b.IAdd(5, 5, 4)
	b.MovImm(8, 0)
	b.MovImm(9, 0)
	b.Label("loop")
	b.LdG(6, 5, 0)
	b.IAdd(8, 8, 6)
	b.IAddImm(5, 5, 4096+128)
	b.AndImm(5, 5, 0x3FFFF)
	b.LdParam(7, 0)
	b.IAdd(5, 5, 7)
	b.IAddImm(9, 9, 1)
	b.SetpImm(10, isa.CmpILT, 9, int32(iters))
	b.Bra(10, "loop", "done")
	b.Label("done")
	b.Exit()
	k, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestIssueFastPathEquivalenceSwaps drives the VT policies through real
// swap-out/swap-in traffic (restore latency, restoreReady tracking,
// context-port wakeups) and requires identical Results fast on/off.
func TestIssueFastPathEquivalenceSwaps(t *testing.T) {
	for _, p := range []config.Policy{config.PolicyVT, config.PolicyFullSwap} {
		t.Run(p.String(), func(t *testing.T) {
			cfg := config.Small().WithPolicy(p)
			l := &isa.Launch{
				Kernel:   memLoopKernel(t, 8),
				GridDim:  isa.Dim1(24),
				BlockDim: isa.Dim1(64),
				Params:   []uint32{aBase},
			}
			run := func(disable bool) *Result {
				res, err := Run(l, cfg, Options{DisableIssueFastPath: disable})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			fast, slow := run(false), run(true)
			if fast.VT.SwapsOut == 0 {
				t.Fatalf("%s: workload produced no swaps; equivalence check is vacuous", p)
			}
			if !reflect.DeepEqual(fast, slow) {
				t.Fatalf("fast path diverges on swap-heavy run:\nfast: %+v\nslow: %+v", fast, slow)
			}
		})
	}
}

// TestIssueFastPathEquivalenceRFBanks covers the banked-register-file
// scheduler stall (busyUntil), whose duplicate-source bank counting must
// not be changed by the pre-decoded operand masks.
func TestIssueFastPathEquivalenceRFBanks(t *testing.T) {
	cfg := config.Small()
	cfg.RegFileBanks = 16
	run := func(disable bool) *Result {
		res, err := Run(mixedLaunch(t, 12, 64), cfg, Options{
			InitMemory:           initVec(12 * 64),
			DisableIssueFastPath: disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if fast, slow := run(false), run(true); !reflect.DeepEqual(fast, slow) {
		t.Fatalf("fast path diverges with banked register file:\nfast: %+v\nslow: %+v", fast, slow)
	}
}

// TestIssueFastPathEquivalenceParallel cross-checks the fast path against
// the parallel intra-run engine (and, under -race, that the pre-decoded
// instruction fields and per-SM fast-forward are race-free).
func TestIssueFastPathEquivalenceParallel(t *testing.T) {
	cfg := config.Small().WithPolicy(config.PolicyVT)
	run := func(disable bool, par int) *Result {
		res, err := Run(mixedLaunch(t, 16, 64), cfg, Options{
			InitMemory:           initVec(16 * 64),
			DisableIssueFastPath: disable,
			Parallelism:          par,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seqFast := run(false, 1)
	parFast := run(false, 2)
	parSlow := run(true, 2)
	if !reflect.DeepEqual(seqFast, parFast) {
		t.Fatalf("parallel engine diverges from sequential with fast path on")
	}
	if !reflect.DeepEqual(parFast, parSlow) {
		t.Fatalf("fast path diverges under the parallel engine")
	}
}
