package gpu

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Interval/sampled simulation: the run loop alternates detailed windows
// (the ordinary cycle-accurate loop, unchanged) with functional
// fast-forward spans that retire instructions through the existing
// execute-at-issue semantics without modeling issue, LSU, or DRAM timing.
// Architectural state — registers, memory, barriers, SIMT stacks, CTA
// residency, VT swap state — stays exact; only the clock is extrapolated,
// advancing by the IPC measured over the preceding detailed window. Cache
// tags are warmed during the span (mem.System.WarmGlobal) and every
// functionally retired instruction refreshes the warp's cached issue
// classification, so the next detailed window starts from realistic
// microarchitectural state. See docs/ARCHITECTURE.md, "Sampled simulation
// & error model".

// SamplingOptions configure interval/sampled simulation. The zero value —
// the default — runs fully detailed; Tier-1 figures stay exact.
type SamplingOptions struct {
	// DetailedCycles is the length of each cycle-accurate window.
	DetailedCycles int64
	// FastForwardCycles is the clock budget of each functional span: the
	// span retires roughly IPC x FastForwardCycles instructions and
	// advances the clock by retired/IPC cycles (at most this many).
	FastForwardCycles int64
	// WarmupCycles excludes the start of each detailed window from the
	// IPC measurement, so post-span transients (cold structural state)
	// do not bias the extrapolation. Must be smaller than DetailedCycles.
	WarmupCycles int64
}

// Enabled reports whether any sampling knob is set. Validation requires a
// coherent configuration whenever this is true.
func (o SamplingOptions) Enabled() bool { return o != SamplingOptions{} }

// String renders the configuration as "detailed:fastforward:warmup" (the
// vtbench -sample syntax); empty when disabled.
func (o SamplingOptions) String() string {
	if !o.Enabled() {
		return ""
	}
	return fmt.Sprintf("%d:%d:%d", o.DetailedCycles, o.FastForwardCycles, o.WarmupCycles)
}

// ParseSampling parses the "detailed:fastforward[:warmup]" syntax of the
// vtbench -sample flag into SamplingOptions. The empty string returns
// the zero (disabled) value; validation of the parsed numbers happens in
// Run, where every violation is reported jointly.
func ParseSampling(s string) (SamplingOptions, error) {
	var o SamplingOptions
	if s == "" {
		return o, nil
	}
	parts := strings.Split(s, ":")
	if len(parts) != 2 && len(parts) != 3 {
		return o, fmt.Errorf("gpu: sampling spec %q: want detailed:fastforward[:warmup]", s)
	}
	vals := make([]int64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return o, fmt.Errorf("gpu: sampling spec %q: %v", s, err)
		}
		vals[i] = v
	}
	o.DetailedCycles, o.FastForwardCycles = vals[0], vals[1]
	if len(vals) == 3 {
		o.WarmupCycles = vals[2]
	}
	return o, nil
}

// SamplingStats reports what the sampling engine did during a run, and
// the error bound it derives for the extrapolated cycle count.
type SamplingStats struct {
	// Spans is the number of completed fast-forward spans.
	Spans int64
	// ExtrapolatedCycles is how much of Result.Cycles was extrapolated
	// rather than simulated in detail.
	ExtrapolatedCycles int64
	// DetailedCycles is the cycle count simulated in full detail,
	// including drain-to-quiescence phases at span entry.
	DetailedCycles int64
	// DrainCycles is the subset of DetailedCycles spent draining in-flight
	// memory traffic and swaps to quiescence before each span.
	DrainCycles int64
	// FunctionalInstrs is the number of warp instructions retired
	// functionally (inside spans) rather than through the issue pipeline.
	FunctionalInstrs int64
	// AbandonedSpans counts span attempts that fell back to detailed
	// simulation (drain bound exceeded, zero measured IPC, or no
	// functional progress).
	AbandonedSpans int64
	// TruncatedSpans counts spans cut short because the machine's
	// composition changed mid-span (a CTA retired with no grid work left
	// to replace it), forcing an early return to detailed measurement.
	TruncatedSpans int64
	// ErrorBound is the reported fractional bound on the cycle-count
	// error: |sampled - exact| / exact should not exceed it. It is
	// derived from the extrapolated fraction of the run and the
	// inter-window IPC variability (see docs/ARCHITECTURE.md).
	ErrorBound float64
}

// samplingState is the run loop's span bookkeeping.
type samplingState struct {
	nextFF     int64 // cycle at which the current detailed window ends
	winStart   int64 // first cycle of the current detailed window
	baseCycle  int64 // IPC measurement start (winStart + warmup)
	baseIssued int64 // total issued instructions at baseCycle
	warmupDone bool

	// Phase accumulator: windows since the last composition change,
	// pooled so the extrapolation uses the phase's mean IPC rather than
	// one window's noisy sample. A phase ends when a span truncates (a
	// CTA retired mid-span with no replacement) or when a detailed window
	// itself straddles a composition change (winResident differs at its
	// two ends); either resets the pool. winPhase tags each measured
	// window with its phase id so the error bound only compares windows
	// that measured the same machine.
	phaseIssued int64
	phaseCycles int64
	phaseID     int32
	winResident int64 // resident warps when the current window began

	ipcs     []float64 // per-window measured IPC, in window order
	winPhase []int32   // phase id of each measured window
	spans    []spanRec // per-span extrapolation record, for the error bound
	smIssued []int64   // scratch: per-SM issued count at span entry

	stats SamplingStats
}

// spanRec records one span's extrapolation for the error-bound derivation:
// which window measurement preceded it and how many cycles it charged.
type spanRec struct {
	win    int   // index into ipcs of the window measured just before
	cycles int64 // extrapolated cycles charged
}

// validateOptions checks the run options, collecting every violation into
// one joined error (the config.Validate convention).
func validateOptions(opts *Options) error {
	var errs []error
	bad := func(cond bool, format string, args ...any) {
		if cond {
			errs = append(errs, fmt.Errorf("gpu: "+format, args...))
		}
	}
	bad(opts.Parallelism < 0, "Options.Parallelism must be non-negative (got %d)", opts.Parallelism)
	s := opts.Sampling
	if s.Enabled() {
		bad(s.DetailedCycles <= 0, "Sampling.DetailedCycles must be positive (got %d)", s.DetailedCycles)
		bad(s.FastForwardCycles <= 0, "Sampling.FastForwardCycles must be positive (got %d)", s.FastForwardCycles)
		bad(s.WarmupCycles < 0, "Sampling.WarmupCycles must be non-negative (got %d)", s.WarmupCycles)
		bad(s.DetailedCycles > 0 && s.WarmupCycles >= s.DetailedCycles,
			"Sampling.WarmupCycles (%d) must be smaller than DetailedCycles (%d): the window needs measurable cycles",
			s.WarmupCycles, s.DetailedCycles)
		bad(opts.CheckInvariants,
			"Sampling cannot be combined with CheckInvariants: fast-forward spans charge issue slots by extrapolation, which the per-cycle conservation checker rejects mid-span")
		bad(opts.OnCheckpoint != nil && (opts.CheckpointAt > 0 || opts.CheckpointEvery > 0),
			"Sampling cannot be combined with checkpoint capture (CheckpointAt/CheckpointEvery): a capture could land mid-span where timing state is extrapolated")
	}
	return errors.Join(errs...)
}

// residentWarps counts resident warps across all SMs after giving each
// controller a zero-latency admission pass, so a just-retired CTA the
// grid can still replace does not read as a composition change.
func (m *machine) residentWarps() int64 {
	var t int64
	for _, s := range m.sms {
		s.FunctionalAdmitNow()
		t += int64(s.ResidentWarps())
	}
	return t
}

// totalIssued sums issued warp instructions over all SMs.
func (m *machine) totalIssued() int64 {
	var t int64
	for _, s := range m.sms {
		t += s.Stats.Issued
	}
	return t
}

// functionallyQuiescent reports whether a fast-forward span may begin: no
// SM holds in-flight timing state (LSU traffic, pending writebacks, busy
// scoreboards, restoring CTAs) and — under VT — no context-buffer port is
// mid-swap. This is the same quiescence checkpoint boundaries rely on.
func (m *machine) functionallyQuiescent(now int64) bool {
	for _, s := range m.sms {
		if !s.FunctionallyQuiescent() {
			return false
		}
		if m.vt != nil && m.vt.SwapsInFlight(s.ID, now) > 0 {
			return false
		}
	}
	return true
}

// drainBound caps drain-to-quiescence: a drain that runs this long means
// the workload never quiesces (e.g. back-to-back dependent misses), and
// the span attempt is abandoned in favor of detailed simulation.
const drainBound = 100_000

// drainToQuiescence advances the machine cycle by cycle — writeback wheels
// and LSU streaming only, no controller phase, so no new swaps or
// admissions start — until every SM is functionally quiescent. Already
// scheduled controller events (restore completions, port frees) fire at
// their recorded cycles exactly as the detailed loop would fire them.
// Returns the cycle reached and whether quiescence was achieved; drained
// cycles are charged through AccountSkipped either way.
func (m *machine) drainToQuiescence(cycle int64) (int64, bool) {
	for _, s := range m.sms {
		s.WakeUp() // charge any in-progress per-SM fast-forward span
	}
	start := cycle
	reached := false
	for {
		for _, s := range m.sms {
			s.DrainTick()
		}
		if m.functionallyQuiescent(cycle) {
			reached = true
			break
		}
		if cycle-start > drainBound {
			break
		}
		next := cycle + 1
		lsuBusy := false
		for _, s := range m.sms {
			if s.LSUQueueLen() > 0 {
				lsuBusy = true
				break
			}
		}
		if !lsuBusy {
			// Nothing streams line-by-line; jump to the next scheduled
			// event (shared queue, SM lanes, or writeback wheels).
			evNext, ok := m.eng.nextEvent()
			if !ok {
				break // no progress possible; detailed loop surfaces the deadlock
			}
			if evNext > next {
				next = evNext
			}
		}
		cycle = next
		m.ev.AdvanceTo(cycle)
	}
	if n := cycle - start; n > 0 {
		for _, s := range m.sms {
			s.AccountSkipped(n)
		}
		m.samp.stats.DrainCycles += n
	}
	return cycle, reached
}

// resetWindow starts a fresh detailed window at cycle, recording the
// machine composition the window opens with.
func (m *machine) resetWindow(cycle int64) {
	sp := m.samp
	sp.winStart = cycle
	sp.warmupDone = false
	sp.nextFF = cycle + m.opts.Sampling.DetailedCycles
	sp.winResident = m.plainResidentWarps()
}

// plainResidentWarps counts resident warps without driving admission —
// safe to call in detailed mode, where zero-latency admission would
// bypass the swap machinery being modeled.
func (m *machine) plainResidentWarps() int64 {
	var t int64
	for _, s := range m.sms {
		t += int64(s.ResidentWarps())
	}
	return t
}

// fastForward runs one functional span: drain to quiescence, measure the
// detailed window's IPC, retire ~IPC x FastForwardCycles instructions
// functionally, charge the extrapolated cycles, and advance the clock.
// It returns the new current cycle; the caller re-enters the loop there.
func (m *machine) fastForward(cycle int64) (int64, error) {
	sp := m.samp
	opts := &m.opts

	// Measure IPC before draining: the drain's zero-issue tail is not
	// steady-state behavior and would bias the extrapolation low. The
	// window's sample is pooled with the phase accumulator (all windows
	// since the last composition change), so the extrapolation uses the
	// phase's mean IPC and window-to-window noise averages out. A window
	// whose resident-warp count changed between its two ends measured a
	// mix of phases: it gets a phase id of its own, resets the pool, and
	// launches no span.
	issuedAtDrain := m.totalIssued()
	dirty := m.plainResidentWarps() != sp.winResident
	var ipc float64
	if d := cycle - sp.baseCycle; sp.warmupDone && d > 0 {
		wi := issuedAtDrain - sp.baseIssued
		sp.ipcs = append(sp.ipcs, float64(wi)/float64(d))
		if dirty {
			sp.phaseID++
			sp.winPhase = append(sp.winPhase, sp.phaseID)
			sp.phaseID++
			sp.phaseIssued, sp.phaseCycles = 0, 0
		} else {
			sp.winPhase = append(sp.winPhase, sp.phaseID)
			sp.phaseIssued += wi
			sp.phaseCycles += d
			ipc = float64(sp.phaseIssued) / float64(sp.phaseCycles)
		}
	}
	if dirty || ipc <= 0 {
		// Composition changed mid-window, or nothing issued (startup,
		// tail, an all-idle window): extrapolation has no trustworthy
		// signal. Spend another detailed window — no drain needed, the
		// detailed loop just continues.
		sp.stats.AbandonedSpans++
		sp.stats.DetailedCycles += cycle - sp.winStart
		m.resetWindow(cycle)
		return cycle, nil
	}

	now, quiesced := m.drainToQuiescence(cycle)
	drained := now - cycle
	sp.stats.DetailedCycles += now - sp.winStart
	if !quiesced {
		sp.stats.AbandonedSpans++
		m.resetWindow(now)
		return m.afterSpan(now)
	}
	// Functional retire: round-robin chunks across SMs until the target
	// instruction count is reached or no SM can make progress (every warp
	// finished, inactive, or the grid is empty of active work).
	target := int64(ipc * float64(opts.Sampling.FastForwardCycles))
	if target < 1 {
		target = 1
	}
	if sp.smIssued == nil {
		sp.smIssued = make([]int64, len(m.sms))
	}
	for i, s := range m.sms {
		sp.smIssued[i] = s.Stats.Issued
	}
	const chunk = 512 // instructions per SM per round, for fairness
	var retired int64
	truncated := false
	startResident := m.residentWarps()
	for retired < target {
		progress := false
		for _, s := range m.sms {
			rem := target - retired
			if rem <= 0 {
				break
			}
			if rem > chunk {
				rem = chunk
			}
			n := s.FunctionalRetire(rem)
			retired += n
			if n > 0 {
				progress = true
			}
		}
		if !progress {
			break
		}
		// Truncate the span when the machine's composition changes: a CTA
		// retired and admission could not refill it (the grid is out of
		// work), so the IPC measured over the previous window no longer
		// describes the machine. The next detailed window re-measures the
		// new phase — this is what keeps spans honest across the tail and
		// across occupancy steps (e.g. the last partial wave of CTAs).
		if m.residentWarps() < startResident {
			truncated = true
			break
		}
	}
	if retired == 0 {
		sp.stats.AbandonedSpans++
		m.resetWindow(now)
		return m.afterSpan(now)
	}
	if truncated {
		sp.stats.TruncatedSpans++
		// The machine entering the next window is a different phase; its
		// windows must not be pooled with the one this span extrapolated.
		sp.phaseID++
		sp.phaseIssued, sp.phaseCycles = 0, 0
	}

	// Extrapolated clock advance. The drain serialized load completions
	// that steady-state execution overlaps with issue, so the drained
	// cycles count against the span's budget: the span's work would have
	// absorbed them. Charged per SM so slot conservation and occupancy
	// accumulators stay exact.
	n := int64(float64(retired)/ipc + 0.5)
	if n > opts.Sampling.FastForwardCycles {
		n = opts.Sampling.FastForwardCycles
	}
	n -= drained
	if n < 0 {
		n = 0
	}
	for i, s := range m.sms {
		s.AccountSampled(n, s.Stats.Issued-sp.smIssued[i])
	}
	sp.spans = append(sp.spans, spanRec{win: len(sp.ipcs) - 1, cycles: n})
	sp.stats.Spans++
	sp.stats.ExtrapolatedCycles += n
	sp.stats.FunctionalInstrs += retired

	now += n
	m.ev.AdvanceTo(now)
	m.resetWindow(now)
	return m.afterSpan(now)
}

// afterSpan replays the loop-bottom bookkeeping the span skipped: the
// telemetry window pump (after all span charges landed, so rings stay
// conservation-exact), the occupancy timeline, and the max-cycles bound.
func (m *machine) afterSpan(now int64) (int64, error) {
	opts := &m.opts
	if col := opts.Telemetry; col != nil {
		for col.NextBoundary() <= now {
			col.Sample(m.sms, m.msys, m.vt, -1)
		}
	}
	if opts.SampleInterval > 0 {
		for m.nextSample <= now {
			m.sample(m.nextSample)
			m.nextSample += opts.SampleInterval
		}
	}
	if now > m.maxCycles {
		return 0, newAbortError(m.diagnose(ReasonMaxCycles, "", now),
			fmt.Sprintf("gpu: kernel %q exceeded %d cycles",
				m.launches[0].Kernel.Name, m.maxCycles), nil)
	}
	return now, nil
}

// finish derives the reported error bound and returns the run's sampling
// stats. Each span's extrapolated cycles are weighted by how much the IPC
// measurement disagreed between the windows bracketing that span — the
// local signal for how fast IPC was drifting while the span skipped
// detail. A truncated span compares only against its preceding window:
// the window after it measured a different phase by construction, and its
// IPC says nothing about the phase the span extrapolated. On top of the
// local drift each span carries a fixed margin for bias the windows
// cannot observe (the post-span machine starts from an idealized balanced
// state), plus a small whole-run floor.
func (sp *samplingState) finish(totalCycles int64) *SamplingStats {
	st := sp.stats
	weighted := 0.0
	for _, rec := range sp.spans {
		cur := sp.ipcs[rec.win]
		dev := 0.0
		if cur > 0 {
			if w := rec.win - 1; w >= 0 && sp.winPhase[w] == sp.winPhase[rec.win] {
				dev = math.Abs(sp.ipcs[w]-cur) / cur
			}
			if w := rec.win + 1; w < len(sp.ipcs) && sp.winPhase[w] == sp.winPhase[rec.win] {
				if d := math.Abs(sp.ipcs[w]-cur) / cur; d > dev {
					dev = d
				}
			}
		}
		weighted += float64(rec.cycles) * (1.5*dev + 0.02)
	}
	if totalCycles > 0 {
		st.ErrorBound = weighted/float64(totalCycles) + 0.005
	}
	return &st
}

// initSampling arms the span state machine at run entry (lazy so Resume's
// nonzero start cycle is respected). No-op when sampling is off.
func (m *machine) initSampling() {
	if !m.opts.Sampling.Enabled() || m.samp != nil {
		return
	}
	m.samp = &samplingState{}
	m.resetWindow(m.cycle)
}

// sampleHook is the per-iteration span check at the top of the run loop.
// It finalizes the warmup baseline once the window has run WarmupCycles,
// and triggers a fast-forward span when the window is complete. Returns
// the (possibly advanced) current cycle and whether a span ran.
func (m *machine) sampleHook(cycle int64) (int64, bool, error) {
	sp := m.samp
	if !sp.warmupDone && cycle >= sp.winStart+m.opts.Sampling.WarmupCycles {
		sp.baseCycle = cycle
		sp.baseIssued = m.totalIssued()
		sp.warmupDone = true
	}
	if cycle < sp.nextFF {
		return cycle, false, nil
	}
	now, err := m.fastForward(cycle)
	return now, true, err
}
