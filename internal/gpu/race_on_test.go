//go:build race

package gpu

const raceEnabled = true
