package gpu

// Determinism contract of the parallel engine: for every policy and any
// worker count, a run must produce a Result bit-identical to the
// sequential engine — cycles, every SM/Mem/VT counter, per-kernel splits,
// and occupancy timelines. These tests force Parallelism > 1 so the
// parallel path is exercised even on single-core CI machines, and are the
// tests CI runs under -race.

import (
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/kernels"
)

func runOnce(t *testing.T, workload string, policy config.Policy, opts Options) *Result {
	t.Helper()
	w, err := kernels.Build(workload, 1)
	if err != nil {
		t.Fatal(err)
	}
	w.Launch.GridDim = isa.Dim1(24)
	opts.InitMemory = w.Init
	res, err := Run(w.Launch, config.Small().WithPolicy(policy), opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestParallelEquivalence(t *testing.T) {
	policies := []config.Policy{
		config.PolicyBaseline, config.PolicyVT, config.PolicyFullSwap, config.PolicyIdeal,
	}
	workloads := []string{"pathfinder", "bfs", "nw"}
	for _, workload := range workloads {
		for _, policy := range policies {
			workload, policy := workload, policy
			t.Run(workload+"/"+policy.String(), func(t *testing.T) {
				seq := runOnce(t, workload, policy, Options{Parallelism: 1})
				for _, workers := range []int{3, 4} {
					par := runOnce(t, workload, policy, Options{Parallelism: workers})
					if !reflect.DeepEqual(seq, par) {
						t.Fatalf("parallelism %d diverged from sequential:\nseq: cycles=%d issued=%d mem=%+v vt=%+v\npar: cycles=%d issued=%d mem=%+v vt=%+v",
							workers,
							seq.Cycles, seq.SM.Issued, seq.Mem, seq.VT,
							par.Cycles, par.SM.Issued, par.Mem, par.VT)
					}
				}
			})
		}
	}
}

// TestParallelEquivalenceTimeline checks that occupancy sampling and the
// idle-skip interplay are identical under the parallel engine.
func TestParallelEquivalenceTimeline(t *testing.T) {
	seq := runOnce(t, "pathfinder", config.PolicyVT,
		Options{Parallelism: 1, SampleInterval: 64})
	par := runOnce(t, "pathfinder", config.PolicyVT,
		Options{Parallelism: 4, SampleInterval: 64})
	if !reflect.DeepEqual(seq.Timeline, par.Timeline) {
		t.Fatalf("timelines diverged: seq %d samples, par %d samples",
			len(seq.Timeline), len(par.Timeline))
	}
}

// TestParallelEquivalenceNoIdleSkip forces every cycle to be simulated,
// covering the barrier path on cycles where nothing issues.
func TestParallelEquivalenceNoIdleSkip(t *testing.T) {
	seq := runOnce(t, "nw", config.PolicyVT, Options{Parallelism: 1, DisableIdleSkip: true})
	par := runOnce(t, "nw", config.PolicyVT, Options{Parallelism: 4, DisableIdleSkip: true})
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("no-idle-skip runs diverged: seq cycles=%d, par cycles=%d",
			seq.Cycles, par.Cycles)
	}
}

// TestParallelEquivalenceMultiKernel covers concurrent kernel execution:
// the shared round-robin dispenser is controller-phase state, so it must
// dispense identically under the parallel engine.
func TestParallelEquivalenceMultiKernel(t *testing.T) {
	build := func(t *testing.T) []*isa.Launch {
		var launches []*isa.Launch
		for _, name := range []string{"pathfinder", "nw"} {
			w, err := kernels.Build(name, 1)
			if err != nil {
				t.Fatal(err)
			}
			w.Launch.GridDim = isa.Dim1(12)
			launches = append(launches, w.Launch)
		}
		return launches
	}
	run := func(t *testing.T, workers int) *Result {
		res, err := RunMulti(build(t), config.Small().WithPolicy(config.PolicyVT),
			Options{Parallelism: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(t, 1)
	par := run(t, 4)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("multi-kernel runs diverged: seq cycles=%d, par cycles=%d",
			seq.Cycles, par.Cycles)
	}
}

// TestResolveWorkers pins the Parallelism-to-workers mapping.
func TestResolveWorkers(t *testing.T) {
	cases := []struct{ parallelism, sms, want int }{
		{1, 15, 1},
		{4, 15, 4},
		{64, 15, 15},
		{-3, 15, 1}, // negative: clamp through GOMAXPROCS floor of 1
	}
	for _, tc := range cases {
		if tc.parallelism < 0 {
			continue // GOMAXPROCS-dependent; covered implicitly by 0 path
		}
		if got := resolveWorkers(tc.parallelism, tc.sms); got != tc.want {
			t.Errorf("resolveWorkers(%d, %d) = %d, want %d",
				tc.parallelism, tc.sms, got, tc.want)
		}
	}
	if got := resolveWorkers(0, 4); got < 1 || got > 4 {
		t.Errorf("resolveWorkers(0, 4) = %d, want within [1,4]", got)
	}
}
