package gpu

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/mem"
)

// sampledOpts is the sampling configuration the accuracy tests use:
// windows long enough to measure IPC past the post-span transient, spans
// long enough that most of the run is extrapolated.
func sampledOpts() SamplingOptions {
	return SamplingOptions{DetailedCycles: 12000, FastForwardCycles: 40000, WarmupCycles: 6000}
}

// longMemLaunch is a long-running memory-bound launch: the kind of run
// sampling exists to accelerate.
func longMemLaunch(t testing.TB, iters, ctas int) *isa.Launch {
	return &isa.Launch{
		Kernel:   memLoopKernel(t, iters),
		GridDim:  isa.Dim1(ctas),
		BlockDim: isa.Dim1(64),
		Params:   []uint32{aBase},
	}
}

// memStoreLoopKernel is memLoopKernel plus a final store of the loop's
// accumulator, so sampled runs can be checked for exact memory outputs.
func memStoreLoopKernel(t testing.TB, iters int) *isa.Kernel {
	b := isa.NewBuilder("memstoreloop_test")
	b.S2R(0, isa.SrCTAIdX)
	b.S2R(1, isa.SrNTidX)
	b.IMul(2, 0, 1)
	b.S2R(3, isa.SrTidX)
	b.IAdd(2, 2, 3)
	b.ShlImm(4, 2, 2)
	b.LdParam(5, 0)
	b.IAdd(5, 5, 4)
	b.MovImm(8, 0)
	b.MovImm(9, 0)
	b.Label("loop")
	b.LdG(6, 5, 0)
	b.IAdd(8, 8, 6)
	b.IAddImm(5, 5, 4096+128)
	b.AndImm(5, 5, 0x3FFFF)
	b.LdParam(7, 0)
	b.IAdd(5, 5, 7)
	b.IAddImm(9, 9, 1)
	b.SetpImm(10, isa.CmpILT, 9, int32(iters))
	b.Bra(10, "loop", "done")
	b.Label("done")
	b.LdParam(11, 1)
	b.IAdd(11, 11, 4)
	b.StG(11, 0, 8)
	b.Exit()
	k, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// chaseBase sits above outBase so the chase's load region never overlaps
// the output stores: a load observing another CTA's store at a
// schedule-dependent time would make architectural state depend on
// interleaving, which sampled runs do not preserve.
const chaseBase = 0x0100_0000

// chaseKernel is a dependent-load latency chain: each iteration folds
// the previous load's destination register into the next address, so the
// scoreboard serializes iterations on the load round trip and the
// machine spends most cycles waiting on memory. Lanes within a warp
// share the address (one coalesced line per load) and each warp chases
// its own 16 MiB region at an 8 KiB stride, so every load misses but the
// DRAM system stays lightly loaded: the round trip is latency, not
// queueing, which makes the workload's IPC stationary. This is the
// regime sampling exists for: detailed cycles per instruction is high,
// so skipping the timing model (but not the execution) wins big.
func chaseKernel(t testing.TB, iters int) *isa.Kernel {
	b := isa.NewBuilder("chase_test")
	b.S2R(0, isa.SrCTAIdX)
	b.S2R(1, isa.SrNTidX)
	b.IMul(2, 0, 1)
	b.S2R(3, isa.SrTidX)
	b.IAdd(2, 2, 3)            // gid
	b.AndImm(4, 2, 0xFFFFFFE0) // warp-uniform: global warp id * 32
	b.ShlImm(4, 4, 19)         // * 16 MiB region per warp
	b.LdParam(5, 0)
	b.IAdd(5, 5, 4) // warp's chase cursor
	b.MovImm(6, 0)  // chase register
	b.MovImm(9, 0)  // counter
	b.Label("loop")
	b.IAdd(8, 5, 6) // next address needs the last loaded value
	b.LdG(6, 8, 0)
	b.IAddImm(5, 5, 8192)
	b.IAddImm(9, 9, 1)
	b.SetpImm(10, isa.CmpILT, 9, int32(iters))
	b.Bra(10, "loop", "done")
	b.Label("done")
	b.LdParam(11, 1)
	b.ShlImm(12, 2, 2)
	b.IAdd(11, 11, 12)
	b.StG(11, 0, 6)
	b.Exit()
	k, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func chaseLaunch(t testing.TB, iters, ctas int) *isa.Launch {
	return &isa.Launch{
		Kernel:   chaseKernel(t, iters),
		GridDim:  isa.Dim1(ctas),
		BlockDim: isa.Dim1(64),
		Params:   []uint32{chaseBase, outBase},
	}
}

// chaseScatterKernel is chaseKernel with per-lane addresses one cache
// line apart: every load touches 32 distinct lines, so on top of the
// per-warp latency chain the DRAM system runs saturated and the machine
// has in-flight traffic every cycle.
func chaseScatterKernel(t testing.TB, iters int) *isa.Kernel {
	b := isa.NewBuilder("chase_scatter_test")
	b.S2R(0, isa.SrCTAIdX)
	b.S2R(1, isa.SrNTidX)
	b.IMul(2, 0, 1)
	b.S2R(3, isa.SrTidX)
	b.IAdd(2, 2, 3)   // gid
	b.ShlImm(4, 2, 7) // gid*128: one cache line per lane
	b.LdParam(5, 0)
	b.IAdd(5, 5, 4) // lane's chase cursor
	b.MovImm(6, 0)  // chase register
	b.MovImm(9, 0)  // counter
	b.Label("loop")
	b.IAdd(8, 5, 6) // next address needs the last loaded value
	b.LdG(6, 8, 0)
	b.IAddImm(5, 5, 8192)
	b.IAddImm(9, 9, 1)
	b.SetpImm(10, isa.CmpILT, 9, int32(iters))
	b.Bra(10, "loop", "done")
	b.Label("done")
	b.LdParam(11, 1)
	b.ShlImm(12, 2, 2)
	b.IAdd(11, 11, 12)
	b.StG(11, 0, 6)
	b.Exit()
	k, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func chaseScatterLaunch(t testing.TB, iters, ctas int) *isa.Launch {
	return &isa.Launch{
		Kernel:   chaseScatterKernel(t, iters),
		GridDim:  isa.Dim1(ctas),
		BlockDim: isa.Dim1(64),
		Params:   []uint32{chaseBase, outBase},
	}
}

func memStoreLaunch(t testing.TB, iters, ctas int) *isa.Launch {
	return &isa.Launch{
		Kernel:   memStoreLoopKernel(t, iters),
		GridDim:  isa.Dim1(ctas),
		BlockDim: isa.Dim1(64),
		Params:   []uint32{aBase, outBase},
	}
}

// TestSamplingAccuracyMeasured runs the same launch exact and sampled and
// measures the cycle error directly: it must fall within the run's
// reported error bound and within the 2% target, while every piece of
// architectural state the run exposes — instructions issued, thread
// instructions, memory contents — matches the exact run exactly.
func TestSamplingAccuracyMeasured(t *testing.T) {
	for _, p := range []config.Policy{config.PolicyBaseline, config.PolicyVT} {
		t.Run(p.String(), func(t *testing.T) {
			cfg := config.Small().WithPolicy(p)
			const iters, ctas = 300, 24
			var exactMem, sampMem *mem.Backing
			exact, err := Run(memStoreLaunch(t, iters, ctas), cfg, Options{
				KeepBacking: func(bk *mem.Backing) { exactMem = bk },
			})
			if err != nil {
				t.Fatal(err)
			}
			sampled, err := Run(memStoreLaunch(t, iters, ctas), cfg, Options{
				Sampling:    sampledOpts(),
				KeepBacking: func(bk *mem.Backing) { sampMem = bk },
			})
			if err != nil {
				t.Fatal(err)
			}
			if sampled.Sampling == nil || sampled.Sampling.Spans == 0 {
				t.Fatalf("sampled run executed no spans: %+v", sampled.Sampling)
			}
			relErr := absF(float64(sampled.Cycles-exact.Cycles)) / float64(exact.Cycles)
			t.Logf("exact %d cycles, sampled %d cycles (err %.3f%%, bound %.3f%%, %d spans, %d extrapolated)",
				exact.Cycles, sampled.Cycles, 100*relErr, 100*sampled.Sampling.ErrorBound,
				sampled.Sampling.Spans, sampled.Sampling.ExtrapolatedCycles)
			if relErr > sampled.Sampling.ErrorBound {
				t.Errorf("measured error %.4f exceeds reported bound %.4f",
					relErr, sampled.Sampling.ErrorBound)
			}
			if relErr > 0.02 {
				t.Errorf("measured error %.4f exceeds the 2%% target", relErr)
			}
			// Architectural state is exact, not extrapolated.
			if sampled.SM.Issued != exact.SM.Issued {
				t.Errorf("issued instructions diverge: sampled %d, exact %d",
					sampled.SM.Issued, exact.SM.Issued)
			}
			if sampled.SM.ThreadInstrs != exact.SM.ThreadInstrs {
				t.Errorf("thread instructions diverge: sampled %d, exact %d",
					sampled.SM.ThreadInstrs, exact.SM.ThreadInstrs)
			}
			for i := 0; i < ctas*64; i++ {
				a := outBase + uint32(4*i)
				if e, s := exactMem.LoadWord(a), sampMem.LoadWord(a); e != s {
					t.Fatalf("out[%d] diverges: exact %d, sampled %d", i, e, s)
				}
			}
		})
	}
}

// TestSamplingSpeedup pins the headline performance claim: on a
// latency-bound run — where detailed simulation spends several machine
// cycles per retired instruction — sampling must deliver at least 5x
// single-core simulated-cycles-per-second over the exact run, while the
// measured cycle error stays within the run's reported bound and within
// the 2% target. The scatter chase keeps the DRAM system saturated (no
// idle spans for the exact run's event jumps to skip), so the speedup
// here is sampling's, not the fast-forwarder's.
func TestSamplingSpeedup(t *testing.T) {
	cfg := config.Small().WithPolicy(config.PolicyVT)
	cfg.MaxCycles = 20_000_000
	so := SamplingOptions{DetailedCycles: 25000, FastForwardCycles: 500000, WarmupCycles: 12000}
	const iters, ctas = 2000, 8

	t0 := time.Now()
	exact, err := Run(chaseScatterLaunch(t, iters, ctas), cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dtExact := time.Since(t0)
	t1 := time.Now()
	sampled, err := Run(chaseScatterLaunch(t, iters, ctas), cfg, Options{Sampling: so})
	if err != nil {
		t.Fatal(err)
	}
	dtSampled := time.Since(t1)

	if sampled.Sampling == nil || sampled.Sampling.Spans == 0 {
		t.Fatalf("sampled run executed no spans: %+v", sampled.Sampling)
	}
	relErr := absF(float64(sampled.Cycles-exact.Cycles)) / float64(exact.Cycles)
	rateExact := float64(exact.Cycles) / dtExact.Seconds()
	rateSampled := float64(sampled.Cycles) / dtSampled.Seconds()
	speedup := rateSampled / rateExact
	t.Logf("exact %d cycles in %v (%.0f cyc/s); sampled %d cycles in %v (%.0f cyc/s): speedup %.2fx, err %.2f%%, bound %.2f%%",
		exact.Cycles, dtExact.Round(time.Millisecond), rateExact,
		sampled.Cycles, dtSampled.Round(time.Millisecond), rateSampled,
		speedup, 100*relErr, 100*sampled.Sampling.ErrorBound)

	if relErr > sampled.Sampling.ErrorBound {
		t.Errorf("measured error %.4f exceeds reported bound %.4f", relErr, sampled.Sampling.ErrorBound)
	}
	if relErr > 0.02 {
		t.Errorf("measured error %.4f exceeds the 2%% target", relErr)
	}
	if sampled.SM.Issued != exact.SM.Issued {
		t.Errorf("issued instructions diverge: sampled %d, exact %d", sampled.SM.Issued, exact.SM.Issued)
	}
	if raceEnabled {
		t.Log("race detector enabled; skipping the wall-clock speedup assertion")
		return
	}
	if speedup < 5 {
		t.Errorf("sampled simulation rate %.2fx the exact rate, want >= 5x", speedup)
	}
}

func absF(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// TestSamplingArmedButIdleIsPure proves the span machinery is a pure
// observer while no span triggers: with DetailedCycles beyond the run
// length, every cycle simulates in detail and the Result must be
// DeepEqual to a fully exact run (modulo the Sampling report itself),
// across every policy x scheduler x engine combination.
func TestSamplingArmedButIdleIsPure(t *testing.T) {
	policies := []config.Policy{
		config.PolicyBaseline, config.PolicyVT,
		config.PolicyIdeal, config.PolicyFullSwap,
	}
	schedulers := []config.SchedulerKind{
		config.SchedGTO, config.SchedLRR, config.SchedTwoLevel,
	}
	for _, p := range policies {
		for _, sched := range schedulers {
			for _, par := range []int{1, 4} {
				t.Run(p.String()+"/"+sched.String()+"/par"+string(rune('0'+par)), func(t *testing.T) {
					cfg := config.Small().WithPolicy(p)
					cfg.Scheduler = sched
					run := func(s SamplingOptions) *Result {
						res, err := Run(mixedLaunch(t, 16, 64), cfg, Options{
							InitMemory:  initVec(16 * 64),
							Parallelism: par,
							Sampling:    s,
						})
						if err != nil {
							t.Fatal(err)
						}
						return res
					}
					exact := run(SamplingOptions{})
					armed := run(SamplingOptions{DetailedCycles: 1 << 40, FastForwardCycles: 1})
					if exact.Sampling != nil {
						t.Fatal("exact run reported sampling stats")
					}
					if armed.Sampling == nil || armed.Sampling.Spans != 0 {
						t.Fatalf("armed-idle run should report zero spans: %+v", armed.Sampling)
					}
					armed.Sampling = nil
					if !reflect.DeepEqual(exact, armed) {
						t.Fatalf("armed-but-idle sampling perturbs the run:\nexact: %+v\narmed: %+v", exact, armed)
					}
				})
			}
		}
	}
}

// TestSamplingSlotConservation checks the issue-slot conservation
// invariant across sampled spans: AccountSampled must keep slot samples
// equal to cycles x schedulers on every SM.
func TestSamplingSlotConservation(t *testing.T) {
	cfg := config.Small().WithPolicy(config.PolicyVT)
	res, err := Run(longMemLaunch(t, 200, 24), cfg, Options{Sampling: sampledOpts()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sampling == nil || res.Sampling.Spans == 0 {
		t.Fatal("no spans executed; conservation check is vacuous")
	}
	slots := res.SM.SlotIssued + res.SM.SlotStallMem + res.SM.SlotStallALU +
		res.SM.SlotStallBar + res.SM.SlotStallStr + res.SM.SlotIdle
	want := res.Cycles * int64(res.Schedulers) * int64(res.NumSMs)
	if slots != want {
		t.Fatalf("slot conservation violated across sampled spans: %d slot samples, want %d", slots, want)
	}
}

// TestSamplingOptionsValidation exercises the joined-error validation of
// the sampling knobs: every violation is reported, none panics.
func TestSamplingOptionsValidation(t *testing.T) {
	l := vecAddLaunch(t, 2, 32)
	cfg := config.Small()

	cases := []struct {
		name string
		opts Options
		want []string
	}{
		{
			name: "negative windows",
			opts: Options{Sampling: SamplingOptions{DetailedCycles: -5, FastForwardCycles: -1, WarmupCycles: -2}},
			want: []string{"DetailedCycles", "FastForwardCycles", "WarmupCycles"},
		},
		{
			name: "warmup swallows window",
			opts: Options{Sampling: SamplingOptions{DetailedCycles: 100, FastForwardCycles: 1000, WarmupCycles: 100}},
			want: []string{"WarmupCycles"},
		},
		{
			name: "invariants mid-span",
			opts: Options{
				Sampling:        SamplingOptions{DetailedCycles: 100, FastForwardCycles: 1000},
				CheckInvariants: true,
			},
			want: []string{"CheckInvariants"},
		},
		{
			name: "checkpoint mid-span",
			opts: Options{
				Sampling:        SamplingOptions{DetailedCycles: 100, FastForwardCycles: 1000},
				CheckpointEvery: 64,
				OnCheckpoint:    func(*Checkpoint) {},
			},
			want: []string{"CheckpointEvery"},
		},
		{
			name: "parallelism folded in",
			opts: Options{Parallelism: -1},
			want: []string{"Parallelism"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(l, cfg, tc.opts)
			if err == nil {
				t.Fatal("invalid options accepted")
			}
			for _, w := range tc.want {
				if !strings.Contains(err.Error(), w) {
					t.Errorf("error %q does not mention %s", err, w)
				}
			}
		})
	}

	// A valid sampled configuration must still run.
	res, err := Run(vecAddLaunch(t, 2, 32), cfg, Options{
		InitMemory: initVec(64),
		Sampling:   SamplingOptions{DetailedCycles: 100, FastForwardCycles: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sampling == nil {
		t.Fatal("sampled run reported no sampling stats")
	}
}

// TestParseSampling pins the -sample flag syntax and its round-trip
// through SamplingOptions.String.
func TestParseSampling(t *testing.T) {
	good := map[string]SamplingOptions{
		"":                   {},
		"100:1000":           {DetailedCycles: 100, FastForwardCycles: 1000},
		"100:1000:25":        {DetailedCycles: 100, FastForwardCycles: 1000, WarmupCycles: 25},
		"25000:500000:12000": {DetailedCycles: 25000, FastForwardCycles: 500000, WarmupCycles: 12000},
	}
	for in, want := range good {
		got, err := ParseSampling(in)
		if err != nil {
			t.Errorf("ParseSampling(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseSampling(%q) = %+v, want %+v", in, got, want)
		}
		if got.Enabled() {
			rt, err := ParseSampling(got.String())
			if err != nil || rt != got {
				t.Errorf("round-trip of %q via %q failed: %+v, %v", in, got.String(), rt, err)
			}
		} else if got.String() != "" {
			t.Errorf("disabled options render %q, want empty", got.String())
		}
	}
	for _, bad := range []string{"100", "100:1000:25:7", "a:b", "100:", ":100", "100:1000:x"} {
		if _, err := ParseSampling(bad); err == nil {
			t.Errorf("ParseSampling(%q) accepted a bad spec", bad)
		}
	}
}
