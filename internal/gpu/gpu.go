// Package gpu assembles the whole simulated GPU — SMs, memory system,
// event queue, CTA dispenser, and the configured CTA scheduling policy —
// and runs a kernel launch to completion, returning aggregate statistics.
package gpu

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cta"
	"repro/internal/event"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sm"
	"repro/internal/telemetry"
	"repro/internal/warp"
)

// DefaultMaxCycles aborts runaway simulations.
const DefaultMaxCycles = 200_000_000

// Sample is one point of the occupancy timeline (Options.SampleInterval).
type Sample struct {
	Cycle         int64
	ActiveWarps   float64 // slot-bound warps per SM at the sample point
	ResidentWarps float64 // resident warps per SM (incl. inactive CTAs)
	IPC           float64 // GPU-wide IPC over the preceding interval
}

// PerKernel summarizes one launch of a multi-kernel run.
type PerKernel struct {
	Name   string
	CTAs   int   // CTAs in the launch's grid
	Issued int64 // warp instructions issued on its behalf
}

// Result is the outcome of one simulation.
type Result struct {
	Kernel string
	Policy config.Policy
	Cycles int64

	// PerKernel has one entry per launch (one for plain Run).
	PerKernel []PerKernel

	SM  sm.Stats   // aggregated over all SMs
	Mem mem.Stats  // memory-system counters
	VT  core.Stats // zero for non-VT policies

	NumSMs     int
	Schedulers int
	WarpSize   int
	Occupancy  cta.Occupancy

	// Timeline holds occupancy samples when Options.SampleInterval > 0.
	Timeline []Sample

	// Sampling reports the sampled-simulation accounting and error bound;
	// nil for fully detailed runs (the default), so exact results are
	// byte-identical to builds predating the sampling engine.
	Sampling *SamplingStats `json:",omitempty"`
}

// IPC returns total warp instructions per cycle across the GPU.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.SM.Issued) / float64(r.Cycles)
}

// AvgActiveWarpsPerSM returns the mean number of slot-bound warps per SM.
func (r *Result) AvgActiveWarpsPerSM() float64 {
	if r.SM.Cycles == 0 {
		return 0
	}
	return float64(r.SM.ActiveWarpAccum) / float64(r.SM.Cycles)
}

// AvgResidentWarpsPerSM returns the mean resident (active + inactive)
// warps per SM — the thread-level parallelism VT exposes.
func (r *Result) AvgResidentWarpsPerSM() float64 {
	if r.SM.Cycles == 0 {
		return 0
	}
	return float64(r.SM.ResidentWarpAccum) / float64(r.SM.Cycles)
}

// AvgActiveCTAsPerSM returns the mean active CTAs per SM.
func (r *Result) AvgActiveCTAsPerSM() float64 {
	if r.SM.Cycles == 0 {
		return 0
	}
	return float64(r.SM.ActiveCTAAccum) / float64(r.SM.Cycles)
}

// AvgResidentCTAsPerSM returns the mean resident CTAs per SM.
func (r *Result) AvgResidentCTAsPerSM() float64 {
	if r.SM.Cycles == 0 {
		return 0
	}
	return float64(r.SM.ResidentCTAAccum) / float64(r.SM.Cycles)
}

// SIMDEfficiency returns the mean fraction of lanes active per issued
// warp instruction (1.0 = divergence-free full warps).
func (r *Result) SIMDEfficiency() float64 {
	if r.SM.Issued == 0 {
		return 0
	}
	ws := r.WarpSize
	if ws == 0 {
		ws = 32
	}
	return float64(r.SM.ThreadInstrs) / float64(r.SM.Issued) / float64(ws)
}

// baselineController implements the stock GPU CTA dispatcher: launch CTAs
// onto an SM while both the scheduling and capacity limits admit them, and
// refill as CTAs retire. With config.PolicyIdeal the scheduling limits are
// effectively unbounded, making this the upper-bound policy too.
type baselineController struct {
	src cta.Source
}

func (b *baselineController) Cycle(s *sm.SM) {
	for {
		c := b.src.Next(s.Fit)
		if c == nil {
			return
		}
		s.AddResident(c)
		s.Activate(c)
	}
}

func (b *baselineController) CTARetired(s *sm.SM, c *warp.CTA)   {}
func (b *baselineController) LoadsDrained(s *sm.SM, c *warp.CTA) {}

// FunctionalAdmit implements sm.FunctionalAdmitter: baseline admission is
// already zero-latency and event-free, so fast-forward spans refill slots
// through the ordinary dispatch loop. Baseline CTAs are always active, so
// the swapped-out retire hook has nothing to release.
func (b *baselineController) FunctionalAdmit(s *sm.SM) { b.Cycle(s) }

func (b *baselineController) FunctionalCTARetired(s *sm.SM, c *warp.CTA) {}

// Options customize a simulation run.
type Options struct {
	// InitMemory preloads the functional global memory (graph inputs,
	// matrices) before the launch.
	InitMemory func(*mem.Backing)
	// Trace receives Virtual Thread CTA state transitions (VT policies
	// only).
	Trace func(core.TraceEvent)
	// KeepBacking, when non-nil, receives the backing store after the
	// run so callers can verify kernel outputs.
	KeepBacking func(*mem.Backing)
	// DisableIdleSkip forces the engine to simulate every cycle instead
	// of fast-forwarding across quiescent stall periods — both the
	// whole-GPU skip and the per-SM fast-forward. The results must be
	// identical either way (tested); this exists to verify that property
	// and to debug the skip heuristic.
	DisableIdleSkip bool
	// DisableIssueFastPath routes warp-issue selection, stall
	// classification, and quiescence detection through the original full
	// scans instead of the incrementally maintained ready sets. The
	// cached state is kept up to date either way, so results must be
	// bit-identical; like DisableIdleSkip this exists to enforce and
	// debug that equivalence.
	DisableIssueFastPath bool
	// DisableEventWheel backs the event queue with the reference binary
	// heap instead of the bucketed timing wheel. Both backends order
	// events by the same (cycle, scheduling-order) key, so results must
	// be bit-identical; like the flags above this exists to enforce and
	// debug that equivalence. Heap-backed queues are not pooled across
	// runs.
	DisableEventWheel bool
	// SampleInterval, when positive, records an occupancy/IPC sample
	// every that-many cycles into Result.Timeline.
	SampleInterval int64
	// Parallelism selects the intra-run engine: 0 (default) shards SMs
	// across one worker per core (capped at the SM count), 1 forces the
	// sequential engine, N > 1 uses N workers. Results are bit-identical
	// at every setting; see docs/ARCHITECTURE.md for the determinism
	// contract.
	Parallelism int
	// CheckInvariants runs every SM's conservation-invariant checker
	// (issue-slot conservation, residency accounting, ready-bitset and
	// writeback-wheel consistency; see sm.CheckInvariants) every
	// InvariantInterval cycles and at run end. A violation aborts the
	// run with an *AbortError whose diagnostic carries the cycle-stamped
	// report. Off by default: the checker is a full state rescan.
	CheckInvariants bool
	// InvariantInterval is the checking period in cycles when
	// CheckInvariants is set; zero means DefaultInvariantInterval.
	InvariantInterval int64
	// Ctx, when non-nil, bounds the run by wall clock: it is polled
	// every few thousand simulated cycles, and its expiry or
	// cancellation aborts the run with an *AbortError (ReasonDeadline)
	// carrying a full diagnostic of where the simulation stood.
	Ctx context.Context
	// Telemetry, when non-nil, attaches the collector to the run: it is
	// wired into the sm.Probe hooks, the VT trace stream (teed with
	// Trace), and the run loop's window pump, and it records per-window
	// metric rings and lifecycle spans. The collector is a pure observer
	// — results are bit-identical with and without one (tested) — and a
	// nil collector costs nothing on the hot path.
	Telemetry *telemetry.Collector
	// FaultHook, when non-nil, runs at the top of every simulated cycle
	// with the current cycle and the live SMs. It is the deterministic
	// fault-injection seam the run supervisor's tests use to trigger
	// panics, state corruption, and hangs at chosen cycles (see
	// internal/faultinject); it must be nil in normal runs. Idle-skip
	// makes cycle numbers jump, so hooks must fire on the first cycle at
	// or past their target, never on equality.
	FaultHook func(cycle int64, sms []*sm.SM)
	// CheckpointAt, when positive, captures a checkpoint at the first
	// simulated cycle at or past this value (idle-skip makes cycle
	// numbers jump) and hands it to OnCheckpoint. One-shot unless
	// CheckpointEvery is also set.
	CheckpointAt int64
	// CheckpointEvery, when positive, captures checkpoints periodically
	// — at least this many cycles apart, with the gap widening as the
	// run grows so capture cost stays a bounded fraction of simulation
	// time — while CheckpointGuard (if any) holds. Each capture goes to
	// OnCheckpoint; callers keep whichever they want.
	CheckpointEvery int64
	// CheckpointGuard, when non-nil, gates captures: once it returns
	// false no further checkpoints are taken (the condition latches).
	// Prefix-forked sweeps use it to stop capturing as soon as the run
	// consumes a parameter that varies across the sweep.
	CheckpointGuard func(cycle int64, vt core.Stats) bool
	// OnCheckpoint receives captured checkpoints. Checkpointing is
	// disabled when nil, whatever the other fields say.
	OnCheckpoint func(*Checkpoint)
	// Sampling enables interval/sampled simulation: detailed windows
	// alternating with functional fast-forward spans whose clock advance
	// is extrapolated from the measured IPC (see sampling.go and
	// docs/ARCHITECTURE.md, "Sampled simulation & error model"). The zero
	// value runs fully detailed. Incompatible with CheckInvariants and
	// with checkpoint capture; validated at engine build.
	Sampling SamplingOptions
}

// queuePool recycles timing-wheel event queues across runs: the wheel's
// bucket slab is the largest single per-run allocation, and reusing it
// (plus whatever bucket/heap capacity a previous run grew) lets sweep
// harnesses schedule without allocating in steady state. Queues are Reset
// on the way back in; the heap-backed debug queues (DisableEventWheel)
// are not pooled.
var queuePool = sync.Pool{New: func() any { return event.NewQueue() }}

// Run simulates one launch on the configured GPU and returns its result.
func Run(l *isa.Launch, cfg config.GPUConfig, opts Options) (*Result, error) {
	return RunMulti([]*isa.Launch{l}, cfg, opts)
}

// RunMulti simulates several launches executing concurrently on the GPU
// (Fermi-style concurrent kernel execution): the dispatcher interleaves
// their CTAs round-robin onto SMs, and under the VT policies inactive
// CTAs of different kernels share each SM's capacity.
func RunMulti(launches []*isa.Launch, cfg config.GPUConfig, opts Options) (*Result, error) {
	m, err := newMachine(launches, cfg, opts)
	if err != nil {
		return nil, err
	}
	defer m.release()
	return m.run()
}

// machine is one fully assembled simulated GPU: the component graph plus
// the run loop's bookkeeping. RunMulti builds one, runs it, and releases
// it; Resume builds one, overlays a checkpoint, and runs the rest.
type machine struct {
	launches []*isa.Launch
	cfg      config.GPUConfig
	opts     Options
	name     string

	ev      *event.Queue
	pooled  bool
	backing *mem.Backing
	msys    *mem.System
	grid    *cta.MultiGrid
	vt      *core.Controller // nil for non-VT policies
	sms     []*sm.SM
	eng     *engine
	reg     *event.Registry // built lazily; only snapshots need it

	maxCycles int64
	cycle     int64

	timeline        []Sample
	nextSample      int64
	lastIssuedTot   int64
	lastSampleCycle int64

	nextCk int64 // next checkpoint cycle; meaningful unless ckDone
	ckDone bool  // no further checkpoints (disabled, one-shot taken, or guard latched)

	samp *samplingState // nil unless Options.Sampling enabled
}

// newMachine validates the inputs and assembles the component graph. The
// caller must release() the machine (idempotent) when done.
func newMachine(launches []*isa.Launch, cfg config.GPUConfig, opts Options) (*machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := validateOptions(&opts); err != nil {
		return nil, err
	}
	if len(launches) == 0 {
		return nil, fmt.Errorf("gpu: no launches")
	}
	_, maxWarps, maxThreads := cfg.EffectiveSchedulingLimits()
	for _, l := range launches {
		if err := l.Validate(); err != nil {
			return nil, err
		}
		l.Kernel.EnsureDecoded()
		fp := cta.ComputeFootprint(l, &cfg)
		if fp.Regs > cfg.RegFileSize || fp.SMem > cfg.SharedMemPerSM {
			return nil, fmt.Errorf("gpu: kernel %q: one CTA exceeds SM capacity", l.Kernel.Name)
		}
		if fp.Warps > maxWarps || fp.Threads > maxThreads {
			return nil, fmt.Errorf("gpu: kernel %q: one CTA exceeds scheduling limits", l.Kernel.Name)
		}
	}

	m := &machine{launches: launches, cfg: cfg, opts: opts}
	if opts.DisableEventWheel {
		m.ev = event.NewHeapQueue()
	} else {
		m.ev = queuePool.Get().(*event.Queue)
		m.pooled = true
	}
	m.backing = mem.NewBacking()
	if opts.InitMemory != nil {
		opts.InitMemory(m.backing)
	}
	m.msys = mem.NewSystem(&m.cfg, m.ev)
	m.grid = cta.NewMultiGrid(launches, &m.cfg)

	var ctl sm.Controller
	switch m.cfg.Policy {
	case config.PolicyVT, config.PolicyFullSwap:
		m.vt = core.NewController(m.grid, m.cfg.NumSMs, m.cfg.Policy == config.PolicyFullSwap)
		m.vt.Trace = opts.Trace
		ctl = m.vt
	default:
		ctl = &baselineController{src: m.grid}
	}

	m.sms = make([]*sm.SM, m.cfg.NumSMs)
	for i := range m.sms {
		m.sms[i] = sm.New(i, &m.cfg, m.ev, m.msys, m.backing, len(launches), ctl)
		m.sms[i].DisableFastPath = opts.DisableIssueFastPath
	}

	m.name = launches[0].Kernel.Name
	for _, l := range launches[1:] {
		m.name += "+" + l.Kernel.Name
	}

	if col := opts.Telemetry; col != nil {
		col.Begin(m.cfg.NumSMs, m.name, m.cfg.Policy.String())
		// Shard the L1 counters so per-SM hit rates exist even under the
		// sequential engine; counters are additive and CollectStats folds
		// them back, so run totals are unchanged.
		m.msys.ShardStats()
		for _, s := range m.sms {
			s.Probe = col
		}
		if m.vt != nil {
			user := m.vt.Trace
			m.vt.Trace = func(e core.TraceEvent) {
				col.VTTrace(e)
				if user != nil {
					user(e)
				}
			}
		}
	}

	m.maxCycles = m.cfg.MaxCycles
	if m.maxCycles <= 0 {
		m.maxCycles = DefaultMaxCycles
	}
	if opts.SampleInterval > 0 {
		m.nextSample = opts.SampleInterval
	}

	switch {
	case opts.OnCheckpoint == nil:
		m.ckDone = true
	case opts.CheckpointAt > 0:
		m.nextCk = opts.CheckpointAt
	case opts.CheckpointEvery > 0:
		m.nextCk = opts.CheckpointEvery
	default:
		m.ckDone = true
	}

	m.eng = newEngine(m.sms, m.ev, m.msys, m.backing,
		resolveWorkers(opts.Parallelism, m.cfg.NumSMs), !opts.DisableIdleSkip)
	return m, nil
}

// release returns pooled resources; safe to call more than once.
func (m *machine) release() {
	if m.eng != nil {
		m.eng.shutdown()
		m.eng = nil
	}
	if m.pooled {
		m.ev.Reset()
		queuePool.Put(m.ev)
		m.pooled = false
	}
}

// sample records one occupancy-timeline point.
func (m *machine) sample(cycle int64) {
	aw, rw := 0, 0
	var issuedTot int64
	for _, s := range m.sms {
		aw += s.WarpsUsed
		issuedTot += s.Stats.Issued
		for _, c := range s.Resident {
			rw += len(c.Warps)
		}
	}
	ipc := 0.0
	if d := cycle - m.lastSampleCycle; d > 0 {
		ipc = float64(issuedTot-m.lastIssuedTot) / float64(d)
	}
	m.lastIssuedTot, m.lastSampleCycle = issuedTot, cycle
	m.timeline = append(m.timeline, Sample{
		Cycle:         cycle,
		ActiveWarps:   float64(aw) / float64(m.cfg.NumSMs),
		ResidentWarps: float64(rw) / float64(m.cfg.NumSMs),
		IPC:           ipc,
	})
}

// diagnose snapshots the whole machine for an abort error. Pure read: it
// runs only on the abort paths, never in a completing simulation.
func (m *machine) diagnose(reason, violation string, cycle int64) *AbortDiagnostic {
	d := &AbortDiagnostic{
		Kernel:        m.launches[0].Kernel.Name,
		Reason:        reason,
		Violation:     violation,
		Cycle:         cycle,
		EventsPending: m.ev.Pending(),
		GridRemaining: m.grid.Remaining(),
	}
	for _, s := range m.sms {
		d.SMs = append(d.SMs, s.Diagnose())
	}
	if m.vt != nil {
		d.VT = m.vt.Diagnose()
	}
	return d
}

// maybeCheckpoint runs the checkpoint cadence at the top of a cycle. The
// machine is quiescent here: the event queue sits exactly at cycle, every
// lane is committed, and no SM is mid-step.
func (m *machine) maybeCheckpoint(cycle int64) error {
	if m.opts.CheckpointGuard != nil {
		var vs core.Stats
		if m.vt != nil {
			vs = m.vt.Stats
		}
		if !m.opts.CheckpointGuard(cycle, vs) {
			m.ckDone = true // latched: later state depends on swept parameters
			return nil
		}
	}
	ck, err := m.capture()
	if err != nil {
		return fmt.Errorf("gpu: checkpoint at cycle %d: %w", cycle, err)
	}
	m.opts.OnCheckpoint(ck)
	if m.opts.CheckpointEvery > 0 {
		// Widen the gap as the run grows so the total capture cost stays a
		// bounded fraction of simulation time.
		gap := m.opts.CheckpointEvery
		if adaptive := cycle >> 2; adaptive > gap {
			gap = adaptive
		}
		m.nextCk = cycle + gap
	} else {
		m.ckDone = true
	}
	return nil
}

// run drives the simulation from m.cycle (zero, or the checkpoint cycle
// after restore) to completion and assembles the result.
func (m *machine) run() (*Result, error) {
	opts := &m.opts
	checkEvery := opts.InvariantInterval
	if checkEvery <= 0 {
		checkEvery = DefaultInvariantInterval
	}
	nextCheck := m.cycle + checkEvery
	// The deadline poll amortizes the context read across a window of
	// cycles; idle-skip can jump far past nextPoll, which only makes the
	// poll sooner. The window is small relative to even heavily diluted
	// runs (~1k simulated cycles) so deadlines are observed promptly.
	const deadlinePollCycles = 512
	nextPoll := m.cycle
	m.initSampling()

	cycle := m.cycle
	for {
		m.cycle = cycle
		if opts.FaultHook != nil {
			opts.FaultHook(cycle, m.sms)
		}
		if opts.Ctx != nil && cycle >= nextPoll {
			if err := opts.Ctx.Err(); err != nil {
				return nil, newAbortError(m.diagnose(ReasonDeadline, "", cycle),
					fmt.Sprintf("gpu: kernel %q aborted at cycle %d: %v",
						m.launches[0].Kernel.Name, cycle, err), err)
			}
			nextPoll = cycle + deadlinePollCycles
		}
		if opts.CheckInvariants && cycle >= nextCheck {
			if err := checkInvariants(m.sms); err != nil {
				return nil, newAbortError(m.diagnose(ReasonInvariant, err.Error(), cycle),
					fmt.Sprintf("gpu: kernel %q invariant violation at cycle %d: %v",
						m.launches[0].Kernel.Name, cycle, err), err)
			}
			nextCheck = cycle + checkEvery
		}
		if m.grid.Remaining() == 0 {
			done := true
			for _, s := range m.sms {
				if !s.Idle() {
					done = false
					break
				}
			}
			if done {
				break
			}
		}
		if !m.ckDone && cycle >= m.nextCk {
			if err := m.maybeCheckpoint(cycle); err != nil {
				return nil, err
			}
		}
		if m.samp != nil {
			next, spanned, err := m.sampleHook(cycle)
			if err != nil {
				return nil, err
			}
			if spanned {
				// The span advanced the clock and replayed the loop-bottom
				// bookkeeping; re-enter the loop at the new cycle.
				cycle = next
				continue
			}
		}

		issued := m.eng.cycle()

		next := cycle + 1
		skipFrom := int64(-1)
		if !issued && !opts.DisableIdleSkip && m.eng.quiescent() {
			// Fast-forward across stall periods: nothing inside any SM
			// can change state until the next scheduled event — in the
			// shared queue or any SM's local writeback wheel.
			if evNext, ok := m.eng.nextEvent(); ok && evNext > next {
				next = evNext
				skipFrom = cycle + 1
			} else if !ok {
				// No events pending and nothing schedulable:
				// the simulation cannot make progress.
				return nil, newAbortError(m.diagnose(ReasonDeadlock, "", cycle),
					fmt.Sprintf("gpu: kernel %q deadlocked at cycle %d",
						m.launches[0].Kernel.Name, cycle), nil)
			}
		}
		if col := opts.Telemetry; col != nil {
			// Window boundaries inside a skipped span sample exact
			// virtual statistics (sm.StatsAt charges the pending span
			// into a copy) before the real charge lands below.
			for col.NextBoundary() <= next {
				col.Sample(m.sms, m.msys, m.vt, skipFrom)
			}
		}
		if skipFrom >= 0 {
			for _, s := range m.sms {
				if s.Asleep() {
					continue // charged at wake, from sleptFrom
				}
				s.AccountSkipped(next - cycle - 1)
			}
		}
		if opts.SampleInterval > 0 {
			for m.nextSample <= next {
				m.sample(m.nextSample)
				m.nextSample += opts.SampleInterval
			}
		}
		cycle = next
		m.ev.AdvanceTo(cycle)
		if cycle > m.maxCycles {
			return nil, newAbortError(m.diagnose(ReasonMaxCycles, "", cycle),
				fmt.Sprintf("gpu: kernel %q exceeded %d cycles",
					m.launches[0].Kernel.Name, m.maxCycles), nil)
		}
	}
	m.cycle = cycle

	// SMs still in per-SM fast-forward owe statistics for their final
	// skipped span.
	for _, s := range m.sms {
		s.WakeUp()
	}
	if col := opts.Telemetry; col != nil {
		// After the wake loop, so every fast-forward span has been
		// charged and its sleep span recorded.
		col.Finish(cycle, m.sms, m.msys, m.vt)
	}
	if opts.CheckInvariants {
		// Final end-of-run check: every skipped span has been charged, so
		// the conservation invariants must hold exactly here.
		if err := checkInvariants(m.sms); err != nil {
			return nil, newAbortError(m.diagnose(ReasonInvariant, err.Error(), cycle),
				fmt.Sprintf("gpu: kernel %q invariant violation at cycle %d: %v",
					m.launches[0].Kernel.Name, cycle, err), err)
		}
	}

	res := &Result{
		Kernel:     m.name,
		Policy:     m.cfg.Policy,
		Cycles:     cycle,
		Mem:        m.msys.CollectStats(),
		NumSMs:     m.cfg.NumSMs,
		Schedulers: m.cfg.NumSchedulers,
		WarpSize:   m.cfg.WarpSize,
		Occupancy:  cta.ComputeOccupancy(m.launches[0], &m.cfg),
	}
	for _, l := range m.launches {
		res.PerKernel = append(res.PerKernel, PerKernel{
			Name: l.Kernel.Name,
			CTAs: l.GridDim.Size(),
		})
	}
	for _, s := range m.sms {
		agg := &res.SM
		st := s.Stats
		for k := range res.PerKernel {
			if k < len(st.IssuedPerKernel) {
				res.PerKernel[k].Issued += st.IssuedPerKernel[k]
			}
		}
		agg.Issued += st.Issued
		agg.ThreadInstrs += st.ThreadInstrs
		agg.SlotIssued += st.SlotIssued
		agg.SlotStallMem += st.SlotStallMem
		agg.SlotStallALU += st.SlotStallALU
		agg.SlotStallBar += st.SlotStallBar
		agg.SlotStallStr += st.SlotStallStr
		agg.SlotIdle += st.SlotIdle
		agg.ActiveWarpAccum += st.ActiveWarpAccum
		agg.ResidentWarpAccum += st.ResidentWarpAccum
		agg.ActiveCTAAccum += st.ActiveCTAAccum
		agg.ResidentCTAAccum += st.ResidentCTAAccum
		agg.SFUIssued += st.SFUIssued
		agg.SMemAccesses += st.SMemAccesses
		agg.RFBankConflictCyc += st.RFBankConflictCyc
		agg.CTAsCompleted += st.CTAsCompleted
		agg.BarrierReleases += st.BarrierReleases
		agg.SMemConflictCyc += st.SMemConflictCyc
		agg.GlobalTxns += st.GlobalTxns
		agg.LSURetries += st.LSURetries
	}
	// Per-SM cycle accumulators are averaged over SM count so that
	// "per SM" metrics read naturally.
	res.SM.Cycles = cycle
	res.SM.ActiveWarpAccum /= int64(m.cfg.NumSMs)
	res.SM.ResidentWarpAccum /= int64(m.cfg.NumSMs)
	res.SM.ActiveCTAAccum /= int64(m.cfg.NumSMs)
	res.SM.ResidentCTAAccum /= int64(m.cfg.NumSMs)
	res.Timeline = m.timeline
	if m.samp != nil {
		res.Sampling = m.samp.finish(cycle)
	}
	if m.vt != nil {
		res.VT = m.vt.Stats
	}
	if opts.KeepBacking != nil {
		opts.KeepBacking(m.backing)
	}
	return res, nil
}
