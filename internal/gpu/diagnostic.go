package gpu

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/sm"
)

// Abort reasons carried by AbortDiagnostic.Reason.
const (
	// ReasonDeadlock: nothing can make progress — every SM quiescent and
	// no event pending.
	ReasonDeadlock = "deadlock"
	// ReasonMaxCycles: the run exceeded the configured cycle budget.
	ReasonMaxCycles = "max-cycles"
	// ReasonDeadline: Options.Ctx expired or was canceled (wall clock).
	ReasonDeadline = "deadline"
	// ReasonInvariant: Options.CheckInvariants found corrupted state.
	ReasonInvariant = "invariant"
)

// AbortDiagnostic is the structured forensic record attached to every
// simulation abort: instead of a bare "deadlocked at cycle N", the caller
// gets per-SM warp issue-class counters, ready bitsets, in-flight memory
// operations, barrier occupancy, and the VT controller's swap state — the
// full picture of where every warp was stuck. It serializes to JSON as
// part of harness repro bundles.
type AbortDiagnostic struct {
	Kernel string `json:"kernel"`
	Reason string `json:"reason"`
	Cycle  int64  `json:"cycle"`
	// Violation holds the invariant checker's cycle-stamped report when
	// Reason is ReasonInvariant.
	Violation string `json:"violation,omitempty"`
	// EventsPending counts callbacks still queued in the shared event
	// queue at abort (a deadlock has zero).
	EventsPending int `json:"events_pending"`
	// GridRemaining counts CTAs never dispatched to any SM.
	GridRemaining int `json:"grid_remaining"`

	SMs []sm.Diag  `json:"sms"`
	VT  *core.Diag `json:"vt,omitempty"`
}

// Summary condenses the diagnostic to one line for logs.
func (d *AbortDiagnostic) Summary() string {
	var ready, memB, barB, lsu, loads int
	for i := range d.SMs {
		s := &d.SMs[i]
		ready += s.Ready
		memB += s.BlockedMem
		barB += s.BlockedBarrier
		lsu += s.LSUOps
		loads += s.OutstandingLoads
	}
	return fmt.Sprintf("%s %s at cycle %d: %d ready / %d mem-blocked / %d barrier-parked warps, %d LSU ops, %d loads in flight, %d events pending, %d CTAs undispatched",
		d.Kernel, d.Reason, d.Cycle, ready, memB, barB, lsu, loads, d.EventsPending, d.GridRemaining)
}

// AbortError is the error every abort path returns: the legacy message
// text (so existing callers and tests keep matching on it) plus the
// structured diagnostic, extractable with DiagnosticOf / errors.As.
type AbortError struct {
	Diag *AbortDiagnostic
	// Err is the underlying cause when one exists (e.g. the context
	// error for deadline aborts, the invariant violation report).
	Err error

	msg string
}

func newAbortError(diag *AbortDiagnostic, msg string, err error) *AbortError {
	return &AbortError{Diag: diag, Err: err, msg: msg}
}

func (e *AbortError) Error() string { return e.msg }

func (e *AbortError) Unwrap() error { return e.Err }

// DiagnosticOf extracts the AbortDiagnostic attached to err (at any wrap
// depth), or nil when err carries none.
func DiagnosticOf(err error) *AbortDiagnostic {
	var ae *AbortError
	if errors.As(err, &ae) {
		return ae.Diag
	}
	return nil
}

// DefaultInvariantInterval is how often Options.CheckInvariants runs the
// per-SM checker when Options.InvariantInterval is zero.
const DefaultInvariantInterval = 4096

// checkInvariants runs every SM's invariant checker, joining violations.
func checkInvariants(sms []*sm.SM) error {
	var errs []error
	for _, s := range sms {
		if err := s.CheckInvariants(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
