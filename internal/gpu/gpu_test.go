package gpu

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/mem"
)

// vecAddKernel builds out[i] = a[i] + b[i] over grid*block threads.
func vecAddKernel(t testing.TB) *isa.Kernel {
	b := isa.NewBuilder("vecadd_test")
	b.S2R(0, isa.SrCTAIdX)
	b.S2R(1, isa.SrNTidX)
	b.IMul(2, 0, 1)
	b.S2R(3, isa.SrTidX)
	b.IAdd(2, 2, 3)   // gid
	b.ShlImm(2, 2, 2) // byte offset
	b.LdParam(4, 0)
	b.IAdd(4, 4, 2)
	b.LdG(5, 4, 0) // a[gid]
	b.LdParam(6, 1)
	b.IAdd(6, 6, 2)
	b.LdG(7, 6, 0) // b[gid]
	b.IAdd(8, 5, 7)
	b.LdParam(9, 2)
	b.IAdd(9, 9, 2)
	b.StG(9, 0, 8)
	b.Exit()
	k, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

const (
	aBase   = 0x0010_0000
	bBase   = 0x0020_0000
	outBase = 0x0030_0000
)

func vecAddLaunch(t testing.TB, ctas, block int) *isa.Launch {
	return &isa.Launch{
		Kernel:   vecAddKernel(t),
		GridDim:  isa.Dim1(ctas),
		BlockDim: isa.Dim1(block),
		Params:   []uint32{aBase, bBase, outBase},
	}
}

func initVec(n int) func(*mem.Backing) {
	return func(bk *mem.Backing) {
		for i := 0; i < n; i++ {
			bk.StoreWord(aBase+uint32(4*i), uint32(i))
			bk.StoreWord(bBase+uint32(4*i), uint32(2*i))
		}
	}
}

func TestRunVecAddFunctional(t *testing.T) {
	const ctas, block = 8, 64
	n := ctas * block
	cfg := config.Small()
	var out *mem.Backing
	res, err := Run(vecAddLaunch(t, ctas, block), cfg, Options{
		InitMemory:  initVec(n),
		KeepBacking: func(bk *mem.Backing) { out = bk },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Fatal("no cycles simulated")
	}
	for i := 0; i < n; i++ {
		if got := out.LoadWord(outBase + uint32(4*i)); got != uint32(3*i) {
			t.Fatalf("out[%d] = %d, want %d", i, got, 3*i)
		}
	}
	if res.SM.CTAsCompleted != ctas {
		t.Fatalf("CTAs completed = %d, want %d", res.SM.CTAsCompleted, ctas)
	}
	if res.SM.Issued == 0 || res.IPC() <= 0 {
		t.Fatal("no instructions issued")
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := config.Small()
	l1 := vecAddLaunch(t, 16, 64)
	l2 := vecAddLaunch(t, 16, 64)
	r1, err := Run(l1, cfg, Options{InitMemory: initVec(1024)})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(l2, cfg, Options{InitMemory: initVec(1024)})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.SM.Issued != r2.SM.Issued {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d cycles/issued",
			r1.Cycles, r1.SM.Issued, r2.Cycles, r2.SM.Issued)
	}
}

func TestRunAllPolicies(t *testing.T) {
	for _, p := range []config.Policy{
		config.PolicyBaseline, config.PolicyVT, config.PolicyIdeal, config.PolicyFullSwap,
	} {
		t.Run(p.String(), func(t *testing.T) {
			cfg := config.Small().WithPolicy(p)
			var out *mem.Backing
			const ctas, block = 12, 64
			n := ctas * block
			res, err := Run(vecAddLaunch(t, ctas, block), cfg, Options{
				InitMemory:  initVec(n),
				KeepBacking: func(bk *mem.Backing) { out = bk },
			})
			if err != nil {
				t.Fatal(err)
			}
			// Functional results must be policy-independent.
			for i := 0; i < n; i++ {
				if got := out.LoadWord(outBase + uint32(4*i)); got != uint32(3*i) {
					t.Fatalf("out[%d] = %d, want %d", i, got, 3*i)
				}
			}
			if res.SM.CTAsCompleted != ctas {
				t.Fatalf("CTAs completed = %d, want %d", res.SM.CTAsCompleted, ctas)
			}
		})
	}
}

func TestRunRejectsOversizedCTA(t *testing.T) {
	cfg := config.Small()
	b := isa.NewBuilder("fat").ReserveRegs(200).SharedMem(0)
	b.Nop().Exit()
	k := b.MustBuild()
	// 200 regs x 32 lanes x 32 warps = way beyond the register file.
	l := &isa.Launch{Kernel: k, GridDim: isa.Dim1(1), BlockDim: isa.Dim1(1024)}
	if _, err := Run(l, cfg, Options{}); err == nil {
		t.Fatal("expected capacity rejection")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	cfg := config.Small()
	cfg.NumSMs = 0
	if _, err := Run(vecAddLaunch(t, 1, 32), cfg, Options{}); err == nil {
		t.Fatal("expected config rejection")
	}
}

// TestIdleSkipEquivalence verifies that the engine's fast-forward
// optimization is timing-transparent: simulating every cycle produces
// exactly the same cycle count and statistics as skipping quiescent
// periods, for both baseline and VT policies.
func TestIdleSkipEquivalence(t *testing.T) {
	for _, p := range []config.Policy{config.PolicyBaseline, config.PolicyVT} {
		cfg := config.Small().WithPolicy(p)
		fast, err := Run(vecAddLaunch(t, 10, 64), cfg, Options{InitMemory: initVec(640)})
		if err != nil {
			t.Fatal(err)
		}
		slow, err := Run(vecAddLaunch(t, 10, 64), cfg, Options{
			InitMemory:      initVec(640),
			DisableIdleSkip: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if fast.Cycles != slow.Cycles {
			t.Fatalf("%s: skip %d cycles vs full %d cycles", p, fast.Cycles, slow.Cycles)
		}
		if fast.SM.Issued != slow.SM.Issued || fast.SM.SlotStallMem != slow.SM.SlotStallMem {
			t.Fatalf("%s: statistics diverge between skip modes", p)
		}
		if fast.VT.SwapsOut != slow.VT.SwapsOut {
			t.Fatalf("%s: swaps diverge: %d vs %d", p, fast.VT.SwapsOut, slow.VT.SwapsOut)
		}
	}
}

func TestTimelineSampling(t *testing.T) {
	cfg := config.Small()
	res, err := Run(vecAddLaunch(t, 20, 64), cfg, Options{
		InitMemory:     initVec(1280),
		SampleInterval: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) == 0 {
		t.Fatal("no timeline samples")
	}
	last := int64(0)
	for _, s := range res.Timeline {
		if s.Cycle <= last {
			t.Fatalf("timeline not strictly increasing: %d after %d", s.Cycle, last)
		}
		if s.Cycle%100 != 0 {
			t.Fatalf("sample at off-interval cycle %d", s.Cycle)
		}
		if s.ActiveWarps < 0 || s.ResidentWarps < s.ActiveWarps {
			t.Fatalf("implausible sample %+v", s)
		}
		last = s.Cycle
	}
	// Samples must cover the whole run.
	if got := res.Timeline[len(res.Timeline)-1].Cycle; got < res.Cycles-100 {
		t.Fatalf("last sample at %d, run ended at %d", got, res.Cycles)
	}
	// Without sampling, no timeline is collected.
	res2, err := Run(vecAddLaunch(t, 20, 64), cfg, Options{InitMemory: initVec(1280)})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Timeline != nil {
		t.Fatal("timeline collected without SampleInterval")
	}
}

// TestSlotAccountingInvariant: every scheduler contributes exactly one
// sample (issue or a stall classification) per cycle, including the cycles
// the engine fast-forwards across.
func TestSlotAccountingInvariant(t *testing.T) {
	for _, p := range []config.Policy{config.PolicyBaseline, config.PolicyVT, config.PolicyIdeal} {
		cfg := config.Small().WithPolicy(p)
		res, err := Run(vecAddLaunch(t, 16, 64), cfg, Options{InitMemory: initVec(1024)})
		if err != nil {
			t.Fatal(err)
		}
		slots := res.SM.SlotIssued + res.SM.SlotStallMem + res.SM.SlotStallALU +
			res.SM.SlotStallBar + res.SM.SlotStallStr + res.SM.SlotIdle
		want := res.Cycles * int64(cfg.NumSMs) * int64(cfg.NumSchedulers)
		if slots != want {
			t.Fatalf("%s: slot samples = %d, want %d (cycles=%d)", p, slots, want, res.Cycles)
		}
	}
}

// TestThreadInstrsConsistent: thread instructions = sum over issues of the
// active lane counts; for a divergence-free kernel it is exactly
// warp instructions x warp width except partial warps.
func TestThreadInstrsConsistent(t *testing.T) {
	cfg := config.Small()
	res, err := Run(vecAddLaunch(t, 4, 64), cfg, Options{InitMemory: initVec(256)})
	if err != nil {
		t.Fatal(err)
	}
	if res.SM.ThreadInstrs != res.SM.Issued*32 {
		t.Fatalf("thread instrs = %d, want %d (no divergence, full warps)",
			res.SM.ThreadInstrs, res.SM.Issued*32)
	}
}

// TestPolicyCycleOrdering: on a scheduling-limited memory-bound workload,
// ideal <= vt <= fullswap in cycles (with tolerance for vt==ideal ties).
func TestPolicyCycleOrdering(t *testing.T) {
	mkKernel := func() *isa.Kernel {
		b := isa.NewBuilder("order")
		b.S2R(0, isa.SrCTAIdX)
		b.ShlImm(1, 0, 7)
		b.S2R(2, isa.SrTidX)
		b.ShlImm(3, 2, 2)
		b.MovImm(4, 0)
		b.MovImm(5, 0)
		b.Label("l")
		b.LdParam(6, 0)
		b.IAdd(7, 6, 1)
		b.IAdd(7, 7, 3)
		b.LdG(8, 7, 0)
		b.IAdd(4, 4, 8)
		b.IAddImm(1, 1, 128*512+128)
		b.AndImm(1, 1, 0x3FFFF)
		b.IAddImm(5, 5, 1)
		b.SetpImm(9, isa.CmpILT, 5, 10)
		b.Bra(9, "l", "d")
		b.Label("d")
		b.Exit()
		return b.MustBuild()
	}
	run := func(p config.Policy) int64 {
		l := &isa.Launch{Kernel: mkKernel(), GridDim: isa.Dim1(64),
			BlockDim: isa.Dim1(64), Params: []uint32{0x100000}}
		res, err := Run(l, config.Small().WithPolicy(p), Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	ideal, vt, fullswap := run(config.PolicyIdeal), run(config.PolicyVT), run(config.PolicyFullSwap)
	if !(float64(ideal) <= float64(vt)*1.02) {
		t.Fatalf("ideal (%d) must not be slower than VT (%d)", ideal, vt)
	}
	if !(vt <= fullswap) {
		t.Fatalf("VT (%d) must not be slower than fullswap (%d)", vt, fullswap)
	}
}
