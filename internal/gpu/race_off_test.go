//go:build !race

package gpu

// raceEnabled reports whether the race detector is compiled in; timing
// assertions are skipped under -race, where instrumentation overhead
// does not scale uniformly across simulation paths.
const raceEnabled = false
