package gpu

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/telemetry"
)

// TestTelemetryPureObserver proves an attached collector never perturbs
// the simulation: for every policy × scheduler, the complete Result is
// bit-identical with and without telemetry — including under the
// parallel engine, with the issue fast path disabled (the collector's
// StatsAt/Probe seams ride both code paths), and under interval/sampled
// simulation (the afterSpan window pump rides the span path).
func TestTelemetryPureObserver(t *testing.T) {
	policies := []config.Policy{
		config.PolicyBaseline, config.PolicyVT,
		config.PolicyIdeal, config.PolicyFullSwap,
	}
	schedulers := []config.SchedulerKind{
		config.SchedGTO, config.SchedLRR, config.SchedTwoLevel,
	}
	samp := SamplingOptions{DetailedCycles: 200, FastForwardCycles: 1500, WarmupCycles: 50}
	variants := []struct {
		name string
		opts Options
	}{
		{"default", Options{}},
		{"parallel", Options{Parallelism: 4}},
		{"slowpath", Options{DisableIssueFastPath: true}},
		{"sampled", Options{Sampling: samp}},
		{"sampled-parallel", Options{Parallelism: 4, Sampling: samp}},
	}
	var sampledSpans int64
	for _, p := range policies {
		for _, sched := range schedulers {
			for _, v := range variants {
				t.Run(p.String()+"/"+sched.String()+"/"+v.name, func(t *testing.T) {
					cfg := config.Small().WithPolicy(p)
					cfg.Scheduler = sched
					const ctas, block = 16, 64
					run := func(col *telemetry.Collector) *Result {
						opts := v.opts
						opts.InitMemory = initVec(ctas * block)
						opts.Telemetry = col
						res, err := Run(mixedLaunch(t, ctas, block), cfg, opts)
						if err != nil {
							t.Fatal(err)
						}
						return res
					}
					plain := run(nil)
					col := telemetry.NewCollector(telemetry.Config{Window: 64})
					observed := run(col)
					if !reflect.DeepEqual(plain, observed) {
						t.Fatalf("telemetry perturbed the run:\noff: %+v\non:  %+v", plain, observed)
					}
					if w, _ := col.Totals(); w == 0 {
						t.Fatal("collector recorded no windows")
					}
					if v.opts.Sampling.Enabled() {
						if observed.Sampling == nil {
							t.Fatal("sampled run reported no sampling stats")
						}
						sampledSpans += observed.Sampling.Spans
					}
				})
			}
		}
	}
	// The sampled variants must not all degenerate to fully detailed runs
	// (every span abandoned), or the purity check above proved nothing
	// about the span path.
	if sampledSpans == 0 {
		t.Error("no fast-forward spans ran across any sampled combination; purity check is vacuous")
	}
}

// TestTelemetryPureObserverSwaps repeats the purity check on a
// swap-heavy VT workload so the VTTrace tee, swap spans, and
// context-buffer gauges are all exercised non-vacuously.
func TestTelemetryPureObserverSwaps(t *testing.T) {
	for _, p := range []config.Policy{config.PolicyVT, config.PolicyFullSwap} {
		t.Run(p.String(), func(t *testing.T) {
			cfg := config.Small().WithPolicy(p)
			l := &isa.Launch{
				Kernel:   memLoopKernel(t, 8),
				GridDim:  isa.Dim1(24),
				BlockDim: isa.Dim1(64),
				Params:   []uint32{aBase},
			}
			run := func(col *telemetry.Collector) *Result {
				res, err := Run(l, cfg, Options{Telemetry: col})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			plain := run(nil)
			if plain.VT.SwapsOut == 0 {
				t.Fatalf("%s: workload produced no swaps; test is vacuous", p)
			}
			col := telemetry.NewCollector(telemetry.Config{Window: 128, PerSM: true})
			observed := run(col)
			if !reflect.DeepEqual(plain, observed) {
				t.Fatalf("telemetry perturbed swap-heavy run:\noff: %+v\non:  %+v", plain, observed)
			}

			d := col.Dump()
			var out, in int64
			for _, w := range d.GPU {
				out += w.SwapsOut
				in += w.SwapsIn
			}
			if out != plain.VT.SwapsOut {
				t.Errorf("window SwapsOut sum = %d, want %d", out, plain.VT.SwapsOut)
			}
			if in != plain.VT.SwapsIn {
				t.Errorf("window SwapsIn sum = %d, want %d", in, plain.VT.SwapsIn)
			}
			var swapSpans int
			for _, sp := range d.Spans {
				if sp.Kind == telemetry.SpanSwapOut || sp.Kind == telemetry.SpanSwapIn {
					swapSpans++
				}
			}
			if swapSpans == 0 {
				t.Error("no swap spans recorded")
			}
			if len(d.SwapLatency) == 0 {
				t.Error("empty swap-latency histogram")
			}
		})
	}
}

// TestTelemetryWindowExactness pins the ring semantics: windows tile the
// run exactly (contiguous, covering [0, Cycles)) and their deltas sum to
// the run totals — including across whole-GPU idle skips, per-SM
// fast-forward, and sampled fast-forward spans, whose boundary samples
// are charged virtually (sm.StatsAt / AccountSampled).
func TestTelemetryWindowExactness(t *testing.T) {
	cases := []struct {
		par  int
		samp SamplingOptions
	}{
		{par: 1},
		{par: 4},
		{par: 1, samp: SamplingOptions{DetailedCycles: 200, FastForwardCycles: 1500, WarmupCycles: 50}},
	}
	for _, tc := range cases {
		par := tc.par
		cfg := config.Small().WithPolicy(config.PolicyVT)
		const ctas, block = 16, 64
		col := telemetry.NewCollector(telemetry.Config{Window: 64, PerSM: true})
		res, err := Run(mixedLaunch(t, ctas, block), cfg, Options{
			InitMemory:  initVec(ctas * block),
			Telemetry:   col,
			Parallelism: par,
			Sampling:    tc.samp,
		})
		if err != nil {
			t.Fatal(err)
		}
		if tc.samp.Enabled() && res.Sampling == nil {
			t.Fatal("sampled run reported no sampling stats")
		}
		d := col.Dump()
		if d.Cycles != res.Cycles {
			t.Fatalf("dump cycles = %d, want %d", d.Cycles, res.Cycles)
		}

		check := func(name string, ws []telemetry.Window) {
			if len(ws) == 0 {
				t.Fatalf("%s: empty ring", name)
			}
			if start := ws[0].Cycle - ws[0].Cycles; start != 0 {
				t.Errorf("%s: first window starts at %d, want 0", name, start)
			}
			for i := 1; i < len(ws); i++ {
				if ws[i].Cycle-ws[i].Cycles != ws[i-1].Cycle {
					t.Errorf("%s: window %d not contiguous: [%d) after [%d)",
						name, i, ws[i].Cycle-ws[i].Cycles, ws[i-1].Cycle)
				}
			}
			if end := ws[len(ws)-1].Cycle; end != res.Cycles {
				t.Errorf("%s: last window ends at %d, want %d", name, end, res.Cycles)
			}
		}
		check("gpu", d.GPU)
		for i, ring := range d.PerSM {
			check("sm", ring)
			var issued, slots int64
			for _, w := range ring {
				issued += w.Issued
				slots += w.SlotIssued + w.SlotStallMem + w.SlotStallALU +
					w.SlotStallBar + w.SlotStallStr + w.SlotIdle
			}
			// Issue-slot conservation per SM: every window's slots sum to
			// schedulers × window length, so the ring total must equal
			// schedulers × run length.
			if want := int64(res.Schedulers) * res.Cycles; slots != want {
				t.Errorf("sm %d: slot sum = %d, want %d", i, slots, want)
			}
			_ = issued
		}
		var issued int64
		for _, w := range d.GPU {
			issued += w.Issued
		}
		if issued != res.SM.Issued {
			t.Errorf("gpu window Issued sum = %d, want %d (par=%d)", issued, res.SM.Issued, par)
		}
		var l2 int64
		for _, w := range d.Mem {
			l2 += w.L2Accesses
		}
		if l2 != res.Mem.L2Accesses {
			t.Errorf("mem window L2Accesses sum = %d, want %d", l2, res.Mem.L2Accesses)
		}
	}
}

// TestTelemetryCompaction forces ring compaction with a tiny MaxWindows
// and checks the invariants survive: bounded length, contiguous
// coverage, totals preserved.
func TestTelemetryCompaction(t *testing.T) {
	cfg := config.Small().WithPolicy(config.PolicyBaseline)
	const ctas, block = 16, 64
	col := telemetry.NewCollector(telemetry.Config{Window: 8, MaxWindows: 8})
	res, err := Run(mixedLaunch(t, ctas, block), cfg, Options{
		InitMemory: initVec(ctas * block),
		Telemetry:  col,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := col.Dump()
	if len(d.GPU) > 8 {
		t.Fatalf("ring grew past MaxWindows: %d entries", len(d.GPU))
	}
	if d.Window <= 8 {
		t.Fatalf("window never doubled: %d (run is %d cycles)", d.Window, res.Cycles)
	}
	var issued int64
	for i, w := range d.GPU {
		issued += w.Issued
		if i > 0 && w.Cycle-w.Cycles != d.GPU[i-1].Cycle {
			t.Fatalf("compacted ring not contiguous at %d", i)
		}
	}
	if issued != res.SM.Issued {
		t.Fatalf("compaction lost issues: %d != %d", issued, res.SM.Issued)
	}
}

// TestTelemetryPerfetto decodes the Perfetto export (trace-event JSON)
// of a swap-heavy VT run and requires the span kinds the ISSUE promises:
// CTA lifecycle, swap, and SM sleep/fast-forward spans, plus counter
// tracks — all with explicit pid/ts fields (no omitempty holes).
func TestTelemetryPerfetto(t *testing.T) {
	cfg := config.Small().WithPolicy(config.PolicyVT)
	l := &isa.Launch{
		Kernel:   memLoopKernel(t, 8),
		GridDim:  isa.Dim1(24),
		BlockDim: isa.Dim1(64),
		Params:   []uint32{aBase},
	}
	col := telemetry.NewCollector(telemetry.Config{})
	res, err := Run(l, cfg, Options{Telemetry: col})
	if err != nil {
		t.Fatal(err)
	}
	if res.VT.SwapsOut == 0 {
		t.Fatal("no swaps; perfetto test is vacuous")
	}
	var buf bytes.Buffer
	if err := col.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Ts   *int64          `json:"ts"`
			Pid  *int            `json:"pid"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("perfetto output is not valid JSON: %v", err)
	}
	kinds := map[string]int{}
	for _, e := range doc.TraceEvents {
		if e.Ts == nil || e.Pid == nil {
			t.Fatalf("event %q missing ts or pid", e.Name)
		}
		switch e.Ph {
		case "X":
			switch {
			case len(e.Name) >= 4 && e.Name[:4] == "swap":
				kinds["swap"]++
			case e.Name == "fast-forward":
				kinds["sleep"]++
			case len(e.Name) >= 3 && e.Name[:3] == "cta":
				kinds["cta"]++
			}
		case "C":
			kinds["counter"]++
		}
	}
	for _, k := range []string{"swap", "cta", "counter"} {
		if kinds[k] == 0 {
			t.Errorf("perfetto trace has no %s events (got %v)", k, kinds)
		}
	}
}
