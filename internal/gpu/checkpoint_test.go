package gpu

// Checkpoint/restore contract: resuming from a checkpoint captured at any
// quiescent cycle boundary must produce a Result bit-identical
// (reflect.DeepEqual) to the uninterrupted run — for every policy, every
// engine variant, and workloads that exercise swaps, barriers, and
// divergence. Capturing must also be a pure observer: a run that takes
// checkpoints returns exactly the same Result as one that does not.

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/kernels"
)

// buildLaunch builds a fresh small-grid launch plus its memory image.
func buildLaunch(t *testing.T, workload string) (*isa.Launch, Options) {
	t.Helper()
	w, err := kernels.Build(workload, 1)
	if err != nil {
		t.Fatal(err)
	}
	w.Launch.GridDim = isa.Dim1(24)
	return w.Launch, Options{InitMemory: w.Init}
}

// runPlain runs the workload without any checkpointing.
func runPlain(t *testing.T, workload string, cfg config.GPUConfig, opts Options) *Result {
	t.Helper()
	l, base := buildLaunch(t, workload)
	base.DisableIdleSkip = opts.DisableIdleSkip
	base.DisableIssueFastPath = opts.DisableIssueFastPath
	base.DisableEventWheel = opts.DisableEventWheel
	base.Parallelism = opts.Parallelism
	base.SampleInterval = opts.SampleInterval
	res, err := Run(l, cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// runCapturing runs the workload with a one-shot checkpoint at the given
// cycle, returning the run's result and the captured checkpoint (nil if
// the run finished first).
func runCapturing(t *testing.T, workload string, cfg config.GPUConfig, opts Options, at int64) (*Result, *Checkpoint) {
	t.Helper()
	l, base := buildLaunch(t, workload)
	base.DisableIdleSkip = opts.DisableIdleSkip
	base.DisableIssueFastPath = opts.DisableIssueFastPath
	base.DisableEventWheel = opts.DisableEventWheel
	base.Parallelism = opts.Parallelism
	base.SampleInterval = opts.SampleInterval
	var ck *Checkpoint
	base.CheckpointAt = at
	base.OnCheckpoint = func(c *Checkpoint) { ck = c }
	res, err := Run(l, cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	return res, ck
}

// resume rebuilds fresh launches and resumes the checkpoint under cfg.
func resume(t *testing.T, workload string, ck *Checkpoint, cfg config.GPUConfig, opts Options) *Result {
	t.Helper()
	l, _ := buildLaunch(t, workload)
	res, err := Resume(ck, []*isa.Launch{l}, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCheckpointForkEquivalence(t *testing.T) {
	policies := []config.Policy{
		config.PolicyBaseline, config.PolicyVT, config.PolicyFullSwap, config.PolicyIdeal,
	}
	variants := []struct {
		name string
		opts Options
	}{
		{"seq", Options{Parallelism: 1}},
		{"par4", Options{Parallelism: 4}},
		{"noidleskip", Options{Parallelism: 1, DisableIdleSkip: true}},
		{"slowpath", Options{Parallelism: 1, DisableIssueFastPath: true}},
		{"heapqueue", Options{Parallelism: 1, DisableEventWheel: true}},
	}
	for _, workload := range []string{"pathfinder", "bfs"} {
		for _, policy := range policies {
			for _, v := range variants {
				workload, policy, v := workload, policy, v
				t.Run(workload+"/"+policy.String()+"/"+v.name, func(t *testing.T) {
					cfg := config.Small().WithPolicy(policy)
					ref := runPlain(t, workload, cfg, v.opts)
					at := ref.Cycles / 2
					if at < 1 {
						t.Skipf("run too short to fork (%d cycles)", ref.Cycles)
					}
					donor, ck := runCapturing(t, workload, cfg, v.opts, at)
					if !reflect.DeepEqual(ref, donor) {
						t.Fatalf("capturing run diverged from plain run (checkpointing is not a pure observer)")
					}
					if ck == nil {
						t.Fatalf("no checkpoint captured at cycle %d of %d", at, ref.Cycles)
					}
					forked := resume(t, workload, ck, cfg, v.opts)
					if !reflect.DeepEqual(ref, forked) {
						t.Fatalf("fork at cycle %d diverged from uninterrupted run:\nref:    cycles=%d issued=%d mem=%+v vt=%+v\nforked: cycles=%d issued=%d mem=%+v vt=%+v",
							ck.Cycle,
							ref.Cycles, ref.SM.Issued, ref.Mem, ref.VT,
							forked.Cycles, forked.SM.Issued, forked.Mem, forked.VT)
					}
				})
			}
		}
	}
}

// TestCheckpointForkEquivalenceTimeline covers the run-loop bookkeeping:
// a forked run's occupancy timeline must splice exactly onto the prefix's.
func TestCheckpointForkEquivalenceTimeline(t *testing.T) {
	cfg := config.Small().WithPolicy(config.PolicyVT)
	opts := Options{Parallelism: 1, SampleInterval: 64}
	ref := runPlain(t, "pathfinder", cfg, opts)
	_, ck := runCapturing(t, "pathfinder", cfg, opts, ref.Cycles/2)
	if ck == nil {
		t.Fatal("no checkpoint captured")
	}
	forked := resume(t, "pathfinder", ck, cfg, opts)
	if !reflect.DeepEqual(ref.Timeline, forked.Timeline) {
		t.Fatalf("timelines diverged: ref %d samples, forked %d samples",
			len(ref.Timeline), len(forked.Timeline))
	}
}

// TestCheckpointRandomCycles is the property test: forking at arbitrary
// (pseudo-random) cycles must always reproduce the uninterrupted run.
// CheckpointAt rounds up to the next simulated cycle, so any target in
// [1, Cycles) names a valid quiescent boundary.
func TestCheckpointRandomCycles(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, policy := range []config.Policy{config.PolicyVT, config.PolicyFullSwap} {
		cfg := config.Small().WithPolicy(policy)
		ref := runPlain(t, "nw", cfg, Options{Parallelism: 1})
		for i := 0; i < 5; i++ {
			at := 1 + rng.Int63n(ref.Cycles-1)
			_, ck := runCapturing(t, "nw", cfg, Options{Parallelism: 1}, at)
			if ck == nil {
				t.Fatalf("policy %v: no checkpoint at cycle %d of %d", policy, at, ref.Cycles)
			}
			forked := resume(t, "nw", ck, cfg, Options{Parallelism: 1})
			if !reflect.DeepEqual(ref, forked) {
				t.Fatalf("policy %v: fork at cycle %d (target %d) diverged", policy, ck.Cycle, at)
			}
		}
	}
}

// TestCheckpointCrossConfigFork is the prefix-fork use case: a checkpoint
// captured before any swap activity under one swap-latency configuration
// seeds runs under different swap latencies, each bit-identical to its
// own uninterrupted run.
func TestCheckpointCrossConfigFork(t *testing.T) {
	base := config.Small().WithPolicy(config.PolicyVT)
	donorCfg := base
	donorCfg.VT.SwapOutLatency = 8
	donorCfg.VT.SwapInLatency = 8

	l, opts := buildLaunch(t, "pathfinder")
	var ck *Checkpoint
	opts.Parallelism = 1
	opts.CheckpointEvery = 16
	opts.CheckpointGuard = func(cycle int64, vt core.Stats) bool {
		return vt.SwapsOut == 0 && vt.SwapsIn == 0
	}
	opts.OnCheckpoint = func(c *Checkpoint) { ck = c }
	if _, err := Run(l, donorCfg, opts); err != nil {
		t.Fatal(err)
	}
	if ck == nil {
		t.Fatal("guard blocked every capture (first swap before cycle 16?)")
	}

	for _, lat := range []int{0, 64, 256} {
		cfg := base
		cfg.VT.SwapOutLatency = lat
		cfg.VT.SwapInLatency = lat
		ref := runPlain(t, "pathfinder", cfg, Options{Parallelism: 1})
		forked := resume(t, "pathfinder", ck, cfg, Options{Parallelism: 1})
		if !reflect.DeepEqual(ref, forked) {
			t.Fatalf("swap latency %d: fork from cross-config checkpoint (cycle %d) diverged: ref cycles=%d forked cycles=%d",
				lat, ck.Cycle, ref.Cycles, forked.Cycles)
		}
	}
}

// TestCheckpointStaleSchedulerRef pins a capture-time bug: a GTO
// scheduler's greedy pointer can outlive its warp's CTA — the CTA
// completes and departs the SM while the pointer lingers (inert, since a
// Finished warp never passes an issue check). Serializing that dangling
// ref verbatim made restore fail with "warp ref not resident". The exact
// combo that first hit it: bfs on GTX480 with MinResidencyCycles 3072,
// donor swap latency 64, forked to 512 — by cycle ~2656 SM 12's greedy
// still named a departed CTA. Capture must encode such refs as nil, and
// the fork must stay bit-identical to the uninterrupted run.
func TestCheckpointStaleSchedulerRef(t *testing.T) {
	mk := func(lat int) config.GPUConfig {
		cfg := config.GTX480().WithPolicy(config.PolicyVT)
		cfg.VT.MinResidencyCycles = 3072
		cfg.VT.SwapOutLatency = lat
		cfg.VT.SwapInLatency = lat
		return cfg
	}
	l, opts := buildLaunch(t, "bfs")
	var ck *Checkpoint
	opts.Parallelism = 1
	opts.CheckpointEvery = 64
	opts.CheckpointGuard = func(cycle int64, vt core.Stats) bool {
		return vt.SwapsOut == 0 && vt.SwapsIn == 0
	}
	opts.OnCheckpoint = func(c *Checkpoint) { ck = c }
	if _, err := Run(l, mk(64), opts); err != nil {
		t.Fatal(err)
	}
	if ck == nil {
		t.Fatal("guard blocked every capture")
	}
	ref := runPlain(t, "bfs", mk(512), Options{Parallelism: 1})
	forked := resume(t, "bfs", ck, mk(512), Options{Parallelism: 1})
	if !reflect.DeepEqual(ref, forked) {
		t.Fatalf("fork across a departed-CTA scheduler ref diverged: ref cycles=%d forked cycles=%d",
			ref.Cycles, forked.Cycles)
	}
}

// TestCheckpointJSONRoundTrip proves a checkpoint survives serialization:
// resuming from a decoded copy matches resuming from the original.
func TestCheckpointJSONRoundTrip(t *testing.T) {
	cfg := config.Small().WithPolicy(config.PolicyVT)
	ref := runPlain(t, "bfs", cfg, Options{Parallelism: 1})
	_, ck := runCapturing(t, "bfs", cfg, Options{Parallelism: 1}, ref.Cycles/2)
	if ck == nil {
		t.Fatal("no checkpoint captured")
	}
	blob, err := json.Marshal(ck)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Checkpoint
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	forked := resume(t, "bfs", &decoded, cfg, Options{Parallelism: 1})
	if !reflect.DeepEqual(ref, forked) {
		t.Fatalf("fork from JSON-round-tripped checkpoint diverged")
	}
}

// TestCheckpointReuse forks the same checkpoint twice; the second fork
// must not see any state the first one mutated.
func TestCheckpointReuse(t *testing.T) {
	cfg := config.Small().WithPolicy(config.PolicyFullSwap)
	ref := runPlain(t, "pathfinder", cfg, Options{Parallelism: 1})
	_, ck := runCapturing(t, "pathfinder", cfg, Options{Parallelism: 1}, ref.Cycles/2)
	if ck == nil {
		t.Fatal("no checkpoint captured")
	}
	first := resume(t, "pathfinder", ck, cfg, Options{Parallelism: 1})
	second := resume(t, "pathfinder", ck, cfg, Options{Parallelism: 1})
	if !reflect.DeepEqual(ref, first) || !reflect.DeepEqual(ref, second) {
		t.Fatalf("checkpoint reuse diverged (first ok=%v, second ok=%v)",
			reflect.DeepEqual(ref, first), reflect.DeepEqual(ref, second))
	}
}

// TestResumeRejects covers the structural validation.
func TestResumeRejects(t *testing.T) {
	cfg := config.Small().WithPolicy(config.PolicyVT)
	ref := runPlain(t, "bfs", cfg, Options{Parallelism: 1})
	_, ck := runCapturing(t, "bfs", cfg, Options{Parallelism: 1}, ref.Cycles/2)
	if ck == nil {
		t.Fatal("no checkpoint captured")
	}
	l, _ := buildLaunch(t, "bfs")

	structural := cfg
	structural.NumSMs++
	if _, err := Resume(ck, []*isa.Launch{l}, structural, Options{}); err == nil {
		t.Error("structural config change accepted")
	}
	if _, err := Resume(ck, []*isa.Launch{l}, cfg.WithPolicy(config.PolicyBaseline), Options{}); err == nil {
		t.Error("policy change accepted")
	}
	bad := *ck
	bad.Version = CheckpointVersion + 1
	if _, err := Resume(&bad, []*isa.Launch{l}, cfg, Options{}); err == nil {
		t.Error("future checkpoint version accepted")
	}
	if _, err := Resume(nil, []*isa.Launch{l}, cfg, Options{}); err == nil {
		t.Error("nil checkpoint accepted")
	}

	// Swap latencies are the neutralized parameters: changing them must
	// be accepted.
	lat := cfg
	lat.VT.SwapOutLatency = 999
	if _, err := Resume(ck, []*isa.Launch{l}, lat, Options{}); err != nil {
		t.Errorf("swap-latency change rejected: %v", err)
	}
}
