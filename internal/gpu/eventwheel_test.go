package gpu

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/isa"
)

// TestEventWheelEquivalence proves the timing-wheel event queue is
// observation-equivalent to the reference binary heap: for every policy
// and scheduler the complete Result struct — cycles, every stat counter,
// the stall breakdown — is identical with the wheel on and off. The
// workload is the same mixed kernel the issue-fast-path suite uses, so it
// exercises every event source: L1/L2/DRAM round trips, MSHR merges,
// writeback-wheel spills, barrier releases, and (under VT) swap traffic.
func TestEventWheelEquivalence(t *testing.T) {
	policies := []config.Policy{
		config.PolicyBaseline, config.PolicyVT,
		config.PolicyIdeal, config.PolicyFullSwap,
	}
	schedulers := []config.SchedulerKind{
		config.SchedGTO, config.SchedLRR, config.SchedTwoLevel,
	}
	for _, p := range policies {
		for _, sched := range schedulers {
			t.Run(p.String()+"/"+sched.String(), func(t *testing.T) {
				cfg := config.Small().WithPolicy(p)
				cfg.Scheduler = sched
				const ctas, block = 16, 64
				run := func(disable bool) *Result {
					res, err := Run(mixedLaunch(t, ctas, block), cfg, Options{
						InitMemory:        initVec(ctas * block),
						DisableEventWheel: disable,
					})
					if err != nil {
						t.Fatal(err)
					}
					return res
				}
				wheel, heap := run(false), run(true)
				if !reflect.DeepEqual(wheel, heap) {
					t.Fatalf("event wheel diverges from reference heap:\nwheel: %+v\nheap: %+v", wheel, heap)
				}
			})
		}
	}
}

// TestEventWheelEquivalenceSwaps drives the VT policies through real
// swap-out/swap-in traffic so the typed restore-done, port-free, and
// min-residency events cross the wheel, and requires identical Results
// wheel vs heap. The swap-count assertion keeps the check non-vacuous.
func TestEventWheelEquivalenceSwaps(t *testing.T) {
	for _, p := range []config.Policy{config.PolicyVT, config.PolicyFullSwap} {
		t.Run(p.String(), func(t *testing.T) {
			cfg := config.Small().WithPolicy(p)
			l := &isa.Launch{
				Kernel:   memLoopKernel(t, 8),
				GridDim:  isa.Dim1(24),
				BlockDim: isa.Dim1(64),
				Params:   []uint32{aBase},
			}
			run := func(disable bool) *Result {
				res, err := Run(l, cfg, Options{DisableEventWheel: disable})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			wheel, heap := run(false), run(true)
			if wheel.VT.SwapsOut == 0 {
				t.Fatalf("%s: workload produced no swaps; equivalence check is vacuous", p)
			}
			if !reflect.DeepEqual(wheel, heap) {
				t.Fatalf("event wheel diverges on swap-heavy run:\nwheel: %+v\nheap: %+v", wheel, heap)
			}
		})
	}
}

// TestEventWheelEquivalenceParallel cross-checks the wheel against the
// parallel intra-run engine: lane-buffered typed events must commit into
// the wheel in the same order the sequential engine produces, for both
// backends (and, under -race, prove the pooled queue and typed dispatch
// are race-free).
func TestEventWheelEquivalenceParallel(t *testing.T) {
	cfg := config.Small().WithPolicy(config.PolicyVT)
	run := func(disable bool, par int) *Result {
		res, err := Run(mixedLaunch(t, 16, 64), cfg, Options{
			InitMemory:        initVec(16 * 64),
			DisableEventWheel: disable,
			Parallelism:       par,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seqWheel := run(false, 1)
	parWheel := run(false, 2)
	parHeap := run(true, 2)
	if !reflect.DeepEqual(seqWheel, parWheel) {
		t.Fatalf("parallel engine diverges from sequential with the wheel on")
	}
	if !reflect.DeepEqual(parWheel, parHeap) {
		t.Fatalf("event wheel diverges under the parallel engine")
	}
}

// TestEventWheelEquivalenceIdleSkip pins the composition of the wheel
// with idle fast-forward: the engine's next-event query now reads the
// wheel's cached next-due cycle instead of a heap peek, and skipping must
// neither change results nor be changed by the backend.
func TestEventWheelEquivalenceIdleSkip(t *testing.T) {
	cfg := config.Small().WithPolicy(config.PolicyVT)
	l := &isa.Launch{
		Kernel:   memLoopKernel(t, 8),
		GridDim:  isa.Dim1(24),
		BlockDim: isa.Dim1(64),
		Params:   []uint32{aBase},
	}
	run := func(wheelOff, skipOff bool) *Result {
		res, err := Run(l, cfg, Options{
			DisableEventWheel: wheelOff,
			DisableIdleSkip:   skipOff,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(false, false)
	for _, alt := range []*Result{run(false, true), run(true, false), run(true, true)} {
		if !reflect.DeepEqual(base, alt) {
			t.Fatalf("wheel × idle-skip combination diverges:\nbase: %+v\nalt: %+v", base, alt)
		}
	}
}

// TestDeadlineFiresAcrossIdleSkip proves Options.Ctx wall-clock deadlines
// still abort a run whose cycles are mostly fast-forwarded: idle skip
// jumps the cycle counter far past the 512-cycle poll boundary, and the
// poll must trigger on the first simulated cycle at or past it rather
// than requiring an exact hit. An already-expired context must abort both
// backends regardless of how the run's idle spans are skipped.
func TestDeadlineFiresAcrossIdleSkip(t *testing.T) {
	cfg := config.Small().WithPolicy(config.PolicyVT)
	l := &isa.Launch{
		Kernel:   memLoopKernel(t, 64), // long memory-bound run: heavy idle skip
		GridDim:  isa.Dim1(24),
		BlockDim: isa.Dim1(64),
		Params:   []uint32{aBase},
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	for _, disable := range []bool{false, true} {
		_, err := Run(l, cfg, Options{DisableEventWheel: disable, Ctx: ctx})
		var abort *AbortError
		if !errors.As(err, &abort) {
			t.Fatalf("DisableEventWheel=%v: want *AbortError, got %v", disable, err)
		}
		if abort.Diag.Reason != ReasonDeadline {
			t.Fatalf("DisableEventWheel=%v: abort reason = %q, want %q",
				disable, abort.Diag.Reason, ReasonDeadline)
		}
	}
	// Sanity: without a deadline the same run completes, and it is long
	// enough that idle skip must cross poll boundaries rather than land on
	// them (memLoopKernel stalls every warp on DRAM round trips, so the
	// engine fast-forwards spans far larger than the 512-cycle poll).
	res, err := Run(l, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles < 4*512 {
		t.Fatalf("run finished in %d cycles; too short to cross deadline-poll boundaries", res.Cycles)
	}
}
