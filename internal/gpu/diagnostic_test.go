package gpu

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/sm"
)

// barrierDeadlockLaunch builds a 2-warp CTA that genuinely deadlocks
// under the model's release-on-arrival barrier semantics: warp 0 executes
// two barriers while warp 1 executes one and then a long dependent ALU
// chain before exiting. Both warps meet at the first barrier; warp 0
// parks at its second barrier immediately after the release (Arrived=1)
// while warp 1 is still deep in the chain; when warp 1 finally exits, no
// arrival event re-checks the release condition, so warp 0 stays parked
// forever.
func barrierDeadlockLaunch(t testing.TB) *isa.Launch {
	b := isa.NewBuilder("bardead")
	b.S2R(1, isa.SrTidX)
	b.ShrImm(2, 1, 5)                // warp id (warp size 32)
	b.SetpImm(3, isa.CmpINE, 2, 0)   // p3 = (wid != 0)
	b.Bra(3, "slow", "done")
	b.Bar() // warp 0: first barrier
	b.Bar() // warp 0: second barrier — parks forever
	b.Jmp("done")
	b.Label("slow")
	b.Bar() // warp 1: first barrier
	// Dependent ALU chain: keeps warp 1 busy long past warp 0's arrival
	// at the second barrier, whatever the schedulers interleave.
	b.MovImm(4, 0)
	for i := 0; i < 8; i++ {
		b.IAddImm(4, 4, 1)
	}
	b.Label("done")
	b.Exit()
	k, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return &isa.Launch{Kernel: k, GridDim: isa.Dim1(1), BlockDim: isa.Dim1(64)}
}

func TestBarrierDeadlockDiagnostic(t *testing.T) {
	cfg := config.Small()
	res, err := Run(barrierDeadlockLaunch(t), cfg, Options{})
	if err == nil {
		t.Fatal("expected a deadlock, got a completed run")
	}
	if res != nil {
		t.Fatal("aborted run returned a result")
	}
	if !strings.Contains(err.Error(), "deadlocked") {
		t.Fatalf("legacy message text lost: %v", err)
	}

	var ae *AbortError
	if !errors.As(err, &ae) {
		t.Fatalf("error is not an *AbortError: %v", err)
	}
	d := DiagnosticOf(err)
	if d == nil || d != ae.Diag {
		t.Fatal("DiagnosticOf did not extract the attached diagnostic")
	}
	if d.Reason != ReasonDeadlock {
		t.Fatalf("Reason = %q, want %q", d.Reason, ReasonDeadlock)
	}
	if d.Cycle <= 0 {
		t.Fatalf("Cycle = %d, want > 0", d.Cycle)
	}
	if d.Kernel != "bardead" {
		t.Fatalf("Kernel = %q", d.Kernel)
	}
	if d.EventsPending != 0 {
		t.Fatalf("a deadlock must have no pending events, got %d", d.EventsPending)
	}
	if d.GridRemaining != 0 {
		t.Fatalf("GridRemaining = %d, want 0 (the single CTA dispatched)", d.GridRemaining)
	}
	if len(d.SMs) != cfg.NumSMs {
		t.Fatalf("got %d SM snapshots, want %d", len(d.SMs), cfg.NumSMs)
	}

	// Exactly one SM holds the stuck CTA: one warp barrier-parked, one
	// exited, barrier occupancy 1 of 2.
	var stuck *sm.Diag
	for i := range d.SMs {
		if d.SMs[i].ResidentCTAs > 0 {
			if stuck != nil {
				t.Fatal("CTA resident on more than one SM")
			}
			stuck = &d.SMs[i]
		}
	}
	if stuck == nil {
		t.Fatal("no SM snapshot holds the stuck CTA")
	}
	if stuck.BlockedBarrier != 1 || stuck.Ready != 0 || stuck.BlockedMem != 0 {
		t.Fatalf("issue classes = ready %d / mem %d / barrier %d, want 0/0/1",
			stuck.Ready, stuck.BlockedMem, stuck.BlockedBarrier)
	}
	want := []sm.BarrierDiag{{CTA: 0, Arrived: 1, Finished: 1, Warps: 2}}
	if !reflect.DeepEqual(stuck.Barriers, want) {
		t.Fatalf("Barriers = %+v, want %+v", stuck.Barriers, want)
	}
	if stuck.LSUOps != 0 || stuck.OutstandingLoads != 0 || stuck.WheelPending != 0 {
		t.Fatalf("deadlocked SM shows in-flight work: %+v", *stuck)
	}
	if s := d.Summary(); !strings.Contains(s, "1 barrier-parked") {
		t.Fatalf("Summary missing barrier count: %q", s)
	}
}

func TestMaxCyclesDiagnostic(t *testing.T) {
	cfg := config.Small()
	cfg.MaxCycles = 50
	n := 8 * 64
	_, err := Run(vecAddLaunch(t, 8, 64), cfg, Options{InitMemory: initVec(n)})
	if err == nil {
		t.Fatal("expected a max-cycles abort")
	}
	if !strings.Contains(err.Error(), "exceeded") {
		t.Fatalf("legacy message text lost: %v", err)
	}
	d := DiagnosticOf(err)
	if d == nil || d.Reason != ReasonMaxCycles {
		t.Fatalf("diagnostic = %+v, want reason %q", d, ReasonMaxCycles)
	}
	if len(d.SMs) != cfg.NumSMs {
		t.Fatalf("got %d SM snapshots, want %d", len(d.SMs), cfg.NumSMs)
	}
}

func TestDeadlineDiagnostic(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired before the run starts: first poll aborts
	n := 8 * 64
	_, err := Run(vecAddLaunch(t, 8, 64), config.Small(), Options{
		InitMemory: initVec(n),
		Ctx:        ctx,
	})
	d := DiagnosticOf(err)
	if d == nil || d.Reason != ReasonDeadline {
		t.Fatalf("err = %v, want a deadline abort diagnostic", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cause not preserved: %v", err)
	}
}

// TestCheckInvariantsClean proves the checker is a pure observer: a run
// with invariants on must pass and produce a bit-identical Result.
func TestCheckInvariantsClean(t *testing.T) {
	cfg := config.Small()
	cfg.Policy = config.PolicyVT // exercise swap bookkeeping too
	n := 16 * 64
	launch := func() *isa.Launch { return vecAddLaunch(t, 16, 64) }
	plain, err := Run(launch(), cfg, Options{InitMemory: initVec(n)})
	if err != nil {
		t.Fatal(err)
	}
	checked, err := Run(launch(), cfg, Options{
		InitMemory:        initVec(n),
		CheckInvariants:   true,
		InvariantInterval: 64, // check often to catch transient breakage
	})
	if err != nil {
		t.Fatalf("invariant checker tripped on a healthy run: %v", err)
	}
	if !reflect.DeepEqual(plain, checked) {
		t.Fatal("CheckInvariants perturbed the simulation result")
	}
}

// TestCheckInvariantsCatchesCorruption corrupts SM bookkeeping mid-run
// through the fault hook and expects a cycle-stamped violation report.
func TestCheckInvariantsCatchesCorruption(t *testing.T) {
	const at = 100
	n := 8 * 64
	fired := false
	_, err := Run(vecAddLaunch(t, 8, 64), config.Small(), Options{
		InitMemory:        initVec(n),
		CheckInvariants:   true,
		InvariantInterval: 64,
		FaultHook: func(cycle int64, sms []*sm.SM) {
			if fired || cycle < at {
				return
			}
			fired = true
			sms[0].RegsUsed += 12345
		},
	})
	if err == nil {
		t.Fatal("expected an invariant violation")
	}
	d := DiagnosticOf(err)
	if d == nil || d.Reason != ReasonInvariant {
		t.Fatalf("err = %v, want an invariant abort", err)
	}
	if d.Cycle < at {
		t.Fatalf("violation stamped at cycle %d, before the corruption at %d", d.Cycle, at)
	}
	if !strings.Contains(d.Violation, "RegsUsed") {
		t.Fatalf("violation report does not name the corrupted counter: %q", d.Violation)
	}
	if !strings.Contains(d.Violation, "SM0") {
		t.Fatalf("violation report does not name the SM: %q", d.Violation)
	}
}

func TestRunRejectsNegativeParallelism(t *testing.T) {
	_, err := Run(vecAddLaunch(t, 1, 32), config.Small(), Options{Parallelism: -1})
	if err == nil || !strings.Contains(err.Error(), "Parallelism") {
		t.Fatalf("err = %v, want a Parallelism bounds rejection", err)
	}
}

func TestRunRejectsNegativeMaxCycles(t *testing.T) {
	cfg := config.Small()
	cfg.MaxCycles = -1
	_, err := Run(vecAddLaunch(t, 1, 32), cfg, Options{})
	if err == nil || !strings.Contains(err.Error(), "MaxCycles") {
		t.Fatalf("err = %v, want a MaxCycles validation error", err)
	}
}
