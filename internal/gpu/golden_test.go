package gpu

// Golden regression tests: the simulator is deterministic, so these exact
// cycle and issue counts must not drift unless a timing model change is
// intentional — in which case regenerate them (instructions below) and
// re-examine EXPERIMENTS.md.
//
// Regenerate by running each (workload, policy) pair at grid=24 on
// config.Small() and copying Cycles/Issued.

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/kernels"
)

func TestGoldenCycleCounts(t *testing.T) {
	cases := []struct {
		workload string
		policy   config.Policy
		cycles   int64
		issued   int64
	}{
		{"nw", config.PolicyBaseline, 9653, 6504},
		{"nw", config.PolicyVT, 9440, 6504},
		{"pathfinder", config.PolicyBaseline, 8975, 8976},
		{"pathfinder", config.PolicyVT, 6147, 8976},
		{"srad", config.PolicyBaseline, 2197, 5376},
		{"srad", config.PolicyVT, 2197, 5376},
		// bfs issue counts differ between policies legitimately: the
		// level array is marked cooperatively, so scheduling order
		// changes which thread performs each (idempotent) write.
		{"bfs", config.PolicyBaseline, 5646, 3928},
		{"bfs", config.PolicyVT, 5802, 3930},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.workload+"/"+tc.policy.String(), func(t *testing.T) {
			w, err := kernels.Build(tc.workload, 1)
			if err != nil {
				t.Fatal(err)
			}
			w.Launch.GridDim = isa.Dim1(24)
			res, err := Run(w.Launch, config.Small().WithPolicy(tc.policy),
				Options{InitMemory: w.Init})
			if err != nil {
				t.Fatal(err)
			}
			if res.Cycles != tc.cycles || res.SM.Issued != tc.issued {
				t.Fatalf("golden drift: cycles %d (want %d), issued %d (want %d)\n"+
					"if this change is intentional, regenerate the goldens",
					res.Cycles, tc.cycles, res.SM.Issued, tc.issued)
			}
		})
	}
}
