package gpu

import (
	"testing"

	"repro/internal/config"
)

// TestStallAccountingInvariant checks that the issue-slot samples are
// conserved: every scheduler contributes exactly one sample per cycle —
// issued, one of the stall buckets, or idle — whether the cycle was
// simulated or fast-forwarded. Catches double- or under-counting when
// AccountSkipped and the cached stall classification interact.
func TestStallAccountingInvariant(t *testing.T) {
	policies := []config.Policy{
		config.PolicyBaseline, config.PolicyVT,
		config.PolicyIdeal, config.PolicyFullSwap,
	}
	schedulers := []config.SchedulerKind{
		config.SchedGTO, config.SchedLRR, config.SchedTwoLevel,
	}
	check := func(t *testing.T, res *Result) {
		t.Helper()
		slots := res.SM.SlotIssued + res.SM.SlotStallMem + res.SM.SlotStallALU +
			res.SM.SlotStallBar + res.SM.SlotStallStr + res.SM.SlotIdle
		want := res.Cycles * int64(res.Schedulers) * int64(res.NumSMs)
		if slots != want {
			t.Fatalf("slot samples %d != cycles %d x schedulers %d x SMs %d = %d"+
				" (issued %d mem %d alu %d bar %d str %d idle %d)",
				slots, res.Cycles, res.Schedulers, res.NumSMs, want,
				res.SM.SlotIssued, res.SM.SlotStallMem, res.SM.SlotStallALU,
				res.SM.SlotStallBar, res.SM.SlotStallStr, res.SM.SlotIdle)
		}
	}
	for _, p := range policies {
		for _, sched := range schedulers {
			t.Run(p.String()+"/"+sched.String(), func(t *testing.T) {
				cfg := config.Small().WithPolicy(p)
				cfg.Scheduler = sched
				const ctas, block = 16, 64
				res, err := Run(mixedLaunch(t, ctas, block), cfg, Options{
					InitMemory: initVec(ctas * block),
				})
				if err != nil {
					t.Fatal(err)
				}
				check(t, res)
			})
		}
	}
	// The invariant must also hold when every cycle is simulated (no
	// fast-forward contribution at all).
	t.Run("no-idle-skip", func(t *testing.T) {
		cfg := config.Small().WithPolicy(config.PolicyVT)
		res, err := Run(mixedLaunch(t, 16, 64), cfg, Options{
			InitMemory:      initVec(16 * 64),
			DisableIdleSkip: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		check(t, res)
	})
}
