package gpu

// Tests for concurrent kernel execution: multiple launches sharing SMs.

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/mem"
)

// twoLaunches builds a vecadd and an independent ALU kernel writing to
// disjoint regions.
func twoLaunches(t *testing.T) []*isa.Launch {
	t.Helper()
	v := vecAddLaunch(t, 8, 64)

	b := isa.NewBuilder("spin")
	b.S2R(0, isa.SrCTAIdX)
	b.S2R(1, isa.SrNTidX)
	b.IMul(0, 0, 1)
	b.S2R(1, isa.SrTidX)
	b.IAdd(0, 0, 1)
	b.MovImm(2, 0)
	for i := 0; i < 12; i++ {
		b.IAddImm(2, 2, 3)
	}
	b.ShlImm(3, 0, 2)
	b.LdParam(4, 0)
	b.IAdd(4, 4, 3)
	b.StG(4, 0, 2)
	b.Exit()
	spin := &isa.Launch{
		Kernel:   b.MustBuild(),
		GridDim:  isa.Dim1(6),
		BlockDim: isa.Dim1(96),
		Params:   []uint32{0x0700_0000},
	}
	return []*isa.Launch{v, spin}
}

func TestRunMultiCompletesBothKernels(t *testing.T) {
	for _, p := range []config.Policy{config.PolicyBaseline, config.PolicyVT} {
		var out *mem.Backing
		res, err := RunMulti(twoLaunches(t), config.Small().WithPolicy(p), Options{
			InitMemory:  initVec(512),
			KeepBacking: func(bk *mem.Backing) { out = bk },
		})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if len(res.PerKernel) != 2 {
			t.Fatalf("%s: PerKernel = %d entries", p, len(res.PerKernel))
		}
		if res.PerKernel[0].Name != "vecadd_test" || res.PerKernel[1].Name != "spin" {
			t.Fatalf("%s: kernel names %+v", p, res.PerKernel)
		}
		if res.SM.CTAsCompleted != 8+6 {
			t.Fatalf("%s: completed %d CTAs, want 14", p, res.SM.CTAsCompleted)
		}
		if res.PerKernel[0].Issued == 0 || res.PerKernel[1].Issued == 0 {
			t.Fatalf("%s: per-kernel issue counts %+v", p, res.PerKernel)
		}
		// Both kernels' outputs must be correct.
		for i := 0; i < 512; i++ {
			if got := out.LoadWord(outBase + uint32(4*i)); got != uint32(3*i) {
				t.Fatalf("%s: vecadd out[%d] = %d", p, i, got)
			}
		}
		for i := 0; i < 6*96; i++ {
			if got := out.LoadWord(0x0700_0000 + uint32(4*i)); got != 36 {
				t.Fatalf("%s: spin out[%d] = %d, want 36", p, i, got)
			}
		}
		if res.Kernel != "vecadd_test+spin" {
			t.Fatalf("%s: joined name %q", p, res.Kernel)
		}
	}
}

func TestRunMultiHeterogeneousResources(t *testing.T) {
	// A fat kernel (capacity-heavy CTAs) co-scheduled with a tiny one:
	// the dispatcher must interleave them without exceeding capacity.
	fat := isa.NewBuilder("fat").ReserveRegs(40)
	fat.Nop().Exit()
	fatL := &isa.Launch{Kernel: fat.MustBuild(), GridDim: isa.Dim1(6), BlockDim: isa.Dim1(256)}
	tiny := isa.NewBuilder("tiny")
	tiny.Nop().Exit()
	tinyL := &isa.Launch{Kernel: tiny.MustBuild(), GridDim: isa.Dim1(20), BlockDim: isa.Dim1(32)}

	res, err := RunMulti([]*isa.Launch{fatL, tinyL}, config.Small(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SM.CTAsCompleted != 26 {
		t.Fatalf("completed %d CTAs, want 26", res.SM.CTAsCompleted)
	}
}

func TestRunMultiEmpty(t *testing.T) {
	if _, err := RunMulti(nil, config.Small(), Options{}); err == nil {
		t.Fatal("empty launch list must error")
	}
}

func TestRunMultiDeterministic(t *testing.T) {
	r1, err := RunMulti(twoLaunches(t), config.Small().WithPolicy(config.PolicyVT),
		Options{InitMemory: initVec(512)})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunMulti(twoLaunches(t), config.Small().WithPolicy(config.PolicyVT),
		Options{InitMemory: initVec(512)})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.VT.SwapsOut != r2.VT.SwapsOut {
		t.Fatalf("nondeterministic multi-kernel run: %d/%d vs %d/%d",
			r1.Cycles, r1.VT.SwapsOut, r2.Cycles, r2.VT.SwapsOut)
	}
}
