package resultstore

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
)

// Report summarizes a Verify or Repair pass.
type Report struct {
	// Checked counts distinct indexed objects examined.
	Checked int
	// Legacy counts unindexed object files (readable, no checksum).
	Legacy int
	// Healthy counts objects valid on every attached side.
	Healthy int
	// Repaired counts objects healed by copying from a healthy replica
	// (Repair only).
	Repaired int
	// Damaged lists objects with a detected problem that was not fixed
	// ("side kind-key: reason"); populated by Verify, empty after a fully
	// successful Repair.
	Damaged []string
	// Unrecoverable lists objects with no healthy copy on any side.
	Unrecoverable []string
}

// Verify audits every indexed object on every side — head and segment
// checksums — without modifying anything.
func (s *Store) Verify() Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.verifyRepair(false)
}

// Repair audits like Verify and additionally heals: damaged or missing
// copies are rewritten bit-identically from a healthy replica, and
// objects with no healthy copy anywhere are quarantined so later reads
// recompute instead of failing.
func (s *Store) Repair() Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.verifyRepair(true)
}

// verifyObject classifies one object on one side, including segment
// checksums for segmented objects. Callers hold s.mu.
func (s *Store) verifyObject(sd *side, kind Kind, key string) objState {
	b, st := s.readObject(sd, kind, key)
	if st != objOK {
		return st
	}
	e := sd.index[objKey{kind, key}]
	if e.Segs == 0 {
		return objOK
	}
	var h blobHead
	if err := json.Unmarshal(b, &h); err != nil || len(h.Segments) != e.Segs {
		return objCorrupt
	}
	head := s.objPath(sd, kind, key)
	for i, si := range h.Segments {
		sb, err := s.fs.readFile(segPath(head, i))
		if err != nil || sumHex(sb) != si.SHA {
			return objCorrupt
		}
	}
	return objOK
}

func (s *Store) verifyRepair(fix bool) Report {
	var rep Report
	keys := map[objKey]bool{}
	for _, sd := range s.sides {
		for k := range sd.index {
			keys[k] = true
		}
	}
	ordered := make([]objKey, 0, len(keys))
	for k := range keys {
		ordered = append(ordered, k)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].kind != ordered[j].kind {
			return ordered[i].kind < ordered[j].kind
		}
		return ordered[i].key < ordered[j].key
	})
	for _, k := range ordered {
		rep.Checked++
		var goodSide *side
		type damage struct {
			sd *side
			st objState
		}
		var bad []damage
		for _, sd := range s.sides {
			st := s.verifyObject(sd, k.kind, k.key)
			switch st {
			case objOK, objLegacy:
				if goodSide == nil {
					goodSide = sd
				}
			default:
				bad = append(bad, damage{sd, st})
			}
		}
		name := fmt.Sprintf("%s-%s", k.kind, k.key)
		switch {
		case goodSide == nil:
			rep.Unrecoverable = append(rep.Unrecoverable, name)
			if fix {
				for _, sd := range s.sides {
					s.quarantineSide(sd, k.kind, k.key, "verify: no healthy copy on any side")
				}
			}
		case len(bad) == 0:
			rep.Healthy++
		default:
			for _, d := range bad {
				if fix {
					s.repairObject(goodSide, d.sd, k.kind, k.key)
					rep.Repaired++
				} else {
					detail := "missing"
					if d.st == objCorrupt {
						detail = "checksum mismatch"
					} else if d.st == objErr {
						detail = "read error"
					}
					rep.Damaged = append(rep.Damaged, fmt.Sprintf("%s %s: %s", s.roleOf(d.sd), name, detail))
				}
			}
		}
	}
	rep.Legacy = s.countLegacy(s.sides[0])
	return rep
}

// countLegacy counts object-named files on a side that have no index
// entry: the pre-store compat population.
func (s *Store) countLegacy(sd *side) int {
	n := 0
	for _, kind := range []Kind{KindResult, KindCheckpoint, KindArtifact} {
		matches, err := filepath.Glob(filepath.Join(sd.dir, string(kind)+"-*.json"))
		if err != nil {
			continue
		}
		for _, m := range matches {
			base := filepath.Base(m)
			key := strings.TrimSuffix(strings.TrimPrefix(base, string(kind)+"-"), ".json")
			if _, ok := sd.index[objKey{kind, key}]; !ok {
				n++
			}
		}
	}
	return n
}

// Failover marks the primary side failed: reads and commits move to the
// mirror until Reinstate.
func (s *Store) Failover() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.sides) < 2 {
		return fmt.Errorf("resultstore: failover requires a mirror")
	}
	if s.sides[0].failed {
		return fmt.Errorf("resultstore: primary already failed over")
	}
	if s.sides[1].failed {
		return fmt.Errorf("resultstore: mirror is failed; cannot fail over to it")
	}
	s.sides[0].failed = true
	s.event(Event{Op: "failover", Side: "primary", Detail: s.sides[0].dir})
	return nil
}

// Reinstate returns a failed side to service: the survivor's journal
// files are copied over (the survivor saw every append during the
// outage), objects are repair-synced, and the side is marked healthy.
func (s *Store) Reinstate() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var back *side
	for _, sd := range s.sides {
		if sd.failed {
			back = sd
			break
		}
	}
	if back == nil {
		return fmt.Errorf("resultstore: no failed side to reinstate")
	}
	donor := s.serving()
	if donor == nil {
		return fmt.Errorf("resultstore: no healthy side to reinstate from")
	}
	// Journal-style append targets missed during the outage: byte-copy
	// from the donor (its journal is a superset of the stale side's).
	if matches, err := filepath.Glob(filepath.Join(donor.dir, "*.jsonl")); err == nil {
		for _, src := range matches {
			base := filepath.Base(src)
			if base == indexFile || base == auditFile {
				continue
			}
			b, err := s.fs.readFile(src)
			if err != nil {
				continue
			}
			dst := filepath.Join(back.dir, base)
			if cur, err := s.fs.readFile(dst); err == nil && string(cur) == string(b) {
				continue
			}
			s.fs.writeFile(dst, b)
		}
	}
	back.failed = false
	s.event(Event{Op: "reinstate", Side: s.roleOf(back), Detail: back.dir})
	s.verifyRepair(true)
	return nil
}

// Flip swaps primary and mirror roles. Both sides must be healthy.
func (s *Store) Flip() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.sides) < 2 {
		return fmt.Errorf("resultstore: flip requires a mirror")
	}
	if s.sides[0].failed || s.sides[1].failed {
		return fmt.Errorf("resultstore: flip requires both sides healthy")
	}
	s.sides[0], s.sides[1] = s.sides[1], s.sides[0]
	s.event(Event{Op: "flip", Detail: fmt.Sprintf("primary is now %s", s.sides[0].dir)})
	return nil
}

// KindInventory summarizes one object kind on the serving side.
type KindInventory struct {
	Kind      string
	Objects   int // indexed objects
	Legacy    int // unindexed compat files
	Segmented int // indexed objects stored as value segments
	Bytes     int64
}

// Inventory summarizes the serving side's contents by kind.
func (s *Store) Inventory() []KindInventory {
	s.mu.Lock()
	defer s.mu.Unlock()
	sd := s.serving()
	if sd == nil {
		sd = s.sides[0]
	}
	byKind := map[Kind]*KindInventory{}
	for _, kind := range []Kind{KindResult, KindCheckpoint, KindArtifact} {
		byKind[kind] = &KindInventory{Kind: string(kind)}
	}
	for k, e := range sd.index {
		inv, ok := byKind[k.kind]
		if !ok {
			inv = &KindInventory{Kind: string(k.kind)}
			byKind[k.kind] = inv
		}
		inv.Objects++
		inv.Bytes += e.Size
		if e.Segs > 0 {
			inv.Segmented++
		}
	}
	for _, kind := range []Kind{KindResult, KindCheckpoint, KindArtifact} {
		matches, _ := filepath.Glob(filepath.Join(sd.dir, string(kind)+"-*.json"))
		for _, m := range matches {
			base := filepath.Base(m)
			key := strings.TrimSuffix(strings.TrimPrefix(base, string(kind)+"-"), ".json")
			if _, ok := sd.index[objKey{kind, key}]; !ok {
				byKind[kind].Legacy++
			}
		}
	}
	out := make([]KindInventory, 0, len(byKind))
	for _, inv := range byKind {
		out = append(out, *inv)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// SideInfo describes one replica directory for status displays.
type SideInfo struct {
	Dir     string
	Role    string
	Failed  bool
	Indexed int
}

// Sides reports the store's replica directories in role order.
func (s *Store) Sides() []SideInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SideInfo, 0, len(s.sides))
	for _, sd := range s.sides {
		out = append(out, SideInfo{Dir: sd.dir, Role: s.roleOf(sd), Failed: sd.failed, Indexed: len(sd.index)})
	}
	return out
}
