// Package resultstore is a content-addressed, transactional object store
// with primary+mirror replication for the harness's durable state:
// memoized run results (vtsim), prefix checkpoints (vtck), completion
// journal lines, and large artifacts (vtart) stored as checksummed
// value segments.
//
// # Layout (per side directory)
//
//	vtsim-<key>.json            plain object (legacy-compatible name)
//	vtck-<key>.json             plain object (legacy-compatible name)
//	vtart-<key>.json            segmented object head
//	vtart-<key>.json.seg<N>     value segments of a segmented object
//	journal.jsonl               completion journal (appended through txs)
//	store-index.jsonl           append-only object index: key -> checksum
//	store-audit.jsonl           append-only audit log of store events
//	.vtstore/wal/               redo + commit records
//	.vtstore/staging/           staged payloads awaiting commit
//
// Object files keep the exact names the pre-store disk cache used, so a
// directory written by an older build opens unchanged: files present on
// disk but absent from store-index.jsonl are "legacy" objects, served
// without checksum verification (the caller's envelope validation still
// applies). Everything the store adds lives in files that do not match
// the historical vtsim-*.json / vtck-*.json globs.
//
// # Commit protocol
//
// A transaction's puts are staged (write + read-back checksum verify +
// fsync) under .vtstore/staging, then a manifest listing every operation
// is written and fsynced as .vtstore/wal/<tx>.redo. The atomic rename of
// <tx>.redo to <tx>.commit is the commit point. After it, the manifest
// is applied: staged files rename to their final object names, journal
// lines append, index lines append, and the same operations replicate to
// the mirror; the commit record is then deleted. Open() recovers both
// directions: a surviving .redo rolls back (delete staged files and the
// record — the transaction never happened), a surviving .commit rolls
// forward idempotently (appends are at-least-once; all line-oriented
// readers in this codebase dedupe by key). A crash at any single point
// therefore yields either the full transaction or none of it.
//
// The store serializes commits internally and assumes a single process
// per directory pair (the sweep harness); multi-process coordination is
// the planned vtsweepd's job, one layer up.
package resultstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/faultinject"
)

// Kind names an object class; it is also the on-disk filename prefix,
// chosen to match the pre-store cache file names exactly.
type Kind string

const (
	// KindResult is a memoized run result (vtsim-<key>.json).
	KindResult Kind = "vtsim"
	// KindCheckpoint is a prefix checkpoint envelope (vtck-<key>.json).
	KindCheckpoint Kind = "vtck"
	// KindArtifact is a large artifact (Perfetto trace, telemetry ring
	// dump) stored as a segmented blob under vtart-<key>.json[.segN].
	KindArtifact Kind = "vtart"
)

// ErrNotFound reports that no readable copy of an object exists on any
// healthy side. Corrupt copies with no healthy replica have been
// quarantined by the time Get returns this.
var ErrNotFound = errors.New("resultstore: object not found")

const (
	vtstoreDir = ".vtstore"
	indexFile  = "store-index.jsonl"
	auditFile  = "store-audit.jsonl"
)

// Options configures Open.
type Options struct {
	// Dir is the primary store directory (required). A pre-existing plain
	// cache directory is valid: its files open as legacy objects.
	Dir string
	// Mirror, when non-empty, attaches a replica directory: transactions
	// apply to both sides, reads fail over, and Repair copies between
	// them.
	Mirror string
	// SegmentSize bounds one value segment of a blob put; 0 means 1 MiB.
	SegmentSize int
	// Fault, when non-nil, intercepts every filesystem operation of this
	// store instance (crash drills and kill-point sweeps).
	Fault *faultinject.StoreHook
	// OnEvent, when non-nil, observes every audit event (repair,
	// quarantine, failover, rollback, ...). Called with the store lock
	// held; must not call back into the store.
	OnEvent func(Event)
}

// Event is one audit-log record.
type Event struct {
	Time   string `json:"time"`
	Op     string `json:"op"`
	Kind   string `json:"kind,omitempty"`
	Key    string `json:"key,omitempty"`
	Side   string `json:"side,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// Counters is a snapshot of the store's operation counters.
type Counters struct {
	Gets             int64
	Hits             int64
	LegacyHits       int64
	Misses           int64
	Commits          int64
	Repairs          int64
	Quarantines      int64
	FailoverReads    int64
	RecoveredCommits int64
	RolledBack       int64
}

// indexEntry is one store-index.jsonl line: the authoritative checksum
// for an object on that side. Later lines win; Drop lines delete.
type indexEntry struct {
	Kind string `json:"kind"`
	Key  string `json:"key"`
	SHA  string `json:"sha256,omitempty"`
	Size int64  `json:"size,omitempty"`
	Segs int    `json:"segs,omitempty"`
	Tx   string `json:"tx,omitempty"`
	Drop bool   `json:"drop,omitempty"`
}

type objKey struct {
	kind Kind
	key  string
}

// side is one replica directory.
type side struct {
	dir    string
	failed bool
	index  map[objKey]indexEntry
}

// Store is a transactional, replicated object store over one or two
// directories. Safe for concurrent use; storage never sits on the
// simulation hot path, so a single store-wide mutex suffices.
type Store struct {
	mu       sync.Mutex
	fs       fsio
	sides    []*side
	segSize  int
	txSeq    int64
	counters Counters
	onEvent  func(Event)
}

// Open opens (creating if needed) the store over Dir and, optionally,
// Mirror, and runs crash recovery on both sides' write-ahead logs before
// returning.
func Open(o Options) (*Store, error) {
	if o.Dir == "" {
		return nil, errors.New("resultstore: Dir is required")
	}
	segSize := o.SegmentSize
	if segSize <= 0 {
		segSize = 1 << 20
	}
	s := &Store{fs: fsio{hook: o.Fault}, segSize: segSize, onEvent: o.OnEvent}
	dirs := []string{o.Dir}
	if o.Mirror != "" {
		dirs = append(dirs, o.Mirror)
	}
	for _, d := range dirs {
		for _, sub := range []string{d, filepath.Join(d, vtstoreDir, "wal"), filepath.Join(d, vtstoreDir, "staging")} {
			if err := os.MkdirAll(sub, 0o755); err != nil {
				return nil, fmt.Errorf("resultstore: create %s: %w", sub, err)
			}
		}
		s.sides = append(s.sides, &side{dir: d, index: map[objKey]indexEntry{}})
	}
	for _, sd := range s.sides {
		if err := s.recoverSide(sd); err != nil {
			return nil, err
		}
	}
	for _, sd := range s.sides {
		s.loadIndex(sd)
	}
	return s, nil
}

// Close releases the store. The store holds no long-lived file handles,
// so this only exists for API symmetry with future remote backends.
func (s *Store) Close() error { return nil }

// Dir returns the primary directory the store was opened over.
func (s *Store) Dir() string { return s.sides[0].dir }

// Counters returns a snapshot of the operation counters.
func (s *Store) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters
}

// IsTransient reports whether err looks like a transient I/O failure
// worth a bounded retry (as opposed to corruption or absence).
func IsTransient(err error) bool {
	return errors.Is(err, faultinject.ErrInjectedIO) ||
		errors.Is(err, syscall.EIO) ||
		errors.Is(err, syscall.EAGAIN) ||
		errors.Is(err, syscall.EINTR)
}

// sumHex is the store's end-to-end content checksum.
func sumHex(b []byte) string {
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

// objPath names an object's head file on a side, matching the pre-store
// cache layout exactly.
func (s *Store) objPath(sd *side, kind Kind, key string) string {
	return filepath.Join(sd.dir, fmt.Sprintf("%s-%s.json", kind, key))
}

// segPath names the i-th value segment of a segmented object.
func segPath(head string, i int) string {
	return fmt.Sprintf("%s.seg%d", head, i)
}

// roleOf labels a side for events and reports.
func (s *Store) roleOf(sd *side) string {
	if len(s.sides) > 0 && s.sides[0] == sd {
		return "primary"
	}
	return "mirror"
}

// serving returns the first healthy side (nil if every side failed).
func (s *Store) serving() *side {
	for _, sd := range s.sides {
		if !sd.failed {
			return sd
		}
	}
	return nil
}

// otherHealthy returns a healthy side other than sd, if any.
func (s *Store) otherHealthy(sd *side) *side {
	for _, o := range s.sides {
		if o != sd && !o.failed {
			return o
		}
	}
	return nil
}

// event appends to the serving side's audit log (best-effort, outside
// the fault hook so audit writes never become kill points) and notifies
// the OnEvent observer. Callers hold s.mu.
func (s *Store) event(ev Event) {
	ev.Time = time.Now().UTC().Format(time.RFC3339)
	if s.onEvent != nil {
		s.onEvent(ev)
	}
	sd := s.serving()
	if sd == nil {
		sd = s.sides[0]
	}
	b, err := json.Marshal(&ev)
	if err != nil {
		return
	}
	f, err := os.OpenFile(filepath.Join(sd.dir, auditFile), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return
	}
	f.Write(append(b, '\n'))
	f.Close()
}

// appendIndex durably appends one index line on a side and updates its
// in-memory index. Callers hold s.mu.
func (s *Store) appendIndex(sd *side, e indexEntry) error {
	b, err := json.Marshal(&e)
	if err != nil {
		return err
	}
	if err := retryOnce(func() error {
		return s.fs.appendFile(filepath.Join(sd.dir, indexFile), b)
	}); err != nil {
		return err
	}
	k := objKey{Kind(e.Kind), e.Key}
	if e.Drop {
		delete(sd.index, k)
	} else {
		sd.index[k] = e
	}
	return nil
}

// loadIndex replays a side's store-index.jsonl into memory. Torn or
// unparseable lines are skipped (an object whose index line was lost
// degrades to legacy: readable, unverified).
func (s *Store) loadIndex(sd *side) {
	b, err := os.ReadFile(filepath.Join(sd.dir, indexFile))
	if err != nil {
		return
	}
	for _, line := range strings.Split(string(b), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var e indexEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil || e.Kind == "" || e.Key == "" {
			continue
		}
		k := objKey{Kind(e.Kind), e.Key}
		if e.Drop {
			delete(sd.index, k)
		} else {
			sd.index[k] = e
		}
	}
}

// recoverSide replays a side's write-ahead log: .redo records roll back
// (the commit point was never reached), .commit records roll forward
// idempotently. Stray staged files with no surviving record are removed.
func (s *Store) recoverSide(sd *side) error {
	walDir := filepath.Join(sd.dir, vtstoreDir, "wal")
	stagingDir := filepath.Join(sd.dir, vtstoreDir, "staging")
	ents, err := os.ReadDir(walDir)
	if err != nil {
		return fmt.Errorf("resultstore: read wal %s: %w", walDir, err)
	}
	names := make([]string, 0, len(ents))
	for _, de := range ents {
		names = append(names, de.Name())
	}
	sort.Strings(names)
	deferred := false
	for _, name := range names {
		full := filepath.Join(walDir, name)
		switch {
		case strings.HasSuffix(name, ".redo"):
			txid := strings.TrimSuffix(name, ".redo")
			if staged, err := filepath.Glob(filepath.Join(stagingDir, txid+"-*")); err == nil {
				for _, sp := range staged {
					os.Remove(sp)
				}
			}
			os.Remove(full)
			s.counters.RolledBack++
			s.event(Event{Op: "rollback", Side: s.roleOf(sd), Detail: txid})
		case strings.HasSuffix(name, ".commit"):
			b, rerr := os.ReadFile(full)
			var m manifest
			if rerr != nil || json.Unmarshal(b, &m) != nil || m.Tx == "" {
				os.Rename(full, full+".corrupt")
				s.event(Event{Op: "wal-corrupt", Side: s.roleOf(sd), Detail: name})
				continue
			}
			ok := s.applyManifest(sd, &m)
			if other := s.otherHealthy(sd); ok && other != nil {
				ok = s.replicate(sd, other, &m)
			}
			if ok {
				os.Remove(full)
				s.counters.RecoveredCommits++
				s.event(Event{Op: "recover-commit", Side: s.roleOf(sd), Detail: m.Tx})
			} else {
				deferred = true
				s.event(Event{Op: "recover-deferred", Side: s.roleOf(sd), Detail: m.Tx})
			}
		}
	}
	if !deferred {
		if staged, err := filepath.Glob(filepath.Join(stagingDir, "*")); err == nil {
			for _, sp := range staged {
				os.Remove(sp)
			}
		}
	}
	return nil
}
