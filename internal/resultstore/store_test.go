package resultstore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
)

func mustCommit(t *testing.T, tx *Tx) {
	t.Helper()
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
}

func mustOpen(t *testing.T, o Options) *Store {
	t.Helper()
	s, err := Open(o)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	payload := []byte(`{"version":1,"fingerprint":"x","result":{}}`)
	tx := s.Begin()
	tx.Put(KindResult, "abc123", payload)
	mustCommit(t, tx)

	// The object file keeps the exact legacy cache name.
	if _, err := os.Stat(filepath.Join(dir, "vtsim-abc123.json")); err != nil {
		t.Fatalf("object file not at legacy name: %v", err)
	}
	got, err := s.Get(KindResult, "abc123")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: got %q", got)
	}
	// Reopen: index replays, object still verified.
	s2 := mustOpen(t, Options{Dir: dir})
	got, err = s2.Get(KindResult, "abc123")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("get after reopen: %v %q", err, got)
	}
	c := s2.Counters()
	if c.Hits != 1 || c.LegacyHits != 0 {
		t.Fatalf("want 1 verified hit, got %+v", c)
	}
	// No WAL or staging debris after a clean commit.
	for _, sub := range []string{"wal", "staging"} {
		left, _ := filepath.Glob(filepath.Join(dir, vtstoreDir, sub, "*"))
		if len(left) != 0 {
			t.Fatalf("%s not empty after commit: %v", sub, left)
		}
	}
}

func TestLegacyCompatRead(t *testing.T) {
	// A cache directory written by a pre-store build: object files, no
	// index. The store must serve them unverified.
	dir := t.TempDir()
	payload := []byte(`{"version":1,"fingerprint":"y","result":{}}`)
	if err := os.WriteFile(filepath.Join(dir, "vtsim-deadbeef.json"), payload, 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, Options{Dir: dir})
	got, err := s.Get(KindResult, "deadbeef")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("legacy read: %v %q", err, got)
	}
	c := s.Counters()
	if c.LegacyHits != 1 || c.Hits != 0 {
		t.Fatalf("want legacy hit, got %+v", c)
	}
	if inv := s.Inventory(); inv[2].Kind != "vtsim" || inv[2].Legacy != 1 {
		t.Fatalf("inventory should count legacy object: %+v", inv)
	}
}

func TestAtRestCorruptionRepairsFromMirror(t *testing.T) {
	p, m := t.TempDir(), t.TempDir()
	s := mustOpen(t, Options{Dir: p, Mirror: m})
	payload := []byte(strings.Repeat("result-bytes ", 100))
	tx := s.Begin()
	tx.Put(KindResult, "k1", payload)
	mustCommit(t, tx)

	objP := filepath.Join(p, "vtsim-k1.json")
	objM := filepath.Join(m, "vtsim-k1.json")
	if pb, _ := os.ReadFile(objP); !bytes.Equal(pb, payload) {
		t.Fatal("primary object wrong before corruption")
	}
	if mb, _ := os.ReadFile(objM); !bytes.Equal(mb, payload) {
		t.Fatal("mirror copy missing or wrong")
	}
	// Flip a bit at rest on the primary.
	corrupted := append([]byte(nil), payload...)
	corrupted[17] ^= 0x40
	if err := os.WriteFile(objP, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(KindResult, "k1")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("get should heal and serve clean bytes: %v", err)
	}
	// Repair must be bit-identical.
	pb, _ := os.ReadFile(objP)
	if !bytes.Equal(pb, payload) {
		t.Fatal("primary not repaired bit-identically")
	}
	c := s.Counters()
	if c.Repairs != 1 || c.FailoverReads != 1 {
		t.Fatalf("want 1 repair + 1 failover read, got %+v", c)
	}
	// Audit log recorded the repair.
	audit, _ := os.ReadFile(filepath.Join(p, auditFile))
	if !strings.Contains(string(audit), `"op":"repair"`) {
		t.Fatalf("audit log missing repair event: %s", audit)
	}
}

func TestCorruptionWithoutMirrorQuarantines(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	tx := s.Begin()
	tx.Put(KindResult, "k2", []byte("payload-without-replica"))
	mustCommit(t, tx)
	obj := filepath.Join(dir, "vtsim-k2.json")
	if err := os.WriteFile(obj, []byte("payload-without-rePlica"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(KindResult, "k2"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound after quarantine, got %v", err)
	}
	if _, err := os.Stat(obj + ".corrupt"); err != nil {
		t.Fatalf("corrupt file not quarantined: %v", err)
	}
	if _, err := os.Stat(obj); !os.IsNotExist(err) {
		t.Fatal("corrupt object still in place")
	}
	// The drop line must survive reopen: no resurrected index entry.
	s2 := mustOpen(t, Options{Dir: dir})
	if _, err := s2.Get(KindResult, "k2"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("quarantined object resurrected after reopen: %v", err)
	}
	if rep := s2.Verify(); len(rep.Unrecoverable) != 0 || len(rep.Damaged) != 0 {
		t.Fatalf("verify not clean after quarantine: %+v", rep)
	}
}

func TestAppendReplication(t *testing.T) {
	p, m := t.TempDir(), t.TempDir()
	s := mustOpen(t, Options{Dir: p, Mirror: m})
	for i := 0; i < 3; i++ {
		tx := s.Begin()
		tx.Append("journal.jsonl", []byte(fmt.Sprintf(`{"fp":"f%d","status":"ok"}`, i)))
		mustCommit(t, tx)
	}
	pb, _ := os.ReadFile(filepath.Join(p, "journal.jsonl"))
	mb, _ := os.ReadFile(filepath.Join(m, "journal.jsonl"))
	if len(pb) == 0 || !bytes.Equal(pb, mb) {
		t.Fatalf("journal not replicated identically:\nprimary %q\nmirror  %q", pb, mb)
	}
	if n := strings.Count(string(pb), "\n"); n != 3 {
		t.Fatalf("want 3 journal lines, got %d", n)
	}
}

func TestBlobSegmentsRoundTrip(t *testing.T) {
	p, m := t.TempDir(), t.TempDir()
	s := mustOpen(t, Options{Dir: p, Mirror: m, SegmentSize: 64})
	blob := []byte(strings.Repeat("0123456789abcdef", 20)) // 320 B -> 5 segments
	tx := s.Begin()
	if err := tx.PutBlob(KindArtifact, "trace1", bytes.NewReader(blob)); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	segs, _ := filepath.Glob(filepath.Join(p, "vtart-trace1.json.seg*"))
	if len(segs) != 5 {
		t.Fatalf("want 5 segments, got %v", segs)
	}
	got, err := s.GetBlob(KindArtifact, "trace1")
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("blob round trip: %v (%d bytes)", err, len(got))
	}
	// Corrupt one segment on the primary: streaming read must heal it
	// from the mirror and still return clean bytes.
	if err := os.WriteFile(segs[2], []byte("garbage segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = s.GetBlob(KindArtifact, "trace1")
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("blob read after segment corruption: %v", err)
	}
	sb, _ := os.ReadFile(segs[2])
	if !bytes.Equal(sb, blob[2*64:3*64]) {
		t.Fatal("segment not repaired bit-identically")
	}
}

func TestFailoverReinstateFlipRoundTrip(t *testing.T) {
	p, m := t.TempDir(), t.TempDir()
	s := mustOpen(t, Options{Dir: p, Mirror: m})
	tx := s.Begin()
	tx.Put(KindResult, "before", []byte("committed-before-outage"))
	tx.Append("journal.jsonl", []byte(`{"fp":"before","status":"ok"}`))
	mustCommit(t, tx)

	if err := s.Failover(); err != nil {
		t.Fatal(err)
	}
	// During the outage, commits land on the mirror only.
	tx = s.Begin()
	tx.Put(KindResult, "during", []byte("committed-during-outage"))
	tx.Append("journal.jsonl", []byte(`{"fp":"during","status":"ok"}`))
	mustCommit(t, tx)
	if _, err := os.Stat(filepath.Join(p, "vtsim-during.json")); !os.IsNotExist(err) {
		t.Fatal("failed primary received a write during outage")
	}
	if got, err := s.Get(KindResult, "during"); err != nil || string(got) != "committed-during-outage" {
		t.Fatalf("read during outage: %v", err)
	}

	if err := s.Reinstate(); err != nil {
		t.Fatal(err)
	}
	// Reinstate must have back-filled the primary: object and journal.
	if b, err := os.ReadFile(filepath.Join(p, "vtsim-during.json")); err != nil || string(b) != "committed-during-outage" {
		t.Fatalf("primary not repair-synced on reinstate: %v", err)
	}
	pj, _ := os.ReadFile(filepath.Join(p, "journal.jsonl"))
	mj, _ := os.ReadFile(filepath.Join(m, "journal.jsonl"))
	if !bytes.Equal(pj, mj) || !strings.Contains(string(pj), `"fp":"during"`) {
		t.Fatalf("journal not synced on reinstate:\nprimary %q\nmirror  %q", pj, mj)
	}

	if err := s.Flip(); err != nil {
		t.Fatal(err)
	}
	if sides := s.Sides(); sides[0].Dir != m || sides[0].Role != "primary" {
		t.Fatalf("flip did not swap roles: %+v", sides)
	}
	// Every committed object must survive the full round trip.
	for _, key := range []string{"before", "during"} {
		if _, err := s.Get(KindResult, key); err != nil {
			t.Fatalf("object %s lost after failover/reinstate/flip: %v", key, err)
		}
	}
	if rep := s.Verify(); rep.Healthy != rep.Checked || len(rep.Damaged)+len(rep.Unrecoverable) != 0 {
		t.Fatalf("verify not clean after round trip: %+v", rep)
	}
}

func TestTransientEIORetries(t *testing.T) {
	dir := t.TempDir()
	// Fail the first write with a transient error: Commit itself absorbs
	// nothing pre-commit-point, so the transaction must roll back, report
	// a retryable error, and succeed when retried.
	hook := (&faultinject.StoreSpec{Op: faultinject.StoreOpWrite, N: 0, Kind: faultinject.StoreEIO}).StoreHook()
	s := mustOpen(t, Options{Dir: dir, Fault: hook})
	tx := s.Begin()
	tx.Put(KindResult, "eio", []byte("eventually-durable"))
	err := tx.Commit()
	if err == nil {
		t.Fatal("want first commit to fail with injected EIO")
	}
	if !IsTransient(err) {
		t.Fatalf("injected EIO should classify as transient: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("retried commit: %v", err)
	}
	if got, err := s.Get(KindResult, "eio"); err != nil || string(got) != "eventually-durable" {
		t.Fatalf("object absent after retried commit: %v", err)
	}
}

func TestWritePathBitFlipHealedByVerifiedWrite(t *testing.T) {
	p, m := t.TempDir(), t.TempDir()
	// Flip a bit in the very first staged payload write. The read-back
	// verification inside the commit protocol must catch and rewrite it,
	// so the commit succeeds with clean bytes on both sides.
	hook := (&faultinject.StoreSpec{Op: faultinject.StoreOpWrite, N: 0, Kind: faultinject.StoreBitFlip}).StoreHook()
	s := mustOpen(t, Options{Dir: p, Mirror: m, Fault: hook})
	payload := []byte("bytes that must land intact on disk")
	tx := s.Begin()
	tx.Put(KindResult, "flip", payload)
	mustCommit(t, tx)
	if !hook.Fired() {
		t.Fatal("bit-flip fault never fired")
	}
	for _, d := range []string{p, m} {
		b, err := os.ReadFile(filepath.Join(d, "vtsim-flip.json"))
		if err != nil || !bytes.Equal(b, payload) {
			t.Fatalf("flipped write not healed in %s: %v %q", d, err, b)
		}
	}
}

func TestReplicateBitFlipHealed(t *testing.T) {
	p, m := t.TempDir(), t.TempDir()
	// Find the write op that lands the mirror's replica copy, then rerun
	// with a bit-flip injected exactly there.
	rec := faultinject.NewStoreRecorder()
	s := mustOpen(t, Options{Dir: p, Mirror: m, Fault: rec})
	tx := s.Begin()
	tx.Put(KindResult, "rk", []byte("replicated payload"))
	mustCommit(t, tx)
	mirrorWrite := -1
	writes := 0
	for _, line := range rec.Trace() {
		if !strings.HasPrefix(line, "write ") {
			continue
		}
		if mirrorWrite < 0 && strings.HasPrefix(strings.TrimPrefix(line, "write "), m) {
			mirrorWrite = writes
		}
		writes++
	}
	if mirrorWrite < 0 {
		t.Fatalf("no mirror write in trace: %v", rec.Trace())
	}

	p2, m2 := t.TempDir(), t.TempDir()
	hook := (&faultinject.StoreSpec{Op: faultinject.StoreOpWrite, N: mirrorWrite, Kind: faultinject.StoreBitFlip}).StoreHook()
	s2 := mustOpen(t, Options{Dir: p2, Mirror: m2, Fault: hook})
	tx = s2.Begin()
	tx.Put(KindResult, "rk", []byte("replicated payload"))
	mustCommit(t, tx)
	if !hook.Fired() {
		t.Fatal("mirror bit-flip fault never fired")
	}
	mb, err := os.ReadFile(filepath.Join(m2, "vtsim-rk.json"))
	if err != nil || string(mb) != "replicated payload" {
		t.Fatalf("mirror copy not healed: %v %q", err, mb)
	}
	if rep := s2.Verify(); rep.Healthy != rep.Checked {
		t.Fatalf("verify after healed replicate: %+v", rep)
	}
}

func TestTornAppendDoesNotSwallowNextLine(t *testing.T) {
	// A crashed writer can leave a torn, newline-less tail. The next
	// append must not concatenate onto it: the healing newline isolates
	// the damage to the torn line itself.
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	if err := os.WriteFile(path, []byte("{\"fp\":\"complete\",\"status\":\"ok\"}\n{\"fp\":\"torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	var f fsio
	if err := f.appendFile(path, []byte(`{"fp":"next","status":"ok"}`)); err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(path)
	lines := strings.Split(strings.TrimRight(string(b), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 lines (good, torn, good), got %d: %q", len(lines), b)
	}
	if lines[2] != `{"fp":"next","status":"ok"}` {
		t.Fatalf("appended line damaged: %q", lines[2])
	}
}

func TestCommitPhaseTimings(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir(), Mirror: t.TempDir()})
	tx := s.Begin()
	if tx.Phases() != nil {
		t.Fatalf("phases before commit: %v", tx.Phases())
	}
	tx.Put(KindResult, "abc", []byte(`{"x":1}`))
	tx.Append("journal.jsonl", []byte(`{"line":1}`))
	mustCommit(t, tx)

	ph := tx.Phases()
	var names []string
	for _, p := range ph {
		names = append(names, p.Name)
		if p.Start.IsZero() || p.Dur < 0 {
			t.Fatalf("phase %s has bogus timing: %+v", p.Name, p)
		}
	}
	want := []string{"stage", "commit", "apply", "replicate"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("phases = %v, want %v", names, want)
	}
	// Phases tile: each starts where the previous ended (same captured
	// instant), so summed durations cover the whole protocol. Allow a
	// microsecond of wall-vs-monotonic rounding.
	for i := 1; i < len(ph); i++ {
		gap := ph[i].Start.Sub(ph[i-1].Start.Add(ph[i-1].Dur))
		if gap < -time.Microsecond || gap > time.Microsecond {
			t.Fatalf("phase %s start gap %v from previous end", ph[i].Name, gap)
		}
	}

	// A second commit on the same Tx (retry semantics) replaces the
	// timings instead of appending.
	mustCommit(t, tx)
	if n := len(tx.Phases()); n != 4 {
		t.Fatalf("phases after recommit = %d, want 4", n)
	}

	// Without a mirror there is no replicate phase.
	s2 := mustOpen(t, Options{Dir: t.TempDir()})
	tx2 := s2.Begin()
	tx2.Put(KindResult, "solo", []byte(`{}`))
	mustCommit(t, tx2)
	names = names[:0]
	for _, p := range tx2.Phases() {
		names = append(names, p.Name)
	}
	if strings.Join(names, ",") != "stage,commit,apply" {
		t.Fatalf("unmirrored phases = %v", names)
	}
}
