package resultstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

type objState int

const (
	objOK objState = iota
	objLegacy
	objMissing
	objCorrupt
	objErr
)

// readObject reads and classifies one object's head file on one side.
func (s *Store) readObject(sd *side, kind Kind, key string) ([]byte, objState) {
	e, indexed := sd.index[objKey{kind, key}]
	b, err := s.fs.readFile(s.objPath(sd, kind, key))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, objMissing
		}
		return nil, objErr
	}
	if !indexed {
		// Legacy object: present on disk, no index line. Served without
		// checksum verification — the compat path for cache directories
		// written before the store existed.
		return b, objLegacy
	}
	if sumHex(b) != e.SHA {
		return nil, objCorrupt
	}
	return b, objOK
}

// Get returns an object's payload (the head payload for segmented
// objects), verifying its end-to-end checksum. A corrupt or unreadable
// copy is healed from a healthy replica when one exists; with no
// healthy copy anywhere, corrupt files are quarantined and Get reports
// ErrNotFound so the caller recomputes.
func (s *Store) Get(kind Kind, key string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.get(kind, key)
}

func (s *Store) get(kind Kind, key string) ([]byte, error) {
	s.counters.Gets++
	var good []byte
	goodState := objMissing
	var goodSide *side
	var badSides []*side
	sawCorrupt := false
	attempted := 0
	for _, sd := range s.sides {
		if sd.failed {
			continue
		}
		attempted++
		b, st := s.readObject(sd, kind, key)
		if st == objOK || st == objLegacy {
			good, goodState, goodSide = b, st, sd
			break
		}
		if st == objCorrupt || st == objErr {
			if st == objCorrupt {
				sawCorrupt = true
			}
			badSides = append(badSides, sd)
		}
	}
	if good == nil {
		if sawCorrupt {
			for _, sd := range badSides {
				s.quarantineSide(sd, kind, key, "checksum mismatch, no healthy replica")
			}
		}
		s.counters.Misses++
		return nil, ErrNotFound
	}
	if attempted > 1 {
		// Served from a fallback side after the preferred one failed.
		s.counters.FailoverReads++
		s.event(Event{Op: "failover-read", Kind: string(kind), Key: key, Side: s.roleOf(goodSide)})
	}
	for _, sd := range badSides {
		s.repairObject(goodSide, sd, kind, key)
	}
	if goodState == objLegacy {
		s.counters.LegacyHits++
	} else {
		s.counters.Hits++
	}
	return good, nil
}

// GetBlob reassembles a segmented object, verifying the head and every
// segment checksum.
func (s *Store) GetBlob(kind Kind, key string) ([]byte, error) {
	r, err := s.OpenBlob(kind, key)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return io.ReadAll(r)
}

// OpenBlob streams a segmented object. Each segment is checksummed as
// it is read; a bad segment is healed from a healthy replica when one
// exists.
func (s *Store) OpenBlob(kind Kind, key string) (io.ReadCloser, error) {
	s.mu.Lock()
	head, err := s.get(kind, key)
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	var h blobHead
	if err := json.Unmarshal(head, &h); err != nil || h.Blob == 0 {
		return nil, fmt.Errorf("resultstore: %s-%s is not a segmented object", kind, key)
	}
	return &blobReader{s: s, kind: kind, key: key, segs: h.Segments}, nil
}

type blobReader struct {
	s    *Store
	kind Kind
	key  string
	segs []segInfo
	idx  int
	cur  *bytes.Reader
}

func (r *blobReader) Read(p []byte) (int, error) {
	for r.cur == nil || r.cur.Len() == 0 {
		if r.idx >= len(r.segs) {
			return 0, io.EOF
		}
		b, err := r.s.getSegment(r.kind, r.key, r.idx, r.segs[r.idx])
		if err != nil {
			return 0, err
		}
		r.cur = bytes.NewReader(b)
		r.idx++
	}
	return r.cur.Read(p)
}

func (r *blobReader) Close() error { return nil }

// getSegment reads and verifies one value segment, healing from a
// replica on corruption.
func (s *Store) getSegment(kind Kind, key string, idx int, want segInfo) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var badSides []*side
	for _, sd := range s.sides {
		if sd.failed {
			continue
		}
		p := segPath(s.objPath(sd, kind, key), idx)
		b, err := s.fs.readFile(p)
		if err == nil && sumHex(b) == want.SHA {
			for _, bad := range badSides {
				s.repairObject(sd, bad, kind, key)
			}
			return b, nil
		}
		badSides = append(badSides, sd)
	}
	for _, sd := range badSides {
		s.quarantineSide(sd, kind, key, fmt.Sprintf("segment %d unreadable or corrupt, no healthy replica", idx))
	}
	return nil, fmt.Errorf("resultstore: %s-%s segment %d: %w", kind, key, idx, ErrNotFound)
}

// repairObject copies an object (head and segments) from a healthy side
// to a damaged one, bit-identically, and re-indexes it there.
func (s *Store) repairObject(from, to *side, kind Kind, key string) {
	e, indexed := from.index[objKey{kind, key}]
	op := manifestOp{Kind: string(kind), Key: key}
	if indexed {
		op.SHA = e.SHA
		op.Size = e.Size
		for i := 0; i < e.Segs; i++ {
			op.Segs = append(op.Segs, segInfo{})
		}
		if e.Segs > 0 {
			// Segment checksums live in the head payload.
			head, err := s.fs.readFile(s.objPath(from, kind, key))
			if err != nil {
				return
			}
			var h blobHead
			if err := json.Unmarshal(head, &h); err != nil || len(h.Segments) != e.Segs {
				return
			}
			op.Segs = h.Segments
		}
	} else {
		// Healing from a legacy (unindexed) copy: adopt its current bytes.
		b, err := s.fs.readFile(s.objPath(from, kind, key))
		if err != nil {
			return
		}
		op.SHA = sumHex(b)
		op.Size = int64(len(b))
	}
	if s.replicatePut(from, to, "repair", op) {
		s.counters.Repairs++
		s.event(Event{Op: "repair", Kind: string(kind), Key: key, Side: s.roleOf(to)})
	}
}

// Quarantine moves an object's files aside (path -> path.corrupt) on
// every side where they exist and drops their index entries, so a
// damaged-but-undetectable-at-this-layer object (e.g. a stale envelope
// version) stops shadowing recomputation. Mirrors the pre-store
// quarantine semantics.
func (s *Store) Quarantine(kind Kind, key, reason string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sd := range s.sides {
		s.quarantineSide(sd, kind, key, reason)
	}
}

func (s *Store) quarantineSide(sd *side, kind Kind, key, reason string) {
	head := s.objPath(sd, kind, key)
	moved := false
	if _, err := os.Lstat(head); err == nil {
		if os.Rename(head, head+".corrupt") == nil {
			moved = true
		}
	}
	if e, ok := sd.index[objKey{kind, key}]; ok {
		for i := 0; i < e.Segs; i++ {
			sp := segPath(head, i)
			if _, err := os.Lstat(sp); err == nil {
				os.Rename(sp, sp+".corrupt")
			}
		}
		s.appendIndex(sd, indexEntry{Kind: string(kind), Key: key, Drop: true})
	}
	if moved {
		s.counters.Quarantines++
		s.event(Event{Op: "quarantine", Kind: string(kind), Key: key, Side: s.roleOf(sd), Detail: reason})
		fmt.Fprintf(os.Stderr, "resultstore: quarantined %s-%s on %s: %s\n", kind, key, s.roleOf(sd), reason)
	}
}
