package resultstore

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/faultinject"
)

// fsio funnels every filesystem operation of the store through the
// optional fault hook, so crash drills can die, tear, flip, or fail any
// single write, rename, or read the store performs.
type fsio struct {
	hook *faultinject.StoreHook
}

func (f fsio) apply(op faultinject.StoreOp, path string, data []byte) ([]byte, bool, error) {
	if f.hook == nil {
		return data, false, nil
	}
	return f.hook.Apply(op, path, data)
}

// die simulates process death after an operation the hook marked with
// dieAfter: the operation's effect is on disk, nothing later is.
func die(op faultinject.StoreOp, path string) {
	panic(&faultinject.StoreKill{Op: op, Path: path})
}

// writeFile creates (or truncates) path with data and fsyncs it.
func (f fsio) writeFile(path string, data []byte) error {
	b, dieAfter, err := f.apply(faultinject.StoreOpWrite, path, data)
	if err != nil {
		return err
	}
	werr := func() error {
		fh, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		if _, err := fh.Write(b); err != nil {
			fh.Close()
			return err
		}
		if err := fh.Sync(); err != nil {
			fh.Close()
			return err
		}
		return fh.Close()
	}()
	if dieAfter {
		die(faultinject.StoreOpWrite, path)
	}
	return werr
}

// appendFile durably appends one line (newline added here) to path,
// creating it if needed. If the file's current tail is not
// newline-terminated — a torn append from a crashed writer — the new
// line is written after a healing newline, so one torn line never
// swallows the next good one.
func (f fsio) appendFile(path string, line []byte) error {
	data := append(append([]byte(nil), line...), '\n')
	b, dieAfter, err := f.apply(faultinject.StoreOpWrite, path, data)
	if err != nil {
		return err
	}
	werr := func() error {
		fh, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_RDWR, 0o644)
		if err != nil {
			return err
		}
		defer fh.Close()
		if st, err := fh.Stat(); err == nil && st.Size() > 0 {
			tail := make([]byte, 1)
			if _, err := fh.ReadAt(tail, st.Size()-1); err == nil && tail[0] != '\n' {
				b = append([]byte{'\n'}, b...)
			}
		}
		if _, err := fh.Write(b); err != nil {
			return err
		}
		return fh.Sync()
	}()
	if dieAfter {
		die(faultinject.StoreOpWrite, path)
	}
	return werr
}

// rename atomically renames old to new and fsyncs the containing
// directory (best-effort: not all platforms support directory fsync).
func (f fsio) rename(oldpath, newpath string) error {
	_, dieAfter, err := f.apply(faultinject.StoreOpRename, newpath, nil)
	if err != nil {
		return err
	}
	rerr := os.Rename(oldpath, newpath)
	if rerr == nil {
		if d, err := os.Open(filepath.Dir(newpath)); err == nil {
			d.Sync()
			d.Close()
		}
	}
	if dieAfter {
		die(faultinject.StoreOpRename, newpath)
	}
	return rerr
}

// readFile reads path whole.
func (f fsio) readFile(path string) ([]byte, error) {
	_, dieAfter, err := f.apply(faultinject.StoreOpRead, path, nil)
	if err != nil {
		return nil, err
	}
	b, rerr := os.ReadFile(path)
	if dieAfter {
		die(faultinject.StoreOpRead, path)
	}
	return b, rerr
}

// retryOnce runs op, retrying a single time on error: enough to absorb
// an injected or real transient I/O fault without hiding persistent
// failures.
func retryOnce(op func() error) error {
	if err := op(); err == nil {
		return nil
	}
	return op()
}

// writeVerified writes data to path and reads it back, comparing the
// end-to-end checksum; one rewrite is attempted on mismatch. This
// catches write-path corruption (a flipped bit between memory and disk)
// before the commit protocol declares the payload durable.
func (f fsio) writeVerified(path string, data []byte, sha string) error {
	for attempt := 0; ; attempt++ {
		if err := f.writeFile(path, data); err != nil {
			return err
		}
		got, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if sumHex(got) == sha {
			return nil
		}
		if attempt == 1 {
			return fmt.Errorf("resultstore: write verification failed for %s", path)
		}
	}
}
