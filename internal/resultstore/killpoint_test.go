package resultstore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faultinject"
)

// The kill-point property test: enumerate every filesystem operation a
// representative transaction performs (staged writes, the redo record,
// the commit-point rename, apply renames, index and journal appends,
// and mirror replication), then re-run the same transaction once per
// operation with a randomized crash fault injected exactly there.
// Reopening the directories afterwards must always yield a valid store
// in which the transaction is either fully visible or fully absent —
// the all-or-nothing claim, proven at every point a process can die.

var (
	killBasePayload = []byte(`{"base":"committed before the drill"}`)
	killPayloadA    = []byte(strings.Repeat(`{"job":"a"}`, 30))
	killBlobB       = []byte(strings.Repeat("telemetry-ring-bytes-", 40)) // ~840 B -> 4 segments at 256
	killLineB       = []byte(`{"fp":"job-b","status":"ok"}`)
)

// killDrillCommit runs the drill's target transaction against s.
func killDrillCommit(t *testing.T, s *Store) error {
	t.Helper()
	tx := s.Begin()
	tx.Put(KindResult, "job-a", killPayloadA)
	if err := tx.PutBlob(KindArtifact, "job-b", bytes.NewReader(killBlobB)); err != nil {
		t.Fatalf("put blob: %v", err)
	}
	tx.Append("journal.jsonl", killLineB)
	return tx.Commit()
}

// killDrillBase seeds a committed object so every kill point also
// checks that prior state survives untouched.
func killDrillBase(t *testing.T, p, m string) {
	t.Helper()
	s := mustOpen(t, Options{Dir: p, Mirror: m, SegmentSize: 256})
	tx := s.Begin()
	tx.Put(KindResult, "base", killBasePayload)
	tx.Append("journal.jsonl", []byte(`{"fp":"base","status":"ok"}`))
	mustCommit(t, tx)
	s.Close()
}

func TestKillPointAllOrNothing(t *testing.T) {
	// Pass 1: record the operation trace of a clean run of the drill.
	p, m := t.TempDir(), t.TempDir()
	killDrillBase(t, p, m)
	rec := faultinject.NewStoreRecorder()
	s := mustOpen(t, Options{Dir: p, Mirror: m, SegmentSize: 256, Fault: rec})
	if err := killDrillCommit(t, s); err != nil {
		t.Fatalf("clean drill commit: %v", err)
	}
	trace := rec.Trace()
	if len(trace) < 15 {
		t.Fatalf("suspiciously short op trace (%d ops): %v", len(trace), trace)
	}

	// Pass 2: one subtest per operation, crash kind randomized but
	// deterministic per point.
	kinds := []faultinject.StoreFaultKind{
		faultinject.StoreCrash, faultinject.StoreCrashAfter, faultinject.StoreTruncate,
	}
	rng := rand.New(rand.NewSource(8))
	for i := range trace {
		kind := kinds[rng.Intn(len(kinds))]
		opName := strings.Fields(trace[i])[0]
		t.Run(fmt.Sprintf("op%02d-%s-%s", i, opName, kind), func(t *testing.T) {
			runKillPoint(t, i, kind)
		})
	}
}

func runKillPoint(t *testing.T, point int, kind faultinject.StoreFaultKind) {
	p, m := t.TempDir(), t.TempDir()
	killDrillBase(t, p, m)
	hook := (&faultinject.StoreSpec{Op: faultinject.StoreOpAny, N: point, Kind: kind}).StoreHook()
	s := mustOpen(t, Options{Dir: p, Mirror: m, SegmentSize: 256, Fault: hook})
	killed := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(*faultinject.StoreKill); !ok {
					panic(r)
				}
				killed = true
			}
		}()
		if err := killDrillCommit(t, s); err != nil {
			t.Errorf("commit returned error instead of dying: %v", err)
		}
	}()
	if !killed || !hook.Fired() {
		t.Fatalf("kill fault did not fire (killed=%v fired=%v)", killed, hook.Fired())
	}

	// Simulated reboot: abandon the dead instance, reopen and recover.
	s2 := mustOpen(t, Options{Dir: p, Mirror: m, SegmentSize: 256})

	// Prior committed state is untouched.
	if b, err := s2.Get(KindResult, "base"); err != nil || !bytes.Equal(b, killBasePayload) {
		t.Fatalf("pre-existing object damaged by crash at point %d: %v", point, err)
	}

	// All-or-nothing: the plain object, the blob, and the journal line
	// agree — all present with exact bytes, or all absent.
	aGot, aErr := s2.Get(KindResult, "job-a")
	bGot, bErr := s2.GetBlob(KindArtifact, "job-b")
	journal, _ := os.ReadFile(filepath.Join(p, "journal.jsonl"))
	lineVisible := strings.Contains(string(journal), `"fp":"job-b"`)
	committed := aErr == nil
	if aErr != nil && !errors.Is(aErr, ErrNotFound) {
		t.Fatalf("get job-a: %v", aErr)
	}
	if committed && !bytes.Equal(aGot, killPayloadA) {
		t.Fatalf("committed object has wrong bytes")
	}
	if (bErr == nil) != committed {
		t.Fatalf("torn transaction: object committed=%v but blob err=%v", committed, bErr)
	}
	if committed && !bytes.Equal(bGot, killBlobB) {
		t.Fatalf("committed blob has wrong bytes")
	}
	if lineVisible != committed {
		t.Fatalf("torn transaction: object committed=%v but journal line visible=%v", committed, lineVisible)
	}

	// The recovered store audits clean: nothing damaged, nothing torn.
	if rep := s2.Verify(); len(rep.Damaged) != 0 || len(rep.Unrecoverable) != 0 {
		t.Fatalf("verify after recovery: %+v", rep)
	}

	// Recovery is idempotent: a second reopen changes nothing.
	s3 := mustOpen(t, Options{Dir: p, Mirror: m, SegmentSize: 256})
	aGot2, aErr2 := s3.Get(KindResult, "job-a")
	if (aErr2 == nil) != committed || (committed && !bytes.Equal(aGot2, killPayloadA)) {
		t.Fatalf("second recovery changed visibility: committed=%v err=%v", committed, aErr2)
	}
}
