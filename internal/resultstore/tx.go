package resultstore

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"
)

// manifest is one transaction's redo record: everything needed to roll
// the transaction forward after the commit point, with end-to-end
// checksums for every staged payload.
type manifest struct {
	Tx  string       `json:"tx"`
	Ops []manifestOp `json:"ops"`
}

type manifestOp struct {
	Type   string    `json:"type"` // "put" or "append"
	Kind   string    `json:"kind,omitempty"`
	Key    string    `json:"key,omitempty"`
	SHA    string    `json:"sha256,omitempty"` // head payload checksum
	Size   int64     `json:"size,omitempty"`   // logical object size
	Segs   []segInfo `json:"segs,omitempty"`   // per-segment checksums
	Staged []string  `json:"staged,omitempty"` // staged file names: head, then segments
	Rel    string    `json:"rel,omitempty"`    // append target, slash-relative to the side dir
	Line   []byte    `json:"line,omitempty"`   // append payload (one line, no newline)
}

type segInfo struct {
	SHA  string `json:"sha256"`
	Size int64  `json:"size"`
}

// blobHead is the head payload of a segmented object: the manifest of
// its value segments, itself checksummed like any plain object.
type blobHead struct {
	Blob     int       `json:"resultstore_blob"` // format version
	Size     int64     `json:"size"`
	Segments []segInfo `json:"segments"`
}

type txOp struct {
	put     bool
	kind    Kind
	key     string
	payload []byte   // object payload, or blob head JSON
	segs    [][]byte // value segments (blob puts only)
	size    int64    // logical size
	rel     string
	line    []byte
}

// Tx accumulates puts and appends that commit atomically. A Tx is not
// safe for concurrent use; Commit may be retried after a transient
// error (the operations are retained until a commit succeeds).
type Tx struct {
	s      *Store
	ops    []txOp
	phases []TxPhase
}

// TxPhase is the wall-clock timing of one commit-protocol phase:
// "stage" (checksummed staging writes), "commit" (redo record write +
// the commit-point rename), "apply" (staged files renamed into place
// and indexed), "replicate" (mirror copy-through). Observability-only;
// the harness tracer files these as store.* spans.
type TxPhase struct {
	Name  string
	Start time.Time
	Dur   time.Duration
}

// Phases returns the phase timings of the most recent Commit attempt
// (nil before the first). The returned slice is owned by the Tx.
func (t *Tx) Phases() []TxPhase { return t.phases }

// phase appends one timing. now is captured by the caller at phase
// start so a phase's Start lines up with the previous phase's end.
func (t *Tx) phase(name string, start time.Time) time.Time {
	end := time.Now()
	t.phases = append(t.phases, TxPhase{Name: name, Start: start, Dur: end.Sub(start)})
	return end
}

// Begin starts a transaction.
func (s *Store) Begin() *Tx { return &Tx{s: s} }

// Put stages one plain object write.
func (t *Tx) Put(kind Kind, key string, payload []byte) {
	p := append([]byte(nil), payload...)
	t.ops = append(t.ops, txOp{put: true, kind: kind, key: key, payload: p, size: int64(len(p))})
}

// PutBlob stages one segmented object write, splitting r into
// checksummed value segments of the store's segment size.
func (t *Tx) PutBlob(kind Kind, key string, r io.Reader) error {
	all, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("resultstore: read blob %s-%s: %w", kind, key, err)
	}
	segSize := t.s.segSize
	var segs [][]byte
	head := blobHead{Blob: 1, Size: int64(len(all))}
	for off := 0; off < len(all) || len(segs) == 0; off += segSize {
		end := off + segSize
		if end > len(all) {
			end = len(all)
		}
		seg := append([]byte(nil), all[off:end]...)
		segs = append(segs, seg)
		head.Segments = append(head.Segments, segInfo{SHA: sumHex(seg), Size: int64(len(seg))})
	}
	hb, err := json.Marshal(&head)
	if err != nil {
		return err
	}
	t.ops = append(t.ops, txOp{put: true, kind: kind, key: key, payload: hb, segs: segs, size: head.Size})
	return nil
}

// Append stages one journal-style line append to rel (slash-relative to
// the store directory), replicated to the mirror like any object write.
func (t *Tx) Append(rel string, line []byte) {
	t.ops = append(t.ops, txOp{rel: rel, line: append([]byte(nil), line...)})
}

// Commit runs the commit protocol: stage, write redo record, rename to
// commit record (the commit point), apply, replicate, release. An error
// return means the transaction did not commit and was rolled back; it
// may be retried. After the commit point Commit returns nil even if an
// apply step failed — the surviving commit record re-applies on the
// next Open.
func (t *Tx) Commit() error {
	if len(t.ops) == 0 {
		return nil
	}
	t.phases = nil // fresh timings per attempt
	phaseStart := time.Now()
	s := t.s
	s.mu.Lock()
	defer s.mu.Unlock()
	sd := s.serving()
	if sd == nil {
		return fmt.Errorf("resultstore: no healthy side to commit to")
	}
	s.txSeq++
	txid := fmt.Sprintf("tx-%d-%d", os.Getpid(), s.txSeq)
	stagingDir := filepath.Join(sd.dir, vtstoreDir, "staging")
	walDir := filepath.Join(sd.dir, vtstoreDir, "wal")
	redoPath := filepath.Join(walDir, txid+".redo")
	commitPath := filepath.Join(walDir, txid+".commit")

	var stagedPaths []string
	rollback := func(err error) error {
		for _, p := range stagedPaths {
			os.Remove(p)
		}
		os.Remove(redoPath)
		return err
	}

	m := manifest{Tx: txid}
	for i, op := range t.ops {
		if !op.put {
			m.Ops = append(m.Ops, manifestOp{Type: "append", Rel: op.rel, Line: op.line})
			continue
		}
		mo := manifestOp{
			Type: "put", Kind: string(op.kind), Key: op.key,
			SHA: sumHex(op.payload), Size: op.size,
		}
		files := append([][]byte{op.payload}, op.segs...)
		shas := []string{mo.SHA}
		for _, seg := range op.segs {
			si := segInfo{SHA: sumHex(seg), Size: int64(len(seg))}
			mo.Segs = append(mo.Segs, si)
			shas = append(shas, si.SHA)
		}
		for j, b := range files {
			name := fmt.Sprintf("%s-%d.%d", txid, i, j)
			p := filepath.Join(stagingDir, name)
			if err := s.fs.writeVerified(p, b, shas[j]); err != nil {
				return rollback(fmt.Errorf("resultstore: stage %s: %w", name, err))
			}
			stagedPaths = append(stagedPaths, p)
			mo.Staged = append(mo.Staged, name)
		}
		m.Ops = append(m.Ops, mo)
	}
	phaseStart = t.phase("stage", phaseStart)
	mb, err := json.Marshal(&m)
	if err != nil {
		return rollback(err)
	}
	if err := s.fs.writeFile(redoPath, mb); err != nil {
		return rollback(fmt.Errorf("resultstore: write redo record: %w", err))
	}
	// The commit point: after this rename succeeds, the transaction is
	// durable — recovery rolls it forward even if everything below fails.
	if err := s.fs.rename(redoPath, commitPath); err != nil {
		return rollback(fmt.Errorf("resultstore: commit %s: %w", txid, err))
	}
	phaseStart = t.phase("commit", phaseStart)
	s.counters.Commits++
	ok := s.applyManifest(sd, &m)
	phaseStart = t.phase("apply", phaseStart)
	if other := s.otherHealthy(sd); ok && other != nil {
		ok = s.replicate(sd, other, &m)
		t.phase("replicate", phaseStart)
	}
	if ok {
		os.Remove(commitPath)
	} else {
		// Leave the commit record: the next Open finishes the apply.
		s.event(Event{Op: "commit-deferred", Side: s.roleOf(sd), Detail: txid})
	}
	return nil
}

// objFiles lists an op's final file names on a side: head, then
// segments.
func (s *Store) objFiles(sd *side, op manifestOp) []string {
	head := s.objPath(sd, Kind(op.Kind), op.Key)
	files := []string{head}
	for i := range op.Segs {
		files = append(files, segPath(head, i))
	}
	return files
}

// applyManifest rolls a committed manifest forward on the side that
// owns its staging area. Idempotent: a staged file already renamed on a
// previous pass is verified in place instead. Callers hold s.mu.
func (s *Store) applyManifest(owner *side, m *manifest) bool {
	stagingDir := filepath.Join(owner.dir, vtstoreDir, "staging")
	allOK := true
	for _, op := range m.Ops {
		switch op.Type {
		case "put":
			if !s.applyPut(owner, stagingDir, m.Tx, op) {
				allOK = false
			}
		case "append":
			target := filepath.Join(owner.dir, filepath.FromSlash(op.Rel))
			if err := retryOnce(func() error { return s.fs.appendFile(target, op.Line) }); err != nil {
				allOK = false
				s.event(Event{Op: "apply-failed", Side: s.roleOf(owner), Detail: fmt.Sprintf("append %s: %v", op.Rel, err)})
			}
		}
	}
	return allOK
}

// applyPut moves one put's staged files into place and indexes it.
func (s *Store) applyPut(owner *side, stagingDir, txid string, op manifestOp) bool {
	dsts := s.objFiles(owner, op)
	shas := []string{op.SHA}
	for _, si := range op.Segs {
		shas = append(shas, si.SHA)
	}
	for j, name := range op.Staged {
		if j >= len(dsts) {
			return false
		}
		sp := filepath.Join(stagingDir, name)
		if _, err := os.Lstat(sp); err == nil {
			if err := retryOnce(func() error { return s.fs.rename(sp, dsts[j]) }); err != nil {
				s.event(Event{Op: "apply-failed", Side: s.roleOf(owner), Kind: op.Kind, Key: op.Key, Detail: err.Error()})
				return false
			}
			continue
		}
		// Staged file gone: a previous pass applied it. Verify in place.
		b, err := s.fs.readFile(dsts[j])
		if err != nil || sumHex(b) != shas[j] {
			s.event(Event{Op: "damaged", Side: s.roleOf(owner), Kind: op.Kind, Key: op.Key,
				Detail: "staged payload lost and final file invalid"})
			return false
		}
	}
	if err := s.appendIndex(owner, indexEntry{
		Kind: op.Kind, Key: op.Key, SHA: op.SHA, Size: op.Size, Segs: len(op.Segs), Tx: txid,
	}); err != nil {
		s.event(Event{Op: "apply-failed", Side: s.roleOf(owner), Kind: op.Kind, Key: op.Key, Detail: err.Error()})
		return false
	}
	return true
}

// replicate copies a committed manifest's effects from the owner side to
// another side, verifying every payload's checksum on the way through.
// Callers hold s.mu.
func (s *Store) replicate(from, to *side, m *manifest) bool {
	allOK := true
	for _, op := range m.Ops {
		switch op.Type {
		case "put":
			if !s.replicatePut(from, to, m.Tx, op) {
				allOK = false
			}
		case "append":
			target := filepath.Join(to.dir, filepath.FromSlash(op.Rel))
			if err := retryOnce(func() error { return s.fs.appendFile(target, op.Line) }); err != nil {
				allOK = false
				s.event(Event{Op: "replicate-failed", Side: s.roleOf(to), Detail: fmt.Sprintf("append %s: %v", op.Rel, err)})
			}
		}
	}
	return allOK
}

func (s *Store) replicatePut(from, to *side, txid string, op manifestOp) bool {
	srcs := s.objFiles(from, op)
	dsts := s.objFiles(to, op)
	shas := []string{op.SHA}
	for _, si := range op.Segs {
		shas = append(shas, si.SHA)
	}
	for j := range srcs {
		b, err := s.fs.readFile(srcs[j])
		if err != nil || sumHex(b) != shas[j] {
			s.event(Event{Op: "replicate-failed", Side: s.roleOf(to), Kind: op.Kind, Key: op.Key,
				Detail: "source payload unreadable or corrupt"})
			return false
		}
		tmp := filepath.Join(to.dir, vtstoreDir, "staging", fmt.Sprintf("repl-%s-%s", txid, filepath.Base(dsts[j])))
		if err := s.fs.writeVerified(tmp, b, shas[j]); err != nil {
			s.event(Event{Op: "replicate-failed", Side: s.roleOf(to), Kind: op.Kind, Key: op.Key, Detail: err.Error()})
			return false
		}
		if err := retryOnce(func() error { return s.fs.rename(tmp, dsts[j]) }); err != nil {
			os.Remove(tmp)
			s.event(Event{Op: "replicate-failed", Side: s.roleOf(to), Kind: op.Kind, Key: op.Key, Detail: err.Error()})
			return false
		}
	}
	if err := s.appendIndex(to, indexEntry{
		Kind: op.Kind, Key: op.Key, SHA: op.SHA, Size: op.Size, Segs: len(op.Segs), Tx: txid,
	}); err != nil {
		return false
	}
	return true
}
