// Package event provides the discrete-event spine of the simulator. The
// GPU engine advances the clock cycle by cycle; components (caches, DRAM
// partitions, execution pipelines, the Virtual Thread swap engine)
// schedule future work instead of being ticked every cycle, which keeps
// the simulator fast and the timing code local to each component.
//
// Two backends implement the same deterministic contract — events fire in
// (cycle, scheduling-order) order:
//
//   - the default is a bucketed timing wheel (calendar queue): events due
//     inside a fixed window land in per-cycle buckets whose slices are
//     recycled across rotations, and far-future events wait in a small
//     overflow heap until the window reaches them. Post/At and the drain
//     loop allocate nothing in steady state.
//   - NewHeapQueue builds the reference binary-heap backend
//     (gpu.Options.DisableEventWheel). It orders by the identical
//     (cycle, seq) key, so the two backends must be observationally
//     equivalent; the property tests in this package and gpu's
//     equivalence suite enforce that.
//
// Hot paths schedule typed events (Post): a Handler, a small kind enum
// private to that handler, and two operand words — no closure allocation.
// The Func form (At/After) remains for cold paths and tests.
package event

import "math/bits"

// Func is a scheduled callback (closure form). Scheduling a Func
// allocates the closure; simulator hot paths use typed events (Post)
// instead, and Func remains for rare, cold sites and tests.
type Func func()

// Handler consumes typed events. Implementations dispatch on kind; kind
// numbering is private to each handler (dispatch is a method call on the
// scheduled handler), so components define their own enums without any
// central registry.
type Handler interface {
	HandleEvent(kind uint8, a, b uint32)
}

// Completion names a typed event to deliver later: a handler, a kind,
// and two operand words. It is the zero-allocation replacement for
// `done func()` continuations on the memory path — a Completion is a
// plain value that components store (MSHR entries, DRAM queue slots) and
// fire or schedule when the data arrives.
type Completion struct {
	H    Handler
	Kind uint8
	A, B uint32
}

// Valid reports whether the completion names a handler (writes pass a
// zero Completion where loads pass a real one).
func (c Completion) Valid() bool { return c.H != nil }

// Fire delivers the completion synchronously.
func (c Completion) Fire() { c.H.HandleEvent(c.Kind, c.A, c.B) }

// CompletionFunc wraps fn as a Completion. It allocates (one adapter per
// call) and exists for tests and cold paths that want the closure form
// through a Completion-shaped API.
func CompletionFunc(fn Func) Completion {
	return Completion{H: &funcHandler{fn: fn}}
}

type funcHandler struct{ fn Func }

func (h *funcHandler) HandleEvent(uint8, uint32, uint32) { h.fn() }

// item is one scheduled event: a (cycle, seq) ordering key plus either a
// closure (fn non-nil) or a typed (handler, kind, operands) record.
type item struct {
	cycle int64
	seq   uint64 // FIFO tie-break for determinism
	fn    Func
	h     Handler
	kind  uint8
	a, b  uint32
}

func (it *item) run() {
	if it.fn != nil {
		it.fn()
		return
	}
	it.h.HandleEvent(it.kind, it.a, it.b)
}

func itemLess(x, y *item) bool {
	if x.cycle != y.cycle {
		return x.cycle < y.cycle
	}
	return x.seq < y.seq
}

// heapPush inserts it into the binary heap ordered by (cycle, seq).
func heapPush(h *[]item, it item) {
	*h = append(*h, it)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !itemLess(&s[i], &s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

// heapPop removes and returns the minimum item.
func heapPop(h *[]item) item {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = item{} // release handler/closure references
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && itemLess(&s[l], &s[m]) {
			m = l
		}
		if r < n && itemLess(&s[r], &s[m]) {
			m = r
		}
		if m == i {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

// Wheel geometry: the bucket window covers wheelSize consecutive cycles,
// so bucket (cycle & wheelMask) holds exactly one distinct cycle at a
// time and drains as a FIFO. The window comfortably exceeds every
// steady-state latency in the simulator (DRAM round trips, swap
// latencies); anything past it overflows to a heap and migrates into
// buckets as the window slides, which preserves (cycle, seq) order
// because migration pops the heap in exactly that order and always runs
// before any direct insert for the newly covered cycles.
const (
	wheelBits = 12
	wheelSize = 1 << wheelBits
	wheelMask = wheelSize - 1
	occWords  = wheelSize / 64
)

// Queue is a deterministic discrete-event queue. Events scheduled for the
// same cycle run in scheduling order. Queue is not safe for concurrent
// use; each simulation owns one.
type Queue struct {
	now     int64
	seq     uint64
	pending int

	useHeap bool
	heap    []item // reference backend (NewHeapQueue)

	// Wheel backend.
	buckets  [][]item       // bucket i holds the one window cycle ≡ i (mod wheelSize)
	occ      []uint64       // occupancy bitmap over buckets
	occSum   uint64         // bit w set when occ[w] != 0
	overflow []item         // min-heap: events at or past wheelEnd
	wheelEnd int64          // exclusive end of the bucket window [now, wheelEnd)
	nextDue  int64          // earliest pending cycle; valid while pending > 0
}

// initialBucketCap is the per-bucket capacity carved out of one shared
// slab at construction, sized so typical per-cycle event counts never
// grow a bucket; busier buckets reallocate individually and keep the
// larger capacity across rotations.
const initialBucketCap = 8

// NewQueue returns an empty timing-wheel queue at cycle 0.
func NewQueue() *Queue {
	slab := make([]item, wheelSize*initialBucketCap)
	buckets := make([][]item, wheelSize)
	for i := range buckets {
		buckets[i] = slab[i*initialBucketCap : i*initialBucketCap : (i+1)*initialBucketCap]
	}
	return &Queue{
		buckets:  buckets,
		occ:      make([]uint64, occWords),
		wheelEnd: wheelSize,
	}
}

// NewHeapQueue returns an empty queue at cycle 0 backed by the reference
// binary heap instead of the timing wheel. Both backends order events by
// the same (cycle, seq) key; this one exists to enforce and debug that
// equivalence (gpu.Options.DisableEventWheel).
func NewHeapQueue() *Queue { return &Queue{useHeap: true} }

// Reset returns the queue to cycle 0 with no pending events, retaining
// bucket and heap capacity so a reused queue schedules without
// allocating. The caller must not reuse a queue that still has pending
// events from an aborted run without calling Reset.
func (q *Queue) Reset() {
	if q.pending > 0 {
		// Drop leftovers, releasing references.
		for i := range q.heap {
			q.heap[i] = item{}
		}
		for i := range q.overflow {
			q.overflow[i] = item{}
		}
		for b := range q.buckets {
			bk := q.buckets[b]
			for i := range bk {
				bk[i] = item{}
			}
			q.buckets[b] = bk[:0]
		}
		for i := range q.occ {
			q.occ[i] = 0
		}
		q.occSum = 0
	}
	q.heap = q.heap[:0]
	q.overflow = q.overflow[:0]
	q.now, q.seq, q.pending = 0, 0, 0
	if !q.useHeap {
		q.wheelEnd = wheelSize
	}
}

// Now returns the current cycle.
func (q *Queue) Now() int64 { return q.now }

// post clamps, stamps, and stores one event.
func (q *Queue) post(it item) {
	if it.cycle < q.now {
		it.cycle = q.now
	}
	it.seq = q.seq
	q.seq++
	if q.pending == 0 || it.cycle < q.nextDue {
		q.nextDue = it.cycle
	}
	q.pending++
	if q.useHeap {
		heapPush(&q.heap, it)
		return
	}
	if it.cycle < q.wheelEnd {
		q.bucketAdd(it)
		return
	}
	heapPush(&q.overflow, it)
}

func (q *Queue) bucketAdd(it item) {
	b := int(it.cycle & wheelMask)
	q.buckets[b] = append(q.buckets[b], it)
	q.occ[b>>6] |= 1 << (uint(b) & 63)
	q.occSum |= 1 << (uint(b) >> 6)
}

// At schedules fn to run at the given cycle.
//
// Past-cycle semantics, pinned: scheduling at a cycle at or before Now()
// silently clamps to Now() — the event fires the next time the current
// cycle is (re)drained, including later in the very AdvanceTo drain that
// is running right now. Components rely on this when a completion for
// "this cycle" is scheduled from inside another event; it must never
// become an error or be reordered before already-queued same-cycle
// events.
func (q *Queue) At(cycle int64, fn Func) { q.post(item{cycle: cycle, fn: fn}) }

// After schedules fn delay cycles from now.
func (q *Queue) After(delay int64, fn Func) { q.post(item{cycle: q.now + delay, fn: fn}) }

// Post schedules a typed event at the given cycle with At's clamp
// semantics. It allocates nothing.
func (q *Queue) Post(cycle int64, h Handler, kind uint8, a, b uint32) {
	q.post(item{cycle: cycle, h: h, kind: kind, a: a, b: b})
}

// PostAfter schedules a typed event delay cycles from now.
func (q *Queue) PostAfter(delay int64, h Handler, kind uint8, a, b uint32) {
	q.post(item{cycle: q.now + delay, h: h, kind: kind, a: a, b: b})
}

// PostC schedules a stored Completion at the given cycle.
func (q *Queue) PostC(cycle int64, c Completion) {
	q.post(item{cycle: cycle, h: c.H, kind: c.Kind, a: c.A, b: c.B})
}

// slideWindow extends the bucket window to [now, now+wheelSize),
// migrating overflow events that the window now covers. The overflow heap
// pops in (cycle, seq) order and migration precedes any direct insert for
// the newly covered cycles, so bucket order stays FIFO per cycle.
func (q *Queue) slideWindow() {
	end := q.now + wheelSize
	if end <= q.wheelEnd {
		return
	}
	q.wheelEnd = end
	for len(q.overflow) > 0 && q.overflow[0].cycle < end {
		q.bucketAdd(heapPop(&q.overflow))
	}
}

// scanBuckets returns the earliest occupied bucket cycle at or after
// from. The caller guarantees at least one bucket is occupied and that
// every occupied cycle is >= from.
func (q *Queue) scanBuckets(from int64) int64 {
	i0 := int(from & wheelMask)
	w0, b0 := i0>>6, uint(i0&63)
	for k := 0; k <= occWords; k++ {
		w := (w0 + k) & (occWords - 1)
		if q.occSum&(1<<uint(w)) == 0 {
			continue
		}
		word := q.occ[w]
		if k == 0 {
			word &= ^uint64(0) << b0
		} else if k == occWords {
			word &= 1<<b0 - 1
		}
		if word == 0 {
			continue
		}
		bkt := w<<6 + bits.TrailingZeros64(word)
		d := (int64(bkt) - int64(i0)) & wheelMask
		return from + d
	}
	panic("event: scanBuckets on empty wheel")
}

// recomputeNextDue refreshes the cached earliest pending cycle after the
// bucket at from-1 drained. Occupied buckets always precede every
// overflow event (overflow holds only cycles >= wheelEnd).
func (q *Queue) recomputeNextDue(from int64) {
	if q.pending == 0 {
		return
	}
	if q.occSum != 0 {
		q.nextDue = q.scanBuckets(from)
		return
	}
	q.nextDue = q.overflow[0].cycle
}

// AdvanceTo sets the clock to cycle and runs every event due at or before
// it, in (cycle, scheduling-order) order. Events may schedule new events,
// including for the current cycle (which run within this same drain).
func (q *Queue) AdvanceTo(cycle int64) {
	if q.useHeap {
		for len(q.heap) > 0 && q.heap[0].cycle <= cycle {
			it := heapPop(&q.heap)
			q.pending--
			if it.cycle > q.now {
				q.now = it.cycle
			}
			it.run()
		}
		if cycle > q.now {
			q.now = cycle
		}
		return
	}
	for q.pending > 0 && q.nextDue <= cycle {
		c := q.nextDue
		if c > q.now {
			q.now = c
		}
		q.slideWindow()
		b := int(c & wheelMask)
		// Events may append to this same bucket mid-drain (At(now) from
		// inside an event); the bounds check re-reads the slice, so those
		// run in this pass too, in scheduling order.
		for i := 0; i < len(q.buckets[b]); i++ {
			it := q.buckets[b][i]
			q.buckets[b][i] = item{}
			q.pending--
			it.run()
		}
		q.buckets[b] = q.buckets[b][:0]
		q.occ[b>>6] &^= 1 << (uint(b) & 63)
		if q.occ[b>>6] == 0 {
			q.occSum &^= 1 << (uint(b) >> 6)
		}
		q.recomputeNextDue(c + 1)
	}
	if cycle > q.now {
		q.now = cycle
		q.slideWindow()
	}
}

// Pending returns the number of scheduled events.
func (q *Queue) Pending() int { return q.pending }

// NextCycle returns the cycle of the earliest pending event, and ok=false
// when the queue is empty. Used by the engine to skip idle cycles; the
// wheel answers from a cached earliest-due cycle maintained on insert and
// drain, replacing the heap peek that used to gate SM sleep.
func (q *Queue) NextCycle() (int64, bool) {
	if q.pending == 0 {
		return 0, false
	}
	if q.useHeap {
		return q.heap[0].cycle, true
	}
	return q.nextDue, true
}

// Scheduler is the scheduling surface shared by the global Queue and the
// per-SM Lanes: components program against it so the engine can reroute
// their event traffic through a lane during parallel stepping.
type Scheduler interface {
	Now() int64
	At(cycle int64, fn Func)
	After(delay int64, fn Func)
	Post(cycle int64, h Handler, kind uint8, a, b uint32)
	PostAfter(delay int64, h Handler, kind uint8, a, b uint32)
}

var (
	_ Scheduler = (*Queue)(nil)
	_ Scheduler = (*Lane)(nil)
)

// Lane is one SM's private on-ramp to the shared queue. Outside a
// buffering window it passes every schedule straight through (the
// sequential engine never pays for it). During the parallel engine's step
// phase each SM buffers into its own lane without locking; the engine then
// commits the lanes in ascending SM-index order, which reproduces the seq
// numbers — and therefore the same-cycle event ordering — of the
// sequential engine exactly.
type Lane struct {
	q         *Queue
	buffering bool
	buf       []item // seq unused; order is positional
}

// NewLane returns a pass-through lane over the queue.
func NewLane(q *Queue) *Lane { return &Lane{q: q} }

// Now returns the shared clock. The engine only advances the clock between
// stepping windows, so concurrent readers are safe.
func (l *Lane) Now() int64 { return l.q.Now() }

func (l *Lane) post(it item) {
	if !l.buffering {
		l.q.post(it)
		return
	}
	if it.cycle < l.q.now {
		it.cycle = l.q.now // clamp like Queue.At; now is frozen until commit
	}
	l.buf = append(l.buf, it)
}

// At schedules fn at the given cycle: directly on the queue when passing
// through, into the lane's buffer during a stepping window.
func (l *Lane) At(cycle int64, fn Func) { l.post(item{cycle: cycle, fn: fn}) }

// After schedules fn delay cycles from now.
func (l *Lane) After(delay int64, fn Func) { l.post(item{cycle: l.q.now + delay, fn: fn}) }

// Post schedules a typed event at the given cycle (allocation-free in
// pass-through mode; amortized-free while buffering).
func (l *Lane) Post(cycle int64, h Handler, kind uint8, a, b uint32) {
	l.post(item{cycle: cycle, h: h, kind: kind, a: a, b: b})
}

// PostAfter schedules a typed event delay cycles from now.
func (l *Lane) PostAfter(delay int64, h Handler, kind uint8, a, b uint32) {
	l.post(item{cycle: l.q.now + delay, h: h, kind: kind, a: a, b: b})
}

// StartBuffering opens a stepping window: schedules are held in the lane
// until Commit.
func (l *Lane) StartBuffering() { l.buffering = true }

// Commit flushes buffered schedules into the queue in the order they were
// made and returns the lane to pass-through mode.
func (l *Lane) Commit() {
	l.buffering = false
	for i := range l.buf {
		l.q.post(l.buf[i])
		l.buf[i] = item{} // release references
	}
	l.buf = l.buf[:0]
}

// MinPending returns the earliest buffered (uncommitted) cycle, and
// ok=false when the lane is empty. The engine's idle-skip consults every
// lane so a buffered wakeup is never skipped past.
func (l *Lane) MinPending() (int64, bool) {
	if len(l.buf) == 0 {
		return 0, false
	}
	min := l.buf[0].cycle
	for i := range l.buf[1:] {
		if c := l.buf[1+i].cycle; c < min {
			min = c
		}
	}
	return min, true
}
