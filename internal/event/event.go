// Package event provides the discrete-event spine of the simulator: a
// min-heap of callbacks keyed by cycle. The GPU engine advances the clock
// cycle by cycle; components (caches, DRAM partitions, execution pipelines,
// the Virtual Thread swap engine) schedule future work instead of being
// ticked every cycle, which keeps the simulator fast and the timing code
// local to each component.
package event

import "container/heap"

// Func is a scheduled callback.
type Func func()

type item struct {
	cycle int64
	seq   uint64 // FIFO tie-break for determinism
	fn    Func
}

type itemHeap []item

func (h itemHeap) Len() int { return len(h) }
func (h itemHeap) Less(i, j int) bool {
	if h[i].cycle != h[j].cycle {
		return h[i].cycle < h[j].cycle
	}
	return h[i].seq < h[j].seq
}
func (h itemHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *itemHeap) Push(x any)   { *h = append(*h, x.(item)) }
func (h *itemHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// Queue is a deterministic discrete-event queue. Events scheduled for the
// same cycle run in scheduling order. Queue is not safe for concurrent use;
// each simulation owns one.
type Queue struct {
	h   itemHeap
	now int64
	seq uint64
}

// NewQueue returns an empty queue at cycle 0.
func NewQueue() *Queue { return &Queue{} }

// Now returns the current cycle.
func (q *Queue) Now() int64 { return q.now }

// At schedules fn to run at the given cycle. Scheduling in the past (or the
// present) runs the event when the current cycle is (re)drained.
func (q *Queue) At(cycle int64, fn Func) {
	if cycle < q.now {
		cycle = q.now
	}
	heap.Push(&q.h, item{cycle: cycle, seq: q.seq, fn: fn})
	q.seq++
}

// After schedules fn delay cycles from now.
func (q *Queue) After(delay int64, fn Func) { q.At(q.now+delay, fn) }

// AdvanceTo sets the clock to cycle and runs every event due at or before
// it, in (cycle, scheduling-order) order. Events may schedule new events,
// including for the current cycle.
func (q *Queue) AdvanceTo(cycle int64) {
	for len(q.h) > 0 && q.h[0].cycle <= cycle {
		it := heap.Pop(&q.h).(item)
		if it.cycle > q.now {
			q.now = it.cycle
		}
		it.fn()
	}
	if cycle > q.now {
		q.now = cycle
	}
}

// Pending returns the number of scheduled events.
func (q *Queue) Pending() int { return len(q.h) }

// Scheduler is the scheduling surface shared by the global Queue and the
// per-SM Lanes: components program against it so the engine can reroute
// their event traffic through a lane during parallel stepping.
type Scheduler interface {
	Now() int64
	At(cycle int64, fn Func)
	After(delay int64, fn Func)
}

var (
	_ Scheduler = (*Queue)(nil)
	_ Scheduler = (*Lane)(nil)
)

// Lane is one SM's private on-ramp to the shared queue. Outside a
// buffering window it passes every schedule straight through (the
// sequential engine never pays for it). During the parallel engine's step
// phase each SM buffers into its own lane without locking; the engine then
// commits the lanes in ascending SM-index order, which reproduces the seq
// numbers — and therefore the same-cycle event ordering — of the
// sequential engine exactly.
type Lane struct {
	q         *Queue
	buffering bool
	buf       []item // seq unused; order is positional
}

// NewLane returns a pass-through lane over the queue.
func NewLane(q *Queue) *Lane { return &Lane{q: q} }

// Now returns the shared clock. The engine only advances the clock between
// stepping windows, so concurrent readers are safe.
func (l *Lane) Now() int64 { return l.q.Now() }

// At schedules fn at the given cycle: directly on the queue when passing
// through, into the lane's buffer during a stepping window.
func (l *Lane) At(cycle int64, fn Func) {
	if !l.buffering {
		l.q.At(cycle, fn)
		return
	}
	if cycle < l.q.now {
		cycle = l.q.now // clamp like Queue.At; now is frozen until commit
	}
	l.buf = append(l.buf, item{cycle: cycle, fn: fn})
}

// After schedules fn delay cycles from now.
func (l *Lane) After(delay int64, fn Func) { l.At(l.q.Now()+delay, fn) }

// StartBuffering opens a stepping window: schedules are held in the lane
// until Commit.
func (l *Lane) StartBuffering() { l.buffering = true }

// Commit flushes buffered schedules into the queue in the order they were
// made and returns the lane to pass-through mode.
func (l *Lane) Commit() {
	l.buffering = false
	for i := range l.buf {
		l.q.At(l.buf[i].cycle, l.buf[i].fn)
		l.buf[i].fn = nil // release the closure
	}
	l.buf = l.buf[:0]
}

// MinPending returns the earliest buffered (uncommitted) cycle, and
// ok=false when the lane is empty. The engine's idle-skip consults every
// lane so a buffered wakeup is never skipped past.
func (l *Lane) MinPending() (int64, bool) {
	if len(l.buf) == 0 {
		return 0, false
	}
	min := l.buf[0].cycle
	for _, it := range l.buf[1:] {
		if it.cycle < min {
			min = it.cycle
		}
	}
	return min, true
}

// NextCycle returns the cycle of the earliest pending event, and ok=false
// when the queue is empty. Used by the engine to skip idle cycles.
func (q *Queue) NextCycle() (int64, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].cycle, true
}
