// Package event provides the discrete-event spine of the simulator: a
// min-heap of callbacks keyed by cycle. The GPU engine advances the clock
// cycle by cycle; components (caches, DRAM partitions, execution pipelines,
// the Virtual Thread swap engine) schedule future work instead of being
// ticked every cycle, which keeps the simulator fast and the timing code
// local to each component.
package event

import "container/heap"

// Func is a scheduled callback.
type Func func()

type item struct {
	cycle int64
	seq   uint64 // FIFO tie-break for determinism
	fn    Func
}

type itemHeap []item

func (h itemHeap) Len() int { return len(h) }
func (h itemHeap) Less(i, j int) bool {
	if h[i].cycle != h[j].cycle {
		return h[i].cycle < h[j].cycle
	}
	return h[i].seq < h[j].seq
}
func (h itemHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *itemHeap) Push(x any)   { *h = append(*h, x.(item)) }
func (h *itemHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// Queue is a deterministic discrete-event queue. Events scheduled for the
// same cycle run in scheduling order. Queue is not safe for concurrent use;
// each simulation owns one.
type Queue struct {
	h   itemHeap
	now int64
	seq uint64
}

// NewQueue returns an empty queue at cycle 0.
func NewQueue() *Queue { return &Queue{} }

// Now returns the current cycle.
func (q *Queue) Now() int64 { return q.now }

// At schedules fn to run at the given cycle. Scheduling in the past (or the
// present) runs the event when the current cycle is (re)drained.
func (q *Queue) At(cycle int64, fn Func) {
	if cycle < q.now {
		cycle = q.now
	}
	heap.Push(&q.h, item{cycle: cycle, seq: q.seq, fn: fn})
	q.seq++
}

// After schedules fn delay cycles from now.
func (q *Queue) After(delay int64, fn Func) { q.At(q.now+delay, fn) }

// AdvanceTo sets the clock to cycle and runs every event due at or before
// it, in (cycle, scheduling-order) order. Events may schedule new events,
// including for the current cycle.
func (q *Queue) AdvanceTo(cycle int64) {
	for len(q.h) > 0 && q.h[0].cycle <= cycle {
		it := heap.Pop(&q.h).(item)
		if it.cycle > q.now {
			q.now = it.cycle
		}
		it.fn()
	}
	if cycle > q.now {
		q.now = cycle
	}
}

// Pending returns the number of scheduled events.
func (q *Queue) Pending() int { return len(q.h) }

// NextCycle returns the cycle of the earliest pending event, and ok=false
// when the queue is empty. Used by the engine to skip idle cycles.
func (q *Queue) NextCycle() (int64, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].cycle, true
}
