package event

import (
	"fmt"
	"sort"
)

// Snapshot support for the event spine. A checkpoint must carry the
// pending event set across a process boundary, which means handler
// pointers have to become stable integers. The Registry assigns IDs in
// registration order; as long as the machine registers its handlers in a
// deterministic order (the gpu package registers SMs by index, then the
// CTA controller, then the memory hierarchy), the same ID maps to the
// same component in the capturing and the restoring process.
//
// Closure events (fn != nil) cannot be serialized. The simulator's hot
// paths are entirely typed, so a pending closure at a checkpoint boundary
// means a cold-path callback is still in flight; CaptureEvents refuses
// rather than silently dropping it.

// Registry maps event Handlers to stable integer IDs for serialization.
type Registry struct {
	ids      map[Handler]int32
	handlers []Handler
}

// NewRegistry returns an empty handler registry.
func NewRegistry() *Registry {
	return &Registry{ids: make(map[Handler]int32)}
}

// Register assigns the next ID to h. Registration order defines the ID
// space, so callers must register handlers in a deterministic order.
func (r *Registry) Register(h Handler) {
	if h == nil {
		panic("event: Register(nil)")
	}
	if _, ok := r.ids[h]; ok {
		return
	}
	r.ids[h] = int32(len(r.handlers))
	r.handlers = append(r.handlers, h)
}

// Len returns the number of registered handlers.
func (r *Registry) Len() int { return len(r.handlers) }

// ID returns the handler's registered ID.
func (r *Registry) ID(h Handler) (int32, bool) {
	id, ok := r.ids[h]
	return id, ok
}

// Handler returns the handler registered under id.
func (r *Registry) Handler(id int32) (Handler, bool) {
	if id < 0 || int(id) >= len(r.handlers) {
		return nil, false
	}
	return r.handlers[id], true
}

// EventRec is one serialized pending event. Seq preserves the original
// scheduling order so same-cycle tie-breaks replay identically.
type EventRec struct {
	Cycle int64  `json:"cycle"`
	Seq   uint64 `json:"seq"`
	H     int32  `json:"h"`
	Kind  uint8  `json:"kind"`
	A     uint32 `json:"a"`
	B     uint32 `json:"b"`
}

// CompletionRec is a serialized Completion; H is -1 for the zero (invalid)
// Completion that writes carry.
type CompletionRec struct {
	H    int32  `json:"h"`
	Kind uint8  `json:"kind"`
	A    uint32 `json:"a"`
	B    uint32 `json:"b"`
}

// EncodeCompletion serializes c against the registry.
func (r *Registry) EncodeCompletion(c Completion) (CompletionRec, error) {
	if !c.Valid() {
		return CompletionRec{H: -1}, nil
	}
	id, ok := r.ids[c.H]
	if !ok {
		return CompletionRec{}, fmt.Errorf("event: completion handler %T not registered", c.H)
	}
	return CompletionRec{H: id, Kind: c.Kind, A: c.A, B: c.B}, nil
}

// DecodeCompletion reconstructs a Completion from its record.
func (r *Registry) DecodeCompletion(rec CompletionRec) (Completion, error) {
	if rec.H < 0 {
		return Completion{}, nil
	}
	h, ok := r.Handler(rec.H)
	if !ok {
		return Completion{}, fmt.Errorf("event: completion handler id %d out of range", rec.H)
	}
	return Completion{H: h, Kind: rec.Kind, A: rec.A, B: rec.B}, nil
}

// CaptureEvents serializes every pending event in (cycle, seq) order,
// along with the clock and the sequence counter. It errors on pending
// closure events: those cannot cross a process boundary, and their
// presence means the machine is not at a checkpointable boundary.
func (q *Queue) CaptureEvents(reg *Registry) (now int64, seq uint64, recs []EventRec, err error) {
	encode := func(it *item) error {
		if it.fn != nil {
			return fmt.Errorf("event: pending closure event at cycle %d cannot be snapshotted", it.cycle)
		}
		id, ok := reg.ids[it.h]
		if !ok {
			return fmt.Errorf("event: pending event handler %T not registered", it.h)
		}
		recs = append(recs, EventRec{
			Cycle: it.cycle, Seq: it.seq,
			H: id, Kind: it.kind, A: it.a, B: it.b,
		})
		return nil
	}
	recs = make([]EventRec, 0, q.pending)
	if q.useHeap {
		for i := range q.heap {
			if err := encode(&q.heap[i]); err != nil {
				return 0, 0, nil, err
			}
		}
	} else {
		for b := range q.buckets {
			bk := q.buckets[b]
			for i := range bk {
				if err := encode(&bk[i]); err != nil {
					return 0, 0, nil, err
				}
			}
		}
		for i := range q.overflow {
			if err := encode(&q.overflow[i]); err != nil {
				return 0, 0, nil, err
			}
		}
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Cycle != recs[j].Cycle {
			return recs[i].Cycle < recs[j].Cycle
		}
		return recs[i].Seq < recs[j].Seq
	})
	return q.now, q.seq, recs, nil
}

// RestoreEvents rebuilds the queue's pending set from a capture. The
// queue must be empty (fresh or Reset). Events keep their original seq
// values — same-cycle ordering is part of the determinism contract — and
// the sequence counter resumes past them.
func (q *Queue) RestoreEvents(now int64, seq uint64, recs []EventRec, reg *Registry) error {
	if q.pending != 0 {
		return fmt.Errorf("event: RestoreEvents on non-empty queue (%d pending)", q.pending)
	}
	q.now = now
	q.seq = seq
	if !q.useHeap {
		q.wheelEnd = now + wheelSize
	}
	for i := range recs {
		rec := &recs[i]
		h, ok := reg.Handler(rec.H)
		if !ok {
			return fmt.Errorf("event: restored event handler id %d out of range", rec.H)
		}
		if rec.Seq >= seq {
			return fmt.Errorf("event: restored event seq %d not below counter %d", rec.Seq, seq)
		}
		it := item{cycle: rec.Cycle, seq: rec.Seq, h: h, kind: rec.Kind, a: rec.A, b: rec.B}
		if q.pending == 0 || it.cycle < q.nextDue {
			q.nextDue = it.cycle
		}
		q.pending++
		switch {
		case q.useHeap:
			heapPush(&q.heap, it)
		case it.cycle < q.wheelEnd:
			// Records arrive in (cycle, seq) order and each bucket holds a
			// single distinct cycle, so positional bucket order matches
			// scheduling order, exactly as live inserts produce it.
			q.bucketAdd(it)
		default:
			heapPush(&q.overflow, it)
		}
	}
	return nil
}
