package event

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestOrdering(t *testing.T) {
	q := NewQueue()
	var got []int
	q.At(5, func() { got = append(got, 5) })
	q.At(2, func() { got = append(got, 2) })
	q.At(9, func() { got = append(got, 9) })
	q.At(2, func() { got = append(got, 20) }) // same cycle, later scheduling
	q.AdvanceTo(10)
	want := []int{2, 20, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestAdvancePartial(t *testing.T) {
	q := NewQueue()
	ran := 0
	q.At(3, func() { ran++ })
	q.At(7, func() { ran++ })
	q.AdvanceTo(5)
	if ran != 1 {
		t.Fatalf("ran = %d, want 1", ran)
	}
	if q.Now() != 5 {
		t.Fatalf("Now = %d, want 5", q.Now())
	}
	if n, ok := q.NextCycle(); !ok || n != 7 {
		t.Fatalf("NextCycle = %d,%v", n, ok)
	}
	q.AdvanceTo(7)
	if ran != 2 || q.Pending() != 0 {
		t.Fatalf("ran=%d pending=%d", ran, q.Pending())
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	q := NewQueue()
	q.AdvanceTo(10)
	ran := false
	q.At(3, func() { ran = true })
	q.AdvanceTo(10) // re-drain current cycle
	if !ran {
		t.Fatal("past event must run at current cycle")
	}
}

func TestEventsSchedulingEvents(t *testing.T) {
	q := NewQueue()
	var got []int64
	q.At(1, func() {
		got = append(got, q.Now())
		q.After(0, func() { got = append(got, q.Now()) }) // same cycle
		q.After(4, func() { got = append(got, q.Now()) })
	})
	q.AdvanceTo(1)
	if len(got) != 2 || got[0] != 1 || got[1] != 1 {
		t.Fatalf("same-cycle chaining: got %v", got)
	}
	q.AdvanceTo(5)
	if len(got) != 3 || got[2] != 5 {
		t.Fatalf("future chaining: got %v", got)
	}
}

func TestNextCycleEmpty(t *testing.T) {
	q := NewQueue()
	if _, ok := q.NextCycle(); ok {
		t.Fatal("empty queue must report no next cycle")
	}
}

// Property: events always fire in non-decreasing cycle order, and at
// exactly the clamped cycle they were scheduled for.
func TestFiringOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := NewQueue()
		var fired []int64
		n := 1 + rng.Intn(100)
		cycles := make([]int64, n)
		for i := 0; i < n; i++ {
			c := int64(rng.Intn(50))
			cycles[i] = c
			q.At(c, func() { fired = append(fired, q.Now()) })
		}
		q.AdvanceTo(100)
		if len(fired) != n {
			return false
		}
		sort.Slice(cycles, func(i, j int) bool { return cycles[i] < cycles[j] })
		for i := range fired {
			if fired[i] != cycles[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAfter(t *testing.T) {
	q := NewQueue()
	q.AdvanceTo(10)
	var at int64 = -1
	q.After(5, func() { at = q.Now() })
	q.AdvanceTo(20)
	if at != 15 {
		t.Fatalf("After fired at %d, want 15", at)
	}
}

func TestEventSeesOwnCycle(t *testing.T) {
	// Even when the caller jumps far ahead, each event observes its own
	// scheduled cycle as Now() — the property the memory system's latency
	// arithmetic depends on.
	q := NewQueue()
	var seen []int64
	for _, c := range []int64{3, 17, 100} {
		c := c
		q.At(c, func() {
			if q.Now() != c {
				t.Errorf("event scheduled for %d ran at %d", c, q.Now())
			}
			seen = append(seen, q.Now())
		})
	}
	q.AdvanceTo(1000)
	if len(seen) != 3 {
		t.Fatalf("ran %d events", len(seen))
	}
}

func TestLanePassThrough(t *testing.T) {
	q := NewQueue()
	l := NewLane(q)
	ran := false
	l.At(3, func() { ran = true })
	if q.Pending() != 1 {
		t.Fatalf("pass-through lane should schedule directly; pending=%d", q.Pending())
	}
	q.AdvanceTo(3)
	if !ran {
		t.Fatal("event did not run")
	}
}

func TestLaneCommitPreservesSequentialOrder(t *testing.T) {
	// Two lanes buffer same-cycle events; committing lane 0 before lane 1
	// must reproduce the order a sequential engine would have produced.
	q := NewQueue()
	l0, l1 := NewLane(q), NewLane(q)
	var got []int
	l0.StartBuffering()
	l1.StartBuffering()
	l1.At(5, func() { got = append(got, 10) }) // buffered first in real time...
	l0.At(5, func() { got = append(got, 0) })  // ...but lane 0 commits first
	l0.At(5, func() { got = append(got, 1) })
	l0.Commit()
	l1.Commit()
	q.AdvanceTo(5)
	want := []int{0, 1, 10}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestLaneMinPending(t *testing.T) {
	q := NewQueue()
	l := NewLane(q)
	if _, ok := l.MinPending(); ok {
		t.Fatal("empty lane reported pending work")
	}
	l.StartBuffering()
	l.At(9, func() {})
	l.At(4, func() {})
	if min, ok := l.MinPending(); !ok || min != 4 {
		t.Fatalf("MinPending = %d,%v; want 4,true", min, ok)
	}
	l.Commit()
	if _, ok := l.MinPending(); ok {
		t.Fatal("committed lane still reports pending work")
	}
	if next, ok := q.NextCycle(); !ok || next != 4 {
		t.Fatalf("queue NextCycle = %d,%v; want 4,true", next, ok)
	}
}

func TestLaneAfterUsesFrozenClock(t *testing.T) {
	q := NewQueue()
	q.AdvanceTo(10)
	l := NewLane(q)
	l.StartBuffering()
	l.After(5, func() {})
	if min, ok := l.MinPending(); !ok || min != 15 {
		t.Fatalf("MinPending = %d,%v; want 15,true", min, ok)
	}
	l.Commit()
	ran := false
	l.After(0, func() { ran = true }) // pass-through again after commit
	q.AdvanceTo(10)
	if !ran {
		t.Fatal("post-commit schedule did not pass through")
	}
}
