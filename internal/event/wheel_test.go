package event

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// TestPastClampDuringDrain pins the documented At() contract for the case
// the doc comment calls out explicitly: scheduling at a past (or current)
// cycle from INSIDE an event that is firing during an AdvanceTo drain.
// The clamped event must run later in the very same drain — after every
// event already queued for the current cycle — and the behavior must be
// identical for the wheel and the reference heap.
func TestPastClampDuringDrain(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() *Queue
	}{
		{"wheel", NewQueue}, {"heap", NewHeapQueue},
	} {
		t.Run(tc.name, func(t *testing.T) {
			q := tc.mk()
			var order []string
			// Two events at cycle 5. The first reaches back to cycles 0
			// and 3 — both in the past once the drain reaches cycle 5 —
			// and to cycle 5 itself. All three clamp to "now" and must
			// fire within this AdvanceTo, after the already-queued "b".
			q.At(5, func() {
				order = append(order, "a")
				q.At(0, func() { order = append(order, "past0") })
				q.At(3, func() { order = append(order, "past3") })
				q.At(5, func() { order = append(order, "now5") })
			})
			q.At(5, func() { order = append(order, "b") })
			q.AdvanceTo(10)
			want := []string{"a", "b", "past0", "past3", "now5"}
			if !reflect.DeepEqual(order, want) {
				t.Fatalf("drain order = %v, want %v", order, want)
			}
			if q.Pending() != 0 {
				t.Fatalf("clamped events left %d pending past the drain", q.Pending())
			}
		})
	}
}

// TestPastClampBeforeDrain covers the simpler half of the contract:
// scheduling at a cycle at or before Now() between drains fires on the
// next AdvanceTo that reaches the current cycle, not never and not
// earlier.
func TestPastClampBeforeDrain(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() *Queue
	}{
		{"wheel", NewQueue}, {"heap", NewHeapQueue},
	} {
		t.Run(tc.name, func(t *testing.T) {
			q := tc.mk()
			q.AdvanceTo(100)
			fired := int64(-1)
			q.At(7, func() { fired = q.Now() })
			if next, ok := q.NextCycle(); !ok || next != 100 {
				t.Fatalf("clamped event due at %d (ok=%v), want 100 (= Now)", next, ok)
			}
			q.AdvanceTo(100) // re-drain the current cycle
			if fired != 100 {
				t.Fatalf("clamped event fired at %d, want 100", fired)
			}
		})
	}
}

// recorder is a typed handler that logs its firings, so the property test
// covers the Handler/Completion dispatch path as well as plain funcs.
type recorder struct {
	log *[]string
	id  int
}

func (r *recorder) HandleEvent(kind uint8, a, b uint32) {
	*r.log = append(*r.log, fmt.Sprintf("h%d/%d/%d/%d", r.id, kind, a, b))
}

// TestWheelMatchesHeapProperty feeds an identical seed-deterministic
// randomized schedule through the timing wheel and the reference heap and
// requires the exact same execution order. The generator is built to hit
// the wheel's hard cases:
//   - same-cycle bursts (FIFO tie-break on seq),
//   - re-entrant scheduling from inside firing events, including clamped
//     past-cycle posts,
//   - far-future events beyond the 4096-bucket window (overflow heap),
//     whose later migration back into buckets must preserve seq order
//     across bucket-wrap boundaries,
//   - interleaved typed completions and plain funcs.
func TestWheelMatchesHeapProperty(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			run := func(q *Queue) []string {
				rng := rand.New(rand.NewSource(seed))
				var log []string
				n := 0
				// schedule posts one event at an offset pattern chosen by
				// the rng; some events re-enter schedule when they fire.
				var schedule func(depth int)
				schedule = func(depth int) {
					id := n
					n++
					var at int64
					switch rng.Intn(6) {
					case 0: // same-cycle burst member
						at = q.Now()
					case 1: // past cycle: clamps to now
						at = q.Now() - rng.Int63n(50) - 1
					case 2: // near future, same wheel window
						at = q.Now() + rng.Int63n(64) + 1
					case 3: // window edge
						at = q.Now() + 4090 + rng.Int63n(12)
					case 4: // far future: overflow heap, crosses wrap
						at = q.Now() + 4096 + rng.Int63n(20000)
					case 5: // multiple wraps out
						at = q.Now() + 3*4096 + rng.Int63n(4096)
					}
					reenter := depth < 3 && rng.Intn(3) == 0
					if rng.Intn(4) == 0 {
						// Typed completion path.
						q.PostC(at, Completion{
							H:    &recorder{log: &log, id: id},
							Kind: uint8(rng.Intn(8)),
							A:    rng.Uint32() & 0xff,
							B:    rng.Uint32() & 0xff,
						})
						if reenter {
							// Pair the completion with a func that re-enters,
							// so re-entry also happens near typed firings.
							q.At(at, func() { schedule(depth + 1) })
						}
					} else {
						q.At(at, func() {
							log = append(log, fmt.Sprintf("f%d", id))
							if reenter {
								schedule(depth + 1)
								schedule(depth + 1)
							}
						})
					}
				}
				for i := 0; i < 300; i++ {
					schedule(0)
					if i%10 == 9 {
						q.AdvanceTo(q.Now() + rng.Int63n(6000))
					}
				}
				// Drain everything left.
				for q.Pending() > 0 {
					next, ok := q.NextCycle()
					if !ok {
						t.Fatalf("pending=%d but NextCycle reports empty", q.Pending())
					}
					q.AdvanceTo(next)
				}
				return log
			}
			wheel := run(NewQueue())
			heap := run(NewHeapQueue())
			if !reflect.DeepEqual(wheel, heap) {
				min := len(wheel)
				if len(heap) < min {
					min = len(heap)
				}
				for i := 0; i < min; i++ {
					if wheel[i] != heap[i] {
						t.Fatalf("seed %d: order diverges at event %d: wheel=%q heap=%q (lens %d/%d)",
							seed, i, wheel[i], heap[i], len(wheel), len(heap))
					}
				}
				t.Fatalf("seed %d: lengths diverge: wheel=%d heap=%d", seed, len(wheel), len(heap))
			}
			if len(wheel) == 0 {
				t.Fatalf("seed %d: property run fired no events", seed)
			}
		})
	}
}

// TestWheelResetReuse exercises the cross-run pooling contract: Reset
// must drop leftover events, rewind the clock, and leave the wheel
// producing the same execution order as a freshly built queue.
func TestWheelResetReuse(t *testing.T) {
	q := NewQueue()
	// Dirty the queue: near events, overflow events, partial drain.
	for i := 0; i < 100; i++ {
		q.At(int64(i*37), func() {})
		q.At(int64(10000+i*513), func() {})
	}
	q.AdvanceTo(1234)
	if q.Pending() == 0 {
		t.Fatal("setup failed to leave events pending")
	}
	q.Reset()
	if _, ok := q.NextCycle(); ok || q.Pending() != 0 || q.Now() != 0 {
		t.Fatalf("Reset left pending=%d now=%d nonEmpty=%v", q.Pending(), q.Now(), ok)
	}
	var got, want []int
	fill := func(qq *Queue, out *[]int) {
		for i := 0; i < 50; i++ {
			i := i
			qq.At(int64((i*7919)%200), func() { *out = append(*out, i) })
		}
		qq.AdvanceTo(9000)
	}
	fill(q, &got)
	fill(NewQueue(), &want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reused queue order %v differs from fresh queue %v", got, want)
	}
}
