package core

import (
	"fmt"

	"repro/internal/sm"
	"repro/internal/warp"
)

// Snapshot support for the VT controller. Pending evRestoreDone events
// address the per-SM restores arena by index, so the arena and its free
// list restore to the exact captured layout, with CTA pointers encoded as
// (kernel, flat) pairs resolved against the restored SM's resident set.
// SetState also rebinds each smState's SM handle eagerly: on a live run
// the binding happens lazily in the first Cycle call, but a resumed
// machine can deliver a controller event to a sleeping SM before any
// Cycle runs.

// RestoreRef is one restores-arena slot (Used=false for free slots).
type RestoreRef struct {
	Used   bool `json:"used"`
	Kernel int  `json:"kernel"`
	Flat   int  `json:"flat"`
}

// SMCtlState is the controller's per-SM serialized state.
type SMCtlState struct {
	Ports        []int64      `json:"ports"`
	CtxBytesUsed int          `json:"ctx_bytes_used"`
	WakeAt       int64        `json:"wake_at"`
	Restores     []RestoreRef `json:"restores"`
	RestoreFree  []int32      `json:"restore_free"`
}

// ControllerState is the controller's complete serialized state.
type ControllerState struct {
	Stats Stats        `json:"stats"`
	PerSM []SMCtlState `json:"per_sm"`
}

// State captures the controller. Pure read.
func (v *Controller) State() *ControllerState {
	cs := &ControllerState{Stats: v.Stats}
	for i := range v.perSM {
		st := &v.perSM[i]
		ss := SMCtlState{
			Ports:        append([]int64(nil), st.ports...),
			CtxBytesUsed: st.ctxBytesUsed,
			WakeAt:       st.wakeAt,
			RestoreFree:  append([]int32(nil), st.restoreFree...),
		}
		for _, c := range st.restores {
			if c == nil {
				ss.Restores = append(ss.Restores, RestoreRef{})
			} else {
				ss.Restores = append(ss.Restores, RestoreRef{Used: true, Kernel: c.KernelID, Flat: c.FlatID})
			}
		}
		cs.PerSM = append(cs.PerSM, ss)
	}
	return cs
}

// SetState restores a freshly built controller. sms are the restored SMs
// in index order; restore records resolve against their resident sets.
func (v *Controller) SetState(cs *ControllerState, sms []*sm.SM) error {
	if len(cs.PerSM) != len(v.perSM) || len(sms) != len(v.perSM) {
		return fmt.Errorf("core: controller state for %d SMs, want %d", len(cs.PerSM), len(v.perSM))
	}
	v.Stats = cs.Stats
	for i := range v.perSM {
		st := &v.perSM[i]
		ss := &cs.PerSM[i]
		st.sm = sms[i]
		st.ports = append(st.ports[:0:0], ss.Ports...)
		if len(ss.Ports) == 0 {
			st.ports = nil
		}
		st.ctxBytesUsed = ss.CtxBytesUsed
		st.wakeAt = ss.WakeAt
		st.restores = st.restores[:0]
		for _, r := range ss.Restores {
			if !r.Used {
				st.restores = append(st.restores, nil)
				continue
			}
			c, err := sms[i].ResolveCTA(r.Kernel, r.Flat)
			if err != nil {
				return fmt.Errorf("core: restore record: %w", err)
			}
			st.restores = append(st.restores, c)
		}
		st.restoreFree = append(st.restoreFree[:0:0], ss.RestoreFree...)
		// Re-derive each inactive CTA's recorded context-buffer charge. In
		// detailed mode a swapped-out CTA's footprint never changes, so the
		// charge always equals the current footprint (sampled runs, where
		// the two can diverge, cannot be checkpointed).
		for _, c := range sms[i].Resident {
			if c.State == warp.CTAInactiveWaiting || c.State == warp.CTAInactiveReady {
				c.CtxCharged = ctxBytesPerCTA(c)
			}
		}
	}
	return nil
}
