// Package core implements the paper's contribution: the Virtual Thread
// (VT) architecture. VT assigns CTAs to an SM up to the capacity limit
// (register file + shared memory) while only a scheduling-limit-sized
// subset is active. When every warp of an active CTA is blocked on a
// long-latency global-memory dependence, the CTA's tiny scheduling context
// (PC, SIMT stack, scoreboard) is saved to an on-chip context buffer and a
// ready inactive CTA takes its warp slots. Registers and shared memory of
// inactive CTAs never move, so swaps cost tens of cycles and outstanding
// loads of a swapped-out CTA drain directly into its resident registers.
//
// The package also provides the FullSwap strawman (contexts spilled
// off-chip, paying a footprint-proportional latency) and, together with
// config.PolicyIdeal, the upper bound with unbounded scheduling structures.
package core

import (
	"repro/internal/config"
	"repro/internal/cta"
	"repro/internal/isa"
	"repro/internal/sm"
	"repro/internal/warp"
)

// Stats collects Virtual Thread controller counters.
type Stats struct {
	SwapsOut        int64 // CTA deactivations due to stall
	SwapsIn         int64 // CTA activations of previously-run CTAs
	FreshActivates  int64 // activations of never-run (pending) CTAs
	SwapStallCycles int64 // cycles warp slots sat idle paying swap latency
	DeniedByBuffer  int64 // virtual-CTA admissions denied by the context buffer
	DeniedByCap     int64 // admissions denied by the virtual-CTA cap
	MaxResident     int   // peak resident CTAs on any SM
	MaxInactive     int   // peak inactive CTAs on any SM
	ContextPeak     int   // peak context-buffer bytes in use on any SM
}

// TraceEvent records one CTA state transition for the swap-trace example
// and the telemetry collector. Latency is the one-way swap latency the
// transition pays (swap-outs and restore starts); 0 for free transitions.
type TraceEvent struct {
	Cycle   int64
	SM      int
	CTA     int // flat CTA id
	From    warp.CTAState
	To      warp.CTAState
	Latency int64
}

// Controller is the per-GPU Virtual Thread controller; it manages every
// SM's virtual CTA table. Swap operations per SM are limited by the
// configured context-buffer port count (one by default).
type Controller struct {
	grid     cta.Source
	fullSwap bool // FullSwap strawman: pay the full-context latency

	perSM []smState

	// Stats accumulates controller counters across all SMs.
	Stats Stats

	// Trace, when non-nil, receives CTA state transitions.
	Trace func(TraceEvent)
}

type smState struct {
	sm           *sm.SM  // bound on the first Cycle; typed events dispatch through it
	ports        []int64 // context-buffer ports: next free cycle each
	ctxBytesUsed int     // context buffer bytes held by inactive CTAs
	wakeAt       int64
	// fit is the admission predicate for this SM, built once on first
	// use so the per-cycle admit loop does not allocate a closure.
	fit func(regs, smem, warps, threads int) bool
	// src is register-source scratch for BlockedState; per-SM (not
	// package-global) so concurrent simulations never share it.
	src [8]isa.Reg
	// restores pools in-flight context-restore records (the CTA whose
	// restore completes when evRestoreDone fires), recycled by index.
	restores    []*warp.CTA
	restoreFree []int32
}

func (st *smState) allocRestore(c *warp.CTA) int32 {
	if n := len(st.restoreFree); n > 0 {
		idx := st.restoreFree[n-1]
		st.restoreFree = st.restoreFree[:n-1]
		st.restores[idx] = c
		return idx
	}
	st.restores = append(st.restores, c)
	return int32(len(st.restores) - 1)
}

// Controller event kinds (operand a = SM id throughout; b = restore
// record index for evRestoreDone).
const (
	evRestoreDone uint8 = iota // context restore finished: CTA becomes active
	evPortFree                 // a swap-out's port freed: try to activate a replacement
	evMinElig                  // min-residency eligibility crossed: wake the idle-skip engine
)

// HandleEvent dispatches the controller's typed swap-engine events.
func (v *Controller) HandleEvent(kind uint8, a, b uint32) {
	st := &v.perSM[a]
	s := st.sm
	switch kind {
	case evRestoreDone:
		c := st.restores[b]
		st.restores[b] = nil
		st.restoreFree = append(st.restoreFree, int32(b))
		s.WakeUp()
		c.State = warp.CTAActive
		c.ActivatedAt = s.Ev.Now()
		s.NoteCTAStateChanged(c)
		v.trace(s, c, warp.CTARestoring, warp.CTAActive, 0)
	case evPortFree:
		s.WakeUp()
		v.activate(s)
	case evMinElig:
		s.WakeUp()
	}
}

// freePort returns the index of a context-buffer port free at now, or -1.
func (st *smState) freePort(now int64) int {
	for i, t := range st.ports {
		if t <= now {
			return i
		}
	}
	return -1
}

// NewController builds the VT controller over a shared CTA source.
// fullSwap selects the off-chip context-switching strawman.
func NewController(g cta.Source, numSMs int, fullSwap bool) *Controller {
	return &Controller{grid: g, fullSwap: fullSwap, perSM: make([]smState, numSMs)}
}

var _ sm.Controller = (*Controller)(nil)

func (v *Controller) trace(s *sm.SM, c *warp.CTA, from, to warp.CTAState, lat int64) {
	if v.Trace != nil {
		v.Trace(TraceEvent{Cycle: s.Ev.Now(), SM: s.ID, CTA: c.FlatID,
			From: from, To: to, Latency: lat})
	}
}

// CtxBytesUsed returns the context-buffer bytes currently held by
// inactive CTAs on the given SM (telemetry gauge).
func (v *Controller) CtxBytesUsed(smID int) int { return v.perSM[smID].ctxBytesUsed }

// SwapsInFlight returns how many of the SM's context-buffer ports are
// busy at now — swaps (in or out) still paying their latency (telemetry
// gauge).
func (v *Controller) SwapsInFlight(smID int, now int64) int {
	n := 0
	for _, t := range v.perSM[smID].ports {
		if t > now {
			n++
		}
	}
	return n
}

// ctxBytesPerCTA returns the context-buffer footprint of one inactive CTA
// under the plain VT policy: per-warp PC + SIMT stack + scoreboard.
func ctxBytesPerCTA(c *warp.CTA) int {
	n := 0
	for _, w := range c.Warps {
		n += w.ContextFootprintBytes()
	}
	return n
}

// swapLatency returns the one-way swap latency for the CTA under the
// configured mechanism.
func (v *Controller) swapLatency(s *sm.SM, c *warp.CTA, out bool) int64 {
	if !v.fullSwap {
		if out {
			return int64(s.Cfg.VT.SwapOutLatency)
		}
		return int64(s.Cfg.VT.SwapInLatency)
	}
	// FullSwap: move registers + shared memory through a 32 B/cycle port.
	bytes := c.RegsAlloc*4 + c.SMemAlloc
	return int64(bytes / 32)
}

// Cycle runs the VT policy for one SM cycle: admit new virtual CTAs up to
// the capacity limit, activate ready CTAs into free scheduling slots, and
// swap out active CTAs whose warps are all memory-blocked.
func (v *Controller) Cycle(s *sm.SM) {
	if v.perSM[s.ID].sm == nil {
		v.perSM[s.ID].sm = s
	}
	v.admit(s)
	v.activate(s)
	v.swapOut(s)
}

// admit makes grid CTAs resident while registers, shared memory, the
// virtual-CTA cap, and the context buffer allow.
func (v *Controller) admit(s *sm.SM) {
	st := &v.perSM[s.ID]
	if st.fit == nil {
		st.fit = func(regs, smem, warps, threads int) bool {
			if !s.HasCapacityFor(regs, smem) {
				return false
			}
			// A resident-but-inactive CTA needs context buffer space;
			// only CTAs beyond the active set consume it. Estimate with
			// the initial (depth-1 stack) footprint.
			if len(s.Resident) >= s.MaxCTAs &&
				st.ctxBytesUsed+estCtxBytes(warps) > s.Cfg.VT.ContextBufferBytes {
				v.Stats.DeniedByBuffer++
				return false
			}
			return true
		}
	}
	for {
		if vcap := s.Cfg.VT.MaxVirtualCTAsPerSM; vcap > 0 && len(s.Resident) >= vcap {
			v.Stats.DeniedByCap++
			return
		}
		c := v.grid.Next(st.fit)
		if c == nil {
			return
		}
		s.AddResident(c)
		if len(s.Resident) > v.Stats.MaxResident {
			v.Stats.MaxResident = len(s.Resident)
		}
	}
}

// estCtxBytes is the context footprint estimate used for admission: every
// warp at stack depth 1.
func estCtxBytes(warps int) int {
	perWarp := 4 + (12 + 8) + 64 + 4
	return warps * perWarp
}

// activate fills free scheduling slots with ready CTAs under the
// configured activation policy. Fresh (never-run) CTAs need no context
// restore; reactivations need a free context-buffer port.
func (v *Controller) activate(s *sm.SM) {
	st := &v.perSM[s.ID]
	if st.ports == nil {
		st.ports = make([]int64, s.Cfg.VT.EffSwapPorts())
	}
	now := s.Ev.Now()
	for {
		c := v.pickReady(s)
		if c == nil {
			return
		}
		if !s.CanActivateCTA(c) {
			return
		}
		if c.State == warp.CTAInactiveReady && st.freePort(now) < 0 {
			return // restore needs a port; try again when one frees
		}
		v.activateCTA(s, c, st)
	}
}

func (v *Controller) activateCTA(s *sm.SM, c *warp.CTA, st *smState) {
	from := c.State
	if from == warp.CTAInactiveReady {
		// Restoring a saved context pays the swap-in latency and frees
		// its context-buffer space.
		lat := v.swapLatency(s, c, false)
		st.ports[st.freePort(s.Ev.Now())] = s.Ev.Now() + lat
		st.ctxBytesUsed -= c.CtxCharged
		c.CtxCharged = 0
		v.Stats.SwapsIn++
		v.Stats.SwapStallCycles += lat
		// Occupy the slots now; warps become schedulable when the
		// restore completes. Activate classified the warps as active, so
		// re-derive their cached state after flipping to restoring.
		s.Activate(c)
		c.State = warp.CTARestoring
		s.NoteCTAStateChanged(c)
		v.trace(s, c, from, warp.CTARestoring, lat)
		s.Ev.PostAfter(lat, v, evRestoreDone, uint32(s.ID), uint32(st.allocRestore(c)))
		return
	}
	// Fresh CTA: no context to restore.
	s.Activate(c)
	v.Stats.FreshActivates++
	v.trace(s, c, from, warp.CTAActive, 0)
}

// pickReady returns the ready CTA preferred by the activation policy, or
// nil when none is ready.
func (v *Controller) pickReady(s *sm.SM) *warp.CTA {
	newest := s.Cfg.VT.Activation == config.ActNewest
	var best *warp.CTA
	better := func(c, b *warp.CTA) bool {
		if c.AssignedAt != b.AssignedAt {
			if newest {
				return c.AssignedAt > b.AssignedAt
			}
			return c.AssignedAt < b.AssignedAt
		}
		if newest {
			return c.FlatID > b.FlatID
		}
		return c.FlatID < b.FlatID
	}
	for _, c := range s.Resident {
		if c.State != warp.CTAPending && c.State != warp.CTAInactiveReady {
			continue
		}
		if best == nil || better(c, best) {
			best = c
		}
	}
	return best
}

// swapOut deactivates active CTAs whose unfinished warps are blocked on
// global-load dependences (or parked at barriers gated by them) beyond the
// configured trigger fraction, provided a ready CTA exists to take the
// slots, a context-buffer port is free, and the anti-thrash residency has
// elapsed.
func (v *Controller) swapOut(s *sm.SM) {
	st := &v.perSM[s.ID]
	if st.ports == nil {
		st.ports = make([]int64, s.Cfg.VT.EffSwapPorts())
	}
	now := s.Ev.Now()
	if st.freePort(now) < 0 {
		return
	}
	if v.pickReady(s) == nil {
		return // nothing to run instead; keep waiting in place
	}
	minElig := int64(-1)
	for _, c := range s.Resident {
		if c.State != warp.CTAActive {
			continue
		}
		if elig := c.ActivatedAt + int64(s.Cfg.VT.MinResidencyCycles); now < elig {
			// Not yet eligible; remember the earliest eligibility so
			// the engine wakes up even if everything is stalled.
			if minElig < 0 || elig < minElig {
				minElig = elig
			}
			continue
		}
		if !v.stalledEnough(s, c, c.Launch.Kernel.Code) {
			continue
		}
		// Swap out: save scheduling contexts, free the slots.
		lat := v.swapLatency(s, c, true)
		from := c.State
		s.Deactivate(c)
		c.CtxCharged = ctxBytesPerCTA(c)
		st.ctxBytesUsed += c.CtxCharged
		if st.ctxBytesUsed > v.Stats.ContextPeak {
			v.Stats.ContextPeak = st.ctxBytesUsed
		}
		st.ports[st.freePort(now)] = now + lat
		v.Stats.SwapsOut++
		v.Stats.SwapStallCycles += lat
		v.trace(s, c, from, c.State, lat)
		v.countInactive(s)
		// Activate a replacement as soon as the context-buffer port
		// frees.
		s.Ev.PostAfter(lat, v, evPortFree, uint32(s.ID), 0)
		return // one swap per SM at a time
	}
	if minElig > 0 && st.wakeAt != minElig {
		st.wakeAt = minElig
		s.Ev.Post(minElig, v, evMinElig, uint32(s.ID), 0) // wake the idle-skip engine
	}
}

// FunctionalAdmit implements sm.FunctionalAdmitter for fast-forward
// spans: admit resident CTAs normally, then activate every ready CTA the
// scheduling limit allows with a zero-latency swap-in — no context-buffer
// port, no restore event. During a span memory completes instantly, so
// warps are never load-blocked and swap-outs never trigger; the
// steady-state behavior a span models is "a slot frees, the next ready
// CTA takes it", which is exactly this loop. Registers and shared memory
// of inactive CTAs are resident under VT (and never modeled as moving
// under FullSwap), so instant activation is architecturally exact.
func (v *Controller) FunctionalAdmit(s *sm.SM) {
	if v.perSM[s.ID].sm == nil {
		v.perSM[s.ID].sm = s
	}
	st := &v.perSM[s.ID]
	v.admit(s)
	for {
		c := v.pickReady(s)
		if c == nil || !s.CanActivateCTA(c) {
			return
		}
		from := c.State
		if from == warp.CTAInactiveReady {
			st.ctxBytesUsed -= c.CtxCharged
			c.CtxCharged = 0
			v.Stats.SwapsIn++
		} else {
			v.Stats.FreshActivates++
		}
		s.Activate(c)
		v.trace(s, c, from, warp.CTAActive, 0)
	}
}

// FunctionalCTARetired releases the context-buffer claim of a CTA that
// completed during a fast-forward span while swapped out. In detailed
// mode a CTA can only finish while active (its warps must issue), so the
// ordinary retire path never needs this.
func (v *Controller) FunctionalCTARetired(s *sm.SM, c *warp.CTA) {
	if c.CtxCharged > 0 {
		v.perSM[s.ID].ctxBytesUsed -= c.CtxCharged
		c.CtxCharged = 0
	}
}

// CanSleep vetoes per-SM fast-forward while a controller decision is
// actionable without any external event: a ready CTA that could be
// activated next cycle, or a stalled active CTA that could be swapped out.
// Everything else the controller reacts to arrives through a waking event
// (load completions, port-free and restore-complete callbacks, the
// min-residency eligibility wakeup scheduled by swapOut), so sleeping is
// indistinguishable from running the controller every cycle.
func (v *Controller) CanSleep(s *sm.SM) bool {
	c := v.pickReady(s)
	if c == nil {
		// Admission cannot change while the SM is quiescent, and with no
		// ready CTA neither activation nor swap-out can proceed.
		return true
	}
	st := &v.perSM[s.ID]
	now := s.Ev.Now()
	portFree := st.freePort(now) >= 0
	if s.CanActivateCTA(c) && (c.State == warp.CTAPending || portFree) {
		return false
	}
	if portFree {
		for _, a := range s.Resident {
			if a.State != warp.CTAActive {
				continue
			}
			if now < a.ActivatedAt+int64(s.Cfg.VT.MinResidencyCycles) {
				continue // swapOut's minElig wakeup covers this crossing
			}
			if v.stalledEnough(s, a, a.Launch.Kernel.Code) {
				return false
			}
		}
	}
	return true
}

func (v *Controller) countInactive(s *sm.SM) {
	n := 0
	for _, c := range s.Resident {
		if c.State == warp.CTAInactiveWaiting || c.State == warp.CTAInactiveReady {
			n++
		}
	}
	if n > v.Stats.MaxInactive {
		v.Stats.MaxInactive = n
	}
}

// stalledEnough reports whether the CTA's unfinished warps are blocked on
// outstanding global loads (or barrier-parked) beyond the trigger
// fraction, with at least one memory-blocked warp. At the paper-default
// fraction of 1.0, any issuable or short-latency-blocked warp vetoes the
// swap.
func (v *Controller) stalledEnough(s *sm.SM, c *warp.CTA, code []isa.Instr) bool {
	frac := s.Cfg.VT.EffTriggerFraction()
	anyMem := false
	unfinished, blocked := 0, 0
	for _, w := range c.Warps {
		switch w.BlockedState(code, v.perSM[s.ID].src[:]) {
		case warp.BlockedDone:
			continue
		case warp.BlockedMem:
			anyMem = true
			blocked++
		case warp.BlockedBarrier:
			// Parked warps cost nothing to leave; they gate on peers.
			blocked++
		default:
			if frac >= 1 {
				return false // paper default: every warp must be stalled
			}
		}
		unfinished++
	}
	if !anyMem || unfinished == 0 {
		return false
	}
	return float64(blocked) >= frac*float64(unfinished)
}

// CTARetired frees the retired CTA's accounting. Activation of a successor
// happens in the next Cycle call.
func (v *Controller) CTARetired(s *sm.SM, c *warp.CTA) {}

// LoadsDrained fires when a swapped-out CTA's last outstanding load
// returns; activation happens in the next Cycle call (the state change to
// InactiveReady was already applied by the SM).
func (v *Controller) LoadsDrained(s *sm.SM, c *warp.CTA) {}
