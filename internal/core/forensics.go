package core

// SMDiag snapshots the VT controller's bookkeeping for one SM, captured
// into abort diagnostics so a stuck swap pipeline is visible in failure
// reports.
type SMDiag struct {
	// CtxBytesUsed is the context-buffer bytes held by inactive CTAs.
	CtxBytesUsed int `json:"ctx_bytes_used"`
	// PortsBusyUntil is, per context-buffer port, the first cycle the
	// port is free again (a swap in flight shows as a future cycle).
	PortsBusyUntil []int64 `json:"ports_busy_until,omitempty"`
	// WakeAt is the earliest min-residency expiry the controller is
	// waiting on (0 = none).
	WakeAt int64 `json:"wake_at,omitempty"`
}

// Diag is the VT controller's state snapshot for a failure report.
type Diag struct {
	Stats Stats    `json:"stats"`
	PerSM []SMDiag `json:"per_sm"`
}

// Diagnose captures the controller's current state. Pure read.
func (v *Controller) Diagnose() *Diag {
	d := &Diag{Stats: v.Stats, PerSM: make([]SMDiag, len(v.perSM))}
	for i := range v.perSM {
		st := &v.perSM[i]
		d.PerSM[i] = SMDiag{
			CtxBytesUsed:   st.ctxBytesUsed,
			PortsBusyUntil: append([]int64(nil), st.ports...),
			WakeAt:         st.wakeAt,
		}
	}
	return d
}
