package core_test

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cta"
	"repro/internal/event"
	"repro/internal/gpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sm"
	"repro/internal/warp"
)

// memBoundKernel loops dependent global loads so that warps spend most of
// their time memory-blocked: the situation VT exploits.
func memBoundKernel(iters int) *isa.Kernel {
	b := isa.NewBuilder("membound")
	b.S2R(0, isa.SrCTAIdX)
	b.S2R(1, isa.SrNTidX)
	b.IMul(2, 0, 1)
	b.S2R(3, isa.SrTidX)
	b.IAdd(2, 2, 3)
	b.ShlImm(4, 2, 2)
	b.LdParam(5, 0)
	b.IAdd(5, 5, 4)
	b.MovImm(8, 0)
	b.MovImm(9, 0)
	b.Label("loop")
	b.LdG(6, 5, 0)
	b.IAdd(8, 8, 6)
	b.IAddImm(5, 5, 4096+128)
	b.AndImm(5, 5, 0x3FFFF)
	b.LdParam(7, 0)
	b.IAdd(5, 5, 7)
	b.IAddImm(9, 9, 1)
	b.SetpImm(10, isa.CmpILT, 9, int32(iters))
	b.Bra(10, "loop", "done")
	b.Label("done")
	b.Exit()
	return b.MustBuild()
}

func memBoundLaunch(iters, ctas, block int) *isa.Launch {
	return &isa.Launch{
		Kernel:   memBoundKernel(iters),
		GridDim:  isa.Dim1(ctas),
		BlockDim: isa.Dim1(block),
		Params:   []uint32{0x100000},
	}
}

func vtConfig() config.GPUConfig {
	c := config.Small()
	return c.WithPolicy(config.PolicyVT)
}

func TestVTKeepsActiveWithinSchedulingLimit(t *testing.T) {
	cfg := vtConfig()
	// Track the invariant every state transition.
	var maxActive int
	res, err := gpu.Run(memBoundLaunch(10, 64, 64), cfg, gpu.Options{
		Trace: func(e core.TraceEvent) {
			if e.To == warp.CTAActive && e.CTA > maxActive {
				maxActive = e.CTA
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgActiveCTAsPerSM() > float64(cfg.MaxCTAsPerSM)+1e-9 {
		t.Fatalf("avg active CTAs %.2f exceeds scheduling limit %d",
			res.AvgActiveCTAsPerSM(), cfg.MaxCTAsPerSM)
	}
	if res.SM.CTAsCompleted != 64 {
		t.Fatalf("completed = %d, want 64", res.SM.CTAsCompleted)
	}
}

func TestVTResidencyExceedsSchedulingLimit(t *testing.T) {
	cfg := vtConfig()
	res, err := gpu.Run(memBoundLaunch(10, 128, 64), cfg, gpu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 64-thread CTAs, tiny footprint: capacity admits far more than the
	// 8-CTA scheduling limit. Residency must reflect that.
	if res.VT.MaxResident <= cfg.MaxCTAsPerSM {
		t.Fatalf("max resident = %d, want > scheduling limit %d",
			res.VT.MaxResident, cfg.MaxCTAsPerSM)
	}
	if res.AvgResidentCTAsPerSM() <= res.AvgActiveCTAsPerSM() {
		t.Fatal("resident CTAs must exceed active CTAs under VT on this workload")
	}
}

func TestVTSwapsOccurAndBalance(t *testing.T) {
	cfg := vtConfig()
	res, err := gpu.Run(memBoundLaunch(12, 128, 64), cfg, gpu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.VT.SwapsOut == 0 {
		t.Fatal("memory-bound scheduling-limited workload must trigger swaps")
	}
	if res.VT.SwapsIn > res.VT.SwapsOut {
		t.Fatalf("swaps in (%d) cannot exceed swaps out (%d)", res.VT.SwapsIn, res.VT.SwapsOut)
	}
	if res.VT.ContextPeak <= 0 || res.VT.ContextPeak > cfg.VT.ContextBufferBytes*2 {
		t.Fatalf("context peak = %d bytes, implausible", res.VT.ContextPeak)
	}
}

func TestVTSpeedsUpSchedulingLimitedWorkload(t *testing.T) {
	l := func() *isa.Launch { return memBoundLaunch(16, 128, 64) }
	base, err := gpu.Run(l(), config.Small(), gpu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	vt, err := gpu.Run(l(), vtConfig(), gpu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := gpu.Run(l(), config.Small().WithPolicy(config.PolicyIdeal), gpu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if vt.Cycles >= base.Cycles {
		t.Fatalf("VT (%d cycles) must beat baseline (%d) on this workload",
			vt.Cycles, base.Cycles)
	}
	if ideal.Cycles > vt.Cycles {
		t.Fatalf("ideal (%d cycles) must be at least as fast as VT (%d)",
			ideal.Cycles, vt.Cycles)
	}
}

func TestVTNoGainWhenCapacityLimited(t *testing.T) {
	// A register-hungry kernel: capacity binds before scheduling, so VT
	// has no resident CTAs beyond the baseline and behaves identically.
	b := isa.NewBuilder("fat").ReserveRegs(60)
	b.S2R(0, isa.SrTidX)
	b.ShlImm(1, 0, 2)
	b.LdParam(2, 0)
	b.IAdd(2, 2, 1)
	b.LdG(3, 2, 0)
	b.IAdd(4, 3, 3)
	b.Exit()
	k := b.MustBuild()
	mk := func() *isa.Launch {
		return &isa.Launch{Kernel: k, GridDim: isa.Dim1(16), BlockDim: isa.Dim1(256),
			Params: []uint32{0x10000}}
	}
	base, err := gpu.Run(mk(), config.Small(), gpu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	vt, err := gpu.Run(mk(), vtConfig(), gpu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if vt.VT.SwapsOut != 0 {
		t.Fatalf("capacity-limited workload swapped %d times", vt.VT.SwapsOut)
	}
	ratio := float64(vt.Cycles) / float64(base.Cycles)
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("VT/baseline cycle ratio = %.3f, want ~1.0 when capacity limited", ratio)
	}
}

func TestFullSwapPaysFootprintLatency(t *testing.T) {
	l := func() *isa.Launch { return memBoundLaunch(12, 96, 64) }
	vt, err := gpu.Run(l(), vtConfig(), gpu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := gpu.Run(l(), config.Small().WithPolicy(config.PolicyFullSwap), gpu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fs.Cycles <= vt.Cycles {
		t.Fatalf("fullswap (%d cycles) must be slower than VT (%d)", fs.Cycles, vt.Cycles)
	}
}

func TestVTVirtualCapRestricts(t *testing.T) {
	cfg := vtConfig()
	cfg.VT.MaxVirtualCTAsPerSM = cfg.MaxCTAsPerSM // no headroom
	res, err := gpu.Run(memBoundLaunch(10, 128, 64), cfg, gpu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.VT.MaxResident > cfg.MaxCTAsPerSM {
		t.Fatalf("resident %d exceeded virtual cap %d", res.VT.MaxResident, cfg.MaxCTAsPerSM)
	}
	if res.VT.SwapsOut != 0 {
		t.Fatalf("no inactive CTAs can exist at cap; swaps = %d", res.VT.SwapsOut)
	}
}

func TestVTContextBufferDenies(t *testing.T) {
	cfg := vtConfig()
	cfg.VT.ContextBufferBytes = 1 // nothing beyond the active set fits
	res, err := gpu.Run(memBoundLaunch(10, 128, 64), cfg, gpu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.VT.DeniedByBuffer == 0 {
		t.Fatal("tiny context buffer must deny admissions")
	}
	if res.VT.MaxResident > cfg.MaxCTAsPerSM {
		t.Fatalf("resident %d despite 1-byte context buffer", res.VT.MaxResident)
	}
}

func TestVTTraceTransitionsConsistent(t *testing.T) {
	cfg := vtConfig()
	var events []core.TraceEvent
	_, err := gpu.Run(memBoundLaunch(10, 64, 64), cfg, gpu.Options{
		Trace: func(e core.TraceEvent) { events = append(events, e) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no trace events")
	}
	last := int64(0)
	for _, e := range events {
		if e.Cycle < last {
			t.Fatal("trace not in cycle order")
		}
		last = e.Cycle
	}
	// Every swap-out must be of an active CTA.
	for _, e := range events {
		if (e.To == warp.CTAInactiveReady || e.To == warp.CTAInactiveWaiting) &&
			e.From != warp.CTAActive {
			t.Fatalf("swap-out from %v", e.From)
		}
	}
}

// Direct-rig test: the stall detector must not fire while any warp is only
// ALU-blocked.
func TestStallDetectorIgnoresALUBlocks(t *testing.T) {
	cfg := vtConfig()
	cfg.NumSMs = 1
	b := isa.NewBuilder("aluchain")
	b.MovImm(0, 1)
	for i := 0; i < 30; i++ {
		b.IAddImm(0, 0, 1)
	}
	b.Exit()
	k := b.MustBuild()
	l := &isa.Launch{Kernel: k, GridDim: isa.Dim1(64), BlockDim: isa.Dim1(64)}

	ev := event.NewQueue()
	gmem := mem.NewBacking()
	msys := mem.NewSystem(&cfg, ev)
	grid := cta.NewGrid(l, &cfg)
	ctl := core.NewController(grid, 1, false)
	s := sm.New(0, &cfg, ev, msys, gmem, 1, ctl)

	for c := int64(1); c < 20000 && !(grid.Remaining() == 0 && s.Idle()); c++ {
		s.Cycle()
		ev.AdvanceTo(c)
	}
	if ctl.Stats.SwapsOut != 0 {
		t.Fatalf("ALU-only workload must never swap; swaps = %d", ctl.Stats.SwapsOut)
	}
}

func TestVTFunctionalCorrectnessThroughSwaps(t *testing.T) {
	// The kernel accumulates loads and stores the result; values must be
	// identical under baseline and VT despite thousands of swaps.
	mk := func() *isa.Launch {
		b := isa.NewBuilder("check")
		b.S2R(0, isa.SrCTAIdX)
		b.S2R(1, isa.SrNTidX)
		b.IMul(2, 0, 1)
		b.S2R(3, isa.SrTidX)
		b.IAdd(2, 2, 3)
		b.ShlImm(4, 2, 2)
		b.LdParam(5, 0)
		b.IAdd(5, 5, 4)
		b.MovImm(8, 0)
		b.MovImm(9, 0)
		b.Label("loop")
		b.LdG(6, 5, 0)
		b.IAdd(8, 8, 6)
		b.IAddImm(5, 5, 4*64*101)
		b.IAddImm(9, 9, 1)
		b.SetpImm(10, isa.CmpILT, 9, 8)
		b.Bra(10, "loop", "done")
		b.Label("done")
		b.LdParam(11, 1)
		b.IAdd(11, 11, 4)
		b.StG(11, 0, 8)
		b.Exit()
		return &isa.Launch{Kernel: b.MustBuild(), GridDim: isa.Dim1(64),
			BlockDim: isa.Dim1(64), Params: []uint32{0x100000, 0x2000000}}
	}
	read := func(bk *mem.Backing, n int) []uint32 {
		out := make([]uint32, n)
		for i := range out {
			out[i] = bk.LoadWord(0x2000000 + uint32(4*i))
		}
		return out
	}
	var baseOut, vtOut []uint32
	if _, err := gpu.Run(mk(), config.Small(), gpu.Options{
		KeepBacking: func(bk *mem.Backing) { baseOut = read(bk, 64*64) },
	}); err != nil {
		t.Fatal(err)
	}
	vtRes, err := gpu.Run(mk(), vtConfig(), gpu.Options{
		KeepBacking: func(bk *mem.Backing) { vtOut = read(bk, 64*64) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if vtRes.VT.SwapsOut == 0 {
		t.Fatal("expected swaps in this workload")
	}
	for i := range baseOut {
		if baseOut[i] != vtOut[i] {
			t.Fatalf("output %d differs: baseline %d vs VT %d", i, baseOut[i], vtOut[i])
		}
	}
}

func TestVTActivationNewest(t *testing.T) {
	cfg := vtConfig()
	cfg.VT.Activation = config.ActNewest
	res, err := gpu.Run(memBoundLaunch(12, 96, 64), cfg, gpu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SM.CTAsCompleted != 96 {
		t.Fatalf("completed %d CTAs under newest-first activation", res.SM.CTAsCompleted)
	}
	if res.VT.SwapsOut == 0 {
		t.Fatal("expected swaps under newest-first activation")
	}
}

func TestVTTriggerFractionSwapsMore(t *testing.T) {
	// A relaxed trigger (half the warps stalled) must swap at least as
	// often as the full-stall trigger on a multi-warp workload.
	strict := vtConfig()
	relaxed := vtConfig()
	relaxed.VT.TriggerFraction = 0.5
	l := func() *isa.Launch { return memBoundLaunch(12, 96, 128) } // 4 warps per CTA
	rs, err := gpu.Run(l(), strict, gpu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := gpu.Run(l(), relaxed, gpu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rr.VT.SwapsOut < rs.VT.SwapsOut {
		t.Fatalf("relaxed trigger swapped less: %d vs %d", rr.VT.SwapsOut, rs.VT.SwapsOut)
	}
	if rr.SM.CTAsCompleted != 96 || rs.SM.CTAsCompleted != 96 {
		t.Fatal("not all CTAs completed")
	}
}

func TestVTSwapPortsOverlap(t *testing.T) {
	one := vtConfig()
	four := vtConfig()
	four.VT.SwapPorts = 4
	l := func() *isa.Launch { return memBoundLaunch(12, 96, 64) }
	r1, err := gpu.Run(l(), one, gpu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := gpu.Run(l(), four, gpu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r4.SM.CTAsCompleted != 96 || r1.SM.CTAsCompleted != 96 {
		t.Fatal("not all CTAs completed")
	}
	// More ports can only help (or tie) on this rotation-heavy workload.
	if float64(r4.Cycles) > float64(r1.Cycles)*1.05 {
		t.Fatalf("4 ports (%d cycles) should not be materially slower than 1 (%d)",
			r4.Cycles, r1.Cycles)
	}
}

func TestEffDefaults(t *testing.T) {
	var v config.VTConfig
	if v.EffTriggerFraction() != 1.0 {
		t.Fatalf("default trigger = %v", v.EffTriggerFraction())
	}
	if v.EffSwapPorts() != 1 {
		t.Fatalf("default ports = %d", v.EffSwapPorts())
	}
	v.TriggerFraction = 2.0 // out of range -> default
	if v.EffTriggerFraction() != 1.0 {
		t.Fatal("out-of-range trigger must default")
	}
	v.TriggerFraction = 0.25
	if v.EffTriggerFraction() != 0.25 {
		t.Fatal("in-range trigger must pass through")
	}
	if config.ActOldest.String() != "oldest" || config.ActNewest.String() != "newest" {
		t.Fatal("activation policy names")
	}
}
