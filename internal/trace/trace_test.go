package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Emit(Event{Cycle: 0, Kind: KindRun, Marker: "start", Kernel: "nw", Policy: "vt"})
	w.Emit(Event{Cycle: 12, Kind: KindCTA, SM: 1, CTA: 3, From: "active", To: "inactive-waiting"})
	w.Emit(Event{Cycle: 100, Kind: KindSample, ActiveWarps: 7.5, ResidentWarps: 20, IPC: 14.25})
	w.Emit(Event{Cycle: 200, Kind: KindRun, Marker: "end"})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 4 {
		t.Fatalf("count = %d", w.Count())
	}

	events, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("read %d events", len(events))
	}
	if events[1].To != "inactive-waiting" || events[1].SM != 1 || events[1].CTA != 3 {
		t.Fatalf("CTA event mangled: %+v", events[1])
	}
	if events[2].IPC != 14.25 || events[2].ResidentWarps != 20 {
		t.Fatalf("sample mangled: %+v", events[2])
	}
}

// TestZeroValuedFieldsSurviveEncoding is the regression test for the
// omitempty bug: a transition on SM 0 / CTA 0 and a zero-IPC sample used
// to lose those keys entirely, so consumers distinguishing "missing"
// from "zero" (or schema-validating the lines) broke on the first SM of
// every run. Every kind-relevant field must be present even when zero,
// and fields of other kinds must stay out.
func TestZeroValuedFieldsSurviveEncoding(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Emit(Event{Cycle: 0, Kind: KindCTA, SM: 0, CTA: 0, From: "new", To: "active"})
	w.Emit(Event{Cycle: 0, Kind: KindSample, ActiveWarps: 0, ResidentWarps: 0, IPC: 0})
	w.Emit(Event{Cycle: 0, Kind: KindRun, Marker: "end"})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	mustHave := func(line string, keys ...string) {
		t.Helper()
		for _, k := range keys {
			if !strings.Contains(line, `"`+k+`"`) {
				t.Errorf("line %s missing key %q", line, k)
			}
		}
	}
	mustNotHave := func(line string, keys ...string) {
		t.Helper()
		for _, k := range keys {
			if strings.Contains(line, `"`+k+`"`) {
				t.Errorf("line %s has foreign key %q", line, k)
			}
		}
	}
	mustHave(lines[0], "cycle", "kind", "sm", "cta", "from", "to")
	mustNotHave(lines[0], "ipc", "marker", "activeWarps")
	mustHave(lines[1], "cycle", "kind", "activeWarps", "residentWarps", "ipc")
	mustNotHave(lines[1], "sm", "cta", "from", "to")
	mustHave(lines[2], "cycle", "kind", "marker")
	mustNotHave(lines[2], "sm", "ipc", "kernel", "policy")

	events, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if events[0].SM != 0 || events[0].CTA != 0 || events[0].To != "active" {
		t.Fatalf("round trip mangled: %+v", events[0])
	}
}

func TestReadAllRejectsGarbage(t *testing.T) {
	if _, err := ReadAll(strings.NewReader("{\"cycle\":1}\nnot json\n")); err == nil {
		t.Fatal("expected parse error with line number")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error lacks line number: %v", err)
	}
}

func TestReadAllSkipsBlankLines(t *testing.T) {
	events, err := ReadAll(strings.NewReader("{\"cycle\":1,\"kind\":\"cta\"}\n\n{\"cycle\":2,\"kind\":\"cta\"}\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
}

func TestSummarize(t *testing.T) {
	events := []Event{
		{Cycle: 1, Kind: KindCTA, To: "active"},
		{Cycle: 5, Kind: KindCTA, To: "inactive-waiting"},
		{Cycle: 7, Kind: KindCTA, To: "inactive-ready"},
		{Cycle: 9, Kind: KindSample},
		{Cycle: 11, Kind: KindRun, Marker: "end"},
	}
	s := Summarize(events)
	if s.Events != 5 || s.Transitions != 3 || s.Samples != 1 || s.SwapsOut != 2 || s.LastCycle != 11 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestWriterStickyError(t *testing.T) {
	w := NewWriter(failWriter{})
	for i := 0; i < 10000; i++ { // overflow the bufio buffer to force a write
		w.Emit(Event{Cycle: int64(i), Kind: KindSample})
	}
	if err := w.Flush(); err == nil {
		t.Fatal("expected sticky write error")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errFail }

var errFail = &failError{}

type failError struct{}

func (*failError) Error() string { return "fail" }
