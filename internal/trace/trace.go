// Package trace provides a structured JSONL event log for simulations:
// CTA state transitions, occupancy samples, and run markers, written one
// JSON object per line so external tools (jq, pandas) can consume them.
// The writer is wiring-agnostic — cmd/vtsim connects it to the simulator's
// trace and timeline hooks.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Kind labels an event record.
type Kind string

// Event kinds.
const (
	// KindCTA is a CTA state transition (Virtual Thread policies).
	KindCTA Kind = "cta"
	// KindSample is an occupancy/IPC timeline sample.
	KindSample Kind = "sample"
	// KindRun marks the start or end of a simulation.
	KindRun Kind = "run"
)

// Event is one trace record. Encoding is per kind (see MarshalJSON):
// every field that is meaningful for the event's kind is always present
// in the JSON, even when zero — "sm":0, "cta":0, and "ipc":0 are real
// values, not absences — while fields belonging to other kinds are
// dropped entirely.
type Event struct {
	Cycle int64 `json:"cycle"`
	Kind  Kind  `json:"kind"`

	// KindCTA fields.
	SM   int    `json:"sm"`
	CTA  int    `json:"cta"`
	From string `json:"from"`
	To   string `json:"to"`

	// KindSample fields.
	ActiveWarps   float64 `json:"activeWarps"`
	ResidentWarps float64 `json:"residentWarps"`
	IPC           float64 `json:"ipc"`

	// KindRun fields.
	Marker string `json:"marker"` // "start" or "end"
	Kernel string `json:"kernel"`
	Policy string `json:"policy"`
}

// MarshalJSON encodes exactly the fields that are meaningful for the
// event's kind, all explicitly. The earlier struct-wide omitempty
// encoding silently dropped zero values that carry information — a
// transition on SM 0, CTA 0 of the grid, a zero-IPC sample — which broke
// consumers that treat a missing key and zero differently.
func (e Event) MarshalJSON() ([]byte, error) {
	switch e.Kind {
	case KindCTA:
		return json.Marshal(struct {
			Cycle int64  `json:"cycle"`
			Kind  Kind   `json:"kind"`
			SM    int    `json:"sm"`
			CTA   int    `json:"cta"`
			From  string `json:"from"`
			To    string `json:"to"`
		}{e.Cycle, e.Kind, e.SM, e.CTA, e.From, e.To})
	case KindSample:
		return json.Marshal(struct {
			Cycle         int64   `json:"cycle"`
			Kind          Kind    `json:"kind"`
			ActiveWarps   float64 `json:"activeWarps"`
			ResidentWarps float64 `json:"residentWarps"`
			IPC           float64 `json:"ipc"`
		}{e.Cycle, e.Kind, e.ActiveWarps, e.ResidentWarps, e.IPC})
	case KindRun:
		return json.Marshal(struct {
			Cycle  int64  `json:"cycle"`
			Kind   Kind   `json:"kind"`
			Marker string `json:"marker"`
			Kernel string `json:"kernel,omitempty"`
			Policy string `json:"policy,omitempty"`
		}{e.Cycle, e.Kind, e.Marker, e.Kernel, e.Policy})
	default:
		// Unknown kind: emit everything rather than guess.
		type plain Event
		return json.Marshal(plain(e))
	}
}

// Writer emits events as JSON lines. It buffers; call Flush (or Close the
// underlying file after Flush) when done. Writer is not concurrency-safe;
// a simulation is single-threaded so this matches the producer.
type Writer struct {
	bw  *bufio.Writer
	enc *json.Encoder
	n   int
	err error
}

// NewWriter returns a JSONL writer over w.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{bw: bw, enc: json.NewEncoder(bw)}
}

// Emit writes one event; errors are sticky and reported by Flush.
func (tw *Writer) Emit(e Event) {
	if tw.err != nil {
		return
	}
	if err := tw.enc.Encode(e); err != nil {
		tw.err = err
		return
	}
	tw.n++
}

// Count returns the number of events emitted so far.
func (tw *Writer) Count() int { return tw.n }

// Flush drains the buffer and returns the first error encountered.
func (tw *Writer) Flush() error {
	if tw.err != nil {
		return tw.err
	}
	return tw.bw.Flush()
}

// ReadAll parses a JSONL trace back into events.
func ReadAll(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, e)
	}
	return out, sc.Err()
}

// Summary aggregates a trace for quick inspection.
type Summary struct {
	Events      int
	Transitions int
	Samples     int
	SwapsOut    int
	LastCycle   int64
}

// Summarize computes a Summary over events.
func Summarize(events []Event) Summary {
	var s Summary
	for _, e := range events {
		s.Events++
		if e.Cycle > s.LastCycle {
			s.LastCycle = e.Cycle
		}
		switch e.Kind {
		case KindCTA:
			s.Transitions++
			if e.To == "inactive-waiting" || e.To == "inactive-ready" {
				s.SwapsOut++
			}
		case KindSample:
			s.Samples++
		}
	}
	return s
}
