// Package warp defines the execution contexts of the simulated GPU — warps
// and CTAs — and the functional semantics of the ISA. A Warp owns all the
// per-warp state the hardware keeps: the SIMT stack, scoreboard, register
// values, and barrier/finish flags. Virtual Thread's central trick is that
// this state splits into a large capacity part (registers, shared memory)
// that stays resident and a tiny scheduling part (PC, SIMT stack,
// scoreboard) that is cheap to save and restore; the package keeps both in
// the Warp object so policies can bind and unbind warps from hardware warp
// slots freely.
package warp

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/simt"
)

// RegMask is a 256-bit register bitset used by the scoreboard. It lives in
// package isa so instructions can carry pre-decoded operand masks; the
// alias keeps this package's historical name working.
type RegMask = isa.RegMask

// Scoreboard tracks registers with outstanding writes, distinguishing
// long-latency producers (global loads) from short-latency ALU producers.
// The distinction drives Virtual Thread's swap trigger: a warp blocked on a
// global-load register is worth swapping out; one blocked on an ALU result
// is not.
type Scoreboard struct {
	pend RegMask // registers awaiting any writeback
	load RegMask // subset produced by outstanding global loads
}

// MarkPending records an outstanding write to r; longLatency tags global
// loads.
func (sb *Scoreboard) MarkPending(r isa.Reg, longLatency bool) {
	if r == isa.RZ {
		return
	}
	sb.pend.Set(r)
	if longLatency {
		sb.load.Set(r)
	}
}

// ClearPending retires the outstanding write to r.
func (sb *Scoreboard) ClearPending(r isa.Reg) {
	if r == isa.RZ {
		return
	}
	sb.pend.Clear(r)
	sb.load.Clear(r)
}

// Conflicts reports whether the instruction has a RAW or WAW hazard against
// outstanding writes, and whether any conflicting register is waiting on a
// global load. srcBuf is scratch to avoid allocation.
func (sb *Scoreboard) Conflicts(in *isa.Instr, srcBuf []isa.Reg) (conflict, onLoad bool) {
	if in.Decoded {
		// load is a subset of pend (MarkPending/ClearPending maintain them
		// in lockstep), so the slow path's "some conflicting register is
		// load-pending" is exactly a load/HazMask intersection.
		if !sb.pend.Intersects(&in.HazMask) {
			return false, false
		}
		return true, sb.load.Intersects(&in.HazMask)
	}
	check := func(r isa.Reg) {
		if r != isa.RZ && sb.pend.Has(r) {
			conflict = true
			if sb.load.Has(r) {
				onLoad = true
			}
		}
	}
	if in.Op.HasDst() {
		check(in.Dst)
	}
	for _, r := range in.SrcRegs(srcBuf[:0]) {
		check(r)
	}
	return conflict, onLoad
}

// Busy reports whether any write is outstanding.
func (sb *Scoreboard) Busy() bool { return sb.pend.Any() }

// Snapshot returns a copy of the scoreboard (it is a value type already;
// provided for symmetry with the SIMT stack).
func (sb *Scoreboard) Snapshot() Scoreboard { return *sb }

// Masks returns the pending and load register masks — the scoreboard's
// complete serializable state.
func (sb *Scoreboard) Masks() (pend, load RegMask) { return sb.pend, sb.load }

// SetMasks replaces the scoreboard state (the inverse of Masks).
func (sb *Scoreboard) SetMasks(pend, load RegMask) { sb.pend, sb.load = pend, load }

// CTAState is the lifecycle state of a CTA on an SM. The inactive states
// exist only under the Virtual Thread policies.
type CTAState int

// CTA lifecycle states.
const (
	// CTAPending is assigned to the SM but never yet activated (VT).
	// Pending CTAs are ready by definition.
	CTAPending CTAState = iota
	// CTAActive owns warp slots and is being scheduled.
	CTAActive
	// CTARestoring owns warp slots but its context restore is still in
	// flight; its warps cannot issue yet (VT swap-in latency).
	CTARestoring
	// CTAInactiveWaiting is swapped out with outstanding global loads.
	CTAInactiveWaiting
	// CTAInactiveReady is swapped out and able to make progress.
	CTAInactiveReady
	// CTADone has retired all of its warps.
	CTADone
)

// String names the state for reports.
func (s CTAState) String() string {
	switch s {
	case CTAPending:
		return "pending"
	case CTAActive:
		return "active"
	case CTARestoring:
		return "restoring"
	case CTAInactiveWaiting:
		return "inactive-waiting"
	case CTAInactiveReady:
		return "inactive-ready"
	case CTADone:
		return "done"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// CTA is one resident cooperative thread array: its warps, its functional
// shared memory, barrier bookkeeping, and the SM resource footprint it
// holds.
type CTA struct {
	FlatID   int      // linear CTA index within the grid
	KernelID int      // index of the launch in a multi-kernel run
	ID       isa.Dim3 // three-dimensional CTA index
	Launch   *isa.Launch
	Warps    []*Warp
	SMem     []uint32 // functional shared-memory words

	Arrived  int // warps currently parked at the barrier
	Finished int // warps that have exited

	RegsAlloc int // SM registers held (allocation-granular)
	SMemAlloc int // SM shared-memory bytes held
	Threads   int // thread slots the CTA occupies when active

	State       CTAState
	AssignedAt  int64 // cycle the CTA became resident
	ActivatedAt int64 // cycle of the most recent activation
	Activations int   // number of times the CTA gained warp slots

	// CtxCharged is the context-buffer bytes the VT controller charged
	// when this CTA was swapped out (0 while active). The charge is
	// recorded here rather than recomputed at release because functional
	// fast-forward spans can grow or shrink a swapped-out CTA's SIMT
	// stacks, and the buffer must release exactly what was charged.
	CtxCharged int
}

// Done reports whether every warp has exited.
func (c *CTA) Done() bool { return c.Finished == len(c.Warps) }

// BarrierReleased reports whether all live warps have arrived.
func (c *CTA) BarrierReleased() bool {
	return c.Arrived > 0 && c.Arrived+c.Finished == len(c.Warps)
}

// Warp is one warp's complete execution context.
type Warp struct {
	CTA      *CTA
	IdxInCTA int
	Lanes    int // live thread count (last warp of a CTA may be partial)

	Regs  []uint32 // register values, layout [reg*warpSize + lane]
	warpW int      // warp width used for Regs layout

	Stack simt.Stack
	SB    Scoreboard

	AtBarrier bool
	Finished  bool

	// OutstandingLoads counts global-load instructions in flight; it is
	// nonzero for the swapped-out CTAs that VT must wait on.
	OutstandingLoads int

	// Issue fast-path cache, owned by the SM the warp is resident on (see
	// internal/sm and docs/ARCHITECTURE.md, "Issue fast path"). Slot is
	// the warp-slot index while bound, -1 otherwise. IssueState is the
	// cached scheduler classification (BlockedDone while unbound or while
	// the CTA is not active); RestoreReady marks a bound warp that would
	// be ready but for its CTA's in-flight context restore.
	Slot         int
	IssueState   Blocked
	RestoreReady bool

	LastIssue    int64 // cycle of the most recent issue (GTO priority)
	IssuedInstrs int64 // warp instructions issued
	ThreadInstrs int64 // thread instructions (issued x active lanes)
}

// NewCTA builds the runtime instance of the flatID'th CTA of the launch,
// with functional state initialized (registers zero, shared memory zero,
// SIMT stacks at PC 0). warpSize is the machine's warp width.
func NewCTA(l *isa.Launch, flatID int, warpSize int) *CTA {
	g := l.GridDim
	id := isa.Dim3{
		X: flatID % g.X,
		Y: (flatID / g.X) % g.Y,
		Z: flatID / (g.X * g.Y),
	}
	threads := l.BlockDim.Size()
	nw := l.WarpsPerCTA(warpSize)
	c := &CTA{
		FlatID: flatID,
		ID:     id,
		Launch: l,
		SMem:   make([]uint32, (l.Kernel.SMemBytes+3)/4),
		State:  CTAPending,
	}
	for w := 0; w < nw; w++ {
		lanes := warpSize
		if rem := threads - w*warpSize; rem < lanes {
			lanes = rem
		}
		wp := &Warp{
			CTA:        c,
			IdxInCTA:   w,
			Lanes:      lanes,
			Regs:       make([]uint32, l.Kernel.NumRegs*warpSize),
			warpW:      warpSize,
			Slot:       -1,
			IssueState: BlockedDone,
		}
		wp.Stack.Reset(lanes)
		c.Warps = append(c.Warps, wp)
	}
	return c
}

// Reg returns the value of register r in the given lane.
func (w *Warp) Reg(r isa.Reg, lane int) uint32 {
	if r == isa.RZ {
		return 0
	}
	return w.Regs[int(r)*w.warpW+lane]
}

// SetReg writes register r in the given lane; writes to RZ are dropped.
func (w *Warp) SetReg(r isa.Reg, lane int, v uint32) {
	if r == isa.RZ {
		return
	}
	w.Regs[int(r)*w.warpW+lane] = v
}

// GlobalTid returns the lane's linear thread index within its CTA.
func (w *Warp) GlobalTid(lane int) int { return w.IdxInCTA*w.warpW + lane }

// Blocked classifies why the warp cannot issue its next instruction, for
// the VT stall detector and the stall-breakdown statistics.
type Blocked int

// Blocked reasons, from the VT controller's point of view.
const (
	BlockedNot     Blocked = iota // ready to issue
	BlockedALU                    // short-latency scoreboard dependence
	BlockedMem                    // dependence on an outstanding global load
	BlockedBarrier                // parked at a CTA barrier
	BlockedDone                   // warp finished
)

// String names the blocked reason.
func (b Blocked) String() string {
	switch b {
	case BlockedNot:
		return "ready"
	case BlockedALU:
		return "alu-dep"
	case BlockedMem:
		return "mem-dep"
	case BlockedBarrier:
		return "barrier"
	case BlockedDone:
		return "done"
	default:
		return fmt.Sprintf("blocked(%d)", int(b))
	}
}

// BlockedState classifies the warp's current impediment, ignoring
// structural (execution-unit) availability. srcBuf is scratch.
func (w *Warp) BlockedState(code []isa.Instr, srcBuf []isa.Reg) Blocked {
	if w.Finished {
		return BlockedDone
	}
	if w.AtBarrier {
		return BlockedBarrier
	}
	pc, _, ok := w.Stack.Current()
	if !ok {
		return BlockedDone
	}
	in := &code[pc]
	conflict, onLoad := w.SB.Conflicts(in, srcBuf)
	switch {
	case !conflict:
		return BlockedNot
	case onLoad:
		return BlockedMem
	default:
		return BlockedALU
	}
}

// ContextFootprintBytes returns the scheduling-state bytes VT must save for
// this warp: PC + SIMT stack + scoreboard + flags. This is the quantity the
// context buffer budget constrains.
func (w *Warp) ContextFootprintBytes() int {
	return 4 /* PC */ + w.Stack.FootprintBytes() + 64 /* scoreboard */ + 4 /* flags */
}
