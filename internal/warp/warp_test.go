package warp

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/mem"
)

func simpleLaunch(t *testing.T, k *isa.Kernel, grid, block int, params ...uint32) *isa.Launch {
	t.Helper()
	l := &isa.Launch{Kernel: k, GridDim: isa.Dim1(grid), BlockDim: isa.Dim1(block), Params: params}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	return l
}

// runWarp drives a warp to completion with no timing: issues the next
// instruction every step.
func runWarp(t *testing.T, w *Warp, code []isa.Instr, gmem *mem.Backing) {
	t.Helper()
	buf := make([]uint32, 64)
	for steps := 0; !w.Finished; steps++ {
		if steps > 100000 {
			t.Fatal("warp did not finish")
		}
		pc, _, ok := w.Stack.Current()
		if !ok {
			break
		}
		Execute(w, &code[pc], gmem, buf, nil)
	}
}

func TestScoreboard(t *testing.T) {
	var sb Scoreboard
	buf := make([]isa.Reg, 0, 4)
	in := isa.Instr{Op: isa.OpIAdd, Dst: 2, SrcA: 0, SrcB: 1}

	if c, _ := sb.Conflicts(&in, buf[:4]); c {
		t.Fatal("empty scoreboard must not conflict")
	}
	sb.MarkPending(0, false) // RAW on SrcA, short latency
	c, onLoad := sb.Conflicts(&in, buf[:4])
	if !c || onLoad {
		t.Fatalf("RAW short: conflict=%v onLoad=%v", c, onLoad)
	}
	sb.ClearPending(0)
	sb.MarkPending(1, true) // RAW on SrcB, load
	c, onLoad = sb.Conflicts(&in, buf[:4])
	if !c || !onLoad {
		t.Fatalf("RAW load: conflict=%v onLoad=%v", c, onLoad)
	}
	sb.ClearPending(1)
	sb.MarkPending(2, false) // WAW on Dst
	if c, _ := sb.Conflicts(&in, buf[:4]); !c {
		t.Fatal("WAW must conflict")
	}
	sb.ClearPending(2)
	if sb.Busy() {
		t.Fatal("cleared scoreboard must be idle")
	}
	// RZ never conflicts.
	sb.MarkPending(isa.RZ, true)
	if sb.Busy() {
		t.Fatal("RZ must not be tracked")
	}
}

func TestNewCTAShapes(t *testing.T) {
	k := isa.NewBuilder("k").ReserveRegs(4).SharedMem(256).Nop().Exit().MustBuild()
	l := simpleLaunch(t, k, 6, 96)
	c := NewCTA(l, 4, 32)
	if c.ID != (isa.Dim3{X: 4, Y: 0, Z: 0}) {
		t.Errorf("CTA id = %v", c.ID)
	}
	if len(c.Warps) != 3 {
		t.Fatalf("warps = %d, want 3", len(c.Warps))
	}
	if len(c.SMem) != 64 {
		t.Errorf("smem words = %d, want 64", len(c.SMem))
	}
	for i, w := range c.Warps {
		if w.Lanes != 32 {
			t.Errorf("warp %d lanes = %d", i, w.Lanes)
		}
		if len(w.Regs) != 4*32 {
			t.Errorf("warp %d regs = %d", i, len(w.Regs))
		}
	}
}

func TestPartialLastWarp(t *testing.T) {
	k := isa.NewBuilder("k").Nop().Exit().MustBuild()
	l := simpleLaunch(t, k, 1, 40) // 40 threads = 1 full warp + 8 lanes
	c := NewCTA(l, 0, 32)
	if len(c.Warps) != 2 {
		t.Fatalf("warps = %d, want 2", len(c.Warps))
	}
	if c.Warps[1].Lanes != 8 {
		t.Fatalf("partial warp lanes = %d, want 8", c.Warps[1].Lanes)
	}
	_, active, _ := c.Warps[1].Stack.Current()
	if active.Count() != 8 {
		t.Fatalf("partial warp active = %d, want 8", active.Count())
	}
}

func TestMultiDimCTAID(t *testing.T) {
	k := isa.NewBuilder("k").Nop().Exit().MustBuild()
	l := &isa.Launch{Kernel: k, GridDim: isa.Dim3{X: 3, Y: 2, Z: 2}, BlockDim: isa.Dim1(32)}
	c := NewCTA(l, 7, 32) // 7 = x=1, y=0, z=1 in a 3x2 grid
	if c.ID != (isa.Dim3{X: 1, Y: 0, Z: 1}) {
		t.Errorf("CTA id = %v, want (1,0,1)", c.ID)
	}
}

func TestExecuteALUAndSpecials(t *testing.T) {
	// out[tid] = tid * p0 + ctaid
	b := isa.NewBuilder("alu")
	b.S2R(0, isa.SrTidX)
	b.LdParam(1, 0)
	b.IMul(2, 0, 1)
	b.S2R(3, isa.SrCTAIdX)
	b.IAdd(2, 2, 3)
	b.Exit()
	k := b.MustBuild()
	l := simpleLaunch(t, k, 4, 32, 10)
	c := NewCTA(l, 2, 32)
	w := c.Warps[0]
	runWarp(t, w, k.Code, mem.NewBacking())
	for lane := 0; lane < 4; lane++ {
		want := uint32(lane*10 + 2)
		if got := w.Reg(2, lane); got != want {
			t.Errorf("lane %d: R2 = %d, want %d", lane, got, want)
		}
	}
}

func TestExecuteGlobalMemory(t *testing.T) {
	// out[tid] = in[tid] + 1
	b := isa.NewBuilder("memtest")
	b.S2R(0, isa.SrTidX)
	b.ShlImm(1, 0, 2) // byte offset
	b.LdParam(2, 0)   // in base
	b.IAdd(3, 2, 1)
	b.LdG(4, 3, 0)
	b.IAddImm(4, 4, 1)
	b.LdParam(5, 1) // out base
	b.IAdd(6, 5, 1)
	b.StG(6, 0, 4)
	b.Exit()
	k := b.MustBuild()

	gmem := mem.NewBacking()
	const inBase, outBase = 0x1000, 0x2000
	gmem.WriteWords(inBase, []uint32{100, 200, 300, 400})

	l := simpleLaunch(t, k, 1, 32, inBase, outBase)
	c := NewCTA(l, 0, 32)
	runWarp(t, c.Warps[0], k.Code, gmem)

	for i, want := range []uint32{101, 201, 301, 401} {
		if got := gmem.LoadWord(outBase + uint32(4*i)); got != want {
			t.Errorf("out[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestExecuteSharedMemory(t *testing.T) {
	// smem[tid] = tid; bar; r = smem[blockDim-1-tid]
	b := isa.NewBuilder("smem")
	b.SharedMem(128)
	b.S2R(0, isa.SrTidX)
	b.ShlImm(1, 0, 2)
	b.StS(1, 0, 0)
	b.S2R(2, isa.SrNTidX)
	b.IAddImm(2, 2, -1)
	b.ISub(2, 2, 0) // blockDim-1-tid
	b.ShlImm(2, 2, 2)
	b.LdS(3, 2, 0)
	b.Exit()
	k := b.MustBuild()
	l := simpleLaunch(t, k, 1, 32)
	c := NewCTA(l, 0, 32)
	w := c.Warps[0]
	runWarp(t, w, k.Code, mem.NewBacking())
	for lane := 0; lane < 32; lane++ {
		if got := w.Reg(3, lane); got != uint32(31-lane) {
			t.Errorf("lane %d read %d, want %d", lane, got, 31-lane)
		}
	}
}

func TestExecuteDivergentBranch(t *testing.T) {
	// if (tid < 2) r1 = 100 else r1 = 200
	b := isa.NewBuilder("div")
	b.S2R(0, isa.SrTidX)
	b.SetpImm(1, isa.CmpILT, 0, 2)
	b.Bra(1, "then", "join")
	b.MovImm(2, 200)
	b.Jmp("join")
	b.Label("then")
	b.MovImm(2, 100)
	b.Label("join")
	b.Exit()
	k := b.MustBuild()
	l := simpleLaunch(t, k, 1, 32)
	c := NewCTA(l, 0, 32)
	w := c.Warps[0]
	runWarp(t, w, k.Code, mem.NewBacking())
	for lane := 0; lane < 4; lane++ {
		want := uint32(200)
		if lane < 2 {
			want = 100
		}
		if got := w.Reg(2, lane); got != want {
			t.Errorf("lane %d: R2 = %d, want %d", lane, got, want)
		}
	}
}

func TestExecuteLoop(t *testing.T) {
	// r0 = 0; for i in 0..tid: r0 += 2   (divergent trip counts)
	b := isa.NewBuilder("loop")
	b.S2R(0, isa.SrTidX) // trip count = tid
	b.MovImm(1, 0)       // acc
	b.MovImm(2, 0)       // i
	b.Label("head")
	b.Setp(3, isa.CmpILT, 2, 0)
	b.Bra(3, "body", "done")
	b.Jmp("done")
	b.Label("body")
	b.IAddImm(1, 1, 2)
	b.IAddImm(2, 2, 1)
	b.Jmp("head")
	b.Label("done")
	b.Exit()
	k := b.MustBuild()
	l := simpleLaunch(t, k, 1, 32)
	c := NewCTA(l, 0, 32)
	w := c.Warps[0]
	runWarp(t, w, k.Code, mem.NewBacking())
	for lane := 0; lane < 8; lane++ {
		if got := w.Reg(1, lane); got != uint32(2*lane) {
			t.Errorf("lane %d acc = %d, want %d", lane, got, 2*lane)
		}
	}
}

func TestExecuteFloatOps(t *testing.T) {
	b := isa.NewBuilder("float")
	b.MovImm(0, fbits(3.0))
	b.MovImm(1, fbits(4.0))
	b.FMul(2, 0, 1)    // 12
	b.FAdd(3, 2, 0)    // 15
	b.FFma(4, 0, 1, 3) // 27
	b.FSqrt(5, 1)      // 2
	b.FRcp(6, 1)       // 0.25
	b.Exit()
	k := b.MustBuild()
	l := simpleLaunch(t, k, 1, 32)
	c := NewCTA(l, 0, 32)
	w := c.Warps[0]
	runWarp(t, w, k.Code, mem.NewBacking())
	checks := []struct {
		r    isa.Reg
		want float32
	}{{2, 12}, {3, 15}, {4, 27}, {5, 2}, {6, 0.25}}
	for _, c2 := range checks {
		if got := ffrom(w.Reg(c2.r, 0)); got != c2.want {
			t.Errorf("R%d = %v, want %v", c2.r, got, c2.want)
		}
	}
}

func TestExecuteBarrierFlag(t *testing.T) {
	b := isa.NewBuilder("bar")
	b.Bar()
	b.Exit()
	k := b.MustBuild()
	l := simpleLaunch(t, k, 1, 64)
	c := NewCTA(l, 0, 32)
	w := c.Warps[0]
	buf := make([]uint32, 32)
	info := Execute(w, &k.Code[0], mem.NewBacking(), buf, nil)
	if !info.IsBar {
		t.Fatal("barrier must be flagged")
	}
	pc, _, _ := w.Stack.Current()
	if pc != 1 {
		t.Fatalf("pc after barrier = %d, want 1", pc)
	}
}

func TestBlockedState(t *testing.T) {
	b := isa.NewBuilder("blk")
	b.IAdd(2, 0, 1)
	b.Exit()
	k := b.MustBuild()
	l := simpleLaunch(t, k, 1, 32)
	c := NewCTA(l, 0, 32)
	w := c.Warps[0]
	buf := make([]isa.Reg, 4)

	if got := w.BlockedState(k.Code, buf); got != BlockedNot {
		t.Fatalf("fresh warp blocked = %v", got)
	}
	w.SB.MarkPending(0, false)
	if got := w.BlockedState(k.Code, buf); got != BlockedALU {
		t.Fatalf("ALU dep blocked = %v", got)
	}
	w.SB.MarkPending(1, true)
	if got := w.BlockedState(k.Code, buf); got != BlockedMem {
		t.Fatalf("load dep blocked = %v", got)
	}
	w.SB = Scoreboard{}
	w.AtBarrier = true
	if got := w.BlockedState(k.Code, buf); got != BlockedBarrier {
		t.Fatalf("barrier blocked = %v", got)
	}
	w.AtBarrier = false
	w.Finished = true
	if got := w.BlockedState(k.Code, buf); got != BlockedDone {
		t.Fatalf("finished blocked = %v", got)
	}
	if BlockedNot.String() != "ready" || BlockedMem.String() != "mem-dep" {
		t.Error("blocked names wrong")
	}
}

func TestCTABarrierBookkeeping(t *testing.T) {
	k := isa.NewBuilder("k").Bar().Exit().MustBuild()
	l := simpleLaunch(t, k, 1, 64)
	c := NewCTA(l, 0, 32)
	c.Arrived = 1
	if c.BarrierReleased() {
		t.Fatal("one of two warps must not release")
	}
	c.Arrived = 2
	if !c.BarrierReleased() {
		t.Fatal("all warps arrived must release")
	}
	c.Arrived, c.Finished = 1, 1
	if !c.BarrierReleased() {
		t.Fatal("finished warps count toward release")
	}
	if c.Done() {
		t.Fatal("not all warps finished")
	}
	c.Finished = 2
	if !c.Done() {
		t.Fatal("all warps finished must be done")
	}
}

func TestCTAStateString(t *testing.T) {
	names := map[CTAState]string{
		CTAPending:         "pending",
		CTAActive:          "active",
		CTAInactiveWaiting: "inactive-waiting",
		CTAInactiveReady:   "inactive-ready",
		CTADone:            "done",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestContextFootprint(t *testing.T) {
	k := isa.NewBuilder("k").Nop().Exit().MustBuild()
	l := simpleLaunch(t, k, 1, 32)
	c := NewCTA(l, 0, 32)
	fp := c.Warps[0].ContextFootprintBytes()
	if fp <= 0 || fp > 1024 {
		t.Fatalf("footprint = %d, implausible", fp)
	}
}

// Property: RegMask set/clear/has behave as a set for arbitrary registers.
func TestRegMaskProperty(t *testing.T) {
	f := func(rs []uint8) bool {
		var m RegMask
		seen := map[isa.Reg]bool{}
		for _, r8 := range rs {
			r := isa.Reg(r8)
			if seen[r] {
				m.Clear(r)
				seen[r] = false
			} else {
				m.Set(r)
				seen[r] = true
			}
		}
		for r := 0; r < 256; r++ {
			if m.Has(isa.Reg(r)) != seen[isa.Reg(r)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: execute-at-issue never writes registers of inactive lanes.
func TestInactiveLanesUntouchedProperty(t *testing.T) {
	b := isa.NewBuilder("p")
	b.S2R(0, isa.SrTidX)
	b.SetpImm(1, isa.CmpILT, 0, 7)
	b.Bra(1, "then", "join")
	b.Jmp("join")
	b.Label("then")
	b.MovImm(2, 0xDEAD)
	b.Label("join")
	b.Exit()
	k := b.MustBuild()
	l := &isa.Launch{Kernel: k, GridDim: isa.Dim1(1), BlockDim: isa.Dim1(32)}
	c := NewCTA(l, 0, 32)
	w := c.Warps[0]
	runWarp(t, w, k.Code, mem.NewBacking())
	for lane := 0; lane < 32; lane++ {
		got := w.Reg(2, lane)
		if lane < 7 && got != 0xDEAD {
			t.Errorf("active lane %d missed write: %x", lane, got)
		}
		if lane >= 7 && got != 0 {
			t.Errorf("inactive lane %d corrupted: %x", lane, got)
		}
	}
}
