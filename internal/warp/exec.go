package warp

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/simt"
)

// ExecInfo reports what a functionally executed instruction did, for the
// timing model to act on.
type ExecInfo struct {
	Active simt.Mask // lanes that executed the instruction
	Lanes  int       // Active.Count(), precomputed
	IsExit bool      // warp hit exit (Finished may now be set)
	IsBar  bool      // warp arrived at a barrier
	MemOp  bool      // instruction was a load/store
	Addrs  []uint32  // per-lane byte addresses for memory ops (scratch-backed)
}

// Execute runs the instruction at the warp's current PC for all active
// lanes, updating register values, the SIMT stack, and functional memory
// (execute-at-issue semantics; timing is the caller's concern). addrBuf
// must have capacity for one address per lane and is reused in the
// returned ExecInfo. The caller is responsible for scoreboard and barrier
// bookkeeping.
//
// When log is non-nil, global-memory lane loops are recorded into it
// instead of touching gmem; the caller replays them with Flush in SM-index
// order, which is how the parallel engine keeps shared-memory traffic
// bit-identical to sequential execution (see GmemLog).
func Execute(w *Warp, in *isa.Instr, gmem *mem.Backing, addrBuf []uint32, log *GmemLog) ExecInfo {
	_, active, ok := w.Stack.Current()
	if !ok {
		return ExecInfo{}
	}
	info := ExecInfo{Active: active, Lanes: active.Count()}

	switch in.Op {
	case isa.OpBra:
		var taken simt.Mask
		for m := active; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(uint64(m))
			if w.Reg(in.SrcA, lane) != 0 {
				taken |= 1 << uint(lane)
			}
		}
		w.Stack.Branch(taken, in.Target, in.Reconv)
		return info
	case isa.OpJmp:
		w.Stack.Jump(in.Target)
		return info
	case isa.OpExit:
		w.Stack.Exit(active)
		info.IsExit = true
		if w.Stack.Finished() {
			w.Finished = true
		}
		return info
	case isa.OpBar:
		w.Stack.Advance()
		info.IsBar = true
		return info
	}

	if in.Op.Unit() == isa.UnitMem {
		info.MemOp = true
		info.Addrs = addrBuf[:w.warpW]
		for m := active; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(uint64(m))
			info.Addrs[lane] = w.Reg(in.SrcA, lane) + in.Imm
		}
		switch in.Op {
		case isa.OpLdShared, isa.OpStShared:
			// Shared memory is CTA-private: always safe to run inline.
			for m := active; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros64(uint64(m))
				if in.Op == isa.OpLdShared {
					w.SetReg(in.Dst, lane, w.loadShared(info.Addrs[lane]))
				} else {
					w.storeShared(info.Addrs[lane], w.Reg(in.SrcC, lane))
				}
			}
		default: // global load/store/atomic
			if log != nil {
				log.add(w, in, active)
			} else {
				execGlobalLanes(w, in, gmem, active)
			}
		}
		w.Stack.Advance()
		return info
	}

	execALULanes(w, in, active)
	w.Stack.Advance()
	return info
}

// execALULanes applies a non-memory, non-control instruction to all active
// lanes. The hottest ops get dedicated lane loops so the opcode dispatch,
// the immediate-select branch, and unused-operand reads happen once per
// warp instead of once per lane; everything else falls through to the
// per-lane reference evaluator (evalALU), which stays the single source of
// semantic truth. Each specialized loop must compute exactly what evalALU
// computes for its opcode.
func execALULanes(w *Warp, in *isa.Instr, active simt.Mask) {
	dst := in.Dst
	switch in.Op {
	case isa.OpIAdd:
		if in.UseImm {
			imm := in.Imm
			for m := active; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros64(uint64(m))
				w.SetReg(dst, lane, w.Reg(in.SrcA, lane)+imm)
			}
		} else {
			for m := active; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros64(uint64(m))
				w.SetReg(dst, lane, w.Reg(in.SrcA, lane)+w.Reg(in.SrcB, lane))
			}
		}
	case isa.OpISub:
		if in.UseImm {
			imm := in.Imm
			for m := active; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros64(uint64(m))
				w.SetReg(dst, lane, w.Reg(in.SrcA, lane)-imm)
			}
		} else {
			for m := active; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros64(uint64(m))
				w.SetReg(dst, lane, w.Reg(in.SrcA, lane)-w.Reg(in.SrcB, lane))
			}
		}
	case isa.OpIMad:
		for m := active; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(uint64(m))
			a := w.Reg(in.SrcA, lane)
			var b uint32
			if in.UseImm {
				b = in.Imm
			} else {
				b = w.Reg(in.SrcB, lane)
			}
			w.SetReg(dst, lane, a*b+w.Reg(in.SrcC, lane))
		}
	case isa.OpIMin:
		for m := active; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(uint64(m))
			a := w.Reg(in.SrcA, lane)
			b := in.Imm
			if !in.UseImm {
				b = w.Reg(in.SrcB, lane)
			}
			if int32(b) < int32(a) {
				a = b
			}
			w.SetReg(dst, lane, a)
		}
	case isa.OpIMax:
		for m := active; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(uint64(m))
			a := w.Reg(in.SrcA, lane)
			b := in.Imm
			if !in.UseImm {
				b = w.Reg(in.SrcB, lane)
			}
			if int32(b) > int32(a) {
				a = b
			}
			w.SetReg(dst, lane, a)
		}
	case isa.OpMov:
		if in.UseImm {
			imm := in.Imm
			for m := active; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros64(uint64(m))
				w.SetReg(dst, lane, imm)
			}
		} else {
			for m := active; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros64(uint64(m))
				w.SetReg(dst, lane, w.Reg(in.SrcA, lane))
			}
		}
	case isa.OpSetp:
		kind := isa.CmpKind(in.Imm)
		if in.UseImm {
			kind = isa.CmpKind(in.Target)
		}
		for m := active; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(uint64(m))
			a := w.Reg(in.SrcA, lane)
			b := in.Imm
			if !in.UseImm {
				b = w.Reg(in.SrcB, lane)
			}
			var v uint32
			if compare(kind, a, b) {
				v = 1
			}
			w.SetReg(dst, lane, v)
		}
	case isa.OpSelp:
		for m := active; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(uint64(m))
			v := w.Reg(in.SrcA, lane)
			if w.Reg(in.SrcC, lane) == 0 {
				if in.UseImm {
					v = in.Imm
				} else {
					v = w.Reg(in.SrcB, lane)
				}
			}
			w.SetReg(dst, lane, v)
		}
	default:
		for m := active; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(uint64(m))
			w.SetReg(dst, lane, evalALU(w, in, lane))
		}
	}
}

// execGlobalLanes performs the per-lane functional work of a global
// load/store/atomic: the same loop whether run inline (sequential engine)
// or replayed from a GmemLog (parallel engine). Addresses are recomputed
// from SrcA, which is exact: a warp issues at most one instruction per
// cycle, so none of its registers can change between issue and replay.
func execGlobalLanes(w *Warp, in *isa.Instr, gmem *mem.Backing, active simt.Mask) {
	for m := active; m != 0; m &= m - 1 {
		lane := bits.TrailingZeros64(uint64(m))
		addr := w.Reg(in.SrcA, lane) + in.Imm
		switch in.Op {
		case isa.OpLdGlobal:
			w.SetReg(in.Dst, lane, gmem.LoadWord(addr))
		case isa.OpStGlobal:
			gmem.StoreWord(addr, w.Reg(in.SrcC, lane))
		case isa.OpAtomAdd:
			old := gmem.LoadWord(addr)
			gmem.StoreWord(addr, old+w.Reg(in.SrcC, lane))
			w.SetReg(in.Dst, lane, old)
		}
	}
}

// gmemOp is one deferred global-memory lane loop.
type gmemOp struct {
	w      *Warp
	in     *isa.Instr
	active simt.Mask
}

// GmemLog collects the global-memory lane loops an SM's issues produce
// during one parallel step so the shared Backing is never touched
// concurrently. The engine flushes the logs in ascending SM-index order
// after the cycle barrier; within a log, ops replay in issue order, so the
// interleaving of loads, stores, and atomics across the whole GPU is
// exactly the one the sequential engine produces.
type GmemLog struct {
	ops []gmemOp
}

// Add is not exported: Execute records into the log when one is supplied.
func (l *GmemLog) add(w *Warp, in *isa.Instr, active simt.Mask) {
	l.ops = append(l.ops, gmemOp{w: w, in: in, active: active})
}

// Len returns the number of deferred ops (for tests).
func (l *GmemLog) Len() int { return len(l.ops) }

// Flush replays the deferred lane loops against gmem in issue order and
// empties the log.
func (l *GmemLog) Flush(gmem *mem.Backing) {
	for i := range l.ops {
		op := &l.ops[i]
		execGlobalLanes(op.w, op.in, gmem, op.active)
		op.w, op.in = nil, nil
	}
	l.ops = l.ops[:0]
}

// loadShared reads a word from the CTA's shared memory; out-of-bounds
// offsets wrap, modeling the hardware's address truncation without
// crashing the simulation.
func (w *Warp) loadShared(addr uint32) uint32 {
	sm := w.CTA.SMem
	if len(sm) == 0 {
		return 0
	}
	return sm[(addr>>2)%uint32(len(sm))]
}

func (w *Warp) storeShared(addr, v uint32) {
	sm := w.CTA.SMem
	if len(sm) == 0 {
		return
	}
	sm[(addr>>2)%uint32(len(sm))] = v
}

// evalALU computes the result of a non-memory, non-control instruction for
// one lane.
func evalALU(w *Warp, in *isa.Instr, lane int) uint32 {
	a := w.Reg(in.SrcA, lane)
	var b uint32
	if in.UseImm {
		b = in.Imm
	} else {
		b = w.Reg(in.SrcB, lane)
	}
	c := w.Reg(in.SrcC, lane)

	switch in.Op {
	case isa.OpNop:
		return w.Reg(in.Dst, lane) // no-op preserves the destination
	case isa.OpMov:
		if in.UseImm {
			return in.Imm
		}
		return a
	case isa.OpS2R:
		return w.special(isa.Special(in.Imm), lane)
	case isa.OpLdParam:
		p := w.CTA.Launch.Params
		i := int(in.Imm)
		if i >= len(p) {
			panic(fmt.Sprintf("warp: kernel %q reads missing param %d",
				w.CTA.Launch.Kernel.Name, i))
		}
		return p[i]
	case isa.OpIAdd:
		return a + b
	case isa.OpISub:
		return a - b
	case isa.OpIMul:
		return a * b
	case isa.OpIMad:
		return a*b + c
	case isa.OpIMin:
		if int32(a) < int32(b) {
			return a
		}
		return b
	case isa.OpIMax:
		if int32(a) > int32(b) {
			return a
		}
		return b
	case isa.OpAnd:
		return a & b
	case isa.OpOr:
		return a | b
	case isa.OpXor:
		return a ^ b
	case isa.OpShl:
		return a << (b & 31)
	case isa.OpShr:
		return a >> (b & 31)
	case isa.OpFAdd:
		return fbits(ffrom(a) + ffrom(b))
	case isa.OpFMul:
		return fbits(ffrom(a) * ffrom(b))
	case isa.OpFFma:
		return fbits(ffrom(a)*ffrom(b) + ffrom(c))
	case isa.OpFRcp:
		return fbits(1 / ffrom(a))
	case isa.OpFSqrt:
		return fbits(float32(math.Sqrt(float64(ffrom(a)))))
	case isa.OpFSin:
		return fbits(float32(math.Sin(float64(ffrom(a)))))
	case isa.OpFExp:
		return fbits(float32(math.Exp2(float64(ffrom(a)))))
	case isa.OpSetp:
		kind := isa.CmpKind(in.Imm)
		if in.UseImm {
			kind = isa.CmpKind(in.Target)
		}
		if compare(kind, a, b) {
			return 1
		}
		return 0
	case isa.OpSelp:
		if c != 0 {
			return a
		}
		return b
	default:
		panic(fmt.Sprintf("warp: unhandled opcode %v", in.Op))
	}
}

func compare(kind isa.CmpKind, a, b uint32) bool {
	switch kind {
	case isa.CmpILT:
		return int32(a) < int32(b)
	case isa.CmpILE:
		return int32(a) <= int32(b)
	case isa.CmpIEQ:
		return a == b
	case isa.CmpINE:
		return a != b
	case isa.CmpIGE:
		return int32(a) >= int32(b)
	case isa.CmpIGT:
		return int32(a) > int32(b)
	case isa.CmpFLT:
		return ffrom(a) < ffrom(b)
	case isa.CmpFGT:
		return ffrom(a) > ffrom(b)
	default:
		panic(fmt.Sprintf("warp: unhandled comparison %d", kind))
	}
}

// special evaluates an S2R read for one lane.
func (w *Warp) special(sr isa.Special, lane int) uint32 {
	l := w.CTA.Launch
	tid := w.GlobalTid(lane)
	bd := l.BlockDim
	switch sr {
	case isa.SrTidX:
		return uint32(tid % bd.X)
	case isa.SrTidY:
		return uint32((tid / bd.X) % bd.Y)
	case isa.SrTidZ:
		return uint32(tid / (bd.X * bd.Y))
	case isa.SrCTAIdX:
		return uint32(w.CTA.ID.X)
	case isa.SrCTAIdY:
		return uint32(w.CTA.ID.Y)
	case isa.SrCTAIdZ:
		return uint32(w.CTA.ID.Z)
	case isa.SrNTidX:
		return uint32(bd.X)
	case isa.SrNTidY:
		return uint32(bd.Y)
	case isa.SrNTidZ:
		return uint32(bd.Z)
	case isa.SrNCTAIdX:
		return uint32(l.GridDim.X)
	case isa.SrNCTAIdY:
		return uint32(l.GridDim.Y)
	case isa.SrNCTAIdZ:
		return uint32(l.GridDim.Z)
	case isa.SrLaneID:
		return uint32(lane)
	case isa.SrWarpID:
		return uint32(w.IdxInCTA)
	default:
		panic(fmt.Sprintf("warp: unhandled special register %d", sr))
	}
}

func ffrom(v uint32) float32 { return math.Float32frombits(v) }
func fbits(f float32) uint32 { return math.Float32bits(f) }
