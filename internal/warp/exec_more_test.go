package warp

import (
	"math"
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

// execOne runs a tiny kernel on one warp and returns it for inspection.
func execOne(t *testing.T, build func(b *isa.Builder), params ...uint32) *Warp {
	t.Helper()
	b := isa.NewBuilder("t")
	build(b)
	b.Exit()
	k, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	l := &isa.Launch{Kernel: k, GridDim: isa.Dim1(1), BlockDim: isa.Dim1(32), Params: params}
	c := NewCTA(l, 0, 32)
	w := c.Warps[0]
	runWarp(t, w, k.Code, mem.NewBacking())
	return w
}

func TestIntMinMax(t *testing.T) {
	neg5 := int32(-5)
	w := execOne(t, func(b *isa.Builder) {
		b.MovImm(0, uint32(neg5))
		b.MovImm(1, 3)
		b.IMin(2, 0, 1)
		b.IMax(3, 0, 1)
	})
	if int32(w.Reg(2, 0)) != -5 {
		t.Errorf("IMin = %d", int32(w.Reg(2, 0)))
	}
	if w.Reg(3, 0) != 3 {
		t.Errorf("IMax = %d", w.Reg(3, 0))
	}
}

func TestShifts(t *testing.T) {
	w := execOne(t, func(b *isa.Builder) {
		b.MovImm(0, 0x80000001)
		b.ShlImm(1, 0, 1)
		b.ShrImm(2, 0, 1) // logical
		b.MovImm(3, 33)   // shift amounts wrap at 32
		b.Emit(isa.Instr{Op: isa.OpShl, Dst: 4, SrcA: 0, SrcB: 3})
	})
	if w.Reg(1, 0) != 0x00000002 {
		t.Errorf("Shl = %x", w.Reg(1, 0))
	}
	if w.Reg(2, 0) != 0x40000000 {
		t.Errorf("Shr = %x", w.Reg(2, 0))
	}
	if w.Reg(4, 0) != 0x00000002 { // 33&31 = 1
		t.Errorf("Shl wrap = %x", w.Reg(4, 0))
	}
}

func TestSelpAndCompares(t *testing.T) {
	w := execOne(t, func(b *isa.Builder) {
		b.MovImm(0, 10)
		b.MovImm(1, 20)
		b.MovImm(2, 1)
		b.Selp(3, 0, 1, 2) // c!=0 -> a
		b.MovImm(2, 0)
		b.Selp(4, 0, 1, 2) // c==0 -> b
		b.Setp(5, isa.CmpILE, 0, 0)
		b.Setp(6, isa.CmpIGE, 0, 1)
		b.SetpImm(7, isa.CmpINE, 0, 10)
		b.SetpImm(8, isa.CmpIEQ, 0, 10)
	})
	if w.Reg(3, 0) != 10 || w.Reg(4, 0) != 20 {
		t.Errorf("Selp = %d/%d", w.Reg(3, 0), w.Reg(4, 0))
	}
	if w.Reg(5, 0) != 1 || w.Reg(6, 0) != 0 || w.Reg(7, 0) != 0 || w.Reg(8, 0) != 1 {
		t.Errorf("compares = %d %d %d %d", w.Reg(5, 0), w.Reg(6, 0), w.Reg(7, 0), w.Reg(8, 0))
	}
}

func TestFloatCompare(t *testing.T) {
	w := execOne(t, func(b *isa.Builder) {
		b.MovImm(0, math.Float32bits(1.5))
		b.MovImm(1, math.Float32bits(2.5))
		b.Setp(2, isa.CmpFLT, 0, 1)
		b.Setp(3, isa.CmpFGT, 0, 1)
	})
	if w.Reg(2, 0) != 1 || w.Reg(3, 0) != 0 {
		t.Errorf("float compares = %d/%d", w.Reg(2, 0), w.Reg(3, 0))
	}
}

func TestSFUOps(t *testing.T) {
	w := execOne(t, func(b *isa.Builder) {
		b.MovImm(0, math.Float32bits(2.0))
		b.FExp(1, 0)  // 2^2 = 4
		b.FSin(2, 0)  // sin(2)
		b.FSqrt(3, 1) // 2
		b.FRcp(4, 0)  // 0.5
	})
	if got := math.Float32frombits(w.Reg(1, 0)); got != 4 {
		t.Errorf("FExp = %v", got)
	}
	if got := math.Float32frombits(w.Reg(2, 0)); math.Abs(float64(got)-math.Sin(2)) > 1e-6 {
		t.Errorf("FSin = %v", got)
	}
	if got := math.Float32frombits(w.Reg(3, 0)); got != 2 {
		t.Errorf("FSqrt = %v", got)
	}
	if got := math.Float32frombits(w.Reg(4, 0)); got != 0.5 {
		t.Errorf("FRcp = %v", got)
	}
}

func TestSpecialRegs3D(t *testing.T) {
	b := isa.NewBuilder("sr3d")
	b.S2R(0, isa.SrTidX)
	b.S2R(1, isa.SrTidY)
	b.S2R(2, isa.SrTidZ)
	b.S2R(3, isa.SrNTidY)
	b.S2R(4, isa.SrCTAIdY)
	b.S2R(5, isa.SrNCTAIdZ)
	b.S2R(6, isa.SrLaneID)
	b.S2R(7, isa.SrWarpID)
	b.Exit()
	k := b.MustBuild()
	l := &isa.Launch{
		Kernel:   k,
		GridDim:  isa.Dim3{X: 2, Y: 3, Z: 4},
		BlockDim: isa.Dim3{X: 4, Y: 4, Z: 2}, // 32 threads
	}
	c := NewCTA(l, 3, 32) // ctaid = (1,1,0)
	w := c.Warps[0]
	runWarp(t, w, k.Code, mem.NewBacking())
	// lane 13: tid = 13 -> x=1, y=3, z=0 in a 4x4x2 block.
	if w.Reg(0, 13) != 1 || w.Reg(1, 13) != 3 || w.Reg(2, 13) != 0 {
		t.Errorf("tid xyz = %d,%d,%d", w.Reg(0, 13), w.Reg(1, 13), w.Reg(2, 13))
	}
	if w.Reg(3, 0) != 4 {
		t.Errorf("ntid.y = %d", w.Reg(3, 0))
	}
	if w.Reg(4, 0) != 1 {
		t.Errorf("ctaid.y = %d", w.Reg(4, 0))
	}
	if w.Reg(5, 0) != 4 {
		t.Errorf("nctaid.z = %d", w.Reg(5, 0))
	}
	if w.Reg(6, 13) != 13 || w.Reg(7, 13) != 0 {
		t.Errorf("lane/warp = %d/%d", w.Reg(6, 13), w.Reg(7, 13))
	}
}

func TestMissingParamPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for missing launch parameter")
		}
	}()
	execOne(t, func(b *isa.Builder) {
		b.LdParam(0, 3) // only zero params provided
	})
}

func TestNopPreservesDst(t *testing.T) {
	w := execOne(t, func(b *isa.Builder) {
		b.MovImm(0, 42)
		b.Emit(isa.Instr{Op: isa.OpNop, Dst: 0})
	})
	if w.Reg(0, 0) != 42 {
		t.Errorf("nop clobbered R0: %d", w.Reg(0, 0))
	}
}

func TestSharedMemoryWrapsOutOfBounds(t *testing.T) {
	b := isa.NewBuilder("oob").SharedMem(64) // 16 words
	b.MovImm(0, 7)
	b.MovImm(1, 1000) // out of bounds offset -> wraps
	b.StS(1, 0, 0)
	b.LdS(2, 1, 0)
	b.Exit()
	k := b.MustBuild()
	l := &isa.Launch{Kernel: k, GridDim: isa.Dim1(1), BlockDim: isa.Dim1(32)}
	c := NewCTA(l, 0, 32)
	w := c.Warps[0]
	runWarp(t, w, k.Code, mem.NewBacking())
	if w.Reg(2, 0) != 7 {
		t.Errorf("wrapped shared access = %d, want 7", w.Reg(2, 0))
	}
}

func TestZeroSharedMemorySafe(t *testing.T) {
	b := isa.NewBuilder("nosmem")
	b.MovImm(0, 5)
	b.StS(0, 0, 0)
	b.LdS(1, 0, 0)
	b.Exit()
	k := b.MustBuild()
	l := &isa.Launch{Kernel: k, GridDim: isa.Dim1(1), BlockDim: isa.Dim1(32)}
	c := NewCTA(l, 0, 32)
	w := c.Warps[0]
	runWarp(t, w, k.Code, mem.NewBacking())
	if w.Reg(1, 0) != 0 {
		t.Errorf("load from zero-sized shared memory = %d, want 0", w.Reg(1, 0))
	}
}

func TestAtomicAdd(t *testing.T) {
	// All 32 lanes atomically add 1 to the same word; the final value
	// must be 32 regardless of lane order, and each lane observes a
	// distinct old value.
	b := isa.NewBuilder("atom")
	b.LdParam(0, 0)
	b.MovImm(1, 1)
	b.Emit(isa.Instr{Op: isa.OpAtomAdd, Dst: 2, SrcA: 0, SrcC: 1})
	b.Exit()
	k := b.MustBuild()
	l := &isa.Launch{Kernel: k, GridDim: isa.Dim1(1), BlockDim: isa.Dim1(32),
		Params: []uint32{0x1000}}
	c := NewCTA(l, 0, 32)
	w := c.Warps[0]
	bk := mem.NewBacking()
	bk.StoreWord(0x1000, 100)
	runWarp(t, w, k.Code, bk)
	if got := bk.LoadWord(0x1000); got != 132 {
		t.Fatalf("final value = %d, want 132", got)
	}
	seen := map[uint32]bool{}
	for lane := 0; lane < 32; lane++ {
		old := w.Reg(2, lane)
		if old < 100 || old >= 132 || seen[old] {
			t.Fatalf("lane %d old value %d invalid or duplicated", lane, old)
		}
		seen[old] = true
	}
}
