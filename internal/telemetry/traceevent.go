package telemetry

import (
	"encoding/json"
	"io"
)

// Shared Chrome/Perfetto trace-event JSON encoding. Both timeline
// exporters in this codebase — the simulator telemetry export below
// (one pid per SM) and the sweep-level span export in internal/sweepobs
// (one pid per worker slot) — emit the same document shape, so the wire
// struct and the document writer live here once.
//
// TraceEvent keeps the structural fields explicit (no omitempty): a
// zero ts, pid, or dur is a value the viewer needs, not an absence.
// Args carries numeric counter samples, StrArgs carries string
// annotations (span attributes, process names); both render into the
// single "args" object, merged and key-sorted by encoding/json.

// TraceEvent is one trace event in the Chrome "JSON trace format",
// which ui.perfetto.dev opens directly.
type TraceEvent struct {
	Name    string
	Ph      string // "X" complete span, "C" counter, "M" metadata, "i" instant
	Ts      int64  // µs
	Dur     int64  // µs
	Pid     int
	Tid     int
	Args    map[string]float64
	StrArgs map[string]string
}

// traceEventWire is the explicit-field JSON layout.
type traceEventWire struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// MarshalJSON merges Args and StrArgs into one "args" object (omitted
// when both are empty). encoding/json sorts map keys, so the output is
// deterministic.
func (e TraceEvent) MarshalJSON() ([]byte, error) {
	w := traceEventWire{Name: e.Name, Ph: e.Ph, Ts: e.Ts, Dur: e.Dur, Pid: e.Pid, Tid: e.Tid}
	if len(e.Args) > 0 || len(e.StrArgs) > 0 {
		w.Args = make(map[string]any, len(e.Args)+len(e.StrArgs))
		for k, v := range e.Args {
			w.Args[k] = v
		}
		for k, v := range e.StrArgs {
			w.Args[k] = v
		}
	}
	return json.Marshal(&w)
}

// WriteTraceDocument writes the events as a single
// {"traceEvents": [...]} document. The caller orders the slice
// (metadata first, then events by timestamp, by convention).
func WriteTraceDocument(w io.Writer, events []TraceEvent) error {
	if events == nil {
		events = []TraceEvent{}
	}
	body, err := json.Marshal(events)
	if err != nil {
		return err
	}
	if _, err := io.WriteString(w, `{"traceEvents":`); err != nil {
		return err
	}
	if _, err := w.Write(body); err != nil {
		return err
	}
	_, err = io.WriteString(w, "}\n")
	return err
}
