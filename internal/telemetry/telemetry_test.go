package telemetry

import "testing"

func TestConfigDefaults(t *testing.T) {
	c := NewCollector(Config{})
	if c.cfg.Window != DefaultWindow || c.cfg.MaxWindows != DefaultMaxWindows ||
		c.cfg.MaxSpans != DefaultMaxSpans {
		t.Fatalf("zero Config did not select defaults: %+v", c.cfg)
	}
	if c = NewCollector(Config{MaxWindows: 3}); c.cfg.MaxWindows != 8 {
		t.Fatalf("MaxWindows floor: got %d, want 8", c.cfg.MaxWindows)
	}
	if c = NewCollector(Config{MaxWindows: 9}); c.cfg.MaxWindows%2 != 0 {
		t.Fatalf("MaxWindows must round to even, got %d", c.cfg.MaxWindows)
	}
}

func TestMergeWindows(t *testing.T) {
	a := Window{Cycle: 64, Cycles: 64, Issued: 10, SlotIdle: 5, ActiveWarps: 7}
	b := Window{Cycle: 128, Cycles: 64, Issued: 3, SlotIdle: 1, ActiveWarps: 2}
	m := MergeWindows(a, b)
	if m.Cycle != 128 || m.Cycles != 128 {
		t.Errorf("merged bounds: end %d len %d, want 128/128", m.Cycle, m.Cycles)
	}
	if m.Issued != 13 || m.SlotIdle != 6 {
		t.Errorf("deltas must sum: %+v", m)
	}
	if m.ActiveWarps != 2 {
		t.Errorf("gauges must come from the later window: %d", m.ActiveWarps)
	}
}

func TestHistBuckets(t *testing.T) {
	c := NewCollector(Config{})
	c.Begin(1, "k", "p")
	for _, lat := range []int64{0, 1, 2, 3, 4, 1 << 20} {
		c.histAdd(lat)
	}
	want := map[int]int64{0: 1, 1: 1, 2: 2, 3: 1, histBuckets - 1: 1}
	for i, n := range c.hist {
		if n != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, n, want[i])
		}
	}
	d := c.Dump()
	if len(d.SwapLatency) != 5 {
		t.Fatalf("dump buckets = %d, want 5", len(d.SwapLatency))
	}
	if last := d.SwapLatency[4]; last.Hi != -1 {
		t.Errorf("overflow bucket Hi = %d, want -1", last.Hi)
	}
	if d.SwapLatency[1].Lo != 1 || d.SwapLatency[1].Hi != 1 {
		t.Errorf("bucket 1 bounds = [%d,%d], want [1,1]",
			d.SwapLatency[1].Lo, d.SwapLatency[1].Hi)
	}
}
