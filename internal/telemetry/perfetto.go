package telemetry

import (
	"fmt"
	"io"
	"sort"
)

// Perfetto trace-event JSON export (the Chrome "JSON trace format",
// which ui.perfetto.dev opens directly). Mapping, also documented in
// docs/OBSERVABILITY.md:
//
//   - 1 simulated cycle = 1 µs of trace time (ts/dur are in µs).
//   - pid 0 is the GPU-wide process (aggregate counter tracks);
//     pid i+1 is SM i.
//   - per-SM tids: 0 = sleep/fast-forward spans, 1 = swap-out spans,
//     2 = swap-in spans, 10+k = CTA residence on warp slot k.
//   - spans are ph "X" complete events, counters ph "C", names ph "M".
//
// The wire encoding (explicit fields, merged args) is the shared
// TraceEvent encoder in traceevent.go, which the sweep-level exporter
// in internal/sweepobs reuses with its own pid/tid mapping.

const (
	pfTidSleep   = 0
	pfTidSwapOut = 1
	pfTidSwapIn  = 2
	pfTidSlot0   = 10
)

// WritePerfetto renders the collected telemetry as Chrome/Perfetto
// trace-event JSON. Call after the run. Output is deterministic.
func (c *Collector) WritePerfetto(w io.Writer) error {
	var ev []TraceEvent

	// Process names.
	var meta []TraceEvent
	meta = append(meta, TraceEvent{Name: "process_name", Ph: "M", Pid: 0,
		StrArgs: map[string]string{"name": fmt.Sprintf("GPU (%s, %s)", c.kernel, c.policy)}})
	for i := 0; i < c.numSMs; i++ {
		meta = append(meta, TraceEvent{Name: "process_name", Ph: "M", Pid: i + 1,
			StrArgs: map[string]string{"name": fmt.Sprintf("SM %d", i)}})
	}

	// Spans. Collect the (pid, tid) pairs in use so thread names cover
	// exactly the tracks that exist.
	type track struct{ pid, tid int }
	tracks := map[track]string{}
	for i := range c.sms {
		for _, sp := range c.sms[i].spans {
			pid := sp.SM + 1
			var tid int
			var name string
			switch sp.Kind {
			case SpanSleep:
				tid, name = pfTidSleep, "fast-forward"
			case SpanSwapOut:
				tid, name = pfTidSwapOut, fmt.Sprintf("swap-out cta %d", sp.CTA)
			case SpanSwapIn:
				tid, name = pfTidSwapIn, fmt.Sprintf("swap-in cta %d", sp.CTA)
			default: // SpanCTA
				tid, name = pfTidSlot0+sp.Track, fmt.Sprintf("cta %d", sp.CTA)
			}
			dur := sp.End - sp.Start
			if dur < 1 {
				dur = 1
			}
			ev = append(ev, TraceEvent{Name: name, Ph: "X", Ts: sp.Start, Dur: dur,
				Pid: pid, Tid: tid})
			tracks[track{pid, tid}] = ""
		}
	}
	for t := range tracks {
		var name string
		switch {
		case t.tid == pfTidSleep:
			name = "sleep"
		case t.tid == pfTidSwapOut:
			name = "swap-out"
		case t.tid == pfTidSwapIn:
			name = "swap-in"
		default:
			name = fmt.Sprintf("slot %d", t.tid-pfTidSlot0)
		}
		meta = append(meta, TraceEvent{Name: "thread_name", Ph: "M",
			Pid: t.pid, Tid: t.tid, StrArgs: map[string]string{"name": name}})
	}
	sort.Slice(meta, func(a, b int) bool {
		if meta[a].Pid != meta[b].Pid {
			return meta[a].Pid < meta[b].Pid
		}
		if meta[a].Tid != meta[b].Tid {
			return meta[a].Tid < meta[b].Tid
		}
		return meta[a].Name < meta[b].Name
	})

	// Counter tracks. Counters are stamped at the window *start* so the
	// step function holds the window's value across it.
	for i := range c.sms {
		pid := i + 1
		for _, w := range c.sms[i].ring {
			ts := w.Cycle - w.Cycles
			ev = append(ev,
				TraceEvent{Name: "warps", Ph: "C", Ts: ts, Pid: pid,
					Args: map[string]float64{
						"active":   float64(w.ActiveWarps),
						"resident": float64(w.ResidentWarps),
					}},
				TraceEvent{Name: "ipc", Ph: "C", Ts: ts, Pid: pid,
					Args: map[string]float64{"ipc": w.IPC()}},
			)
			if w.CtxBytes > 0 || w.SwapsInFlight > 0 {
				ev = append(ev, TraceEvent{Name: "vt", Ph: "C", Ts: ts, Pid: pid,
					Args: map[string]float64{
						"ctxBytes": float64(w.CtxBytes),
						"inFlight": float64(w.SwapsInFlight),
					}})
			}
		}
	}
	gpu := c.gpuWindows()
	for i, w := range gpu {
		ts := w.Cycle - w.Cycles
		args := map[string]float64{"ipc": w.IPC()}
		ev = append(ev, TraceEvent{Name: "gpu ipc", Ph: "C", Ts: ts, Pid: 0, Args: args})
		mw := c.mem[i]
		m := map[string]float64{}
		if mw.L1Accesses > 0 {
			m["l1"] = float64(mw.L1Hits) / float64(mw.L1Accesses)
		}
		if mw.L2Accesses > 0 {
			m["l2"] = float64(mw.L2Hits) / float64(mw.L2Accesses)
		}
		if len(m) > 0 {
			ev = append(ev, TraceEvent{Name: "hit rate", Ph: "C", Ts: ts, Pid: 0, Args: m})
		}
	}

	sort.SliceStable(ev, func(a, b int) bool {
		if ev[a].Ts != ev[b].Ts {
			return ev[a].Ts < ev[b].Ts
		}
		if ev[a].Pid != ev[b].Pid {
			return ev[a].Pid < ev[b].Pid
		}
		if ev[a].Tid != ev[b].Tid {
			return ev[a].Tid < ev[b].Tid
		}
		return ev[a].Name < ev[b].Name
	})

	return WriteTraceDocument(w, append(meta, ev...))
}
