// Package telemetry is the simulator's always-on (but zero-cost-when-off)
// observability layer: fixed-size per-SM metric rings sampled every W
// cycles, CTA/swap/sleep lifecycle spans, a swap-latency histogram, and
// GPU-wide memory-system windows. A Collector attaches to a run through
// gpu.Options.Telemetry; it observes the same state-transition hooks the
// issue fast path already maintains (sm.Probe, the VT trace stream, the
// engine's window pump) — no per-cycle rescans — and it is a pure
// observer: simulation results are bit-identical with and without one
// attached (gpu's telemetry equivalence test enforces this, the same
// contract CheckInvariants follows).
//
// Rings are bounded but cover the whole run: when a ring reaches its
// capacity, adjacent window pairs are merged and the window length
// doubles (adaptive compaction), so memory stays O(MaxWindows) while
// resolution degrades gracefully on long runs. Everything is exported
// three ways: Dump (ring JSON for cmd/vtreport and cmd/vtdiff),
// WritePerfetto (Chrome/Perfetto trace-event JSON), and Totals
// (aggregates for harness.RunMetrics and vtbench -json). See
// docs/OBSERVABILITY.md.
package telemetry

import (
	"sort"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sm"
	"repro/internal/warp"
)

// SchemaVersion identifies the Dump JSON layout.
const SchemaVersion = 1

// Defaults for Config zero values.
const (
	DefaultWindow     = 256
	DefaultMaxWindows = 256
	DefaultMaxSpans   = 16384
)

// Config sizes a Collector. The zero value selects the defaults.
type Config struct {
	// Window is the initial window length in cycles. It doubles every
	// time the rings fill and compact.
	Window int64
	// MaxWindows bounds every ring's length: reaching it merges adjacent
	// window pairs (halving the ring, doubling Window). Minimum 8,
	// rounded up to even so pairs always merge cleanly.
	MaxWindows int
	// MaxSpans bounds the spans kept per SM; once full, further spans
	// are dropped and counted in Dump.SpansDropped.
	MaxSpans int
	// PerSM includes the per-SM rings in Dump (the GPU-wide aggregate
	// ring is always included).
	PerSM bool
}

// SpanKind labels a Span.
type SpanKind string

// Span kinds.
const (
	// SpanCTA covers a CTA's residence in warp slots: from activation
	// (fresh or swap-in) to deactivation (swap-out or retirement).
	SpanCTA SpanKind = "cta"
	// SpanSwapOut covers the context-save latency of a VT swap-out.
	SpanSwapOut SpanKind = "swap-out"
	// SpanSwapIn covers the context-restore latency of a VT swap-in.
	SpanSwapIn SpanKind = "swap-in"
	// SpanSleep covers a per-SM fast-forward (idle-skip) span.
	SpanSleep SpanKind = "sleep"
)

// Span is one timeline interval on an SM.
type Span struct {
	Kind  SpanKind `json:"kind"`
	SM    int      `json:"sm"`
	CTA   int      `json:"cta"` // flat CTA id; -1 for sleep spans
	Track int      `json:"track"`
	Start int64    `json:"start"`
	End   int64    `json:"end"`
}

// Window is one ring entry: counter deltas over [Cycle-Cycles, Cycle)
// plus point-in-time gauges read at the window's end.
type Window struct {
	Cycle  int64 `json:"cycle"`  // window end (exclusive)
	Cycles int64 `json:"cycles"` // window length

	// Deltas over the window.
	Issued       int64 `json:"issued"`
	SlotIssued   int64 `json:"slotIssued"`
	SlotStallMem int64 `json:"slotStallMem"`
	SlotStallALU int64 `json:"slotStallAlu"`
	SlotStallBar int64 `json:"slotStallBar"`
	SlotStallStr int64 `json:"slotStallStr"`
	SlotIdle     int64 `json:"slotIdle"`
	SwapsOut     int64 `json:"swapsOut"`
	SwapsIn      int64 `json:"swapsIn"`
	Activations  int64 `json:"activations"`
	L1Accesses   int64 `json:"l1Accesses"`
	L1Hits       int64 `json:"l1Hits"`

	// Gauges at the window end.
	ActiveWarps   int `json:"activeWarps"`
	ResidentWarps int `json:"residentWarps"`
	ActiveCTAs    int `json:"activeCtas"`
	ResidentCTAs  int `json:"residentCtas"`
	LSUQueue      int `json:"lsuQueue"`
	WheelPending  int `json:"wheelPending"`
	CtxBytes      int `json:"ctxBytes"`
	SwapsInFlight int `json:"swapsInFlight"`
}

// IPC returns issued warp instructions per cycle over the window.
func (w *Window) IPC() float64 {
	if w.Cycles == 0 {
		return 0
	}
	return float64(w.Issued) / float64(w.Cycles)
}

// MemWindow is one GPU-wide memory-system ring entry (counter deltas).
type MemWindow struct {
	Cycle  int64 `json:"cycle"`
	Cycles int64 `json:"cycles"`

	L1Accesses int64 `json:"l1Accesses"`
	L1Hits     int64 `json:"l1Hits"`
	L2Accesses int64 `json:"l2Accesses"`
	L2Hits     int64 `json:"l2Hits"`
	DRAMReads  int64 `json:"dramReads"`
	DRAMWrites int64 `json:"dramWrites"`
}

// histBuckets is the swap-latency histogram size: bucket 0 holds zero
// latencies, bucket i >= 1 holds latencies in [2^(i-1), 2^i), and the
// last bucket is unbounded.
const histBuckets = 18

// HistBucket is one non-empty swap-latency histogram bucket.
type HistBucket struct {
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"` // inclusive; -1 = unbounded
	Count int64 `json:"count"`
}

// Dump is the ring-dump JSON document (vtsim -telemetry): the GPU-wide
// aggregate ring, the memory ring, spans, and the swap-latency histogram.
type Dump struct {
	SchemaVersion int    `json:"schemaVersion"`
	Kernel        string `json:"kernel"`
	Policy        string `json:"policy"`
	NumSMs        int    `json:"numSMs"`
	Cycles        int64  `json:"cycles"`
	// Window is the final window length after compaction; early windows
	// may be shorter (pre-compaction) and the last one partial — every
	// entry carries its own Cycles.
	Window int64 `json:"window"`

	GPU          []Window     `json:"gpu"`
	Mem          []MemWindow  `json:"mem"`
	PerSM        [][]Window   `json:"perSM,omitempty"`
	Spans        []Span       `json:"spans"`
	SpansDropped int          `json:"spansDropped,omitempty"`
	SwapLatency  []HistBucket `json:"swapLatency,omitempty"`
}

// openCTA tracks a CTA currently bound to warp slots.
type openCTA struct {
	start int64
	track int
}

// smRec is one SM's recorder. Under the parallel engine a given SM is
// driven by exactly one goroutine at a time, so per-SM state needs no
// locking (see the sm.Probe contract).
type smRec struct {
	ring   []Window
	last   sm.Stats  // cumulative snapshot at the previous boundary
	lastL1 mem.Stats // L1 shard snapshot at the previous boundary

	// Cumulative hook/trace counters and their previous-boundary values.
	swapsOut, swapsIn, activations      int64
	lastSwapsOut, lastSwapsIn, lastActs int64

	spans   []Span
	dropped int
	open    map[*warp.CTA]openCTA
}

func (r *smRec) addSpan(sp Span, max int) {
	if len(r.spans) >= max {
		r.dropped++
		return
	}
	r.spans = append(r.spans, sp)
}

// Collector gathers one run's telemetry. Create with NewCollector, pass
// through gpu.Options.Telemetry, and read Dump/WritePerfetto/Totals
// after the run. A Collector records a single run; gpu calls Begin to
// (re)initialize it.
type Collector struct {
	cfg Config

	window  int64 // current window length (doubles on compaction)
	nextEnd int64 // next window boundary
	numSMs  int
	kernel  string
	policy  string
	cycles  int64
	done    bool

	sms     []smRec
	mem     []MemWindow
	lastMem mem.Stats
	hist    [histBuckets]int64
}

// NewCollector returns a Collector sized by cfg (zero values select the
// defaults).
func NewCollector(cfg Config) *Collector {
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.MaxWindows <= 0 {
		cfg.MaxWindows = DefaultMaxWindows
	}
	if cfg.MaxWindows < 8 {
		cfg.MaxWindows = 8
	}
	cfg.MaxWindows += cfg.MaxWindows % 2 // pair-merge needs an even capacity
	if cfg.MaxSpans <= 0 {
		cfg.MaxSpans = DefaultMaxSpans
	}
	return &Collector{cfg: cfg}
}

// Begin (re)initializes the collector for a run. gpu.RunMulti calls it
// before the first cycle.
func (c *Collector) Begin(numSMs int, kernel, policy string) {
	c.numSMs = numSMs
	c.kernel, c.policy = kernel, policy
	c.window = c.cfg.Window
	c.nextEnd = c.window
	c.cycles = 0
	c.done = false
	c.sms = make([]smRec, numSMs)
	c.mem = nil
	c.lastMem = mem.Stats{}
	c.hist = [histBuckets]int64{}
}

// sm.Probe implementation.
var _ sm.Probe = (*Collector)(nil)

// CTAActivated opens the CTA's slot-residence span (sm.Probe).
func (c *Collector) CTAActivated(s *sm.SM, ct *warp.CTA) {
	r := &c.sms[s.ID]
	r.activations++
	if r.open == nil {
		r.open = make(map[*warp.CTA]openCTA)
	}
	track := 0
	if len(ct.Warps) > 0 {
		track = ct.Warps[0].Slot
	}
	r.open[ct] = openCTA{start: s.Ev.Now(), track: track}
}

// CTADeactivated closes the CTA's slot-residence span (sm.Probe).
func (c *Collector) CTADeactivated(s *sm.SM, ct *warp.CTA) {
	r := &c.sms[s.ID]
	o, ok := r.open[ct]
	if !ok {
		return
	}
	delete(r.open, ct)
	r.addSpan(Span{Kind: SpanCTA, SM: s.ID, CTA: ct.FlatID, Track: o.track,
		Start: o.start, End: s.Ev.Now()}, c.cfg.MaxSpans)
}

// SMWoke records a per-SM fast-forward span (sm.Probe).
func (c *Collector) SMWoke(s *sm.SM, from, to int64) {
	c.sms[s.ID].addSpan(Span{Kind: SpanSleep, SM: s.ID, CTA: -1,
		Start: from, End: to}, c.cfg.MaxSpans)
}

// VTTrace consumes the VT controller's CTA-transition stream: swap
// counters, swap spans (with their latency), and the latency histogram.
// gpu tees the stream here alongside any user Options.Trace. Always runs
// on the coordinator (controller phase or event drain).
func (c *Collector) VTTrace(e core.TraceEvent) {
	r := &c.sms[e.SM]
	switch {
	case e.To == warp.CTARestoring:
		r.swapsIn++
		c.histAdd(e.Latency)
		r.addSpan(Span{Kind: SpanSwapIn, SM: e.SM, CTA: e.CTA,
			Start: e.Cycle, End: e.Cycle + e.Latency}, c.cfg.MaxSpans)
	case e.From == warp.CTAActive &&
		(e.To == warp.CTAInactiveWaiting || e.To == warp.CTAInactiveReady):
		r.swapsOut++
		c.histAdd(e.Latency)
		r.addSpan(Span{Kind: SpanSwapOut, SM: e.SM, CTA: e.CTA,
			Start: e.Cycle, End: e.Cycle + e.Latency}, c.cfg.MaxSpans)
	}
}

func (c *Collector) histAdd(lat int64) {
	i := 0
	for lat > 0 && i < histBuckets-1 {
		lat >>= 1
		i++
	}
	c.hist[i]++
}

// NextBoundary returns the cycle of the next window boundary; the gpu
// run loop samples while NextBoundary() <= the cycle it advances to.
func (c *Collector) NextBoundary() int64 { return c.nextEnd }

// Sample closes the window ending at NextBoundary(): one Window per SM
// (cumulative-stat deltas plus end-of-window gauges), one GPU-wide
// MemWindow, then the boundary advances and full rings compact.
// pendingFrom >= 0 marks an in-progress whole-GPU idle skip starting at
// that cycle whose AccountSkipped the engine applies after sampling (see
// sm.StatsAt); -1 otherwise. vt is nil under non-VT policies. Pure
// observer; runs between engine cycles on the coordinator.
func (c *Collector) Sample(sms []*sm.SM, msys *mem.System, vt *core.Controller, pendingFrom int64) {
	b := c.nextEnd
	for i, s := range sms {
		r := &c.sms[i]
		cur := s.StatsAt(b, pendingFrom)
		w := Window{
			Cycle:  b,
			Cycles: c.window,

			Issued:       cur.Issued - r.last.Issued,
			SlotIssued:   cur.SlotIssued - r.last.SlotIssued,
			SlotStallMem: cur.SlotStallMem - r.last.SlotStallMem,
			SlotStallALU: cur.SlotStallALU - r.last.SlotStallALU,
			SlotStallBar: cur.SlotStallBar - r.last.SlotStallBar,
			SlotStallStr: cur.SlotStallStr - r.last.SlotStallStr,
			SlotIdle:     cur.SlotIdle - r.last.SlotIdle,
			SwapsOut:     r.swapsOut - r.lastSwapsOut,
			SwapsIn:      r.swapsIn - r.lastSwapsIn,
			Activations:  r.activations - r.lastActs,

			ActiveWarps:  s.WarpsUsed,
			ActiveCTAs:   s.ActiveCTAs,
			ResidentCTAs: len(s.Resident),
			LSUQueue:     s.LSUQueueLen(),
			WheelPending: s.WheelPending(),
		}
		for _, ct := range s.Resident {
			w.ResidentWarps += len(ct.Warps)
		}
		l1 := msys.L1ShardStats(i)
		w.L1Accesses = l1.L1Accesses - r.lastL1.L1Accesses
		w.L1Hits = l1.L1Hits - r.lastL1.L1Hits
		r.lastL1 = l1
		if vt != nil {
			w.CtxBytes = vt.CtxBytesUsed(i)
			w.SwapsInFlight = vt.SwapsInFlight(i, b)
		}
		r.last = cur
		r.lastSwapsOut, r.lastSwapsIn, r.lastActs = r.swapsOut, r.swapsIn, r.activations
		r.ring = append(r.ring, w)
	}

	ms := msys.PeekStats()
	c.mem = append(c.mem, MemWindow{
		Cycle:      b,
		Cycles:     c.window,
		L1Accesses: ms.L1Accesses - c.lastMem.L1Accesses,
		L1Hits:     ms.L1Hits - c.lastMem.L1Hits,
		L2Accesses: ms.L2Accesses - c.lastMem.L2Accesses,
		L2Hits:     ms.L2Hits - c.lastMem.L2Hits,
		DRAMReads:  ms.DRAMReads - c.lastMem.DRAMReads,
		DRAMWrites: ms.DRAMWrites - c.lastMem.DRAMWrites,
	})
	c.lastMem = ms

	if len(c.mem) >= c.cfg.MaxWindows {
		c.compact() // doubles c.window
	}
	// After compaction the next window must span the *new* length, so the
	// boundary is computed from b only here.
	c.nextEnd = b + c.window
}

// compact merges adjacent window pairs in every ring and doubles the
// window length: memory stays bounded at MaxWindows entries per ring
// while the rings always cover the whole run. All rings append in
// lockstep, so they compact in lockstep and stay aligned.
func (c *Collector) compact() {
	for i := range c.sms {
		r := &c.sms[i]
		out := r.ring[:0]
		for j := 0; j+1 < len(r.ring); j += 2 {
			out = append(out, MergeWindows(r.ring[j], r.ring[j+1]))
		}
		if len(r.ring)%2 == 1 {
			out = append(out, r.ring[len(r.ring)-1])
		}
		r.ring = out
	}
	out := c.mem[:0]
	for j := 0; j+1 < len(c.mem); j += 2 {
		out = append(out, mergeMemWindows(c.mem[j], c.mem[j+1]))
	}
	if len(c.mem)%2 == 1 {
		out = append(out, c.mem[len(c.mem)-1])
	}
	c.mem = out
	c.window *= 2
}

// MergeWindows folds two adjacent windows: deltas sum, gauges and the
// end cycle come from the later window. Compaction and the rebucketing
// consumers (cmd/vtreport, cmd/vtdiff) both build on it.
func MergeWindows(a, b Window) Window {
	out := b
	out.Cycles = a.Cycles + b.Cycles
	out.Issued += a.Issued
	out.SlotIssued += a.SlotIssued
	out.SlotStallMem += a.SlotStallMem
	out.SlotStallALU += a.SlotStallALU
	out.SlotStallBar += a.SlotStallBar
	out.SlotStallStr += a.SlotStallStr
	out.SlotIdle += a.SlotIdle
	out.SwapsOut += a.SwapsOut
	out.SwapsIn += a.SwapsIn
	out.Activations += a.Activations
	out.L1Accesses += a.L1Accesses
	out.L1Hits += a.L1Hits
	return out
}

func mergeMemWindows(a, b MemWindow) MemWindow {
	out := b
	out.Cycles = a.Cycles + b.Cycles
	out.L1Accesses += a.L1Accesses
	out.L1Hits += a.L1Hits
	out.L2Accesses += a.L2Accesses
	out.L2Hits += a.L2Hits
	out.DRAMReads += a.DRAMReads
	out.DRAMWrites += a.DRAMWrites
	return out
}

// Rebucket folds a contiguous ring into at most n windows, merging
// adjacent entries that fall into the same n-th of the covered span.
// Comparing two dumps bucket-by-bucket (cmd/vtdiff -rings) needs both
// rings on a common, coarse grid; so does rendering a bounded timeline
// table (cmd/vtreport -rings).
func Rebucket(ws []Window, n int) []Window {
	if n < 1 || len(ws) <= n {
		return ws
	}
	start := ws[0].Cycle - ws[0].Cycles
	total := ws[len(ws)-1].Cycle - start
	if total <= 0 {
		return ws
	}
	out := make([]Window, 0, n)
	cur := -1
	for _, w := range ws {
		b := int((w.Cycle - start - 1) * int64(n) / total)
		if b >= n {
			b = n - 1
		}
		if b == cur {
			out[len(out)-1] = MergeWindows(out[len(out)-1], w)
		} else {
			out = append(out, w)
			cur = b
		}
	}
	return out
}

// Finish closes the run at the final cycle: it records the last partial
// window and ends every still-open CTA span. gpu calls it after waking
// all SMs (so every fast-forward span has been charged and recorded).
func (c *Collector) Finish(cycle int64, sms []*sm.SM, msys *mem.System, vt *core.Controller) {
	if c.done {
		return
	}
	c.cycles = cycle
	if last := c.nextEnd - c.window; cycle > last {
		// Final partial window [last, cycle).
		save := c.window
		c.window = cycle - last
		c.nextEnd = cycle
		c.Sample(sms, msys, vt, -1)
		c.window = save
	}
	for i := range c.sms {
		r := &c.sms[i]
		// Map order is nondeterministic; sort by CTA id so dumps of
		// identical runs are byte-identical.
		rest := make([]*warp.CTA, 0, len(r.open))
		for ct := range r.open {
			rest = append(rest, ct)
		}
		sort.Slice(rest, func(a, b int) bool { return rest[a].FlatID < rest[b].FlatID })
		for _, ct := range rest {
			o := r.open[ct]
			r.addSpan(Span{Kind: SpanCTA, SM: i, CTA: ct.FlatID, Track: o.track,
				Start: o.start, End: cycle}, c.cfg.MaxSpans)
		}
		r.open = nil
	}
	c.done = true
}

// Totals returns the recorded window count (ring length — every ring has
// the same) and the span count across all SMs, for harness.RunMetrics
// and vtbench -json.
func (c *Collector) Totals() (windows, spans int) {
	windows = len(c.mem)
	for i := range c.sms {
		spans += len(c.sms[i].spans)
	}
	return windows, spans
}

// gpuWindows sums the per-SM rings index-wise into the GPU-wide ring
// (gauges sum too: GPU-total warps, CTAs, context bytes).
func (c *Collector) gpuWindows() []Window {
	if len(c.sms) == 0 {
		return nil
	}
	out := make([]Window, len(c.sms[0].ring))
	for i := range out {
		w := c.sms[0].ring[i]
		for k := 1; k < len(c.sms); k++ {
			v := c.sms[k].ring[i]
			m := MergeWindows(v, w) // sums deltas; keeps w's Cycle
			m.Cycles = w.Cycles
			m.ActiveWarps = w.ActiveWarps + v.ActiveWarps
			m.ResidentWarps = w.ResidentWarps + v.ResidentWarps
			m.ActiveCTAs = w.ActiveCTAs + v.ActiveCTAs
			m.ResidentCTAs = w.ResidentCTAs + v.ResidentCTAs
			m.LSUQueue = w.LSUQueue + v.LSUQueue
			m.WheelPending = w.WheelPending + v.WheelPending
			m.CtxBytes = w.CtxBytes + v.CtxBytes
			m.SwapsInFlight = w.SwapsInFlight + v.SwapsInFlight
			w = m
		}
		out[i] = w
	}
	return out
}

// Dump assembles the ring-dump document. Call after the run (gpu has
// called Finish). Output is deterministic: identical runs produce
// byte-identical dumps.
func (c *Collector) Dump() *Dump {
	d := &Dump{
		SchemaVersion: SchemaVersion,
		Kernel:        c.kernel,
		Policy:        c.policy,
		NumSMs:        c.numSMs,
		Cycles:        c.cycles,
		Window:        c.window,
		GPU:           c.gpuWindows(),
		Mem:           c.mem,
	}
	if c.cfg.PerSM {
		d.PerSM = make([][]Window, len(c.sms))
		for i := range c.sms {
			d.PerSM[i] = c.sms[i].ring
		}
	}
	for i := range c.sms {
		d.Spans = append(d.Spans, c.sms[i].spans...)
		d.SpansDropped += c.sms[i].dropped
	}
	sort.SliceStable(d.Spans, func(a, b int) bool {
		x, y := d.Spans[a], d.Spans[b]
		if x.Start != y.Start {
			return x.Start < y.Start
		}
		if x.SM != y.SM {
			return x.SM < y.SM
		}
		if x.CTA != y.CTA {
			return x.CTA < y.CTA
		}
		return x.Kind < y.Kind
	})
	for i, n := range c.hist {
		if n == 0 {
			continue
		}
		b := HistBucket{Count: n}
		switch {
		case i == 0:
			b.Lo, b.Hi = 0, 0
		case i == histBuckets-1:
			b.Lo, b.Hi = 1<<uint(i-1), -1
		default:
			b.Lo, b.Hi = 1<<uint(i-1), 1<<uint(i)-1
		}
		d.SwapLatency = append(d.SwapLatency, b)
	}
	return d
}
