package stats

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.Row("alpha", "1")
	tb.Rowf("beta", 2.5)
	tb.Note("footnote %d", 7)
	out := tb.String()
	for _, want := range []string{"== demo ==", "name", "alpha", "beta", "2.500", "note: footnote 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Columns align: "alpha" and "beta " share a column width.
	lines := strings.Split(out, "\n")
	var alphaLine, betaLine string
	for _, l := range lines {
		if strings.HasPrefix(l, "alpha") {
			alphaLine = l
		}
		if strings.HasPrefix(l, "beta") {
			betaLine = l
		}
	}
	if strings.Index(alphaLine, "1") != strings.Index(betaLine, "2.500") {
		t.Errorf("columns misaligned:\n%q\n%q", alphaLine, betaLine)
	}
}

func TestTableMarkSampled(t *testing.T) {
	tb := NewTable("fig", "workload", "speedup")
	tb.Row("nw", "1.2")
	tb.Row("bfs", "1.1")
	tb.MarkSampled("100:1000:25")
	out := tb.String()
	for _, want := range []string{"sampled", "100:1000:25", "extrapolations"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Every data row carries the flag cell.
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "nw") || strings.HasPrefix(l, "bfs") {
			if !strings.HasSuffix(strings.TrimRight(l, " "), "yes") {
				t.Errorf("row not flagged: %q", l)
			}
		}
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("ragged", "a")
	tb.Row("x", "extra", "more")
	out := tb.String()
	if !strings.Contains(out, "more") {
		t.Error("extra cells dropped")
	}
}

func TestMeans(t *testing.T) {
	if Mean(nil) != 0 || GeoMean(nil) != 0 {
		t.Error("empty means must be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean = %v", got)
	}
	if got := GeoMean([]float64{2, 2, 2}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean = %v", got)
	}
}

func TestFormatters(t *testing.T) {
	if F3(1.23456) != "1.235" {
		t.Errorf("F3 = %q", F3(1.23456))
	}
	if Pct(1.239) != "+23.9%" {
		t.Errorf("Pct = %q", Pct(1.239))
	}
	if Pct(0.95) != "-5.0%" {
		t.Errorf("Pct = %q", Pct(0.95))
	}
}

func TestWriteCSV(t *testing.T) {
	tb := NewTable("demo table", "name", "value")
	tb.Row("a,b", `say "hi"`)
	tb.Rowf("plain", 1.5)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "name,value\n\"a,b\",\"say \"\"hi\"\"\"\nplain,1.500\n"
	if sb.String() != want {
		t.Fatalf("csv = %q, want %q", sb.String(), want)
	}
}

func TestSlug(t *testing.T) {
	if got := Slug("VT speedup vs swap latency"); got != "vt-speedup-vs-swap-latency" {
		t.Fatalf("slug = %q", got)
	}
	if got := Slug("  --Weird__ 42 !!"); got != "weird-42" {
		t.Fatalf("slug = %q", got)
	}
}

func TestCSVMirror(t *testing.T) {
	dir := t.TempDir()
	SetCSVDir(dir)
	defer SetCSVDir("")
	tb := NewTable("mirror me", "a")
	tb.Row("1")
	var sb strings.Builder
	tb.Fprint(&sb)
	data, err := os.ReadFile(filepath.Join(dir, "mirror-me.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "a\n1\n" {
		t.Fatalf("csv file = %q", data)
	}
}

// TestMeanEdgeCases pins Mean's documented semantics: empty -> 0 (not
// NaN), single element -> itself, zeros are ordinary values.
func TestMeanEdgeCases(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
	if got := Mean([]float64{}); got != 0 {
		t.Errorf("Mean(empty) = %v, want 0", got)
	}
	if got := Mean([]float64{3.5}); got != 3.5 {
		t.Errorf("Mean(single) = %v, want 3.5", got)
	}
	if got := Mean([]float64{0, 0, 0}); got != 0 {
		t.Errorf("Mean(zeros) = %v, want 0", got)
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean(1,2,3) = %v, want 2", got)
	}
}

// TestGeoMeanEdgeCases pins GeoMean's documented semantics: empty -> 0,
// single element -> itself, any zero collapses the mean to 0, and a
// negative value yields NaN — sentinels, not plausible-looking numbers.
func TestGeoMeanEdgeCases(t *testing.T) {
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v, want 0", got)
	}
	if got := GeoMean([]float64{}); got != 0 {
		t.Errorf("GeoMean(empty) = %v, want 0", got)
	}
	if got := GeoMean([]float64{4.2}); math.Abs(got-4.2) > 1e-12 {
		t.Errorf("GeoMean(single) = %v, want 4.2", got)
	}
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %v, want 4", got)
	}
	if got := GeoMean([]float64{1, 0, 100}); got != 0 {
		t.Errorf("GeoMean with a zero = %v, want 0 (log-collapse sentinel)", got)
	}
	if got := GeoMean([]float64{2, -3}); !math.IsNaN(got) {
		t.Errorf("GeoMean with a negative = %v, want NaN sentinel", got)
	}
}
