// Package stats provides the small numeric and formatting utilities the
// evaluation harness uses: aligned text tables (the simulator's "figures"
// are printed as labeled data series), and mean/geomean helpers for the
// cross-benchmark summaries the paper reports.
package stats

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
)

// Table is an aligned text table with a title and optional note lines.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
	notes   []string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// Row appends a row; cells beyond the header count are kept (the widest
// row wins during layout).
func (t *Table) Row(cells ...string) *Table {
	t.rows = append(t.rows, cells)
	return t
}

// Rowf appends a row of formatted cells: each argument is rendered with
// %v, floats with three decimals.
func (t *Table) Rowf(cells ...any) *Table {
	out := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			out[i] = F3(v)
		case float32:
			out[i] = F3(float64(v))
		default:
			out[i] = fmt.Sprintf("%v", c)
		}
	}
	return t.Row(out...)
}

// Note appends a footnote line printed under the table.
func (t *Table) Note(format string, args ...any) *Table {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
	return t
}

// MarkSampled appends a trailing "sampled" column flagging every row as
// produced by interval/sampled simulation, plus a footnote naming the
// window configuration, so a figure can never silently mix sampled and
// exact numbers. Call after the last Row; the flag lands in the text and
// CSV renderings alike.
func (t *Table) MarkSampled(cfg string) *Table {
	if len(t.headers) > 0 {
		t.headers = append(t.headers, "sampled")
	}
	for i := range t.rows {
		t.rows[i] = append(t.rows[i], "yes")
	}
	return t.Note("sampled (%s): cycle-derived values are extrapolations within the reported error bound", cfg)
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	cols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.headers)
	for _, r := range t.rows {
		measure(r)
	}

	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	printRow := func(r []string) {
		parts := make([]string, 0, len(r))
		for i, c := range r {
			if i < len(r)-1 {
				parts = append(parts, pad(c, width[i]))
			} else {
				parts = append(parts, c)
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	if len(t.headers) > 0 {
		printRow(t.headers)
		total := 0
		for _, wd := range width {
			total += wd
		}
		fmt.Fprintln(w, strings.Repeat("-", total+2*(cols-1)))
	}
	for _, r := range t.rows {
		printRow(r)
	}
	for _, n := range t.notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
	t.mirrorCSV()
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// F3 formats a float with three decimals.
func F3(v float64) string { return fmt.Sprintf("%.3f", v) }

// Pct formats a ratio as a signed percentage ("+23.9%").
func Pct(ratio float64) string { return fmt.Sprintf("%+.1f%%", (ratio-1)*100) }

// Mean returns the arithmetic mean, or 0 for an empty slice (so an
// empty experiment row renders as 0 rather than NaN). A single-element
// slice returns that element. Pinned by TestMeanEdgeCases.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean, or 0 for an empty slice. Values
// must be positive: a zero value collapses the whole mean to 0 (its log
// is -Inf) and a negative value yields NaN — both sentinel outcomes
// rather than silently plausible numbers, so a bad speedup ratio slipped
// into a table is visible. A single-element slice returns that element.
// These semantics are pinned by TestGeoMeanEdgeCases.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// csvDir, when non-empty, makes every Fprint also write the table as
// <slug(title)>.csv in that directory. Set through SetCSVDir (cmd/vtbench
// -csv); empty disables. Not safe for concurrent table printing — the
// harness prints tables sequentially.
var csvDir string

// SetCSVDir enables or disables CSV mirroring of printed tables.
func SetCSVDir(dir string) { csvDir = dir }

// WriteCSV renders the table as RFC-4180-ish CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if len(t.headers) > 0 {
		if err := writeRow(t.headers); err != nil {
			return err
		}
	}
	for _, r := range t.rows {
		if err := writeRow(r); err != nil {
			return err
		}
	}
	return nil
}

// Slug converts a title to a filesystem-friendly name.
func Slug(s string) string {
	var sb strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			sb.WriteRune(r)
		case sb.Len() > 0 && sb.String()[sb.Len()-1] != '-':
			sb.WriteByte('-')
		}
	}
	return strings.Trim(sb.String(), "-")
}

// mirrorCSV writes the table to csvDir if enabled; failures are reported
// on stderr rather than aborting the experiment.
func (t *Table) mirrorCSV() {
	if csvDir == "" || t.Title == "" {
		return
	}
	path := filepath.Join(csvDir, Slug(t.Title)+".csv")
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stats: csv: %v\n", err)
		return
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		fmt.Fprintf(os.Stderr, "stats: csv: %v\n", err)
	}
}
