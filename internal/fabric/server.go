package fabric

import (
	"encoding/json"
	"errors"
	"fmt"
	"html"
	"io"
	"net/http"

	"repro/internal/harness"
	"repro/internal/resultstore"
	"repro/internal/sweepobs"
)

// maxBodyBytes bounds request bodies: the largest legitimate payload
// is a completion carrying a full gpu.Result or a checkpoint envelope,
// both far under this.
const maxBodyBytes = 64 << 20

// syncableKinds are the store object kinds workers may sync through
// the coordinator: prefix checkpoints (the fork donors' output) and
// memoized results. Journal segments and artifacts stay
// coordinator-owned.
var syncableKinds = map[resultstore.Kind]bool{
	resultstore.KindCheckpoint: true,
	resultstore.KindResult:     true,
}

// Handler returns the coordinator's HTTP handler: the /v1 job and
// object-sync API, plus the fleet dashboard (/, /status, /metrics).
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/lease", c.handleLease)
	mux.HandleFunc("POST /v1/renew", c.handleRenew)
	mux.HandleFunc("POST /v1/release", c.handleRelease)
	mux.HandleFunc("POST /v1/complete", c.handleComplete)
	mux.HandleFunc("POST /v1/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("GET /v1/object/{kind}/{key}", c.handleObjectGet)
	mux.HandleFunc("POST /v1/object/{kind}/{key}", c.handleObjectPut)
	mux.HandleFunc("GET /status", c.handleStatus)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("GET /{$}", c.handleDashboard)
	return mux
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	defer r.Body.Close()
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(v); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Worker == "" {
		http.Error(w, "missing worker id", http.StatusBadRequest)
		return
	}
	resp, ok, sweepDone := c.lease(req.Worker)
	switch {
	case sweepDone:
		http.Error(w, "sweep complete", http.StatusGone)
	case !ok:
		w.WriteHeader(http.StatusNoContent)
	default:
		writeJSON(w, resp)
	}
}

func (c *Coordinator) handleRenew(w http.ResponseWriter, r *http.Request) {
	var req RenewRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, ok := c.renew(req.LeaseID)
	if !ok {
		http.Error(w, "unknown or expired lease", http.StatusNotFound)
		return
	}
	writeJSON(w, resp)
}

func (c *Coordinator) handleRelease(w http.ResponseWriter, r *http.Request) {
	var req ReleaseRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if !c.release(req.LeaseID) {
		http.Error(w, "unknown or expired lease", http.StatusNotFound)
		return
	}
	w.WriteHeader(http.StatusOK)
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := c.complete(req); err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.WriteHeader(http.StatusOK)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Worker == "" {
		http.Error(w, "missing worker id", http.StatusBadRequest)
		return
	}
	c.heartbeat(req)
	w.WriteHeader(http.StatusOK)
}

func (c *Coordinator) handleObjectGet(w http.ResponseWriter, r *http.Request) {
	kind, key := resultstore.Kind(r.PathValue("kind")), r.PathValue("key")
	if !syncableKinds[kind] {
		http.Error(w, "unsupported object kind", http.StatusBadRequest)
		return
	}
	b, err := harness.StoreGetObject(c.cfg.Params, kind, key)
	if err != nil {
		if errors.Is(err, resultstore.ErrNotFound) {
			http.NotFound(w, r)
		} else {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

func (c *Coordinator) handleObjectPut(w http.ResponseWriter, r *http.Request) {
	kind, key := resultstore.Kind(r.PathValue("kind")), r.PathValue("key")
	if !syncableKinds[kind] {
		http.Error(w, "unsupported object kind", http.StatusBadRequest)
		return
	}
	defer r.Body.Close()
	b, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// The envelope's embedded fingerprint is re-verified by every
	// consumer on read (and quarantined on mismatch), so the sync needs
	// only a well-formedness check here.
	if !json.Valid(b) {
		http.Error(w, "object payload is not valid JSON", http.StatusBadRequest)
		return
	}
	if err := harness.StorePutObject(c.cfg.Params, kind, key, b); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusOK)
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(c.Status())
}

// handleMetrics serves the combined exposition: the coordinator
// monitor's vtsweep_* families (fleet totals — remote completions fold
// into the same counters a local sweep bumps) followed by the
// vtfabric_* fleet families with per-worker labels. The name spaces
// are disjoint, so the concatenation stays a valid exposition.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	mon := c.cfg.Params.Monitor
	if mon == nil {
		mon = harness.DefaultMonitor()
	}
	mon.WriteMetrics(w)
	c.WriteFleetMetrics(w)
}

// WriteFleetMetrics renders the vtfabric_* families.
func (c *Coordinator) WriteFleetMetrics(w io.Writer) error {
	st := c.Status()
	r := sweepobs.NewRegistry()
	r.Gauge("vtfabric_jobs_pending", "Jobs waiting for a lease.").Set(float64(st.JobsPending))
	r.Gauge("vtfabric_jobs_leased", "Jobs currently leased to workers.").Set(float64(st.JobsLeased))
	r.Gauge("vtfabric_jobs_done", "Jobs completed.").Set(float64(st.JobsDone))
	r.Gauge("vtfabric_workers", "Workers that have contacted the coordinator.").Set(float64(len(st.Workers)))
	r.Counter("vtfabric_leases_granted_total", "Leases granted.").Add(float64(st.LeasesGranted))
	r.Counter("vtfabric_leases_renewed_total", "Lease renewals.").Add(float64(st.LeasesRenewed))
	r.Counter("vtfabric_leases_expired_total", "Leases reclaimed after expiry (worker crash or stall).").Add(float64(st.LeasesExpired))
	r.Counter("vtfabric_leases_released_total", "Leases released unexecuted by draining workers.").Add(float64(st.LeasesReleased))
	r.Counter("vtfabric_completions_total", "Job completions accepted.").Add(float64(st.Completions))
	r.Counter("vtfabric_duplicate_completions_total", "Completions dropped as duplicates (job already done).").Add(float64(st.DuplicateCompletions))
	r.Gauge("vtfabric_agg_sim_cycles_per_sec", "Windowed fleet-aggregate simulated-cycle rate.").Set(st.AggSimCyclesPerSec)

	slots := r.Gauge("vtfabric_worker_slots", "Lease slots per worker.")
	active := r.Gauge("vtfabric_worker_active_jobs", "Jobs currently held per worker.")
	seen := r.Gauge("vtfabric_worker_last_seen_seconds", "Seconds since each worker's last contact.")
	comp := r.Counter("vtfabric_worker_completions_total", "Completions delivered per worker.")
	cyc := r.Counter("vtfabric_worker_sim_cycles_total", "Simulated cycles delivered per worker.")
	for _, ws := range st.Workers {
		slots.Set(float64(ws.Slots), "worker", ws.ID)
		active.Set(float64(ws.Active), "worker", ws.ID)
		seen.Set(ws.LastSeen, "worker", ws.ID)
		comp.Add(float64(ws.Completions), "worker", ws.ID)
		cyc.Add(float64(ws.SimCycles), "worker", ws.ID)
	}
	return r.Write(w)
}

// handleDashboard is the self-refreshing fleet page: queue state,
// lease churn, aggregate windowed throughput, and one row per worker.
func (c *Coordinator) handleDashboard(w http.ResponseWriter, r *http.Request) {
	st := c.Status()
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, `<!doctype html><html><head><meta http-equiv="refresh" content="2">`+
		`<title>vtsweepd fleet</title></head><body><h1>vtsweepd fleet</h1>`)
	state := "running"
	if st.SweepClosed {
		state = "complete"
	}
	fmt.Fprintf(w, "<p>sweep %s — jobs: %d pending, %d leased, %d done — %.0f simcycles/s (fleet, windowed)</p>",
		state, st.JobsPending, st.JobsLeased, st.JobsDone, st.AggSimCyclesPerSec)
	fmt.Fprintf(w, "<p>leases: %d granted, %d renewed, %d expired, %d released — completions: %d (+%d duplicate)</p>",
		st.LeasesGranted, st.LeasesRenewed, st.LeasesExpired, st.LeasesReleased,
		st.Completions, st.DuplicateCompletions)
	fmt.Fprintf(w, "<h2>workers (%d)</h2><table border=1 cellpadding=4>"+
		"<tr><th>worker</th><th>slots</th><th>active</th><th>last seen</th>"+
		"<th>completions</th><th>simcycles</th><th>executed (self)</th></tr>", len(st.Workers))
	for _, ws := range st.Workers {
		fmt.Fprintf(w, "<tr><td>%s</td><td>%d</td><td>%d</td><td>%.1fs</td><td>%d</td><td>%d</td><td>%d</td></tr>",
			html.EscapeString(ws.ID), ws.Slots, ws.Active, ws.LastSeen,
			ws.Completions, ws.SimCycles, ws.Metrics.Executed)
	}
	fmt.Fprintf(w, "</table><p><a href=%q>JSON</a> — <a href=%q>metrics</a></p></body></html>",
		"/status", "/metrics")
}
