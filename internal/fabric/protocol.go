// Package fabric is the distributed sweep fabric: a coordinator that
// plans a sweep and serves fingerprint-keyed jobs over HTTP, and a
// pull-based worker that executes them through the supervised harness
// and streams outcomes back.
//
// The division of labor keeps the determinism contract trivial: the
// coordinator runs the experiments in-process exactly like a local
// sweep — same scheduler, same table assembly — and only the Executor
// stage is remote. Workers run the same deterministic simulation code
// on fully resolved configs, so a sweep run on N workers produces
// bit-identical sim_cycles and tables to the single-process run, and a
// re-leased job after a worker crash re-produces the same Result it
// would have reported.
//
// Wire protocol (JSON over HTTP, all under /v1):
//
//	POST /v1/lease     {worker}            -> 200 {lease_id, ttl_ms, job}
//	                                          204 (nothing leasable now)
//	                                          410 (sweep complete)
//	POST /v1/renew     {lease_id}          -> 200 {ttl_ms} | 404
//	POST /v1/release   {lease_id}          -> 200 (job back to pending)
//	POST /v1/complete  {lease_id, key, entry, result|error}
//	                                       -> 200 (idempotent by key)
//	POST /v1/heartbeat {worker, slots, active, metrics}
//	GET  /v1/object/{kind}/{key}           -> envelope bytes | 404
//	POST /v1/object/{kind}/{key}           <- envelope bytes
//
// A job is keyed by the harness content fingerprint's cache key — the
// same hex id that names its result-store object and journal lines —
// and the spec carries the raw fingerprint so workers recompute and
// verify both before simulating. Completions are idempotent by key:
// after a lease expires and the job is re-leased, a late completion
// from the original worker is still accepted if it arrives first, and
// the duplicate is dropped (deterministic execution makes them
// interchangeable).
package fabric

import (
	"encoding/json"

	"repro/internal/gpu"
	"repro/internal/harness"
)

// JobSpec is the wire form of one fully resolved simulation point.
// Config is the exact hardware config to run (the coordinator has
// already applied the job's Mutate), so a worker needs no knowledge of
// the experiment that produced the point.
type JobSpec struct {
	// Key is the cache key (hex id) of FP; jobs, completions, store
	// objects, and journal lines all correlate through it.
	Key string `json:"key"`
	// FP is the raw content fingerprint. Workers recompute it from the
	// fields below and refuse mismatching leases.
	FP       string          `json:"fp"`
	Workload string          `json:"workload"`
	Variant  string          `json:"variant,omitempty"`
	Scale    int             `json:"scale"`
	Dilute   int             `json:"dilute,omitempty"`
	Config   json.RawMessage `json:"config"`

	Sampling gpu.SamplingOptions `json:"sampling,omitzero"`

	// PrefixFP marks the job as part of a prefix-fork group (see
	// harness/fork.go); workers sync the group's checkpoint object with
	// the coordinator store by its cache key.
	PrefixFP  string `json:"prefix_fp,omitempty"`
	ForkCycle int64  `json:"fork_cycle,omitempty"`

	CheckInvariants bool  `json:"check_invariants,omitempty"`
	RunTimeoutMS    int64 `json:"run_timeout_ms,omitempty"`
}

// LeaseRequest asks for one job.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseResponse grants one job for TTLMS milliseconds. The worker must
// renew before expiry or the job returns to the pending queue.
type LeaseResponse struct {
	LeaseID string  `json:"lease_id"`
	TTLMS   int64   `json:"ttl_ms"`
	Job     JobSpec `json:"job"`
}

// RenewRequest extends a lease; RenewResponse returns the new TTL.
type RenewRequest struct {
	LeaseID string `json:"lease_id"`
}

type RenewResponse struct {
	TTLMS int64 `json:"ttl_ms"`
}

// ReleaseRequest returns a leased job to the pending queue unexecuted
// (worker shutdown drain).
type ReleaseRequest struct {
	LeaseID string `json:"lease_id"`
}

// CompleteRequest reports one executed job. Entry is the worker's
// completion-log line (the coordinator re-journals it into the
// distributed completion log); Result is nil when Error is set.
type CompleteRequest struct {
	LeaseID string               `json:"lease_id"`
	Worker  string               `json:"worker"`
	Key     string               `json:"key"`
	Entry   harness.JournalEntry `json:"entry"`
	Result  *gpu.Result          `json:"result,omitempty"`
	Error   string               `json:"error,omitempty"`
}

// HeartbeatRequest is a worker's periodic status report for the fleet
// dashboard: slot occupancy and its cumulative local RunMetrics.
type HeartbeatRequest struct {
	Worker  string             `json:"worker"`
	Slots   int                `json:"slots"`
	Active  int                `json:"active"`
	Metrics harness.RunMetrics `json:"metrics"`
}

// WorkerStatus is one worker's row in the fleet status document.
type WorkerStatus struct {
	ID       string  `json:"id"`
	Slots    int     `json:"slots"`
	Active   int     `json:"active"`
	LastSeen float64 `json:"lastSeenSeconds"` // seconds since last contact
	// Completions and SimCycles are coordinator-side tallies of what
	// this worker delivered (not the worker's self-reported metrics).
	Completions int                `json:"completions"`
	SimCycles   int64              `json:"simCycles"`
	Metrics     harness.RunMetrics `json:"metrics"`
}

// FleetStatus is the coordinator's /status JSON document.
type FleetStatus struct {
	SchemaVersion int  `json:"schemaVersion"`
	SweepClosed   bool `json:"sweepClosed"`

	JobsPending int `json:"jobsPending"`
	JobsLeased  int `json:"jobsLeased"`
	JobsDone    int `json:"jobsDone"`

	LeasesGranted  int64 `json:"leasesGranted"`
	LeasesRenewed  int64 `json:"leasesRenewed"`
	LeasesExpired  int64 `json:"leasesExpired"`
	LeasesReleased int64 `json:"leasesReleased"`

	Completions          int64 `json:"completions"`
	DuplicateCompletions int64 `json:"duplicateCompletions"`

	// AggSimCyclesPerSec is the windowed fleet rate: the coordinator
	// monitor's simcycles/s over remotely completed work.
	AggSimCyclesPerSec float64 `json:"aggSimCyclesPerSec"`

	Workers []WorkerStatus `json:"workers"`
}

// FleetStatusSchemaVersion identifies the /status layout.
const FleetStatusSchemaVersion = 1
