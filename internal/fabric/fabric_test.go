package fabric

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/harness"
)

// testClock is the coordinator's now() seam: advance it and call
// reclaimExpired directly instead of sleeping through real TTLs.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func newTestClock() *testClock { return &testClock{t: time.Unix(1_700_000_000, 0)} }

func (c *testClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestCompletionDelta(t *testing.T) {
	cases := []struct {
		name  string
		entry harness.JournalEntry
		want  harness.RunMetrics
	}{
		{
			name:  "ok",
			entry: harness.JournalEntry{Status: "ok", Attempts: 1, Cycles: 500},
			want:  harness.RunMetrics{Executed: 1, SimCycles: 500},
		},
		{
			name:  "worker cache hit counts nothing",
			entry: harness.JournalEntry{Status: "ok", Attempts: 0, Cycles: 500},
			want:  harness.RunMetrics{},
		},
		{
			name:  "degraded retry",
			entry: harness.JournalEntry{Status: "degraded", Attempts: 2, Cycles: 300},
			want:  harness.RunMetrics{Executed: 1, Retries: 1, Degraded: 1, SimCycles: 300},
		},
		{
			name:  "failed records no cycles",
			entry: harness.JournalEntry{Status: "failed", Attempts: 2, Cycles: 0},
			want:  harness.RunMetrics{Executed: 1, Retries: 1, Failures: 1},
		},
		{
			name:  "forked run credits only the suffix",
			entry: harness.JournalEntry{Status: "ok", Attempts: 1, Cycles: 1000, ForkedFrom: "abcdef123456@400"},
			want: harness.RunMetrics{
				Executed: 1, SimCycles: 600,
				CheckpointHits: 1, PrefixCyclesSaved: 400,
			},
		},
		{
			name:  "sampled run carries its error bound",
			entry: harness.JournalEntry{Status: "ok", Attempts: 1, Cycles: 800, ErrorBound: 0.03},
			want:  harness.RunMetrics{Executed: 1, SimCycles: 800, SampledRuns: 1, MaxErrorBound: 0.03},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := completionDelta(tc.entry); got != tc.want {
				t.Errorf("completionDelta(%+v) = %+v, want %+v", tc.entry, got, tc.want)
			}
		})
	}
}

func TestForkedAtCycle(t *testing.T) {
	if at, ok := forkedAtCycle("abc@123"); !ok || at != 123 {
		t.Errorf("abc@123 = (%d, %v)", at, ok)
	}
	for _, s := range []string{"", "abc", "abc@", "abc@-1", "abc@x"} {
		if _, ok := forkedAtCycle(s); ok {
			t.Errorf("forkedAtCycle(%q) unexpectedly parsed", s)
		}
	}
}

// leaseProtocolCoordinator builds a coordinator with a fake clock and a
// hand-enqueued job queue (no sweep attached).
func leaseProtocolCoordinator(t *testing.T, keys ...string) (*Coordinator, *testClock) {
	t.Helper()
	clk := newTestClock()
	c := New(Config{LeaseTTL: 10 * time.Second, now: clk.now})
	t.Cleanup(c.Close)
	for _, k := range keys {
		c.enqueue(JobSpec{Key: k, FP: "fp-" + k, Workload: "w-" + k})
	}
	return c, clk
}

func TestLeaseRenewExpireReclaim(t *testing.T) {
	c, clk := leaseProtocolCoordinator(t, "j1", "j2")

	l1, ok, done := c.lease("w1")
	if !ok || done {
		t.Fatalf("first lease: ok=%v done=%v", ok, done)
	}
	l2, ok, _ := c.lease("w2")
	if !ok {
		t.Fatal("second lease refused")
	}
	if l1.Job.Key != "j1" || l2.Job.Key != "j2" {
		t.Fatalf("FIFO violated: got %s then %s", l1.Job.Key, l2.Job.Key)
	}
	if _, ok, _ := c.lease("w3"); ok {
		t.Fatal("third lease granted with an empty queue")
	}

	// w1 renews halfway through the TTL; w2 goes silent.
	clk.advance(6 * time.Second)
	if _, ok := c.renew(l1.LeaseID); !ok {
		t.Fatal("renew of a live lease refused")
	}
	clk.advance(6 * time.Second) // j2's deadline passes; j1's renewed one does not
	c.reclaimExpired()

	st := c.Status()
	if st.LeasesExpired != 1 || st.JobsPending != 1 || st.JobsLeased != 1 {
		t.Fatalf("after expiry: %+v", st)
	}
	// The reclaimed job re-leases to a new worker.
	l3, ok, _ := c.lease("w3")
	if !ok || l3.Job.Key != "j2" {
		t.Fatalf("reclaimed job not re-leased: ok=%v key=%s", ok, l3.Job.Key)
	}
	if l3.LeaseID == l2.LeaseID {
		t.Fatal("re-lease reused the dead lease id")
	}
	// The dead lease is gone: renewals and releases fail.
	if _, ok := c.renew(l2.LeaseID); ok {
		t.Fatal("renewed an expired lease")
	}
	if c.release(l2.LeaseID) {
		t.Fatal("released an expired lease")
	}
}

func TestReleaseRequeuesAtHead(t *testing.T) {
	c, _ := leaseProtocolCoordinator(t, "j1", "j2")
	l1, _, _ := c.lease("w1")
	if !c.release(l1.LeaseID) {
		t.Fatal("release refused")
	}
	// The released job must come back before j2 (it has waited longest).
	l, ok, _ := c.lease("w1")
	if !ok || l.Job.Key != "j1" {
		t.Fatalf("released job not at queue head: %+v", l.Job)
	}
}

func TestCompleteIdempotentAndExpiredLeaseAccepted(t *testing.T) {
	c, clk := leaseProtocolCoordinator(t, "j1")
	l, _, _ := c.lease("w1")

	// The lease expires (crash suspected) and the job is re-leased...
	clk.advance(11 * time.Second)
	c.reclaimExpired()
	l2, ok, _ := c.lease("w2")
	if !ok {
		t.Fatal("re-lease refused")
	}

	// ...but the "dead" worker was only slow: its completion still lands.
	res := &gpu.Result{Cycles: 42}
	entry := harness.JournalEntry{FP: "j1", Workload: "w-j1", Status: "ok", Attempts: 1, Cycles: 42}
	if err := c.complete(CompleteRequest{LeaseID: l.LeaseID, Worker: "w1", Key: "j1", Entry: entry, Result: res}); err != nil {
		t.Fatalf("expired-lease completion refused: %v", err)
	}
	// The second worker's duplicate is dropped, not an error.
	if err := c.complete(CompleteRequest{LeaseID: l2.LeaseID, Worker: "w2", Key: "j1", Entry: entry, Result: res}); err != nil {
		t.Fatalf("duplicate completion errored: %v", err)
	}
	st := c.Status()
	if st.Completions != 1 || st.DuplicateCompletions != 1 || st.JobsDone != 1 {
		t.Fatalf("status after duplicate: %+v", st)
	}

	// Unknown keys and empty completions are rejected.
	if err := c.complete(CompleteRequest{Key: "nope", Entry: entry, Result: res}); err == nil {
		t.Fatal("unknown key accepted")
	}
	c.enqueue(JobSpec{Key: "j3", FP: "fp-j3"})
	if err := c.complete(CompleteRequest{Key: "j3"}); err == nil {
		t.Fatal("completion with neither result nor error accepted")
	}
}

func TestServerEndpoints(t *testing.T) {
	dir := t.TempDir()
	harness.ResetMetrics()
	defer harness.ResetMetrics()
	c := New(Config{Params: harness.Params{CacheDir: dir}})
	defer c.Close()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	post := func(path, body string) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if resp := post("/v1/lease", `{"worker":""}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("lease without worker id: %d", resp.StatusCode)
	}
	if resp := post("/v1/lease", `{"worker":"w1"}`); resp.StatusCode != http.StatusNoContent {
		t.Errorf("lease with empty queue: %d, want 204", resp.StatusCode)
	}
	if resp := post("/v1/lease", `not json`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed lease body: %d", resp.StatusCode)
	}
	if resp := post("/v1/renew", `{"lease_id":"L99"}`); resp.StatusCode != http.StatusNotFound {
		t.Errorf("renew unknown lease: %d", resp.StatusCode)
	}

	// Object sync: only store kinds the fleet shares are served.
	if resp := post("/v1/object/journal/abc", `{}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("put of non-syncable kind: %d", resp.StatusCode)
	}
	if resp := post("/v1/object/vtck/abc", `{broken`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("put of invalid JSON: %d", resp.StatusCode)
	}
	if resp := post("/v1/object/vtck/abc", `{"v":1}`); resp.StatusCode != http.StatusOK {
		t.Errorf("valid object put: %d", resp.StatusCode)
	}
	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	if resp := get("/v1/object/vtck/abc"); resp.StatusCode != http.StatusOK {
		t.Errorf("get of stored object: %d", resp.StatusCode)
	}
	if resp := get("/v1/object/vtck/missing"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("get of missing object: %d", resp.StatusCode)
	}

	for _, path := range []string{"/status", "/metrics", "/"} {
		if resp := get(path); resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: %d", path, resp.StatusCode)
		}
	}
	var buf bytes.Buffer
	if err := c.WriteFleetMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"vtfabric_jobs_pending", "vtfabric_workers", "vtfabric_leases_expired_total"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("fleet metrics missing %s:\n%s", want, buf.String())
		}
	}

	// A closed sweep answers leases with 410 so workers exit.
	c.Close()
	if resp := post("/v1/lease", `{"worker":"w1"}`); resp.StatusCode != http.StatusGone {
		t.Errorf("lease after close: %d, want 410", resp.StatusCode)
	}
}

func TestWorkerExitsOnSweepComplete(t *testing.T) {
	c := New(Config{})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	c.Close() // sweep already complete

	err := RunWorker(context.Background(), WorkerConfig{
		Coordinator: srv.URL, ID: "w1", Slots: 2,
		PollInterval: 10 * time.Millisecond, HeartbeatEvery: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("worker did not exit cleanly on 410: %v", err)
	}
}

func TestWorkerDrainsOnCancel(t *testing.T) {
	c := New(Config{})
	defer c.Close()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- RunWorker(ctx, WorkerConfig{
			Coordinator: srv.URL, ID: "w1", Slots: 1,
			PollInterval: 10 * time.Millisecond, HeartbeatEvery: 10 * time.Millisecond,
		})
	}()
	time.Sleep(50 * time.Millisecond) // let it poll at least once
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("canceled worker returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker did not drain after cancel")
	}
}

func TestWorkerConfigValidation(t *testing.T) {
	if _, err := newWorker(WorkerConfig{ID: "w"}); err == nil {
		t.Error("missing coordinator URL accepted")
	}
	if _, err := newWorker(WorkerConfig{Coordinator: "http://x"}); err == nil {
		t.Error("missing worker id accepted")
	}
}

// --- end-to-end fleet tests -------------------------------------------

// sweepJobs is the shared small batch: three workloads under both
// policies, plus a variant pair that differs only in swap latency so
// Checkpoint runs exercise prefix-fork grouping.
func sweepJobs() []harness.Job {
	jobs := []harness.Job{
		{Workload: "pathfinder", Variant: "baseline",
			Mutate: func(c *config.GPUConfig) { c.Policy = config.PolicyBaseline }},
		{Workload: "pathfinder", Variant: "vt",
			Mutate: func(c *config.GPUConfig) { c.Policy = config.PolicyVT }},
		{Workload: "nw", Variant: "baseline",
			Mutate: func(c *config.GPUConfig) { c.Policy = config.PolicyBaseline }},
		{Workload: "nw", Variant: "vt",
			Mutate: func(c *config.GPUConfig) { c.Policy = config.PolicyVT }},
		{Workload: "bfs", Variant: "vt",
			Mutate: func(c *config.GPUConfig) { c.Policy = config.PolicyVT }},
	}
	return jobs
}

func testSweepParams(dir string) harness.Params {
	return harness.Params{Scale: 1, Config: config.Small(), Dilute: 50, Workers: 4, CacheDir: dir}
}

// collectSink records results as canonical JSON keyed by
// workload/variant, the determinism comparison unit.
type collectSink struct {
	mu  sync.Mutex
	got map[string]string
}

func newCollectSink() *collectSink { return &collectSink{got: map[string]string{}} }

func (s *collectSink) Collect(j harness.Job, res *gpu.Result) {
	b, err := json.Marshal(res)
	if err != nil {
		b = []byte("marshal error: " + err.Error())
	}
	s.mu.Lock()
	s.got[j.Workload+"/"+j.Variant] = string(b)
	s.mu.Unlock()
}

// journalCycles parses a journal file into cache-key -> cycles.
func journalCycles(t *testing.T, dir string) map[string]int64 {
	t.Helper()
	f, err := os.Open(filepath.Join(dir, harness.JournalFileName))
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	defer f.Close()
	out := map[string]int64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var e harness.JournalEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil || e.FP == "" {
			continue // header or torn line
		}
		out[e.FP] = e.Cycles
	}
	return out
}

func openTestJournal(t *testing.T, dir string) *harness.Journal {
	t.Helper()
	jl, err := harness.OpenJournal(filepath.Join(dir, harness.JournalFileName),
		harness.JournalMeta{Scale: 1, Dilute: 50, Config: "small"}, false)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jl.Close() })
	return jl
}

// runBaseline runs the batch single-process into its own store and
// returns the per-job results and journal cycles — the ground truth the
// fleet runs must reproduce bit-identically.
func runBaseline(t *testing.T, jobs []harness.Job, checkpoint bool) (map[string]string, map[string]int64) {
	t.Helper()
	harness.ResetMetrics()
	dir := t.TempDir()
	p := testSweepParams(dir)
	p.Checkpoint = checkpoint
	p.Journal = openTestJournal(t, dir)
	sink := newCollectSink()
	if err := harness.RunJobs(p, jobs, sink); err != nil {
		t.Fatalf("single-process sweep: %v", err)
	}
	return sink.got, journalCycles(t, dir)
}

// fleetFixture is one coordinator + httptest server + sweep params.
type fleetFixture struct {
	coord *Coordinator
	srv   *httptest.Server
	dir   string // coordinator store dir
	sweep harness.Params
}

func newFleetFixture(t *testing.T, checkpoint bool, ttl time.Duration) *fleetFixture {
	t.Helper()
	harness.ResetMetrics()
	t.Cleanup(harness.ResetMetrics)
	dir := t.TempDir()
	cp := testSweepParams(dir)
	cp.Checkpoint = checkpoint
	cp.Journal = openTestJournal(t, dir)
	coord := New(Config{Params: cp, LeaseTTL: ttl})
	t.Cleanup(coord.Close)
	srv := httptest.NewServer(coord.Handler())
	t.Cleanup(srv.Close)

	sweep := cp
	sweep.Executor = coord.Executor()
	sweep.Workers = 8 // dispatch width, not simulation parallelism
	return &fleetFixture{coord: coord, srv: srv, dir: dir, sweep: sweep}
}

// startWorker runs one fleet worker with its own local store dir.
func (f *fleetFixture) startWorker(t *testing.T, ctx context.Context, id string, slots int, bc func(int)) <-chan error {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		done <- RunWorker(ctx, WorkerConfig{
			Coordinator: f.srv.URL, ID: id, Slots: slots,
			Params:         harness.Params{CacheDir: t.TempDir()},
			PollInterval:   20 * time.Millisecond,
			HeartbeatEvery: 50 * time.Millisecond,
			BeforeComplete: bc,
		})
	}()
	return done
}

func verifyFleetMatchesBaseline(t *testing.T, wantRes map[string]string, wantCycles map[string]int64, gotRes map[string]string, dir string) {
	t.Helper()
	if len(gotRes) != len(wantRes) {
		t.Fatalf("fleet collected %d results, baseline %d", len(gotRes), len(wantRes))
	}
	for k, want := range wantRes {
		if gotRes[k] != want {
			t.Errorf("%s: fleet result differs from single-process:\nfleet:    %s\nbaseline: %s", k, gotRes[k], want)
		}
	}
	gotCycles := journalCycles(t, dir)
	if len(gotCycles) != len(wantCycles) {
		t.Fatalf("fleet journal has %d entries, baseline %d", len(gotCycles), len(wantCycles))
	}
	for k, want := range wantCycles {
		if got, ok := gotCycles[k]; !ok || got != want {
			t.Errorf("journal key %s: fleet cycles %d (present=%v), baseline %d", k, got, ok, want)
		}
	}
}

// TestFleetDeterminism is the tentpole contract: a sweep dispatched to
// N workers produces bit-identical results and journal cycle counts to
// the single-process run of the same batch.
func TestFleetDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	jobs := sweepJobs()
	wantRes, wantCycles := runBaseline(t, jobs, false)

	f := newFleetFixture(t, false, 5*time.Second)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w1 := f.startWorker(t, ctx, "w1", 2, nil)
	w2 := f.startWorker(t, ctx, "w2", 2, nil)

	sink := newCollectSink()
	if err := harness.RunJobs(f.sweep, jobs, sink); err != nil {
		t.Fatalf("fleet sweep: %v", err)
	}
	f.coord.Close() // workers see 410 and exit
	for _, w := range []<-chan error{w1, w2} {
		select {
		case err := <-w:
			if err != nil {
				t.Errorf("worker exit: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("worker did not exit after sweep close")
		}
	}
	verifyFleetMatchesBaseline(t, wantRes, wantCycles, sink.got, f.dir)

	st := f.coord.Status()
	if st.Completions != int64(len(jobs)) {
		t.Errorf("completions = %d, want %d", st.Completions, len(jobs))
	}
	if len(st.Workers) != 2 {
		t.Errorf("fleet saw %d workers, want 2", len(st.Workers))
	}
}

// TestFleetDeterminismWithCheckpoints repeats the determinism contract
// with prefix forking on: jobs that share a prefix group fork from a
// fleet-shared checkpoint, and results must still be bit-identical.
func TestFleetDeterminismWithCheckpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	jobs := swapLatencyJobs()
	wantRes, wantCycles := runBaseline(t, jobs, true)

	f := newFleetFixture(t, true, 5*time.Second)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w1 := f.startWorker(t, ctx, "w1", 2, nil)

	sink := newCollectSink()
	if err := harness.RunJobs(f.sweep, jobs, sink); err != nil {
		t.Fatalf("fleet sweep: %v", err)
	}
	f.coord.Close()
	select {
	case err := <-w1:
		if err != nil {
			t.Errorf("worker exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not exit after sweep close")
	}
	verifyFleetMatchesBaseline(t, wantRes, wantCycles, sink.got, f.dir)
}

// swapLatencyJobs differ only in the VT swap latencies — the shape the
// prefix-fork scheduler groups (fig-swaplat's sweep axis).
func swapLatencyJobs() []harness.Job {
	var jobs []harness.Job
	for _, lat := range []int{100, 400, 1600} {
		lat := lat
		jobs = append(jobs, harness.Job{
			Workload: "pathfinder", Variant: fmt.Sprintf("lat%d", lat),
			Mutate: func(c *config.GPUConfig) {
				c.Policy = config.PolicyVT
				c.VT.SwapOutLatency = lat
				c.VT.SwapInLatency = lat
			},
		})
	}
	return jobs
}

// TestFleetCrashReclaimResume kills one worker mid-sweep (it leases a
// job and never reports), and asserts the lease expires, the job
// re-dispatches to a healthy worker, and the sweep's outcome is still
// bit-identical to the single-process baseline.
func TestFleetCrashReclaimResume(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	jobs := sweepJobs()
	wantRes, wantCycles := runBaseline(t, jobs, false)

	f := newFleetFixture(t, false, 500*time.Millisecond)

	// The sweep must be enqueued before the doomed worker can lease.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sink := newCollectSink()
	sweepDone := make(chan error, 1)
	go func() { sweepDone <- harness.RunJobs(f.sweep, jobs, sink) }()

	// The doomed worker takes one lease and vanishes: never renews,
	// never completes — the exact path a SIGKILLed process takes.
	var doomed LeaseResponse
	deadline := time.Now().Add(10 * time.Second)
	for {
		b, _ := json.Marshal(LeaseRequest{Worker: "doomed"})
		resp, err := http.Post(f.srv.URL+"/v1/lease", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		code := resp.StatusCode
		if code == http.StatusOK {
			json.NewDecoder(resp.Body).Decode(&doomed)
			resp.Body.Close()
			break
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatal("doomed worker never got a lease")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Now the healthy worker joins and must finish everything,
	// including the job the dead worker holds.
	w1 := f.startWorker(t, ctx, "w1", 2, nil)

	select {
	case err := <-sweepDone:
		if err != nil {
			t.Fatalf("fleet sweep: %v", err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("sweep did not recover from the dead worker")
	}
	f.coord.Close()
	select {
	case err := <-w1:
		if err != nil {
			t.Errorf("worker exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not exit after sweep close")
	}

	verifyFleetMatchesBaseline(t, wantRes, wantCycles, sink.got, f.dir)
	st := f.coord.Status()
	if st.LeasesExpired < 1 {
		t.Errorf("expected at least one expired lease, got %+v", st)
	}
	_ = doomed
}

// TestFleetWarmWorkerReportsCacheHit pins the crash/rejoin accounting:
// a worker whose local store already holds a result reports it with
// Attempts 0, and the coordinator counts no new execution for it.
func TestFleetWarmWorkerReportsCacheHit(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	jobs := sweepJobs()[:1]

	// Warm a worker-local store by running the job into it directly.
	workerDir := t.TempDir()
	harness.ResetMetrics()
	wp := testSweepParams(workerDir)
	sink := newCollectSink()
	if err := harness.RunJobs(wp, jobs, sink); err != nil {
		t.Fatal(err)
	}

	f := newFleetFixture(t, false, 5*time.Second) // resets metrics & memo
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- RunWorker(ctx, WorkerConfig{
			Coordinator: f.srv.URL, ID: "warm", Slots: 1,
			Params:         harness.Params{CacheDir: workerDir},
			PollInterval:   20 * time.Millisecond,
			HeartbeatEvery: 50 * time.Millisecond,
		})
	}()

	fleetSink := newCollectSink()
	if err := harness.RunJobs(f.sweep, jobs, fleetSink); err != nil {
		t.Fatalf("fleet sweep: %v", err)
	}
	f.coord.Close()
	<-done

	if fleetSink.got[jobs[0].Workload+"/"+jobs[0].Variant] != sink.got[jobs[0].Workload+"/"+jobs[0].Variant] {
		t.Error("warm-store result differs from the original run")
	}
	// The in-process worker shares global metrics, so assert through the
	// coordinator's own view: the completion carried Attempts 0, which
	// counts zero executions in its delta.
	st := f.coord.Status()
	if st.Completions != 1 {
		t.Fatalf("completions = %d, want 1", st.Completions)
	}
	for _, w := range st.Workers {
		if w.ID == "warm" && w.SimCycles != 0 {
			t.Errorf("warm worker credited %d sim cycles for a store hit", w.SimCycles)
		}
	}
}

// TestFleetThroughputScaling asserts the acceptance speedup: four
// workers finish a batch at >=3x the aggregate simcycles/s of a
// single-process, single-worker run. Meaningless without cores to
// parallelize over, so it skips on small machines.
func TestFleetThroughputScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	if n := harness.ResolveWorkers(0); n < 4 {
		t.Skipf("needs >=4 CPUs for a meaningful scaling run, have %d", n)
	}
	// A wider batch so the fleet has enough parallel work to amortize
	// dispatch overhead.
	var jobs []harness.Job
	for _, w := range []string{"pathfinder", "nw", "bfs", "spmv", "lud", "srad"} {
		w := w
		for _, pol := range []config.Policy{config.PolicyBaseline, config.PolicyVT} {
			pol := pol
			jobs = append(jobs, harness.Job{
				Workload: w, Variant: pol.String(),
				Mutate: func(c *config.GPUConfig) { c.Policy = pol },
			})
		}
	}

	harness.ResetMetrics()
	p1 := testSweepParams(t.TempDir())
	p1.Workers = 1
	t0 := time.Now()
	if err := harness.RunJobs(p1, jobs, newCollectSink()); err != nil {
		t.Fatal(err)
	}
	m := harness.Metrics()
	singleRate := float64(m.SimCycles) / time.Since(t0).Seconds()

	f := newFleetFixture(t, false, 5*time.Second)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var workers []<-chan error
	for i := 0; i < 4; i++ {
		workers = append(workers, f.startWorker(t, ctx, fmt.Sprintf("w%d", i), 1, nil))
	}
	t1 := time.Now()
	if err := harness.RunJobs(f.sweep, jobs, newCollectSink()); err != nil {
		t.Fatal(err)
	}
	fleetWall := time.Since(t1).Seconds()
	f.coord.Close()
	for _, w := range workers {
		<-w
	}
	st := f.coord.Status()
	var fleetCycles int64
	for _, ws := range st.Workers {
		fleetCycles += ws.SimCycles
	}
	fleetRate := float64(fleetCycles) / fleetWall
	t.Logf("single-process %.0f simcycles/s, 4-worker fleet %.0f simcycles/s (%.2fx)",
		singleRate, fleetRate, fleetRate/singleRate)
	if fleetRate < 3*singleRate {
		t.Errorf("fleet aggregate %.0f simcycles/s is below 3x single-process %.0f", fleetRate, singleRate)
	}
}
