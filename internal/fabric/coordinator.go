package fabric

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/gpu"
	"repro/internal/harness"
)

// DefaultLeaseTTL is how long a worker holds a job before the
// coordinator reclaims it; workers renew at a fraction of this.
const DefaultLeaseTTL = 10 * time.Second

// Config configures a Coordinator.
type Config struct {
	// Params are the coordinator-side harness parameters: its result
	// store (the fleet's shared cache and completion log), journal,
	// monitor, and tracer. The Executor field is ignored — the
	// coordinator installs its own.
	Params harness.Params
	// LeaseTTL overrides DefaultLeaseTTL.
	LeaseTTL time.Duration
	// now is the test clock seam.
	now func() time.Time
}

type jobState int

const (
	jobPending jobState = iota
	jobLeased
	jobDone
)

// job is one fingerprint-keyed simulation point in the coordinator
// queue. Identical points requested by different experiments coalesce
// into one job (the fabric-level analogue of the memo cache).
type job struct {
	spec     JobSpec
	state    jobState
	leaseID  string
	worker   string
	deadline time.Time
	leases   int // grants, for churn accounting

	res    *gpu.Result
	errmsg string
	done   chan struct{}
}

// workerInfo is the dashboard's view of one worker.
type workerInfo struct {
	id          string
	slots       int
	active      int
	lastSeen    time.Time
	metrics     harness.RunMetrics
	completions int
	simCycles   int64
}

// Coordinator owns the job queue, the lease table, and the distributed
// completion log. It is driven from two sides: the sweep side calls
// Executor()'s Execute per planned job (blocking until a worker
// delivers), and the fleet side calls the HTTP handlers in server.go.
type Coordinator struct {
	cfg Config
	ttl time.Duration

	mu        sync.Mutex
	jobs      map[string]*job // by cache key
	pending   []string        // FIFO of pending job keys
	workers   map[string]*workerInfo
	closed    bool // sweep complete: leases answer 410
	nextLease int64

	leasesGranted  int64
	leasesRenewed  int64
	leasesExpired  int64
	leasesReleased int64
	completions    int64
	dupCompletions int64

	janitorStop chan struct{}
	janitorDone chan struct{}
}

// New starts a coordinator (including its lease janitor). Close it
// when the sweep is finished.
func New(cfg Config) *Coordinator {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	c := &Coordinator{
		cfg:         cfg,
		ttl:         cfg.LeaseTTL,
		jobs:        map[string]*job{},
		workers:     map[string]*workerInfo{},
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	go c.janitor()
	return c
}

// Close marks the sweep complete — subsequent lease requests answer
// 410 so workers exit — and stops the janitor. Idempotent.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	close(c.janitorStop)
	<-c.janitorDone
}

// janitor reclaims expired leases: the job returns to the head of the
// pending queue (it has waited longest) and the next lease request
// re-dispatches it. This is the whole crash story — a dead worker
// simply stops renewing.
func (c *Coordinator) janitor() {
	defer close(c.janitorDone)
	tick := time.NewTicker(c.ttl / 4)
	defer tick.Stop()
	for {
		select {
		case <-c.janitorStop:
			return
		case <-tick.C:
			c.reclaimExpired()
		}
	}
}

func (c *Coordinator) reclaimExpired() {
	now := c.cfg.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, j := range c.jobs {
		if j.state == jobLeased && now.After(j.deadline) {
			j.state = jobPending
			j.leaseID = ""
			j.worker = ""
			c.leasesExpired++
			c.pending = append([]string{key}, c.pending...)
		}
	}
}

// Executor returns the harness.Executor that dispatches jobs to the
// fleet. Install it as Params.Executor on the sweep the coordinator
// runs.
func (c *Coordinator) Executor() harness.Executor { return fleetExecutor{c} }

// fleetExecutor implements harness.Executor by enqueueing the job and
// blocking until a worker completes it (or the sweep context cancels).
type fleetExecutor struct{ c *Coordinator }

func (e fleetExecutor) Execute(p harness.Params, j harness.Job) (*gpu.Result, error) {
	fp, key, err := harness.FingerprintKey(p, j)
	if err != nil {
		// Unfingerprintable config: no stable job key exists, so run the
		// point locally exactly like the non-fabric path would.
		return harness.ExecuteJob(p, j)
	}
	harness.AddMetrics(harness.RunMetrics{Requests: 1})
	if res := harness.LoadCachedResult(p, fp); res != nil {
		// Already in the coordinator store (resumed or repeated sweep):
		// never dispatched, mirroring the local store-hit path.
		return res, nil
	}
	spec, err := e.c.specFor(p, j, fp, key)
	if err != nil {
		return nil, err
	}
	jb := e.c.enqueue(spec)

	did := p.Trace.Begin(p.Span(), "fabric.dispatch", j.Workload, j.Variant)
	p.Trace.SetAttr(did, "key", key[:12])
	defer p.Trace.End(did)

	ctx := context.Background()
	if p.Ctx != nil {
		ctx = p.Ctx
	}
	select {
	case <-jb.done:
	case <-ctx.Done():
		p.Trace.SetAttr(did, "outcome", "canceled")
		return nil, fmt.Errorf("fabric: dispatch %s/%s: %w", j.Workload, j.Variant, ctx.Err())
	}
	e.c.mu.Lock()
	res, errmsg, worker := jb.res, jb.errmsg, jb.worker
	e.c.mu.Unlock()
	p.Trace.SetAttr(did, "worker", worker)
	if errmsg != "" {
		p.Trace.SetAttr(did, "outcome", "error")
		return nil, fmt.Errorf("fabric: %s/%s on %s: %s", j.Workload, j.Variant, worker, errmsg)
	}
	p.Trace.SetAttr(did, "outcome", "ok")
	return res, nil
}

// specFor resolves one harness job into its wire form.
func (c *Coordinator) specFor(p harness.Params, j harness.Job, fp, key string) (JobSpec, error) {
	cfg := j.ConfigFor(p)
	b, err := json.Marshal(&cfg)
	if err != nil {
		return JobSpec{}, fmt.Errorf("fabric: marshal config for %s/%s: %w", j.Workload, j.Variant, err)
	}
	return JobSpec{
		Key:             key,
		FP:              fp,
		Workload:        j.Workload,
		Variant:         j.Variant,
		Scale:           p.Scale,
		Dilute:          p.Dilute,
		Config:          b,
		Sampling:        p.Sampling,
		PrefixFP:        j.PrefixFP,
		ForkCycle:       p.ForkCycle,
		CheckInvariants: p.CheckInvariants,
		RunTimeoutMS:    p.RunTimeout.Milliseconds(),
	}, nil
}

// enqueue adds the job to the queue, coalescing on the cache key.
func (c *Coordinator) enqueue(spec JobSpec) *job {
	c.mu.Lock()
	defer c.mu.Unlock()
	if j, ok := c.jobs[spec.Key]; ok {
		return j
	}
	j := &job{spec: spec, done: make(chan struct{})}
	c.jobs[spec.Key] = j
	c.pending = append(c.pending, spec.Key)
	return j
}

// lease grants the longest-waiting pending job. Returns (resp, true)
// on a grant; (zero, false) with sweepDone=false when nothing is
// leasable right now, and sweepDone=true when the sweep is closed.
func (c *Coordinator) lease(workerID string) (resp LeaseResponse, ok, sweepDone bool) {
	now := c.cfg.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchWorkerLocked(workerID, now)
	if c.closed {
		return LeaseResponse{}, false, true
	}
	for len(c.pending) > 0 {
		key := c.pending[0]
		c.pending = c.pending[1:]
		j := c.jobs[key]
		if j == nil || j.state != jobPending {
			continue // completed (or re-leased) while queued
		}
		c.nextLease++
		j.state = jobLeased
		j.leaseID = "L" + strconv.FormatInt(c.nextLease, 10)
		j.worker = workerID
		j.deadline = now.Add(c.ttl)
		j.leases++
		c.leasesGranted++
		if w := c.workers[workerID]; w != nil {
			w.active++
		}
		return LeaseResponse{LeaseID: j.leaseID, TTLMS: c.ttl.Milliseconds(), Job: j.spec}, true, false
	}
	return LeaseResponse{}, false, false
}

// renew extends a live lease.
func (c *Coordinator) renew(leaseID string) (RenewResponse, bool) {
	now := c.cfg.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, j := range c.jobs {
		if j.state == jobLeased && j.leaseID == leaseID {
			j.deadline = now.Add(c.ttl)
			c.leasesRenewed++
			if w := c.workers[j.worker]; w != nil {
				w.lastSeen = now
			}
			return RenewResponse{TTLMS: c.ttl.Milliseconds()}, true
		}
	}
	return RenewResponse{}, false
}

// release returns a leased job to the pending queue unexecuted (a
// draining worker hands back what it has not started).
func (c *Coordinator) release(leaseID string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, j := range c.jobs {
		if j.state == jobLeased && j.leaseID == leaseID {
			j.state = jobPending
			j.leaseID = ""
			c.workerJobDoneLocked(j.worker)
			j.worker = ""
			c.leasesReleased++
			c.pending = append([]string{key}, c.pending...)
			return true
		}
	}
	return false
}

func (c *Coordinator) touchWorkerLocked(id string, now time.Time) {
	w := c.workers[id]
	if w == nil {
		w = &workerInfo{id: id, slots: 1}
		c.workers[id] = w
	}
	w.lastSeen = now
}

func (c *Coordinator) workerJobDoneLocked(id string) {
	if w := c.workers[id]; w != nil && w.active > 0 {
		w.active--
	}
}

// heartbeat records a worker's self-reported status for the dashboard.
func (c *Coordinator) heartbeat(hb HeartbeatRequest) {
	now := c.cfg.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchWorkerLocked(hb.Worker, now)
	w := c.workers[hb.Worker]
	w.slots = hb.Slots
	w.active = hb.Active
	w.metrics = hb.Metrics
}

// complete records one executed job: idempotent by key, and accepted
// even from an expired lease if the job is not yet done — the work is
// deterministic, so first-in wins and duplicates are dropped.
func (c *Coordinator) complete(req CompleteRequest) error {
	now := c.cfg.now()
	c.mu.Lock()
	j, ok := c.jobs[req.Key]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("unknown job key %q", req.Key)
	}
	if j.state == jobDone {
		c.dupCompletions++
		c.mu.Unlock()
		return nil
	}
	if req.Error == "" && req.Result == nil {
		c.mu.Unlock()
		return fmt.Errorf("completion for %q has neither result nor error", req.Key)
	}
	j.state = jobDone
	j.res = req.Result
	j.errmsg = req.Error
	if j.worker != "" {
		c.workerJobDoneLocked(j.worker)
	}
	j.worker = req.Worker
	j.leaseID = ""
	c.completions++
	c.touchWorkerLocked(req.Worker, now)
	delta := completionDelta(req.Entry)
	if w := c.workers[req.Worker]; w != nil {
		w.completions++
		w.simCycles += delta.SimCycles
	}
	spec := j.spec
	c.mu.Unlock()

	// Durability before visibility: the Result and its completion-log
	// line commit to the coordinator store as one transaction (the
	// distributed completion log), and only then does the waiting
	// Execute observe the job done. A coordinator crash after this
	// point resumes from its own journal/store like any local sweep.
	if req.Error == "" {
		harness.RecordRemote(c.cfg.Params, spec.FP, req.Entry, req.Result)
	} else {
		harness.RecordRemote(c.cfg.Params, spec.FP, req.Entry, nil)
	}
	harness.NoteRemoteCompletion(c.cfg.Params, delta)
	close(j.done)
	return nil
}

// completionDelta derives the coordinator-side RunMetrics delta from a
// worker's completion-log entry. Forked runs report total cycles but
// simulated only their suffix; the prefix cycle count rides in the
// ForkedFrom label ("<key>@<cycle>") and is credited to
// PrefixCyclesSaved instead, exactly like the local accounting. An
// Attempts of zero means the worker served its local store (nothing
// simulated now), which counts as a fleet cache hit.
func completionDelta(e harness.JournalEntry) harness.RunMetrics {
	var d harness.RunMetrics
	if e.Attempts == 0 {
		return d
	}
	d.Executed = 1
	if e.Attempts > 1 {
		d.Retries = e.Attempts - 1
	}
	switch e.Status {
	case "degraded":
		d.Degraded = 1
	case "failed":
		d.Failures = 1
	}
	if e.Status != "failed" {
		cycles := e.Cycles
		if at, ok := forkedAtCycle(e.ForkedFrom); ok {
			d.CheckpointHits = 1
			d.PrefixCyclesSaved = at
			cycles -= at
		}
		if cycles > 0 {
			d.SimCycles = cycles
		}
	}
	if e.ErrorBound > 0 {
		d.SampledRuns = 1
		d.MaxErrorBound = e.ErrorBound
	}
	return d
}

// forkedAtCycle parses the "<prefix-key>@<cycle>" ForkedFrom label.
func forkedAtCycle(s string) (int64, bool) {
	i := strings.LastIndexByte(s, '@')
	if i < 0 {
		return 0, false
	}
	n, err := strconv.ParseInt(s[i+1:], 10, 64)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// Status snapshots the fleet for /status and the dashboard.
func (c *Coordinator) Status() FleetStatus {
	now := c.cfg.now()
	mon := c.cfg.Params.Monitor
	if mon == nil {
		mon = harness.DefaultMonitor()
	}
	agg := mon.Status().SimCyclesPerSec
	c.mu.Lock()
	defer c.mu.Unlock()
	st := FleetStatus{
		SchemaVersion:        FleetStatusSchemaVersion,
		SweepClosed:          c.closed,
		LeasesGranted:        c.leasesGranted,
		LeasesRenewed:        c.leasesRenewed,
		LeasesExpired:        c.leasesExpired,
		LeasesReleased:       c.leasesReleased,
		Completions:          c.completions,
		DuplicateCompletions: c.dupCompletions,
		AggSimCyclesPerSec:   agg,
	}
	for _, j := range c.jobs {
		switch j.state {
		case jobPending:
			st.JobsPending++
		case jobLeased:
			st.JobsLeased++
		case jobDone:
			st.JobsDone++
		}
	}
	for _, w := range c.workers {
		st.Workers = append(st.Workers, WorkerStatus{
			ID:          w.id,
			Slots:       w.slots,
			Active:      w.active,
			LastSeen:    now.Sub(w.lastSeen).Seconds(),
			Completions: w.completions,
			SimCycles:   w.simCycles,
			Metrics:     w.metrics,
		})
	}
	sortWorkers(st.Workers)
	return st
}

func sortWorkers(ws []WorkerStatus) {
	for i := 1; i < len(ws); i++ {
		for k := i; k > 0 && ws[k].ID < ws[k-1].ID; k-- {
			ws[k], ws[k-1] = ws[k-1], ws[k]
		}
	}
}
