package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/harness"
	"repro/internal/resultstore"
)

// WorkerConfig configures one pull-based worker process.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL, e.g. "http://host:7077".
	Coordinator string
	// ID names the worker in leases, the dashboard, and metric labels.
	ID string
	// Slots is how many jobs the worker holds concurrently; <=0 means
	// GOMAXPROCS (clamped like harness workers).
	Slots int
	// Params are the worker-local harness parameters: its own CacheDir
	// (local store, seeded from the coordinator by object sync),
	// FailDir, timeouts. Scale/Dilute/Config/Sampling are overridden
	// per job from the lease; Journal stays local (the coordinator owns
	// the authoritative completion log).
	Params harness.Params
	// Client overrides the HTTP client (tests); nil uses a default with
	// a request timeout.
	Client *http.Client
	// PollInterval is the idle re-poll cadence when the coordinator has
	// no job (jittered); default 200ms.
	PollInterval time.Duration
	// HeartbeatEvery is the dashboard heartbeat cadence; default 1s.
	HeartbeatEvery time.Duration
	// BeforeComplete, when non-nil, runs just before the nth completion
	// report (1-based). The CI fabric drill uses it to kill a worker
	// after its job executed but before the coordinator hears about it
	// — the lease-expiry path a real crash takes.
	BeforeComplete func(n int)
}

// RunWorker pulls jobs from the coordinator until the sweep completes
// (nil), the context cancels (ctx.Err() after draining in-flight
// jobs), or the coordinator becomes unreachable for too long.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	w, err := newWorker(cfg)
	if err != nil {
		return err
	}
	return w.run(ctx)
}

// workerOfflineGrace is how long lease polling tolerates an
// unreachable coordinator before the worker gives up.
const workerOfflineGrace = 30 * time.Second

type worker struct {
	cfg    WorkerConfig
	client *http.Client
	base   string
	slots  int

	mu        sync.Mutex
	active    int
	completed int
}

func newWorker(cfg WorkerConfig) (*worker, error) {
	if cfg.Coordinator == "" {
		return nil, errors.New("fabric: worker needs a coordinator URL")
	}
	if cfg.ID == "" {
		return nil, errors.New("fabric: worker needs an id")
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 200 * time.Millisecond
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &worker{
		cfg:    cfg,
		client: client,
		base:   strings.TrimRight(cfg.Coordinator, "/"),
		slots:  harness.ResolveWorkers(cfg.Slots),
	}, nil
}

func (w *worker) run(ctx context.Context) error {
	hbStop := make(chan struct{})
	var hbDone sync.WaitGroup
	hbDone.Add(1)
	go func() {
		defer hbDone.Done()
		w.heartbeatLoop(ctx, hbStop)
	}()

	errs := make([]error, w.slots)
	var wg sync.WaitGroup
	for i := 0; i < w.slots; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w.slotLoop(ctx)
		}(i)
	}
	wg.Wait()
	close(hbStop)
	hbDone.Wait()
	w.heartbeat() // final report so the dashboard sees the drain
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return errors.Join(errs...)
}

// slotLoop is one lease slot: poll, execute, report, repeat. A 410
// ends the slot (sweep complete); a canceled context ends it after the
// in-flight job drains.
func (w *worker) slotLoop(ctx context.Context) error {
	offlineSince := time.Time{}
	for {
		if ctx.Err() != nil {
			return nil // run() reports ctx.Err()
		}
		lease, status, err := w.lease()
		switch {
		case err != nil:
			if offlineSince.IsZero() {
				offlineSince = time.Now()
			} else if time.Since(offlineSince) > workerOfflineGrace {
				return fmt.Errorf("fabric: coordinator unreachable for %s: %w", workerOfflineGrace, err)
			}
			w.idleWait(ctx)
			continue
		case status == http.StatusGone:
			return nil
		case status == http.StatusNoContent:
			offlineSince = time.Time{}
			w.idleWait(ctx)
			continue
		}
		offlineSince = time.Time{}
		w.mu.Lock()
		w.active++
		w.mu.Unlock()
		execErr := w.executeAndReport(ctx, lease)
		w.mu.Lock()
		w.active--
		w.mu.Unlock()
		if execErr != nil {
			return execErr
		}
	}
}

// idleWait sleeps one jittered poll interval, or until cancellation.
func (w *worker) idleWait(ctx context.Context) {
	d := w.cfg.PollInterval/2 + rand.N(w.cfg.PollInterval)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// executeAndReport runs one leased job through the local harness and
// reports the outcome. The job itself is never canceled mid-simulation
// by shutdown: the slot drains it, reports, and only then exits —
// preserving lease semantics (the coordinator would re-lease anything
// unreported anyway).
func (w *worker) executeAndReport(ctx context.Context, lease LeaseResponse) error {
	spec := lease.Job
	jp, job, err := w.paramsFor(spec)
	if err == nil {
		// Verify the lease describes the point we think it does: the
		// fingerprint must round-trip through our own resolution.
		fp, key, ferr := harness.FingerprintKey(jp, job)
		switch {
		case ferr != nil:
			err = fmt.Errorf("fingerprint: %w", ferr)
		case fp != spec.FP || key != spec.Key:
			err = fmt.Errorf("fingerprint mismatch: lease says %s, resolved %s", spec.Key, key)
		}
	}
	if err != nil {
		// A malformed lease is the coordinator's bug; fail the job loudly
		// rather than letting it bounce between workers forever.
		return w.reportComplete(lease, spec, harness.JournalEntry{
			FP: spec.Key, Workload: spec.Workload, Variant: spec.Variant,
			Status: "failed", Attempts: 1, Error: err.Error(),
			Time: time.Now().UTC().Format(time.RFC3339),
		}, nil, err.Error())
	}

	// Renew the lease while the simulation runs.
	renewStop := make(chan struct{})
	var renewDone sync.WaitGroup
	renewDone.Add(1)
	go func() {
		defer renewDone.Done()
		w.renewLoop(lease, renewStop)
	}()
	defer func() {
		close(renewStop)
		renewDone.Wait()
	}()

	// Seed the local store with the prefix group's checkpoint if the
	// coordinator has one (another worker's donor run), so this worker
	// forks instead of re-simulating the prefix.
	if spec.PrefixFP != "" {
		w.pullCheckpoint(jp, spec.PrefixFP)
	}

	// Capture the supervised run's completion-log entry as it is
	// recorded locally; it becomes the wire outcome.
	var outMu sync.Mutex
	var captured *harness.JournalEntry
	jp.OnOutcome = func(e harness.JournalEntry, _ *gpu.Result) {
		if e.FP != spec.Key {
			return // a donor run for a different point in the same group
		}
		outMu.Lock()
		captured = &e
		outMu.Unlock()
	}

	res, execErr := harness.ExecuteJob(jp, job)

	// Publish a checkpoint this run captured (donor side of the fork
	// group) so the rest of the fleet forks from it.
	if spec.PrefixFP != "" && execErr == nil {
		w.pushCheckpoint(jp, spec.PrefixFP)
	}

	outMu.Lock()
	entry := captured
	outMu.Unlock()
	if entry == nil {
		// The local store or memo served the result (possible after a
		// crash/rejoin with a warm CacheDir): synthesize the entry.
		// Attempts 0 tells the coordinator nothing was simulated now.
		e := harness.JournalEntry{
			FP: spec.Key, Workload: spec.Workload, Variant: spec.Variant,
			Attempts: 0, Time: time.Now().UTC().Format(time.RFC3339),
		}
		if execErr != nil {
			e.Status, e.Error = "failed", execErr.Error()
		} else {
			e.Status, e.Cycles = "ok", res.Cycles
			if res.Sampling != nil {
				e.ErrorBound = res.Sampling.ErrorBound
			}
		}
		entry = &e
	}
	errmsg := ""
	if execErr != nil {
		errmsg = execErr.Error()
		res = nil
	}
	return w.reportComplete(lease, spec, *entry, res, errmsg)
}

// paramsFor reconstructs the worker-local Params and Job for a lease.
func (w *worker) paramsFor(spec JobSpec) (harness.Params, harness.Job, error) {
	jp := w.cfg.Params
	var cfg config.GPUConfig
	if err := json.Unmarshal(spec.Config, &cfg); err != nil {
		return jp, harness.Job{}, fmt.Errorf("config: %w", err)
	}
	jp.Config = cfg
	jp.Scale = spec.Scale
	jp.Dilute = spec.Dilute
	jp.Sampling = spec.Sampling
	jp.ForkCycle = spec.ForkCycle
	jp.CheckInvariants = spec.CheckInvariants
	jp.Checkpoint = spec.PrefixFP != ""
	if spec.RunTimeoutMS > 0 {
		jp.RunTimeout = time.Duration(spec.RunTimeoutMS) * time.Millisecond
	}
	job := harness.Job{Workload: spec.Workload, Variant: spec.Variant, PrefixFP: spec.PrefixFP}
	return jp, job, nil
}

// renewLoop renews the lease at a third of its TTL until stopped.
func (w *worker) renewLoop(lease LeaseResponse, stop <-chan struct{}) {
	ttl := time.Duration(lease.TTLMS) * time.Millisecond
	tick := time.NewTicker(ttl / 3)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			var resp RenewResponse
			w.post("/v1/renew", RenewRequest{LeaseID: lease.LeaseID}, &resp)
		}
	}
}

// pullCheckpoint seeds the local store with the coordinator's
// checkpoint for the prefix group, if we lack it and it has one. The
// envelope's embedded fingerprint is verified by the fork loader on
// read, so a bad sync degrades to a full run, never a wrong one.
func (w *worker) pullCheckpoint(p harness.Params, prefixFP string) {
	key := harness.CacheKey(prefixFP)
	if _, err := harness.StoreGetObject(p, resultstore.KindCheckpoint, key); err == nil {
		return // already local
	}
	b, status, err := w.get("/v1/object/" + string(resultstore.KindCheckpoint) + "/" + key)
	if err != nil || status != http.StatusOK {
		return
	}
	harness.StorePutObject(p, resultstore.KindCheckpoint, key, b)
}

// pushCheckpoint publishes the local checkpoint for the prefix group
// to the coordinator. Unconditional put: deterministic donors make any
// concurrent writes content-identical.
func (w *worker) pushCheckpoint(p harness.Params, prefixFP string) {
	key := harness.CacheKey(prefixFP)
	b, err := harness.StoreGetObject(p, resultstore.KindCheckpoint, key)
	if err != nil {
		return
	}
	req, err := http.NewRequest(http.MethodPost,
		w.base+"/v1/object/"+string(resultstore.KindCheckpoint)+"/"+key, bytes.NewReader(b))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	if resp, err := w.client.Do(req); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// reportComplete posts the completion, retrying transient failures —
// an unreported job would burn a full lease TTL before re-dispatch.
func (w *worker) reportComplete(lease LeaseResponse, spec JobSpec, entry harness.JournalEntry, res *gpu.Result, errmsg string) error {
	w.mu.Lock()
	w.completed++
	n := w.completed
	w.mu.Unlock()
	if w.cfg.BeforeComplete != nil {
		w.cfg.BeforeComplete(n)
	}
	req := CompleteRequest{
		LeaseID: lease.LeaseID,
		Worker:  w.cfg.ID,
		Key:     spec.Key,
		Entry:   entry,
		Result:  res,
		Error:   errmsg,
	}
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * 200 * time.Millisecond)
		}
		status, err := w.postStatus("/v1/complete", req)
		if err == nil && status == http.StatusOK {
			return nil
		}
		if err == nil && status == http.StatusNotFound {
			// The coordinator no longer knows the job (restarted with a
			// fresh queue); nothing to do — the result is safe in our
			// local store.
			return nil
		}
		if err != nil {
			lastErr = err
		} else {
			lastErr = fmt.Errorf("complete: HTTP %d", status)
		}
	}
	return fmt.Errorf("fabric: reporting completion of %s: %w", spec.Key, lastErr)
}

// heartbeatLoop reports status until both the context cancels and the
// slots drain (stop).
func (w *worker) heartbeatLoop(ctx context.Context, stop <-chan struct{}) {
	tick := time.NewTicker(w.cfg.HeartbeatEvery)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			w.heartbeat()
		case <-ctx.Done():
			// Keep heartbeating while in-flight jobs drain.
			select {
			case <-stop:
				return
			case <-tick.C:
				w.heartbeat()
			}
		}
	}
}

func (w *worker) heartbeat() {
	w.mu.Lock()
	active := w.active
	w.mu.Unlock()
	w.post("/v1/heartbeat", HeartbeatRequest{
		Worker:  w.cfg.ID,
		Slots:   w.slots,
		Active:  active,
		Metrics: harness.Metrics(),
	}, nil)
}

// lease asks for one job. Returns the HTTP status for 204/410 flow.
func (w *worker) lease() (LeaseResponse, int, error) {
	var resp LeaseResponse
	status, err := w.postInto("/v1/lease", LeaseRequest{Worker: w.cfg.ID}, &resp)
	return resp, status, err
}

func (w *worker) post(path string, body, out any) error {
	_, err := w.postInto(path, body, out)
	return err
}

func (w *worker) postStatus(path string, body any) (int, error) {
	return w.postInto(path, body, nil)
}

func (w *worker) postInto(path string, body, out any) (int, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequest(http.MethodPost, w.base+path, bytes.NewReader(b))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

func (w *worker) get(path string) ([]byte, int, error) {
	resp, err := w.client.Get(w.base + path)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return nil, resp.StatusCode, err
	}
	return b, resp.StatusCode, nil
}
