package config

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestGTX480Valid(t *testing.T) {
	c := GTX480()
	if err := c.Validate(); err != nil {
		t.Fatalf("GTX480 preset invalid: %v", err)
	}
	if got := c.L1D.SizeBytes(); got != 16*1024 {
		t.Errorf("L1D size = %d, want 16384", got)
	}
	if got := c.L2.SizeBytes(); got != 128*1024 {
		t.Errorf("L2 slice size = %d, want 131072", got)
	}
	if c.RegFileSize*4 != 128*1024 {
		t.Errorf("register file = %d bytes, want 128 KB", c.RegFileSize*4)
	}
}

func TestSmallValid(t *testing.T) {
	c := Small()
	if err := c.Validate(); err != nil {
		t.Fatalf("Small preset invalid: %v", err)
	}
	if c.NumSMs != 2 {
		t.Errorf("Small NumSMs = %d, want 2", c.NumSMs)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*GPUConfig)
	}{
		{"zero SMs", func(c *GPUConfig) { c.NumSMs = 0 }},
		{"warp too wide", func(c *GPUConfig) { c.WarpSize = 128 }},
		{"zero warp", func(c *GPUConfig) { c.WarpSize = 0 }},
		{"zero CTA slots", func(c *GPUConfig) { c.MaxCTAsPerSM = 0 }},
		{"zero warp slots", func(c *GPUConfig) { c.MaxWarpsPerSM = 0 }},
		{"threads below warp", func(c *GPUConfig) { c.MaxThreadsPerSM = 16 }},
		{"zero schedulers", func(c *GPUConfig) { c.NumSchedulers = 0 }},
		{"zero regfile", func(c *GPUConfig) { c.RegFileSize = 0 }},
		{"zero reg alloc unit", func(c *GPUConfig) { c.RegAllocUnit = 0 }},
		{"zero ALU latency", func(c *GPUConfig) { c.ALULatency = 0 }},
		{"zero partitions", func(c *GPUConfig) { c.NumMemPartitions = 0 }},
		{"zero dram service", func(c *GPUConfig) { c.DRAMServiceCycles = 0 }},
		{"zero lsu queue", func(c *GPUConfig) { c.LSUQueueDepth = 0 }},
		{"bad L1 line", func(c *GPUConfig) { c.L1D.LineSize = 100 }},
		{"zero L1 sets", func(c *GPUConfig) { c.L1D.Sets = 0 }},
		{"zero L2 mshrs", func(c *GPUConfig) { c.L2.MSHRs = 0 }},
		{"vt no buffer", func(c *GPUConfig) {
			c.Policy = PolicyVT
			c.VT.ContextBufferBytes = 0
		}},
		{"vt negative swap", func(c *GPUConfig) {
			c.Policy = PolicyFullSwap
			c.VT.SwapOutLatency = -1
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := GTX480()
			tc.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Fatalf("expected validation error for %q", tc.name)
			}
		})
	}
}

func TestDisabledCacheSkipsGeometryCheck(t *testing.T) {
	c := GTX480()
	c.L1D.Enabled = false
	c.L1D.Sets = 0
	if err := c.Validate(); err != nil {
		t.Fatalf("disabled cache should skip geometry validation: %v", err)
	}
}

func TestEffectiveSchedulingLimits(t *testing.T) {
	c := GTX480()
	ctas, warps, threads := c.EffectiveSchedulingLimits()
	if ctas != 8 || warps != 48 || threads != 1536 {
		t.Fatalf("baseline limits = (%d,%d,%d), want (8,48,1536)", ctas, warps, threads)
	}

	ideal := c.WithPolicy(PolicyIdeal)
	ic, iw, it := ideal.EffectiveSchedulingLimits()
	if ic < ctas || iw < warps || it < threads {
		t.Fatalf("ideal limits (%d,%d,%d) must dominate baseline (%d,%d,%d)",
			ic, iw, it, ctas, warps, threads)
	}
	if it < c.RegFileSize {
		t.Errorf("ideal thread limit %d should cover register file bound %d", it, c.RegFileSize)
	}
}

func TestWithPolicyDoesNotMutateReceiver(t *testing.T) {
	c := GTX480()
	_ = c.WithPolicy(PolicyVT)
	if c.Policy != PolicyBaseline {
		t.Fatal("WithPolicy mutated its receiver")
	}
}

func TestPolicyAndSchedulerStrings(t *testing.T) {
	if PolicyBaseline.String() != "baseline" || PolicyVT.String() != "vt" ||
		PolicyIdeal.String() != "ideal" || PolicyFullSwap.String() != "fullswap" {
		t.Error("unexpected policy names")
	}
	if SchedGTO.String() != "gto" || SchedLRR.String() != "lrr" {
		t.Error("unexpected scheduler names")
	}
	if Policy(99).String() == "" || SchedulerKind(99).String() == "" {
		t.Error("unknown enum values must still render")
	}
}

// Property: the ideal policy's scheduling limits always dominate the
// baseline limits, for arbitrary (positive) hardware shapes.
func TestIdealDominatesProperty(t *testing.T) {
	f := func(regKB uint16, warpsLim uint8, ctasLim uint8) bool {
		c := GTX480()
		c.RegFileSize = int(regKB%512+1) * 256
		c.MaxWarpsPerSM = int(warpsLim%64) + 1
		c.MaxCTAsPerSM = int(ctasLim%32) + 1
		c.MaxThreadsPerSM = c.MaxWarpsPerSM * c.WarpSize
		bc, bw, bt := c.EffectiveSchedulingLimits()
		ideal := c.WithPolicy(PolicyIdeal)
		ic, iw, it := ideal.EffectiveSchedulingLimits()
		return ic >= bc && iw >= bw && it >= bt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeplerLikeValid(t *testing.T) {
	c := KeplerLike()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	base := GTX480()
	if c.MaxCTAsPerSM <= base.MaxCTAsPerSM || c.MaxWarpsPerSM <= base.MaxWarpsPerSM ||
		c.RegFileSize <= base.RegFileSize {
		t.Fatal("Kepler must loosen Fermi's limits")
	}
	if c.L2.SizeBytes()*c.NumMemPartitions != 1536*1024 {
		t.Fatalf("Kepler L2 = %d", c.L2.SizeBytes()*c.NumMemPartitions)
	}
}

func TestPolicyJSONRoundTrip(t *testing.T) {
	for _, p := range []Policy{PolicyBaseline, PolicyVT, PolicyIdeal, PolicyFullSwap} {
		data, err := p.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		var back Policy
		if err := back.UnmarshalJSON(data); err != nil {
			t.Fatal(err)
		}
		if back != p {
			t.Fatalf("round trip %v -> %s -> %v", p, data, back)
		}
	}
	var p Policy
	if err := p.UnmarshalJSON([]byte(`"nonsense"`)); err == nil {
		t.Fatal("bad policy must error")
	}
	if err := p.UnmarshalJSON([]byte(`1`)); err != nil || p != PolicyVT {
		t.Fatal("legacy numeric policy must parse")
	}
}

func TestSchedulerJSONRoundTrip(t *testing.T) {
	for _, k := range []SchedulerKind{SchedGTO, SchedLRR, SchedTwoLevel} {
		data, err := k.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		var back SchedulerKind
		if err := back.UnmarshalJSON(data); err != nil {
			t.Fatal(err)
		}
		if back != k {
			t.Fatalf("round trip %v", k)
		}
	}
}

// TestValidateCollectsAllViolations: Validate must report every problem
// in one pass (errors.Join), not just the first.
func TestValidateCollectsAllViolations(t *testing.T) {
	c := GTX480()
	c.NumSMs = 0
	c.NumSchedulers = -1
	c.MaxCycles = -5
	err := c.Validate()
	if err == nil {
		t.Fatal("invalid config accepted")
	}
	for _, want := range []string{"NumSMs", "NumSchedulers", "MaxCycles"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing the %s violation: %v", want, err)
		}
	}
}

func TestValidateRejectsNegativeMaxCycles(t *testing.T) {
	c := GTX480()
	c.MaxCycles = -1
	if err := c.Validate(); err == nil {
		t.Fatal("negative MaxCycles accepted")
	}
	c.MaxCycles = 0 // engine default: valid
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}
