// Package config defines the hardware configuration of the simulated GPU:
// per-SM scheduling limits (CTA slots, warp slots, thread slots), capacity
// limits (register file, shared memory), pipeline and memory latencies, and
// the Virtual Thread parameters. Presets model a Fermi-class GTX 480, the
// configuration used by the paper's evaluation.
package config

import (
	"encoding/json"
	"errors"
	"fmt"
)

// SchedulerKind selects the warp scheduling policy inside an SM.
type SchedulerKind int

const (
	// SchedGTO is greedy-then-oldest: keep issuing from the same warp
	// until it stalls, then fall back to the oldest ready warp.
	SchedGTO SchedulerKind = iota
	// SchedLRR is loose round-robin over ready warps.
	SchedLRR
	// SchedTwoLevel keeps a small active fetch group per scheduler,
	// round-robins inside it, and swaps stalled warps for pending ones
	// (Narasiman et al., MICRO 2011).
	SchedTwoLevel
)

// String returns the conventional short name of the scheduler.
func (k SchedulerKind) String() string {
	switch k {
	case SchedGTO:
		return "gto"
	case SchedLRR:
		return "lrr"
	case SchedTwoLevel:
		return "two-level"
	default:
		return fmt.Sprintf("sched(%d)", int(k))
	}
}

// Policy selects the CTA scheduling architecture under evaluation. It
// marshals to its String form in JSON output.
type Policy int

const (
	// PolicyBaseline respects both the scheduling and capacity limits,
	// as a stock GPU does.
	PolicyBaseline Policy = iota
	// PolicyVT is the paper's Virtual Thread architecture: CTAs are
	// resident up to the capacity limit, active up to the scheduling
	// limit, and swapped on long-latency stalls.
	PolicyVT
	// PolicyIdeal removes the scheduling limit entirely (as if PCs and
	// SIMT stacks were free); the capacity limit still binds. Upper
	// bound for VT.
	PolicyIdeal
	// PolicyFullSwap is the strawman that context-switches CTAs by
	// spilling registers and shared memory off-chip, paying a swap
	// latency proportional to the context footprint.
	PolicyFullSwap
)

// String returns the name used in reports for the policy.
func (p Policy) String() string {
	switch p {
	case PolicyBaseline:
		return "baseline"
	case PolicyVT:
		return "vt"
	case PolicyIdeal:
		return "ideal"
	case PolicyFullSwap:
		return "fullswap"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// MarshalJSON renders the policy as its name.
func (p Policy) MarshalJSON() ([]byte, error) {
	return []byte(`"` + p.String() + `"`), nil
}

// UnmarshalJSON parses a policy from its name (or a legacy number).
func (p *Policy) UnmarshalJSON(data []byte) error {
	switch string(data) {
	case `"baseline"`:
		*p = PolicyBaseline
	case `"vt"`:
		*p = PolicyVT
	case `"ideal"`:
		*p = PolicyIdeal
	case `"fullswap"`:
		*p = PolicyFullSwap
	default:
		var n int
		if err := json.Unmarshal(data, &n); err != nil {
			return fmt.Errorf("config: unknown policy %s", data)
		}
		*p = Policy(n)
	}
	return nil
}

// MarshalJSON renders the scheduler kind as its name.
func (k SchedulerKind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON parses a scheduler kind from its name (or a number).
func (k *SchedulerKind) UnmarshalJSON(data []byte) error {
	switch string(data) {
	case `"gto"`:
		*k = SchedGTO
	case `"lrr"`:
		*k = SchedLRR
	case `"two-level"`:
		*k = SchedTwoLevel
	default:
		var n int
		if err := json.Unmarshal(data, &n); err != nil {
			return fmt.Errorf("config: unknown scheduler %s", data)
		}
		*k = SchedulerKind(n)
	}
	return nil
}

// CacheConfig describes one cache level.
type CacheConfig struct {
	Enabled  bool
	Sets     int // number of sets
	Ways     int // associativity
	LineSize int // bytes; must be a power of two
	Latency  int // hit latency in core cycles
	MSHRs    int // outstanding distinct misses
}

// SizeBytes returns the total data capacity of the cache.
func (c CacheConfig) SizeBytes() int { return c.Sets * c.Ways * c.LineSize }

// ActivationPolicy selects which ready CTA the Virtual Thread controller
// activates into freed warp slots.
type ActivationPolicy int

const (
	// ActOldest activates the longest-resident ready CTA (FIFO age).
	ActOldest ActivationPolicy = iota
	// ActNewest activates the most recently assigned ready CTA (LIFO).
	ActNewest
)

// String names the activation policy.
func (a ActivationPolicy) String() string {
	switch a {
	case ActOldest:
		return "oldest"
	case ActNewest:
		return "newest"
	default:
		return fmt.Sprintf("act(%d)", int(a))
	}
}

// VTConfig holds the Virtual Thread architecture parameters.
type VTConfig struct {
	// MaxVirtualCTAsPerSM caps resident CTAs per SM. Zero means
	// "capacity-bound only" (no explicit cap).
	MaxVirtualCTAsPerSM int
	// SwapOutLatency is the core cycles to drain and save the
	// scheduling state (PC + SIMT stack + scoreboard) of one CTA.
	SwapOutLatency int
	// SwapInLatency is the core cycles to restore a CTA's scheduling
	// state into freed warp slots.
	SwapInLatency int
	// ContextBufferBytes is the per-SM SRAM budget that holds the
	// scheduling state of inactive CTAs. Admission of a virtual CTA is
	// denied when its context would not fit.
	ContextBufferBytes int
	// MinResidencyCycles prevents thrashing: an activated CTA is not
	// eligible to swap out again until this many cycles have elapsed.
	MinResidencyCycles int
	// Activation selects which ready CTA takes freed slots.
	Activation ActivationPolicy
	// TriggerFraction is the fraction of a CTA's unfinished warps that
	// must be blocked on long-latency memory (or barrier-parked behind
	// such warps) to trigger a swap-out. Zero means the paper default
	// of 1.0 — every warp stalled.
	TriggerFraction float64
	// SwapPorts is the number of concurrent swap operations per SM
	// (context buffer ports). Zero means 1.
	SwapPorts int
}

// EffTriggerFraction returns the swap trigger threshold with the default
// applied.
func (v VTConfig) EffTriggerFraction() float64 {
	if v.TriggerFraction <= 0 || v.TriggerFraction > 1 {
		return 1.0
	}
	return v.TriggerFraction
}

// EffSwapPorts returns the port count with the default applied.
func (v VTConfig) EffSwapPorts() int {
	if v.SwapPorts <= 0 {
		return 1
	}
	return v.SwapPorts
}

// GPUConfig is the full hardware description of the simulated GPU.
type GPUConfig struct {
	Name     string
	NumSMs   int
	WarpSize int // threads per warp; at most 64

	// Scheduling limits (per SM).
	MaxCTAsPerSM    int
	MaxWarpsPerSM   int
	MaxThreadsPerSM int
	NumSchedulers   int // warp schedulers per SM; each issues ≤1 instr/cycle
	Scheduler       SchedulerKind

	// Capacity limits (per SM).
	RegFileSize    int // 32-bit registers per SM (e.g. 32768 = 128 KB)
	SharedMemPerSM int // bytes
	RegAllocUnit   int // registers are allocated per warp in multiples of this
	SMemAllocUnit  int // shared memory allocated per CTA in multiples of this
	// RegFileBanks enables the register-file bank-conflict model: an
	// instruction whose source registers collide in a bank stalls its
	// scheduler one extra cycle per collision (a single-ported banked
	// file without an operand collector). Zero disables the model.
	RegFileBanks int
	// FetchGroupWarps is the active-group size per scheduler under
	// SchedTwoLevel (default 8 when zero).
	FetchGroupWarps int

	// Execution latencies (core cycles).
	ALULatency      int // simple integer/fp pipeline depth
	SFULatency      int // special function unit latency
	SFUInitInterval int // cycles between SFU issues
	SMemLatency     int // shared memory access latency

	// Memory system.
	L1D               CacheConfig
	L2                CacheConfig // per memory partition slice
	NumMemPartitions  int
	InterconnectDelay int // SM <-> partition one-way core cycles
	DRAMLatency       int // partition -> DRAM round trip, excluding queueing
	DRAMServiceCycles int // core cycles a partition is busy per 128 B burst
	// DRAMBanks enables the bank/row-buffer model: each partition has
	// this many banks with open-row tracking; a row miss adds
	// DRAMRowPenalty cycles of bank occupancy and response latency.
	// Zero selects the flat single-cursor channel model.
	DRAMBanks      int
	DRAMRowBytes   int // open-row size per bank (power of two)
	DRAMRowPenalty int // extra cycles for precharge+activate on a row miss
	LSUQueueDepth  int // in-flight coalesced transactions the LSU buffers

	// CTA scheduling architecture.
	Policy Policy
	VT     VTConfig

	// MaxCycles aborts a simulation that fails to converge. Zero means
	// the engine default.
	MaxCycles int64
}

// GTX480 returns a Fermi-class configuration mirroring the paper's
// simulated hardware (GPGPU-Sim GTX 480 profile).
func GTX480() GPUConfig {
	return GPUConfig{
		Name:     "gtx480",
		NumSMs:   15,
		WarpSize: 32,

		MaxCTAsPerSM:    8,
		MaxWarpsPerSM:   48,
		MaxThreadsPerSM: 1536,
		NumSchedulers:   2,
		Scheduler:       SchedGTO,

		RegFileSize:    32768, // 128 KB
		SharedMemPerSM: 48 * 1024,
		RegAllocUnit:   64, // per-warp allocation granularity (regs)
		SMemAllocUnit:  128,

		ALULatency:      10,
		SFULatency:      20,
		SFUInitInterval: 4,
		SMemLatency:     24,

		L1D: CacheConfig{
			Enabled:  true,
			Sets:     32,
			Ways:     4,
			LineSize: 128, // 16 KB
			Latency:  28,
			MSHRs:    64,
		},
		L2: CacheConfig{
			Enabled:  true,
			Sets:     128,
			Ways:     8,
			LineSize: 128, // 128 KB per partition slice (768 KB total / 6)
			Latency:  120,
			MSHRs:    64,
		},
		NumMemPartitions:  6,
		InterconnectDelay: 12,
		DRAMLatency:       220,
		DRAMServiceCycles: 4,
		DRAMBanks:         8,
		DRAMRowBytes:      2048,
		DRAMRowPenalty:    22,
		LSUQueueDepth:     16,

		Policy: PolicyBaseline,
		VT:     DefaultVT(),
	}
}

// KeplerLike returns a Kepler-class (GTX Titan generation) configuration:
// the scheduling limits are doubled relative to Fermi (16 CTA slots, 64
// warp slots, 2048 threads) and the register file is 256 KB, so the
// scheduling limit binds less often — the sensitivity the paper's
// discussion of newer hardware anticipates.
func KeplerLike() GPUConfig {
	c := GTX480()
	c.Name = "kepler"
	c.NumSMs = 13
	c.MaxCTAsPerSM = 16
	c.MaxWarpsPerSM = 64
	c.MaxThreadsPerSM = 2048
	c.NumSchedulers = 4
	c.RegFileSize = 65536 // 256 KB
	c.L1D.Sets = 32       // 16 KB unchanged
	c.L2.Sets = 256       // 1.5 MB total across 6 partitions
	return c
}

// Small returns a scaled-down configuration for fast unit and integration
// tests: 2 SMs with Fermi-shaped per-SM limits but tiny caches.
func Small() GPUConfig {
	c := GTX480()
	c.Name = "small"
	c.NumSMs = 2
	c.L1D.Sets = 8
	c.L2.Sets = 32
	c.NumMemPartitions = 2
	c.MaxCycles = 5_000_000 // fail fast on runaway test kernels
	return c
}

// DefaultVT returns the paper-default Virtual Thread parameters: cheap
// scheduling-state-only swaps and a 2x-scheduling-limit context budget.
func DefaultVT() VTConfig {
	return VTConfig{
		MaxVirtualCTAsPerSM: 0, // capacity bound
		SwapOutLatency:      8,
		SwapInLatency:       8,
		ContextBufferBytes:  16 * 1024,
		MinResidencyCycles:  32,
	}
}

// WithPolicy returns a copy of the configuration with the CTA scheduling
// policy replaced. PolicyIdeal rewrites the scheduling limits so that only
// capacity binds.
func (c GPUConfig) WithPolicy(p Policy) GPUConfig {
	c.Policy = p
	return c
}

// EffectiveSchedulingLimits returns the CTA/warp/thread limits the warp
// slot hardware enforces under the configured policy. PolicyIdeal reports
// limits large enough that capacity always binds first.
func (c GPUConfig) EffectiveSchedulingLimits() (ctas, warps, threads int) {
	if c.Policy == PolicyIdeal {
		// Any CTA needs >=1 register per thread and >=1 thread, so
		// the register file size bounds resident threads; never fall
		// below the baseline limits.
		threads = c.RegFileSize
		if threads < c.MaxThreadsPerSM {
			threads = c.MaxThreadsPerSM
		}
		warps = (threads + c.WarpSize - 1) / c.WarpSize
		if warps < c.MaxWarpsPerSM {
			warps = c.MaxWarpsPerSM
		}
		ctas = warps
		if ctas < c.MaxCTAsPerSM {
			ctas = c.MaxCTAsPerSM
		}
		return ctas, warps, threads
	}
	return c.MaxCTAsPerSM, c.MaxWarpsPerSM, c.MaxThreadsPerSM
}

// Validate reports configuration errors that would make a simulation
// meaningless (zero-sized structures, non-power-of-two lines, limits that
// cannot admit a single warp). Every violation is collected — the result
// joins all of them with errors.Join — so one Validate call shows the
// full repair list instead of one problem per round trip.
func (c GPUConfig) Validate() error {
	var errs []error
	bad := func(cond bool, msg string) {
		if cond {
			errs = append(errs, errors.New("config: "+msg))
		}
	}
	bad(c.NumSMs <= 0, "NumSMs must be positive")
	bad(c.WarpSize <= 0 || c.WarpSize > 64, "WarpSize must be in 1..64")
	bad(c.MaxCTAsPerSM <= 0 || c.MaxWarpsPerSM <= 0 || c.MaxThreadsPerSM <= 0,
		"scheduling limits must be positive")
	bad(c.WarpSize > 0 && c.MaxThreadsPerSM > 0 && c.MaxThreadsPerSM < c.WarpSize,
		"MaxThreadsPerSM smaller than one warp")
	bad(c.NumSchedulers <= 0, "NumSchedulers must be positive")
	bad(c.RegFileSize <= 0 || c.SharedMemPerSM < 0, "capacity limits must be positive")
	bad(c.RegAllocUnit <= 0 || c.SMemAllocUnit <= 0, "allocation units must be positive")
	bad(c.ALULatency <= 0 || c.SFULatency <= 0 || c.SMemLatency <= 0,
		"execution latencies must be positive")
	bad(c.NumMemPartitions <= 0, "NumMemPartitions must be positive")
	bad(c.DRAMServiceCycles <= 0 || c.DRAMLatency <= 0, "DRAM timing must be positive")
	bad(c.DRAMBanks < 0 || c.DRAMRowPenalty < 0,
		"DRAM bank model parameters must be non-negative")
	bad(c.RegFileBanks < 0 || c.RegFileBanks > 64, "RegFileBanks must be in 0..64")
	bad(c.LSUQueueDepth <= 0, "LSUQueueDepth must be positive")
	bad(c.MaxCycles < 0, "MaxCycles must be non-negative")
	for _, cc := range []struct {
		name string
		c    CacheConfig
	}{{"L1D", c.L1D}, {"L2", c.L2}} {
		if !cc.c.Enabled {
			continue
		}
		if cc.c.Sets <= 0 || cc.c.Ways <= 0 || cc.c.MSHRs <= 0 {
			errs = append(errs, fmt.Errorf("config: %s geometry must be positive", cc.name))
		}
		if cc.c.LineSize <= 0 || cc.c.LineSize&(cc.c.LineSize-1) != 0 {
			errs = append(errs, fmt.Errorf("config: %s line size must be a power of two", cc.name))
		}
	}
	if c.Policy == PolicyVT || c.Policy == PolicyFullSwap {
		bad(c.VT.SwapOutLatency < 0 || c.VT.SwapInLatency < 0,
			"VT swap latencies must be non-negative")
		bad(c.VT.ContextBufferBytes <= 0, "VT context buffer must be positive")
	}
	return errors.Join(errs...)
}
