package kernels

import (
	"repro/internal/isa"
	"repro/internal/mem"
)

// extraRegistry holds the extension workloads, kept out of the headline
// 14-kernel suite so the paper-facing averages stay comparable; the
// fig-extras experiment evaluates them separately.
var extraRegistry []struct {
	name string
	f    Factory
}

func registerExtra(name string, f Factory) {
	extraRegistry = append(extraRegistry, struct {
		name string
		f    Factory
	}{name, f})
}

func init() {
	registerExtra("gemm", GEMM)
	registerExtra("histogram", Histogram)
	registerExtra("bitonic", Bitonic)
}

// ExtraNames returns the extension workload names.
func ExtraNames() []string {
	out := make([]string, len(extraRegistry))
	for i, e := range extraRegistry {
		out[i] = e.name
	}
	return out
}

// Extras returns every extension workload at the given scale, in the
// default arena.
func Extras(scale int) []Workload {
	buildMu.Lock()
	defer buildMu.Unlock()
	out := make([]Workload, 0, len(extraRegistry))
	for _, e := range extraRegistry {
		out = append(out, e.f(scale))
	}
	return out
}

// GEMM models a shared-memory-tiled matrix multiply inner phase: two tile
// loads, a barrier, an 8-step FFMA sweep over the tile, repeated. High
// compute intensity and a large shared tile: capacity-limited, VT-neutral.
func GEMM(scale int) Workload {
	const kTiles = 4
	b := isa.NewBuilder("gemm").SharedMem(8 * 1024).ReserveRegs(26)
	emitGid(b)
	b.S2R(3, isa.SrTidX)
	b.ShlImm(4, 3, 2) // tid*4
	b.MovImm(5, 0)    // acc (float)
	b.MovImm(6, 0)    // tile index
	b.Label("tile")
	// Load one A and one B element into the shared tile (coalesced).
	b.IMulImm(7, 6, 4*256)
	b.IAdd(7, 7, 1)
	b.LdParam(8, 0)
	b.IAdd(8, 8, 7)
	b.LdG(9, 8, 0) // A element
	b.LdParam(10, 1)
	b.IAdd(10, 10, 7)
	b.LdG(11, 10, 0) // B element
	b.StS(4, 0, 9)
	b.IAddImm(12, 4, 1024)
	b.StS(12, 0, 11)
	b.Bar()
	// 8-step FFMA sweep over the tile row.
	for s := 0; s < 8; s++ {
		off := int32(4 * s)
		b.LdS(13, 4, off)
		b.LdS(14, 12, off)
		b.FFma(5, 13, 14, 5)
	}
	b.Bar()
	b.IAddImm(6, 6, 1)
	b.SetpImm(15, isa.CmpILT, 6, kTiles)
	b.Bra(15, "tile", "store")
	b.Label("store")
	b.LdParam(16, 2)
	b.IAdd(16, 16, 1)
	b.StG(16, 0, 5)
	b.Exit()
	k := b.MustBuild()

	grid := 240 * scale
	return Workload{
		Name:        "gemm",
		Description: "tiled matrix multiply (shared-memory limited, compute bound)",
		MemoryBound: false,
		Launch: &isa.Launch{
			Kernel:   k,
			GridDim:  isa.Dim1(grid),
			BlockDim: isa.Dim1(256),
			Params:   []uint32{bufA(), bufB(), bufC()},
		},
	}
}

// Histogram models a privatized shared-memory histogram: small CTAs stream
// L2-resident input, bin into shared memory with data-dependent conflicts,
// then flush. Scheduling-limited and memory-latency bound: a VT gainer.
func Histogram(scale int) Workload {
	const (
		iters  = 16
		window = 0x3FFFC // 256 KiB input window (L2 resident)
	)
	b := isa.NewBuilder("histogram").SharedMem(1024)
	emitGid(b)
	// Zero this thread's bin slots.
	b.S2R(3, isa.SrTidX)
	b.ShlImm(4, 3, 2)
	b.MovImm(5, 0)
	b.StS(4, 0, 5)
	b.Bar()
	b.MovImm(6, 0) // i
	b.Mov(7, 1)    // cursor = gid*4
	b.Label("loop")
	b.AndImm(7, 7, window)
	b.LdParam(8, 0)
	b.IAdd(9, 8, 7)
	b.LdG(10, 9, 0) // sample (L2 hit after warmup)
	// bin = sample & 63; read-modify-write the shared counter.
	b.AndImm(11, 10, 63)
	b.ShlImm(11, 11, 2)
	b.LdS(12, 11, 0)
	b.IAddImm(12, 12, 1)
	b.StS(11, 0, 12)
	// stride the cursor by a large prime-ish step
	b.IAddImm(7, 7, 4*64*19)
	b.IAddImm(6, 6, 1)
	b.SetpImm(13, isa.CmpILT, 6, iters)
	b.Bra(13, "loop", "flush")
	b.Label("flush")
	b.Bar()
	b.LdS(14, 4, 0)
	b.LdParam(15, 1)
	b.IAdd(15, 15, 1)
	b.StG(15, 0, 14)
	b.Exit()
	k := b.MustBuild()

	grid := 480 * scale
	return Workload{
		Name:        "histogram",
		Description: "privatized shared-memory histogram (CTA-slot limited)",
		MemoryBound: true,
		Launch: &isa.Launch{
			Kernel:   k,
			GridDim:  isa.Dim1(grid),
			BlockDim: isa.Dim1(64),
			Params:   []uint32{bufA(), bufB()},
		},
		Init: func(bk *mem.Backing) {
			for i := 0; i < (window+4)/4; i++ {
				bk.StoreWord(bufA()+uint32(4*i), lcg(uint32(i)))
			}
		},
	}
}

// Bitonic models one bitonic-sort merge pass: tiny CTAs compare-exchange a
// shared tile across log2 stages with a barrier each, seeded from global
// memory. Scheduling-limited, barrier dense.
func Bitonic(scale int) Workload {
	b := isa.NewBuilder("bitonic").SharedMem(512)
	emitGid(b)
	b.S2R(3, isa.SrTidX)
	b.ShlImm(4, 3, 2)
	b.LdParam(5, 0)
	b.IAdd(6, 5, 1)
	b.LdG(7, 6, 0) // key
	b.StS(4, 0, 7)
	// Five butterfly stages over a 32-element tile.
	for stage := 16; stage >= 1; stage /= 2 {
		b.Bar()
		// partner = tid ^ stage
		b.MovImm(8, uint32(stage))
		b.Xor(9, 3, 8)
		b.ShlImm(9, 9, 2)
		b.LdS(10, 9, 0) // partner key
		b.LdS(11, 4, 0) // own key
		// ascending if (tid & stage) == 0: keep min, else keep max
		b.And(12, 3, 8)
		b.IMin(13, 10, 11)
		b.IMax(14, 10, 11)
		b.Setp(15, isa.CmpIEQ, 12, isa.RZ)
		b.Selp(16, 13, 14, 15)
		b.Bar()
		b.StS(4, 0, 16)
	}
	b.Bar()
	b.LdS(17, 4, 0)
	b.LdParam(18, 1)
	b.IAdd(18, 18, 1)
	b.StG(18, 0, 17)
	b.Exit()
	k := b.MustBuild()

	grid := 960 * scale
	return Workload{
		Name:        "bitonic",
		Description: "bitonic merge pass: 32-thread CTAs, barrier dense (CTA-slot limited)",
		MemoryBound: false,
		Launch: &isa.Launch{
			Kernel:   k,
			GridDim:  isa.Dim1(grid),
			BlockDim: isa.Dim1(32),
			Params:   []uint32{bufA(), bufB()},
		},
		Init: func(bk *mem.Backing) {
			for i := 0; i < 960*scale*32; i++ {
				bk.StoreWord(bufA()+uint32(4*i), lcg(uint32(i))%1000)
			}
		},
	}
}

func init() {
	registerExtra("scatteradd", ScatterAdd)
}

// ScatterAdd models degree counting / histogram building with global
// atomics: every thread atomically increments a counter chosen by hashing
// its id (and the previous atomic's returned count) into an L2-resident
// table. The dependent-atomic chain stalls each round for a full memory
// round trip — exactly what VT's trigger watches for. Individual counter
// values depend on scheduling order, but their total is invariant.
func ScatterAdd(scale int) Workload {
	const (
		counters = 16384 // 64 KiB counter table
		rounds   = 12
	)
	b := isa.NewBuilder("scatteradd")
	emitGid(b)
	b.LdParam(3, 0)
	b.IMulImm(4, 0, 40503) // hash seed
	b.MovImm(5, 1)
	b.MovImm(6, 0) // round
	b.Label("loop")
	// hash -> counter slot
	b.ShlImm(7, 4, 7)
	b.Xor(4, 4, 7)
	b.ShrImm(7, 4, 11)
	b.Xor(4, 4, 7)
	b.AndImm(8, 4, 4*(counters-1))
	b.IAdd(9, 3, 8)
	b.AtomAdd(11, 9, 0, 5) // counter[slot] += 1, returns the old count
	// Fold the returned count into the hash: the next slot depends on
	// the atomic's result, so each round stalls for the full round trip
	// (a dependent-atomic chain, as in lock-free data structures). The
	// *total* of all counters stays policy-independent.
	b.Xor(4, 4, 11)
	b.IAddImm(6, 6, 1)
	b.SetpImm(10, isa.CmpILT, 6, rounds)
	b.Bra(10, "loop", "done")
	b.Label("done")
	b.Exit()
	return Workload{
		Name:        "scatteradd",
		Description: "global atomic scatter-increment (CTA-slot limited)",
		MemoryBound: true,
		Launch: &isa.Launch{
			Kernel:   b.MustBuild(),
			GridDim:  isa.Dim1(480 * scale),
			BlockDim: isa.Dim1(64),
			Params:   []uint32{bufA()},
		},
		Init: func(bk *mem.Backing) {
			for i := 0; i < counters; i++ {
				bk.StoreWord(bufA()+uint32(4*i), 0)
			}
		},
	}
}
