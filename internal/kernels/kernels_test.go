package kernels_test

import (
	"testing"

	"repro/internal/config"
	"repro/internal/cta"
	"repro/internal/gpu"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/mem"
)

func TestSuiteShape(t *testing.T) {
	suite := kernels.Suite(1)
	if len(suite) != 22 {
		t.Fatalf("suite size = %d, want 22", len(suite))
	}
	names := map[string]bool{}
	for _, w := range suite {
		if names[w.Name] {
			t.Fatalf("duplicate workload %q", w.Name)
		}
		names[w.Name] = true
		if err := w.Launch.Validate(); err != nil {
			t.Errorf("%s: invalid launch: %v", w.Name, err)
		}
		if w.Description == "" {
			t.Errorf("%s: missing description", w.Name)
		}
	}
	for _, want := range []string{"vecadd", "bfs", "backprop", "hotspot", "kmeans",
		"pathfinder", "srad", "lud", "nw", "spmv", "stencil3d", "montecarlo",
		"reduce", "transpose", "gaussian", "cfd", "streamcluster", "mummer",
		"dwt2d", "nn", "particlefilter", "heartwall"} {
		if !names[want] {
			t.Errorf("suite missing %q", want)
		}
	}
}

func TestBuildByName(t *testing.T) {
	w, err := kernels.Build("bfs", 1)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "bfs" {
		t.Fatalf("name = %q", w.Name)
	}
	if _, err := kernels.Build("nosuch", 1); err == nil {
		t.Fatal("unknown workload must error")
	}
	if len(kernels.Names()) != 22 {
		t.Fatalf("Names() = %d entries", len(kernels.Names()))
	}
}

func TestScaleGrowsGrid(t *testing.T) {
	w1, _ := kernels.Build("vecadd", 1)
	w2, _ := kernels.Build("vecadd", 2)
	if w2.Launch.GridDim.Size() != 2*w1.Launch.GridDim.Size() {
		t.Fatalf("scale 2 grid = %d, want %d", w2.Launch.GridDim.Size(), 2*w1.Launch.GridDim.Size())
	}
}

// TestAllWorkloadsRunToCompletion executes a shrunken instance of every
// workload under every policy and requires each CTA to retire. This is the
// broad integration net for the whole simulator.
func TestAllWorkloadsRunToCompletion(t *testing.T) {
	cfg := config.Small()
	for _, w := range kernels.Suite(1) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			// Shrink the grid for test speed; Init was sized for the
			// full grid so all inputs stay valid.
			full := w.Launch.GridDim.Size()
			small := 24
			if small > full {
				small = full
			}
			for _, p := range []config.Policy{config.PolicyBaseline, config.PolicyVT} {
				w.Launch.GridDim.X = small
				w.Launch.GridDim.Y, w.Launch.GridDim.Z = 1, 1
				res, err := gpu.Run(w.Launch, cfg.WithPolicy(p), gpu.Options{InitMemory: w.Init})
				if err != nil {
					t.Fatalf("%s/%s: %v", w.Name, p, err)
				}
				if res.SM.CTAsCompleted != int64(small) {
					t.Fatalf("%s/%s: completed %d of %d CTAs", w.Name, p,
						res.SM.CTAsCompleted, small)
				}
				if res.SM.Issued == 0 {
					t.Fatalf("%s/%s: no instructions issued", w.Name, p)
				}
			}
		})
	}
}

// TestLimiterDistribution checks the motivation claim: the majority of the
// suite is scheduling-limited on the Fermi configuration.
func TestLimiterDistribution(t *testing.T) {
	cfg := config.GTX480()
	sched, capacity := 0, 0
	for _, w := range kernels.Suite(1) {
		o := cta.ComputeOccupancy(w.Launch, &cfg)
		if o.Limiter == cta.LimitGrid {
			t.Errorf("%s: grid too small to exercise the SM", w.Name)
			continue
		}
		if o.SchedulingLimited() {
			sched++
		} else {
			capacity++
		}
		t.Logf("%-12s limiter=%-10v ctas=%d capacity=%d", w.Name, o.Limiter, o.CTAs, o.CapacityCTAs)
	}
	if sched <= capacity {
		t.Fatalf("suite has %d scheduling-limited vs %d capacity-limited; paper requires a majority scheduling-limited", sched, capacity)
	}
}

func TestBFSFunctionalOutput(t *testing.T) {
	// BFS must mark at least one unvisited neighbour of the frontier.
	w, _ := kernels.Build("bfs", 1)
	w.Launch.GridDim.X = 8
	var out *mem.Backing
	_, err := gpu.Run(w.Launch, config.Small(), gpu.Options{
		InitMemory:  w.Init,
		KeepBacking: func(bk *mem.Backing) { out = bk },
	})
	if err != nil {
		t.Fatal(err)
	}
	marked := 0
	for i := 0; i < 8*64; i++ {
		v := out.LoadWord(0x0100_0000 + uint32(4*i))
		if v == 2 {
			marked++
		}
	}
	if marked == 0 {
		t.Fatal("BFS marked no level-2 nodes")
	}
}

func TestExtras(t *testing.T) {
	if len(kernels.ExtraNames()) != 4 {
		t.Fatalf("extras = %v", kernels.ExtraNames())
	}
	cfg := config.Small()
	for _, w := range kernels.Extras(1) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			w.Launch.GridDim.X = 16
			if err := w.Launch.Validate(); err != nil {
				t.Fatal(err)
			}
			for _, p := range []config.Policy{config.PolicyBaseline, config.PolicyVT} {
				res, err := gpu.Run(w.Launch, cfg.WithPolicy(p), gpu.Options{InitMemory: w.Init})
				if err != nil {
					t.Fatalf("%s/%s: %v", w.Name, p, err)
				}
				if res.SM.CTAsCompleted != 16 {
					t.Fatalf("%s/%s: completed %d", w.Name, p, res.SM.CTAsCompleted)
				}
			}
		})
	}
	// Extras are reachable through Build but not part of the suite.
	if _, err := kernels.Build("gemm", 1); err != nil {
		t.Fatal(err)
	}
	for _, n := range kernels.Names() {
		if n == "gemm" || n == "histogram" || n == "bitonic" {
			t.Fatalf("extra %q leaked into the headline suite", n)
		}
	}
}

func TestBuildAtArenaDisjoint(t *testing.T) {
	a, err := kernels.BuildAt("kmeans", 1, kernels.DefaultArena)
	if err != nil {
		t.Fatal(err)
	}
	b, err := kernels.BuildAt("kmeans", 1, kernels.DefaultArena+kernels.ArenaStride)
	if err != nil {
		t.Fatal(err)
	}
	for i, pa := range a.Launch.Params {
		if pb := b.Launch.Params[i]; pb != pa+kernels.ArenaStride {
			t.Fatalf("param %d: %x vs %x, want stride offset", i, pa, pb)
		}
	}
	// Init must write into each workload's own arena.
	bk := mem.NewBacking()
	before := bk.TouchedWords()
	a.Init(bk)
	mid := bk.TouchedWords()
	b.Init(bk)
	after := bk.TouchedWords()
	if mid == before || after == mid {
		t.Fatal("Init wrote nothing")
	}
	if after-mid != mid-before {
		t.Fatalf("second arena wrote %d words vs %d: overlap suspected",
			after-mid, mid-before)
	}
}

func TestConcurrentArenasNoCollision(t *testing.T) {
	// bfs co-scheduled with streamcluster previously livelocked because
	// their Init regions collided; with disjoint arenas the mix must
	// finish in the same order of magnitude as the solo runs.
	cfg := config.Small()
	a, _ := kernels.BuildAt("bfs", 1, kernels.DefaultArena)
	b, _ := kernels.BuildAt("streamcluster", 1, kernels.DefaultArena+kernels.ArenaStride)
	a.Launch.GridDim.X = 16
	b.Launch.GridDim.X = 12
	res, err := gpu.RunMulti([]*isa.Launch{a.Launch, b.Launch}, cfg, gpu.Options{
		InitMemory: func(bk *mem.Backing) { a.Init(bk); b.Init(bk) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SM.CTAsCompleted != 28 {
		t.Fatalf("completed %d CTAs", res.SM.CTAsCompleted)
	}
	if res.Cycles > 200_000 {
		t.Fatalf("mix took %d cycles: arena collision suspected", res.Cycles)
	}
}

func TestScatterAddConservation(t *testing.T) {
	// The total of all counters must equal threads x rounds under every
	// policy — atomicity and policy-independence in one check.
	w, err := kernels.Build("scatteradd", 1)
	if err != nil {
		t.Fatal(err)
	}
	w.Launch.GridDim.X = 12
	threads := 12 * 64
	const rounds = 12
	for _, p := range []config.Policy{config.PolicyBaseline, config.PolicyVT} {
		w2, _ := kernels.Build("scatteradd", 1)
		w2.Launch.GridDim.X = 12
		var out *mem.Backing
		res, err := gpu.Run(w2.Launch, config.Small().WithPolicy(p), gpu.Options{
			InitMemory:  w2.Init,
			KeepBacking: func(bk *mem.Backing) { out = bk },
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.SM.CTAsCompleted != 12 {
			t.Fatalf("%s: completed %d", p, res.SM.CTAsCompleted)
		}
		total := uint32(0)
		for i := 0; i < 16384; i++ {
			total += out.LoadWord(0x0100_0000 + uint32(4*i))
		}
		if total != uint32(threads*rounds) {
			t.Fatalf("%s: counter total = %d, want %d", p, total, threads*rounds)
		}
	}
}
