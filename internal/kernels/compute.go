package kernels

import (
	"math"

	"repro/internal/isa"
	"repro/internal/mem"
)

func init() {
	register("kmeans", KMeans)
	register("hotspot", Hotspot)
	register("montecarlo", MonteCarlo)
}

// KMeans models the nearest-centroid assignment step: each thread scans K
// centroids (broadcast loads that cache well) against its point.
func KMeans(scale int) Workload {
	const kCentroids = 8
	b := isa.NewBuilder("kmeans").ReserveRegs(16)
	emitGid(b)
	b.LdParam(3, 0)
	b.IAdd(3, 3, 1)
	b.LdG(4, 3, 0) // point feature
	b.LdParam(5, 1)
	b.MovImm(6, math.Float32bits(1e30)) // best distance
	b.MovImm(7, 0)                      // best index
	b.MovImm(8, 0)                      // c
	b.Label("loop")
	b.ShlImm(9, 8, 2)
	b.IAdd(9, 5, 9)
	b.LdG(10, 9, 0) // centroid[c] (same address across lanes)
	b.FAdd(11, 4, 10)
	b.FMul(11, 11, 11) // (x + c)^2 distance surrogate
	b.Setp(12, isa.CmpFLT, 11, 6)
	b.Selp(6, 11, 6, 12)
	b.Selp(7, 8, 7, 12)
	b.IAddImm(8, 8, 1)
	b.SetpImm(13, isa.CmpILT, 8, kCentroids)
	b.Bra(13, "loop", "done")
	b.Label("done")
	b.LdParam(14, 2)
	b.IAdd(14, 14, 1)
	b.StG(14, 0, 7)
	b.Exit()
	k := b.MustBuild()

	grid := 360 * scale
	return Workload{
		Name:        "kmeans",
		Description: "nearest-centroid scan (warp-slot limited, compute+gather)",
		MemoryBound: false,
		Launch: &isa.Launch{
			Kernel:   k,
			GridDim:  isa.Dim1(grid),
			BlockDim: isa.Dim1(128),
			Params:   []uint32{bufA(), bufB(), bufC()},
		},
		Init: func(bk *mem.Backing) {
			for c := 0; c < kCentroids; c++ {
				bk.StoreWord(bufB()+uint32(4*c), math.Float32bits(f32(uint32(c*37))))
			}
		},
	}
}

// Hotspot models the thermal-simulation stencil: shared-memory tile,
// barriers, and a float compute chain per point.
func Hotspot(scale int) Workload {
	const width = 256
	b := isa.NewBuilder("hotspot").ReserveRegs(24).SharedMem(3 * 1024)
	emitGid(b)
	b.LdParam(3, 0)
	b.IAdd(3, 3, 1)
	b.LdG(4, 3, 0) // temp[i]
	b.LdParam(5, 1)
	b.IAdd(5, 5, 1)
	b.LdG(6, 5, 0) // power[i]
	b.S2R(7, isa.SrTidX)
	b.ShlImm(8, 7, 2)
	b.StS(8, 0, 4) // tile[tid] = temp
	b.Bar()
	// Neighbours within the tile (wrapping), plus the global row above.
	b.IAddImm(9, 7, 1)
	b.AndImm(9, 9, 255)
	b.ShlImm(9, 9, 2)
	b.LdS(10, 9, 0) // right
	b.IAddImm(11, 7, 255)
	b.AndImm(11, 11, 255)
	b.ShlImm(11, 11, 2)
	b.LdS(12, 11, 0) // left
	b.LdG(13, 3, 4*width)
	b.LdG(14, 3, -4*width)
	b.FAdd(15, 10, 12)
	b.FAdd(16, 13, 14)
	b.FAdd(15, 15, 16)
	b.MovImm(17, math.Float32bits(0.25))
	b.FMul(15, 15, 17)
	b.ISub(18, 15, 4) // delta (bit-level surrogate)
	b.MovImm(19, math.Float32bits(0.5))
	b.FFma(20, 6, 19, 4)
	b.FAdd(20, 20, 18)
	b.Bar()
	b.LdParam(21, 2)
	b.IAdd(21, 21, 1)
	b.StG(21, 0, 20)
	b.Exit()
	k := b.MustBuild()

	grid := 240 * scale
	return Workload{
		Name:        "hotspot",
		Description: "thermal stencil with shared tile and barriers (warp-slot limited)",
		MemoryBound: false,
		Launch: &isa.Launch{
			Kernel:   k,
			GridDim:  isa.Dim1(grid),
			BlockDim: isa.Dim1(256),
			Params:   []uint32{bufA() + 4*width, bufB(), bufC()},
		},
	}
}

// MonteCarlo models an embarrassingly parallel path simulation: an
// xorshift generator feeding SFU-heavy math, nearly no memory traffic.
// Scheduling limited but compute bound, so VT gains little — included for
// suite diversity, as in the paper.
func MonteCarlo(scale int) Workload {
	const paths = 16
	b := isa.NewBuilder("montecarlo").ReserveRegs(18)
	emitGid(b)
	b.IAddImm(3, 0, 12345) // seed = gid + 12345
	b.MovImm(4, 0)         // acc
	b.MovImm(5, 0)         // i
	b.Label("loop")
	// xorshift32
	b.ShlImm(6, 3, 13)
	b.Xor(3, 3, 6)
	b.ShrImm(6, 3, 17)
	b.Xor(3, 3, 6)
	b.ShlImm(6, 3, 5)
	b.Xor(3, 3, 6)
	// Map to [1,2) float and run transcendental chain.
	b.ShrImm(7, 3, 9)
	b.MovImm(8, 0x3F800000)
	b.Or(7, 7, 8)
	b.FSin(9, 7)
	b.MovImm(10, math.Float32bits(0.1))
	b.FMul(9, 9, 10)
	b.FExp(11, 9)
	b.FAdd(4, 4, 11)
	b.IAddImm(5, 5, 1)
	b.SetpImm(12, isa.CmpILT, 5, paths)
	b.Bra(12, "loop", "done")
	b.Label("done")
	b.LdParam(13, 0)
	b.IAdd(13, 13, 1)
	b.StG(13, 0, 4)
	b.Exit()
	k := b.MustBuild()

	grid := 480 * scale
	return Workload{
		Name:        "montecarlo",
		Description: "SFU-heavy path simulation (CTA-slot limited, compute bound)",
		MemoryBound: false,
		Launch: &isa.Launch{
			Kernel:   k,
			GridDim:  isa.Dim1(grid),
			BlockDim: isa.Dim1(64),
			Params:   []uint32{bufA()},
		},
	}
}
