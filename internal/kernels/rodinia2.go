package kernels

import (
	"math"

	"repro/internal/isa"
	"repro/internal/mem"
)

func init() {
	register("gaussian", Gaussian)
	register("cfd", CFD)
	register("streamcluster", StreamCluster)
	register("mummer", Mummer)
	register("dwt2d", DWT2D)
	register("nn", NN)
}

// Gaussian models the elimination step of Gaussian elimination (Rodinia's
// Fan2): small CTAs read the pivot row (L2-resident, shared across the
// grid) and update their own row slice.
func Gaussian(scale int) Workload {
	const (
		width = 1024 // pivot row length in words
		iters = 8
	)
	b := isa.NewBuilder("gaussian")
	emitGid(b)
	b.LdParam(3, 0) // pivot row base
	b.LdParam(4, 1) // matrix base
	b.IAdd(5, 4, 1) // &m[gid]
	b.LdG(6, 5, 0)  // own row element
	b.MovImm(7, 0)  // i
	b.Label("elim")
	// pivot element for this step (uniform within the warp after masking)
	b.ShlImm(8, 7, 2)
	b.AndImm(9, 1, 4*(width-1))
	b.IAdd(9, 9, 8)
	b.AndImm(9, 9, 4*(width-1))
	b.IAdd(9, 3, 9)
	b.LdG(10, 9, 0) // pivot element
	b.FMul(11, 10, 6)
	b.FAdd(6, 6, 11)
	b.IAddImm(7, 7, 1)
	b.SetpImm(12, isa.CmpILT, 7, iters)
	b.Bra(12, "elim", "done")
	b.Label("done")
	b.LdParam(13, 2)
	b.IAdd(13, 13, 1)
	b.StG(13, 0, 6)
	b.Exit()
	k := b.MustBuild()

	grid := 480 * scale
	return Workload{
		Name:        "gaussian",
		Description: "Gaussian elimination row update (CTA-slot limited)",
		MemoryBound: true,
		Launch: &isa.Launch{
			Kernel:   k,
			GridDim:  isa.Dim1(grid),
			BlockDim: isa.Dim1(64),
			Params:   []uint32{bufA(), bufB(), bufC()},
		},
		Init: func(bk *mem.Backing) {
			for i := 0; i < width; i++ {
				bk.StoreWord(bufA()+uint32(4*i), math.Float32bits(f32(uint32(i))))
			}
		},
	}
}

// CFD models the Euler-solver flux computation: the register-hungriest
// workload in Rodinia (40+ registers per thread), long float chains over
// five conservative variables. Register-file (capacity) limited.
func CFD(scale int) Workload {
	b := isa.NewBuilder("cfd").ReserveRegs(42)
	emitGid(b)
	b.LdParam(3, 0)
	b.IAdd(3, 3, 1)
	// Load five conservative variables (density, 3x momentum, energy).
	b.LdG(4, 3, 0)
	b.LdG(5, 3, 4*4096)
	b.LdG(6, 3, 8*4096)
	b.LdG(7, 3, 12*4096)
	b.LdG(8, 3, 16*4096)
	// Flux chain: velocity = momentum/density; pressure; flux terms.
	b.FRcp(9, 4)
	b.FMul(10, 5, 9)
	b.FMul(11, 6, 9)
	b.FMul(12, 7, 9)
	b.FMul(13, 10, 10)
	b.FFma(13, 11, 11, 13)
	b.FFma(13, 12, 12, 13)
	b.MovImm(14, math.Float32bits(0.2))
	b.FMul(15, 13, 14)
	b.FAdd(16, 8, 15) // pressure surrogate
	b.FMul(17, 10, 4)
	b.FFma(18, 10, 17, 16)
	b.FFma(19, 11, 17, 16)
	b.FFma(20, 12, 17, 16)
	b.FAdd(21, 8, 16)
	b.FMul(22, 21, 10)
	b.LdParam(23, 1)
	b.IAdd(23, 23, 1)
	b.StG(23, 0, 18)
	b.StG(23, 4*4096, 19)
	b.StG(23, 8*4096, 20)
	b.StG(23, 12*4096, 22)
	b.Exit()
	k := b.MustBuild()

	grid := 240 * scale
	return Workload{
		Name:        "cfd",
		Description: "Euler flux computation, 42 regs/thread (register limited)",
		MemoryBound: true,
		Launch: &isa.Launch{
			Kernel:   k,
			GridDim:  isa.Dim1(grid),
			BlockDim: isa.Dim1(128),
			Params:   []uint32{bufA(), bufB()},
		},
	}
}

// StreamCluster models the pgain distance kernel: every thread computes
// distances from its point to a center set that lives in L2.
func StreamCluster(scale int) Workload {
	const centers = 16
	b := isa.NewBuilder("streamcluster")
	emitGid(b)
	b.LdParam(3, 0)
	b.IAdd(3, 3, 1)
	b.LdG(4, 3, 0) // point coordinate
	b.LdParam(5, 1)
	b.MovImm(6, math.Float32bits(1e30))
	b.MovImm(7, 0)
	b.Label("scan")
	b.ShlImm(8, 7, 2)
	b.IAdd(8, 5, 8)
	b.LdG(9, 8, 0) // center (uniform per iteration)
	b.FAdd(10, 4, 9)
	b.FMul(10, 10, 10)
	b.Setp(11, isa.CmpFLT, 10, 6)
	b.Selp(6, 10, 6, 11)
	b.IAddImm(7, 7, 1)
	b.SetpImm(12, isa.CmpILT, 7, centers)
	b.Bra(12, "scan", "store")
	b.Label("store")
	b.LdParam(13, 2)
	b.IAdd(13, 13, 1)
	b.StG(13, 0, 6)
	b.Exit()
	k := b.MustBuild()

	grid := 360 * scale
	return Workload{
		Name:        "streamcluster",
		Description: "clustering distance scan (warp-slot limited)",
		MemoryBound: false,
		Launch: &isa.Launch{
			Kernel:   k,
			GridDim:  isa.Dim1(grid),
			BlockDim: isa.Dim1(256),
			Params:   []uint32{bufA(), bufB(), bufC()},
		},
		Init: func(bk *mem.Backing) {
			for c := 0; c < centers; c++ {
				bk.StoreWord(bufB()+uint32(4*c), math.Float32bits(f32(uint32(c*11))))
			}
		},
	}
}

// Mummer models suffix-tree string matching: a data-dependent pointer walk
// through an L2-resident tree with heavy divergence — each thread's path
// length depends on its query. The deepest-dependence workload in the
// suite.
func Mummer(scale int) Workload {
	const (
		treeWords = 32768 // 128 KiB tree, L2 resident
		maxSteps  = 24
	)
	b := isa.NewBuilder("mummer")
	emitGid(b)
	b.LdParam(3, 0)          // tree base
	b.IMulImm(4, 0, 2654435) // per-thread query hash
	b.AndImm(5, 4, 4*(treeWords-1))
	b.MovImm(6, 0) // matched length
	b.MovImm(7, 0) // step
	b.Label("walk")
	b.IAdd(8, 3, 5)
	b.LdG(9, 8, 0) // node word: next pointer + flags (dependent load)
	b.IAddImm(6, 6, 1)
	// next = node value masked into the tree
	b.AndImm(5, 9, 4*(treeWords-1))
	// stop early if the node's low bits match the query's (divergent exit)
	b.Xor(10, 9, 4)
	b.AndImm(10, 10, 15)
	b.SetpImm(11, isa.CmpIEQ, 10, 0)
	b.Bra(11, "out", "cont")
	b.Label("cont")
	b.IAddImm(7, 7, 1)
	b.SetpImm(12, isa.CmpILT, 7, maxSteps)
	b.Bra(12, "walk", "out")
	b.Label("out")
	b.LdParam(13, 1)
	b.IAdd(13, 13, 1)
	b.StG(13, 0, 6)
	b.Exit()
	k := b.MustBuild()

	grid := 480 * scale
	return Workload{
		Name:        "mummer",
		Description: "suffix-tree walk: dependent loads, divergent exits (CTA-slot limited)",
		MemoryBound: true,
		Launch: &isa.Launch{
			Kernel:   k,
			GridDim:  isa.Dim1(grid),
			BlockDim: isa.Dim1(64),
			Params:   []uint32{bufA(), bufB()},
		},
		Init: func(bk *mem.Backing) {
			for i := 0; i < treeWords; i++ {
				bk.StoreWord(bufA()+uint32(4*i), lcg(uint32(i)))
			}
		},
	}
}

// DWT2D models a discrete wavelet transform pass: a 4 KiB shared tile per
// 64-thread CTA (shared-memory hungry relative to its thread count) with a
// lifting-step barrier ladder.
func DWT2D(scale int) Workload {
	const levels = 4
	b := isa.NewBuilder("dwt2d").SharedMem(4 * 1024)
	emitGid(b)
	b.S2R(3, isa.SrTidX)
	// Each thread loads 16 words of its row segment into the tile.
	b.MovImm(4, 0)
	b.Label("load")
	b.ShlImm(5, 4, 6) // i*64
	b.IAdd(5, 5, 3)
	b.ShlImm(6, 5, 2)
	b.LdParam(7, 0)
	b.ShlImm(8, 0, 2)
	b.IAdd(7, 7, 6)
	b.IAdd(7, 7, 8)
	b.LdG(9, 7, 0)
	b.StS(6, 0, 9)
	b.IAddImm(4, 4, 1)
	b.SetpImm(10, isa.CmpILT, 4, 16)
	b.Bra(10, "load", "lift")
	b.Label("lift")
	// Lifting steps: predict odd samples from even neighbours.
	for lv := 0; lv < levels; lv++ {
		b.Bar()
		b.ShlImm(11, 3, uint32(2+lv)) // stride grows per level
		b.AndImm(11, 11, 4095)
		b.LdS(12, 11, 0)
		b.IAddImm(13, 11, int32(4<<lv))
		b.AndImm(13, 13, 4095)
		b.LdS(14, 13, 0)
		b.FAdd(15, 12, 14)
		b.MovImm(16, math.Float32bits(0.5))
		b.FMul(15, 15, 16)
		b.Bar()
		b.StS(11, 0, 15)
	}
	b.Bar()
	b.S2R(3, isa.SrTidX)
	b.ShlImm(17, 3, 2)
	b.LdS(18, 17, 0)
	b.LdParam(19, 1)
	b.IAdd(19, 19, 1)
	b.StG(19, 0, 18)
	b.Exit()
	k := b.MustBuild()

	grid := 480 * scale
	return Workload{
		Name:        "dwt2d",
		Description: "wavelet lifting on a shared tile (CTA-slot limited, barrier ladder)",
		MemoryBound: false,
		Launch: &isa.Launch{
			Kernel:   k,
			GridDim:  isa.Dim1(grid),
			BlockDim: isa.Dim1(64),
			Params:   []uint32{bufA(), bufB()},
		},
	}
}

// NN models the k-nearest-neighbour distance kernel: a three-instruction
// body over a streamed record array — the smallest kernel in Rodinia,
// bandwidth bound with big CTAs.
func NN(scale int) Workload {
	b := isa.NewBuilder("nn")
	emitGid(b)
	b.LdParam(3, 0)
	b.IAdd(3, 3, 1)
	b.LdG(4, 3, 0) // latitude
	b.LdG(5, 3, 4*65536)
	// distance^2 to the query point
	b.MovImm(6, math.Float32bits(30.0))
	b.FAdd(7, 4, 6)
	b.FMul(7, 7, 7)
	b.MovImm(8, math.Float32bits(120.0))
	b.FAdd(9, 5, 8)
	b.FFma(7, 9, 9, 7)
	b.LdParam(10, 1)
	b.IAdd(10, 10, 1)
	b.StG(10, 0, 7)
	b.Exit()
	k := b.MustBuild()

	grid := 360 * scale
	return Workload{
		Name:        "nn",
		Description: "nearest-neighbour distance, 3-op body (warp-slot limited, streaming)",
		MemoryBound: true,
		Launch: &isa.Launch{
			Kernel:   k,
			GridDim:  isa.Dim1(grid),
			BlockDim: isa.Dim1(256),
			Params:   []uint32{bufA(), bufB()},
		},
	}
}
