package kernels

import (
	"math"

	"repro/internal/isa"
)

func init() {
	register("backprop", Backprop)
	register("pathfinder", Pathfinder)
	register("lud", LUD)
	register("nw", NW)
	register("reduce", Reduce)
}

// Backprop models a neural-network layer forward pass: per-thread
// multiply, shared-memory exchange across the CTA, and an SFU activation.
func Backprop(scale int) Workload {
	b := isa.NewBuilder("backprop").SharedMem(2 * 1024)
	emitGid(b)
	b.LdParam(3, 0)
	b.IAdd(3, 3, 1)
	b.LdG(4, 3, 0) // input
	b.LdParam(5, 1)
	b.IAdd(5, 5, 1)
	b.LdG(6, 5, 0) // weight
	b.FMul(7, 4, 6)
	b.S2R(8, isa.SrTidX)
	b.ShlImm(9, 8, 2)
	b.StS(9, 0, 7)
	b.Bar()
	// Exchange with a rotated neighbour, twice (pseudo reduction).
	b.IAddImm(10, 8, 128)
	b.AndImm(10, 10, 255)
	b.ShlImm(10, 10, 2)
	b.LdS(11, 10, 0)
	b.FAdd(7, 7, 11)
	b.Bar()
	b.StS(9, 0, 7)
	b.Bar()
	b.IAddImm(10, 8, 64)
	b.AndImm(10, 10, 255)
	b.ShlImm(10, 10, 2)
	b.LdS(11, 10, 0)
	b.FAdd(7, 7, 11)
	// Sigmoid-like activation via exp2.
	b.MovImm(12, math.Float32bits(-0.25))
	b.FMul(13, 7, 12)
	b.FExp(14, 13)
	b.MovImm(15, math.Float32bits(1.0))
	b.FAdd(14, 14, 15)
	b.FRcp(16, 14)
	b.LdParam(17, 2)
	b.IAdd(17, 17, 1)
	b.StG(17, 0, 16)
	b.Exit()
	k := b.MustBuild()

	grid := 240 * scale
	return Workload{
		Name:        "backprop",
		Description: "NN layer with shared-memory exchange and barriers (warp-slot limited)",
		MemoryBound: false,
		Launch: &isa.Launch{
			Kernel:   k,
			GridDim:  isa.Dim1(grid),
			BlockDim: isa.Dim1(256),
			Params:   []uint32{bufA(), bufB(), bufC()},
		},
	}
}

// Pathfinder models the dynamic-programming grid walk: an iterative
// shared-memory relaxation with a global cost load per step.
func Pathfinder(scale int) Workload {
	const (
		iters = 8
		width = 16384
	)
	b := isa.NewBuilder("pathfinder").SharedMem(1024)
	emitGid(b)
	b.LdParam(3, 0)
	b.IAdd(3, 3, 1)
	b.LdG(4, 3, 0) // src row value
	b.S2R(5, isa.SrTidX)
	b.ShlImm(6, 5, 2)
	b.StS(6, 0, 4)
	b.MovImm(7, 0) // iter
	b.Label("iter")
	b.Bar()
	// left/right neighbours in the row (wrapping within the CTA tile).
	b.IAddImm(8, 5, 1)
	b.AndImm(8, 8, 63)
	b.ShlImm(8, 8, 2)
	b.LdS(9, 8, 0)
	b.IAddImm(10, 5, 63)
	b.AndImm(10, 10, 63)
	b.ShlImm(10, 10, 2)
	b.LdS(11, 10, 0)
	b.LdS(12, 6, 0)
	b.IMin(13, 9, 11)
	b.IMin(13, 13, 12)
	// cost[gid + iter*width] from global memory.
	b.IMulImm(14, 7, 4*width)
	b.IAdd(14, 14, 3)
	b.LdG(15, 14, 0)
	b.IAdd(16, 13, 15)
	b.Bar()
	b.StS(6, 0, 16)
	b.IAddImm(7, 7, 1)
	b.SetpImm(17, isa.CmpILT, 7, iters)
	b.Bra(17, "iter", "done")
	b.Label("done")
	b.Bar()
	b.LdS(18, 6, 0)
	b.LdParam(19, 1)
	b.IAdd(19, 19, 1)
	b.StG(19, 0, 18)
	b.Exit()
	k := b.MustBuild()

	grid := 480 * scale
	return Workload{
		Name:        "pathfinder",
		Description: "DP grid relaxation, barrier per step (CTA-slot limited)",
		MemoryBound: true,
		Launch: &isa.Launch{
			Kernel:   k,
			GridDim:  isa.Dim1(grid),
			BlockDim: isa.Dim1(64),
			Params:   []uint32{bufA(), bufB()},
		},
	}
}

// LUD models one LU-decomposition diagonal-block step: a single tiny warp
// per CTA iterating over a shared tile with barriers. The hardest
// CTA-slot-limited case: 8 active CTAs occupy only 8 of 48 warp slots.
func LUD(scale int) Workload {
	const steps = 8
	b := isa.NewBuilder("lud").SharedMem(1024)
	emitGid(b)
	b.S2R(3, isa.SrTidX)
	// Load 8 tile words per thread (32 threads x 8 = 256 words).
	b.MovImm(4, 0)
	b.Label("load")
	b.ShlImm(5, 4, 5) // i*32
	b.IAdd(5, 5, 3)   // i*32 + tid
	b.ShlImm(6, 5, 2)
	b.LdParam(7, 0)
	b.ShlImm(8, 0, 2) // gid*4... base per CTA handled via gid stride
	b.IAdd(7, 7, 6)
	b.IAdd(7, 7, 8)
	b.LdG(9, 7, 0)
	b.StS(6, 0, 9)
	b.IAddImm(4, 4, 1)
	b.SetpImm(10, isa.CmpILT, 4, 8)
	b.Bra(10, "load", "compute")
	b.Label("compute")
	b.Bar()
	b.MovImm(11, 0) // k
	b.Label("kloop")
	// row update: s[tid] -= s[k] * s[tid ^ (k+1)] + pivot[k,tid] from
	// the global matrix, as Rodinia LUD's elimination step does.
	b.ShlImm(22, 11, 5)
	b.IAdd(22, 22, 3)
	b.ShlImm(22, 22, 2)
	b.AndImm(22, 22, 0xFFFC) // 64 KiB pivot window
	b.LdParam(23, 2)
	b.IAdd(22, 23, 22)
	b.LdG(24, 22, 0) // pivot element (global)
	b.ShlImm(12, 11, 2)
	b.LdS(13, 12, 0)
	b.IAddImm(14, 11, 1)
	b.Xor(15, 3, 14)
	b.AndImm(15, 15, 255)
	b.ShlImm(15, 15, 2)
	b.LdS(16, 15, 0)
	b.ShlImm(17, 3, 2)
	b.LdS(18, 17, 0)
	b.FMul(19, 13, 16)
	b.ISub(20, 18, 19)
	b.IAdd(20, 20, 24)
	b.Bar()
	b.StS(17, 0, 20)
	b.Bar()
	b.IAddImm(11, 11, 1)
	b.SetpImm(21, isa.CmpILT, 11, steps)
	b.Bra(21, "kloop", "store")
	b.Label("store")
	// Store back 8 words.
	b.MovImm(4, 0)
	b.Label("st")
	b.ShlImm(5, 4, 5)
	b.IAdd(5, 5, 3)
	b.ShlImm(6, 5, 2)
	b.LdS(9, 6, 0)
	b.LdParam(7, 1)
	b.ShlImm(8, 0, 2)
	b.IAdd(7, 7, 6)
	b.IAdd(7, 7, 8)
	b.StG(7, 0, 9)
	b.IAddImm(4, 4, 1)
	b.SetpImm(10, isa.CmpILT, 4, 8)
	b.Bra(10, "st", "fin")
	b.Label("fin")
	b.Exit()
	k := b.MustBuild()

	grid := 960 * scale
	return Workload{
		Name:        "lud",
		Description: "LU tile step: one warp per CTA, barrier loops (CTA-slot limited)",
		MemoryBound: false,
		Launch: &isa.Launch{
			Kernel:   k,
			GridDim:  isa.Dim1(grid),
			BlockDim: isa.Dim1(32),
			Params:   []uint32{bufA(), bufB(), bufC()},
		},
	}
}

// NW models the Needleman-Wunsch wavefront: tiny CTAs, a barrier per
// anti-diagonal, integer max chains over a shared tile.
func NW(scale int) Workload {
	const diags = 12
	b := isa.NewBuilder("nw").SharedMem(2 * 1024)
	emitGid(b)
	b.S2R(3, isa.SrTidX)
	b.ShlImm(4, 3, 2)
	b.LdParam(5, 0)
	b.IAdd(6, 5, 1)
	b.LdG(7, 6, 0) // sequence score seed
	b.StS(4, 0, 7)
	b.MovImm(8, 0) // diagonal index
	b.Label("wave")
	b.Bar()
	// cell = max(diag + match, left - gap, up - gap); match comes from
	// the global reference matrix, as in Rodinia NW.
	b.IAddImm(9, 3, 31) // tid-1 mod 32
	b.AndImm(9, 9, 31)
	b.ShlImm(9, 9, 2)
	b.LdS(10, 9, 0) // left
	b.LdS(11, 4, 0) // self (diag surrogate)
	b.IMulImm(18, 8, 128)
	b.IAdd(18, 18, 1)
	b.AndImm(18, 18, 0xFFFC) // 64 KiB reference window
	b.LdParam(19, 2)
	b.IAdd(18, 19, 18)
	b.LdG(20, 18, 0) // reference score (global)
	b.IAddImm(12, 10, -1)
	b.IAddImm(13, 11, 2)
	b.IMax(14, 12, 13)
	b.IMax(14, 14, 20)
	b.Bar()
	b.StS(4, 0, 14)
	b.IAddImm(8, 8, 1)
	b.SetpImm(15, isa.CmpILT, 8, diags)
	b.Bra(15, "wave", "done")
	b.Label("done")
	b.Bar()
	b.LdS(16, 4, 0)
	b.LdParam(17, 1)
	b.IAdd(17, 17, 1)
	b.StG(17, 0, 16)
	b.Exit()
	k := b.MustBuild()

	grid := 960 * scale
	return Workload{
		Name:        "nw",
		Description: "sequence-alignment wavefront: 32-thread CTAs (CTA-slot limited)",
		MemoryBound: false,
		Launch: &isa.Launch{
			Kernel:   k,
			GridDim:  isa.Dim1(grid),
			BlockDim: isa.Dim1(32),
			Params:   []uint32{bufA(), bufB(), bufC()},
		},
	}
}

// Reduce models a two-load tree reduction: grid-strided loads into shared
// memory, then a log2(block) barrier ladder with shrinking active sets.
func Reduce(scale int) Workload {
	b := isa.NewBuilder("reduce").SharedMem(1024)
	emitGid(b)
	b.LdParam(3, 0)
	b.IAdd(4, 3, 1)
	b.LdG(5, 4, 0) // in[gid]
	b.S2R(6, isa.SrNTidX)
	b.S2R(7, isa.SrNCTAIdX)
	b.IMul(8, 6, 7)
	b.ShlImm(8, 8, 2)
	b.IAdd(9, 4, 8)
	b.LdG(10, 9, 0) // in[gid + gridSize]
	b.IAdd(11, 5, 10)
	b.S2R(12, isa.SrTidX)
	b.ShlImm(13, 12, 2)
	b.StS(13, 0, 11)
	b.MovImm(14, 128) // stride
	b.Label("tree")
	b.Bar()
	b.Setp(15, isa.CmpILT, 12, 14)
	b.Bra(15, "add", "next")
	b.Jmp("next")
	b.Label("add")
	b.IAdd(16, 12, 14)
	b.ShlImm(16, 16, 2)
	b.LdS(17, 16, 0)
	b.LdS(18, 13, 0)
	b.IAdd(19, 17, 18)
	b.StS(13, 0, 19)
	b.Label("next")
	b.ShrImm(14, 14, 1)
	b.SetpImm(20, isa.CmpIGT, 14, 0)
	b.Bra(20, "tree", "fin")
	b.Label("fin")
	b.Bar()
	b.SetpImm(21, isa.CmpINE, 12, 0)
	b.Bra(21, "end", "end")
	b.LdS(22, 13, 0)
	b.S2R(23, isa.SrCTAIdX)
	b.ShlImm(23, 23, 2)
	b.LdParam(24, 1)
	b.IAdd(24, 24, 23)
	b.StG(24, 0, 22)
	b.Label("end")
	b.Exit()
	k := b.MustBuild()

	grid := 240 * scale
	return Workload{
		Name:        "reduce",
		Description: "tree reduction with a barrier ladder (warp-slot limited)",
		MemoryBound: true,
		Launch: &isa.Launch{
			Kernel:   k,
			GridDim:  isa.Dim1(grid),
			BlockDim: isa.Dim1(256),
			Params:   []uint32{bufA(), bufB()},
		},
	}
}
