// Package kernels provides the synthetic workload suite used by the
// evaluation. Each kernel is hand-assembled in the simulator ISA with a
// resource signature (threads/CTA, registers/thread, shared memory/CTA,
// memory intensity, divergence, barrier density) modeled on the
// Rodinia/Parboil-class benchmarks the paper evaluates. Virtual Thread's
// benefit depends on that signature — which hardware limit binds and how
// much time warps spend in long-latency stalls — rather than on exact
// program semantics, so matched signatures reproduce the paper's behaviour
// shapes.
package kernels

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/isa"
	"repro/internal/mem"
)

// buildMu serializes workload construction (factories read arenaBase).
var buildMu sync.Mutex

// Each workload's global-memory buffers live in an arena: five 16 MiB
// regions starting at the arena base. Factories read the base that was
// current when they were invoked, so concurrent-kernel runs can give every
// launch a disjoint arena (see BuildAt).
const (
	// ArenaStride separates consecutive arenas (5 buffers + headroom).
	ArenaStride = 0x0800_0000
	// DefaultArena is the base used by Build and Suite.
	DefaultArena = 0x0100_0000

	bufStride = 0x0100_0000
)

// arenaBase is the buffer base factories capture at build time. It is only
// mutated inside BuildAt, which restores it before returning; builds are
// not concurrency-safe (the harness builds workloads per goroutine, each
// via Build/BuildAt which serialize through buildMu).
var arenaBase uint32 = DefaultArena

func bufA() uint32 { return arenaBase }
func bufB() uint32 { return arenaBase + 1*bufStride }
func bufC() uint32 { return arenaBase + 2*bufStride }
func bufD() uint32 { return arenaBase + 3*bufStride }
func bufE() uint32 { return arenaBase + 4*bufStride }

// Workload is one benchmark instance: a launch plus its host-side input
// initialization.
type Workload struct {
	Name        string
	Description string
	Launch      *isa.Launch
	// Init preloads structured inputs (graphs, matrices); may be nil.
	Init func(*mem.Backing)
	// MemoryBound records the rough character used in reports.
	MemoryBound bool
}

// Factory builds a workload at the given scale (grid size multiplier;
// scale 1 is the evaluation size).
type Factory func(scale int) Workload

// registry maps workload names to factories in registration order.
var registry []struct {
	name string
	f    Factory
}

func register(name string, f Factory) {
	registry = append(registry, struct {
		name string
		f    Factory
	}{name, f})
}

// Names returns the registered workload names in suite order.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.name
	}
	return out
}

// Build constructs the named workload — from the headline suite or the
// extension set — in the default memory arena.
func Build(name string, scale int) (Workload, error) {
	return BuildAt(name, scale, DefaultArena)
}

// BuildAt constructs the named workload with its buffers based at the
// given arena. Concurrent-kernel runs give each launch a disjoint arena
// (base + k*ArenaStride) so their inputs and outputs never collide.
func BuildAt(name string, scale int, arena uint32) (Workload, error) {
	buildMu.Lock()
	defer buildMu.Unlock()
	prev := arenaBase
	arenaBase = arena
	defer func() { arenaBase = prev }()

	build := func(f Factory) Workload {
		w := f(scale)
		// Init closures resolve buffer bases lazily; re-enter this
		// workload's arena whenever they run.
		if inner := w.Init; inner != nil {
			w.Init = func(bk *mem.Backing) {
				buildMu.Lock()
				defer buildMu.Unlock()
				p := arenaBase
				arenaBase = arena
				inner(bk)
				arenaBase = p
			}
		}
		return w
	}
	for _, e := range registry {
		if e.name == name {
			return build(e.f), nil
		}
	}
	for _, e := range extraRegistry {
		if e.name == name {
			return build(e.f), nil
		}
	}
	known := append(Names(), ExtraNames()...)
	sort.Strings(known)
	return Workload{}, fmt.Errorf("kernels: unknown workload %q (known: %v)", name, known)
}

// Suite returns every workload at the given scale, in suite order, all in
// the default arena (they are run one at a time).
func Suite(scale int) []Workload {
	buildMu.Lock()
	defer buildMu.Unlock()
	out := make([]Workload, 0, len(registry))
	for _, e := range registry {
		out = append(out, e.f(scale))
	}
	return out
}

// emitGid emits the standard prologue computing the global thread id into
// R0 and its x4 byte offset into R1, using R2 as scratch.
func emitGid(b *isa.Builder) {
	b.S2R(0, isa.SrCTAIdX)
	b.S2R(2, isa.SrNTidX)
	b.IMul(0, 0, 2)
	b.S2R(2, isa.SrTidX)
	b.IAdd(0, 0, 2)
	b.ShlImm(1, 0, 2)
}

// lcg is the deterministic pseudo-random generator used for synthetic
// inputs (same constants as the backing store's synthesizer family).
func lcg(x uint32) uint32 {
	x = x*1664525 + 1013904223
	x ^= x >> 13
	return x
}

func f32(u uint32) float32 {
	// Map to a small positive float in [0.5, 1.5) for numerically tame
	// kernels.
	return 0.5 + float32(u%1024)/1024
}
