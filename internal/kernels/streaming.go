package kernels

import (
	"math"

	"repro/internal/isa"
	"repro/internal/mem"
)

func init() {
	register("vecadd", VecAdd)
	register("stencil3d", Stencil3D)
	register("srad", SRAD)
	register("transpose", Transpose)
}

// VecAdd models a streaming SAXPY-style kernel: out[i] = a[i] + b[i].
// Large CTAs with a tiny register footprint make it warp-slot limited.
func VecAdd(scale int) Workload {
	b := isa.NewBuilder("vecadd")
	emitGid(b)
	b.LdParam(3, 0)
	b.IAdd(3, 3, 1)
	b.LdG(4, 3, 0) // a[i]
	b.LdParam(5, 1)
	b.IAdd(5, 5, 1)
	b.LdG(6, 5, 0) // b[i]
	b.FAdd(7, 4, 6)
	b.LdParam(5, 2)
	b.IAdd(5, 5, 1)
	b.StG(5, 0, 7)
	b.Exit()
	k := b.MustBuild()

	grid := 360 * scale
	n := grid * 256
	return Workload{
		Name:        "vecadd",
		Description: "streaming vector add (warp-slot limited)",
		MemoryBound: true,
		Launch: &isa.Launch{
			Kernel:   k,
			GridDim:  isa.Dim1(grid),
			BlockDim: isa.Dim1(256),
			Params:   []uint32{bufA(), bufB(), bufC()},
		},
		Init: func(bk *mem.Backing) {
			for i := 0; i < n; i++ {
				bk.StoreWord(bufA()+uint32(4*i), math.Float32bits(f32(uint32(i))))
				bk.StoreWord(bufB()+uint32(4*i), math.Float32bits(f32(lcg(uint32(i)))))
			}
		},
	}
}

// Stencil3D models a 7-point 3-D stencil sweep: small CTAs, six neighbour
// loads per point, CTA-slot limited.
func Stencil3D(scale int) Workload {
	const (
		width  = 128
		height = 64
	)
	b := isa.NewBuilder("stencil3d")
	emitGid(b)
	b.LdParam(3, 0)
	b.IAdd(3, 3, 1) // &in[i]
	b.LdG(4, 3, 0)  // center
	b.LdG(5, 3, 4)  // +x
	b.LdG(6, 3, -4) // -x
	b.LdG(7, 3, 4*width)
	b.LdG(8, 3, -4*width)
	b.LdG(9, 3, 4*width*height)
	b.LdG(10, 3, -4*width*height)
	b.FAdd(11, 5, 6)
	b.FAdd(12, 7, 8)
	b.FAdd(13, 9, 10)
	b.FAdd(11, 11, 12)
	b.FAdd(11, 11, 13)
	b.MovImm(14, math.Float32bits(1.0/6.0))
	b.FMul(11, 11, 14)
	b.MovImm(14, math.Float32bits(0.5))
	b.FFma(11, 4, 14, 11)
	b.LdParam(15, 1)
	b.IAdd(15, 15, 1)
	b.StG(15, 0, 11)
	b.Exit()
	k := b.MustBuild()

	grid := 480 * scale
	return Workload{
		Name:        "stencil3d",
		Description: "7-point 3-D stencil (CTA-slot limited, streaming)",
		MemoryBound: true,
		Launch: &isa.Launch{
			Kernel:   k,
			GridDim:  isa.Dim1(grid),
			BlockDim: isa.Dim1(128),
			Params:   []uint32{bufA() + 4*width*height, bufB()},
		},
	}
}

// SRAD models the speckle-reducing anisotropic diffusion stencil: a
// register-hungry (capacity-limited) memory-heavy kernel where Virtual
// Thread has no headroom.
func SRAD(scale int) Workload {
	const width = 256
	b := isa.NewBuilder("srad").ReserveRegs(28)
	emitGid(b)
	b.LdParam(3, 0)
	b.IAdd(3, 3, 1)
	b.LdG(4, 3, 0)
	b.LdG(5, 3, 4)
	b.LdG(6, 3, -4)
	b.LdG(7, 3, 4*width)
	b.LdG(8, 3, -4*width)
	// Diffusion coefficient chain.
	b.FAdd(9, 5, 6)
	b.FAdd(10, 7, 8)
	b.FAdd(9, 9, 10)
	b.MovImm(11, math.Float32bits(0.25))
	b.FMul(9, 9, 11) // mean of neighbours
	b.FAdd(12, 9, 4) // + center
	b.FMul(13, 12, 12)
	b.FRcp(14, 13)
	b.FMul(15, 9, 14)
	b.MovImm(16, math.Float32bits(0.125))
	b.FFma(17, 15, 16, 4)
	b.LdParam(18, 1)
	b.IAdd(18, 18, 1)
	b.StG(18, 0, 17)
	b.Exit()
	k := b.MustBuild()

	grid := 240 * scale
	return Workload{
		Name:        "srad",
		Description: "diffusion stencil, 28 regs/thread (register limited)",
		MemoryBound: true,
		Launch: &isa.Launch{
			Kernel:   k,
			GridDim:  isa.Dim1(grid),
			BlockDim: isa.Dim1(256),
			Params:   []uint32{bufA() + 4*width, bufB()},
		},
	}
}

// Transpose models a tiled matrix transpose through shared memory,
// exercising shared-memory bank behaviour; warp-slot limited.
func Transpose(scale int) Workload {
	b := isa.NewBuilder("transpose").SharedMem(4 * 1024)
	emitGid(b)
	// Load one element into the tile, coalesced.
	b.LdParam(3, 0)
	b.IAdd(3, 3, 1)
	b.LdG(4, 3, 0)
	b.S2R(5, isa.SrTidX)
	b.ShlImm(6, 5, 2)
	b.StS(6, 0, 4) // smem[tid] = in[gid]
	b.Bar()
	// Read transposed within the 16x16 tile: tid -> (tid%16)*16 + tid/16.
	b.AndImm(7, 5, 15)
	b.ShlImm(7, 7, 4)
	b.ShrImm(8, 5, 4)
	b.IAdd(7, 7, 8)
	b.ShlImm(7, 7, 2)
	b.LdS(9, 7, 0)
	b.LdParam(10, 1)
	b.IAdd(10, 10, 1)
	b.StG(10, 0, 9)
	b.Exit()
	k := b.MustBuild()

	grid := 240 * scale
	return Workload{
		Name:        "transpose",
		Description: "tiled transpose through shared memory (warp-slot limited)",
		MemoryBound: true,
		Launch: &isa.Launch{
			Kernel:   k,
			GridDim:  isa.Dim1(grid),
			BlockDim: isa.Dim1(256),
			Params:   []uint32{bufA(), bufB()},
		},
	}
}
