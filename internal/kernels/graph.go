package kernels

import (
	"math"

	"repro/internal/isa"
	"repro/internal/mem"
)

func init() {
	register("bfs", BFS)
	register("spmv", SpMV)
}

// graphCSR deterministically builds a banded CSR adjacency for n nodes
// with degrees in [1, 8) and neighbours within ±512 of the node, the
// locality profile of mesh-derived graphs and band matrices. The locality
// keeps gathers cache-friendly so the workload is memory-latency bound
// rather than bandwidth bound — the regime the paper's benchmarks occupy.
func graphCSR(n int) (rows, cols []uint32) {
	rows = make([]uint32, n+1)
	for i := 0; i < n; i++ {
		deg := uint32(i*7+3)%7 + 1
		rows[i+1] = rows[i] + deg
	}
	cols = make([]uint32, rows[n])
	e := 0
	for i := 0; i < n; i++ {
		for ; e < int(rows[i+1]); e++ {
			delta := int(lcg(uint32(e))%128) - 64
			j := i + delta
			if j < 0 {
				j += n
			}
			if j >= n {
				j -= n
			}
			cols[e] = uint32(j)
		}
	}
	return rows, cols
}

// BFS models one level-expansion iteration of breadth-first search: tiny
// CTAs (CTA-slot limited), heavy branch divergence, and irregular
// data-dependent gathers — the archetypal workload the paper's motivation
// highlights.
func BFS(scale int) Workload {
	const curLevel = 1
	const nNodes = 16384 // fixed L2-resident graph, reused across the grid
	b := isa.NewBuilder("bfs")
	emitGid(b)
	b.AndImm(0, 0, nNodes-1) // node = gid mod graph size
	b.ShlImm(1, 0, 2)
	b.LdParam(4, 0) // levels base
	b.LdParam(5, 1) // rows base
	b.LdParam(6, 2) // cols base
	b.IAdd(7, 4, 1)
	b.LdG(8, 7, 0) // level[node]
	b.SetpImm(9, isa.CmpINE, 8, curLevel)
	b.Bra(9, "end", "end") // not on the frontier: skip
	b.IAdd(10, 5, 1)
	b.LdG(11, 10, 0) // rowStart
	b.LdG(12, 10, 4) // rowEnd
	b.Label("loop")
	b.Setp(13, isa.CmpILT, 11, 12)
	b.Bra(13, "body", "end")
	b.Jmp("end")
	b.Label("body")
	b.ShlImm(14, 11, 2)
	b.IAdd(14, 6, 14)
	b.LdG(15, 14, 0) // neighbour id
	b.ShlImm(16, 15, 2)
	b.IAdd(16, 4, 16)
	b.LdG(17, 16, 0) // neighbour level
	b.SetpImm(18, isa.CmpIEQ, 17, -1)
	b.Bra(18, "write", "cont")
	b.Jmp("cont")
	b.Label("write")
	b.MovImm(19, curLevel+1)
	b.StG(16, 0, 19)
	b.Label("cont")
	b.IAddImm(11, 11, 1)
	b.Jmp("loop")
	b.Label("end")
	b.Exit()
	k := b.MustBuild()

	grid := 480 * scale
	n := nNodes
	return Workload{
		Name:        "bfs",
		Description: "BFS level expansion: divergent, irregular (CTA-slot limited)",
		MemoryBound: true,
		Launch: &isa.Launch{
			Kernel:   k,
			GridDim:  isa.Dim1(grid),
			BlockDim: isa.Dim1(64),
			Params:   []uint32{bufA(), bufB(), bufC()},
		},
		Init: func(bk *mem.Backing) {
			rows, cols := graphCSR(n)
			bk.WriteWords(bufB(), rows)
			bk.WriteWords(bufC(), cols)
			levels := make([]uint32, n)
			for i := range levels {
				if i%4 == 0 {
					levels[i] = curLevel // frontier
				} else {
					levels[i] = 0xFFFFFFFF // unvisited
				}
			}
			bk.WriteWords(bufA(), levels)
		},
	}
}

// SpMV models ELLPACK sparse matrix-vector multiply, one row per thread:
// the matrix is stored column-major (coalesced across the warp) with a
// fixed slot count, and the x-vector gathers follow the band structure of
// mesh matrices, making the kernel memory-latency bound.
func SpMV(scale int) Workload {
	const slots = 4
	const nRows = 8192 // fixed L2-resident matrix, reused across the grid
	b := isa.NewBuilder("spmv")
	emitGid(b)
	b.AndImm(10, 0, nRows-1) // row = gid mod matrix height
	b.ShlImm(13, 10, 2)      // byte offset of row within a column
	b.LdParam(5, 0)          // cols (ELL, column-major)
	b.LdParam(6, 1)          // vals (ELL, column-major)
	b.LdParam(7, 2)          // x
	b.LdParam(20, 4)
	b.LdG(21, 20, 0) // n (number of rows), uniform load
	b.ShlImm(22, 21, 2)
	b.MovImm(11, 0) // acc = 0.0f
	b.MovImm(9, 0)  // slot index
	b.Label("loop")
	b.IAdd(14, 5, 13)
	b.LdG(15, 14, 0) // col index (coalesced)
	b.IAdd(16, 6, 13)
	b.LdG(17, 16, 0) // A value (coalesced)
	b.ShlImm(18, 15, 2)
	b.IAdd(18, 7, 18)
	b.LdG(19, 18, 0) // x[col] banded gather
	b.FFma(11, 17, 19, 11)
	b.IAdd(13, 13, 22) // next column slot
	b.IAddImm(9, 9, 1)
	b.SetpImm(12, isa.CmpILT, 9, slots)
	b.Bra(12, "loop", "after")
	b.Label("after")
	b.LdParam(23, 3)
	b.IAdd(23, 23, 1)
	b.StG(23, 0, 11)
	b.Exit()
	k := b.MustBuild()

	grid := 480 * scale
	n := nRows
	return Workload{
		Name:        "spmv",
		Description: "ELL sparse y=Ax, row per thread (CTA-slot limited)",
		MemoryBound: true,
		Launch: &isa.Launch{
			Kernel:   k,
			GridDim:  isa.Dim1(grid),
			BlockDim: isa.Dim1(96),
			Params:   []uint32{bufA(), bufB(), bufC(), bufD(), bufE()},
		},
		Init: func(bk *mem.Backing) {
			// Column-major ELL: element s of row r at index s*n + r.
			cols := make([]uint32, slots*n)
			vals := make([]uint32, slots*n)
			for r := 0; r < n; r++ {
				deg := int(uint32(r*7+3)%7) + 1
				for s := 0; s < slots; s++ {
					idx := s*n + r
					if s < deg {
						delta := int(lcg(uint32(r*slots+s))%128) - 64
						j := r + delta
						if j < 0 {
							j += n
						}
						if j >= n {
							j -= n
						}
						cols[idx] = uint32(j)
						vals[idx] = math.Float32bits(f32(uint32(idx)))
					} else {
						cols[idx] = uint32(r) // padded: value 0
						vals[idx] = 0
					}
				}
			}
			bk.WriteWords(bufA(), cols)
			bk.WriteWords(bufB(), vals)
			x := make([]uint32, n)
			for i := range x {
				x[i] = math.Float32bits(f32(lcg(uint32(i))))
			}
			bk.WriteWords(bufC(), x)
			// n is passed through memory so the kernel can stride
			// column-major without a multiply chain.
			bk.StoreWord(bufE(), uint32(n))
		},
	}
}
