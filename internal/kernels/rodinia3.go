package kernels

import (
	"math"

	"repro/internal/isa"
	"repro/internal/mem"
)

func init() {
	register("particlefilter", ParticleFilter)
	register("heartwall", HeartWall)
}

// ParticleFilter models the resampling walk: each warp follows a chain of
// indices through an L2-resident weight array, with the loop condition
// depending on the loaded weight — a full memory round trip per step.
// Small CTAs make it CTA-slot limited: a canonical VT gainer.
func ParticleFilter(scale int) Workload {
	const (
		weights  = 32768 // 128 KiB weight array, L2 resident
		maxSteps = 16
	)
	b := isa.NewBuilder("particlefilter")
	emitGid(b)
	b.LdParam(3, 0) // weights base
	// Warp-uniform starting index derived from the CTA id, so the loads
	// coalesce; the per-lane offset stays within one line.
	b.S2R(4, isa.SrCTAIdX)
	b.IMulImm(5, 4, 4*1024)
	b.AndImm(5, 5, 4*(weights-32))
	b.S2R(6, isa.SrTidX)
	b.AndImm(7, 6, 31)
	b.ShlImm(7, 7, 2)
	b.MovImm(8, 0) // accumulated weight
	b.MovImm(9, 0) // step
	b.Label("walk")
	b.IAdd(10, 3, 5)
	b.IAdd(10, 10, 7)
	b.LdG(11, 10, 0) // weight (coalesced line per warp)
	b.IAdd(8, 8, 11)
	// Next cursor: warp-uniform xorshift of the block index.
	b.ShlImm(12, 5, 7)
	b.Xor(5, 5, 12)
	b.ShrImm(12, 5, 9)
	b.Xor(5, 5, 12)
	b.AndImm(5, 5, 4*(weights-32))
	// Loop condition gated on the loaded weight: a real stall per step.
	b.AndImm(13, 11, 0)
	b.IAdd(13, 13, 9)
	b.IAddImm(9, 9, 1)
	b.SetpImm(14, isa.CmpILT, 13, maxSteps-1)
	b.Bra(14, "walk", "done")
	b.Label("done")
	b.LdParam(15, 1)
	b.IAdd(15, 15, 1)
	b.StG(15, 0, 8)
	b.Exit()
	k := b.MustBuild()

	grid := 480 * scale
	return Workload{
		Name:        "particlefilter",
		Description: "resampling index walk, stall per step (CTA-slot limited)",
		MemoryBound: true,
		Launch: &isa.Launch{
			Kernel:   k,
			GridDim:  isa.Dim1(grid),
			BlockDim: isa.Dim1(64),
			Params:   []uint32{bufA(), bufB()},
		},
		Init: func(bk *mem.Backing) {
			for i := 0; i < weights; i++ {
				bk.StoreWord(bufA()+uint32(4*i), lcg(uint32(i))%256)
			}
		},
	}
}

// HeartWall models the template-tracking kernel: per frame, load a
// template row from an L2-resident window, correlate against the shared
// tile, barrier, repeat. Small CTAs, a long-latency load per frame.
func HeartWall(scale int) Workload {
	const (
		frames = 12
		window = 0x1FFFC // 128 KiB template window
	)
	b := isa.NewBuilder("heartwall").SharedMem(1024)
	emitGid(b)
	b.S2R(3, isa.SrTidX)
	b.ShlImm(4, 3, 2)
	b.LdParam(5, 0)
	b.IAdd(6, 5, 1)
	b.LdG(7, 6, 0) // own pixel
	b.StS(4, 0, 7)
	b.MovImm(8, 0) // frame
	b.MovImm(9, 0) // correlation
	b.Mov(10, 1)   // template cursor = gid*4
	b.Label("frame")
	b.Bar()
	b.AndImm(10, 10, window)
	b.LdParam(11, 1)
	b.IAdd(12, 11, 10)
	b.LdG(13, 12, 0) // template sample (L2 hit, full round trip)
	b.LdS(14, 4, 0)
	b.FFma(9, 13, 14, 9)
	// The shared tile shifts by one each frame (neighbour exchange).
	b.IAddImm(15, 3, 1)
	b.AndImm(15, 15, 255)
	b.ShlImm(15, 15, 2)
	b.LdS(16, 15, 0)
	b.Bar()
	b.StS(4, 0, 16)
	// Cursor strides by a large step, gated on the loaded sample.
	b.AndImm(17, 13, 0)
	b.IAdd(17, 17, 8)
	b.IAddImm(10, 10, 4*64*29)
	b.IAddImm(8, 8, 1)
	b.SetpImm(18, isa.CmpILT, 17, frames-1)
	b.Bra(18, "frame", "done")
	b.Label("done")
	b.LdParam(19, 2)
	b.IAdd(19, 19, 1)
	b.StG(19, 0, 9)
	b.Exit()
	k := b.MustBuild()

	grid := 480 * scale
	return Workload{
		Name:        "heartwall",
		Description: "template tracking: load + correlate + barrier per frame (CTA-slot limited)",
		MemoryBound: true,
		Launch: &isa.Launch{
			Kernel:   k,
			GridDim:  isa.Dim1(grid),
			BlockDim: isa.Dim1(64),
			Params:   []uint32{bufA(), bufB(), bufC()},
		},
		Init: func(bk *mem.Backing) {
			for i := 0; i < (window+4)/4; i++ {
				bk.StoreWord(bufB()+uint32(4*i), math.Float32bits(f32(lcg(uint32(i)))))
			}
		},
	}
}
