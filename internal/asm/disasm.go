package asm

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// Disassemble renders a kernel back to assembly text that Assemble accepts
// (assemble ∘ disassemble is the identity on the instruction stream, up to
// label names).
func Disassemble(k *isa.Kernel) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, ".kernel %s\n", k.Name)
	if k.SMemBytes > 0 {
		fmt.Fprintf(&sb, ".smem %d\n", k.SMemBytes)
	}
	fmt.Fprintf(&sb, ".regs %d\n\n", k.NumRegs)

	// Collect branch targets as labels.
	labels := map[int32]string{}
	addLabel := func(pc int32) {
		if _, ok := labels[pc]; !ok {
			labels[pc] = fmt.Sprintf("L%d", pc)
		}
	}
	for _, in := range k.Code {
		switch in.Op {
		case isa.OpJmp:
			addLabel(in.Target)
		case isa.OpBra:
			addLabel(in.Target)
			addLabel(in.Reconv)
		}
	}

	for pc, in := range k.Code {
		if l, ok := labels[int32(pc)]; ok {
			fmt.Fprintf(&sb, "%s:\n", l)
		}
		fmt.Fprintf(&sb, "  %s\n", renderInstr(&in, labels))
	}
	// A trailing label (e.g. reconvergence at the exit) needs a target.
	if l, ok := labels[int32(len(k.Code))]; ok {
		fmt.Fprintf(&sb, "%s:\n  nop\n  exit\n", l)
	}
	return sb.String()
}

func renderInstr(in *isa.Instr, labels map[int32]string) string {
	reg := func(r isa.Reg) string {
		if r == isa.RZ {
			return "rz"
		}
		return fmt.Sprintf("r%d", r)
	}
	immOrB := func() string {
		if in.UseImm {
			return fmt.Sprintf("#%d", int32(in.Imm))
		}
		return reg(in.SrcB)
	}
	memOp := func() string {
		off := int32(in.Imm)
		if off == 0 {
			return fmt.Sprintf("[%s]", reg(in.SrcA))
		}
		return fmt.Sprintf("[%s%+d]", reg(in.SrcA), off)
	}

	switch in.Op {
	case isa.OpNop:
		return "nop"
	case isa.OpBar:
		return "bar"
	case isa.OpExit:
		return "exit"
	case isa.OpJmp:
		return "jmp " + labels[in.Target]
	case isa.OpBra:
		return fmt.Sprintf("bra %s, %s, %s", reg(in.SrcA), labels[in.Target], labels[in.Reconv])
	case isa.OpMov:
		if in.UseImm {
			return fmt.Sprintf("mov %s, #%d", reg(in.Dst), int32(in.Imm))
		}
		return fmt.Sprintf("mov %s, %s", reg(in.Dst), reg(in.SrcA))
	case isa.OpS2R:
		return fmt.Sprintf("s2r %s, %s", reg(in.Dst), specialName(isa.Special(in.Imm)))
	case isa.OpLdParam:
		return fmt.Sprintf("ldparam %s, p%d", reg(in.Dst), in.Imm)
	case isa.OpSetp:
		if in.UseImm {
			return fmt.Sprintf("setp.%s %s, %s, #%d",
				cmpName(isa.CmpKind(in.Target)), reg(in.Dst), reg(in.SrcA), int32(in.Imm))
		}
		return fmt.Sprintf("setp.%s %s, %s, %s",
			cmpName(isa.CmpKind(in.Imm)), reg(in.Dst), reg(in.SrcA), reg(in.SrcB))
	case isa.OpSelp:
		return fmt.Sprintf("selp %s, %s, %s, %s",
			reg(in.Dst), reg(in.SrcA), reg(in.SrcB), reg(in.SrcC))
	case isa.OpLdGlobal:
		return fmt.Sprintf("ld.global %s, %s", reg(in.Dst), memOp())
	case isa.OpLdShared:
		return fmt.Sprintf("ld.shared %s, %s", reg(in.Dst), memOp())
	case isa.OpAtomAdd:
		return fmt.Sprintf("atom.add %s, %s, %s", reg(in.Dst), memOp(), reg(in.SrcC))
	case isa.OpStGlobal:
		return fmt.Sprintf("st.global %s, %s", memOp(), reg(in.SrcC))
	case isa.OpStShared:
		return fmt.Sprintf("st.shared %s, %s", memOp(), reg(in.SrcC))
	}

	for name, code := range oneSrcOps {
		if code == in.Op {
			return fmt.Sprintf("%s %s, %s", name, reg(in.Dst), reg(in.SrcA))
		}
	}
	for name, code := range twoSrcOps {
		if code == in.Op {
			return fmt.Sprintf("%s %s, %s, %s", name, reg(in.Dst), reg(in.SrcA), immOrB())
		}
	}
	for name, code := range threeSrcOps {
		if code == in.Op {
			return fmt.Sprintf("%s %s, %s, %s, %s",
				name, reg(in.Dst), reg(in.SrcA), reg(in.SrcB), reg(in.SrcC))
		}
	}
	return fmt.Sprintf("; unknown op %v", in.Op)
}
