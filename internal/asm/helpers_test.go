package asm

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/warp"
)

// newTestCTA instantiates CTA 0 of a launch for functional execution.
func newTestCTA(t *testing.T, l *isa.Launch) *warp.CTA {
	t.Helper()
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	return warp.NewCTA(l, 0, 32)
}

// execInstr functionally executes one instruction on the warp.
func execInstr(w *warp.Warp, in *isa.Instr, bk *mem.Backing, buf []uint32) {
	warp.Execute(w, in, bk, buf, nil)
}
