// Package asm provides a textual assembly front end for the simulator ISA,
// so kernels can be written as .vta files instead of Go builder calls, and
// a disassembler that renders compiled kernels back to parseable text.
//
// Syntax (one instruction per line, ';' starts a comment):
//
//	.kernel vecadd          ; kernel name
//	.smem 1024              ; static shared memory bytes (optional)
//	.regs 16                ; reserve registers (optional)
//
//	start:
//	  s2r       r0, %tid.x
//	  ldparam   r1, p0
//	  mov       r2, #8
//	  iadd      r3, r0, r2
//	  ld.global r4, [r3+16]
//	  setp.lt   r5, r0, #32
//	  bra       r5, start, done
//	done:
//	  bar
//	  st.shared [r1], r4
//	  exit
//
// Immediates are decimal, 0x-hex, or single-precision floats written with
// a trailing 'f' (#1.5f stores the IEEE-754 bits).
package asm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// Assemble parses the source and returns the built kernel.
func Assemble(src string) (*isa.Kernel, error) {
	a := &assembler{}
	for i, raw := range strings.Split(src, "\n") {
		if err := a.line(raw); err != nil {
			return nil, fmt.Errorf("asm: line %d: %w", i+1, err)
		}
	}
	if a.b == nil {
		return nil, fmt.Errorf("asm: missing .kernel directive")
	}
	k, err := a.b.Build()
	if err != nil {
		return nil, fmt.Errorf("asm: %w", err)
	}
	return k, nil
}

type assembler struct {
	b *isa.Builder
}

func (a *assembler) line(raw string) error {
	if i := strings.IndexByte(raw, ';'); i >= 0 {
		raw = raw[:i]
	}
	line := strings.TrimSpace(raw)
	if line == "" {
		return nil
	}

	if strings.HasPrefix(line, ".") {
		return a.directive(line)
	}
	if a.b == nil {
		return fmt.Errorf("instruction before .kernel directive")
	}
	if strings.HasSuffix(line, ":") {
		name := strings.TrimSuffix(line, ":")
		if name == "" || strings.ContainsAny(name, " \t") {
			return fmt.Errorf("bad label %q", line)
		}
		a.b.Label(name)
		return nil
	}
	return a.instruction(line)
}

func (a *assembler) directive(line string) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case ".kernel":
		if len(fields) != 2 {
			return fmt.Errorf(".kernel needs a name")
		}
		if a.b != nil {
			return fmt.Errorf("duplicate .kernel directive")
		}
		a.b = isa.NewBuilder(fields[1])
		return nil
	case ".smem":
		if a.b == nil {
			return fmt.Errorf(".smem before .kernel")
		}
		n, err := strconv.Atoi(fieldArg(fields))
		if err != nil || n < 0 {
			return fmt.Errorf(".smem needs a non-negative integer")
		}
		a.b.SharedMem(n)
		return nil
	case ".regs":
		if a.b == nil {
			return fmt.Errorf(".regs before .kernel")
		}
		n, err := strconv.Atoi(fieldArg(fields))
		if err != nil || n <= 0 {
			return fmt.Errorf(".regs needs a positive integer")
		}
		a.b.ReserveRegs(n)
		return nil
	default:
		return fmt.Errorf("unknown directive %q", fields[0])
	}
}

func fieldArg(fields []string) string {
	if len(fields) < 2 {
		return ""
	}
	return fields[1]
}

// operand splitting: "iadd r1, r2, #4" -> op "iadd", args [r1 r2 #4].
func splitOperands(line string) (string, []string) {
	sp := strings.IndexAny(line, " \t")
	if sp < 0 {
		return line, nil
	}
	op := line[:sp]
	rest := strings.TrimSpace(line[sp:])
	if rest == "" {
		return op, nil
	}
	parts := strings.Split(rest, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return op, parts
}

var specials = map[string]isa.Special{
	"%tid.x": isa.SrTidX, "%tid.y": isa.SrTidY, "%tid.z": isa.SrTidZ,
	"%ctaid.x": isa.SrCTAIdX, "%ctaid.y": isa.SrCTAIdY, "%ctaid.z": isa.SrCTAIdZ,
	"%ntid.x": isa.SrNTidX, "%ntid.y": isa.SrNTidY, "%ntid.z": isa.SrNTidZ,
	"%nctaid.x": isa.SrNCTAIdX, "%nctaid.y": isa.SrNCTAIdY, "%nctaid.z": isa.SrNCTAIdZ,
	"%laneid": isa.SrLaneID, "%warpid": isa.SrWarpID,
}

// specialName is the inverse of specials, for the disassembler.
func specialName(sr isa.Special) string {
	for n, v := range specials {
		if v == sr {
			return n
		}
	}
	return fmt.Sprintf("%%sr%d", uint32(sr))
}

var cmpKinds = map[string]isa.CmpKind{
	"lt": isa.CmpILT, "le": isa.CmpILE, "eq": isa.CmpIEQ, "ne": isa.CmpINE,
	"ge": isa.CmpIGE, "gt": isa.CmpIGT, "flt": isa.CmpFLT, "fgt": isa.CmpFGT,
}

// cmpName is the inverse of cmpKinds, for the disassembler.
func cmpName(k isa.CmpKind) string {
	for n, v := range cmpKinds {
		if v == k {
			return n
		}
	}
	return fmt.Sprintf("cmp%d", uint32(k))
}

var twoSrcOps = map[string]isa.Opcode{
	"iadd": isa.OpIAdd, "isub": isa.OpISub, "imul": isa.OpIMul,
	"imin": isa.OpIMin, "imax": isa.OpIMax,
	"and": isa.OpAnd, "or": isa.OpOr, "xor": isa.OpXor,
	"shl": isa.OpShl, "shr": isa.OpShr,
	"fadd": isa.OpFAdd, "fmul": isa.OpFMul,
}

var oneSrcOps = map[string]isa.Opcode{
	"frcp": isa.OpFRcp, "fsqrt": isa.OpFSqrt, "fsin": isa.OpFSin, "fexp": isa.OpFExp,
}

var threeSrcOps = map[string]isa.Opcode{
	"imad": isa.OpIMad, "ffma": isa.OpFFma,
}

func (a *assembler) instruction(line string) error {
	op, args := splitOperands(line)
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s needs %d operands, got %d", op, n, len(args))
		}
		return nil
	}

	switch {
	case op == "nop":
		a.b.Nop()
		return nil
	case op == "bar":
		a.b.Bar()
		return nil
	case op == "exit":
		a.b.Exit()
		return nil
	case op == "jmp":
		if err := need(1); err != nil {
			return err
		}
		a.b.Jmp(args[0])
		return nil
	case op == "bra":
		if err := need(3); err != nil {
			return err
		}
		pred, err := parseReg(args[0])
		if err != nil {
			return err
		}
		a.b.Bra(pred, args[1], args[2])
		return nil
	case op == "mov":
		if err := need(2); err != nil {
			return err
		}
		d, err := parseReg(args[0])
		if err != nil {
			return err
		}
		if imm, ok, err := parseImm(args[1]); err != nil {
			return err
		} else if ok {
			a.b.MovImm(d, imm)
		} else {
			s, err := parseReg(args[1])
			if err != nil {
				return err
			}
			a.b.Mov(d, s)
		}
		return nil
	case op == "s2r":
		if err := need(2); err != nil {
			return err
		}
		d, err := parseReg(args[0])
		if err != nil {
			return err
		}
		sr, ok := specials[args[1]]
		if !ok {
			return fmt.Errorf("unknown special register %q", args[1])
		}
		a.b.S2R(d, sr)
		return nil
	case op == "ldparam":
		if err := need(2); err != nil {
			return err
		}
		d, err := parseReg(args[0])
		if err != nil {
			return err
		}
		if !strings.HasPrefix(args[1], "p") {
			return fmt.Errorf("ldparam needs a pN operand, got %q", args[1])
		}
		idx, err := strconv.Atoi(args[1][1:])
		if err != nil || idx < 0 {
			return fmt.Errorf("bad parameter index %q", args[1])
		}
		a.b.LdParam(d, idx)
		return nil
	case op == "selp":
		if err := need(4); err != nil {
			return err
		}
		regs, err := parseRegs(args)
		if err != nil {
			return err
		}
		a.b.Selp(regs[0], regs[1], regs[2], regs[3])
		return nil
	case strings.HasPrefix(op, "setp."):
		if err := need(3); err != nil {
			return err
		}
		kind, ok := cmpKinds[strings.TrimPrefix(op, "setp.")]
		if !ok {
			return fmt.Errorf("unknown comparison %q", op)
		}
		d, err := parseReg(args[0])
		if err != nil {
			return err
		}
		s, err := parseReg(args[1])
		if err != nil {
			return err
		}
		if imm, ok2, err := parseImm(args[2]); err != nil {
			return err
		} else if ok2 {
			a.b.SetpImm(d, kind, s, int32(imm))
		} else {
			s2, err := parseReg(args[2])
			if err != nil {
				return err
			}
			a.b.Setp(d, kind, s, s2)
		}
		return nil
	case op == "ld.global" || op == "ld.shared":
		if err := need(2); err != nil {
			return err
		}
		d, err := parseReg(args[0])
		if err != nil {
			return err
		}
		addr, off, err := parseMem(args[1])
		if err != nil {
			return err
		}
		if op == "ld.global" {
			a.b.LdG(d, addr, off)
		} else {
			a.b.LdS(d, addr, off)
		}
		return nil
	case op == "atom.add":
		if err := need(3); err != nil {
			return err
		}
		d, err := parseReg(args[0])
		if err != nil {
			return err
		}
		addr, off, err := parseMem(args[1])
		if err != nil {
			return err
		}
		v, err := parseReg(args[2])
		if err != nil {
			return err
		}
		a.b.AtomAdd(d, addr, off, v)
		return nil
	case op == "st.global" || op == "st.shared":
		if err := need(2); err != nil {
			return err
		}
		addr, off, err := parseMem(args[0])
		if err != nil {
			return err
		}
		v, err := parseReg(args[1])
		if err != nil {
			return err
		}
		if op == "st.global" {
			a.b.StG(addr, off, v)
		} else {
			a.b.StS(addr, off, v)
		}
		return nil
	}

	if code, ok := oneSrcOps[op]; ok {
		if err := need(2); err != nil {
			return err
		}
		regs, err := parseRegs(args)
		if err != nil {
			return err
		}
		a.b.Emit(isa.Instr{Op: code, Dst: regs[0], SrcA: regs[1]})
		return nil
	}
	if code, ok := twoSrcOps[op]; ok {
		if err := need(3); err != nil {
			return err
		}
		d, err := parseReg(args[0])
		if err != nil {
			return err
		}
		s, err := parseReg(args[1])
		if err != nil {
			return err
		}
		if imm, ok2, err := parseImm(args[2]); err != nil {
			return err
		} else if ok2 {
			a.b.Emit(isa.Instr{Op: code, Dst: d, SrcA: s, Imm: imm, UseImm: true})
		} else {
			s2, err := parseReg(args[2])
			if err != nil {
				return err
			}
			a.b.Emit(isa.Instr{Op: code, Dst: d, SrcA: s, SrcB: s2})
		}
		return nil
	}
	if code, ok := threeSrcOps[op]; ok {
		if err := need(4); err != nil {
			return err
		}
		regs, err := parseRegs(args)
		if err != nil {
			return err
		}
		a.b.Emit(isa.Instr{Op: code, Dst: regs[0], SrcA: regs[1], SrcB: regs[2], SrcC: regs[3]})
		return nil
	}
	return fmt.Errorf("unknown instruction %q", op)
}

func parseRegs(args []string) ([]isa.Reg, error) {
	out := make([]isa.Reg, len(args))
	for i, a := range args {
		r, err := parseReg(a)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

func parseReg(s string) (isa.Reg, error) {
	low := strings.ToLower(s)
	if low == "rz" {
		return isa.RZ, nil
	}
	if !strings.HasPrefix(low, "r") {
		return 0, fmt.Errorf("expected register, got %q", s)
	}
	n, err := strconv.Atoi(low[1:])
	if err != nil || n < 0 || n >= isa.MaxRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return isa.Reg(n), nil
}

// parseImm parses "#value"; ok=false when s is not an immediate.
func parseImm(s string) (imm uint32, ok bool, err error) {
	if !strings.HasPrefix(s, "#") {
		return 0, false, nil
	}
	body := s[1:]
	if strings.HasSuffix(body, "f") {
		f, ferr := strconv.ParseFloat(strings.TrimSuffix(body, "f"), 32)
		if ferr != nil {
			return 0, false, fmt.Errorf("bad float immediate %q", s)
		}
		return math.Float32bits(float32(f)), true, nil
	}
	v, verr := strconv.ParseInt(body, 0, 64)
	if verr != nil || v > math.MaxUint32 || v < math.MinInt32 {
		return 0, false, fmt.Errorf("bad immediate %q", s)
	}
	return uint32(v), true, nil
}

// parseMem parses "[rN]", "[rN+off]" or "[rN-off]".
func parseMem(s string) (isa.Reg, int32, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("expected [reg+offset], got %q", s)
	}
	body := s[1 : len(s)-1]
	sep := strings.IndexAny(body, "+-")
	if sep < 0 {
		r, err := parseReg(strings.TrimSpace(body))
		return r, 0, err
	}
	r, err := parseReg(strings.TrimSpace(body[:sep]))
	if err != nil {
		return 0, 0, err
	}
	off, oerr := strconv.ParseInt(strings.TrimSpace(body[sep:]), 0, 32)
	if oerr != nil {
		return 0, 0, fmt.Errorf("bad offset in %q", s)
	}
	return r, int32(off), nil
}
