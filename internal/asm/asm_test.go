package asm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/mem"
)

const saxpySrc = `
; saxpy: out[i] = a*x[i] + y[i]
.kernel saxpy
.regs 12

  s2r       r0, %ctaid.x
  s2r       r1, %ntid.x
  imul      r0, r0, r1
  s2r       r1, %tid.x
  iadd      r0, r0, r1
  shl       r1, r0, #2
  ldparam   r2, p0        ; x base
  iadd      r2, r2, r1
  ld.global r3, [r2]
  ldparam   r4, p1        ; y base
  iadd      r4, r4, r1
  ld.global r5, [r4]
  mov       r6, #2.0f
  ffma      r7, r3, r6, r5
  ldparam   r8, p2        ; out base
  iadd      r8, r8, r1
  st.global [r8], r7
  exit
`

func TestAssembleSaxpyRuns(t *testing.T) {
	k, err := Assemble(saxpySrc)
	if err != nil {
		t.Fatal(err)
	}
	if k.Name != "saxpy" {
		t.Fatalf("name = %q", k.Name)
	}
	if k.NumRegs != 12 {
		t.Fatalf("regs = %d, want 12 (reserved)", k.NumRegs)
	}
	l := &isa.Launch{
		Kernel:   k,
		GridDim:  isa.Dim1(4),
		BlockDim: isa.Dim1(64),
		Params:   []uint32{0x10000, 0x20000, 0x30000},
	}
	var out *mem.Backing
	_, err = gpu.Run(l, config.Small(), gpu.Options{
		InitMemory: func(b *mem.Backing) {
			for i := 0; i < 256; i++ {
				b.WriteFloats(0x10000+uint32(4*i), []float32{float32(i)})
				b.WriteFloats(0x20000+uint32(4*i), []float32{1})
			}
		},
		KeepBacking: func(b *mem.Backing) { out = b },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		want := float32(2*i + 1)
		if got := out.LoadFloat(0x30000 + uint32(4*i)); got != want {
			t.Fatalf("out[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestAssembleControlFlow(t *testing.T) {
	src := `
.kernel loop
  mov r0, #0
  mov r1, #0
top:
  iadd r1, r1, #3
  iadd r0, r0, #1
  setp.lt r2, r0, #5
  bra r2, top, done
done:
  exit
`
	k, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	// Run one warp functionally.
	l := &isa.Launch{Kernel: k, GridDim: isa.Dim1(1), BlockDim: isa.Dim1(32)}
	cta := newTestCTA(t, l)
	w := cta.Warps[0]
	bk := mem.NewBacking()
	buf := make([]uint32, 32)
	for steps := 0; !w.Finished && steps < 1000; steps++ {
		pc, _, ok := w.Stack.Current()
		if !ok {
			break
		}
		execInstr(w, &k.Code[pc], bk, buf)
	}
	if got := w.Reg(1, 0); got != 15 {
		t.Fatalf("loop result = %d, want 15", got)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"no kernel", "mov r0, #1\nexit\n"},
		{"dup kernel", ".kernel a\n.kernel b\nexit\n"},
		{"unknown op", ".kernel k\nfrobnicate r1\nexit\n"},
		{"unknown directive", ".kernel k\n.bogus 3\nexit\n"},
		{"bad reg", ".kernel k\nmov r999, #1\nexit\n"},
		{"bad imm", ".kernel k\nmov r0, #zz\nexit\n"},
		{"bad special", ".kernel k\ns2r r0, %nope\nexit\n"},
		{"bad mem operand", ".kernel k\nld.global r0, r1\nexit\n"},
		{"bad param", ".kernel k\nldparam r0, x7\nexit\n"},
		{"wrong arity", ".kernel k\niadd r0, r1\nexit\n"},
		{"bad label", ".kernel k\nbad label:\nexit\n"},
		{"undefined branch", ".kernel k\njmp nowhere\nexit\n"},
		{"bad setp kind", ".kernel k\nsetp.zz r0, r1, r2\nexit\n"},
		{"smem before kernel", ".smem 4\n.kernel k\nexit\n"},
		{"negative smem", ".kernel k\n.smem -1\nexit\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Assemble(tc.src); err == nil {
				t.Fatalf("expected error for %q", tc.name)
			}
		})
	}
}

func TestAssembleImmediateForms(t *testing.T) {
	src := `
.kernel imm
  mov r0, #0x10
  mov r1, #-4
  mov r2, #1.5f
  exit
`
	k, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if k.Code[0].Imm != 16 {
		t.Errorf("hex imm = %d", k.Code[0].Imm)
	}
	if int32(k.Code[1].Imm) != -4 {
		t.Errorf("negative imm = %d", int32(k.Code[1].Imm))
	}
	if k.Code[2].Imm != math.Float32bits(1.5) {
		t.Errorf("float imm = %x", k.Code[2].Imm)
	}
}

func TestDisassembleRoundTripHandwritten(t *testing.T) {
	k, err := Assemble(saxpySrc)
	if err != nil {
		t.Fatal(err)
	}
	checkRoundTrip(t, k)
}

// TestDisassembleRoundTripSuite round-trips every workload kernel in the
// suite: assemble(disassemble(k)) must reproduce the exact instruction
// stream.
func TestDisassembleRoundTripSuite(t *testing.T) {
	for _, w := range kernels.Suite(1) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			checkRoundTrip(t, w.Launch.Kernel)
		})
	}
}

func checkRoundTrip(t *testing.T, k *isa.Kernel) {
	t.Helper()
	text := Disassemble(k)
	k2, err := Assemble(text)
	if err != nil {
		t.Fatalf("reassembly failed: %v\n%s", err, text)
	}
	if len(k2.Code) < len(k.Code) {
		t.Fatalf("code shrank: %d -> %d", len(k.Code), len(k2.Code))
	}
	for i := range k.Code {
		if k.Code[i] != k2.Code[i] {
			t.Fatalf("instruction %d differs:\n  orig: %+v\n  back: %+v\nsource:\n%s",
				i, k.Code[i], k2.Code[i], text)
		}
	}
	if k2.SMemBytes != k.SMemBytes {
		t.Fatalf("smem %d -> %d", k.SMemBytes, k2.SMemBytes)
	}
	if k2.NumRegs < k.NumRegs {
		t.Fatalf("regs shrank: %d -> %d", k.NumRegs, k2.NumRegs)
	}
}

// Property: random straight-line programs survive the
// disassemble-assemble round trip instruction for instruction.
func TestRoundTripRandomProperty(t *testing.T) {
	ops2 := []isa.Opcode{isa.OpIAdd, isa.OpISub, isa.OpIMul, isa.OpIMin, isa.OpIMax,
		isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr, isa.OpFAdd, isa.OpFMul}
	ops3 := []isa.Opcode{isa.OpIMad, isa.OpFFma}
	ops1 := []isa.Opcode{isa.OpFRcp, isa.OpFSqrt, isa.OpFSin, isa.OpFExp}

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := isa.NewBuilder("fuzz")
		n := 1 + rng.Intn(40)
		for i := 0; i < n; i++ {
			d := isa.Reg(rng.Intn(32))
			a := isa.Reg(rng.Intn(32))
			c := isa.Reg(rng.Intn(32))
			switch rng.Intn(8) {
			case 0:
				b.Emit(isa.Instr{Op: ops1[rng.Intn(len(ops1))], Dst: d, SrcA: a})
			case 1:
				b.Emit(isa.Instr{Op: ops3[rng.Intn(len(ops3))], Dst: d, SrcA: a,
					SrcB: isa.Reg(rng.Intn(32)), SrcC: c})
			case 2:
				b.MovImm(d, rng.Uint32())
			case 3:
				b.LdG(d, a, int32(rng.Intn(256)*4))
			case 4:
				b.StS(a, int32(rng.Intn(64)*4), c)
			case 5:
				b.Setp(d, isa.CmpKind(rng.Intn(8)), a, c)
			case 6:
				b.SetpImm(d, isa.CmpKind(rng.Intn(6)), a, int32(rng.Intn(1000)-500))
			default:
				op := ops2[rng.Intn(len(ops2))]
				if rng.Intn(2) == 0 {
					b.Emit(isa.Instr{Op: op, Dst: d, SrcA: a, Imm: rng.Uint32() % 1000, UseImm: true})
				} else {
					b.Emit(isa.Instr{Op: op, Dst: d, SrcA: a, SrcB: c})
				}
			}
		}
		b.Exit()
		k, err := b.Build()
		if err != nil {
			return false
		}
		k2, err := Assemble(Disassemble(k))
		if err != nil {
			return false
		}
		if len(k2.Code) != len(k.Code) {
			return false
		}
		for i := range k.Code {
			if k.Code[i] != k2.Code[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAssembleAtomic(t *testing.T) {
	src := `
.kernel atomics
  ldparam r0, p0
  mov r1, #1
  atom.add r2, [r0+8], r1
  atom.add rz, [r0], r1
  exit
`
	k, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if k.Code[2].Op != isa.OpAtomAdd || k.Code[2].Imm != 8 {
		t.Fatalf("atomic parse: %+v", k.Code[2])
	}
	if k.Code[3].Dst != isa.RZ {
		t.Fatalf("rz destination parse: %+v", k.Code[3])
	}
	checkRoundTrip(t, k)
}
