package faultinject

// Storage-layer fault injection for internal/resultstore. A StoreSpec
// names one filesystem operation of the result store (by class and
// ordinal) and what goes wrong there: the process dies before or after
// the syscall, the write lands torn or bit-flipped, or the operation
// fails once with a transient I/O error. Like the simulation faults in
// this package, store faults are deterministic by construction — a
// stateful hook per store instance with its own fired flag, no clocks,
// no randomness — so the commit protocol's all-or-nothing claim can be
// proven by a kill-point sweep: enumerate every operation of a commit
// with NewStoreRecorder, then re-run the commit once per operation with
// a crash injected exactly there.

import (
	"errors"
	"fmt"
	"sync"
)

// StoreOp classifies one filesystem operation of the result store.
type StoreOp int

const (
	// StoreOpAny matches every operation class (kill-point sweeps).
	StoreOpAny StoreOp = iota
	// StoreOpWrite is a whole-file or appended write (staged payloads,
	// redo records, index and journal lines).
	StoreOpWrite
	// StoreOpRename is an atomic rename (staging to final object name,
	// redo record to commit record).
	StoreOpRename
	// StoreOpRead is a whole-file read (object loads, replica copies).
	StoreOpRead
)

// String names the op class as test labels spell it.
func (o StoreOp) String() string {
	switch o {
	case StoreOpAny:
		return "any"
	case StoreOpWrite:
		return "write"
	case StoreOpRename:
		return "rename"
	case StoreOpRead:
		return "read"
	default:
		return fmt.Sprintf("storeop(%d)", int(o))
	}
}

// StoreFaultKind selects what the injected storage fault does.
type StoreFaultKind int

const (
	// StoreCrash dies (panics with *StoreKill) before the operation runs:
	// its bytes never reach the disk.
	StoreCrash StoreFaultKind = iota
	// StoreCrashAfter dies immediately after the operation completes: the
	// "new name exists" half of a torn rename, or a write that became
	// durable the instant before death.
	StoreCrashAfter
	// StoreTruncate writes only the first half of the payload and then
	// dies: a torn write.
	StoreTruncate
	// StoreBitFlip silently flips one bit of the payload and continues:
	// at-rest corruption an end-to-end checksum must catch.
	StoreBitFlip
	// StoreEIO fails the operation once with ErrInjectedIO and continues;
	// the retried operation succeeds, modelling a transient I/O error.
	StoreEIO
)

// String names the kind as test labels spell it.
func (k StoreFaultKind) String() string {
	switch k {
	case StoreCrash:
		return "crash"
	case StoreCrashAfter:
		return "crash-after"
	case StoreTruncate:
		return "truncate"
	case StoreBitFlip:
		return "bit-flip"
	case StoreEIO:
		return "eio-once"
	default:
		return fmt.Sprintf("storekind(%d)", int(k))
	}
}

// ErrInjectedIO is the transient error StoreEIO faults return. The
// result store classifies it as retryable (resultstore.IsTransient), so
// the harness's bounded retry-with-backoff absorbs it.
var ErrInjectedIO = errors.New("faultinject: injected transient I/O error")

// StoreKill is the panic value crash-kind store faults raise: the
// simulated process death. Kill-point tests recover it, abandon the
// store instance, and reopen the directories to exercise recovery —
// exactly what a restarted process would see.
type StoreKill struct {
	Op   StoreOp
	Path string
	Seq  int
}

func (k *StoreKill) Error() string {
	return fmt.Sprintf("faultinject: simulated process death at store op %d (%s %s)", k.Seq, k.Op, k.Path)
}

// StoreSpec is one deterministic storage fault: fire on the N-th
// (0-based) operation matching Op, with the given Kind.
type StoreSpec struct {
	Op   StoreOp
	N    int
	Kind StoreFaultKind
}

// StoreHook compiles the spec into a stateful hook for one store
// instance. Each hook carries its own operation counter and fired flag.
func (sp *StoreSpec) StoreHook() *StoreHook {
	return &StoreHook{spec: *sp}
}

// StoreHook observes every filesystem operation of a result store and
// injects at most one fault. Safe for concurrent use.
type StoreHook struct {
	mu     sync.Mutex
	spec   StoreSpec
	match  int
	fired  bool
	record bool
	trace  []string
}

// NewStoreRecorder returns a hook that injects nothing and records the
// operation trace, so kill-point sweeps can first enumerate the
// operations of a commit sequence.
func NewStoreRecorder() *StoreHook {
	return &StoreHook{spec: StoreSpec{N: -1}, record: true}
}

// Trace returns the recorded operations as "op path" lines.
func (h *StoreHook) Trace() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.trace...)
}

// Fired reports whether the fault has triggered.
func (h *StoreHook) Fired() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.fired
}

// Apply is called by the result store before each filesystem operation
// with the op class, target path, and payload (writes only; nil for
// renames and reads). It returns the payload the operation should use,
// whether the caller must simulate process death immediately after the
// operation completes (by panicking with *StoreKill), and an error that
// fails the operation. Crash-before faults panic with *StoreKill from
// inside Apply, so the operation never happens.
func (h *StoreHook) Apply(op StoreOp, path string, data []byte) (out []byte, dieAfter bool, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.record {
		h.trace = append(h.trace, fmt.Sprintf("%s %s", op, path))
	}
	out = data
	if h.fired || h.spec.N < 0 {
		return out, false, nil
	}
	if h.spec.Op != StoreOpAny && h.spec.Op != op {
		return out, false, nil
	}
	seq := h.match
	h.match++
	if seq != h.spec.N {
		return out, false, nil
	}
	h.fired = true
	kind := h.spec.Kind
	if data == nil && (kind == StoreTruncate || kind == StoreBitFlip) {
		// Payload faults degrade to a crash on payload-less operations.
		kind = StoreCrash
	}
	switch kind {
	case StoreCrash:
		panic(&StoreKill{Op: op, Path: path, Seq: seq})
	case StoreCrashAfter:
		return out, true, nil
	case StoreTruncate:
		return out[:len(out)/2], true, nil
	case StoreBitFlip:
		flipped := append([]byte(nil), out...)
		if len(flipped) > 0 {
			flipped[len(flipped)/2] ^= 0x10
		}
		return flipped, false, nil
	case StoreEIO:
		return out, false, ErrInjectedIO
	}
	return out, false, nil
}
