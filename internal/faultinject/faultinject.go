// Package faultinject provides deterministic fault injection for the run
// supervisor: a Spec names one simulation (workload/variant) and a cycle
// at which to misbehave, and Hook compiles it into a gpu.Options.FaultHook
// closure. Faults are deterministic by construction — a fresh closure per
// attempt with its own fired flag, no clocks, no randomness — so every
// supervisor path (panic recovery, invariant abort, wall-clock deadline,
// safe-mode retry) is exercised reproducibly, including under -race.
//
// The seam is wired only by tests, the CI supervisor drill, and the
// explicit vtbench -inject flag; normal sweeps never install a hook.
package faultinject

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/sm"
)

// Kind selects what the injected fault does when it fires.
type Kind int

const (
	// Panic panics on every attempt: the supervisor's safe-mode retry
	// also fails, producing a RunFailure and a repro bundle.
	Panic Kind = iota
	// PanicOnce panics on the first attempt only: the safe-mode retry
	// succeeds, exercising the graceful-degradation path.
	PanicOnce
	// Corrupt damages an SM's residency bookkeeping so the invariant
	// checker (forced on for injected runs) trips with a violation
	// report.
	Corrupt
	// Hang blocks the run loop for HangFor of wall-clock time so a
	// context deadline expires mid-run.
	Hang
)

// String names the kind as the -inject flag spells it.
func (k Kind) String() string {
	switch k {
	case Panic:
		return "panic"
	case PanicOnce:
		return "panic-once"
	case Corrupt:
		return "corrupt"
	case Hang:
		return "hang"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Spec is one deterministic fault: which run it targets and when/how it
// fires.
type Spec struct {
	// Workload names the targeted kernel (e.g. "bfs").
	Workload string
	// Variant narrows the target to one run variant (e.g. "vt"); empty
	// matches every variant of the workload.
	Variant string
	// Cycle is the trigger point. Idle-skip makes simulated cycles jump,
	// so the fault fires on the first cycle at or past Cycle.
	Cycle int64
	// Kind selects the failure mode.
	Kind Kind
	// HangFor is how long a Hang fault sleeps.
	HangFor time.Duration
}

// Matches reports whether the spec targets the given run.
func (sp *Spec) Matches(workload, variant string) bool {
	return sp.Workload == workload && (sp.Variant == "" || sp.Variant == variant)
}

// Hook compiles the spec into a fault hook for one run attempt (0 = the
// normal run, 1 = the safe-mode retry). Each call returns a fresh closure
// with its own fired flag, so the fault triggers exactly once per attempt
// and retried runs observe it deterministically.
func (sp *Spec) Hook(attempt int) func(cycle int64, sms []*sm.SM) {
	fired := false
	return func(cycle int64, sms []*sm.SM) {
		if fired || cycle < sp.Cycle {
			return
		}
		fired = true
		switch sp.Kind {
		case Panic:
			panic(fmt.Sprintf("faultinject: injected panic in %s at cycle %d", sp.Workload, cycle))
		case PanicOnce:
			if attempt == 0 {
				panic(fmt.Sprintf("faultinject: injected first-attempt panic in %s at cycle %d", sp.Workload, cycle))
			}
		case Corrupt:
			// Breaks the residency-accounting invariant: RegsUsed no
			// longer matches the recount over resident CTAs.
			sms[0].RegsUsed += 1 << 20
		case Hang:
			time.Sleep(sp.HangFor)
		}
	}
}

// String renders the spec in Parse's syntax.
func (sp *Spec) String() string {
	target := sp.Workload
	if sp.Variant != "" {
		target += "/" + sp.Variant
	}
	kind := sp.Kind.String()
	if sp.Kind == Hang {
		kind += "=" + sp.HangFor.String()
	}
	return fmt.Sprintf("%s@%d:%s", target, sp.Cycle, kind)
}

// Parse reads a spec from the vtbench -inject syntax:
//
//	workload[/variant]@cycle:kind
//
// where kind is panic, panic-once, corrupt, or hang=<duration>.
func Parse(s string) (*Spec, error) {
	fail := func() (*Spec, error) {
		return nil, fmt.Errorf("faultinject: bad spec %q (want workload[/variant]@cycle:kind)", s)
	}
	target, rest, ok := strings.Cut(s, "@")
	if !ok || target == "" {
		return fail()
	}
	cycleStr, kindStr, ok := strings.Cut(rest, ":")
	if !ok {
		return fail()
	}
	cycle, err := strconv.ParseInt(cycleStr, 10, 64)
	if err != nil || cycle < 0 {
		return fail()
	}
	sp := &Spec{Cycle: cycle}
	sp.Workload, sp.Variant, _ = strings.Cut(target, "/")
	if sp.Workload == "" {
		return fail()
	}
	switch {
	case kindStr == "panic":
		sp.Kind = Panic
	case kindStr == "panic-once":
		sp.Kind = PanicOnce
	case kindStr == "corrupt":
		sp.Kind = Corrupt
	case strings.HasPrefix(kindStr, "hang="):
		d, err := time.ParseDuration(strings.TrimPrefix(kindStr, "hang="))
		if err != nil || d <= 0 {
			return fail()
		}
		sp.Kind = Hang
		sp.HangFor = d
	default:
		return nil, fmt.Errorf("faultinject: unknown kind %q (want panic, panic-once, corrupt, or hang=<duration>)", kindStr)
	}
	return sp, nil
}
