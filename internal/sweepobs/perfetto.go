package sweepobs

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/telemetry"
)

// Perfetto export of a sweep span dump, reusing the shared trace-event
// encoder from internal/telemetry. Mapping:
//
//   - ts/dur are wall-clock µs from sweep start.
//   - pid 0 is the sweep process (experiment/plan spans and anything
//     not bound to a worker slot); pid s+1 is worker slot s.
//   - tid 0 everywhere; nesting comes from span containment, which the
//     trace viewer stacks within a track.
//   - zero-duration events render with dur 1 µs so they stay visible.

// WritePerfetto renders the dump as Chrome/Perfetto trace-event JSON.
func WritePerfetto(w io.Writer, d *Dump) error {
	if d == nil {
		return telemetry.WriteTraceDocument(w, nil)
	}
	var meta []telemetry.TraceEvent
	meta = append(meta, telemetry.TraceEvent{Name: "process_name", Ph: "M", Pid: 0,
		StrArgs: map[string]string{"name": "sweep"}})
	for s := 0; s < d.Workers; s++ {
		meta = append(meta, telemetry.TraceEvent{Name: "process_name", Ph: "M", Pid: s + 1,
			StrArgs: map[string]string{"name": fmt.Sprintf("worker %d", s)}})
	}

	ev := make([]telemetry.TraceEvent, 0, len(d.Spans))
	for _, sp := range d.Spans {
		pid := 0
		if sp.Slot >= 0 {
			pid = sp.Slot + 1
		}
		name := sp.Kind
		if sp.Kind == "job" && sp.Workload != "" {
			name = sp.Workload + "/" + sp.Variant
		}
		args := map[string]string{"kind": sp.Kind}
		if sp.Workload != "" {
			args["workload"] = sp.Workload
		}
		if sp.Variant != "" {
			args["variant"] = sp.Variant
		}
		for k, v := range sp.Attrs {
			args[k] = v
		}
		dur := sp.DurNS / 1000
		if dur < 1 {
			dur = 1
		}
		ev = append(ev, telemetry.TraceEvent{
			Name: name, Ph: "X",
			Ts: sp.StartNS / 1000, Dur: dur,
			Pid: pid, Tid: 0, StrArgs: args,
		})
	}
	sort.SliceStable(ev, func(a, b int) bool {
		if ev[a].Ts != ev[b].Ts {
			return ev[a].Ts < ev[b].Ts
		}
		if ev[a].Pid != ev[b].Pid {
			return ev[a].Pid < ev[b].Pid
		}
		return ev[a].Dur > ev[b].Dur // parents before children at same ts
	})
	return telemetry.WriteTraceDocument(w, append(meta, ev...))
}
