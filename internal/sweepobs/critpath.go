package sweepobs

import (
	"fmt"
	"sort"
)

// Critical-path analysis over a finished sweep's span dump: which chain
// of jobs determined the wall-clock, and where inside each job the time
// went (simulate vs store I/O vs fork traffic vs wait). This is the
// sweep-level analogue of the simulator's phase breakdown — the answer
// `vtreport -tracepath` prints.

// PathStep is one hop on the critical path.
type PathStep struct {
	// Kind is "job" for a job span or "wait" for a gap where no job on
	// the chain was running (scheduler/store/planner time).
	Kind     string `json:"kind"`
	Workload string `json:"workload,omitempty"`
	Variant  string `json:"variant,omitempty"`
	Slot     int    `json:"slot"`
	StartNS  int64  `json:"start_ns"`
	DurNS    int64  `json:"dur_ns"`
}

// Label names the step for reports.
func (s PathStep) Label() string {
	if s.Kind == "wait" {
		return "(wait)"
	}
	if s.Workload == "" {
		return s.Kind
	}
	return s.Workload + "/" + s.Variant
}

// StageBreakdown is wall-clock attributed to one stage across the
// whole sweep (self time: a stage's nested children are attributed to
// themselves, not double-counted).
type StageBreakdown struct {
	Stage   string  `json:"stage"`
	Seconds float64 `json:"seconds"`
	Count   int64   `json:"count"`
}

// Straggler is a job whose duration is far above the sweep median.
type Straggler struct {
	Workload string  `json:"workload"`
	Variant  string  `json:"variant"`
	Seconds  float64 `json:"seconds"`
	Ratio    float64 `json:"ratio"` // duration / median job duration
}

// Analysis is the result of Analyze.
type Analysis struct {
	WallSeconds float64 `json:"wall_seconds"`
	Jobs        int     `json:"jobs"`
	Workers     int     `json:"workers"`
	// Coverage is the fraction of wall-clock covered by at least one
	// job or experiment span (the ≥95% acceptance bar).
	Coverage float64 `json:"coverage"`
	// Path is the critical path: the chain of jobs ending at the last
	// span to finish, each preceded by the latest job finishing before
	// it started, with gaps reported as "wait" steps. Its durations sum
	// exactly to the wall-clock.
	Path []PathStep `json:"path"`
	// PathSeconds is the summed Path duration (== WallSeconds by
	// construction; kept explicit so reports can assert it).
	PathSeconds float64 `json:"path_seconds"`
	// Breakdown attributes span self-time (duration minus nested
	// children) to each stage across the whole sweep. With concurrent
	// workers its total exceeds wall-clock; divide by Workers for an
	// average-per-slot view.
	Breakdown  []StageBreakdown `json:"breakdown"`
	Stragglers []Straggler      `json:"stragglers,omitempty"`
}

// selfTimes computes, for every span, its duration minus the summed
// durations of its direct children (clamped at 0), keyed by span index.
func selfTimes(spans []Span) []int64 {
	self := make([]int64, len(spans))
	idxByID := make(map[SpanID]int, len(spans))
	for i, sp := range spans {
		idxByID[sp.ID] = i
		self[i] = sp.DurNS
	}
	for _, sp := range spans {
		if sp.Parent == 0 {
			continue
		}
		if pi, ok := idxByID[sp.Parent]; ok {
			self[pi] -= sp.DurNS
		}
	}
	for i := range self {
		if self[i] < 0 {
			self[i] = 0
		}
	}
	return self
}

// mergeIntervals returns the total length of the union of [start, end)
// intervals.
func mergeIntervals(iv [][2]int64) int64 {
	if len(iv) == 0 {
		return 0
	}
	sort.Slice(iv, func(a, b int) bool { return iv[a][0] < iv[b][0] })
	var total, curStart, curEnd int64
	curStart, curEnd = iv[0][0], iv[0][1]
	for _, x := range iv[1:] {
		if x[0] > curEnd {
			total += curEnd - curStart
			curStart, curEnd = x[0], x[1]
		} else if x[1] > curEnd {
			curEnd = x[1]
		}
	}
	total += curEnd - curStart
	return total
}

// Analyze computes the critical path, per-stage breakdown, span
// coverage, and straggler list for a dump. Returns nil for a nil or
// empty dump.
func Analyze(d *Dump) *Analysis {
	if d == nil || len(d.Spans) == 0 {
		return nil
	}
	a := &Analysis{
		WallSeconds: float64(d.WallNS) / 1e9,
		Workers:     d.Workers,
	}

	// Jobs, sorted by end time.
	var jobs []Span
	for _, sp := range d.Spans {
		if sp.Kind == "job" {
			jobs = append(jobs, sp)
		}
	}
	a.Jobs = len(jobs)

	// Coverage: union of job + experiment spans over the wall.
	var iv [][2]int64
	for _, sp := range d.Spans {
		if sp.Kind == "job" || sp.Kind == "experiment" || sp.Kind == "plan" {
			iv = append(iv, [2]int64{sp.StartNS, sp.End()})
		}
	}
	if d.WallNS > 0 {
		a.Coverage = float64(mergeIntervals(iv)) / float64(d.WallNS)
	}

	// Critical path: start from the job that finished last, walk
	// backward to the latest job that finished at or before the current
	// job started; gaps (and the lead-in before the first job / tail
	// after the last) become "wait" steps. Durations then sum exactly
	// to WallNS.
	if len(jobs) > 0 {
		sort.Slice(jobs, func(i, j int) bool { return jobs[i].End() < jobs[j].End() })
		var chain []Span
		cur := jobs[len(jobs)-1]
		chain = append(chain, cur)
		for {
			var pred *Span
			for i := len(jobs) - 1; i >= 0; i-- {
				if jobs[i].End() <= cur.StartNS {
					pred = &jobs[i]
					break
				}
			}
			if pred == nil {
				break
			}
			cur = *pred
			chain = append(chain, cur)
		}
		// chain is last→first; emit first→last with waits filling gaps.
		cursor := int64(0)
		for i := len(chain) - 1; i >= 0; i-- {
			sp := chain[i]
			if sp.StartNS > cursor {
				a.Path = append(a.Path, PathStep{Kind: "wait", Slot: -1,
					StartNS: cursor, DurNS: sp.StartNS - cursor})
			}
			a.Path = append(a.Path, PathStep{Kind: "job",
				Workload: sp.Workload, Variant: sp.Variant, Slot: sp.Slot,
				StartNS: sp.StartNS, DurNS: sp.DurNS})
			cursor = sp.End()
		}
		if cursor < d.WallNS {
			a.Path = append(a.Path, PathStep{Kind: "wait", Slot: -1,
				StartNS: cursor, DurNS: d.WallNS - cursor})
		}
		var sum int64
		for _, st := range a.Path {
			sum += st.DurNS
		}
		a.PathSeconds = float64(sum) / 1e9
	}

	// Stage breakdown: self time per kind across all spans. "job" self
	// time (the part of a job not inside any child span) is labelled
	// "job.other"; "execute" self time is the simulation itself.
	self := selfTimes(d.Spans)
	agg := map[string]*StageBreakdown{}
	for i, sp := range d.Spans {
		name := sp.Kind
		if name == "job" {
			name = "job.other"
		}
		st := agg[name]
		if st == nil {
			st = &StageBreakdown{Stage: name}
			agg[name] = st
		}
		st.Seconds += float64(self[i]) / 1e9
		st.Count++
	}
	for _, st := range agg {
		a.Breakdown = append(a.Breakdown, *st)
	}
	sort.Slice(a.Breakdown, func(i, j int) bool {
		if a.Breakdown[i].Seconds != a.Breakdown[j].Seconds {
			return a.Breakdown[i].Seconds > a.Breakdown[j].Seconds
		}
		return a.Breakdown[i].Stage < a.Breakdown[j].Stage
	})

	// Stragglers: jobs taking more than 2x the median job duration.
	if len(jobs) >= 2 {
		durs := make([]int64, len(jobs))
		for i, j := range jobs {
			durs[i] = j.DurNS
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		median := durs[len(durs)/2]
		if median > 0 {
			for _, j := range jobs {
				if j.DurNS > 2*median {
					a.Stragglers = append(a.Stragglers, Straggler{
						Workload: j.Workload, Variant: j.Variant,
						Seconds: float64(j.DurNS) / 1e9,
						Ratio:   float64(j.DurNS) / float64(median),
					})
				}
			}
			sort.Slice(a.Stragglers, func(i, j int) bool {
				return a.Stragglers[i].Ratio > a.Stragglers[j].Ratio
			})
		}
	}
	return a
}

// FormatStep renders one path step for the vtreport table.
func FormatStep(s PathStep) string {
	return fmt.Sprintf("%-24s slot %2d  %10.3fs → %10.3fs  (%8.3fs)",
		s.Label(), s.Slot,
		float64(s.StartNS)/1e9, float64(s.End())/1e9, float64(s.DurNS)/1e9)
}

// End returns the step's end offset in nanoseconds.
func (s PathStep) End() int64 { return s.StartNS + s.DurNS }
