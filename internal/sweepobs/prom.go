package sweepobs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Hand-rolled Prometheus text exposition (version 0.0.4). The repo is
// stdlib-only, so rather than depend on client_golang this implements
// the small subset the monitor needs: counters, gauges, and cumulative
// histograms, written with one HELP/TYPE header per family, series in
// deterministic sorted order, and label values escaped per the format
// spec. The format is simple enough that the golden test in
// prom_test.go parses the output back with its own independent parser.

// A Registry holds metric families and renders them as one exposition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*Family
	names    []string // registration order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*Family{}}
}

type familyKind int

const (
	kindCounter familyKind = iota
	kindGauge
	kindHistogram
)

func (k familyKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// A Family is one named metric with any number of labeled series.
type Family struct {
	name    string
	help    string
	kind    familyKind
	buckets []float64 // histogram upper bounds, ascending, +Inf implicit

	mu     sync.Mutex
	series map[string]*series // keyed by rendered label string
}

type series struct {
	labels string   // pre-rendered `{k="v",...}` or ""
	pairs  []string // sorted escaped `k="v"` pairs behind labels
	value  float64
	// histogram state
	bucketCounts []uint64 // parallel to Family.buckets, non-cumulative
	infCount     uint64
	sum          float64
}

func (r *Registry) family(name, help string, kind familyKind, buckets []float64) *Family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		return f
	}
	f := &Family{name: name, help: help, kind: kind, buckets: buckets,
		series: map[string]*series{}}
	r.families[name] = f
	r.names = append(r.names, name)
	return f
}

// Counter registers (or returns the existing) counter family.
func (r *Registry) Counter(name, help string) *Family {
	return r.family(name, help, kindCounter, nil)
}

// Gauge registers (or returns the existing) gauge family.
func (r *Registry) Gauge(name, help string) *Family {
	return r.family(name, help, kindGauge, nil)
}

// Histogram registers (or returns the existing) histogram family with
// the given ascending upper bounds; a +Inf bucket is implicit.
func (r *Registry) Histogram(name, help string, buckets []float64) *Family {
	b := make([]float64, len(buckets))
	copy(b, buckets)
	sort.Float64s(b)
	return r.family(name, help, kindHistogram, b)
}

// escapeLabelValue escapes backslash, double-quote, and newline per the
// exposition format.
func escapeLabelValue(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// renderPairs turns alternating key, value pairs into sorted, escaped
// `k="v"` fragments.
func renderPairs(kv []string) []string {
	pairs := make([]string, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		pairs = append(pairs, fmt.Sprintf(`%s="%s"`, kv[i], escapeLabelValue(kv[i+1])))
	}
	sort.Strings(pairs)
	return pairs
}

func joinPairs(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	return "{" + strings.Join(pairs, ",") + "}"
}

func (f *Family) get(kv []string) *series {
	pairs := renderPairs(kv)
	key := joinPairs(pairs)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key, pairs: pairs}
		if f.kind == kindHistogram {
			s.bucketCounts = make([]uint64, len(f.buckets))
		}
		f.series[key] = s
	}
	return s
}

// Add increments a counter series by v. labels are alternating key,
// value pairs.
func (f *Family) Add(v float64, labels ...string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.get(labels).value += v
}

// Set sets a gauge series to v.
func (f *Family) Set(v float64, labels ...string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.get(labels).value = v
}

// Observe records v into a histogram series.
func (f *Family) Observe(v float64, labels ...string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.get(labels)
	s.sum += v
	s.infCount++
	// bucketCounts are per-bin; Write cumulates them into le buckets.
	for i, ub := range f.buckets {
		if v <= ub {
			s.bucketCounts[i]++
			break
		}
	}
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelsWith renders a series label block with one extra pair (the
// histogram `le` label) merged in sorted position.
func labelsWith(pairs []string, k, v string) string {
	extra := fmt.Sprintf(`%s="%s"`, k, escapeLabelValue(v))
	merged := make([]string, 0, len(pairs)+1)
	merged = append(merged, pairs...)
	merged = append(merged, extra)
	sort.Strings(merged)
	return joinPairs(merged)
}

// Write renders the family into the exposition. Callers hold no lock.
func (f *Family) write(w io.Writer) error {
	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type snap struct {
		labels  string
		pairs   []string
		value   float64
		buckets []uint64
		inf     uint64
		sum     float64
	}
	snaps := make([]snap, 0, len(keys))
	for _, k := range keys {
		s := f.series[k]
		sn := snap{labels: s.labels, pairs: s.pairs, value: s.value, inf: s.infCount, sum: s.sum}
		sn.buckets = append(sn.buckets, s.bucketCounts...)
		snaps = append(snaps, sn)
	}
	f.mu.Unlock()

	if len(snaps) == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
	fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
	for _, s := range snaps {
		switch f.kind {
		case kindHistogram:
			// Cumulative le buckets, then +Inf, _sum, _count.
			var cum uint64
			for i, ub := range f.buckets {
				cum += s.buckets[i]
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
					labelsWith(s.pairs, "le", formatFloat(ub)), cum)
			}
			fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
				labelsWith(s.pairs, "le", "+Inf"), s.inf)
			fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, s.labels, formatFloat(s.sum))
			fmt.Fprintf(&b, "%s_count%s %d\n", f.name, s.labels, s.inf)
		default:
			fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatFloat(s.value))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Write renders every non-empty family, in registration order, as
// Prometheus text exposition. Nil-safe: a nil registry writes nothing.
func (r *Registry) Write(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, len(r.names))
	copy(names, r.names)
	fams := make([]*Family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()
	for _, f := range fams {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}
