package sweepobs

import (
	"sync"
	"testing"
	"time"
)

// fakeClock drives a tracer deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// newTestTracer returns a tracer on a fake clock.
func newTestTracer() (*Tracer, *fakeClock) {
	clk := newFakeClock()
	t := New()
	t.mu.Lock()
	t.now = clk.now
	t.start = clk.now()
	t.mu.Unlock()
	return t, clk
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	id := tr.Begin(0, "experiment", "", "")
	if id != 0 {
		t.Fatalf("nil Begin = %d, want 0", id)
	}
	jid := tr.BeginJob(0, "bfs", "vt")
	if jid != 0 {
		t.Fatalf("nil BeginJob = %d, want 0", jid)
	}
	tr.SetAttr(id, "k", "v")
	tr.Event(0, "supervisor.retry", "bfs", "vt")
	tr.Record(0, "store.stage", "", "", time.Now(), time.Millisecond)
	tr.End(id)
	tr.EndJob(jid)
	if d := tr.Dump(); d != nil {
		t.Fatalf("nil Dump = %+v, want nil", d)
	}
	if st := tr.StageTotals(); st != nil {
		t.Fatalf("nil StageTotals = %v, want nil", st)
	}
	if r := tr.Registry(); r != nil {
		t.Fatalf("nil Registry = %v, want nil", r)
	}
}

func TestTracerNestingAndSlots(t *testing.T) {
	tr, clk := newTestTracer()

	eid := tr.Begin(0, "experiment", "fig-swaplat", "")
	j1 := tr.BeginJob(eid, "bfs", "vt")
	j2 := tr.BeginJob(eid, "spmv", "baseline")
	clk.advance(10 * time.Millisecond)

	ex := tr.Begin(j1, "execute", "bfs", "vt")
	tr.SetAttr(ex, "safe_mode", "false")
	clk.advance(40 * time.Millisecond)
	tr.End(ex)

	tr.EndJob(j1)
	// Slot 0 freed: the next job must reuse it.
	j3 := tr.BeginJob(eid, "lud", "lat64")
	clk.advance(5 * time.Millisecond)
	tr.EndJob(j3)
	tr.EndJob(j2)
	tr.End(eid)

	d := tr.Dump()
	if d.Workers != 2 {
		t.Fatalf("Workers = %d, want 2 (slot reuse)", d.Workers)
	}
	byID := map[SpanID]Span{}
	for _, sp := range d.Spans {
		byID[sp.ID] = sp
	}
	if byID[j1].Slot != 0 || byID[j2].Slot != 1 || byID[j3].Slot != 0 {
		t.Fatalf("slots = %d,%d,%d, want 0,1,0", byID[j1].Slot, byID[j2].Slot, byID[j3].Slot)
	}
	if byID[ex].Slot != byID[j1].Slot {
		t.Fatalf("child slot %d != parent slot %d", byID[ex].Slot, byID[j1].Slot)
	}
	if byID[ex].Parent != j1 {
		t.Fatalf("execute parent = %d, want %d", byID[ex].Parent, j1)
	}
	if byID[ex].DurNS != 40*time.Millisecond.Nanoseconds() {
		t.Fatalf("execute dur = %d", byID[ex].DurNS)
	}
	if byID[ex].Attrs["safe_mode"] != "false" {
		t.Fatalf("attrs = %v", byID[ex].Attrs)
	}

	st := tr.StageTotals()
	if st["job"].Count != 3 {
		t.Fatalf("job count = %d, want 3", st["job"].Count)
	}
	if st["execute"].Count != 1 || st["execute"].Seconds != 0.04 {
		t.Fatalf("execute totals = %+v", st["execute"])
	}
}

func TestTracerEventAndRecord(t *testing.T) {
	tr, clk := newTestTracer()
	j := tr.BeginJob(0, "bfs", "vt")
	tr.Event(j, "supervisor.panic", "bfs", "vt", "attempt", "1")
	start := clk.now()
	clk.advance(time.Millisecond)
	tr.Record(j, "store.commit", "bfs", "vt", start, 250*time.Microsecond)
	tr.EndJob(j)

	d := tr.Dump()
	var ev, rec *Span
	for i := range d.Spans {
		switch d.Spans[i].Kind {
		case "supervisor.panic":
			ev = &d.Spans[i]
		case "store.commit":
			rec = &d.Spans[i]
		}
	}
	if ev == nil || ev.Attrs["event"] != "true" || ev.Attrs["attempt"] != "1" || ev.DurNS != 0 {
		t.Fatalf("event span = %+v", ev)
	}
	if rec == nil || rec.DurNS != 250*time.Microsecond.Nanoseconds() || rec.StartNS != 0 {
		t.Fatalf("recorded span = %+v", rec)
	}
	if rec.Parent != j {
		t.Fatalf("recorded parent = %d, want %d", rec.Parent, j)
	}
}

func TestDumpMarksOpenSpans(t *testing.T) {
	tr, clk := newTestTracer()
	j := tr.BeginJob(0, "bfs", "vt")
	clk.advance(time.Second)
	d := tr.Dump()
	if len(d.Spans) != 1 {
		t.Fatalf("spans = %d", len(d.Spans))
	}
	sp := d.Spans[0]
	if sp.Attrs["open"] != "true" || sp.DurNS != time.Second.Nanoseconds() {
		t.Fatalf("open span = %+v", sp)
	}
	// The live tracer must not have been mutated by the dump.
	tr.EndJob(j)
	d2 := tr.Dump()
	if d2.Spans[0].Attrs["open"] == "true" {
		t.Fatalf("closed span still marked open: %+v", d2.Spans[0])
	}
}

// TestTracerConcurrent hammers begin/end/scrape from many goroutines;
// run under -race this is the lock-correctness test for the tracer.
func TestTracerConcurrent(t *testing.T) {
	tr := New()
	root := tr.Begin(0, "experiment", "", "")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				j := tr.BeginJob(root, "bfs", "vt")
				ex := tr.Begin(j, "execute", "bfs", "vt")
				tr.SetAttr(ex, "i", "x")
				tr.Event(j, "supervisor.retry", "bfs", "vt")
				tr.End(ex)
				tr.EndJob(j)
			}
		}()
	}
	// Concurrent scrapers.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = tr.Dump()
				_ = tr.StageTotals()
			}
		}()
	}
	wg.Wait()
	tr.End(root)
	st := tr.StageTotals()
	if st["job"].Count != 8*200 {
		t.Fatalf("job count = %d, want %d", st["job"].Count, 8*200)
	}
	d := tr.Dump()
	if d.Workers < 1 || d.Workers > 8 {
		t.Fatalf("workers = %d, want 1..8", d.Workers)
	}
}
