// Package sweepobs is the sweep-level observability layer of the
// harness: structured run-lifecycle tracing (one span tree per job),
// Prometheus-text metrics exposition, and critical-path analysis over a
// finished sweep's trace.
//
// Where internal/telemetry watches the *simulator* (per-SM rings on a
// simulated-cycle clock), sweepobs watches the *harness*: every job the
// sweep runs emits wall-clock spans for planning, memo/store lookups,
// prefix-fork checkpoint traffic, simulation attempts, result-store
// transaction phases, and supervisor events. The span dump persists
// through the result store as a vtart- artifact (so traces survive
// crashes and are queryable later), renders as a Perfetto trace (one
// pid per worker slot), and feeds `vtreport -tracepath` — which answers
// "where did the wall-clock go" for a whole sweep the way a fleet
// coordinator will need to for many workers.
//
// Spans are job-lifecycle-grained — a handful per job, never per
// simulated cycle — so recording is a short mutex-guarded append, far
// off the simulation hot path. A nil *Tracer is the disabled state:
// every method is nil-receiver safe and free, which is the overhead
// contract the CI tracing-off benchcheck gate enforces.
package sweepobs

import (
	"sync"
	"time"
)

// DumpSchemaVersion identifies the span-dump JSON layout.
const DumpSchemaVersion = 1

// SpanID identifies a span within one Tracer. 0 means "no span" and is
// what every recording method returns and accepts on a nil Tracer.
type SpanID int64

// Span is one recorded interval (or instant, when DurNS is 0 and the
// "event" attr is set). Times are wall-clock nanoseconds since the
// tracer started, so a dump is self-contained.
type Span struct {
	ID     SpanID `json:"id"`
	Parent SpanID `json:"parent,omitempty"`
	// Kind is the span taxonomy name: "experiment", "plan", "job",
	// "store.get", "execute", "fork.ckload", "fork.ckstore",
	// "store.tx", "store.stage", "store.commit", "store.apply",
	// "store.replicate", "fork.capture", "supervisor.panic",
	// "supervisor.invariant", "supervisor.deadline", "supervisor.retry".
	Kind     string `json:"kind"`
	Workload string `json:"workload,omitempty"`
	Variant  string `json:"variant,omitempty"`
	// Slot is the worker slot the span ran on: jobs acquire the lowest
	// free slot for their duration and children inherit it; -1 marks
	// process-level spans (experiment, plan).
	Slot    int               `json:"slot"`
	StartNS int64             `json:"start_ns"`
	DurNS   int64             `json:"dur_ns"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// End returns the span's end time in nanoseconds since tracer start.
func (s Span) End() int64 { return s.StartNS + s.DurNS }

// StageTotal aggregates completed spans of one kind.
type StageTotal struct {
	Count   int64   `json:"count"`
	Seconds float64 `json:"seconds"`
}

// Dump is the persistable span trace of one sweep.
type Dump struct {
	SchemaVersion int `json:"schema_version"`
	// StartTime is the tracer's wall-clock epoch (RFC3339Nano); span
	// StartNS offsets are relative to it.
	StartTime string `json:"start_time"`
	// WallNS is the tracer's age when the dump was taken.
	WallNS int64 `json:"wall_ns"`
	// Workers is the number of worker slots ever in use.
	Workers int    `json:"workers"`
	Spans   []Span `json:"spans"`
}

// Tracer records spans. Safe for concurrent use; nil is the disabled
// tracer (all methods no-op).
type Tracer struct {
	reg         *Registry
	spansTotal  *Family
	spanSeconds *Family

	mu      sync.Mutex
	now     func() time.Time // test seam
	start   time.Time
	nextID  SpanID
	spans   []Span
	openIdx map[SpanID]int // open span -> index in spans
	slots   []bool         // worker-slot occupancy
	workers int            // high-water slot count
	stages  map[string]*StageTotal
}

// spanSecondsBuckets are the latency-histogram bounds (seconds) for
// every span kind, exposed as vtsweep_span_seconds on /metrics.
var spanSecondsBuckets = []float64{0.0005, 0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60}

// New returns an enabled tracer whose clock starts now.
func New() *Tracer {
	reg := NewRegistry()
	t := &Tracer{
		reg:         reg,
		spansTotal:  reg.Counter("vtsweep_spans_total", "Completed sweep-lifecycle spans by kind."),
		spanSeconds: reg.Histogram("vtsweep_span_seconds", "Sweep-lifecycle span duration in seconds by kind.", spanSecondsBuckets),
		now:         time.Now,
		openIdx:     map[SpanID]int{},
		stages:      map[string]*StageTotal{},
	}
	t.start = t.now()
	return t
}

// Registry returns the tracer's metric registry (span counters and
// latency histograms), for composition into a /metrics exposition.
// Nil-safe: returns nil on a nil tracer.
func (t *Tracer) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

func (t *Tracer) sinceStart() int64 { return t.now().Sub(t.start).Nanoseconds() }

// begin appends an open span. Callers hold t.mu.
func (t *Tracer) begin(parent SpanID, kind, workload, variant string, slot int) SpanID {
	t.nextID++
	id := t.nextID
	if slot == -1 && parent != 0 {
		if pi, ok := t.openIdx[parent]; ok {
			slot = t.spans[pi].Slot
		}
	}
	t.spans = append(t.spans, Span{
		ID: id, Parent: parent, Kind: kind,
		Workload: workload, Variant: variant,
		Slot: slot, StartNS: t.sinceStart(), DurNS: -1,
	})
	t.openIdx[id] = len(t.spans) - 1
	return id
}

// Begin opens a span of the given kind under parent (0 = root). The
// span inherits the parent's worker slot.
func (t *Tracer) Begin(parent SpanID, kind, workload, variant string) SpanID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.begin(parent, kind, workload, variant, -1)
}

// BeginJob opens a "job" span and binds it to the lowest free worker
// slot until EndJob. The harness calls it once per job, after the
// worker semaphore is acquired, so slot count never exceeds the worker
// bound and the Perfetto export gets one stable pid per slot.
func (t *Tracer) BeginJob(parent SpanID, workload, variant string) SpanID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	slot := 0
	for ; slot < len(t.slots) && t.slots[slot]; slot++ {
	}
	if slot == len(t.slots) {
		t.slots = append(t.slots, false)
	}
	t.slots[slot] = true
	if slot+1 > t.workers {
		t.workers = slot + 1
	}
	return t.begin(parent, "job", workload, variant, slot)
}

// SetAttr annotates an open span.
func (t *Tracer) SetAttr(id SpanID, k, v string) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	i, ok := t.openIdx[id]
	if !ok {
		return
	}
	if t.spans[i].Attrs == nil {
		t.spans[i].Attrs = map[string]string{}
	}
	t.spans[i].Attrs[k] = v
}

// end closes the span and folds it into the stage totals and metric
// series. Callers hold t.mu.
func (t *Tracer) end(id SpanID) {
	i, ok := t.openIdx[id]
	if !ok {
		return
	}
	delete(t.openIdx, id)
	sp := &t.spans[i]
	sp.DurNS = t.sinceStart() - sp.StartNS
	if sp.DurNS < 0 {
		sp.DurNS = 0
	}
	t.account(sp.Kind, sp.DurNS)
}

// account records one completed span in the aggregates. Callers hold
// t.mu (the registry has its own lock).
func (t *Tracer) account(kind string, durNS int64) {
	st := t.stages[kind]
	if st == nil {
		st = &StageTotal{}
		t.stages[kind] = st
	}
	st.Count++
	sec := float64(durNS) / 1e9
	st.Seconds += sec
	t.spansTotal.Add(1, "kind", kind)
	t.spanSeconds.Observe(sec, "kind", kind)
}

// End closes a span opened by Begin.
func (t *Tracer) End(id SpanID) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.end(id)
}

// EndJob closes a job span and releases its worker slot.
func (t *Tracer) EndJob(id SpanID) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if i, ok := t.openIdx[id]; ok {
		if s := t.spans[i].Slot; s >= 0 && s < len(t.slots) {
			t.slots[s] = false
		}
	}
	t.end(id)
}

// Event records an instant (zero-duration span with the "event" attr)
// under parent: supervisor panics, retries, checkpoint captures.
// attrs are alternating key, value pairs.
func (t *Tracer) Event(parent SpanID, kind, workload, variant string, attrs ...string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.begin(parent, kind, workload, variant, -1)
	i := t.openIdx[id]
	t.spans[i].Attrs = map[string]string{"event": "true"}
	for n := 0; n+1 < len(attrs); n += 2 {
		t.spans[i].Attrs[attrs[n]] = attrs[n+1]
	}
	t.end(id)
}

// Record inserts an already-timed completed span (result-store
// transaction phases measure themselves; the tracer just files them).
func (t *Tracer) Record(parent SpanID, kind, workload, variant string, start time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	if dur < 0 {
		dur = 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.begin(parent, kind, workload, variant, -1)
	i := t.openIdx[id]
	delete(t.openIdx, id)
	t.spans[i].StartNS = start.Sub(t.start).Nanoseconds()
	t.spans[i].DurNS = dur.Nanoseconds()
	t.account(kind, t.spans[i].DurNS)
}

// StageTotals snapshots the per-kind completed-span aggregates (the
// /status schemaVersion 2 "stages" object). Nil-safe: returns nil.
func (t *Tracer) StageTotals() map[string]StageTotal {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]StageTotal, len(t.stages))
	for k, v := range t.stages {
		out[k] = *v
	}
	return out
}

// Dump snapshots every span. Spans still open are emitted with their
// duration up to now and an "open" attr, so a scrape mid-sweep is
// coherent. Nil-safe: returns nil.
func (t *Tracer) Dump() *Dump {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	nowNS := t.sinceStart()
	d := &Dump{
		SchemaVersion: DumpSchemaVersion,
		StartTime:     t.start.UTC().Format(time.RFC3339Nano),
		WallNS:        nowNS,
		Workers:       t.workers,
		Spans:         make([]Span, len(t.spans)),
	}
	copy(d.Spans, t.spans)
	for i := range d.Spans {
		if d.Spans[i].DurNS < 0 { // still open
			attrs := map[string]string{"open": "true"}
			for k, v := range d.Spans[i].Attrs {
				attrs[k] = v
			}
			d.Spans[i].Attrs = attrs
			d.Spans[i].DurNS = nowNS - d.Spans[i].StartNS
		}
	}
	return d
}
