package sweepobs

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

// synthDump builds a 2-worker sweep with a known critical path:
//
//	slot 0: job A [10ms, 60ms], then job C [60ms, 100ms]
//	slot 1: job B [10ms, 40ms]
//	wall: 105ms (5ms tail after C)
//
// Critical path: wait 10ms → A (50ms) → C (40ms) → wait 5ms = 105ms.
func synthDump(t *testing.T) *Dump {
	t.Helper()
	tr, clk := newTestTracer()
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }

	eid := tr.Begin(0, "experiment", "fig-swaplat", "")
	clk.advance(ms(10))
	a := tr.BeginJob(eid, "bfs", "vt")
	b := tr.BeginJob(eid, "spmv", "baseline")
	axe := tr.Begin(a, "execute", "bfs", "vt")
	clk.advance(ms(30))
	tr.EndJob(b)
	clk.advance(ms(20))
	tr.End(axe)
	tr.EndJob(a)
	c := tr.BeginJob(eid, "lud", "lat64")
	clk.advance(ms(40))
	tr.EndJob(c)
	clk.advance(ms(5))
	tr.End(eid)
	return tr.Dump()
}

func TestAnalyzeCriticalPath(t *testing.T) {
	d := synthDump(t)
	a := Analyze(d)
	if a == nil {
		t.Fatal("nil analysis")
	}
	if a.Jobs != 3 || a.Workers != 2 {
		t.Fatalf("jobs=%d workers=%d", a.Jobs, a.Workers)
	}

	var labels []string
	for _, st := range a.Path {
		labels = append(labels, st.Label())
	}
	want := []string{"(wait)", "bfs/vt", "lud/lat64", "(wait)"}
	if strings.Join(labels, " ") != strings.Join(want, " ") {
		t.Fatalf("path = %v, want %v", labels, want)
	}

	// Path must sum exactly to wall-clock.
	var sum int64
	for _, st := range a.Path {
		sum += st.DurNS
	}
	if sum != d.WallNS {
		t.Fatalf("path sum %d != wall %d", sum, d.WallNS)
	}
	if math.Abs(a.PathSeconds-a.WallSeconds) > 1e-9 {
		t.Fatalf("PathSeconds %v != WallSeconds %v", a.PathSeconds, a.WallSeconds)
	}

	// Coverage: experiment span covers the whole wall.
	if a.Coverage < 0.999 {
		t.Fatalf("coverage = %v, want ~1", a.Coverage)
	}

	// Breakdown self-time: execute 50ms; job.other = (50-50) + 30 + 40
	// = 70ms; experiment self = 105 - jobs(120) clamps at 0... compute:
	// experiment dur 105ms minus children (50+30+40=120ms) → clamped 0.
	got := map[string]float64{}
	for _, st := range a.Breakdown {
		got[st.Stage] = st.Seconds
	}
	if math.Abs(got["execute"]-0.05) > 1e-9 {
		t.Fatalf("execute self = %v, want 0.05", got["execute"])
	}
	if math.Abs(got["job.other"]-0.07) > 1e-9 {
		t.Fatalf("job.other self = %v, want 0.07", got["job.other"])
	}
	if got["experiment"] != 0 {
		t.Fatalf("experiment self = %v, want 0 (clamped)", got["experiment"])
	}
}

func TestAnalyzeStragglers(t *testing.T) {
	tr, clk := newTestTracer()
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	for i, dur := range []int{10, 10, 10, 10, 50} {
		j := tr.BeginJob(0, "bfs", []string{"a", "b", "c", "d", "slow"}[i])
		clk.advance(ms(dur))
		tr.EndJob(j)
	}
	a := Analyze(tr.Dump())
	if len(a.Stragglers) != 1 {
		t.Fatalf("stragglers = %+v, want 1", a.Stragglers)
	}
	s := a.Stragglers[0]
	if s.Variant != "slow" || s.Ratio != 5 {
		t.Fatalf("straggler = %+v", s)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	if a := Analyze(nil); a != nil {
		t.Fatalf("Analyze(nil) = %+v", a)
	}
	if a := Analyze(&Dump{}); a != nil {
		t.Fatalf("Analyze(empty) = %+v", a)
	}
}

func TestWritePerfettoDecodes(t *testing.T) {
	d := synthDump(t)
	var b strings.Builder
	if err := WritePerfetto(&b, d); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   *int64         `json:"ts"`
			Dur  int64          `json:"dur"`
			Pid  *int           `json:"pid"`
			Tid  *int           `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	names := map[string]bool{}
	var jobPids []int
	for _, e := range doc.TraceEvents {
		if e.Ts == nil || e.Pid == nil || e.Tid == nil {
			t.Fatalf("event %q missing structural field", e.Name)
		}
		if e.Ph == "M" && e.Name == "process_name" {
			names[e.Args["name"].(string)] = true
		}
		if e.Ph == "X" && e.Args["kind"] == "job" {
			jobPids = append(jobPids, *e.Pid)
		}
	}
	for _, want := range []string{"sweep", "worker 0", "worker 1"} {
		if !names[want] {
			t.Fatalf("missing process name %q (have %v)", want, names)
		}
	}
	if len(jobPids) != 3 {
		t.Fatalf("job events = %d, want 3", len(jobPids))
	}
	for _, pid := range jobPids {
		if pid < 1 || pid > 2 {
			t.Fatalf("job pid %d outside worker range", pid)
		}
	}
}
