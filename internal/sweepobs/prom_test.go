package sweepobs

import (
	"strings"
	"testing"
	"time"
)

func TestRegistryGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("vtsweep_runs_executed_total", "Runs executed.")
	c.Add(3)
	g := r.Gauge("vtsweep_active_jobs", "Jobs in flight.")
	g.Set(2)
	h := r.Histogram("vtsweep_span_seconds", "Span seconds.", []float64{0.1, 1})
	h.Observe(0.05, "kind", "job")
	h.Observe(0.5, "kind", "job")
	h.Observe(5, "kind", "job")
	byKind := r.Counter("vtsweep_spans_total", "Spans.")
	byKind.Add(2, "kind", "store.tx")
	byKind.Add(1, "kind", `we"ird`)
	// Registered but never written to: must not emit HELP/TYPE.
	r.Counter("vtsweep_unused_total", "Never incremented.")

	var b strings.Builder
	if err := r.Write(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP vtsweep_runs_executed_total Runs executed.
# TYPE vtsweep_runs_executed_total counter
vtsweep_runs_executed_total 3
# HELP vtsweep_active_jobs Jobs in flight.
# TYPE vtsweep_active_jobs gauge
vtsweep_active_jobs 2
# HELP vtsweep_span_seconds Span seconds.
# TYPE vtsweep_span_seconds histogram
vtsweep_span_seconds_bucket{kind="job",le="0.1"} 1
vtsweep_span_seconds_bucket{kind="job",le="1"} 2
vtsweep_span_seconds_bucket{kind="job",le="+Inf"} 3
vtsweep_span_seconds_sum{kind="job"} 5.55
vtsweep_span_seconds_count{kind="job"} 3
# HELP vtsweep_spans_total Spans.
# TYPE vtsweep_spans_total counter
vtsweep_spans_total{kind="store.tx"} 2
vtsweep_spans_total{kind="we\"ird"} 1
`
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
	// The golden text must also survive the independent parser.
	if _, err := ValidateExposition(b.String()); err != nil {
		t.Fatalf("golden exposition invalid: %v", err)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"duplicate HELP":     "# HELP a x\n# HELP a y\n# TYPE a counter\na 1\n",
		"duplicate TYPE":     "# HELP a x\n# TYPE a counter\n# TYPE a counter\na 1\n",
		"TYPE before HELP":   "# TYPE a counter\na 1\n",
		"sample before TYPE": "a 1\n",
		"duplicate sample":   "# HELP a x\n# TYPE a counter\na 1\na 2\n",
		"non-monotonic buckets": "# HELP h x\n# TYPE h histogram\n" +
			`h_bucket{le="1"} 3` + "\n" + `h_bucket{le="2"} 2` + "\n" +
			`h_bucket{le="+Inf"} 3` + "\nh_sum 1\nh_count 3\n",
		"le not ascending": "# HELP h x\n# TYPE h histogram\n" +
			`h_bucket{le="2"} 1` + "\n" + `h_bucket{le="1"} 2` + "\n" +
			`h_bucket{le="+Inf"} 2` + "\nh_sum 1\nh_count 2\n",
		"missing +Inf": "# HELP h x\n# TYPE h histogram\n" +
			`h_bucket{le="1"} 1` + "\nh_sum 1\nh_count 1\n",
		"count != +Inf": "# HELP h x\n# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 2` + "\nh_sum 1\nh_count 3\n",
	}
	for name, text := range cases {
		if _, err := ValidateExposition(text); err == nil {
			t.Errorf("%s: accepted invalid exposition", name)
		}
	}
}

func TestExpositionParsesCleanly(t *testing.T) {
	// A realistic registry: the tracer's own metrics after a few spans,
	// validated by the independent parser.
	tr, clk := newTestTracer()
	for i := 0; i < 5; i++ {
		j := tr.BeginJob(0, "bfs", "vt")
		clk.advance(3 * time.Duration(i+1) * time.Millisecond)
		ex := tr.Begin(j, "execute", "bfs", "vt")
		clk.advance(2 * time.Millisecond)
		tr.End(ex)
		tr.EndJob(j)
	}
	var b strings.Builder
	if err := tr.Registry().Write(&b); err != nil {
		t.Fatal(err)
	}
	samples, err := ValidateExposition(b.String())
	if err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, b.String())
	}
	if samples[`vtsweep_spans_total{kind="job"}`] != 5 {
		t.Fatalf("job spans = %v, want 5\n%s", samples[`vtsweep_spans_total{kind="job"}`], b.String())
	}
	if samples[`vtsweep_spans_total{kind="execute"}`] != 5 {
		t.Fatalf("execute spans = %v, want 5", samples[`vtsweep_spans_total{kind="execute"}`])
	}
	if samples[`vtsweep_span_seconds_count{kind="job"}`] != 5 {
		t.Fatalf("histogram count = %v, want 5", samples[`vtsweep_span_seconds_count{kind="job"}`])
	}
}
