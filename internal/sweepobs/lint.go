package sweepobs

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ValidateExposition parses Prometheus text exposition independently of
// the Registry writer and checks the structural rules a scraper relies
// on: HELP and TYPE exactly once per family and before its samples, no
// duplicate series, histogram buckets with ascending le bounds and
// monotonic cumulative counts, and _count equal to the +Inf bucket.
// Returns the samples keyed by the full series string (name plus label
// block). The golden tests and the /metrics endpoint test both parse
// through this, so the writer and an independent reader must agree.
func ValidateExposition(text string) (map[string]float64, error) {
	samples := map[string]float64{}
	helpSeen := map[string]bool{}
	typeSeen := map[string]string{}
	type histState struct {
		lastLe  float64
		lastVal float64
		inf     float64
		count   float64
		hasInf  bool
	}
	hists := map[string]*histState{} // per series (name + labels minus le)

	baseName := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(name, suf); ok && typeSeen[b] == "histogram" {
				return b
			}
		}
		return name
	}

	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			f := strings.Fields(line)
			if len(f) < 3 {
				return nil, fmt.Errorf("line %d: malformed HELP", lineNo)
			}
			name := f[2]
			if helpSeen[name] {
				return nil, fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
			}
			helpSeen[name] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				return nil, fmt.Errorf("line %d: malformed TYPE", lineNo)
			}
			name, typ := f[2], f[3]
			if _, dup := typeSeen[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			if !helpSeen[name] {
				return nil, fmt.Errorf("line %d: TYPE before HELP for %s", lineNo, name)
			}
			typeSeen[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			return nil, fmt.Errorf("line %d: unexpected comment %q", lineNo, line)
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("line %d: no value separator in %q", lineNo, line)
		}
		key, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad value %q: %v", lineNo, valStr, err)
		}
		name := key
		labels := ""
		if i := strings.IndexByte(key, '{'); i >= 0 {
			name, labels = key[:i], key[i:]
			if !strings.HasSuffix(labels, "}") {
				return nil, fmt.Errorf("line %d: unterminated labels in %q", lineNo, key)
			}
		}
		base := baseName(name)
		if _, ok := typeSeen[base]; !ok {
			return nil, fmt.Errorf("line %d: sample %s before TYPE", lineNo, name)
		}
		if _, dup := samples[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate sample %s", lineNo, key)
		}
		samples[key] = val

		if typeSeen[base] == "histogram" {
			serKey := base + "|" + stripLabel(labels, "le")
			hs := hists[serKey]
			if hs == nil {
				hs = &histState{lastLe: math.Inf(-1)}
				hists[serKey] = hs
			}
			switch {
			case strings.HasSuffix(name, "_bucket"):
				le, err := leValueOf(labels)
				if err != nil {
					return nil, fmt.Errorf("line %d: %v", lineNo, err)
				}
				if le <= hs.lastLe {
					return nil, fmt.Errorf("line %d: bucket le %v not ascending (prev %v)", lineNo, le, hs.lastLe)
				}
				if val < hs.lastVal {
					return nil, fmt.Errorf("line %d: bucket counts not monotonic: %v < %v", lineNo, val, hs.lastVal)
				}
				hs.lastLe, hs.lastVal = le, val
				if math.IsInf(le, 1) {
					hs.inf, hs.hasInf = val, true
				}
			case strings.HasSuffix(name, "_count"):
				hs.count = val
			}
		}
	}
	for k, hs := range hists {
		if !hs.hasInf {
			return nil, fmt.Errorf("histogram %s has no +Inf bucket", k)
		}
		if hs.count != hs.inf {
			return nil, fmt.Errorf("histogram %s: count %v != +Inf bucket %v", k, hs.count, hs.inf)
		}
	}
	return samples, nil
}

// stripLabel removes one label pair from a rendered `{...}` block.
func stripLabel(labels, name string) string {
	if labels == "" {
		return ""
	}
	inner := labels[1 : len(labels)-1]
	var keep []string
	for _, p := range splitLabelPairs(inner) {
		if !strings.HasPrefix(p, name+`="`) {
			keep = append(keep, p)
		}
	}
	return strings.Join(keep, ",")
}

// splitLabelPairs splits `k="v",k2="v2"` respecting escaped quotes.
func splitLabelPairs(s string) []string {
	var out []string
	var cur strings.Builder
	inQ, esc := false, false
	for _, r := range s {
		switch {
		case esc:
			esc = false
		case r == '\\':
			esc = true
		case r == '"':
			inQ = !inQ
		case r == ',' && !inQ:
			out = append(out, cur.String())
			cur.Reset()
			continue
		}
		cur.WriteRune(r)
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

// leValueOf extracts the le bound from a bucket's label block.
func leValueOf(labels string) (float64, error) {
	if labels == "" {
		return 0, fmt.Errorf("no le label")
	}
	inner := labels[1 : len(labels)-1]
	for _, p := range splitLabelPairs(inner) {
		if v, ok := strings.CutPrefix(p, `le="`); ok {
			v = strings.TrimSuffix(v, `"`)
			if v == "+Inf" {
				return math.Inf(1), nil
			}
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return 0, fmt.Errorf("bad le %q: %v", v, err)
			}
			return f, nil
		}
	}
	return 0, fmt.Errorf("no le label in %q", labels)
}
