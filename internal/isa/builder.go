package isa

import (
	"fmt"
)

// Builder assembles a Kernel from a sequence of emit calls. Branch targets
// and reconvergence points are named labels resolved at Build time. The
// builder tracks the highest register index written or read to compute the
// kernel's register footprint.
type Builder struct {
	name   string
	smem   int
	extra  int // extra registers reserved beyond those referenced
	instrs []Instr
	labels map[string]int
	fixups []fixup
	maxReg int
	errs   []error
}

type fixup struct {
	pc     int
	target string // label for Target
	reconv string // label for Reconv, empty if none
}

// NewBuilder returns an empty builder for a kernel with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, labels: make(map[string]int), maxReg: -1}
}

// SharedMem declares the kernel's static shared memory footprint in bytes.
func (b *Builder) SharedMem(bytes int) *Builder {
	b.smem = bytes
	return b
}

// ReserveRegs forces the register footprint to be at least n registers per
// thread, modeling compiler spill space or occupancy tuning.
func (b *Builder) ReserveRegs(n int) *Builder {
	if n > b.extra {
		b.extra = n
	}
	return b
}

// Label defines a named position at the current PC.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("isa: duplicate label %q", name))
	}
	b.labels[name] = len(b.instrs)
	return b
}

// PC returns the program counter of the next emitted instruction.
func (b *Builder) PC() int { return len(b.instrs) }

func (b *Builder) note(r Reg) {
	if r != RZ && int(r) > b.maxReg {
		b.maxReg = int(r)
	}
}

// Emit appends a raw instruction, tracking its register footprint.
func (b *Builder) Emit(in Instr) *Builder {
	if in.Op.HasDst() {
		b.note(in.Dst)
	}
	for _, r := range in.SrcRegs(nil) {
		b.note(r)
	}
	b.instrs = append(b.instrs, in)
	return b
}

// --- convenience emitters ---

// Mov emits Dst = Src.
func (b *Builder) Mov(d, a Reg) *Builder { return b.Emit(Instr{Op: OpMov, Dst: d, SrcA: a}) }

// MovImm emits Dst = imm.
func (b *Builder) MovImm(d Reg, imm uint32) *Builder {
	return b.Emit(Instr{Op: OpMov, Dst: d, Imm: imm, UseImm: true})
}

// S2R emits Dst = special register.
func (b *Builder) S2R(d Reg, sr Special) *Builder {
	return b.Emit(Instr{Op: OpS2R, Dst: d, Imm: uint32(sr)})
}

// LdParam emits Dst = launch parameter idx.
func (b *Builder) LdParam(d Reg, idx int) *Builder {
	return b.Emit(Instr{Op: OpLdParam, Dst: d, Imm: uint32(idx)})
}

// IAdd emits Dst = a + bb.
func (b *Builder) IAdd(d, a, bb Reg) *Builder {
	return b.Emit(Instr{Op: OpIAdd, Dst: d, SrcA: a, SrcB: bb})
}

// IAddImm emits Dst = a + imm.
func (b *Builder) IAddImm(d, a Reg, imm int32) *Builder {
	return b.Emit(Instr{Op: OpIAdd, Dst: d, SrcA: a, Imm: uint32(imm), UseImm: true})
}

// ISub emits Dst = a - bb.
func (b *Builder) ISub(d, a, bb Reg) *Builder {
	return b.Emit(Instr{Op: OpISub, Dst: d, SrcA: a, SrcB: bb})
}

// IMul emits Dst = a * bb.
func (b *Builder) IMul(d, a, bb Reg) *Builder {
	return b.Emit(Instr{Op: OpIMul, Dst: d, SrcA: a, SrcB: bb})
}

// IMulImm emits Dst = a * imm.
func (b *Builder) IMulImm(d, a Reg, imm int32) *Builder {
	return b.Emit(Instr{Op: OpIMul, Dst: d, SrcA: a, Imm: uint32(imm), UseImm: true})
}

// IMad emits Dst = a*bb + c.
func (b *Builder) IMad(d, a, bb, c Reg) *Builder {
	return b.Emit(Instr{Op: OpIMad, Dst: d, SrcA: a, SrcB: bb, SrcC: c})
}

// IMin emits Dst = min(a, bb) (signed).
func (b *Builder) IMin(d, a, bb Reg) *Builder {
	return b.Emit(Instr{Op: OpIMin, Dst: d, SrcA: a, SrcB: bb})
}

// IMax emits Dst = max(a, bb) (signed).
func (b *Builder) IMax(d, a, bb Reg) *Builder {
	return b.Emit(Instr{Op: OpIMax, Dst: d, SrcA: a, SrcB: bb})
}

// And emits Dst = a & bb.
func (b *Builder) And(d, a, bb Reg) *Builder {
	return b.Emit(Instr{Op: OpAnd, Dst: d, SrcA: a, SrcB: bb})
}

// AndImm emits Dst = a & imm.
func (b *Builder) AndImm(d, a Reg, imm uint32) *Builder {
	return b.Emit(Instr{Op: OpAnd, Dst: d, SrcA: a, Imm: imm, UseImm: true})
}

// Or emits Dst = a | bb.
func (b *Builder) Or(d, a, bb Reg) *Builder {
	return b.Emit(Instr{Op: OpOr, Dst: d, SrcA: a, SrcB: bb})
}

// Xor emits Dst = a ^ bb.
func (b *Builder) Xor(d, a, bb Reg) *Builder {
	return b.Emit(Instr{Op: OpXor, Dst: d, SrcA: a, SrcB: bb})
}

// ShlImm emits Dst = a << imm.
func (b *Builder) ShlImm(d, a Reg, imm uint32) *Builder {
	return b.Emit(Instr{Op: OpShl, Dst: d, SrcA: a, Imm: imm, UseImm: true})
}

// ShrImm emits Dst = a >> imm (logical).
func (b *Builder) ShrImm(d, a Reg, imm uint32) *Builder {
	return b.Emit(Instr{Op: OpShr, Dst: d, SrcA: a, Imm: imm, UseImm: true})
}

// FAdd emits Dst = a + bb (float).
func (b *Builder) FAdd(d, a, bb Reg) *Builder {
	return b.Emit(Instr{Op: OpFAdd, Dst: d, SrcA: a, SrcB: bb})
}

// FMul emits Dst = a * bb (float).
func (b *Builder) FMul(d, a, bb Reg) *Builder {
	return b.Emit(Instr{Op: OpFMul, Dst: d, SrcA: a, SrcB: bb})
}

// FFma emits Dst = a*bb + c (float).
func (b *Builder) FFma(d, a, bb, c Reg) *Builder {
	return b.Emit(Instr{Op: OpFFma, Dst: d, SrcA: a, SrcB: bb, SrcC: c})
}

// FRcp emits Dst = 1/a on the SFU.
func (b *Builder) FRcp(d, a Reg) *Builder { return b.Emit(Instr{Op: OpFRcp, Dst: d, SrcA: a}) }

// FSqrt emits Dst = sqrt(a) on the SFU.
func (b *Builder) FSqrt(d, a Reg) *Builder { return b.Emit(Instr{Op: OpFSqrt, Dst: d, SrcA: a}) }

// FSin emits Dst = sin(a) on the SFU.
func (b *Builder) FSin(d, a Reg) *Builder { return b.Emit(Instr{Op: OpFSin, Dst: d, SrcA: a}) }

// FExp emits Dst = exp2(a) on the SFU.
func (b *Builder) FExp(d, a Reg) *Builder { return b.Emit(Instr{Op: OpFExp, Dst: d, SrcA: a}) }

// Setp emits Dst = cmp(a, bb) ? 1 : 0.
func (b *Builder) Setp(d Reg, kind CmpKind, a, bb Reg) *Builder {
	return b.Emit(Instr{Op: OpSetp, Dst: d, SrcA: a, SrcB: bb, Imm: uint32(kind)})
}

// SetpImm emits Dst = cmp(a, imm) ? 1 : 0. The immediate replaces SrcB and
// the comparison kind is packed into Target (the execution engine reads it
// from there for immediate compares).
func (b *Builder) SetpImm(d Reg, kind CmpKind, a Reg, imm int32) *Builder {
	return b.Emit(Instr{Op: OpSetp, Dst: d, SrcA: a, Imm: uint32(imm), UseImm: true,
		Target: int32(kind)})
}

// Selp emits Dst = c != 0 ? a : bb.
func (b *Builder) Selp(d, a, bb, c Reg) *Builder {
	return b.Emit(Instr{Op: OpSelp, Dst: d, SrcA: a, SrcB: bb, SrcC: c})
}

// LdG emits Dst = global[addr + off].
func (b *Builder) LdG(d, addr Reg, off int32) *Builder {
	return b.Emit(Instr{Op: OpLdGlobal, Dst: d, SrcA: addr, Imm: uint32(off)})
}

// StG emits global[addr + off] = val.
func (b *Builder) StG(addr Reg, off int32, val Reg) *Builder {
	return b.Emit(Instr{Op: OpStGlobal, SrcA: addr, Imm: uint32(off), SrcC: val})
}

// LdS emits Dst = shared[addr + off].
func (b *Builder) LdS(d, addr Reg, off int32) *Builder {
	return b.Emit(Instr{Op: OpLdShared, Dst: d, SrcA: addr, Imm: uint32(off)})
}

// StS emits shared[addr + off] = val.
func (b *Builder) StS(addr Reg, off int32, val Reg) *Builder {
	return b.Emit(Instr{Op: OpStShared, SrcA: addr, Imm: uint32(off), SrcC: val})
}

// AtomAdd emits Dst = atomicAdd(&global[addr+off], val); pass RZ as d to
// discard the old value.
func (b *Builder) AtomAdd(d, addr Reg, off int32, val Reg) *Builder {
	return b.Emit(Instr{Op: OpAtomAdd, Dst: d, SrcA: addr, Imm: uint32(off), SrcC: val})
}

// Bra emits a divergent branch: lanes with pred != 0 jump to target; all
// lanes reconverge at the reconv label.
func (b *Builder) Bra(pred Reg, target, reconv string) *Builder {
	b.note(pred)
	b.fixups = append(b.fixups, fixup{pc: len(b.instrs), target: target, reconv: reconv})
	b.instrs = append(b.instrs, Instr{Op: OpBra, SrcA: pred})
	return b
}

// Jmp emits a uniform jump to the label.
func (b *Builder) Jmp(target string) *Builder {
	b.fixups = append(b.fixups, fixup{pc: len(b.instrs), target: target})
	b.instrs = append(b.instrs, Instr{Op: OpJmp})
	return b
}

// Bar emits a CTA-wide barrier.
func (b *Builder) Bar() *Builder { return b.Emit(Instr{Op: OpBar}) }

// Exit emits a thread exit.
func (b *Builder) Exit() *Builder { return b.Emit(Instr{Op: OpExit}) }

// Nop emits a no-op (consumes an issue slot and ALU latency).
func (b *Builder) Nop() *Builder { return b.Emit(Instr{Op: OpNop}) }

// Build resolves labels and returns the assembled kernel.
func (b *Builder) Build() (*Kernel, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if len(b.instrs) == 0 {
		return nil, fmt.Errorf("isa: kernel %q is empty", b.name)
	}
	code := make([]Instr, len(b.instrs))
	copy(code, b.instrs)
	for _, f := range b.fixups {
		tpc, ok := b.labels[f.target]
		if !ok {
			return nil, fmt.Errorf("isa: kernel %q: undefined label %q", b.name, f.target)
		}
		code[f.pc].Target = int32(tpc)
		if f.reconv != "" {
			rpc, ok := b.labels[f.reconv]
			if !ok {
				return nil, fmt.Errorf("isa: kernel %q: undefined reconvergence label %q",
					b.name, f.reconv)
			}
			code[f.pc].Reconv = int32(rpc)
		}
	}
	if code[len(code)-1].Op != OpExit {
		return nil, fmt.Errorf("isa: kernel %q must end with exit", b.name)
	}
	nregs := b.maxReg + 1
	if b.extra > nregs {
		nregs = b.extra
	}
	if nregs == 0 {
		nregs = 1
	}
	if nregs > MaxRegs {
		return nil, fmt.Errorf("isa: kernel %q uses %d registers, max %d", b.name, nregs, MaxRegs)
	}
	return &Kernel{Name: b.name, Code: code, NumRegs: nregs, SMemBytes: b.smem}, nil
}

// MustBuild is Build that panics on error; for use in package-level kernel
// constructors where a build failure is a programming bug.
func (b *Builder) MustBuild() *Kernel {
	k, err := b.Build()
	if err != nil {
		panic(err)
	}
	return k
}
