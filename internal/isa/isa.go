// Package isa defines the instruction set of the simulated GPU: a small
// SASS-like RISC ISA with per-thread integer/float ALU operations, special
// function unit (SFU) operations, global and shared load/store, PDOM-style
// divergent branches with explicit reconvergence points, CTA-wide barriers,
// and thread exit. Kernels are assembled with Builder, which resolves
// labels and computes the register footprint.
package isa

import (
	"fmt"
	"sync"
)

// Reg names a per-thread 32-bit architectural register, R0..R254.
// RZ always reads as zero and discards writes.
type Reg uint8

// RZ is the hardwired zero register.
const RZ Reg = 255

// MaxRegs is the number of addressable registers per thread (excluding RZ).
const MaxRegs = 255

// String renders the register in assembly form.
func (r Reg) String() string {
	if r == RZ {
		return "RZ"
	}
	return fmt.Sprintf("R%d", r)
}

// RegMask is a 256-bit register bitset: the scoreboard representation of
// outstanding writes and, pre-decoded on each instruction, the registers an
// instruction reads and writes. Keeping both sides as masks turns the
// per-issue hazard probe into two ANDs.
type RegMask [4]uint64

// Set adds register r to the mask.
func (m *RegMask) Set(r Reg) { m[r>>6] |= 1 << (r & 63) }

// Clear removes register r from the mask.
func (m *RegMask) Clear(r Reg) { m[r>>6] &^= 1 << (r & 63) }

// Has reports whether register r is in the mask.
func (m *RegMask) Has(r Reg) bool { return m[r>>6]&(1<<(r&63)) != 0 }

// Any reports whether the mask is non-empty.
func (m *RegMask) Any() bool { return m[0]|m[1]|m[2]|m[3] != 0 }

// Intersects reports whether the masks share a register.
func (m *RegMask) Intersects(o *RegMask) bool {
	return m[0]&o[0]|m[1]&o[1]|m[2]&o[2]|m[3]&o[3] != 0
}

// Opcode enumerates the instruction operations.
type Opcode uint8

// Instruction opcodes. ALU ops execute on the SP pipeline, transcendental
// ops on the SFU pipeline, and memory ops on the LSU.
const (
	OpNop     Opcode = iota
	OpMov            // Dst = SrcA (or Imm when UseImm)
	OpS2R            // Dst = special register selected by Imm
	OpLdParam        // Dst = kernel launch parameter Imm

	// Integer ALU.
	OpIAdd // Dst = SrcA + SrcB
	OpISub // Dst = SrcA - SrcB
	OpIMul // Dst = SrcA * SrcB
	OpIMad // Dst = SrcA * SrcB + SrcC
	OpIMin // Dst = min(int32(SrcA), int32(SrcB))
	OpIMax // Dst = max(int32(SrcA), int32(SrcB))
	OpAnd  // Dst = SrcA & SrcB
	OpOr   // Dst = SrcA | SrcB
	OpXor  // Dst = SrcA ^ SrcB
	OpShl  // Dst = SrcA << (SrcB & 31)
	OpShr  // Dst = SrcA >> (SrcB & 31), logical

	// Float ALU (IEEE-754 binary32 stored in the 32-bit registers).
	OpFAdd // Dst = SrcA + SrcB
	OpFMul // Dst = SrcA * SrcB
	OpFFma // Dst = SrcA * SrcB + SrcC

	// SFU (transcendental / long-latency compute).
	OpFRcp  // Dst = 1 / SrcA
	OpFSqrt // Dst = sqrt(SrcA)
	OpFSin  // Dst = sin(SrcA)
	OpFExp  // Dst = exp2(SrcA)

	// Comparison: Dst = 1 if cmp(SrcA, SrcB) else 0.
	OpSetp
	// Select: Dst = SrcC != 0 ? SrcA : SrcB.
	OpSelp

	// Memory. Address = SrcA + Imm (byte address). Loads write Dst;
	// stores read SrcC.
	OpLdGlobal
	OpStGlobal
	OpLdShared
	OpStShared
	// OpAtomAdd atomically adds SrcC to the global word at SrcA+Imm and
	// writes the old value to Dst (use RZ to discard it). The final
	// memory contents are order-independent; the returned old value is
	// not, so policy-comparing kernels should discard it.
	OpAtomAdd

	// Control flow.
	OpBra  // divergent branch: lanes with SrcA != 0 jump to Target; Reconv is the PDOM
	OpJmp  // uniform jump to Target
	OpBar  // CTA-wide barrier
	OpExit // thread exit

	opCount
)

var opNames = [...]string{
	OpNop: "nop", OpMov: "mov", OpS2R: "s2r", OpLdParam: "ldparam",
	OpIAdd: "iadd", OpISub: "isub", OpIMul: "imul", OpIMad: "imad",
	OpIMin: "imin", OpIMax: "imax",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpFAdd: "fadd", OpFMul: "fmul", OpFFma: "ffma",
	OpFRcp: "frcp", OpFSqrt: "fsqrt", OpFSin: "fsin", OpFExp: "fexp",
	OpSetp: "setp", OpSelp: "selp",
	OpLdGlobal: "ld.global", OpStGlobal: "st.global",
	OpLdShared: "ld.shared", OpStShared: "st.shared",
	OpAtomAdd: "atom.add",
	OpBra:     "bra", OpJmp: "jmp", OpBar: "bar.sync", OpExit: "exit",
}

// String returns the mnemonic of the opcode.
func (o Opcode) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// UnitClass groups opcodes by the execution unit that serves them.
type UnitClass uint8

// Execution unit classes.
const (
	UnitSP  UnitClass = iota // simple ALU pipeline
	UnitSFU                  // special function unit
	UnitMem                  // load/store unit
	UnitCtl                  // control: branches, barrier, exit (resolved at issue)
)

// Unit returns the execution unit class that serves the opcode.
func (o Opcode) Unit() UnitClass {
	switch o {
	case OpFRcp, OpFSqrt, OpFSin, OpFExp:
		return UnitSFU
	case OpLdGlobal, OpStGlobal, OpLdShared, OpStShared, OpAtomAdd:
		return UnitMem
	case OpBra, OpJmp, OpBar, OpExit:
		return UnitCtl
	default:
		return UnitSP
	}
}

// IsLoad reports whether the opcode reads memory into a register.
func (o Opcode) IsLoad() bool { return o == OpLdGlobal || o == OpLdShared }

// IsStore reports whether the opcode writes memory.
func (o Opcode) IsStore() bool { return o == OpStGlobal || o == OpStShared }

// IsGlobal reports whether the opcode accesses global memory.
func (o Opcode) IsGlobal() bool {
	return o == OpLdGlobal || o == OpStGlobal || o == OpAtomAdd
}

// IsAtomic reports whether the opcode is a read-modify-write.
func (o Opcode) IsAtomic() bool { return o == OpAtomAdd }

// HasDst reports whether the opcode writes a destination register.
func (o Opcode) HasDst() bool {
	switch o {
	case OpNop, OpStGlobal, OpStShared, OpBra, OpJmp, OpBar, OpExit:
		return false
	}
	return true
}

// CmpKind is the comparison selector carried in OpSetp's Imm field.
type CmpKind uint32

// Comparison kinds for OpSetp. The I-prefixed kinds compare as signed
// 32-bit integers; the F-prefixed kinds as binary32 floats.
const (
	CmpILT CmpKind = iota
	CmpILE
	CmpIEQ
	CmpINE
	CmpIGE
	CmpIGT
	CmpFLT
	CmpFGT
)

// Special enumerates the special registers readable with OpS2R.
type Special uint32

// Special register selectors.
const (
	SrTidX Special = iota
	SrTidY
	SrTidZ
	SrCTAIdX
	SrCTAIdY
	SrCTAIdZ
	SrNTidX // blockDim.x
	SrNTidY
	SrNTidZ
	SrNCTAIdX // gridDim.x
	SrNCTAIdY
	SrNCTAIdZ
	SrLaneID
	SrWarpID // warp index within the CTA
)

// Instr is one decoded instruction. Source operand B may be replaced by the
// immediate when UseImm is set. Memory instructions use Imm as a byte
// offset added to SrcA. Branches use Target (and Reconv for OpBra).
type Instr struct {
	Op     Opcode
	Dst    Reg
	SrcA   Reg
	SrcB   Reg
	SrcC   Reg
	Imm    uint32
	UseImm bool
	Target int32 // branch target PC
	Reconv int32 // reconvergence PC for OpBra

	// Pre-decoded issue metadata, filled by Decode (normally through
	// Kernel.EnsureDecoded at run setup). The scheduler's per-cycle hazard
	// probe reduces to mask intersections instead of re-deriving the
	// operand list; consumers must check Decoded and fall back to the
	// operand-walking path for hand-built instructions.
	SrcMask  RegMask   // registers read (deduplicated; RZ excluded)
	DstMask  RegMask   // register written (empty when none or RZ)
	HazMask  RegMask   // SrcMask | DstMask: the scoreboard probe set
	SrcList  [3]Reg    // registers read in operand order, duplicates kept
	NSrc     uint8     // live entries of SrcList
	ExecUnit UnitClass // cached Op.Unit()
	Decoded  bool
}

// Decode fills the pre-decoded issue metadata. SrcList preserves operand
// order and duplicates (a register read twice costs two operand-collector
// reads, which the register-file bank model charges for); the masks
// deduplicate, which is harmless for hazard detection.
func (in *Instr) Decode() {
	var buf [3]Reg
	srcs := in.SrcRegs(buf[:0])
	in.NSrc = uint8(copy(in.SrcList[:], srcs))
	in.SrcMask = RegMask{}
	for _, r := range srcs {
		in.SrcMask.Set(r)
	}
	in.DstMask = RegMask{}
	if in.Op.HasDst() && in.Dst != RZ {
		in.DstMask.Set(in.Dst)
	}
	in.HazMask = in.SrcMask
	for i, d := range in.DstMask {
		in.HazMask[i] |= d
	}
	in.ExecUnit = in.Op.Unit()
	in.Decoded = true
}

// Unit returns the execution unit class serving the instruction, from the
// pre-decoded cache when available.
func (in *Instr) Unit() UnitClass {
	if in.Decoded {
		return in.ExecUnit
	}
	return in.Op.Unit()
}

// SrcRegs appends the source registers the instruction reads to dst and
// returns the result. RZ is never reported (it has no hazards).
func (in *Instr) SrcRegs(dst []Reg) []Reg {
	add := func(r Reg) {
		if r != RZ {
			dst = append(dst, r)
		}
	}
	switch in.Op {
	case OpNop, OpS2R, OpLdParam, OpBar, OpExit, OpJmp:
		// no register sources
	case OpMov:
		if !in.UseImm {
			add(in.SrcA)
		}
	case OpBra:
		add(in.SrcA)
	case OpLdGlobal, OpLdShared:
		add(in.SrcA)
	case OpStGlobal, OpStShared, OpAtomAdd:
		add(in.SrcA)
		add(in.SrcC)
	case OpIMad, OpFFma, OpSelp:
		add(in.SrcA)
		if !in.UseImm {
			add(in.SrcB)
		}
		add(in.SrcC)
	case OpFRcp, OpFSqrt, OpFSin, OpFExp:
		add(in.SrcA)
	default: // two-source ALU
		add(in.SrcA)
		if !in.UseImm {
			add(in.SrcB)
		}
	}
	return dst
}

// String renders the instruction in a readable assembly-like form.
func (in Instr) String() string {
	switch in.Op {
	case OpNop, OpBar, OpExit:
		return in.Op.String()
	case OpJmp:
		return fmt.Sprintf("jmp %d", in.Target)
	case OpBra:
		return fmt.Sprintf("bra %s, %d (reconv %d)", in.SrcA, in.Target, in.Reconv)
	case OpS2R:
		return fmt.Sprintf("s2r %s, sr%d", in.Dst, in.Imm)
	case OpLdParam:
		return fmt.Sprintf("ldparam %s, p%d", in.Dst, in.Imm)
	case OpLdGlobal, OpLdShared:
		return fmt.Sprintf("%s %s, [%s+%d]", in.Op, in.Dst, in.SrcA, in.Imm)
	case OpStGlobal, OpStShared:
		return fmt.Sprintf("%s [%s+%d], %s", in.Op, in.SrcA, in.Imm, in.SrcC)
	case OpAtomAdd:
		return fmt.Sprintf("%s %s, [%s+%d], %s", in.Op, in.Dst, in.SrcA, in.Imm, in.SrcC)
	}
	if in.UseImm {
		return fmt.Sprintf("%s %s, %s, #%d", in.Op, in.Dst, in.SrcA, int32(in.Imm))
	}
	return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Dst, in.SrcA, in.SrcB)
}

// Dim3 is a CUDA-style three-component extent.
type Dim3 struct{ X, Y, Z int }

// Size returns the total element count of the extent.
func (d Dim3) Size() int { return d.X * d.Y * d.Z }

// String renders the extent as (x,y,z).
func (d Dim3) String() string { return fmt.Sprintf("(%d,%d,%d)", d.X, d.Y, d.Z) }

// Dim1 returns a one-dimensional extent of n.
func Dim1(n int) Dim3 { return Dim3{X: n, Y: 1, Z: 1} }

// Kernel is an assembled program plus its static resource footprint.
type Kernel struct {
	Name      string
	Code      []Instr
	NumRegs   int // architectural registers per thread
	SMemBytes int // static shared memory per CTA
}

// decodeMu serializes EnsureDecoded across concurrent simulations that
// share a kernel. The instruction fields are written at most once (the
// first EnsureDecoded); every later caller observes Decoded under the same
// lock, so lock-free readers inside a run that called EnsureDecoded first
// never race with a writer.
var decodeMu sync.Mutex

// EnsureDecoded pre-decodes every instruction's issue metadata in place.
// gpu.RunMulti calls it once per launch before simulation starts; it is
// idempotent and safe for kernels shared between concurrent runs.
func (k *Kernel) EnsureDecoded() {
	decodeMu.Lock()
	defer decodeMu.Unlock()
	for i := range k.Code {
		if !k.Code[i].Decoded {
			k.Code[i].Decode()
		}
	}
}

// Launch binds a kernel to a grid and its runtime parameters.
type Launch struct {
	Kernel   *Kernel
	GridDim  Dim3
	BlockDim Dim3
	Params   []uint32
}

// WarpsPerCTA returns the number of warps a CTA occupies for the given
// warp size, rounding the (possibly partial) last warp up.
func (l Launch) WarpsPerCTA(warpSize int) int {
	return (l.BlockDim.Size() + warpSize - 1) / warpSize
}

// Validate reports structural errors in the launch.
func (l Launch) Validate() error {
	if l.Kernel == nil {
		return fmt.Errorf("isa: launch has no kernel")
	}
	if len(l.Kernel.Code) == 0 {
		return fmt.Errorf("isa: kernel %q has no code", l.Kernel.Name)
	}
	if l.GridDim.Size() <= 0 || l.BlockDim.Size() <= 0 {
		return fmt.Errorf("isa: kernel %q launch dims %v x %v empty",
			l.Kernel.Name, l.GridDim, l.BlockDim)
	}
	if l.BlockDim.Size() > 1024 {
		return fmt.Errorf("isa: kernel %q blockDim %d exceeds 1024",
			l.Kernel.Name, l.BlockDim.Size())
	}
	return nil
}
