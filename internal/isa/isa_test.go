package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBuilderResolvesLabels(t *testing.T) {
	b := NewBuilder("loop")
	b.MovImm(0, 4)
	b.Label("top")
	b.IAddImm(0, 0, -1)
	b.SetpImm(1, CmpIGT, 0, 0)
	b.Bra(1, "top", "done")
	b.Label("done")
	b.Exit()
	k, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	bra := k.Code[3]
	if bra.Op != OpBra {
		t.Fatalf("code[3] = %v, want bra", bra.Op)
	}
	if bra.Target != 1 {
		t.Errorf("bra target = %d, want 1", bra.Target)
	}
	if bra.Reconv != 4 {
		t.Errorf("bra reconv = %d, want 4", bra.Reconv)
	}
	if k.NumRegs != 2 {
		t.Errorf("NumRegs = %d, want 2", k.NumRegs)
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("undefined label", func(t *testing.T) {
		b := NewBuilder("bad")
		b.Jmp("nowhere")
		b.Exit()
		if _, err := b.Build(); err == nil {
			t.Fatal("expected undefined-label error")
		}
	})
	t.Run("undefined reconv", func(t *testing.T) {
		b := NewBuilder("bad")
		b.Label("t")
		b.Bra(0, "t", "missing")
		b.Exit()
		if _, err := b.Build(); err == nil {
			t.Fatal("expected undefined-reconv error")
		}
	})
	t.Run("duplicate label", func(t *testing.T) {
		b := NewBuilder("bad")
		b.Label("x")
		b.Label("x")
		b.Exit()
		if _, err := b.Build(); err == nil {
			t.Fatal("expected duplicate-label error")
		}
	})
	t.Run("empty kernel", func(t *testing.T) {
		if _, err := NewBuilder("empty").Build(); err == nil {
			t.Fatal("expected empty-kernel error")
		}
	})
	t.Run("missing exit", func(t *testing.T) {
		b := NewBuilder("noexit")
		b.Nop()
		if _, err := b.Build(); err == nil {
			t.Fatal("expected missing-exit error")
		}
	})
}

func TestBuilderRegisterFootprint(t *testing.T) {
	b := NewBuilder("regs")
	b.MovImm(7, 1) // touches R7 -> 8 regs
	b.Exit()
	k, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if k.NumRegs != 8 {
		t.Errorf("NumRegs = %d, want 8", k.NumRegs)
	}

	b2 := NewBuilder("reserved").ReserveRegs(24)
	b2.MovImm(0, 1)
	b2.Exit()
	k2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if k2.NumRegs != 24 {
		t.Errorf("reserved NumRegs = %d, want 24", k2.NumRegs)
	}
}

func TestRZNotCountedInFootprint(t *testing.T) {
	b := NewBuilder("rz")
	b.Emit(Instr{Op: OpIAdd, Dst: 0, SrcA: RZ, SrcB: RZ})
	b.Exit()
	k, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if k.NumRegs != 1 {
		t.Errorf("NumRegs = %d, want 1 (RZ must not count)", k.NumRegs)
	}
}

func TestSrcRegs(t *testing.T) {
	cases := []struct {
		in   Instr
		want []Reg
	}{
		{Instr{Op: OpIAdd, Dst: 0, SrcA: 1, SrcB: 2}, []Reg{1, 2}},
		{Instr{Op: OpIAdd, Dst: 0, SrcA: 1, Imm: 5, UseImm: true}, []Reg{1}},
		{Instr{Op: OpIMad, Dst: 0, SrcA: 1, SrcB: 2, SrcC: 3}, []Reg{1, 2, 3}},
		{Instr{Op: OpStGlobal, SrcA: 4, SrcC: 5}, []Reg{4, 5}},
		{Instr{Op: OpLdGlobal, Dst: 0, SrcA: 4}, []Reg{4}},
		{Instr{Op: OpBra, SrcA: 6}, []Reg{6}},
		{Instr{Op: OpBar}, nil},
		{Instr{Op: OpExit}, nil},
		{Instr{Op: OpMov, Dst: 1, Imm: 9, UseImm: true}, nil},
		{Instr{Op: OpFSqrt, Dst: 1, SrcA: 2}, []Reg{2}},
		{Instr{Op: OpIAdd, Dst: 0, SrcA: RZ, SrcB: RZ}, nil},
	}
	for _, tc := range cases {
		got := tc.in.SrcRegs(nil)
		if len(got) != len(tc.want) {
			t.Errorf("%v SrcRegs = %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%v SrcRegs = %v, want %v", tc.in, got, tc.want)
				break
			}
		}
	}
}

func TestUnitClassification(t *testing.T) {
	if OpIAdd.Unit() != UnitSP || OpFFma.Unit() != UnitSP {
		t.Error("ALU ops must be UnitSP")
	}
	if OpFSin.Unit() != UnitSFU || OpFRcp.Unit() != UnitSFU {
		t.Error("transcendentals must be UnitSFU")
	}
	if OpLdGlobal.Unit() != UnitMem || OpStShared.Unit() != UnitMem {
		t.Error("memory ops must be UnitMem")
	}
	if OpBra.Unit() != UnitCtl || OpExit.Unit() != UnitCtl || OpBar.Unit() != UnitCtl {
		t.Error("control ops must be UnitCtl")
	}
}

func TestOpcodePredicates(t *testing.T) {
	if !OpLdGlobal.IsLoad() || !OpLdShared.IsLoad() || OpStGlobal.IsLoad() {
		t.Error("IsLoad misclassifies")
	}
	if !OpStGlobal.IsStore() || !OpStShared.IsStore() || OpLdGlobal.IsStore() {
		t.Error("IsStore misclassifies")
	}
	if !OpLdGlobal.IsGlobal() || !OpStGlobal.IsGlobal() || OpLdShared.IsGlobal() {
		t.Error("IsGlobal misclassifies")
	}
	if OpExit.HasDst() || OpStGlobal.HasDst() || OpBar.HasDst() {
		t.Error("HasDst misclassifies non-writers")
	}
	if !OpIAdd.HasDst() || !OpLdGlobal.HasDst() || !OpSetp.HasDst() {
		t.Error("HasDst misclassifies writers")
	}
}

func TestInstrString(t *testing.T) {
	in := Instr{Op: OpLdGlobal, Dst: 3, SrcA: 2, Imm: 16}
	if s := in.String(); !strings.Contains(s, "ld.global") || !strings.Contains(s, "R3") {
		t.Errorf("String() = %q", s)
	}
	neg4 := int32(-4)
	if s := (Instr{Op: OpIAdd, Dst: 1, SrcA: 2, Imm: uint32(neg4), UseImm: true}).String(); !strings.Contains(s, "#-4") {
		t.Errorf("immediate render = %q", s)
	}
	if Reg(3).String() != "R3" || RZ.String() != "RZ" {
		t.Error("register names wrong")
	}
}

func TestDim3(t *testing.T) {
	d := Dim3{X: 4, Y: 3, Z: 2}
	if d.Size() != 24 {
		t.Errorf("Size = %d, want 24", d.Size())
	}
	if Dim1(7) != (Dim3{X: 7, Y: 1, Z: 1}) {
		t.Error("Dim1 wrong")
	}
	if d.String() != "(4,3,2)" {
		t.Errorf("String = %q", d.String())
	}
}

func TestLaunchValidateAndWarps(t *testing.T) {
	k := NewBuilder("k").Nop().Exit().MustBuild()
	l := Launch{Kernel: k, GridDim: Dim1(4), BlockDim: Dim1(96)}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if w := l.WarpsPerCTA(32); w != 3 {
		t.Errorf("WarpsPerCTA = %d, want 3", w)
	}
	if w := (Launch{Kernel: k, BlockDim: Dim1(33)}).WarpsPerCTA(32); w != 2 {
		t.Errorf("partial warp rounds up: got %d, want 2", w)
	}

	bad := []Launch{
		{Kernel: nil, GridDim: Dim1(1), BlockDim: Dim1(32)},
		{Kernel: k, GridDim: Dim1(0), BlockDim: Dim1(32)},
		{Kernel: k, GridDim: Dim1(1), BlockDim: Dim1(2048)},
		{Kernel: &Kernel{Name: "empty"}, GridDim: Dim1(1), BlockDim: Dim1(32)},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("bad launch %d passed validation", i)
		}
	}
}

// Property: for any instruction, the register footprint derived by the
// builder covers every register SrcRegs reports plus the destination.
func TestFootprintCoversOperandsProperty(t *testing.T) {
	f := func(op uint8, d, a, bb, c uint8) bool {
		in := Instr{
			Op:   Opcode(op % uint8(opCount)),
			Dst:  Reg(d % 32),
			SrcA: Reg(a % 32),
			SrcB: Reg(bb % 32),
			SrcC: Reg(c % 32),
		}
		if in.Op == OpBra || in.Op == OpJmp {
			return true // need labels; covered elsewhere
		}
		b := NewBuilder("q")
		b.Emit(in)
		b.Exit()
		k, err := b.Build()
		if err != nil {
			return false
		}
		if in.Op.HasDst() && int(in.Dst) >= k.NumRegs {
			return false
		}
		for _, r := range in.SrcRegs(nil) {
			if int(r) >= k.NumRegs {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestBuilderHelperOpcodes checks that every convenience emitter produces
// the opcode and operand shape it promises.
func TestBuilderHelperOpcodes(t *testing.T) {
	b := NewBuilder("helpers")
	b.Mov(1, 2)
	b.MovImm(1, 7)
	b.S2R(1, SrLaneID)
	b.LdParam(1, 3)
	b.IAdd(1, 2, 3)
	b.IAddImm(1, 2, -9)
	b.ISub(1, 2, 3)
	b.IMul(1, 2, 3)
	b.IMulImm(1, 2, 5)
	b.IMad(1, 2, 3, 4)
	b.IMin(1, 2, 3)
	b.IMax(1, 2, 3)
	b.And(1, 2, 3)
	b.AndImm(1, 2, 0xFF)
	b.Or(1, 2, 3)
	b.Xor(1, 2, 3)
	b.ShlImm(1, 2, 4)
	b.ShrImm(1, 2, 4)
	b.FAdd(1, 2, 3)
	b.FMul(1, 2, 3)
	b.FFma(1, 2, 3, 4)
	b.FRcp(1, 2)
	b.FSqrt(1, 2)
	b.FSin(1, 2)
	b.FExp(1, 2)
	b.Setp(1, CmpILT, 2, 3)
	b.SetpImm(1, CmpIGE, 2, -1)
	b.Selp(1, 2, 3, 4)
	b.LdG(1, 2, 8)
	b.StG(2, 8, 3)
	b.LdS(1, 2, 8)
	b.StS(2, 8, 3)
	b.Nop()
	b.Bar()
	b.Exit()
	k, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	want := []Opcode{
		OpMov, OpMov, OpS2R, OpLdParam,
		OpIAdd, OpIAdd, OpISub, OpIMul, OpIMul, OpIMad, OpIMin, OpIMax,
		OpAnd, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpFAdd, OpFMul, OpFFma, OpFRcp, OpFSqrt, OpFSin, OpFExp,
		OpSetp, OpSetp, OpSelp,
		OpLdGlobal, OpStGlobal, OpLdShared, OpStShared,
		OpNop, OpBar, OpExit,
	}
	if len(k.Code) != len(want) {
		t.Fatalf("emitted %d instrs, want %d", len(k.Code), len(want))
	}
	for i, op := range want {
		if k.Code[i].Op != op {
			t.Errorf("instr %d = %v, want %v", i, k.Code[i].Op, op)
		}
	}
	// Immediate forms must set UseImm; register forms must not.
	if !k.Code[1].UseImm || k.Code[0].UseImm {
		t.Error("Mov/MovImm UseImm flags wrong")
	}
	if !k.Code[5].UseImm || int32(k.Code[5].Imm) != -9 {
		t.Error("IAddImm encoding wrong")
	}
	if !k.Code[26].UseImm || int32(k.Code[26].Imm) != -1 || CmpKind(k.Code[26].Target) != CmpIGE {
		t.Error("SetpImm encoding wrong")
	}
	if k.Code[25].UseImm || CmpKind(k.Code[25].Imm) != CmpILT {
		t.Error("Setp encoding wrong")
	}
}

func TestBuilderPC(t *testing.T) {
	b := NewBuilder("pc")
	if b.PC() != 0 {
		t.Fatal("fresh builder PC != 0")
	}
	b.Nop()
	if b.PC() != 1 {
		t.Fatalf("PC = %d after one emit", b.PC())
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild must panic on invalid kernel")
		}
	}()
	NewBuilder("bad").MustBuild() // empty kernel
}
