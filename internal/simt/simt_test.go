package simt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFullMask(t *testing.T) {
	if FullMask(0) != 0 {
		t.Error("FullMask(0) != 0")
	}
	if FullMask(32) != 0xFFFFFFFF {
		t.Errorf("FullMask(32) = %x", uint64(FullMask(32)))
	}
	if FullMask(64) != ^Mask(0) {
		t.Error("FullMask(64) must set all bits")
	}
	if FullMask(1) != 1 {
		t.Error("FullMask(1) != 1")
	}
}

func TestMaskOps(t *testing.T) {
	m := Mask(0b1011)
	if m.Count() != 3 {
		t.Errorf("Count = %d, want 3", m.Count())
	}
	if !m.Has(0) || !m.Has(1) || m.Has(2) || !m.Has(3) {
		t.Error("Has wrong")
	}
}

func TestUniformFlow(t *testing.T) {
	var s Stack
	s.Reset(32)
	pc, active, ok := s.Current()
	if !ok || pc != 0 || active != FullMask(32) {
		t.Fatalf("initial state pc=%d active=%x ok=%v", pc, uint64(active), ok)
	}
	s.Advance()
	if pc, _, _ := s.Current(); pc != 1 {
		t.Errorf("after advance pc = %d, want 1", pc)
	}
	s.Jump(10)
	if pc, _, _ := s.Current(); pc != 10 {
		t.Errorf("after jump pc = %d, want 10", pc)
	}
	if s.Depth() != 1 {
		t.Errorf("uniform flow must not grow stack, depth = %d", s.Depth())
	}
}

func TestDivergeAndReconverge(t *testing.T) {
	var s Stack
	s.Reset(4)
	// At pc 0: lanes 0,1 branch to 5; lanes 2,3 fall through to 1.
	// Reconverge at 8.
	s.Branch(0b0011, 5, 8)
	if s.Depth() != 3 {
		t.Fatalf("divergent branch depth = %d, want 3", s.Depth())
	}
	pc, active, _ := s.Current()
	if pc != 5 || active != 0b0011 {
		t.Fatalf("taken path first: pc=%d active=%b", pc, active)
	}
	// Run taken path 5,6,7 -> pops at 8.
	s.Advance()
	s.Advance()
	s.Advance()
	pc, active, _ = s.Current()
	if pc != 1 || active != 0b1100 {
		t.Fatalf("fall-through path: pc=%d active=%b", pc, active)
	}
	// Run fall-through to 8 -> pops, reconverged.
	for i := 0; i < 7; i++ {
		s.Advance()
	}
	pc, active, _ = s.Current()
	if pc != 8 || active != 0b1111 {
		t.Fatalf("reconverged: pc=%d active=%b, want pc=8 active=1111", pc, active)
	}
	if s.Depth() != 1 {
		t.Errorf("depth after reconvergence = %d, want 1", s.Depth())
	}
}

func TestUniformBranches(t *testing.T) {
	var s Stack
	s.Reset(4)
	s.Branch(0b1111, 7, 9) // all taken
	if pc, _, _ := s.Current(); pc != 7 {
		t.Errorf("uniform taken pc = %d, want 7", pc)
	}
	if s.Depth() != 1 {
		t.Errorf("uniform taken must not push, depth = %d", s.Depth())
	}
	s.Branch(0, 3, 9) // none taken
	if pc, _, _ := s.Current(); pc != 8 {
		t.Errorf("uniform not-taken pc = %d, want 8", pc)
	}
}

func TestBranchMasksOutsideActiveIgnored(t *testing.T) {
	var s Stack
	s.Reset(2) // lanes 0,1
	s.Branch(0b1110, 5, 9)
	// Lane bits 2,3 are not part of the warp; only lane 1 diverges.
	pc, active, _ := s.Current()
	if pc != 5 || active != 0b0010 {
		t.Fatalf("taken path pc=%d active=%b", pc, active)
	}
}

func TestDivergentExit(t *testing.T) {
	var s Stack
	s.Reset(4)
	s.Branch(0b0011, 5, 8) // lanes 0,1 at pc 5
	_, active, _ := s.Current()
	s.Exit(active) // taken lanes exit inside the branch
	pc, active, ok := s.Current()
	if !ok || pc != 1 || active != 0b1100 {
		t.Fatalf("after divergent exit: pc=%d active=%b ok=%v", pc, active, ok)
	}
	// Remaining lanes run to reconv then to completion.
	for i := 0; i < 7; i++ {
		s.Advance()
	}
	pc, active, _ = s.Current()
	if pc != 8 || active != 0b1100 {
		t.Fatalf("post-reconv pc=%d active=%b", pc, active)
	}
	s.Exit(active)
	if !s.Finished() {
		t.Error("all lanes exited but warp not finished")
	}
	if s.Exited() != 0b1111 {
		t.Errorf("exited mask = %b", s.Exited())
	}
}

func TestNestedDivergence(t *testing.T) {
	var s Stack
	s.Reset(8)
	s.Branch(0x0F, 10, 30) // outer: lanes 0-3 to 10, 4-7 to 1
	// taken path (lanes 0-3) diverges again at pc 10
	s.Branch(0x03, 20, 25)
	pc, active, _ := s.Current()
	if pc != 20 || active != 0x03 {
		t.Fatalf("inner taken pc=%d active=%x", pc, active)
	}
	// run inner taken 20..24 -> pop to inner fall-through at 11
	for pc != 11 {
		s.Advance()
		pc, active, _ = s.Current()
	}
	if active != 0x0C {
		t.Fatalf("inner fall-through active=%x", active)
	}
	// run 11..24 -> pop to outer taken reconv entry? inner reconv 25
	for pc != 25 {
		s.Advance()
		pc, active, _ = s.Current()
	}
	if active != 0x0F {
		t.Fatalf("inner reconverged active=%x, want 0F", active)
	}
	// 25..29 -> outer fall-through at 1
	for pc != 1 {
		s.Advance()
		pc, active, _ = s.Current()
	}
	if active != 0xF0 {
		t.Fatalf("outer fall-through active=%x", active)
	}
	for pc != 30 {
		s.Advance()
		pc, active, _ = s.Current()
	}
	if active != 0xFF || s.Depth() != 1 {
		t.Fatalf("fully reconverged active=%x depth=%d", active, s.Depth())
	}
}

func TestSnapshotRestore(t *testing.T) {
	var s Stack
	s.Reset(8)
	s.Branch(0x0F, 10, 30)
	s.Exit(0x01)
	snap := s.Snapshot()

	// Mutate the original.
	s.Advance()
	s.Exit(0x02)

	var r Stack
	r.Reset(8)
	r.Restore(snap)
	pc, active, _ := r.Current()
	if pc != 10 || active != 0x0E {
		t.Fatalf("restored pc=%d active=%x", pc, active)
	}
	if r.Exited() != 0x01 {
		t.Errorf("restored exited = %x", r.Exited())
	}
	// Snapshot must be independent of later mutation.
	s.Exit(0xFF)
	if pc, _, _ := r.Current(); pc != 10 {
		t.Error("snapshot aliased live stack")
	}
}

func TestFootprintBytes(t *testing.T) {
	var s Stack
	s.Reset(32)
	if got := s.FootprintBytes(); got != 12+8 {
		t.Errorf("footprint = %d, want 20", got)
	}
	s.Branch(1, 5, 9)
	if got := s.FootprintBytes(); got != 3*12+8 {
		t.Errorf("diverged footprint = %d, want 44", got)
	}
}

func TestStringRenders(t *testing.T) {
	var s Stack
	s.Reset(2)
	if s.String() == "" {
		t.Error("String empty")
	}
}

// Property: under arbitrary branch/advance/exit sequences, lanes are never
// lost — every lane is either live in some entry or exited.
func TestNoLaneLossProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Stack
		n := 1 + rng.Intn(32)
		s.Reset(n)
		full := FullMask(n)
		for i := 0; i < 200 && !s.Finished(); i++ {
			if s.LiveLanes()|s.exited != full {
				return false
			}
			pc, active, ok := s.Current()
			if !ok {
				break
			}
			if active == 0 {
				return false // Current must never return an empty mask
			}
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4:
				s.Advance()
			case 5, 6:
				taken := Mask(rng.Uint64()) & active
				reconv := pc + 2 + int32(rng.Intn(5))
				target := pc + 1 + int32(rng.Intn(int(reconv-pc)))
				s.Branch(taken, target, reconv)
			case 7:
				s.Jump(pc + int32(rng.Intn(3)))
			case 8:
				s.Exit(active)
			case 9:
				// exit a random subset of active lanes
				s.Exit(Mask(rng.Uint64()) & active)
			}
			if s.Depth() > 2*64 {
				return false // stack must stay bounded by nesting
			}
		}
		return s.LiveLanes()|s.exited == full
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: a snapshot taken at any point restores to an identical
// observable state (pc, active mask, exited mask, depth).
func TestSnapshotFidelityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Stack
		n := 1 + rng.Intn(32)
		s.Reset(n)
		for i := 0; i < 50 && !s.Finished(); i++ {
			pc, active, ok := s.Current()
			if !ok {
				break
			}
			if rng.Intn(3) == 0 {
				s.Branch(Mask(rng.Uint64())&active, pc+1, pc+3)
			} else {
				s.Advance()
			}
		}
		snap := s.Snapshot()
		var r Stack
		r.Restore(snap)
		p1, a1, ok1 := s.Current()
		p2, a2, ok2 := r.Current()
		return p1 == p2 && a1 == a2 && ok1 == ok2 &&
			s.Exited() == r.Exited() && s.Depth() == r.Depth()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
