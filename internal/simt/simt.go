// Package simt implements the SIMT reconvergence stack that tracks control
// flow divergence within a warp. The stack follows the classic
// immediate-post-dominator (PDOM) scheme: a divergent branch pushes entries
// for the taken and fall-through paths below a reconvergence entry; a path
// pops when its PC reaches its reconvergence PC. Per-lane exit is handled
// by an exited-lane mask maintained alongside the stack.
//
// The size of this stack is exactly the scheduling structure whose scarcity
// motivates the Virtual Thread architecture: each warp slot owns one stack,
// and an inactive CTA's stacks are what VT saves into the context buffer.
package simt

import (
	"fmt"
	"math/bits"
)

// Mask is a set of lanes within a warp, one bit per lane (up to 64 lanes).
type Mask uint64

// FullMask returns the mask with the low n lanes set.
func FullMask(n int) Mask {
	if n >= 64 {
		return ^Mask(0)
	}
	return Mask(1)<<uint(n) - 1
}

// Count returns the number of lanes in the mask.
func (m Mask) Count() int { return bits.OnesCount64(uint64(m)) }

// Has reports whether lane i is in the mask.
func (m Mask) Has(i int) bool { return m>>uint(i)&1 != 0 }

// Entry is one reconvergence stack entry: the lanes executing the path, the
// path's next PC, and the PC at which the path rejoins its parent.
type Entry struct {
	PC     int32
	Reconv int32 // -1 for the top-level entry
	Mask   Mask
}

// Stack is a warp's SIMT reconvergence stack. The active entry is the last
// element. The zero value is an empty (finished) stack; use Reset to start
// a warp.
type Stack struct {
	entries []Entry
	exited  Mask
}

// Reset initializes the stack for a warp of n lanes starting at PC 0.
func (s *Stack) Reset(n int) {
	s.entries = s.entries[:0]
	s.entries = append(s.entries, Entry{PC: 0, Reconv: -1, Mask: FullMask(n)})
	s.exited = 0
}

// Depth returns the number of stack entries.
func (s *Stack) Depth() int { return len(s.entries) }

// Exited returns the mask of lanes that have executed exit.
func (s *Stack) Exited() Mask { return s.exited }

// Finished reports whether the warp has no lanes left to run.
func (s *Stack) Finished() bool { return len(s.entries) == 0 }

// top returns the active entry, popping entries whose live lanes are empty
// (all exited). Returns nil when the warp is finished.
func (s *Stack) top() *Entry {
	for len(s.entries) > 0 {
		e := &s.entries[len(s.entries)-1]
		if e.Mask&^s.exited != 0 {
			return e
		}
		s.entries = s.entries[:len(s.entries)-1]
	}
	return nil
}

// Current returns the PC and live lane mask the warp will execute next.
// ok is false when the warp has finished.
func (s *Stack) Current() (pc int32, active Mask, ok bool) {
	e := s.top()
	if e == nil {
		return 0, 0, false
	}
	return e.PC, e.Mask &^ s.exited, true
}

// Advance moves the active path past a non-control instruction, popping at
// the reconvergence point if reached.
func (s *Stack) Advance() {
	e := s.top()
	if e == nil {
		return
	}
	e.PC++
	s.popAtReconv()
}

// Jump redirects the active path to target (a uniform jump).
func (s *Stack) Jump(target int32) {
	e := s.top()
	if e == nil {
		return
	}
	e.PC = target
	s.popAtReconv()
}

// Branch applies a possibly-divergent conditional branch executed at the
// active entry: lanes in taken jump to target, the rest fall through to the
// next PC; all lanes reconverge at reconv. taken must be a subset of the
// current active mask.
func (s *Stack) Branch(taken Mask, target, reconv int32) {
	e := s.top()
	if e == nil {
		return
	}
	active := e.Mask &^ s.exited
	taken &= active
	notTaken := active &^ taken
	fallPC := e.PC + 1

	switch {
	case taken == 0: // uniform not-taken
		e.PC = fallPC
	case notTaken == 0: // uniform taken
		e.PC = target
	default: // divergent: current entry becomes the reconvergence entry
		e.PC = reconv
		// Execute the fall-through path first, then the taken path
		// (taken on top runs first; order is a policy choice and does
		// not affect correctness).
		s.entries = append(s.entries,
			Entry{PC: fallPC, Reconv: reconv, Mask: notTaken},
			Entry{PC: target, Reconv: reconv, Mask: taken},
		)
	}
	s.popAtReconv()
}

// Exit retires the given lanes. Entries whose live lanes all exited are
// popped lazily by top().
func (s *Stack) Exit(lanes Mask) {
	s.exited |= lanes
	s.popAtReconv()
}

// popAtReconv pops entries whose PC has reached their reconvergence PC,
// merging control back into the parent entry. Multiple levels can pop when
// nested paths share a reconvergence point.
func (s *Stack) popAtReconv() {
	for {
		e := s.top()
		if e == nil || e.Reconv < 0 || e.PC != e.Reconv {
			return
		}
		s.entries = s.entries[:len(s.entries)-1]
	}
}

// LiveLanes returns the union of live (non-exited) lanes across all entries.
func (s *Stack) LiveLanes() Mask {
	var m Mask
	for _, e := range s.entries {
		m |= e.Mask
	}
	return m &^ s.exited
}

// Snapshot returns a deep copy of the stack, used by the Virtual Thread
// context buffer to save a warp's scheduling state.
func (s *Stack) Snapshot() Stack {
	cp := Stack{exited: s.exited}
	cp.entries = append([]Entry(nil), s.entries...)
	return cp
}

// Restore replaces the stack contents with a previously taken snapshot.
func (s *Stack) Restore(snap Stack) {
	s.entries = append(s.entries[:0], snap.entries...)
	s.exited = snap.exited
}

// FootprintBytes returns the context-buffer bytes needed to save this
// stack: 12 bytes per entry (PC, reconv PC, mask word) plus the exited
// mask. Used to account VT hardware cost.
func (s *Stack) FootprintBytes() int { return 12*len(s.entries) + 8 }

// Entries returns a copy of the stack entries, bottom first. Together
// with Exited it is the stack's complete serializable state.
func (s *Stack) Entries() []Entry {
	return append([]Entry(nil), s.entries...)
}

// SetState replaces the stack contents from serialized state (the inverse
// of Entries/Exited). The entries slice is copied.
func (s *Stack) SetState(entries []Entry, exited Mask) {
	s.entries = append(s.entries[:0], entries...)
	s.exited = exited
}

// String renders the stack for debugging, top entry last.
func (s *Stack) String() string {
	out := "["
	for i, e := range s.entries {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("{pc=%d rpc=%d mask=%x}", e.PC, e.Reconv, uint64(e.Mask))
	}
	return out + fmt.Sprintf("] exited=%x", uint64(s.exited))
}
