package mem

import (
	"repro/internal/config"
	"repro/internal/event"
)

// Stats aggregates memory-system counters for one simulation.
type Stats struct {
	L1Accesses    int64 // coalesced transactions presented to an L1
	L1Hits        int64
	L1MSHRMerges  int64 // secondary misses merged into an in-flight line
	L1Rejects     int64 // transactions rejected because L1 MSHRs were full
	L2Accesses    int64
	L2Hits        int64
	DRAMReads     int64 // line fills from DRAM
	DRAMWrites    int64 // line writes to DRAM
	DRAMBusy      int64 // cycles any partition's DRAM data bus was busy
	DRAMRowHits   int64 // accesses hitting an open row (bank model only)
	DRAMRowMisses int64 // accesses paying precharge+activate (bank model only)
}

// RowHitRate returns row-buffer hits / accesses under the bank model, or 0
// when the flat channel model is in use.
func (s *Stats) RowHitRate() float64 {
	total := s.DRAMRowHits + s.DRAMRowMisses
	if total == 0 {
		return 0
	}
	return float64(s.DRAMRowHits) / float64(total)
}

// L1HitRate returns hits / accesses, or 0 when idle.
func (s *Stats) L1HitRate() float64 {
	if s.L1Accesses == 0 {
		return 0
	}
	return float64(s.L1Hits) / float64(s.L1Accesses)
}

// L2HitRate returns hits / accesses, or 0 when idle.
func (s *Stats) L2HitRate() float64 {
	if s.L2Accesses == 0 {
		return 0
	}
	return float64(s.L2Hits) / float64(s.L2Accesses)
}

// System is the timing model of the global-memory path: per-SM L1 caches in
// front of address-interleaved memory partitions, each with an L2 slice and
// a DRAM channel. All latencies are in core cycles. Loads call done when
// their line arrives at the SM; stores are fire-and-forget but consume
// bandwidth.
type System struct {
	cfg      *config.GPUConfig
	ev       *event.Queue
	l1s      []*l1Cache
	parts    []*partition
	lineBits uint // log2 of the partition interleave granularity

	// Stats holds the memory counters; read after the simulation.
	Stats Stats
}

// NewSystem builds the memory system for the configuration.
func NewSystem(cfg *config.GPUConfig, ev *event.Queue) *System {
	s := &System{cfg: cfg, ev: ev}
	for 1<<s.lineBits < cfg.L2.LineSize {
		s.lineBits++
	}
	for i := 0; i < cfg.NumSMs; i++ {
		s.l1s = append(s.l1s, newL1(cfg, s))
	}
	for i := 0; i < cfg.NumMemPartitions; i++ {
		s.parts = append(s.parts, newPartition(cfg, s))
	}
	return s
}

// BindLane reroutes the given SM's L1 event traffic through the supplied
// scheduler (the SM's event lane). During the parallel engine's step
// phase the lane buffers without locking; everything the L1 schedules is
// committed to the shared queue in SM-index order afterwards.
func (s *System) BindLane(sm int, sched event.Scheduler) { s.l1s[sm].sched = sched }

// ShardStats gives every L1 a private counter shard so concurrent SM
// steps never write the shared Stats. Counters are additive, so merge
// order cannot change the totals; CollectStats folds them back.
func (s *System) ShardStats() {
	for _, c := range s.l1s {
		if c.stats == &s.Stats {
			c.stats = &Stats{}
		}
	}
}

// CollectStats folds any per-L1 shards into Stats and returns the totals.
// Safe to call in either mode and more than once.
func (s *System) CollectStats() Stats {
	for _, c := range s.l1s {
		if c.stats != &s.Stats {
			s.Stats.L1Accesses += c.stats.L1Accesses
			s.Stats.L1Hits += c.stats.L1Hits
			s.Stats.L1MSHRMerges += c.stats.L1MSHRMerges
			s.Stats.L1Rejects += c.stats.L1Rejects
			*c.stats = Stats{}
		}
	}
	return s.Stats
}

// PeekStats returns the current counter totals — shared Stats plus any
// per-L1 shards — without folding or zeroing anything, so live observers
// (telemetry windows) can read mid-run deltas without perturbing the
// final CollectStats accounting. Call only between engine cycles: shard
// counters are written by SM step goroutines during the step phase.
func (s *System) PeekStats() Stats {
	st := s.Stats
	for _, c := range s.l1s {
		if c.stats != &s.Stats {
			st.L1Accesses += c.stats.L1Accesses
			st.L1Hits += c.stats.L1Hits
			st.L1MSHRMerges += c.stats.L1MSHRMerges
			st.L1Rejects += c.stats.L1Rejects
		}
	}
	return st
}

// L1ShardStats returns SM sm's private L1 counter shard, or a zero Stats
// when sharding is off (see ShardStats). Like PeekStats it is a pure
// read for use between engine cycles.
func (s *System) L1ShardStats(sm int) Stats {
	if c := s.l1s[sm]; c.stats != &s.Stats {
		return *c.stats
	}
	return Stats{}
}

// AccessGlobal presents one coalesced line transaction from an SM. done
// must be a valid Completion for reads (fired when the line arrives at
// the SM) and the zero Completion for writes. It reports false when the
// transaction was rejected (L1 MSHRs full) and must be retried.
func (s *System) AccessGlobal(sm int, lineAddr uint32, write bool, done event.Completion) bool {
	return s.l1s[sm].access(lineAddr, write, done)
}

// OutstandingMisses returns the number of distinct lines in flight for an
// SM's L1; used by tests and the occupancy report.
func (s *System) OutstandingMisses(sm int) int { return s.l1s[sm].mshr.size() }

func (s *System) partitionOf(lineAddr uint32) *partition {
	idx := (lineAddr >> s.lineBits) % uint32(len(s.parts)) // line-interleaved
	return s.parts[idx]
}

// l1Cache is one SM's private L1 data cache: write-through, write-evict
// (no write-allocate), with MSHR merging, as in Fermi. Its issue-side
// scheduling goes through sched (the shared queue by default, the owning
// SM's event lane under the parallel engine) and its counters through
// stats (the shared Stats by default, a private shard under the parallel
// engine); response-side callbacks always run on the shared queue's
// single-threaded event drain, so they use sys.ev directly.
type l1Cache struct {
	sys   *System
	cfg   config.CacheConfig
	tags  *TagArray
	mshr  *mshrTable
	sched event.Scheduler
	stats *Stats
}

func newL1(cfg *config.GPUConfig, sys *System) *l1Cache {
	c := &l1Cache{sys: sys, cfg: cfg.L1D, mshr: newMSHRTable(cfg.L1D.MSHRs),
		sched: sys.ev, stats: &sys.Stats}
	if cfg.L1D.Enabled {
		c.tags = NewTagArray(cfg.L1D.Sets, cfg.L1D.Ways, cfg.L1D.LineSize)
	}
	return c
}

// l1Cache event kinds (operand a = line address throughout).
const (
	evL1FwdRead  uint8 = iota // interconnect delay elapsed: forward a read miss to its partition
	evL1FwdWrite              // interconnect delay elapsed: forward a write-through
	evL1Resp                  // line available at the partition port: start the return trip
	evL1Fill                  // line arrived back at the SM: fill tags, fire MSHR completions
)

// HandleEvent dispatches the L1's typed events. Forwarding events were
// scheduled through c.sched (possibly an SM lane); response-side events
// always ride the shared queue (see the type comment).
func (c *l1Cache) HandleEvent(kind uint8, a, b uint32) {
	sys := c.sys
	switch kind {
	case evL1FwdRead:
		sys.partitionOf(a).access(a, false, event.Completion{H: c, Kind: evL1Resp, A: a})
	case evL1FwdWrite:
		sys.partitionOf(a).access(a, true, event.Completion{})
	case evL1Resp:
		sys.ev.PostAfter(int64(sys.cfg.InterconnectDelay), c, evL1Fill, a, 0)
	case evL1Fill:
		if c.tags != nil {
			c.tags.Fill(a)
		}
		c.mshr.fireCompleted(a)
	}
}

func (c *l1Cache) access(lineAddr uint32, write bool, done event.Completion) bool {
	sys := c.sys
	if write {
		c.stats.L1Accesses++
		if c.tags != nil {
			c.tags.Invalidate(lineAddr) // write-evict
		}
		// Write-through: consume the downstream path; nothing waits.
		c.sched.PostAfter(int64(sys.cfg.InterconnectDelay), c, evL1FwdWrite, lineAddr, 0)
		return true
	}

	c.stats.L1Accesses++
	if c.tags != nil && c.tags.Probe(lineAddr) {
		c.stats.L1Hits++
		c.sched.PostAfter(int64(c.cfg.Latency), done.H, done.Kind, done.A, done.B)
		return true
	}
	primary, full := c.mshr.add(lineAddr, done)
	if full {
		c.stats.L1Rejects++
		c.stats.L1Accesses-- // rejected transactions retry; count once
		return false
	}
	if !primary {
		c.stats.L1MSHRMerges++
		return true
	}
	c.sched.PostAfter(int64(sys.cfg.InterconnectDelay), c, evL1FwdRead, lineAddr, 0)
	return true
}

// dramReq is one line transaction queued at a partition's DRAM controller.
type dramReq struct {
	line   uint32
	write  bool
	onDone event.Completion // fired when the data is available; zero for writes
}

// partition is one memory partition: an L2 slice with MSHR merging in
// front of an FR-FCFS DRAM controller. The controller queues transactions
// and each bus slot serves, among requests whose bank is free, the oldest
// row-buffer hit — falling back to the oldest request — which is what lets
// high thread-level parallelism coexist with row locality on real GPUs.
type partition struct {
	sys      *System
	cfg      *config.GPUConfig
	tags     *TagArray
	mshr     *mshrTable
	l2Free   int64 // next cycle the L2 port is free
	dramFree int64 // next cycle the DRAM data bus is free

	queue    []dramReq
	bankFree []int64  // next cycle each bank can start a new access
	openRow  []uint32 // currently open row per bank (+1; 0 = none)
	rowBits  uint     // log2(DRAMRowBytes)
	pumpAt   int64    // cycle of the furthest scheduled pump, -1 if none
}

func newPartition(cfg *config.GPUConfig, sys *System) *partition {
	p := &partition{sys: sys, cfg: cfg, pumpAt: -1}
	if cfg.L2.Enabled {
		p.tags = NewTagArray(cfg.L2.Sets, cfg.L2.Ways, cfg.L2.LineSize)
	}
	p.mshr = newMSHRTable(0) // partition MSHRs: merged, unbounded (see DESIGN)
	banks := cfg.DRAMBanks
	if banks <= 0 {
		banks = 1 // flat model: one bank, no row penalty
	}
	p.bankFree = make([]int64, banks)
	p.openRow = make([]uint32, banks)
	rowBytes := cfg.DRAMRowBytes
	if rowBytes <= 0 {
		rowBytes = 2048
	}
	for 1<<p.rowBits < rowBytes {
		p.rowBits++
	}
	return p
}

func (p *partition) rowPenalty() int64 {
	if p.cfg.DRAMBanks <= 0 {
		return 0
	}
	return int64(p.cfg.DRAMRowPenalty)
}

// partition event kinds (operand a = line address; unused for pump).
const (
	evPartEnqRead  uint8 = iota // L2 latency elapsed on a read miss: queue the DRAM fill
	evPartEnqWrite              // L2 latency elapsed on a write: queue the DRAM write
	evPartFill                  // DRAM data arrived: fill L2, fire MSHR completions
	evPartPump                  // scheduled controller re-arbitration
)

// HandleEvent dispatches the partition's typed events. Partitions are
// shared across SMs, so all their events ride the shared queue.
func (p *partition) HandleEvent(kind uint8, a, b uint32) {
	switch kind {
	case evPartEnqRead:
		p.enqueueDRAM(a, false, event.Completion{H: p, Kind: evPartFill, A: a})
	case evPartEnqWrite:
		p.enqueueDRAM(a, true, event.Completion{})
	case evPartFill:
		if p.tags != nil {
			p.tags.Fill(a)
		}
		p.mshr.fireCompleted(a)
	case evPartPump:
		if p.pumpAt == p.sys.ev.Now() {
			p.pumpAt = -1
		}
		p.pump()
	}
}

// access handles one transaction arriving at the partition. respond (reads
// only) is fired when the line is available at the partition's port.
func (p *partition) access(lineAddr uint32, write bool, respond event.Completion) {
	sys := p.sys
	now := sys.ev.Now()

	// One L2 port access per cycle.
	start := now
	if p.l2Free > start {
		start = p.l2Free
	}
	p.l2Free = start + 1

	if write {
		sys.Stats.L2Accesses++
		// Write-through, no-allocate at L2 as well: the write occupies
		// the DRAM channel but nothing waits for it.
		sys.ev.Post(start+int64(p.cfg.L2.Latency), p, evPartEnqWrite, lineAddr, 0)
		return
	}

	sys.Stats.L2Accesses++
	if p.tags != nil && p.tags.Probe(lineAddr) {
		sys.Stats.L2Hits++
		sys.ev.PostC(start+int64(p.cfg.L2.Latency), respond)
		return
	}
	primary, _ := p.mshr.add(lineAddr, respond)
	if !primary {
		return
	}
	sys.ev.Post(start+int64(p.cfg.L2.Latency), p, evPartEnqRead, lineAddr, 0)
}

// enqueueDRAM adds a transaction to the FR-FCFS controller queue.
func (p *partition) enqueueDRAM(line uint32, write bool, onDone event.Completion) {
	if write {
		p.sys.Stats.DRAMWrites++
	} else {
		p.sys.Stats.DRAMReads++
	}
	p.queue = append(p.queue, dramReq{line: line, write: write, onDone: onDone})
	p.pump()
}

// schedulePump arranges for the controller to reconsider the queue at
// cycle t (deduplicating same-cycle schedules).
func (p *partition) schedulePump(t int64) {
	if t <= p.sys.ev.Now() || t == p.pumpAt {
		return
	}
	p.pumpAt = t
	p.sys.ev.Post(t, p, evPartPump, 0, 0)
}

// pump issues at most one transaction per data-bus slot using FR-FCFS
// arbitration: among requests whose bank is available, the oldest
// row-buffer hit wins, else the oldest request. A row miss occupies its
// bank for the precharge+activate penalty but releases the data bus after
// the burst, so activations in other banks overlap transfers.
func (p *partition) pump() {
	now := p.sys.ev.Now()
	if len(p.queue) == 0 {
		return
	}
	if now < p.dramFree {
		p.schedulePump(p.dramFree)
		return
	}

	best := -1
	bestHit := false
	var minBankFree int64 = -1
	for i, r := range p.queue {
		bank := int(r.line>>p.rowBits) % len(p.bankFree)
		if p.bankFree[bank] > now {
			if minBankFree < 0 || p.bankFree[bank] < minBankFree {
				minBankFree = p.bankFree[bank]
			}
			continue
		}
		hit := p.openRow[bank] == r.line>>p.rowBits+1
		if hit {
			best, bestHit = i, true
			break // oldest row hit wins
		}
		if best < 0 {
			best = i
		}
	}
	if best < 0 {
		if minBankFree > now {
			p.schedulePump(minBankFree)
		}
		return
	}

	r := p.queue[best]
	p.queue = append(p.queue[:best], p.queue[best+1:]...)
	st := &p.sys.Stats
	bank := int(r.line>>p.rowBits) % len(p.bankFree)
	svc := int64(p.cfg.DRAMServiceCycles)
	if p.cfg.DRAMBanks > 0 {
		if bestHit {
			st.DRAMRowHits++
		} else {
			svc += p.rowPenalty()
			p.openRow[bank] = r.line>>p.rowBits + 1
			st.DRAMRowMisses++
		}
	}
	p.bankFree[bank] = now + svc
	p.dramFree = now + int64(p.cfg.DRAMServiceCycles)
	st.DRAMBusy += int64(p.cfg.DRAMServiceCycles)
	if r.onDone.Valid() {
		p.sys.ev.PostC(now+svc+int64(p.cfg.DRAMLatency), r.onDone)
	}
	p.schedulePump(p.dramFree)
}
