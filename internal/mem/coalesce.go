package mem

import (
	"math/bits"

	"repro/internal/simt"
)

// CoalesceLines computes the distinct memory lines touched by the active
// lanes of a warp access, in first-touch order. addrs holds the per-lane
// byte addresses (indexed by lane); lineSize must be a power of two. This
// models the hardware coalescer: one transaction per distinct line segment.
func CoalesceLines(addrs []uint32, active simt.Mask, lineSize int) []uint32 {
	return CoalesceLinesInto(nil, addrs, active, lineSize)
}

// CoalesceLinesInto is CoalesceLines appending into dst (typically a
// recycled buffer sliced to [:0]), so steady-state callers allocate
// nothing.
func CoalesceLinesInto(dst []uint32, addrs []uint32, active simt.Mask, lineSize int) []uint32 {
	mask := ^uint32(lineSize - 1)
	lines := dst
	for lane := 0; lane < len(addrs); lane++ {
		if !active.Has(lane) {
			continue
		}
		la := addrs[lane] & mask
		seen := false
		for _, l := range lines {
			if l == la {
				seen = true
				break
			}
		}
		if !seen {
			lines = append(lines, la)
		}
	}
	return lines
}

// BankConflictFactor returns the shared-memory serialization factor for a
// warp access: the maximum number of active lanes whose word addresses fall
// in the same bank, with same-address lanes counted once (broadcast).
// numBanks must be a power of two. A conflict-free access returns 1; an
// access by zero lanes returns 0.
func BankConflictFactor(addrs []uint32, active simt.Mask, numBanks int) int {
	if numBanks <= 0 {
		return 1
	}
	if numBanks <= 64 && len(addrs) <= 64 {
		return bankConflictSmall(addrs, active, numBanks)
	}
	banks := make(map[uint32][]uint32, numBanks)
	max := 0
	any := false
	for lane := 0; lane < len(addrs); lane++ {
		if !active.Has(lane) {
			continue
		}
		any = true
		word := addrs[lane] >> 2
		bank := word & uint32(numBanks-1)
		dup := false
		for _, a := range banks[bank] {
			if a == word {
				dup = true // broadcast: same word in same bank is free
				break
			}
		}
		if !dup {
			banks[bank] = append(banks[bank], word)
			if len(banks[bank]) > max {
				max = len(banks[bank])
			}
		}
	}
	if !any {
		return 0
	}
	if max == 0 {
		return 1
	}
	return max
}

// bankConflictSmall is the allocation-free path for hardware-sized warps
// and bank counts: stack arrays replace the per-call bank map. Duplicate
// word addresses are deduplicated by scanning earlier lanes — the same
// word always maps to the same bank, so word equality is exactly the
// broadcast condition.
func bankConflictSmall(addrs []uint32, active simt.Mask, numBanks int) int {
	// Distinct words chain per bank (head/next hold index+1, 0 = end), so
	// the broadcast check scans only same-bank words — typically one or two
	// — instead of every earlier active lane.
	var counts [64]int32
	var words [64]uint32
	var head, next [64]int16
	n := int16(0)
	max := 0
	any := false
	m := active & simt.FullMask(len(addrs))
	for ; m != 0; m &= m - 1 {
		lane := bits.TrailingZeros64(uint64(m))
		any = true
		word := addrs[lane] >> 2
		bank := word & uint32(numBanks-1)
		dup := false
		for i := head[bank]; i != 0; i = next[i-1] {
			if words[i-1] == word {
				dup = true // broadcast: same word in same bank is free
				break
			}
		}
		if dup {
			continue
		}
		words[n] = word
		next[n] = head[bank]
		head[bank] = n + 1
		n++
		counts[bank]++
		if int(counts[bank]) > max {
			max = int(counts[bank])
		}
	}
	if !any {
		return 0
	}
	if max == 0 {
		return 1
	}
	return max
}
