// Package mem implements the GPU memory system: the functional backing
// store that holds global-memory contents, the per-warp access coalescer,
// L1 data caches with MSHR-based miss handling, and banked L2/DRAM memory
// partitions with latency and bandwidth modeling. Timing is event-driven:
// the load-store units hand coalesced line transactions to System, which
// calls back when the data returns.
package mem

import "math"

// Backing is the functional contents of global memory. It is word-granular
// and lazily populated: a word never stored reads as a deterministic
// pseudo-random value derived from its address, so data-dependent kernels
// have stable inputs without preloading gigabytes. Hosts preinitialize
// structured inputs (graphs, matrices) with the store helpers.
type Backing struct {
	words map[uint32]uint32
}

// NewBacking returns an empty backing store.
func NewBacking() *Backing {
	return &Backing{words: make(map[uint32]uint32)}
}

// synthWord derives the default contents of an untouched word index.
func synthWord(widx uint32) uint32 {
	x := widx*2654435761 + 0x9E3779B9
	x ^= x >> 16
	x *= 0x85EBCA6B
	x ^= x >> 13
	return x
}

// LoadWord returns the 32-bit word containing the byte address (which is
// aligned down to a word boundary).
func (b *Backing) LoadWord(addr uint32) uint32 {
	w := addr >> 2
	if v, ok := b.words[w]; ok {
		return v
	}
	return synthWord(w)
}

// StoreWord writes the 32-bit word containing the byte address.
func (b *Backing) StoreWord(addr, v uint32) {
	b.words[addr>>2] = v
}

// WriteWords stores a contiguous slice of words starting at base.
func (b *Backing) WriteWords(base uint32, vals []uint32) {
	for i, v := range vals {
		b.StoreWord(base+uint32(i)*4, v)
	}
}

// WriteFloats stores float32 values as their IEEE bits starting at base.
func (b *Backing) WriteFloats(base uint32, vals []float32) {
	for i, v := range vals {
		b.StoreWord(base+uint32(i)*4, math.Float32bits(v))
	}
}

// LoadFloat reads a float32 from the byte address.
func (b *Backing) LoadFloat(addr uint32) float32 {
	return math.Float32frombits(b.LoadWord(addr))
}

// TouchedWords returns how many words have been explicitly stored; used by
// tests to bound memory growth.
func (b *Backing) TouchedWords() int { return len(b.words) }
