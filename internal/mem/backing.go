// Package mem implements the GPU memory system: the functional backing
// store that holds global-memory contents, the per-warp access coalescer,
// L1 data caches with MSHR-based miss handling, and banked L2/DRAM memory
// partitions with latency and bandwidth modeling. Timing is event-driven:
// the load-store units hand coalesced line transactions to System, which
// calls back when the data returns.
package mem

import (
	"math"
	"math/bits"
)

// Backing is the functional contents of global memory. It is word-granular
// and lazily populated: a word never stored reads as a deterministic
// pseudo-random value derived from its address, so data-dependent kernels
// have stable inputs without preloading gigabytes. Hosts preinitialize
// structured inputs (graphs, matrices) with the store helpers.
//
// Storage is paged: stored words live in 4 KiB pages found through a map
// keyed by page index, with a one-entry cache of the last page touched
// (global-memory traffic is strongly page-local, so most accesses skip
// the map). A per-page written bitmap distinguishes stored words from
// untouched ones, which must keep reading as their synthesized values.
// Backing is not safe for concurrent use — the parallel engine serializes
// all access through GmemLog replay.
type Backing struct {
	pages    map[uint32]*backingPage
	lastIdx  uint32
	lastPage *backingPage
}

const (
	pageWordBits = 10
	pageWords    = 1 << pageWordBits // words per page (4 KiB)
)

type backingPage struct {
	words   [pageWords]uint32
	written [pageWords / 64]uint64
}

// NewBacking returns an empty backing store.
func NewBacking() *Backing {
	return &Backing{pages: make(map[uint32]*backingPage)}
}

// pageOf returns the page holding word index widx, or nil when no word in
// it has been stored.
func (b *Backing) pageOf(widx uint32) *backingPage {
	pi := widx >> pageWordBits
	if b.lastPage != nil && b.lastIdx == pi {
		return b.lastPage
	}
	p := b.pages[pi]
	if p != nil {
		b.lastIdx, b.lastPage = pi, p
	}
	return p
}

// synthWord derives the default contents of an untouched word index.
func synthWord(widx uint32) uint32 {
	x := widx*2654435761 + 0x9E3779B9
	x ^= x >> 16
	x *= 0x85EBCA6B
	x ^= x >> 13
	return x
}

// LoadWord returns the 32-bit word containing the byte address (which is
// aligned down to a word boundary).
func (b *Backing) LoadWord(addr uint32) uint32 {
	w := addr >> 2
	if p := b.pageOf(w); p != nil {
		o := w & (pageWords - 1)
		if p.written[o>>6]&(1<<(o&63)) != 0 {
			return p.words[o]
		}
	}
	return synthWord(w)
}

// StoreWord writes the 32-bit word containing the byte address.
func (b *Backing) StoreWord(addr, v uint32) {
	w := addr >> 2
	p := b.pageOf(w)
	if p == nil {
		p = &backingPage{}
		pi := w >> pageWordBits
		b.pages[pi] = p
		b.lastIdx, b.lastPage = pi, p
	}
	o := w & (pageWords - 1)
	p.written[o>>6] |= 1 << (o & 63)
	p.words[o] = v
}

// WriteWords stores a contiguous slice of words starting at base.
func (b *Backing) WriteWords(base uint32, vals []uint32) {
	for i, v := range vals {
		b.StoreWord(base+uint32(i)*4, v)
	}
}

// WriteFloats stores float32 values as their IEEE bits starting at base.
func (b *Backing) WriteFloats(base uint32, vals []float32) {
	for i, v := range vals {
		b.StoreWord(base+uint32(i)*4, math.Float32bits(v))
	}
}

// LoadFloat reads a float32 from the byte address.
func (b *Backing) LoadFloat(addr uint32) float32 {
	return math.Float32frombits(b.LoadWord(addr))
}

// TouchedWords returns how many words have been explicitly stored; used by
// tests to bound memory growth.
func (b *Backing) TouchedWords() int {
	n := 0
	for _, p := range b.pages {
		for _, w := range p.written {
			n += bits.OnesCount64(w)
		}
	}
	return n
}
