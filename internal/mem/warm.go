package mem

// WarmGlobal models one coalesced line access functionally: it updates
// the L1/L2 tag arrays and hit/miss/DRAM counters exactly as the timing
// path would, but schedules no events and consumes no MSHRs — the line
// is filled instantly. The gpu sampling engine uses it during functional
// fast-forward spans so the caches the next detailed window sees reflect
// the traffic the span retired. MSHR state needs no warming: spans begin
// and end at functionally quiescent boundaries where every MSHR is empty.
//
// Counter routing matches the timing path: L1 counters go through the
// owning L1's stat pointer (a private shard under the parallel engine or
// with telemetry attached), L2/DRAM counters through the shared Stats.
// Spans run single-threaded between engine cycles, so both are safe.
func (s *System) WarmGlobal(sm int, lineAddr uint32, write bool) {
	c := s.l1s[sm]
	if write {
		// Write-through, write-evict at L1; write-through no-allocate at
		// L2; the line lands on the DRAM channel.
		c.stats.L1Accesses++
		if c.tags != nil {
			c.tags.Invalidate(lineAddr)
		}
		s.Stats.L2Accesses++
		s.Stats.DRAMWrites++
		return
	}

	c.stats.L1Accesses++
	if c.tags != nil && c.tags.Probe(lineAddr) {
		c.stats.L1Hits++
		return
	}
	s.Stats.L2Accesses++
	p := s.partitionOf(lineAddr)
	if p.tags != nil && p.tags.Probe(lineAddr) {
		s.Stats.L2Hits++
	} else {
		s.Stats.DRAMReads++
		if p.tags != nil {
			p.tags.Fill(lineAddr)
		}
	}
	if c.tags != nil {
		c.tags.Fill(lineAddr)
	}
}
