package mem

import "repro/internal/event"

// TagArray is a set-associative cache tag store with true-LRU replacement.
// It tracks presence only; data motion is functional (the backing store)
// and timing is handled by the callers.
type TagArray struct {
	sets     int
	ways     int
	lineBits uint
	lines    []uint32 // line address per way, lineValid parallel
	valid    []bool
	lru      []int64 // last-touch stamp per way
	stamp    int64
}

// NewTagArray builds a tag array with the given geometry. lineSize must be
// a power of two.
func NewTagArray(sets, ways, lineSize int) *TagArray {
	bits := uint(0)
	for 1<<bits < lineSize {
		bits++
	}
	n := sets * ways
	return &TagArray{
		sets:     sets,
		ways:     ways,
		lineBits: bits,
		lines:    make([]uint32, n),
		valid:    make([]bool, n),
		lru:      make([]int64, n),
	}
}

func (t *TagArray) setOf(lineAddr uint32) int {
	return int((lineAddr >> t.lineBits) % uint32(t.sets))
}

// Probe reports whether the line is present, updating LRU on hit.
func (t *TagArray) Probe(lineAddr uint32) bool {
	base := t.setOf(lineAddr) * t.ways
	for w := 0; w < t.ways; w++ {
		if t.valid[base+w] && t.lines[base+w] == lineAddr {
			t.stamp++
			t.lru[base+w] = t.stamp
			return true
		}
	}
	return false
}

// Fill inserts the line, evicting the LRU way of its set if needed, and
// returns the evicted line address (ok=false when an invalid way was used
// or the line was already present).
func (t *TagArray) Fill(lineAddr uint32) (evicted uint32, ok bool) {
	base := t.setOf(lineAddr) * t.ways
	victim := base
	for w := 0; w < t.ways; w++ {
		i := base + w
		if t.valid[i] && t.lines[i] == lineAddr {
			t.stamp++
			t.lru[i] = t.stamp
			return 0, false // already present
		}
		if !t.valid[i] {
			victim = i
			break
		}
		if t.lru[i] < t.lru[victim] {
			victim = i
		}
	}
	evicted, ok = t.lines[victim], t.valid[victim]
	t.stamp++
	t.lines[victim] = lineAddr
	t.valid[victim] = true
	t.lru[victim] = t.stamp
	return evicted, ok
}

// Invalidate removes the line if present (write-evict policy) and reports
// whether it was present.
func (t *TagArray) Invalidate(lineAddr uint32) bool {
	base := t.setOf(lineAddr) * t.ways
	for w := 0; w < t.ways; w++ {
		if t.valid[base+w] && t.lines[base+w] == lineAddr {
			t.valid[base+w] = false
			return true
		}
	}
	return false
}

// Occupancy returns the number of valid lines; used by tests.
func (t *TagArray) Occupancy() int {
	n := 0
	for _, v := range t.valid {
		if v {
			n++
		}
	}
	return n
}

// mshrTable tracks outstanding misses by line address, merging secondary
// misses into the primary's completion list. Completions are held in a
// pooled node arena linked per line and recycled through a free list, so
// steady-state merging and completion allocate nothing (the old
// implementation grew a fresh []func() per primary miss).
type mshrTable struct {
	max     int
	pending map[uint32]mshrList
	nodes   []mshrNode
	free    int32 // free-list head (index+1; 0 = empty)
}

// mshrList is one line's completion chain; head/tail are node indexes+1.
type mshrList struct{ head, tail int32 }

type mshrNode struct {
	comp event.Completion
	next int32 // next node in chain or free list (index+1; 0 = end)
}

func newMSHRTable(max int) *mshrTable {
	return &mshrTable{max: max, pending: make(map[uint32]mshrList)}
}

// alloc takes a node from the free list (or grows the arena) and returns
// its index+1.
func (m *mshrTable) alloc(c event.Completion) int32 {
	if m.free != 0 {
		n := m.free
		m.free = m.nodes[n-1].next
		m.nodes[n-1] = mshrNode{comp: c}
		return n
	}
	m.nodes = append(m.nodes, mshrNode{comp: c})
	return int32(len(m.nodes))
}

// add registers a completion for the line. It returns primary=true when
// this is the first outstanding miss for the line (the caller must send
// the request downstream), and full=true when a new entry was needed but
// the table is at capacity (the caller must retry later; nothing is
// stored).
func (m *mshrTable) add(lineAddr uint32, done event.Completion) (primary, full bool) {
	if l, ok := m.pending[lineAddr]; ok {
		n := m.alloc(done)
		m.nodes[l.tail-1].next = n
		m.pending[lineAddr] = mshrList{head: l.head, tail: n}
		return false, false
	}
	if m.max > 0 && len(m.pending) >= m.max {
		return false, true
	}
	n := m.alloc(done)
	m.pending[lineAddr] = mshrList{head: n, tail: n}
	return true, false
}

// fireCompleted removes the line's entry and fires its completions in
// registration order. The entry is removed before anything fires and each
// node is copied out and recycled before its completion runs, so
// completions may re-enter the table (even for the same line) safely.
func (m *mshrTable) fireCompleted(lineAddr uint32) {
	l, ok := m.pending[lineAddr]
	if !ok {
		return
	}
	delete(m.pending, lineAddr)
	for n := l.head; n != 0; {
		node := m.nodes[n-1]
		m.nodes[n-1] = mshrNode{next: m.free}
		m.free = n
		n = node.next
		node.comp.Fire()
	}
}

// size returns the number of outstanding distinct misses.
func (m *mshrTable) size() int { return len(m.pending) }
