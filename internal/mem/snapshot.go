package mem

import (
	"fmt"
	"sort"

	"repro/internal/event"
)

// Snapshot support for the memory system. Everything observable is
// captured exactly: tag arrays including their LRU stamps (replacement
// decisions depend on them), MSHR chains in registration order (fire
// order is part of the determinism contract), DRAM queues positionally
// (FR-FCFS ages by queue position), and the pacing cursors (l2Free,
// dramFree, bankFree, pumpAt). The MSHR node arena's internal layout is
// unobservable — indices never escape the table — so chains are
// serialized per line, sorted by line address, and rebuilt canonically.
//
// Capture is a pure read. Stats are captured as PeekStats-style additive
// totals (shared Stats plus any per-L1 shards); restore folds them into
// the shared Stats, which is equivalent under CollectStats.

// TagState is a TagArray's serializable state. Geometry stays with the
// live array (it derives from config); only the dynamic arrays travel.
type TagState struct {
	Lines []uint32 `json:"lines"`
	Valid []bool   `json:"valid"`
	LRU   []int64  `json:"lru"`
	Stamp int64    `json:"stamp"`
}

// State captures the tag array contents.
func (t *TagArray) State() TagState {
	return TagState{
		Lines: append([]uint32(nil), t.lines...),
		Valid: append([]bool(nil), t.valid...),
		LRU:   append([]int64(nil), t.lru...),
		Stamp: t.stamp,
	}
}

// SetState restores the tag array contents captured by State.
func (t *TagArray) SetState(st TagState) error {
	if len(st.Lines) != len(t.lines) || len(st.Valid) != len(t.valid) || len(st.LRU) != len(t.lru) {
		return fmt.Errorf("mem: tag state geometry mismatch (%d lines, want %d)", len(st.Lines), len(t.lines))
	}
	copy(t.lines, st.Lines)
	copy(t.valid, st.Valid)
	copy(t.lru, st.LRU)
	t.stamp = st.Stamp
	return nil
}

// MSHRLine is one line's outstanding-miss chain, completions in
// registration (fire) order.
type MSHRLine struct {
	Line  uint32                `json:"line"`
	Comps []event.CompletionRec `json:"comps"`
}

// state serializes the outstanding misses sorted by line address.
func (m *mshrTable) state(reg *event.Registry) ([]MSHRLine, error) {
	lines := make([]MSHRLine, 0, len(m.pending))
	for addr, l := range m.pending {
		ml := MSHRLine{Line: addr}
		for n := l.head; n != 0; n = m.nodes[n-1].next {
			rec, err := reg.EncodeCompletion(m.nodes[n-1].comp)
			if err != nil {
				return nil, err
			}
			ml.Comps = append(ml.Comps, rec)
		}
		lines = append(lines, ml)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i].Line < lines[j].Line })
	return lines, nil
}

// setState rebuilds the table from serialized chains. The node arena is
// laid out canonically; per-line fire order is preserved exactly.
func (m *mshrTable) setState(lines []MSHRLine, reg *event.Registry) error {
	m.pending = make(map[uint32]mshrList, len(lines))
	m.nodes = m.nodes[:0]
	m.free = 0
	for _, ml := range lines {
		var l mshrList
		for _, rec := range ml.Comps {
			c, err := reg.DecodeCompletion(rec)
			if err != nil {
				return err
			}
			n := m.alloc(c)
			if l.head == 0 {
				l.head = n
			} else {
				m.nodes[l.tail-1].next = n
			}
			l.tail = n
		}
		if l.head == 0 {
			return fmt.Errorf("mem: MSHR line %#x has empty chain", ml.Line)
		}
		m.pending[ml.Line] = l
	}
	return nil
}

// L1State is one L1 cache's serializable state.
type L1State struct {
	Tags *TagState  `json:"tags,omitempty"`
	MSHR []MSHRLine `json:"mshr"`
}

// DRAMReqState is one queued DRAM transaction.
type DRAMReqState struct {
	Line   uint32              `json:"line"`
	Write  bool                `json:"write"`
	OnDone event.CompletionRec `json:"on_done"`
}

// PartitionState is one memory partition's serializable state.
type PartitionState struct {
	Tags     *TagState      `json:"tags,omitempty"`
	MSHR     []MSHRLine     `json:"mshr"`
	L2Free   int64          `json:"l2_free"`
	DRAMFree int64          `json:"dram_free"`
	Queue    []DRAMReqState `json:"queue"`
	BankFree []int64        `json:"bank_free"`
	OpenRow  []uint32       `json:"open_row"`
	PumpAt   int64          `json:"pump_at"`
}

// SystemState is the memory system's complete serializable state.
type SystemState struct {
	Stats Stats            `json:"stats"` // additive totals incl. shards
	L1s   []L1State        `json:"l1s"`
	Parts []PartitionState `json:"parts"`
}

// RegisterHandlers registers the system's event handlers (L1s in SM
// order, then partitions in index order) so pending events and stored
// completions serialize to stable IDs.
func (s *System) RegisterHandlers(reg *event.Registry) {
	for _, c := range s.l1s {
		reg.Register(c)
	}
	for _, p := range s.parts {
		reg.Register(p)
	}
}

// State captures the memory system. Pure read: nothing is folded or
// zeroed.
func (s *System) State(reg *event.Registry) (*SystemState, error) {
	st := &SystemState{Stats: s.PeekStats()}
	for _, c := range s.l1s {
		var ls L1State
		if c.tags != nil {
			ts := c.tags.State()
			ls.Tags = &ts
		}
		var err error
		if ls.MSHR, err = c.mshr.state(reg); err != nil {
			return nil, err
		}
		st.L1s = append(st.L1s, ls)
	}
	for _, p := range s.parts {
		ps := PartitionState{
			L2Free:   p.l2Free,
			DRAMFree: p.dramFree,
			BankFree: append([]int64(nil), p.bankFree...),
			OpenRow:  append([]uint32(nil), p.openRow...),
			PumpAt:   p.pumpAt,
		}
		if p.tags != nil {
			ts := p.tags.State()
			ps.Tags = &ts
		}
		var err error
		if ps.MSHR, err = p.mshr.state(reg); err != nil {
			return nil, err
		}
		for _, r := range p.queue {
			rec, err := reg.EncodeCompletion(r.onDone)
			if err != nil {
				return nil, err
			}
			ps.Queue = append(ps.Queue, DRAMReqState{Line: r.line, Write: r.write, OnDone: rec})
		}
		st.Parts = append(st.Parts, ps)
	}
	return st, nil
}

// SetState restores a freshly built System (same configuration) to the
// captured state. Stat shards, if any, are zeroed with the totals folded
// into the shared Stats — equivalent under CollectStats.
func (s *System) SetState(st *SystemState, reg *event.Registry) error {
	if len(st.L1s) != len(s.l1s) || len(st.Parts) != len(s.parts) {
		return fmt.Errorf("mem: state shape mismatch (%d L1s/%d parts, want %d/%d)",
			len(st.L1s), len(st.Parts), len(s.l1s), len(s.parts))
	}
	s.Stats = st.Stats
	for i, c := range s.l1s {
		ls := &st.L1s[i]
		if (c.tags != nil) != (ls.Tags != nil) {
			return fmt.Errorf("mem: L1 %d tag presence mismatch", i)
		}
		if c.tags != nil {
			if err := c.tags.SetState(*ls.Tags); err != nil {
				return err
			}
		}
		if err := c.mshr.setState(ls.MSHR, reg); err != nil {
			return err
		}
		if c.stats != &s.Stats {
			*c.stats = Stats{}
		}
	}
	for i, p := range s.parts {
		ps := &st.Parts[i]
		if (p.tags != nil) != (ps.Tags != nil) {
			return fmt.Errorf("mem: partition %d tag presence mismatch", i)
		}
		if p.tags != nil {
			if err := p.tags.SetState(*ps.Tags); err != nil {
				return err
			}
		}
		if err := p.mshr.setState(ps.MSHR, reg); err != nil {
			return err
		}
		if len(ps.BankFree) != len(p.bankFree) || len(ps.OpenRow) != len(p.openRow) {
			return fmt.Errorf("mem: partition %d bank count mismatch", i)
		}
		p.l2Free = ps.L2Free
		p.dramFree = ps.DRAMFree
		copy(p.bankFree, ps.BankFree)
		copy(p.openRow, ps.OpenRow)
		p.pumpAt = ps.PumpAt
		p.queue = p.queue[:0]
		for _, r := range ps.Queue {
			c, err := reg.DecodeCompletion(r.OnDone)
			if err != nil {
				return err
			}
			p.queue = append(p.queue, dramReq{line: r.Line, write: r.Write, onDone: c})
		}
	}
	return nil
}

// BackingPageState is one stored page of the functional backing store.
type BackingPageState struct {
	Idx     uint32   `json:"idx"`
	Words   []uint32 `json:"words"`
	Written []uint64 `json:"written"`
}

// BackingState is the backing store's serializable contents, pages sorted
// by index.
type BackingState struct {
	Pages []BackingPageState `json:"pages"`
}

// State captures the stored pages.
func (b *Backing) State() BackingState {
	var st BackingState
	for idx, p := range b.pages {
		st.Pages = append(st.Pages, BackingPageState{
			Idx:     idx,
			Words:   append([]uint32(nil), p.words[:]...),
			Written: append([]uint64(nil), p.written[:]...),
		})
	}
	sort.Slice(st.Pages, func(i, j int) bool { return st.Pages[i].Idx < st.Pages[j].Idx })
	return st
}

// SetState replaces the backing contents with a captured snapshot.
func (b *Backing) SetState(st BackingState) error {
	b.pages = make(map[uint32]*backingPage, len(st.Pages))
	b.lastIdx, b.lastPage = 0, nil
	for _, ps := range st.Pages {
		if len(ps.Words) != pageWords || len(ps.Written) != pageWords/64 {
			return fmt.Errorf("mem: backing page %d has wrong geometry", ps.Idx)
		}
		p := &backingPage{}
		copy(p.words[:], ps.Words)
		copy(p.written[:], ps.Written)
		b.pages[ps.Idx] = p
	}
	return nil
}
