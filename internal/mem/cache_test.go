package mem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/event"
)

func TestTagArrayBasics(t *testing.T) {
	ta := NewTagArray(2, 2, 128) // 4 lines total
	if ta.Probe(0) {
		t.Fatal("empty cache must miss")
	}
	ta.Fill(0)
	if !ta.Probe(0) {
		t.Fatal("filled line must hit")
	}
	if ta.Occupancy() != 1 {
		t.Fatalf("occupancy = %d", ta.Occupancy())
	}
}

func TestTagArrayLRUEviction(t *testing.T) {
	ta := NewTagArray(1, 2, 128) // one set, 2 ways
	ta.Fill(0 * 128)
	ta.Fill(1 * 128)
	ta.Probe(0 * 128) // touch line 0: line 1 is now LRU
	ev, ok := ta.Fill(2 * 128)
	if !ok || ev != 1*128 {
		t.Fatalf("evicted %d (ok=%v), want line 1*128", ev, ok)
	}
	if !ta.Probe(0*128) || ta.Probe(1*128) || !ta.Probe(2*128) {
		t.Fatal("LRU state wrong after eviction")
	}
}

func TestTagArrayFillPresentIsNoop(t *testing.T) {
	ta := NewTagArray(1, 2, 128)
	ta.Fill(0)
	if _, ok := ta.Fill(0); ok {
		t.Fatal("refilling a present line must not evict")
	}
	if ta.Occupancy() != 1 {
		t.Fatalf("occupancy = %d, want 1", ta.Occupancy())
	}
}

func TestTagArraySetMapping(t *testing.T) {
	ta := NewTagArray(4, 1, 128)
	// Lines 0 and 4 map to set 0; lines 1..3 to other sets.
	ta.Fill(0 * 128)
	ta.Fill(1 * 128)
	ta.Fill(4 * 128) // evicts line 0, not line 1
	if ta.Probe(0 * 128) {
		t.Fatal("line 0 should have been evicted by its set conflict")
	}
	if !ta.Probe(1 * 128) {
		t.Fatal("line 1 in a different set must survive")
	}
}

func TestTagArrayInvalidate(t *testing.T) {
	ta := NewTagArray(2, 2, 128)
	ta.Fill(256)
	if !ta.Invalidate(256) {
		t.Fatal("invalidate of present line must report true")
	}
	if ta.Probe(256) {
		t.Fatal("invalidated line must miss")
	}
	if ta.Invalidate(256) {
		t.Fatal("invalidate of absent line must report false")
	}
}

func TestMSHRMergeAndLimit(t *testing.T) {
	m := newMSHRTable(2)
	ran := 0
	p, full := m.add(0x100, event.CompletionFunc(func() { ran++ }))
	if !p || full {
		t.Fatal("first miss must be primary")
	}
	p, full = m.add(0x100, event.CompletionFunc(func() { ran++ }))
	if p || full {
		t.Fatal("second miss to same line must merge")
	}
	p, full = m.add(0x200, event.CompletionFunc(func() { ran++ }))
	if !p || full {
		t.Fatal("different line must get a new entry")
	}
	_, full = m.add(0x300, event.CompletionFunc(func() { ran++ }))
	if !full {
		t.Fatal("third distinct line must be rejected at capacity 2")
	}
	m.fireCompleted(0x100)
	if ran != 2 {
		t.Fatalf("ran = %d, want 2", ran)
	}
	if m.size() != 1 {
		t.Fatalf("size = %d, want 1", m.size())
	}
	// Freed capacity admits a new line.
	if p, full := m.add(0x300, event.CompletionFunc(func() {})); !p || full {
		t.Fatal("freed MSHR must admit a new line")
	}
}

func TestMSHRUnbounded(t *testing.T) {
	m := newMSHRTable(0)
	for i := 0; i < 1000; i++ {
		if _, full := m.add(uint32(i*128), event.CompletionFunc(func() {})); full {
			t.Fatal("unbounded table must never be full")
		}
	}
}

// Property: a tag array never exceeds its capacity, and a line just filled
// always probes as a hit.
func TestTagArrayProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sets := 1 << rng.Intn(4)
		ways := 1 + rng.Intn(4)
		ta := NewTagArray(sets, ways, 128)
		for i := 0; i < 200; i++ {
			line := uint32(rng.Intn(64)) * 128
			if rng.Intn(2) == 0 {
				ta.Fill(line)
				if !ta.Probe(line) {
					return false
				}
			} else {
				ta.Probe(line)
			}
			if ta.Occupancy() > sets*ways {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
