package mem

import (
	"testing"

	"repro/internal/config"
	"repro/internal/event"
	"repro/internal/simt"
)

func testConfig() config.GPUConfig {
	c := config.Small()
	return c
}

func TestBackingDeterministicSynthesis(t *testing.T) {
	b1, b2 := NewBacking(), NewBacking()
	if b1.LoadWord(0x1234) != b2.LoadWord(0x1234) {
		t.Fatal("synthesized words must be deterministic")
	}
	if b1.LoadWord(0x1000) == b1.LoadWord(0x1004) {
		t.Fatal("adjacent words should differ (hash quality)")
	}
}

func TestBackingStoreLoad(t *testing.T) {
	b := NewBacking()
	b.StoreWord(100, 42)
	if got := b.LoadWord(100); got != 42 {
		t.Fatalf("LoadWord = %d, want 42", got)
	}
	// Sub-word addresses alias the containing word.
	if got := b.LoadWord(102); got != 42 {
		t.Fatalf("unaligned LoadWord = %d, want 42", got)
	}
	b.WriteWords(0x200, []uint32{1, 2, 3})
	if b.LoadWord(0x208) != 3 {
		t.Fatal("WriteWords layout wrong")
	}
	b.WriteFloats(0x300, []float32{1.5})
	if b.LoadFloat(0x300) != 1.5 {
		t.Fatal("float round trip failed")
	}
	if b.TouchedWords() != 5 {
		t.Fatalf("TouchedWords = %d, want 5", b.TouchedWords())
	}
}

func TestCoalesceFullyCoalesced(t *testing.T) {
	addrs := make([]uint32, 32)
	for i := range addrs {
		addrs[i] = uint32(0x1000 + 4*i) // 32 lanes x 4B = one 128B line
	}
	lines := CoalesceLines(addrs, simt.FullMask(32), 128)
	if len(lines) != 1 || lines[0] != 0x1000 {
		t.Fatalf("lines = %v, want [0x1000]", lines)
	}
}

func TestCoalesceStrided(t *testing.T) {
	addrs := make([]uint32, 32)
	for i := range addrs {
		addrs[i] = uint32(128 * i) // one line per lane
	}
	lines := CoalesceLines(addrs, simt.FullMask(32), 128)
	if len(lines) != 32 {
		t.Fatalf("strided access lines = %d, want 32", len(lines))
	}
}

func TestCoalesceRespectsMask(t *testing.T) {
	addrs := []uint32{0, 128, 256, 384}
	lines := CoalesceLines(addrs, 0b0101, 128)
	if len(lines) != 2 || lines[0] != 0 || lines[1] != 256 {
		t.Fatalf("masked lines = %v", lines)
	}
	if got := CoalesceLines(addrs, 0, 128); len(got) != 0 {
		t.Fatalf("empty mask must produce no lines, got %v", got)
	}
}

func TestBankConflicts(t *testing.T) {
	// 32 lanes, 32 banks, consecutive words: conflict-free.
	addrs := make([]uint32, 32)
	for i := range addrs {
		addrs[i] = uint32(4 * i)
	}
	if f := BankConflictFactor(addrs, simt.FullMask(32), 32); f != 1 {
		t.Fatalf("consecutive words factor = %d, want 1", f)
	}
	// Stride of 32 words: all lanes hit bank 0 -> 32-way conflict.
	for i := range addrs {
		addrs[i] = uint32(4 * 32 * i)
	}
	if f := BankConflictFactor(addrs, simt.FullMask(32), 32); f != 32 {
		t.Fatalf("stride-32 factor = %d, want 32", f)
	}
	// Broadcast: all lanes read the same word -> free.
	for i := range addrs {
		addrs[i] = 0x40
	}
	if f := BankConflictFactor(addrs, simt.FullMask(32), 32); f != 1 {
		t.Fatalf("broadcast factor = %d, want 1", f)
	}
	if f := BankConflictFactor(addrs, 0, 32); f != 0 {
		t.Fatalf("no active lanes factor = %d, want 0", f)
	}
}

func TestL1HitTiming(t *testing.T) {
	cfg := testConfig()
	ev := event.NewQueue()
	sys := NewSystem(&cfg, ev)

	var first, second int64 = -1, -1
	if !sys.AccessGlobal(0, 0x1000, false, event.CompletionFunc(func() { first = ev.Now() })) {
		t.Fatal("access rejected")
	}
	// Drain until the miss completes.
	for i := int64(1); first < 0 && i < 10000; i++ {
		ev.AdvanceTo(i)
	}
	if first < 0 {
		t.Fatal("miss never completed")
	}
	missLatency := first
	minMiss := int64(2*cfg.InterconnectDelay + cfg.L2.Latency + cfg.DRAMLatency)
	if missLatency < minMiss {
		t.Fatalf("miss latency %d below physical minimum %d", missLatency, minMiss)
	}

	start := ev.Now()
	if !sys.AccessGlobal(0, 0x1000, false, event.CompletionFunc(func() { second = ev.Now() })) {
		t.Fatal("access rejected")
	}
	for i := start + 1; second < 0 && i < start+10000; i++ {
		ev.AdvanceTo(i)
	}
	hitLatency := second - start
	if hitLatency != int64(cfg.L1D.Latency) {
		t.Fatalf("hit latency = %d, want %d", hitLatency, cfg.L1D.Latency)
	}
	if sys.Stats.L1Hits != 1 || sys.Stats.L1Accesses != 2 {
		t.Fatalf("stats: hits=%d accesses=%d", sys.Stats.L1Hits, sys.Stats.L1Accesses)
	}
}

func TestMSHRMergingAtL1(t *testing.T) {
	cfg := testConfig()
	ev := event.NewQueue()
	sys := NewSystem(&cfg, ev)

	done := 0
	sys.AccessGlobal(0, 0x2000, false, event.CompletionFunc(func() { done++ }))
	sys.AccessGlobal(0, 0x2000, false, event.CompletionFunc(func() { done++ })) // merges
	if sys.Stats.L1MSHRMerges != 1 {
		t.Fatalf("merges = %d, want 1", sys.Stats.L1MSHRMerges)
	}
	for i := int64(1); done < 2 && i < 10000; i++ {
		ev.AdvanceTo(i)
	}
	if done != 2 {
		t.Fatalf("done = %d, want 2 (merged miss must wake both)", done)
	}
	// Only one request reached DRAM.
	if sys.Stats.DRAMReads != 1 {
		t.Fatalf("DRAM reads = %d, want 1", sys.Stats.DRAMReads)
	}
}

func TestMSHRBackpressure(t *testing.T) {
	cfg := testConfig()
	cfg.L1D.MSHRs = 2
	ev := event.NewQueue()
	sys := NewSystem(&cfg, ev)

	if !sys.AccessGlobal(0, 0x0000, false, event.CompletionFunc(func() {})) {
		t.Fatal("first access rejected")
	}
	if !sys.AccessGlobal(0, 0x1000, false, event.CompletionFunc(func() {})) {
		t.Fatal("second access rejected")
	}
	if sys.AccessGlobal(0, 0x3000, false, event.CompletionFunc(func() {})) {
		t.Fatal("third distinct miss must be rejected with 2 MSHRs")
	}
	if sys.Stats.L1Rejects != 1 {
		t.Fatalf("rejects = %d, want 1", sys.Stats.L1Rejects)
	}
	if sys.OutstandingMisses(0) != 2 {
		t.Fatalf("outstanding = %d, want 2", sys.OutstandingMisses(0))
	}
}

func TestWriteInvalidatesL1(t *testing.T) {
	cfg := testConfig()
	ev := event.NewQueue()
	sys := NewSystem(&cfg, ev)

	got := false
	sys.AccessGlobal(0, 0x4000, false, event.CompletionFunc(func() { got = true }))
	for i := int64(1); !got && i < 10000; i++ {
		ev.AdvanceTo(i)
	}
	// Write to the same line evicts it.
	sys.AccessGlobal(0, 0x4000, true, event.Completion{})
	hitsBefore := sys.Stats.L1Hits
	done := false
	sys.AccessGlobal(0, 0x4000, false, event.CompletionFunc(func() { done = true }))
	if sys.Stats.L1Hits != hitsBefore {
		t.Fatal("read after write-evict must miss in L1")
	}
	for i := ev.Now() + 1; !done && i < ev.Now()+10000; i++ {
		ev.AdvanceTo(i)
	}
	if !done {
		t.Fatal("post-write read never completed")
	}
	if sys.Stats.DRAMWrites != 1 {
		t.Fatalf("DRAM writes = %d, want 1", sys.Stats.DRAMWrites)
	}
}

func TestL2SharedAcrossSMs(t *testing.T) {
	cfg := testConfig()
	ev := event.NewQueue()
	sys := NewSystem(&cfg, ev)

	done := false
	sys.AccessGlobal(0, 0x8000, false, event.CompletionFunc(func() { done = true }))
	for i := int64(1); !done && i < 10000; i++ {
		ev.AdvanceTo(i)
	}
	// A different SM missing L1 should hit in L2.
	reads := sys.Stats.DRAMReads
	done2 := false
	start := ev.Now()
	sys.AccessGlobal(1, 0x8000, false, event.CompletionFunc(func() { done2 = true }))
	for i := start + 1; !done2 && i < start+10000; i++ {
		ev.AdvanceTo(i)
	}
	if sys.Stats.DRAMReads != reads {
		t.Fatal("second SM's miss must be served by L2, not DRAM")
	}
	if sys.Stats.L2Hits != 1 {
		t.Fatalf("L2 hits = %d, want 1", sys.Stats.L2Hits)
	}
}

func TestDRAMBandwidthSerializes(t *testing.T) {
	cfg := testConfig()
	cfg.L1D.Enabled = false
	cfg.L2.Enabled = false
	cfg.NumMemPartitions = 1
	ev := event.NewQueue()
	sys := NewSystem(&cfg, ev)

	const n = 16
	var times []int64
	for i := 0; i < n; i++ {
		if !sys.AccessGlobal(0, uint32(i*0x1000), false, event.CompletionFunc(func() { times = append(times, ev.Now()) })) {
			t.Fatal("rejected")
		}
	}
	for i := int64(1); len(times) < n && i < 100000; i++ {
		ev.AdvanceTo(i)
	}
	if len(times) != n {
		t.Fatalf("completed %d of %d", len(times), n)
	}
	// Completion times must be spaced by at least the service rate.
	for i := 1; i < n; i++ {
		if times[i]-times[i-1] < int64(cfg.DRAMServiceCycles) {
			t.Fatalf("responses %d and %d spaced %d < service %d",
				i-1, i, times[i]-times[i-1], cfg.DRAMServiceCycles)
		}
	}
	span := times[n-1] - times[0]
	if span < int64((n-1)*cfg.DRAMServiceCycles) {
		t.Fatalf("span %d too small for bandwidth model", span)
	}
}

func TestHitRateHelpers(t *testing.T) {
	var s Stats
	if s.L1HitRate() != 0 || s.L2HitRate() != 0 {
		t.Fatal("idle hit rates must be 0")
	}
	s.L1Accesses, s.L1Hits = 10, 5
	s.L2Accesses, s.L2Hits = 4, 1
	if s.L1HitRate() != 0.5 || s.L2HitRate() != 0.25 {
		t.Fatal("hit rate math wrong")
	}
}

func TestDRAMRowBufferModel(t *testing.T) {
	cfg := testConfig()
	cfg.L1D.Enabled = false
	cfg.L2.Enabled = false
	cfg.NumMemPartitions = 1
	cfg.DRAMBanks = 4
	cfg.DRAMRowBytes = 2048
	cfg.DRAMRowPenalty = 50
	ev := event.NewQueue()
	sys := NewSystem(&cfg, ev)

	var first, second, third int64 = -1, -1, -1
	// Two accesses in the same row: second is a row hit.
	sys.AccessGlobal(0, 0x0000, false, event.CompletionFunc(func() { first = ev.Now() }))
	sys.AccessGlobal(0, 0x0080, false, event.CompletionFunc(func() { second = ev.Now() }))
	// Different row, same bank: pays the penalty again.
	rowStride := uint32(cfg.DRAMRowBytes * cfg.DRAMBanks)
	sys.AccessGlobal(0, rowStride, false, event.CompletionFunc(func() { third = ev.Now() }))
	for i := int64(1); third < 0 && i < 100000; i++ {
		ev.AdvanceTo(i)
	}
	if first < 0 || second < 0 || third < 0 {
		t.Fatal("accesses never completed")
	}
	if sys.Stats.DRAMRowHits != 1 {
		t.Fatalf("row hits = %d, want 1", sys.Stats.DRAMRowHits)
	}
	if sys.Stats.DRAMRowMisses != 2 {
		t.Fatalf("row misses = %d, want 2", sys.Stats.DRAMRowMisses)
	}
	// The row hit's extra delay over the first access must be less than
	// a row miss's (the penalty shows up in the response time).
	if !(second-first < third-second) {
		t.Fatalf("timing: first=%d second=%d third=%d (row hit should be cheaper)",
			first, second, third)
	}
	if sys.Stats.RowHitRate() != 1.0/3.0 {
		t.Fatalf("row hit rate = %v", sys.Stats.RowHitRate())
	}
}

func TestDRAMBanksOverlapRowMisses(t *testing.T) {
	// Two row misses to different banks overlap their activate latency;
	// two to the same bank serialize.
	mk := func(banks int, a1, a2 uint32) int64 {
		cfg := testConfig()
		cfg.L1D.Enabled = false
		cfg.L2.Enabled = false
		cfg.NumMemPartitions = 1
		cfg.DRAMBanks = banks
		cfg.DRAMRowBytes = 2048
		cfg.DRAMRowPenalty = 100
		ev := event.NewQueue()
		sys := NewSystem(&cfg, ev)
		var done int64 = -1
		n := 0
		cb := func() {
			n++
			if n == 2 {
				done = ev.Now()
			}
		}
		sys.AccessGlobal(0, a1, false, event.CompletionFunc(cb))
		sys.AccessGlobal(0, a2, false, event.CompletionFunc(cb))
		for i := int64(1); done < 0 && i < 100000; i++ {
			ev.AdvanceTo(i)
		}
		return done
	}
	sameBank := mk(4, 0, 4*2048) // same bank, different rows
	diffBank := mk(4, 0, 1*2048) // adjacent rows -> different banks
	if diffBank >= sameBank {
		t.Fatalf("bank parallelism: diff-bank %d should finish before same-bank %d",
			diffBank, sameBank)
	}
}

func TestFlatModelWhenBanksDisabled(t *testing.T) {
	cfg := testConfig()
	cfg.DRAMBanks = 0
	ev := event.NewQueue()
	sys := NewSystem(&cfg, ev)
	done := false
	sys.AccessGlobal(0, 0x100, false, event.CompletionFunc(func() { done = true }))
	for i := int64(1); !done && i < 100000; i++ {
		ev.AdvanceTo(i)
	}
	if !done {
		t.Fatal("flat model failed to complete")
	}
	if sys.Stats.DRAMRowHits+sys.Stats.DRAMRowMisses != 0 {
		t.Fatal("flat model must not count row buffer events")
	}
	if sys.Stats.RowHitRate() != 0 {
		t.Fatal("flat model row hit rate must be 0")
	}
}

func TestPartitionInterleaving(t *testing.T) {
	// Consecutive lines must spread across partitions so streaming
	// bandwidth scales with the partition count.
	one := func(parts int) int64 {
		cfg := testConfig()
		cfg.L1D.Enabled = false
		cfg.L2.Enabled = false
		cfg.NumMemPartitions = parts
		ev := event.NewQueue()
		sys := NewSystem(&cfg, ev)
		const n = 64
		done := 0
		for i := 0; i < n; i++ {
			sys.AccessGlobal(0, uint32(i*128), false, event.CompletionFunc(func() { done++ }))
		}
		for i := int64(1); done < n && i < 1_000_000; i++ {
			ev.AdvanceTo(i)
		}
		if done != n {
			t.Fatalf("only %d of %d completed", done, n)
		}
		return ev.Now()
	}
	t1 := one(1)
	t4 := one(4)
	if t4 >= t1 {
		t.Fatalf("4 partitions (%d cyc) must beat 1 partition (%d cyc)", t4, t1)
	}
}

func TestFRFCFSPrefersRowHits(t *testing.T) {
	cfg := testConfig()
	cfg.L1D.Enabled = false
	cfg.L2.Enabled = false
	cfg.NumMemPartitions = 1
	cfg.DRAMBanks = 1 // force all traffic into one bank
	cfg.DRAMRowBytes = 2048
	cfg.DRAMRowPenalty = 100
	ev := event.NewQueue()
	sys := NewSystem(&cfg, ev)

	// Enqueue: [row0, row1, row0]. In order this costs 3 activations;
	// FR-FCFS serves the second row0 request before row1, costing 2.
	var order []int
	mk := func(id int) func() { return func() { order = append(order, id) } }
	sys.AccessGlobal(0, 0, false, event.CompletionFunc(mk(0)))
	sys.AccessGlobal(0, 2048, false, event.CompletionFunc(mk(1)))
	sys.AccessGlobal(0, 128, false, event.CompletionFunc(mk(2)))
	for i := int64(1); len(order) < 3 && i < 100000; i++ {
		ev.AdvanceTo(i)
	}
	if len(order) != 3 {
		t.Fatalf("completed %d", len(order))
	}
	if !(order[0] == 0 && order[1] == 2 && order[2] == 1) {
		t.Fatalf("service order %v, want [0 2 1] (row hit first)", order)
	}
	if sys.Stats.DRAMRowHits != 1 || sys.Stats.DRAMRowMisses != 2 {
		t.Fatalf("hits/misses = %d/%d, want 1/2",
			sys.Stats.DRAMRowHits, sys.Stats.DRAMRowMisses)
	}
}
