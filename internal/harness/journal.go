package harness

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// The completion journal makes sweeps resumable. Every executed run
// appends one JSON line recording its outcome; the disk cache (see
// diskcache.go) holds the Results themselves. A later invocation opened
// with resume=true reads the journal to report what already completed —
// successful runs are disk-cache hits, failed runs were never cached and
// so re-execute naturally — and RunMetrics.ResumedFailed counts the
// re-runs so "only the failed jobs were redone" is checkable.
//
// File format (JSONL): the first line is a header {"meta": {...}}
// identifying the sweep shape (journal version, scale, dilution, config
// name); every following line is one JournalEntry. Append-only: a
// crashed sweep leaves a valid prefix, and a torn final line is skipped
// on load.

// journalVersion invalidates journals when the line format changes.
const journalVersion = 1

// JournalFileName is the journal's file name inside a cache/store
// directory. Result-store transactions append entries under this name
// on every replica side, so it is part of the store layout contract.
const JournalFileName = "journal.jsonl"

// JournalMeta identifies the sweep a journal belongs to. A resume whose
// parameters produce a different meta is refused: its fingerprints would
// not line up with the journal's entries.
type JournalMeta struct {
	Version int    `json:"version"`
	Scale   int    `json:"scale"`
	Dilute  int    `json:"dilute"`
	Config  string `json:"config"`
	// Sampling is the sweep's sampling configuration in
	// gpu.SamplingOptions.String form ("detailed:fastforward:warmup"),
	// empty for exact sweeps. Sampled cycle counts are extrapolations, so
	// a sampled sweep must not resume an exact journal (or vice versa, or
	// one with different windows): the field makes such metas unequal,
	// which OpenJournal refuses. Exact sweeps keep the historical header
	// (the field is omitted), so existing journals remain resumable.
	Sampling string `json:"sampling,omitempty"`
}

// JournalEntry records one executed run's outcome.
type JournalEntry struct {
	// FP is the run's cache key (see cacheKey): the hex id that also
	// names its disk-cache file.
	FP       string `json:"fp"`
	Workload string `json:"workload"`
	Variant  string `json:"variant,omitempty"`
	// Status is "ok", "degraded" (succeeded on the safe-mode retry), or
	// "failed".
	Status   string `json:"status"`
	Attempts int    `json:"attempts"`
	Cycles   int64  `json:"cycles,omitempty"`
	// ErrorBound, for sampled runs, is the run's reported fractional bound
	// on the cycle-count error (gpu.SamplingStats.ErrorBound); zero for
	// exact runs. It makes journals self-describing for accuracy drills
	// that compare a sampled sweep's cycles against an exact sweep's.
	ErrorBound float64 `json:"error_bound,omitempty"`
	Error      string  `json:"error,omitempty"`
	// ForkedFrom, for prefix-forked runs, names the checkpoint the run
	// resumed from as "<prefix-cache-key[:12]>@<cycle>" (see fork.go).
	ForkedFrom string `json:"forked_from,omitempty"`
	Time       string `json:"time"`
}

// journalHeader is the first line of the file.
type journalHeader struct {
	Meta JournalMeta `json:"meta"`
}

// Journal is an append-only completion journal. Safe for concurrent use.
type Journal struct {
	mu     sync.Mutex
	f      *os.File
	status map[string]string // cache key -> latest status
}

// OpenJournal opens (creating if needed) the journal at path for the
// sweep described by meta. An existing journal written by a different
// sweep is rotated aside to path+".old" when resume is false, and refused
// with an error when resume is true. resume additionally requires the
// journal to exist: resuming nothing is almost certainly a flag mistake.
func OpenJournal(path string, meta JournalMeta, resume bool) (*Journal, error) {
	meta.Version = journalVersion
	jl := &Journal{status: map[string]string{}}

	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("harness: create journal dir: %w", err)
		}
	}
	existing, err := os.Open(path)
	switch {
	case err == nil:
		prior, perr := jl.load(existing, meta)
		existing.Close()
		if perr != nil {
			if resume {
				return nil, perr
			}
			// Fresh sweep over a foreign or damaged journal: keep the old
			// bytes inspectable, start over.
			rotateAside(path)
			jl.status = map[string]string{}
			prior = false
		}
		if !prior {
			if err := jl.writeHeader(path, meta); err != nil {
				return nil, err
			}
			return jl, nil
		}
	case os.IsNotExist(err):
		if resume {
			return nil, fmt.Errorf("harness: nothing to resume: no journal at %s", path)
		}
		if err := jl.writeHeader(path, meta); err != nil {
			return nil, err
		}
		return jl, nil
	default:
		return nil, fmt.Errorf("harness: open journal: %w", err)
	}

	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("harness: open journal: %w", err)
	}
	jl.f = f
	return jl, nil
}

// rotateAside moves a foreign or damaged journal to path+".old", or to
// path+".old.N" for the first free N when earlier rotations already
// took the shorter names: one rotation must never clobber another, so
// every superseded sweep's bytes stay inspectable.
func rotateAside(path string) {
	dst := path + ".old"
	for n := 1; ; n++ {
		if _, err := os.Lstat(dst); os.IsNotExist(err) {
			break
		}
		dst = fmt.Sprintf("%s.old.%d", path, n)
	}
	os.Rename(path, dst)
}

// writeHeader starts a fresh journal file containing only the meta line.
// The handle is opened with O_APPEND so every later Record is a single
// atomic append — two processes writing the same journal (the future
// multi-worker fabric) can interleave lines but never bytes within one.
func (jl *Journal) writeHeader(path string, meta JournalMeta) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("harness: create journal: %w", err)
	}
	b, err := json.Marshal(journalHeader{Meta: meta})
	if err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(append(b, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("harness: write journal header: %w", err)
	}
	jl.f = f
	return nil
}

// load replays an existing journal into the status map, reporting whether
// it belongs to the sweep described by want. A torn final line (crashed
// writer) is ignored; a missing or mismatched header is an error.
func (jl *Journal) load(f *os.File, want JournalMeta) (bool, error) {
	sc := bufio.NewScanner(f)
	if !sc.Scan() {
		return false, fmt.Errorf("harness: journal %s is empty", f.Name())
	}
	var hdr journalHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || hdr.Meta.Version == 0 {
		return false, fmt.Errorf("harness: journal %s has no valid header line", f.Name())
	}
	if hdr.Meta != want {
		return false, fmt.Errorf("harness: journal %s belongs to a different sweep: recorded %+v, want %+v",
			f.Name(), hdr.Meta, want)
	}
	for sc.Scan() {
		var e JournalEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil || e.FP == "" {
			continue // torn trailing line from a crashed writer
		}
		jl.status[e.FP] = e.Status
	}
	return true, nil
}

// Record appends one entry. Best-effort on the file write (a journal that
// cannot be written must not fail the sweep); the in-memory status map is
// always updated.
func (jl *Journal) Record(e JournalEntry) {
	if e.Time == "" {
		e.Time = time.Now().UTC().Format(time.RFC3339)
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	jl.status[e.FP] = e.Status
	if jl.f == nil {
		return
	}
	if b, err := json.Marshal(&e); err == nil {
		jl.f.Write(append(b, '\n'))
	}
}

// noteStatus records an entry in the in-memory status map without
// writing the file: used when the line was already appended durably
// through a result-store transaction (see supervisor.go journalRecord).
func (jl *Journal) noteStatus(e JournalEntry) {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	jl.status[e.FP] = e.Status
}

// EnsureJournalHeader makes path a valid journal for meta without
// keeping it open: used to seed the mirror side's journal before store
// transactions replicate entry lines there, so a failed-over mirror
// directory is resumable on its own. An existing matching journal is
// left untouched; a foreign one is rotated aside.
func EnsureJournalHeader(path string, meta JournalMeta) error {
	jl, err := OpenJournal(path, meta, false)
	if err != nil {
		return err
	}
	return jl.Close()
}

// Status returns the recorded status for a cache key ("" = never run).
func (jl *Journal) Status(fpKey string) string {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return jl.status[fpKey]
}

// Summary counts recorded outcomes by status.
func (jl *Journal) Summary() (ok, degraded, failed int) {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	for _, st := range jl.status {
		switch st {
		case "ok":
			ok++
		case "degraded":
			degraded++
		case "failed":
			failed++
		}
	}
	return ok, degraded, failed
}

// Close fsyncs and closes the journal file: sweep completion is the
// journal's durability point.
func (jl *Journal) Close() error {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f == nil {
		return nil
	}
	jl.f.Sync()
	err := jl.f.Close()
	jl.f = nil
	return err
}
