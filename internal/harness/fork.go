package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/resultstore"
)

// Prefix-forked sweeps. Many sweep experiments run the same (kernel,
// grid) under configs that differ only in a parameter the simulation
// does not consume until deep into the run — the VT swap latencies, which
// matter only once the first swap happens. Those jobs share a common
// prefix: every cycle up to the first swap is bit-identical across the
// sweep. With Params.Checkpoint set, runMany groups jobs by their
// *prefix fingerprint* (the ordinary content fingerprint with the
// divergeable parameters neutralized; see gpu.ForkNeutralizedConfig),
// runs the first member of each group as the *donor* — a full simulation
// that captures checkpoints while the no-swaps-yet guard holds — and
// starts every other member from the donor's last checkpoint instead of
// from cycle zero. Forked results are bit-identical to full runs (see
// internal/gpu/checkpoint_test.go and harness fork tests), so the memo
// and disk caches treat them exactly like ordinary results.
//
// Checkpoints persist in the disk cache (CacheDir) keyed by the prefix
// fingerprint, so a re-invocation — including a -resume after a crash —
// forks across processes without re-simulating the prefix.

// defaultCheckpointEvery is the donor capture cadence when no explicit
// fork cycle is requested. Small enough that even heavily diluted sweep
// runs capture a prefix before the first swap; the gap widens
// automatically as the run grows (see gpu.Options.CheckpointEvery).
const defaultCheckpointEvery = 64

// forkGuard is the capture guard for swap-latency sweeps: a checkpoint
// is variant-independent only while no swap has consumed the latencies.
// The zero core.Stats of non-VT policies keeps the guard open, which is
// correct: baseline runs never consume the neutralized parameters.
func forkGuard(cycle int64, vt core.Stats) bool {
	return vt.SwapsOut == 0 && vt.SwapsIn == 0
}

// forkSpec threads checkpoint behavior through a supervised execution:
// capture (donor) or resume (fork). Nil means an ordinary run.
type forkSpec struct {
	// Donor side: capture checkpoints during the run.
	capture bool
	at      int64 // explicit one-shot fork cycle; 0 means periodic
	// captured is the last checkpoint the successful attempt produced.
	captured *gpu.Checkpoint

	// Fork side: resume from this checkpoint instead of cycle zero.
	ck *gpu.Checkpoint
	// forkedFrom labels the journal entry: "<prefix-key>@<cycle>".
	forkedFrom string
}

// ckEntry coalesces one prefix group's checkpoint production: the first
// job to arrive becomes the donor (or loads the checkpoint from disk);
// the rest wait and fork.
type ckEntry struct {
	once    sync.Once
	ck      *gpu.Checkpoint
	donorFP string // full fingerprint of the donor job, "" if disk-loaded
	res     *gpu.Result
	err     error
}

var ckCache = map[string]*ckEntry{} // keyed by prefix fingerprint; memoMu

func ckEntryFor(prefixFP string) *ckEntry {
	memoMu.Lock()
	defer memoMu.Unlock()
	e, ok := ckCache[prefixFP]
	if !ok {
		e = &ckEntry{}
		ckCache[prefixFP] = e
	}
	return e
}

// forkPlan annotates jobs that belong to a prefix group worth forking:
// at least two members with distinct full fingerprints (identical jobs
// already coalesce in the memo cache) sharing a neutralized fingerprint.
func forkPlan(p Params, jobs []Job) []Job {
	if !p.Checkpoint || p.Sampling.Enabled() {
		return jobs
	}
	prefixes := make([]string, len(jobs))
	members := map[string]map[string]bool{} // prefixFP -> set of full FPs
	for i, j := range jobs {
		cfg := p.Config
		if j.Mutate != nil {
			j.Mutate(&cfg)
		}
		fp, err := fingerprint(j.Workload, p.Scale, p.Dilute, &cfg, gpu.SamplingOptions{})
		if err != nil {
			continue
		}
		ncfg := gpu.ForkNeutralizedConfig(cfg)
		pfp, err := fingerprint(j.Workload, p.Scale, p.Dilute, &ncfg, gpu.SamplingOptions{})
		if err != nil {
			continue
		}
		prefixes[i] = pfp
		if members[pfp] == nil {
			members[pfp] = map[string]bool{}
		}
		members[pfp][fp] = true
	}
	out := make([]Job, len(jobs))
	copy(out, jobs)
	for i := range out {
		if pfp := prefixes[i]; pfp != "" && len(members[pfp]) >= 2 {
			out[i].PrefixFP = pfp
		}
	}
	return out
}

// forkExecute runs one fork-eligible job: the group's first arrival
// becomes the donor (full run, capturing), later arrivals resume from
// the donor's checkpoint. Returns the result plus the prefix cycles the
// job did NOT simulate (zero for the donor and for fallback full runs),
// so the caller can keep SimCycles an honest count of simulated work.
func forkExecute(p Params, j Job, cfg config.GPUConfig, fp string) (*gpu.Result, error, int64) {
	ce := ckEntryFor(j.PrefixFP)
	ce.once.Do(func() {
		st := storeFor(p)
		if st != nil {
			lid := p.Trace.Begin(p.span, "fork.ckload", j.Workload, j.Variant)
			ck := diskLoadCheckpoint(p.ctx(), st, j.PrefixFP)
			if ck != nil {
				p.Trace.SetAttr(lid, "outcome", "hit")
				p.Trace.SetAttr(lid, "cycle", fmt.Sprint(ck.Cycle))
				p.Trace.End(lid)
				ce.ck = ck
				return
			}
			p.Trace.SetAttr(lid, "outcome", "miss")
			p.Trace.End(lid)
		}
		spec := &forkSpec{capture: true, at: p.ForkCycle}
		ce.res, ce.err = supervisedExecuteFork(p, j, cfg, fp, spec)
		ce.donorFP = fp
		ce.ck = spec.captured
		if ce.ck != nil {
			bumpMetric(func(m *RunMetrics) { m.CheckpointsCaptured++ })
			if st != nil {
				sid := p.Trace.Begin(p.span, "fork.ckstore", j.Workload, j.Variant)
				diskStoreCheckpoint(p.ctx(), st, j.PrefixFP, ce.ck)
				p.Trace.End(sid)
			}
		}
	})
	if ce.donorFP == fp {
		return ce.res, ce.err, 0
	}
	if ce.ck == nil {
		// The donor produced no usable checkpoint (guard failed before the
		// first capture, or the donor itself failed): fall back to a full
		// simulation.
		bumpMetric(func(m *RunMetrics) { m.CheckpointMisses++ })
		res, err := supervisedExecuteFork(p, j, cfg, fp, nil)
		return res, err, 0
	}
	bumpMetric(func(m *RunMetrics) {
		m.CheckpointHits++
		m.PrefixCyclesSaved += ce.ck.Cycle
	})
	spec := &forkSpec{
		ck:         ce.ck,
		forkedFrom: fmt.Sprintf("%s@%d", cacheKey(j.PrefixFP)[:12], ce.ck.Cycle),
	}
	res, err := supervisedExecuteFork(p, j, cfg, fp, spec)
	if err != nil {
		return res, err, 0
	}
	return res, err, ce.ck.Cycle
}

// ckDiskEntry is the JSON envelope of one persisted checkpoint. Like
// result entries, the full prefix fingerprint travels in the envelope so
// mismatches are detected by content.
type ckDiskEntry struct {
	Version     int             `json:"version"`
	Fingerprint string          `json:"fingerprint"`
	Checkpoint  *gpu.Checkpoint `json:"checkpoint"`
}

// diskLoadCheckpoint returns the persisted checkpoint for the prefix
// fingerprint, or nil. The store has already verified content checksums
// (healing from the mirror where possible); envelope-level problems
// (stale versions, fingerprint mismatch) quarantine the object exactly
// like corrupt result entries, and the caller falls back to a full
// simulation.
func diskLoadCheckpoint(ctx context.Context, st *resultstore.Store, prefixFP string) *gpu.Checkpoint {
	if st == nil {
		return nil
	}
	key := cacheKey(prefixFP)
	var b []byte
	err := storeRetry(ctx, func() error {
		var gerr error
		b, gerr = st.Get(resultstore.KindCheckpoint, key)
		return gerr
	})
	if err != nil {
		bumpMetric(func(m *RunMetrics) { m.StoreMisses++ })
		return nil
	}
	reject := func(reason string) {
		st.Quarantine(resultstore.KindCheckpoint, key, reason)
		bumpMetric(func(m *RunMetrics) { m.StoreMisses++ })
	}
	var e ckDiskEntry
	if err := json.Unmarshal(b, &e); err != nil {
		reject(fmt.Sprintf("corrupt checkpoint JSON: %v", err))
		return nil
	}
	switch {
	case e.Version != diskCacheVersion:
		reject(fmt.Sprintf("stale version %d (want %d)", e.Version, diskCacheVersion))
	case e.Fingerprint != prefixFP:
		reject("checkpoint fingerprint mismatch")
	case e.Checkpoint == nil:
		reject("entry has no checkpoint")
	case e.Checkpoint.Version != gpu.CheckpointVersion:
		reject(fmt.Sprintf("stale checkpoint format %d (want %d)",
			e.Checkpoint.Version, gpu.CheckpointVersion))
	default:
		bumpMetric(func(m *RunMetrics) { m.StoreHits++ })
		return e.Checkpoint
	}
	return nil
}

// diskStoreCheckpoint persists a checkpoint for the prefix fingerprint
// as one store transaction. Best-effort beyond the bounded transient
// retry, like result persistence.
func diskStoreCheckpoint(ctx context.Context, st *resultstore.Store, prefixFP string, ck *gpu.Checkpoint) {
	if st == nil {
		return
	}
	b, err := json.Marshal(ckDiskEntry{
		Version:     diskCacheVersion,
		Fingerprint: prefixFP,
		Checkpoint:  ck,
	})
	if err != nil {
		return
	}
	tx := st.Begin()
	tx.Put(resultstore.KindCheckpoint, cacheKey(prefixFP), b)
	commitStoreTx(ctx, tx)
}
