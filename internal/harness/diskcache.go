package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/gpu"
)

// diskCacheVersion invalidates every on-disk entry when the fingerprint
// scheme or the Result layout changes meaning. Bump it whenever a change
// could make an old cached Result incorrect for the same fingerprint
// (new statistics fed by simulation state, changed kernel generators,
// reinterpreted config fields).
const diskCacheVersion = 1

// diskEntry is the JSON envelope of one cached run. The full fingerprint
// is stored (not just its hash) so version or scheme mismatches are
// detected by content, never assumed from the filename.
type diskEntry struct {
	Version     int         `json:"version"`
	Fingerprint string      `json:"fingerprint"`
	Result      *gpu.Result `json:"result"`
}

// cacheKey hashes a fingerprint into the stable hex id used both for
// cache file names and for completion-journal entries, so a journal line
// can be correlated with its cached Result on disk.
func cacheKey(fp string) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("v%d|%s", diskCacheVersion, fp)))
	return hex.EncodeToString(sum[:16])
}

// diskCachePath maps a fingerprint to its cache file.
func diskCachePath(dir, fp string) string {
	return filepath.Join(dir, "vtsim-"+cacheKey(fp)+".json")
}

// diskLoad returns the cached Result for the fingerprint, or nil. A
// missing file is a plain miss; a file that exists but cannot be used
// (torn/corrupt JSON, stale version, fingerprint mismatch) is quarantined
// rather than silently re-simulated over, so corruption stays observable.
func diskLoad(dir, fp string) *gpu.Result {
	path := diskCachePath(dir, fp)
	b, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var e diskEntry
	if err := json.Unmarshal(b, &e); err != nil {
		quarantine(path, fmt.Sprintf("corrupt JSON: %v", err))
		return nil
	}
	switch {
	case e.Version != diskCacheVersion:
		quarantine(path, fmt.Sprintf("stale version %d (want %d)", e.Version, diskCacheVersion))
	case e.Fingerprint != fp:
		quarantine(path, "fingerprint mismatch (filename hash collision or corruption)")
	case e.Result == nil:
		quarantine(path, "entry has no result")
	default:
		return e.Result
	}
	return nil
}

// quarantine moves an unusable cache file aside as <name>.corrupt (so the
// caller's re-simulation writes a fresh entry and the bad bytes remain
// inspectable) and logs one warning line. Best-effort: if the rename
// fails the file is removed so it cannot shadow the rewrite.
func quarantine(path, reason string) {
	dst := path + ".corrupt"
	if err := os.Rename(path, dst); err != nil {
		os.Remove(path)
		dst = "(removed)"
	}
	fmt.Fprintf(os.Stderr, "harness: quarantined cache file %s -> %s: %s\n",
		filepath.Base(path), filepath.Base(dst), reason)
}

// diskStore writes the Result for the fingerprint, creating the directory
// if needed. Best-effort: a cache that cannot be written must not fail
// the run, so errors are swallowed. The temp-file + rename dance keeps
// concurrent invocations from reading torn entries.
func diskStore(dir, fp string, res *gpu.Result) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	b, err := json.Marshal(diskEntry{Version: diskCacheVersion, Fingerprint: fp, Result: res})
	if err != nil {
		return
	}
	path := diskCachePath(dir, fp)
	tmp, err := os.CreateTemp(dir, ".vtsim-*.tmp")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if os.Rename(name, path) != nil {
		os.Remove(name)
	}
}
