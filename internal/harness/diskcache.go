package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/gpu"
)

// diskCacheVersion invalidates every on-disk entry when the fingerprint
// scheme or the Result layout changes meaning. Bump it whenever a change
// could make an old cached Result incorrect for the same fingerprint
// (new statistics fed by simulation state, changed kernel generators,
// reinterpreted config fields).
const diskCacheVersion = 1

// diskEntry is the JSON envelope of one cached run. The full fingerprint
// is stored (not just its hash) so version or scheme mismatches are
// detected by content, never assumed from the filename.
type diskEntry struct {
	Version     int         `json:"version"`
	Fingerprint string      `json:"fingerprint"`
	Result      *gpu.Result `json:"result"`
}

// diskCachePath maps a fingerprint to its cache file.
func diskCachePath(dir, fp string) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("v%d|%s", diskCacheVersion, fp)))
	return filepath.Join(dir, "vtsim-"+hex.EncodeToString(sum[:16])+".json")
}

// diskLoad returns the cached Result for the fingerprint, or nil. All
// failures (missing file, corrupt JSON, stale version, hash collision)
// are simply misses: the caller re-simulates and overwrites.
func diskLoad(dir, fp string) *gpu.Result {
	b, err := os.ReadFile(diskCachePath(dir, fp))
	if err != nil {
		return nil
	}
	var e diskEntry
	if json.Unmarshal(b, &e) != nil ||
		e.Version != diskCacheVersion || e.Fingerprint != fp || e.Result == nil {
		return nil
	}
	return e.Result
}

// diskStore writes the Result for the fingerprint, creating the directory
// if needed. Best-effort: a cache that cannot be written must not fail
// the run, so errors are swallowed. The temp-file + rename dance keeps
// concurrent invocations from reading torn entries.
func diskStore(dir, fp string, res *gpu.Result) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	b, err := json.Marshal(diskEntry{Version: diskCacheVersion, Fingerprint: fp, Result: res})
	if err != nil {
		return
	}
	path := diskCachePath(dir, fp)
	tmp, err := os.CreateTemp(dir, ".vtsim-*.tmp")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if os.Rename(name, path) != nil {
		os.Remove(name)
	}
}
