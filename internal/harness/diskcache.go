package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/gpu"
	"repro/internal/resultstore"
)

// The disk layer of the memo cache is the transactional result store
// (internal/resultstore): results, checkpoints, and completion-journal
// lines commit as atomic transactions to Params.CacheDir and replicate
// to Params.MirrorDir. Object files keep the historical vtsim-/vtck-
// names, and directories written by pre-store builds open unchanged as
// legacy objects (readable, unverified), so existing caches survive the
// migration.

// diskCacheVersion invalidates every on-disk entry when the fingerprint
// scheme or the Result layout changes meaning. Bump it whenever a change
// could make an old cached Result incorrect for the same fingerprint
// (new statistics fed by simulation state, changed kernel generators,
// reinterpreted config fields).
const diskCacheVersion = 1

// diskEntry is the JSON envelope of one cached run. The full fingerprint
// is stored (not just its hash) so version or scheme mismatches are
// detected by content, never assumed from the filename.
type diskEntry struct {
	Version     int         `json:"version"`
	Fingerprint string      `json:"fingerprint"`
	Result      *gpu.Result `json:"result"`
}

// cacheKey hashes a fingerprint into the stable hex id used for cache
// object names, completion-journal entries, and result-store keys, so a
// journal line can be correlated with its stored Result.
func cacheKey(fp string) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("v%d|%s", diskCacheVersion, fp)))
	return hex.EncodeToString(sum[:16])
}

// Stores are opened once per (CacheDir, MirrorDir) pair and shared by
// every run of the sweep; ResetMetrics drops them, so tests that reset
// between invocations exercise a fresh open (index replay + WAL
// recovery) exactly like a new process would.
type storeHandle struct {
	st  *resultstore.Store
	err error
}

var (
	storesMu sync.Mutex
	stores   = map[string]*storeHandle{}
)

// storeFor returns the result store backing p's cache directories, nil
// when caching is off or the store cannot be opened (the sweep then
// runs uncached, like the old best-effort disk cache).
func storeFor(p Params) *resultstore.Store {
	if p.CacheDir == "" {
		return nil
	}
	storesMu.Lock()
	defer storesMu.Unlock()
	k := p.CacheDir + "\x00" + p.MirrorDir
	h, ok := stores[k]
	if !ok {
		st, err := resultstore.Open(resultstore.Options{
			Dir:     p.CacheDir,
			Mirror:  p.MirrorDir,
			Fault:   p.StoreFault,
			OnEvent: storeEvent,
		})
		h = &storeHandle{st: st, err: err}
		if err != nil {
			h.st = nil
			fmt.Fprintf(os.Stderr, "harness: result store %s unavailable (running uncached): %v\n", p.CacheDir, err)
		}
		stores[k] = h
	}
	return h.st
}

// storeEvent folds store audit events into the run metrics.
func storeEvent(ev resultstore.Event) {
	if ev.Op == "repair" {
		bumpMetric(func(m *RunMetrics) { m.StoreRepairs++ })
	}
}

// resetStores closes and forgets every open store. Called by
// ResetMetrics (outside the metrics lock: opening a store can emit
// events that take it).
func resetStores() {
	storesMu.Lock()
	defer storesMu.Unlock()
	for _, h := range stores {
		if h.st != nil {
			h.st.Close()
		}
	}
	stores = map[string]*storeHandle{}
}

// storeRetryAttempts bounds the supervisor's retry-with-backoff for
// transient store I/O errors — a storage-layer ladder distinct from the
// safe-mode simulation retry in supervisor.go.
const storeRetryAttempts = 3

func storeRetry(op func() error) error {
	backoff := 2 * time.Millisecond
	for attempt := 1; ; attempt++ {
		err := op()
		if err == nil || !resultstore.IsTransient(err) || attempt == storeRetryAttempts {
			return err
		}
		bumpMetric(func(m *RunMetrics) { m.StoreRetries++ })
		time.Sleep(backoff)
		backoff *= 4
	}
}

// commitStoreTx commits with bounded retry on transient I/O. Best-effort
// beyond that: a store that cannot be written must not fail the sweep,
// matching the old disk cache's contract.
func commitStoreTx(tx *resultstore.Tx) {
	if err := storeRetry(tx.Commit); err != nil {
		fmt.Fprintf(os.Stderr, "harness: result store commit failed: %v\n", err)
	}
}

// diskLoad returns the cached Result for the fingerprint, or nil. The
// store verifies content checksums and heals from the mirror before the
// payload reaches this envelope check; envelope-level mismatches (stale
// version, fingerprint collision) quarantine the object on every side
// so the re-simulation's rewrite is not shadowed.
func diskLoad(st *resultstore.Store, fp string) *gpu.Result {
	if st == nil {
		return nil
	}
	key := cacheKey(fp)
	var b []byte
	err := storeRetry(func() error {
		var gerr error
		b, gerr = st.Get(resultstore.KindResult, key)
		return gerr
	})
	if err != nil {
		if !errors.Is(err, resultstore.ErrNotFound) {
			fmt.Fprintf(os.Stderr, "harness: cache read %s: %v\n", key, err)
		}
		bumpMetric(func(m *RunMetrics) { m.StoreMisses++ })
		return nil
	}
	reject := func(reason string) {
		st.Quarantine(resultstore.KindResult, key, reason)
		bumpMetric(func(m *RunMetrics) { m.StoreMisses++ })
	}
	var e diskEntry
	if err := json.Unmarshal(b, &e); err != nil {
		reject(fmt.Sprintf("corrupt JSON: %v", err))
		return nil
	}
	switch {
	case e.Version != diskCacheVersion:
		reject(fmt.Sprintf("stale version %d (want %d)", e.Version, diskCacheVersion))
	case e.Fingerprint != fp:
		reject("fingerprint mismatch (filename hash collision or corruption)")
	case e.Result == nil:
		reject("entry has no result")
	default:
		bumpMetric(func(m *RunMetrics) { m.StoreHits++ })
		return e.Result
	}
	return nil
}
