package harness

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"os"
	"sync"
	"time"

	"repro/internal/gpu"
	"repro/internal/resultstore"
)

// The disk layer of the memo cache is the transactional result store
// (internal/resultstore): results, checkpoints, and completion-journal
// lines commit as atomic transactions to Params.CacheDir and replicate
// to Params.MirrorDir. Object files keep the historical vtsim-/vtck-
// names, and directories written by pre-store builds open unchanged as
// legacy objects (readable, unverified), so existing caches survive the
// migration.

// diskCacheVersion invalidates every on-disk entry when the fingerprint
// scheme or the Result layout changes meaning. Bump it whenever a change
// could make an old cached Result incorrect for the same fingerprint
// (new statistics fed by simulation state, changed kernel generators,
// reinterpreted config fields).
const diskCacheVersion = 1

// diskEntry is the JSON envelope of one cached run. The full fingerprint
// is stored (not just its hash) so version or scheme mismatches are
// detected by content, never assumed from the filename.
type diskEntry struct {
	Version     int         `json:"version"`
	Fingerprint string      `json:"fingerprint"`
	Result      *gpu.Result `json:"result"`
}

// cacheKey hashes a fingerprint into the stable hex id used for cache
// object names, completion-journal entries, and result-store keys, so a
// journal line can be correlated with its stored Result.
func cacheKey(fp string) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("v%d|%s", diskCacheVersion, fp)))
	return hex.EncodeToString(sum[:16])
}

// Stores are opened once per (CacheDir, MirrorDir) pair and shared by
// every run of the sweep; ResetMetrics drops them, so tests that reset
// between invocations exercise a fresh open (index replay + WAL
// recovery) exactly like a new process would.
type storeHandle struct {
	st  *resultstore.Store
	err error
}

var (
	storesMu sync.Mutex
	stores   = map[string]*storeHandle{}
)

// storeFor returns the result store backing p's cache directories, nil
// when caching is off or the store cannot be opened (the sweep then
// runs uncached, like the old best-effort disk cache).
func storeFor(p Params) *resultstore.Store {
	if p.CacheDir == "" {
		return nil
	}
	storesMu.Lock()
	defer storesMu.Unlock()
	k := p.CacheDir + "\x00" + p.MirrorDir
	h, ok := stores[k]
	if !ok {
		st, err := resultstore.Open(resultstore.Options{
			Dir:     p.CacheDir,
			Mirror:  p.MirrorDir,
			Fault:   p.StoreFault,
			OnEvent: storeEvent,
		})
		h = &storeHandle{st: st, err: err}
		if err != nil {
			h.st = nil
			fmt.Fprintf(os.Stderr, "harness: result store %s unavailable (running uncached): %v\n", p.CacheDir, err)
		}
		stores[k] = h
	}
	return h.st
}

// storeEvent folds store audit events into the run metrics.
func storeEvent(ev resultstore.Event) {
	if ev.Op == "repair" {
		bumpMetric(func(m *RunMetrics) { m.StoreRepairs++ })
	}
}

// resetStores closes and forgets every open store. Called by
// ResetMetrics (outside the metrics lock: opening a store can emit
// events that take it).
func resetStores() {
	storesMu.Lock()
	defer storesMu.Unlock()
	for _, h := range stores {
		if h.st != nil {
			h.st.Close()
		}
	}
	stores = map[string]*storeHandle{}
}

// storeRetryAttempts bounds the supervisor's retry-with-backoff for
// transient store I/O errors — a storage-layer ladder distinct from the
// safe-mode simulation retry in supervisor.go.
const storeRetryAttempts = 3

// storeRetry runs op, retrying transient store I/O errors with
// jittered exponential backoff (equal jitter over a 2ms/8ms base, so a
// fleet of workers hammering one store desynchronizes instead of
// retrying in lockstep). The sleep aborts when ctx is canceled —
// graceful shutdown must never block mid-backoff — returning the op
// error joined with the context error.
func storeRetry(ctx context.Context, op func() error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	backoff := 2 * time.Millisecond
	for attempt := 1; ; attempt++ {
		err := op()
		if err == nil || !resultstore.IsTransient(err) || attempt == storeRetryAttempts {
			return err
		}
		bumpMetric(func(m *RunMetrics) { m.StoreRetries++ })
		// Equal jitter: half the backoff is deterministic spacing, the
		// other half uniform random, keeping a minimum gap while
		// spreading concurrent retriers.
		d := backoff/2 + rand.N(backoff/2+1)
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return errors.Join(err, ctx.Err())
		}
		backoff *= 4
	}
}

// commitStoreTx commits with bounded retry on transient I/O. Best-effort
// beyond that: a store that cannot be written must not fail the sweep,
// matching the old disk cache's contract.
func commitStoreTx(ctx context.Context, tx *resultstore.Tx) {
	if err := storeRetry(ctx, tx.Commit); err != nil {
		fmt.Fprintf(os.Stderr, "harness: result store commit failed: %v\n", err)
	}
}

// StoreGetObject reads one raw store object (its JSON envelope bytes)
// by kind and cache key from p's result store. The sweep fabric uses it
// on both sides of object sync: the coordinator serves checkpoints and
// results to workers, and a worker checks its local store before
// fetching. Returns resultstore.ErrNotFound when the object is absent
// and an error when no store is attached.
func StoreGetObject(p Params, kind resultstore.Kind, key string) ([]byte, error) {
	st := storeFor(p)
	if st == nil {
		return nil, fmt.Errorf("harness: no result store attached")
	}
	var b []byte
	err := storeRetry(p.ctx(), func() error {
		var gerr error
		b, gerr = st.Get(kind, key)
		return gerr
	})
	return b, err
}

// StorePutObject writes one raw store object as a single transaction.
// The payload must be a valid store envelope for the kind: consumers
// re-verify the embedded content fingerprint on read (diskLoad,
// diskLoadCheckpoint), so a corrupt or mismatched sync is quarantined
// on first use, never trusted.
func StorePutObject(p Params, kind resultstore.Kind, key string, b []byte) error {
	st := storeFor(p)
	if st == nil {
		return fmt.Errorf("harness: no result store attached")
	}
	tx := st.Begin()
	tx.Put(kind, key, b)
	return storeRetry(p.ctx(), tx.Commit)
}

// diskLoad returns the cached Result for the fingerprint, or nil. The
// store verifies content checksums and heals from the mirror before the
// payload reaches this envelope check; envelope-level mismatches (stale
// version, fingerprint collision) quarantine the object on every side
// so the re-simulation's rewrite is not shadowed.
func diskLoad(ctx context.Context, st *resultstore.Store, fp string) *gpu.Result {
	if st == nil {
		return nil
	}
	key := cacheKey(fp)
	var b []byte
	err := storeRetry(ctx, func() error {
		var gerr error
		b, gerr = st.Get(resultstore.KindResult, key)
		return gerr
	})
	if err != nil {
		if !errors.Is(err, resultstore.ErrNotFound) {
			fmt.Fprintf(os.Stderr, "harness: cache read %s: %v\n", key, err)
		}
		bumpMetric(func(m *RunMetrics) { m.StoreMisses++ })
		return nil
	}
	reject := func(reason string) {
		st.Quarantine(resultstore.KindResult, key, reason)
		bumpMetric(func(m *RunMetrics) { m.StoreMisses++ })
	}
	var e diskEntry
	if err := json.Unmarshal(b, &e); err != nil {
		reject(fmt.Sprintf("corrupt JSON: %v", err))
		return nil
	}
	switch {
	case e.Version != diskCacheVersion:
		reject(fmt.Sprintf("stale version %d (want %d)", e.Version, diskCacheVersion))
	case e.Fingerprint != fp:
		reject("fingerprint mismatch (filename hash collision or corruption)")
	case e.Result == nil:
		reject("entry has no result")
	default:
		bumpMetric(func(m *RunMetrics) { m.StoreHits++ })
		return e.Result
	}
	return nil
}
