package harness

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/faultinject"
	"repro/internal/gpu"
)

// supervisorParams is a small fast sweep shape shared by the tests: four
// jobs (2 workloads x 2 policies) at heavy dilution.
func supervisorParams() (Params, []Job) {
	p := Params{Scale: 1, Config: config.Small(), Workers: 2, Dilute: 60}
	jobs := policyJobs([]string{"vecadd", "nw"},
		[]config.Policy{config.PolicyBaseline, config.PolicyVT})
	return p, jobs
}

// TestSupervisedPanicProducesBundle injects a persistent panic into one
// run of a four-job sweep and asserts the full contract: the sweep
// completes the other three jobs, the failed run was retried in safe
// mode, exactly one repro bundle lands in FailDir with a populated stack,
// and the metrics record the panic, the retry, and the failure.
func TestSupervisedPanicProducesBundle(t *testing.T) {
	ResetMetrics()
	defer ResetMetrics()
	p, jobs := supervisorParams()
	p.FailDir = t.TempDir()
	p.Inject = &faultinject.Spec{Workload: "vecadd", Variant: "vt", Cycle: 100,
		Kind: faultinject.Panic}

	res, err := runMany(p, jobs)
	if err == nil {
		t.Fatal("expected the injected failure to surface in the batch error")
	}
	var fe *FailedRunError
	if !errors.As(err, &fe) {
		t.Fatalf("batch error does not wrap a FailedRunError: %v", err)
	}
	f := fe.Failure
	if f.Workload != "vecadd" || f.Variant != "vt" {
		t.Fatalf("failure names %s/%s, want vecadd/vt", f.Workload, f.Variant)
	}
	if !f.SafeModeRetried || f.Attempts != 2 {
		t.Fatalf("panic must trigger the safe-mode retry: %+v", f)
	}
	if !strings.Contains(f.Stack, "faultinject") {
		t.Fatalf("bundle stack does not reach the panic site:\n%s", f.Stack)
	}
	if !strings.Contains(f.Error, "injected panic") {
		t.Fatalf("failure error = %q", f.Error)
	}
	if len(f.Config) == 0 {
		t.Fatal("bundle is missing the config JSON")
	}

	// The remaining three jobs completed.
	if len(res) != 3 {
		t.Fatalf("got %d results, want 3 surviving jobs", len(res))
	}
	if _, ok := res[key{"vecadd", "vt"}]; ok {
		t.Fatal("failed job must not appear in the results")
	}

	// Exactly one repro bundle, and it round-trips as JSON.
	bundles, _ := filepath.Glob(filepath.Join(p.FailDir, "failure-*.json"))
	if len(bundles) != 1 {
		t.Fatalf("got %d repro bundles, want exactly 1", len(bundles))
	}
	b, err := os.ReadFile(bundles[0])
	if err != nil {
		t.Fatal(err)
	}
	var onDisk RunFailure
	if err := json.Unmarshal(b, &onDisk); err != nil {
		t.Fatalf("bundle is not valid JSON: %v", err)
	}
	if onDisk.Workload != "vecadd" || onDisk.Stack == "" {
		t.Fatalf("bundle contents incomplete: %+v", onDisk)
	}

	m := Metrics()
	if m.Panics != 1 || m.Retries != 1 || m.Failures != 1 || m.Degraded != 0 {
		t.Fatalf("metrics = %+v, want 1 panic, 1 retry, 1 failure, 0 degraded", m)
	}
	if m.Executed != 4 {
		t.Fatalf("Executed = %d, want 4 (retries don't double-count)", m.Executed)
	}
}

// TestSupervisedDegradation injects a first-attempt-only panic: the
// safe-mode retry must succeed, the sweep must see no error, and the
// degraded result must be bit-identical to an uninjected run (the safe
// path's determinism contract).
func TestSupervisedDegradation(t *testing.T) {
	ResetMetrics()
	defer ResetMetrics()
	p, jobs := supervisorParams()
	p.FailDir = t.TempDir()
	p.Inject = &faultinject.Spec{Workload: "vecadd", Variant: "vt", Cycle: 100,
		Kind: faultinject.PanicOnce}

	degraded, err := runMany(p, jobs)
	if err != nil {
		t.Fatalf("degradation must absorb the failure, got %v", err)
	}
	if len(degraded) != 4 {
		t.Fatalf("got %d results, want 4", len(degraded))
	}
	m := Metrics()
	if m.Panics != 1 || m.Retries != 1 || m.Degraded != 1 || m.Failures != 0 {
		t.Fatalf("metrics = %+v, want 1 panic, 1 retry, 1 degraded, 0 failures", m)
	}
	if got, _ := filepath.Glob(filepath.Join(p.FailDir, "*")); len(got) != 0 {
		t.Fatalf("a degraded (recovered) run must not write a bundle, found %v", got)
	}

	ResetMetrics()
	p.Inject = nil
	clean, err := runMany(p, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(degraded, clean) {
		t.Fatal("safe-mode result differs from the normal engine result")
	}
}

// TestSupervisedDeadline injects a hang and bounds the run with
// RunTimeout: the failure must carry a deadline diagnostic and must NOT
// be retried (a wall-clock overrun is not an engine-path bug).
func TestSupervisedDeadline(t *testing.T) {
	ResetMetrics()
	defer ResetMetrics()
	p, jobs := supervisorParams()
	p.FailDir = t.TempDir()
	// nw/vt simulates ~7.6k cycles at this dilution, so many deadline
	// polls (every 512 cycles) follow the hang at cycle 100. The healthy
	// runs must finish well inside the timeout even under -race, so keep
	// the margin wide: a diluted run takes ~0.1s worst case, the hang
	// overshoots the 1s deadline by 2x.
	p.RunTimeout = 1 * time.Second
	p.Inject = &faultinject.Spec{Workload: "nw", Variant: "vt", Cycle: 100,
		Kind: faultinject.Hang, HangFor: 2 * time.Second}

	_, err := runMany(p, jobs)
	var fe *FailedRunError
	if !errors.As(err, &fe) {
		t.Fatalf("want a FailedRunError, got %v", err)
	}
	f := fe.Failure
	if f.Workload != "nw" || f.Variant != "vt" {
		t.Fatalf("failure names %s/%s, want nw/vt", f.Workload, f.Variant)
	}
	if f.SafeModeRetried || f.Attempts != 1 {
		t.Fatalf("deadline failures must not retry: %+v", f)
	}
	if f.Diagnostic == nil || f.Diagnostic.Reason != gpu.ReasonDeadline {
		t.Fatalf("missing deadline diagnostic: %+v", f.Diagnostic)
	}
	if m := Metrics(); m.Deadlines != 1 || m.Retries != 0 {
		t.Fatalf("metrics = %+v, want 1 deadline, 0 retries", m)
	}
}

// TestSupervisedCorruption injects bookkeeping corruption: the invariant
// checker (forced on for injected runs) trips on both attempts, the
// bundle carries the violation diagnostic, and the retry is recorded.
func TestSupervisedCorruption(t *testing.T) {
	ResetMetrics()
	defer ResetMetrics()
	p, jobs := supervisorParams()
	p.FailDir = t.TempDir()
	p.Inject = &faultinject.Spec{Workload: "nw", Variant: "baseline", Cycle: 200,
		Kind: faultinject.Corrupt}

	_, err := runMany(p, jobs)
	var fe *FailedRunError
	if !errors.As(err, &fe) {
		t.Fatalf("want a FailedRunError, got %v", err)
	}
	f := fe.Failure
	if !f.SafeModeRetried || f.Attempts != 2 {
		t.Fatalf("invariant trips must trigger the safe-mode retry: %+v", f)
	}
	if f.Diagnostic == nil || f.Diagnostic.Reason != gpu.ReasonInvariant {
		t.Fatalf("missing invariant diagnostic: %+v", f.Diagnostic)
	}
	if !strings.Contains(f.Diagnostic.Violation, "RegsUsed") {
		t.Fatalf("violation report does not name the corruption: %q", f.Diagnostic.Violation)
	}
	if m := Metrics(); m.InvariantTrips != 1 || m.Retries != 1 || m.Failures != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

// TestJournalResume runs a sweep with one injected persistent failure,
// then resumes without the fault: only the failed job re-executes (the
// rest come from the disk cache), ResumedFailed records it, and the
// journal converges to all-ok. Also checks resume meta validation.
func TestJournalResume(t *testing.T) {
	ResetMetrics()
	defer ResetMetrics()
	cache := t.TempDir()
	jpath := filepath.Join(cache, "journal.jsonl")
	meta := JournalMeta{Scale: 1, Dilute: 60, Config: "small"}

	jl, err := OpenJournal(jpath, meta, false)
	if err != nil {
		t.Fatal(err)
	}
	p, jobs := supervisorParams()
	p.CacheDir = cache
	p.FailDir = t.TempDir()
	p.Journal = jl
	p.Inject = &faultinject.Spec{Workload: "vecadd", Variant: "vt", Cycle: 100,
		Kind: faultinject.Panic}
	if _, err := runMany(p, jobs); err == nil {
		t.Fatal("expected the injected failure")
	}
	if ok, degraded, failed := jl.Summary(); ok != 3 || degraded != 0 || failed != 1 {
		t.Fatalf("journal after failed sweep: %d ok / %d degraded / %d failed", ok, degraded, failed)
	}
	jl.Close()

	// Resume without the fault: the three completed jobs are disk-cache
	// hits, only the failed one executes.
	ResetMetrics()
	jl2, err := OpenJournal(jpath, meta, true)
	if err != nil {
		t.Fatalf("resume open failed: %v", err)
	}
	defer jl2.Close()
	p2, _ := supervisorParams()
	p2.CacheDir = cache
	p2.Journal = jl2
	p2.Resume = true
	res, err := runMany(p2, jobs)
	if err != nil {
		t.Fatalf("resumed sweep failed: %v", err)
	}
	if len(res) != 4 {
		t.Fatalf("resumed sweep returned %d results, want 4", len(res))
	}
	m := Metrics()
	if m.Executed != 1 {
		t.Fatalf("Executed = %d, want 1 (only the failed job re-runs)", m.Executed)
	}
	if m.ResumedFailed != 1 {
		t.Fatalf("ResumedFailed = %d, want 1", m.ResumedFailed)
	}
	if ok, _, failed := jl2.Summary(); ok != 4 || failed != 0 {
		t.Fatalf("journal after resume: %d ok / %d failed, want 4/0", ok, failed)
	}

	// A resume with mismatched sweep parameters must be refused.
	jl2.Close()
	if _, err := OpenJournal(jpath, JournalMeta{Scale: 1, Dilute: 30, Config: "small"}, true); err == nil {
		t.Fatal("resume with a different sweep shape must fail")
	}
	// And resuming a journal that does not exist is an error too.
	if _, err := OpenJournal(filepath.Join(t.TempDir(), "none.jsonl"), meta, true); err == nil {
		t.Fatal("resume without a journal must fail")
	}
}

// TestJournalRotatesForeignSweep: opening without resume over a journal
// from a different sweep starts fresh and keeps the old file as .old.
func TestJournalRotatesForeignSweep(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "journal.jsonl")
	jl, err := OpenJournal(jpath, JournalMeta{Scale: 1, Dilute: 30, Config: "small"}, false)
	if err != nil {
		t.Fatal(err)
	}
	jl.Record(JournalEntry{FP: "abc", Workload: "x", Status: "ok", Attempts: 1})
	jl.Close()

	jl2, err := OpenJournal(jpath, JournalMeta{Scale: 2, Dilute: 30, Config: "small"}, false)
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.Close()
	if st := jl2.Status("abc"); st != "" {
		t.Fatalf("fresh journal inherited foreign entries: %q", st)
	}
	if _, err := os.Stat(jpath + ".old"); err != nil {
		t.Fatalf("foreign journal was not rotated aside: %v", err)
	}
}

func TestFaultinjectParse(t *testing.T) {
	sp, err := faultinject.Parse("bfs/vt@5000:panic")
	if err != nil {
		t.Fatal(err)
	}
	want := &faultinject.Spec{Workload: "bfs", Variant: "vt", Cycle: 5000,
		Kind: faultinject.Panic}
	if !reflect.DeepEqual(sp, want) {
		t.Fatalf("parsed %+v, want %+v", sp, want)
	}
	if sp.String() != "bfs/vt@5000:panic" {
		t.Fatalf("String() = %q", sp.String())
	}

	sp, err = faultinject.Parse("nw@1:hang=200ms")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Kind != faultinject.Hang || sp.HangFor != 200*time.Millisecond ||
		sp.Variant != "" || !sp.Matches("nw", "anything") {
		t.Fatalf("parsed %+v", sp)
	}

	for _, bad := range []string{"", "bfs", "bfs@x:panic", "bfs@5:explode",
		"@5:panic", "bfs@-1:panic", "bfs@5:hang=bogus"} {
		if _, err := faultinject.Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted a bad spec", bad)
		}
	}
}
