package harness

import (
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/config"
	"repro/internal/gpu"
)

// The harness memoizes simulation runs: many experiments re-simulate the
// same (kernel, grid, config) point — e.g. the GTX 480 baseline and VT
// runs appear in the speedup figure, the ideal-gap figure, the TLP figure
// and several tables — so RunAll would otherwise recompute identical
// deterministic results dozens of times. Runs are keyed by a content
// fingerprint of the kernel name, the grid parameters (scale and
// dilution, which fully determine the generated launch), and the
// JSON-serialized hardware config. gpu.Options.Parallelism is *not* part
// of the key: the parallel engine is bit-identical to the sequential one
// (see internal/gpu/parallel_test.go), so the worker count cannot change
// a Result.
//
// Cached *gpu.Result values are shared between experiments and must be
// treated as immutable by all callers.

// RunMetrics counts the simulation work performed by the harness since
// the last ResetMetrics.
type RunMetrics struct {
	// Requests is the number of simulations experiments asked for.
	Requests int
	// Executed is the number of gpu.Run calls actually performed.
	Executed int
	// CacheHits is Requests satisfied from the memo cache (including
	// waits on an in-flight identical run).
	CacheHits int
	// SimCycles totals the simulated cycles of the executed runs; cache
	// hits add nothing. Divide by wall time for simcycles/s.
	SimCycles int64

	// Supervisor counters (see supervisor.go). A retried run still counts
	// once in Executed, so CacheHits = Requests - Executed stays valid.

	// Panics counts first attempts that panicked; InvariantTrips counts
	// first attempts aborted by the invariant checker; Deadlines counts
	// first attempts aborted by the wall-clock deadline.
	Panics         int
	InvariantTrips int
	Deadlines      int
	// Retries counts safe-mode retries attempted after a panic or
	// invariant trip; Degraded counts runs whose result came from such a
	// retry (fast path and parallel engine disabled).
	Retries  int
	Degraded int
	// Failures counts runs that still failed after the retry ladder and
	// became RunFailure repro bundles.
	Failures int
	// ResumedFailed counts executed jobs that a resumed sweep's journal
	// had recorded as failed — the jobs -resume exists to re-run.
	ResumedFailed int

	// TelemetryWindows and TelemetrySpans total the metric windows and
	// lifecycle spans recorded by executed runs when Params.Telemetry is
	// set (cache hits record none).
	TelemetryWindows int64
	TelemetrySpans   int64

	// Prefix-fork counters (Params.Checkpoint; see fork.go).

	// CheckpointsCaptured counts donor runs that produced a usable prefix
	// checkpoint; CheckpointHits counts jobs that started from one (in
	// memory or from the disk cache) instead of cycle zero;
	// CheckpointMisses counts fork-eligible jobs that found no usable
	// checkpoint and ran in full.
	CheckpointsCaptured int
	CheckpointHits      int
	CheckpointMisses    int
	// PrefixCyclesSaved totals the already-simulated prefix cycles forked
	// runs skipped. SimCycles counts only cycles actually simulated, so
	// forked runs add their suffix alone.
	PrefixCyclesSaved int64

	// Sampled-run counters (Params.Sampling; see internal/gpu/sampling.go).

	// SampledRuns counts executed runs that ran in interval/sampled mode;
	// SampledSpans totals their completed fast-forward spans.
	// ExtrapolatedCycles is the portion of SimCycles those runs
	// extrapolated rather than simulated in detail, and FunctionalInstrs
	// is how many warp instructions they retired functionally.
	// MaxErrorBound is the largest per-run reported error bound, the
	// number a sweep-level accuracy claim must quote.
	SampledRuns        int
	SampledSpans       int64
	ExtrapolatedCycles int64
	FunctionalInstrs   int64
	MaxErrorBound      float64

	// Result-store counters (Params.CacheDir/MirrorDir; see diskcache.go
	// and internal/resultstore).

	// StoreHits counts store reads that served a checksum-verified (or
	// legacy, pre-store) payload; StoreMisses counts reads that found
	// nothing usable, including entries quarantined on the way out.
	StoreHits   int
	StoreMisses int
	// StoreRepairs counts objects healed bit-identically from a replica
	// after a checksum mismatch; StoreRetries counts transient store I/O
	// errors absorbed by the bounded retry-with-backoff (distinct from
	// the supervisor's safe-mode simulation retries).
	StoreRepairs int
	StoreRetries int
}

// add folds another set of counters into m: every counter sums, and
// MaxErrorBound takes the maximum. Used to aggregate worker-reported
// metrics into the coordinator's fleet totals.
func (m *RunMetrics) add(d RunMetrics) {
	m.Requests += d.Requests
	m.Executed += d.Executed
	m.SimCycles += d.SimCycles
	m.Panics += d.Panics
	m.InvariantTrips += d.InvariantTrips
	m.Deadlines += d.Deadlines
	m.Retries += d.Retries
	m.Degraded += d.Degraded
	m.Failures += d.Failures
	m.ResumedFailed += d.ResumedFailed
	m.TelemetryWindows += d.TelemetryWindows
	m.TelemetrySpans += d.TelemetrySpans
	m.CheckpointsCaptured += d.CheckpointsCaptured
	m.CheckpointHits += d.CheckpointHits
	m.CheckpointMisses += d.CheckpointMisses
	m.PrefixCyclesSaved += d.PrefixCyclesSaved
	m.SampledRuns += d.SampledRuns
	m.SampledSpans += d.SampledSpans
	m.ExtrapolatedCycles += d.ExtrapolatedCycles
	m.FunctionalInstrs += d.FunctionalInstrs
	if d.MaxErrorBound > m.MaxErrorBound {
		m.MaxErrorBound = d.MaxErrorBound
	}
	m.StoreHits += d.StoreHits
	m.StoreMisses += d.StoreMisses
	m.StoreRepairs += d.StoreRepairs
	m.StoreRetries += d.StoreRetries
}

// AddMetrics folds externally accumulated counters into the
// process-wide metrics — how the sweep fabric's coordinator folds
// remotely executed work into the totals its report and monitor show.
func AddMetrics(d RunMetrics) {
	bumpMetric(func(m *RunMetrics) { m.add(d) })
}

// NoteRemoteCompletion folds one remotely executed job's metric delta
// into the process counters and p's monitor — including the windowed
// simcycles/s rate — so a fabric coordinator's report and dashboard
// reflect work the fleet simulated on its behalf.
func NoteRemoteCompletion(p Params, d RunMetrics) {
	AddMetrics(d)
	if d.SimCycles > 0 {
		p.monitor().noteFinished(d.SimCycles)
	}
}

type memoEntry struct {
	once sync.Once
	res  *gpu.Result
	err  error
}

var (
	memoMu    sync.Mutex
	memoCache = map[string]*memoEntry{}
	memoStats RunMetrics
)

// Metrics returns a snapshot of the work counters.
func Metrics() RunMetrics {
	memoMu.Lock()
	defer memoMu.Unlock()
	m := memoStats
	m.CacheHits = m.Requests - m.Executed
	return m
}

// ResetMetrics zeroes the work counters, empties the memo and
// checkpoint caches, closes any open result stores (so the next
// cached run reopens them — index replay plus WAL recovery — exactly
// like a fresh process), and resets the default monitor so back-to-back
// sweeps in one process (benchmarks, tests) never see each other's
// uptime epoch, active jobs, or rate window. Injected Params.Monitor
// instances are owned by their sweeps and reset by their owners.
func ResetMetrics() {
	resetStores()
	defaultMon.Reset()
	memoMu.Lock()
	defer memoMu.Unlock()
	memoStats = RunMetrics{}
	memoCache = map[string]*memoEntry{}
	ckCache = map[string]*ckEntry{}
}

// fingerprint identifies a simulation point. kernels.Build is
// deterministic, so (workload, scale, dilute) fully determines the
// launch — grid dimensions, code, and initial memory image. A sampled
// run's cycle count is an extrapolation that depends on the sampling
// windows, so an enabled samp is part of the key: sampled and exact
// results never alias, and neither do two different sampling
// configurations. Exact runs keep the historical key shape (no suffix),
// preserving existing disk caches.
func fingerprint(workload string, scale, dilute int, cfg *config.GPUConfig, samp gpu.SamplingOptions) (string, error) {
	if dilute < 2 {
		dilute = 1
	}
	b, err := json.Marshal(cfg)
	if err != nil {
		return "", err
	}
	if samp.Enabled() {
		return fmt.Sprintf("%s|s%d|d%d|%s|samp=%s", workload, scale, dilute, b, samp), nil
	}
	return fmt.Sprintf("%s|s%d|d%d|%s", workload, scale, dilute, b), nil
}

// FingerprintKey returns the content fingerprint and cache key of one
// resolved job under p. The fabric keys wire jobs by the cache key —
// the same hex id that names the job's store object and journal lines
// — and workers recompute it to verify a lease describes the point
// they think it does.
func FingerprintKey(p Params, j Job) (fp, key string, err error) {
	cfg := j.ConfigFor(p)
	fp, err = fingerprint(j.Workload, p.Scale, p.Dilute, &cfg, p.Sampling)
	if err != nil {
		return "", "", err
	}
	return fp, cacheKey(fp), nil
}

// CacheKey hashes a content fingerprint into the stable hex id used for
// store objects and journal entries (exported for the sweep fabric).
func CacheKey(fp string) string { return cacheKey(fp) }

// LoadCachedResult returns p's store's Result for the fingerprint, or
// nil. The coordinator consults it before dispatching a job to the
// fleet, so resumed or repeated sweeps lease only missing points.
func LoadCachedResult(p Params, fp string) *gpu.Result {
	return diskLoad(p.ctx(), storeFor(p), fp)
}

// ExecuteJob runs one resolved job through the full in-process path —
// memo cache, result store, prefix forking, supervised execution —
// and is the fabric worker's execution entry point.
func ExecuteJob(p Params, j Job) (*gpu.Result, error) { return memoRun(p, j) }

// memoRun returns the result for one job, executing the simulation only
// if no identical run has completed (or is in flight) since the last
// ResetMetrics. Concurrent requests for the same fingerprint are
// coalesced into a single execution.
func memoRun(p Params, j Job) (*gpu.Result, error) {
	cfg := p.Config
	if j.Mutate != nil {
		j.Mutate(&cfg)
	}
	fp, err := fingerprint(j.Workload, p.Scale, p.Dilute, &cfg, p.Sampling)
	if err != nil {
		// Unfingerprintable config: fall back to an unmemoized run.
		return supervisedExecute(p, j, cfg, "")
	}
	memoMu.Lock()
	memoStats.Requests++
	e, ok := memoCache[fp]
	if !ok {
		e = &memoEntry{}
		memoCache[fp] = e
	}
	memoMu.Unlock()
	e.once.Do(func() {
		// Fault-injected runs bypass the disk cache in both directions: a
		// cached hit would skip the fault, and a faulted (or degraded)
		// outcome must never be served to an un-injected sweep.
		injected := p.Inject != nil && p.Inject.Matches(j.Workload, j.Variant)
		if st := storeFor(p); st != nil && !injected {
			sid := p.Trace.Begin(p.span, "store.get", j.Workload, j.Variant)
			res := diskLoad(p.ctx(), st, fp)
			if res != nil {
				p.Trace.SetAttr(sid, "outcome", "hit")
				p.Trace.End(sid)
				// A disk hit is a cache hit: Executed and SimCycles stay
				// untouched, so simcycles/s reflects real simulation work.
				e.res = res
				return
			}
			p.Trace.SetAttr(sid, "outcome", "miss")
			p.Trace.End(sid)
		}
		var prefix int64
		// Sampled sweeps never fork: a checkpoint capture could land
		// mid-span (gpu.Run rejects the combination), and a prefix donor's
		// extrapolated clock would not line up across configs anyway.
		if j.PrefixFP != "" && !injected && !p.Sampling.Enabled() {
			e.res, e.err, prefix = forkExecute(p, j, cfg, fp)
		} else {
			e.res, e.err = supervisedExecute(p, j, cfg, fp)
		}
		memoMu.Lock()
		memoStats.Executed++
		if e.err == nil {
			// Forked runs simulated only their suffix; the prefix cycles
			// come from the shared checkpoint and are counted in
			// PrefixCyclesSaved instead.
			memoStats.SimCycles += e.res.Cycles - prefix
		}
		memoMu.Unlock()
		if e.err == nil {
			// Feed the monitor's windowed simcycles/s rate (cache hits
			// above add nothing, so a resumed sweep reads ~0, not a
			// stale cumulative average).
			p.monitor().noteFinished(e.res.Cycles - prefix)
		}
		// Persistence happens inside journalRecord (supervisor.go): the
		// Result and its completion-journal line commit as one result-store
		// transaction, so a crash can never record an outcome whose Result
		// is missing, or vice versa.
	})
	return e.res, e.err
}

// runParallelism picks the intra-run worker count for one simulation.
// When the harness batches many simulations concurrently, those already
// saturate the cores, so each run stays sequential; a single-worker
// harness hands the cores to the parallel engine instead.
func (p Params) runParallelism() int {
	if p.workers() > 1 {
		return 1
	}
	return 0 // auto: one worker per core, capped at the SM count
}
