package harness

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/config"
)

// TestDiskCacheRoundTrip verifies that a memoized run persisted to disk is
// served back on a later invocation (simulated by resetting the in-memory
// cache) as a cache hit, bit-identical to the freshly computed Result.
func TestDiskCacheRoundTrip(t *testing.T) {
	defer ResetMetrics()
	p := Params{Scale: 1, Config: config.Small(), Dilute: 60, CacheDir: t.TempDir()}
	j := Job{Workload: "vecadd"}

	ResetMetrics()
	fresh, err := memoRun(p, j)
	if err != nil {
		t.Fatal(err)
	}
	if m := Metrics(); m.Executed != 1 || m.SimCycles == 0 {
		t.Fatalf("first run: executed=%d simcycles=%d, want a real simulation", m.Executed, m.SimCycles)
	}
	files, err := filepath.Glob(filepath.Join(p.CacheDir, "vtsim-*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("cache dir holds %d entries (err=%v), want 1", len(files), err)
	}

	ResetMetrics() // a fresh process: only the disk knows the result
	cached, err := memoRun(p, j)
	if err != nil {
		t.Fatal(err)
	}
	if m := Metrics(); m.Executed != 0 || m.CacheHits != 1 || m.SimCycles != 0 {
		t.Fatalf("second run: executed=%d hits=%d simcycles=%d, want disk hit only",
			m.Executed, m.CacheHits, m.SimCycles)
	}
	if !reflect.DeepEqual(fresh, cached) {
		t.Fatalf("disk round-trip altered the result:\nfresh:  %+v\ncached: %+v", fresh, cached)
	}
}

// TestDiskCacheVersionInvalidation verifies stale-envelope rejection: an
// entry whose version or fingerprint does not match is a miss, not a wrong
// answer.
func TestDiskCacheVersionInvalidation(t *testing.T) {
	defer ResetMetrics()
	p := Params{Scale: 1, Config: config.Small(), Dilute: 60, CacheDir: t.TempDir()}
	j := Job{Workload: "vecadd"}

	ResetMetrics()
	if _, err := memoRun(p, j); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(p.CacheDir, "vtsim-*.json"))
	if len(files) != 1 {
		t.Fatalf("cache dir holds %d entries, want 1", len(files))
	}
	// Corrupt the envelope: a version bump must read as a miss.
	b, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], append([]byte(nil),
		[]byte(`{"version":-1,`+string(b[len(`{"version":1,`):]))...), 0o644); err != nil {
		t.Fatal(err)
	}

	ResetMetrics()
	if _, err := memoRun(p, j); err != nil {
		t.Fatal(err)
	}
	if m := Metrics(); m.Executed != 1 {
		t.Fatalf("stale entry was served: executed=%d, want re-simulation", m.Executed)
	}
}

// TestDiskCacheQuarantine verifies that unusable cache files are moved
// aside as *.corrupt — keeping corruption observable — while the caller
// re-simulates and writes a fresh entry.
func TestDiskCacheQuarantine(t *testing.T) {
	defer ResetMetrics()
	p := Params{Scale: 1, Config: config.Small(), Dilute: 60, CacheDir: t.TempDir()}
	j := Job{Workload: "vecadd"}

	corruptions := []struct {
		name   string
		mangle func(path string, body []byte)
	}{
		{"torn", func(path string, body []byte) {
			// Truncated mid-write: invalid JSON.
			os.WriteFile(path, body[:len(body)/2], 0o644)
		}},
		{"stale-version", func(path string, body []byte) {
			os.WriteFile(path, append([]byte(nil),
				[]byte(`{"version":-1,`+string(body[len(`{"version":1,`):]))...), 0o644)
		}},
		{"wrong-fingerprint", func(path string, body []byte) {
			mangled := strings.Replace(string(body), `"fingerprint":"vecadd`,
				`"fingerprint":"tampered`, 1)
			if mangled == string(body) {
				t.Fatal("fingerprint substring not found in cache entry")
			}
			os.WriteFile(path, []byte(mangled), 0o644)
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			ResetMetrics()
			if _, err := memoRun(p, j); err != nil {
				t.Fatal(err)
			}
			files, _ := filepath.Glob(filepath.Join(p.CacheDir, "vtsim-*.json"))
			if len(files) != 1 {
				t.Fatalf("cache dir holds %d entries, want 1", len(files))
			}
			body, err := os.ReadFile(files[0])
			if err != nil {
				t.Fatal(err)
			}
			tc.mangle(files[0], body)

			ResetMetrics()
			if _, err := memoRun(p, j); err != nil {
				t.Fatal(err)
			}
			if m := Metrics(); m.Executed != 1 {
				t.Fatalf("bad entry was served: executed=%d, want re-simulation", m.Executed)
			}
			quarantined, _ := filepath.Glob(filepath.Join(p.CacheDir, "*.corrupt"))
			if len(quarantined) != 1 {
				t.Fatalf("found %d quarantined files, want 1", len(quarantined))
			}
			// The re-simulation rewrote a healthy entry alongside it.
			files, _ = filepath.Glob(filepath.Join(p.CacheDir, "vtsim-*.json"))
			if len(files) != 1 {
				t.Fatalf("cache dir holds %d fresh entries after rewrite, want 1", len(files))
			}
			ResetMetrics()
			if _, err := memoRun(p, j); err != nil {
				t.Fatal(err)
			}
			if m := Metrics(); m.Executed != 0 || m.CacheHits != 1 {
				t.Fatalf("rewritten entry not served: %+v", Metrics())
			}
			os.Remove(quarantined[0])
		})
	}
}
