package harness

import (
	"encoding/json"
	"fmt"
	"html"
	"io"
	"net/http"
	httppprof "net/http/pprof"
	"sort"
	"sync"
	"time"

	"repro/internal/sweepobs"
)

// Live sweep monitoring (cmd/vtbench -monitor): runMany reports every
// job's start and finish to a Monitor, whose Handler serves the current
// sweep state — active jobs, RunMetrics counters, span-derived stage
// totals — as JSON (/status), Prometheus text exposition (/metrics), a
// minimal self-refreshing HTML page (/), and the net/http/pprof
// profiling endpoints (/debug/pprof/). The monitor is passive
// bookkeeping: a map update per job, nothing on the simulation hot
// path.
//
// A Monitor is injectable through Params.Monitor — per-sweep state no
// longer leaks between sweeps or tests sharing the process — with a
// package default kept for compatibility; ResetMetrics resets the
// default alongside the counters.

// MonitorSchemaVersion identifies the /status JSON layout. Version 2
// added lifetimeSimCyclesPerSec, the windowed simCyclesPerSec
// semantics, and the span-derived per-stage totals ("stages").
const MonitorSchemaVersion = 2

// monitorRateWindow is the lookback for the windowed simcycles/s rate.
const monitorRateWindow = 60 * time.Second

// finishedJob is one executed run's completion, for the windowed rate.
type finishedJob struct {
	t      time.Time
	cycles int64
}

// Monitor tracks one sweep's live state. Safe for concurrent use; the
// zero value is not usable — construct with NewMonitor.
type Monitor struct {
	mu          sync.Mutex
	now         func() time.Time // test seam
	started     time.Time
	active      map[key]time.Time // job -> start time
	recent      []finishedJob     // completions inside the rate window
	cyclesTotal int64             // lifetime executed sim-cycles
	tracer      *sweepobs.Tracer
}

// NewMonitor returns an empty monitor.
func NewMonitor() *Monitor {
	return &Monitor{now: time.Now, active: map[key]time.Time{}}
}

// defaultMon backs the package-level compat API and any Params without
// an explicit Monitor.
var defaultMon = NewMonitor()

// DefaultMonitor returns the process-wide default monitor (what
// Params without an explicit Monitor report to).
func DefaultMonitor() *Monitor { return defaultMon }

// monitor resolves the monitor a run reports to.
func (p Params) monitor() *Monitor {
	if p.Monitor != nil {
		return p.Monitor
	}
	return defaultMon
}

// SetTracer attaches the sweep tracer whose stage totals and span
// metrics the /status and /metrics endpoints include.
func (m *Monitor) SetTracer(tr *sweepobs.Tracer) {
	m.mu.Lock()
	m.tracer = tr
	m.mu.Unlock()
}

// Reset clears all sweep state (uptime epoch, active jobs, rate
// window, lifetime cycles, tracer), so one process can run independent
// sweeps back to back.
func (m *Monitor) Reset() {
	m.mu.Lock()
	m.started = time.Time{}
	m.active = map[key]time.Time{}
	m.recent = nil
	m.cyclesTotal = 0
	m.tracer = nil
	m.mu.Unlock()
}

func (m *Monitor) beginJob(j Job) {
	now := m.now()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started.IsZero() {
		m.started = now
	}
	m.active[key{j.Workload, j.Variant}] = now
}

func (m *Monitor) endJob(j Job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.active, key{j.Workload, j.Variant})
}

// noteFinished records one executed run's simulated cycles at its
// completion time. Cache hits never call this, so the windowed rate
// reflects real simulation work — a resumed sweep that serves
// everything from the store reports ~0, not a stale cumulative
// average.
func (m *Monitor) noteFinished(cycles int64) {
	now := m.now()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cyclesTotal += cycles
	m.recent = append(m.recent, finishedJob{t: now, cycles: cycles})
	m.pruneLocked(now)
}

// pruneLocked drops completions older than the rate window.
func (m *Monitor) pruneLocked(now time.Time) {
	cut := now.Add(-monitorRateWindow)
	i := 0
	for i < len(m.recent) && m.recent[i].t.Before(cut) {
		i++
	}
	if i > 0 {
		m.recent = append(m.recent[:0], m.recent[i:]...)
	}
}

// ActiveJob is one currently-running simulation in MonitorStatus.
type ActiveJob struct {
	Workload string  `json:"workload"`
	Variant  string  `json:"variant"`
	Seconds  float64 `json:"seconds"` // wall time since the job started
}

// MonitorStatus is the /status JSON document.
type MonitorStatus struct {
	SchemaVersion int         `json:"schemaVersion"`
	UptimeSeconds float64     `json:"uptimeSeconds"`
	Active        []ActiveJob `json:"active"`
	Metrics       RunMetrics  `json:"metrics"`
	// SimCyclesPerSec is the windowed rate: simulated cycles of runs
	// finishing within the last monitorRateWindow, over the window (or
	// the uptime while younger than the window). It reads ~0 when the
	// sweep is serving cache hits — unlike the old cumulative average,
	// which went stale after a resume skipped cached jobs.
	SimCyclesPerSec float64 `json:"simCyclesPerSec"`
	// LifetimeSimCyclesPerSec is the old cumulative average, kept for
	// whole-sweep throughput summaries.
	LifetimeSimCyclesPerSec float64 `json:"lifetimeSimCyclesPerSec"`
	// Stages aggregates completed sweep-trace spans by kind (present
	// only when tracing is on).
	Stages map[string]sweepobs.StageTotal `json:"stages,omitempty"`
}

// Status snapshots the sweep for the monitor endpoints.
func (m *Monitor) Status() MonitorStatus {
	st := MonitorStatus{SchemaVersion: MonitorSchemaVersion, Metrics: Metrics()}
	now := m.now()
	m.mu.Lock()
	if !m.started.IsZero() {
		st.UptimeSeconds = now.Sub(m.started).Seconds()
	}
	for k, t0 := range m.active {
		st.Active = append(st.Active, ActiveJob{
			Workload: k.Workload,
			Variant:  k.Variant,
			Seconds:  now.Sub(t0).Seconds(),
		})
	}
	m.pruneLocked(now)
	var windowCycles int64
	for _, f := range m.recent {
		windowCycles += f.cycles
	}
	cyclesTotal := m.cyclesTotal
	tracer := m.tracer
	m.mu.Unlock()

	sort.Slice(st.Active, func(a, b int) bool {
		if st.Active[a].Workload != st.Active[b].Workload {
			return st.Active[a].Workload < st.Active[b].Workload
		}
		return st.Active[a].Variant < st.Active[b].Variant
	})
	window := monitorRateWindow.Seconds()
	if st.UptimeSeconds > 0 && st.UptimeSeconds < window {
		window = st.UptimeSeconds
	}
	if window > 0 {
		st.SimCyclesPerSec = float64(windowCycles) / window
	}
	if st.UptimeSeconds > 0 {
		st.LifetimeSimCyclesPerSec = float64(cyclesTotal) / st.UptimeSeconds
	}
	st.Stages = tracer.StageTotals()
	return st
}

// WriteMetrics renders the sweep state as Prometheus text exposition:
// the RunMetrics counters and monitor gauges, rebuilt per scrape, plus
// the tracer's span counters and latency histograms when tracing is
// on. Metric families are disjoint between the two registries, so the
// concatenation stays a valid exposition (no duplicate HELP/TYPE).
func (m *Monitor) WriteMetrics(w io.Writer) error {
	st := m.Status()
	mt := st.Metrics
	r := sweepobs.NewRegistry()
	counter := func(name, help string, v float64) {
		r.Counter(name, help).Add(v)
	}
	counter("vtsweep_runs_requested_total", "Simulations experiments asked for.", float64(mt.Requests))
	counter("vtsweep_runs_executed_total", "gpu.Run calls actually performed.", float64(mt.Executed))
	counter("vtsweep_memo_hits_total", "Requests served by the memo/disk cache.", float64(mt.CacheHits))
	counter("vtsweep_sim_cycles_total", "Simulated cycles of executed runs.", float64(mt.SimCycles))
	counter("vtsweep_supervisor_panics_total", "First attempts that panicked.", float64(mt.Panics))
	counter("vtsweep_supervisor_invariant_trips_total", "First attempts aborted by the invariant checker.", float64(mt.InvariantTrips))
	counter("vtsweep_supervisor_deadlines_total", "First attempts aborted by the wall-clock deadline.", float64(mt.Deadlines))
	counter("vtsweep_supervisor_retries_total", "Safe-mode retries attempted.", float64(mt.Retries))
	counter("vtsweep_supervisor_degraded_total", "Runs whose result came from a safe-mode retry.", float64(mt.Degraded))
	counter("vtsweep_supervisor_failures_total", "Runs that failed after the retry ladder.", float64(mt.Failures))
	counter("vtsweep_store_hits_total", "Store reads serving a verified or legacy payload.", float64(mt.StoreHits))
	counter("vtsweep_store_misses_total", "Store reads that found nothing usable.", float64(mt.StoreMisses))
	counter("vtsweep_store_repairs_total", "Objects healed from a replica after checksum mismatch.", float64(mt.StoreRepairs))
	counter("vtsweep_store_retries_total", "Transient store I/O errors absorbed by retry.", float64(mt.StoreRetries))
	counter("vtsweep_checkpoints_captured_total", "Donor runs that produced a usable prefix checkpoint.", float64(mt.CheckpointsCaptured))
	counter("vtsweep_checkpoint_hits_total", "Jobs started from a prefix checkpoint.", float64(mt.CheckpointHits))
	counter("vtsweep_checkpoint_misses_total", "Fork-eligible jobs that found no usable checkpoint.", float64(mt.CheckpointMisses))
	counter("vtsweep_prefix_cycles_saved_total", "Prefix cycles forked runs skipped.", float64(mt.PrefixCyclesSaved))
	counter("vtsweep_telemetry_windows_total", "Telemetry metric windows recorded by executed runs.", float64(mt.TelemetryWindows))
	counter("vtsweep_telemetry_spans_total", "Telemetry lifecycle spans recorded by executed runs.", float64(mt.TelemetrySpans))
	r.Gauge("vtsweep_active_jobs", "Simulations currently running.").Set(float64(len(st.Active)))
	r.Gauge("vtsweep_uptime_seconds", "Wall time since the first job started.").Set(st.UptimeSeconds)
	r.Gauge("vtsweep_sim_cycles_per_sec", "Windowed simulated-cycle rate over recently finished runs.").Set(st.SimCyclesPerSec)
	if err := r.Write(w); err != nil {
		return err
	}
	m.mu.Lock()
	tracer := m.tracer
	m.mu.Unlock()
	return tracer.Registry().Write(w)
}

// Handler returns the live-monitor HTTP handler: "/" is a
// self-refreshing HTML summary, "/status" the JSON document,
// "/metrics" the Prometheus exposition, and "/debug/pprof/" the
// standard profiling endpoints.
func (m *Monitor) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(m.Status())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.WriteMetrics(w)
	})
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		st := m.Status()
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprintf(w, `<!doctype html><html><head><meta http-equiv="refresh" content="2">`+
			`<title>vtbench monitor</title></head><body><h1>vtbench sweep</h1>`)
		fmt.Fprintf(w, "<p>uptime %.0fs — %d/%d runs executed (%d cache hits), %.0f simcycles/s</p>",
			st.UptimeSeconds, st.Metrics.Executed, st.Metrics.Requests,
			st.Metrics.CacheHits, st.SimCyclesPerSec)
		if st.Metrics.Failures > 0 || st.Metrics.Degraded > 0 {
			fmt.Fprintf(w, "<p>failures %d — degraded %d — retries %d</p>",
				st.Metrics.Failures, st.Metrics.Degraded, st.Metrics.Retries)
		}
		if st.Metrics.TelemetryWindows > 0 {
			fmt.Fprintf(w, "<p>telemetry: %d windows, %d spans</p>",
				st.Metrics.TelemetryWindows, st.Metrics.TelemetrySpans)
		}
		fmt.Fprintf(w, "<h2>active (%d)</h2><ul>", len(st.Active))
		for _, a := range st.Active {
			fmt.Fprintf(w, "<li>%s/%s — %.1fs</li>",
				html.EscapeString(a.Workload), html.EscapeString(a.Variant), a.Seconds)
		}
		fmt.Fprintf(w, "</ul><p><a href=%q>JSON</a> — <a href=%q>metrics</a></p></body></html>",
			"/status", "/metrics")
	})
	return mux
}

// Status snapshots the default monitor. Compat wrapper; prefer an
// injected Params.Monitor.
func Status() MonitorStatus { return defaultMon.Status() }

// MonitorHandler returns the default monitor's HTTP handler. Compat
// wrapper; prefer an injected Params.Monitor.
func MonitorHandler() http.Handler { return defaultMon.Handler() }
