package harness

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Live sweep monitoring (cmd/vtbench -monitor): runMany reports every
// job's start and finish here, and MonitorHandler serves the current
// sweep state — active jobs plus the RunMetrics counters — as JSON
// (/status) and as a minimal self-refreshing HTML page (/). The monitor
// is passive bookkeeping: a map update per job, nothing on the
// simulation hot path.

// MonitorSchemaVersion identifies the /status JSON layout.
const MonitorSchemaVersion = 1

type monitorState struct {
	mu      sync.Mutex
	started time.Time
	active  map[key]time.Time // job -> start time
}

var mon = monitorState{active: map[key]time.Time{}}

func beginJob(j job) {
	mon.mu.Lock()
	defer mon.mu.Unlock()
	if mon.started.IsZero() {
		mon.started = time.Now()
	}
	mon.active[key{j.workload, j.variant}] = time.Now()
}

func endJob(j job) {
	mon.mu.Lock()
	defer mon.mu.Unlock()
	delete(mon.active, key{j.workload, j.variant})
}

// ActiveJob is one currently-running simulation in MonitorStatus.
type ActiveJob struct {
	Workload string  `json:"workload"`
	Variant  string  `json:"variant"`
	Seconds  float64 `json:"seconds"` // wall time since the job started
}

// MonitorStatus is the /status JSON document.
type MonitorStatus struct {
	SchemaVersion   int         `json:"schemaVersion"`
	UptimeSeconds   float64     `json:"uptimeSeconds"`
	Active          []ActiveJob `json:"active"`
	Metrics         RunMetrics  `json:"metrics"`
	SimCyclesPerSec float64     `json:"simCyclesPerSec"`
}

// Status snapshots the sweep for the monitor endpoint.
func Status() MonitorStatus {
	m := Metrics()
	st := MonitorStatus{SchemaVersion: MonitorSchemaVersion, Metrics: m}
	mon.mu.Lock()
	now := time.Now()
	if !mon.started.IsZero() {
		st.UptimeSeconds = now.Sub(mon.started).Seconds()
	}
	for k, t0 := range mon.active {
		st.Active = append(st.Active, ActiveJob{
			Workload: k.Workload,
			Variant:  k.Variant,
			Seconds:  now.Sub(t0).Seconds(),
		})
	}
	mon.mu.Unlock()
	sort.Slice(st.Active, func(a, b int) bool {
		if st.Active[a].Workload != st.Active[b].Workload {
			return st.Active[a].Workload < st.Active[b].Workload
		}
		return st.Active[a].Variant < st.Active[b].Variant
	})
	if st.UptimeSeconds > 0 {
		st.SimCyclesPerSec = float64(m.SimCycles) / st.UptimeSeconds
	}
	return st
}

// MonitorHandler returns the live-monitor HTTP handler: "/" is a
// self-refreshing HTML summary, "/status" the JSON document.
func MonitorHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(Status())
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		st := Status()
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprintf(w, `<!doctype html><html><head><meta http-equiv="refresh" content="2">`+
			`<title>vtbench monitor</title></head><body><h1>vtbench sweep</h1>`)
		fmt.Fprintf(w, "<p>uptime %.0fs — %d/%d runs executed (%d cache hits), %.0f simcycles/s</p>",
			st.UptimeSeconds, st.Metrics.Executed, st.Metrics.Requests,
			st.Metrics.CacheHits, st.SimCyclesPerSec)
		if st.Metrics.Failures > 0 || st.Metrics.Degraded > 0 {
			fmt.Fprintf(w, "<p>failures %d — degraded %d — retries %d</p>",
				st.Metrics.Failures, st.Metrics.Degraded, st.Metrics.Retries)
		}
		if st.Metrics.TelemetryWindows > 0 {
			fmt.Fprintf(w, "<p>telemetry: %d windows, %d spans</p>",
				st.Metrics.TelemetryWindows, st.Metrics.TelemetrySpans)
		}
		fmt.Fprintf(w, "<h2>active (%d)</h2><ul>", len(st.Active))
		for _, a := range st.Active {
			fmt.Fprintf(w, "<li>%s/%s — %.1fs</li>",
				html.EscapeString(a.Workload), html.EscapeString(a.Variant), a.Seconds)
		}
		fmt.Fprintf(w, "</ul><p><a href=%q>JSON</a></p></body></html>", "/status")
	})
	return mux
}
