package harness

import (
	"strings"
	"testing"

	"repro/internal/config"
)

func testParams() Params {
	return Params{Scale: 1, Config: config.GTX480(), Dilute: 30}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1-config", "table2-benchmarks", "fig-limiter", "fig-tlp",
		"fig-speedup", "fig-ideal-gap", "fig-fullswap", "fig-swaplat",
		"fig-virtcap", "fig-rfsize", "fig-sched", "table-swap", "table-hw",
		"ablation-vt", "ablation-model", "fig-extras",
		"table-energy", "fig-kepler", "fig-multikernel",
	}
	got := Experiments()
	if len(got) != len(want) {
		t.Fatalf("experiments = %d, want %d", len(got), len(want))
	}
	for i, id := range want {
		if got[i].ID != id {
			t.Errorf("experiment %d = %q, want %q", i, got[i].ID, id)
		}
		if got[i].Title == "" || got[i].Paper == "" {
			t.Errorf("%s: missing title or paper expectation", id)
		}
	}
}

func TestGetExperiment(t *testing.T) {
	e, err := Get("fig-speedup")
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != "fig-speedup" {
		t.Fatalf("got %q", e.ID)
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown id must error")
	}
}

func TestStaticExperiments(t *testing.T) {
	// Static (no-simulation) experiments run instantly and must render
	// non-empty tables.
	for _, id := range []string{"table1-config", "table2-benchmarks", "fig-limiter", "table-hw"} {
		e, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := e.Run(DefaultParams(), &sb); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(sb.String()) < 100 {
			t.Errorf("%s: suspiciously short output:\n%s", id, sb.String())
		}
	}
}

func TestTable2ReportsMajorityScheduling(t *testing.T) {
	e, _ := Get("table2-benchmarks")
	var sb strings.Builder
	if err := e.Run(DefaultParams(), &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "scheduling-limited") {
		t.Fatalf("missing summary note:\n%s", out)
	}
	if !strings.Contains(out, "of 22 workloads") {
		t.Fatalf("expected the suite summary note:\n%s", out)
	}
}

func TestSpeedupExperimentDiluted(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	e, _ := Get("fig-speedup")
	var sb strings.Builder
	if err := e.Run(testParams(), &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{"vecadd", "lud", "nw", "average speedup"} {
		if !strings.Contains(out, name) {
			t.Errorf("output missing %q:\n%s", name, out)
		}
	}
}

func TestSwapTableDiluted(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	e, _ := Get("table-swap")
	var sb strings.Builder
	if err := e.Run(testParams(), &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "swaps-out") {
		t.Fatalf("bad output:\n%s", sb.String())
	}
}

// TestRunMemoization pins the memo-cache contract: identical simulation
// points execute gpu.Run once, repeats are cache hits, and distinct
// configs never collide.
func TestRunMemoization(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	ResetMetrics()
	defer ResetMetrics()
	p := Params{Scale: 1, Config: config.Small(), Dilute: 50, Workers: 2}
	jobs := policyJobs([]string{"pathfinder", "nw"},
		[]config.Policy{config.PolicyBaseline, config.PolicyVT})

	first, err := runMany(p, jobs)
	if err != nil {
		t.Fatal(err)
	}
	m := Metrics()
	if m.Requests != 4 || m.Executed != 4 || m.CacheHits != 0 {
		t.Fatalf("cold batch: %+v, want 4 requests all executed", m)
	}
	if m.SimCycles <= 0 {
		t.Fatalf("cold batch recorded no simulated cycles: %+v", m)
	}

	second, err := runMany(p, jobs)
	if err != nil {
		t.Fatal(err)
	}
	m = Metrics()
	if m.Requests != 8 || m.Executed != 4 || m.CacheHits != 4 {
		t.Fatalf("warm batch: %+v, want 4 hits and no new executions", m)
	}
	for k, res := range first {
		if second[k] != res {
			t.Errorf("%v: warm batch returned a different *Result", k)
		}
	}

	// A different hardware point must miss.
	bigger := p
	bigger.Config.NumSMs++
	if _, err := runMany(bigger, jobs[:1]); err != nil {
		t.Fatal(err)
	}
	if m = Metrics(); m.Executed != 5 {
		t.Fatalf("config change did not miss the cache: %+v", m)
	}

	// A different grid (dilution) must miss too.
	coarser := p
	coarser.Dilute = 10
	if _, err := runMany(coarser, jobs[:1]); err != nil {
		t.Fatal(err)
	}
	if m = Metrics(); m.Executed != 6 {
		t.Fatalf("grid change did not miss the cache: %+v", m)
	}
}

// TestRunAllMemoizes asserts the headline property: running overlapping
// experiments performs strictly fewer gpu.Run calls than the sum of
// their job lists, because shared (kernel, grid, config) points are
// computed once.
func TestRunAllMemoizes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	ResetMetrics()
	defer ResetMetrics()
	p := Params{Scale: 1, Config: config.GTX480(), Dilute: 60, Workers: 2}
	var sb strings.Builder
	// fig-speedup runs suite x {baseline, vt}; fig-ideal-gap runs suite x
	// {baseline, vt, ideal}: the baseline and vt columns overlap exactly.
	for _, id := range []string{"fig-speedup", "fig-ideal-gap"} {
		e, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Run(p, &sb); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	m := Metrics()
	if m.Executed >= m.Requests {
		t.Fatalf("no memoization across experiments: %+v", m)
	}
	if m.CacheHits == 0 {
		t.Fatalf("expected cache hits across overlapping experiments: %+v", m)
	}
}

func TestRunManyPropagatesErrors(t *testing.T) {
	p := testParams()
	_, err := runMany(p, []Job{{Workload: "does-not-exist", Variant: "x"}})
	if err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

// TestRunAllDiluted executes every experiment end-to-end on heavily
// diluted grids: the full reproduction pipeline in one test.
func TestRunAllDiluted(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	p := Params{Scale: 1, Config: config.GTX480(), Dilute: 60}
	var sb strings.Builder
	if err := RunAll(p, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, e := range Experiments() {
		if !strings.Contains(out, "### "+e.ID) {
			t.Errorf("output missing experiment %s", e.ID)
		}
	}
	if !strings.Contains(out, "average speedup") {
		t.Error("missing headline summary")
	}
}
