package harness

import (
	"io"

	"repro/internal/config"
	"repro/internal/stats"
)

func init() {
	register(ablationVT())
	register(ablationModel())
}

// ablationVT explores the Virtual Thread design space the paper's
// mechanism sections discuss: how eagerly to trigger swaps, which ready
// CTA to activate, and how many context-buffer ports to provision.
func ablationVT() Experiment {
	variants := []struct {
		name   string
		mutate func(*config.GPUConfig)
	}{
		{"default", func(c *config.GPUConfig) {}},
		{"act-newest", func(c *config.GPUConfig) { c.VT.Activation = config.ActNewest }},
		{"trig-0.75", func(c *config.GPUConfig) { c.VT.TriggerFraction = 0.75 }},
		{"trig-0.50", func(c *config.GPUConfig) { c.VT.TriggerFraction = 0.50 }},
		{"ports-2", func(c *config.GPUConfig) { c.VT.SwapPorts = 2 }},
		{"ports-4", func(c *config.GPUConfig) { c.VT.SwapPorts = 4 }},
		{"no-min-res", func(c *config.GPUConfig) { c.VT.MinResidencyCycles = 0 }},
	}
	return Experiment{
		ID:    "ablation-vt",
		Title: "VT design-space ablation (sweep subset)",
		Paper: "mechanism choices: full-stall trigger, FIFO-age activation, single context-buffer port",
		Run: func(p Params, w io.Writer) error {
			var jobs []Job
			for _, n := range sweepNames() {
				jobs = append(jobs, Job{Workload: n, Variant: "baseline"})
				for _, v := range variants {
					v := v
					jobs = append(jobs, Job{
						Workload: n,
						Variant:  v.name,
						Mutate: func(c *config.GPUConfig) {
							c.Policy = config.PolicyVT
							v.mutate(c)
						},
					})
				}
			}
			res, err := runMany(p, jobs)
			if err != nil {
				return err
			}
			headers := []string{"workload"}
			for _, v := range variants {
				headers = append(headers, v.name)
			}
			t := stats.NewTable("VT speedup by mechanism variant", headers...)
			per := make(map[string][]float64)
			for _, n := range sweepNames() {
				b := float64(res[key{n, "baseline"}].Cycles)
				row := []any{n}
				for _, v := range variants {
					s := b / float64(res[key{n, v.name}].Cycles)
					per[v.name] = append(per[v.name], s)
					row = append(row, s)
				}
				t.Rowf(row...)
			}
			row := []any{"geomean"}
			for _, v := range variants {
				row = append(row, stats.GeoMean(per[v.name]))
			}
			t.Rowf(row...)
			markSampled(t, p)
			t.Fprint(w)
			return nil
		},
	}
}

// ablationModel checks that VT's benefit is not an artifact of simulator
// modeling detail: it holds with and without the DRAM row-buffer model and
// with a banked register file.
func ablationModel() Experiment {
	models := []struct {
		name   string
		mutate func(*config.GPUConfig)
	}{
		{"default", func(c *config.GPUConfig) {}},
		{"flat-dram", func(c *config.GPUConfig) { c.DRAMBanks = 0 }},
		{"rf-banks", func(c *config.GPUConfig) { c.RegFileBanks = 16 }},
		{"two-level", func(c *config.GPUConfig) { c.Scheduler = config.SchedTwoLevel }},
	}
	return Experiment{
		ID:    "ablation-model",
		Title: "Simulator-model ablation: VT gain robustness (sweep subset)",
		Paper: "the benefit follows from scheduling-limit virtualization, not from one microarchitectural detail",
		Run: func(p Params, w io.Writer) error {
			var jobs []Job
			for _, n := range sweepNames() {
				for _, m := range models {
					m := m
					for _, pol := range []config.Policy{config.PolicyBaseline, config.PolicyVT} {
						pol := pol
						jobs = append(jobs, Job{
							Workload: n,
							Variant:  pol.String() + "-" + m.name,
							Mutate: func(c *config.GPUConfig) {
								c.Policy = pol
								m.mutate(c)
							},
						})
					}
				}
			}
			res, err := runMany(p, jobs)
			if err != nil {
				return err
			}
			headers := []string{"workload"}
			for _, m := range models {
				headers = append(headers, m.name)
			}
			t := stats.NewTable("VT speedup by simulator model", headers...)
			per := make(map[string][]float64)
			for _, n := range sweepNames() {
				row := []any{n}
				for _, m := range models {
					b := float64(res[key{n, "baseline-" + m.name}].Cycles)
					s := b / float64(res[key{n, "vt-" + m.name}].Cycles)
					per[m.name] = append(per[m.name], s)
					row = append(row, s)
				}
				t.Rowf(row...)
			}
			row := []any{"geomean"}
			for _, m := range models {
				row = append(row, stats.GeoMean(per[m.name]))
			}
			t.Rowf(row...)
			markSampled(t, p)
			t.Fprint(w)
			return nil
		},
	}
}

func init() {
	register(figExtras())
}

// figExtras evaluates the extension workloads (beyond the paper-facing
// suite) under every policy, as future-work-style coverage.
func figExtras() Experiment {
	return Experiment{
		ID:    "fig-extras",
		Title: "Extension workloads (gemm, histogram, bitonic)",
		Paper: "extension: additional workload classes beyond the reproduced suite",
		Run: func(p Params, w io.Writer) error {
			names := []string{"gemm", "histogram", "bitonic", "scatteradd"}
			pols := []config.Policy{config.PolicyBaseline, config.PolicyVT, config.PolicyIdeal}
			res, err := runMany(p, policyJobs(names, pols))
			if err != nil {
				return err
			}
			t := stats.NewTable("normalized to baseline", "workload", "vt", "ideal", "swaps")
			for _, n := range names {
				b := float64(res[key{n, "baseline"}].Cycles)
				v := res[key{n, "vt"}]
				i := res[key{n, "ideal"}]
				t.Rowf(n, b/float64(v.Cycles), b/float64(i.Cycles), v.VT.SwapsOut)
			}
			markSampled(t, p)
			t.Fprint(w)
			return nil
		},
	}
}
