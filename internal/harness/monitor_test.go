package harness

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/config"
)

// TestMonitorHandler exercises the live-monitor endpoint end to end: run
// a small sweep with telemetry on, then check /status serves coherent
// JSON and / serves the self-refreshing HTML page.
func TestMonitorHandler(t *testing.T) {
	ResetMetrics()
	p := DefaultParams()
	p.Config = config.Small()
	p.Dilute = 60
	p.Telemetry = true
	if _, err := runMany(p, policyJobs([]string{"bfs"},
		[]config.Policy{config.PolicyBaseline, config.PolicyVT})); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(MonitorHandler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/status Content-Type = %q", ct)
	}
	var st MonitorStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("/status is not valid JSON: %v", err)
	}
	if st.SchemaVersion != MonitorSchemaVersion {
		t.Errorf("schemaVersion = %d, want %d", st.SchemaVersion, MonitorSchemaVersion)
	}
	if st.Metrics.Executed < 2 {
		t.Errorf("metrics.executed = %d, want >= 2", st.Metrics.Executed)
	}
	if st.Metrics.TelemetryWindows == 0 || st.Metrics.TelemetrySpans == 0 {
		t.Errorf("telemetry totals empty: %d windows, %d spans",
			st.Metrics.TelemetryWindows, st.Metrics.TelemetrySpans)
	}
	if len(st.Active) != 0 {
		t.Errorf("no jobs should be active after the sweep: %+v", st.Active)
	}

	resp, err = http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	page := string(body)
	for _, want := range []string{"http-equiv=\"refresh\"", "vtbench sweep", "/status"} {
		if !strings.Contains(page, want) {
			t.Errorf("monitor page missing %q", want)
		}
	}

	resp, err = http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status = %d, want 404", resp.StatusCode)
	}
}
