package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/sweepobs"
)

// TestMonitorHandler exercises the live-monitor endpoint end to end: run
// a small sweep with telemetry on, then check /status serves coherent
// JSON and / serves the self-refreshing HTML page.
func TestMonitorHandler(t *testing.T) {
	ResetMetrics()
	p := DefaultParams()
	p.Config = config.Small()
	p.Dilute = 60
	p.Telemetry = true
	if _, err := runMany(p, policyJobs([]string{"bfs"},
		[]config.Policy{config.PolicyBaseline, config.PolicyVT})); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(MonitorHandler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/status Content-Type = %q", ct)
	}
	var st MonitorStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("/status is not valid JSON: %v", err)
	}
	if st.SchemaVersion != MonitorSchemaVersion {
		t.Errorf("schemaVersion = %d, want %d", st.SchemaVersion, MonitorSchemaVersion)
	}
	if st.Metrics.Executed < 2 {
		t.Errorf("metrics.executed = %d, want >= 2", st.Metrics.Executed)
	}
	if st.Metrics.TelemetryWindows == 0 || st.Metrics.TelemetrySpans == 0 {
		t.Errorf("telemetry totals empty: %d windows, %d spans",
			st.Metrics.TelemetryWindows, st.Metrics.TelemetrySpans)
	}
	if len(st.Active) != 0 {
		t.Errorf("no jobs should be active after the sweep: %+v", st.Active)
	}

	resp, err = http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	page := string(body)
	for _, want := range []string{"http-equiv=\"refresh\"", "vtbench sweep", "/status"} {
		if !strings.Contains(page, want) {
			t.Errorf("monitor page missing %q", want)
		}
	}

	resp, err = http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status = %d, want 404", resp.StatusCode)
	}
}

// TestMonitorWindowedRate is the resume-staleness regression: the
// reported simcycles/s must reflect *recently finished* work, so a
// monitor that stops executing (e.g. a resumed sweep serving cache
// hits) decays to zero instead of holding the stale lifetime average.
func TestMonitorWindowedRate(t *testing.T) {
	now := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	m := NewMonitor()
	m.now = func() time.Time { return now }

	j := Job{Workload: "bfs", Variant: "vt"}
	m.beginJob(j)
	now = now.Add(10 * time.Second)
	m.noteFinished(5000)
	m.endJob(j)

	st := m.Status()
	if st.UptimeSeconds != 10 {
		t.Fatalf("uptime = %v, want 10", st.UptimeSeconds)
	}
	// Uptime is younger than the window, so both rates divide by uptime.
	if st.SimCyclesPerSec != 500 {
		t.Errorf("windowed rate = %v, want 500", st.SimCyclesPerSec)
	}
	if st.LifetimeSimCyclesPerSec != 500 {
		t.Errorf("lifetime rate = %v, want 500", st.LifetimeSimCyclesPerSec)
	}

	// Two idle minutes later (all cache hits, nothing executed): the
	// windowed rate must read 0 — the old cumulative average kept
	// reporting a stale positive rate here.
	now = now.Add(2 * time.Minute)
	st = m.Status()
	if st.SimCyclesPerSec != 0 {
		t.Errorf("windowed rate after idle window = %v, want 0", st.SimCyclesPerSec)
	}
	if st.LifetimeSimCyclesPerSec <= 0 {
		t.Errorf("lifetime rate = %v, want > 0", st.LifetimeSimCyclesPerSec)
	}

	// New completions re-populate the window at the windowed divisor.
	m.noteFinished(monitorRateWindow.Nanoseconds()) // value irrelevant, just non-zero
	st = m.Status()
	if st.SimCyclesPerSec <= 0 {
		t.Errorf("windowed rate after fresh completion = %v, want > 0", st.SimCyclesPerSec)
	}
}

// TestMonitorInjectedIsolation pins the per-Params monitor: a sweep with
// an explicit Monitor must not leak state into the process default.
func TestMonitorInjectedIsolation(t *testing.T) {
	ResetMetrics()
	defer ResetMetrics()
	p := forkTestParams()
	p.Monitor = NewMonitor()
	if _, err := runMany(p, policyJobs([]string{"bfs"},
		[]config.Policy{config.PolicyBaseline})); err != nil {
		t.Fatal(err)
	}
	st := p.Monitor.Status()
	if st.UptimeSeconds <= 0 || st.LifetimeSimCyclesPerSec <= 0 {
		t.Errorf("injected monitor saw no work: uptime=%v rate=%v",
			st.UptimeSeconds, st.LifetimeSimCyclesPerSec)
	}
	def := DefaultMonitor().Status()
	if def.UptimeSeconds != 0 || def.LifetimeSimCyclesPerSec != 0 {
		t.Errorf("sweep leaked into the default monitor: uptime=%v rate=%v",
			def.UptimeSeconds, def.LifetimeSimCyclesPerSec)
	}
}

// TestMonitorConcurrentScrape hammers begin/end/finish bookkeeping from
// several goroutines while others scrape Status and /metrics — the race
// detector is the real assertion.
func TestMonitorConcurrentScrape(t *testing.T) {
	m := NewMonitor()
	m.SetTracer(sweepobs.New())
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				j := Job{Workload: "w", Variant: fmt.Sprintf("g%d-%d", g, i)}
				m.beginJob(j)
				m.noteFinished(10)
				m.endJob(j)
			}
		}(g)
	}
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				m.Status()
				var b strings.Builder
				if err := m.WriteMetrics(&b); err != nil {
					t.Error(err)
					return
				}
				if _, err := sweepobs.ValidateExposition(b.String()); err != nil {
					t.Errorf("mid-sweep scrape invalid: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := m.Status()
	if len(st.Active) != 0 {
		t.Errorf("%d jobs still active after the storm", len(st.Active))
	}
	if st.LifetimeSimCyclesPerSec <= 0 {
		t.Errorf("lifetime rate = %v after %d completions", st.LifetimeSimCyclesPerSec, 4*200)
	}
}

// TestMonitorMetricsEndpoint runs a traced sweep against an injected
// monitor and checks the /metrics exposition (through the independent
// parser), the span-derived stage totals on /status, and that the pprof
// endpoints answer on the same mux.
func TestMonitorMetricsEndpoint(t *testing.T) {
	ResetMetrics()
	defer ResetMetrics()
	tr := sweepobs.New()
	mon := NewMonitor()
	mon.SetTracer(tr)
	p := DefaultParams()
	p.Config = config.Small()
	p.Dilute = 60
	p.Trace = tr
	p.Monitor = mon
	if _, err := runMany(p, policyJobs([]string{"bfs"},
		[]config.Policy{config.PolicyBaseline, config.PolicyVT})); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(mon.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := sweepobs.ValidateExposition(string(body))
	if err != nil {
		t.Fatalf("/metrics exposition invalid: %v\n%s", err, body)
	}
	if samples["vtsweep_runs_executed_total"] < 2 {
		t.Errorf("vtsweep_runs_executed_total = %v, want >= 2", samples["vtsweep_runs_executed_total"])
	}
	for _, series := range []string{
		`vtsweep_spans_total{kind="job"}`,
		`vtsweep_spans_total{kind="execute"}`,
		`vtsweep_span_seconds_count{kind="job"}`,
	} {
		if samples[series] < 2 {
			t.Errorf("%s = %v, want >= 2", series, samples[series])
		}
	}

	resp, err = http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st MonitorStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Stages["execute"].Count < 2 || st.Stages["execute"].Seconds <= 0 {
		t.Errorf("stage totals missing execute: %+v", st.Stages)
	}

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status = %d, want 200", path, resp.StatusCode)
		}
	}
}
