package harness

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/gpu"
)

func TestResolveWorkersBounds(t *testing.T) {
	cases := []struct {
		in, want int
	}{
		{0, runtime.GOMAXPROCS(0)},
		{-5, runtime.GOMAXPROCS(0)},
		{1, 1},
		{7, 7},
		{maxSweepWorkers, maxSweepWorkers},
		{maxSweepWorkers + 1, maxSweepWorkers},
		{1 << 20, maxSweepWorkers},
	}
	for _, tc := range cases {
		if got := resolveWorkers(tc.in); got != tc.want {
			t.Errorf("resolveWorkers(%d) = %d, want %d", tc.in, got, tc.want)
		}
		if got := ResolveWorkers(tc.in); got != tc.want {
			t.Errorf("ResolveWorkers(%d) = %d, want %d", tc.in, got, tc.want)
		}
		if got := (Params{Workers: tc.in}).workers(); got != tc.want {
			t.Errorf("Params{Workers: %d}.workers() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// stubExecutor runs jobs without touching the simulator: it tracks
// concurrency and can block until released, so the dispatch semaphore
// and cancellation drain are testable in isolation.
type stubExecutor struct {
	block   chan struct{} // non-nil: Execute waits on it
	started atomic.Int32
	active  atomic.Int32
	peak    atomic.Int32
	done    atomic.Int32
}

func (s *stubExecutor) Execute(p Params, j Job) (*gpu.Result, error) {
	s.started.Add(1)
	n := s.active.Add(1)
	for {
		old := s.peak.Load()
		if n <= old || s.peak.CompareAndSwap(old, n) {
			break
		}
	}
	if s.block != nil {
		<-s.block
	}
	s.active.Add(-1)
	s.done.Add(1)
	return &gpu.Result{Cycles: 1}, nil
}

// nullSink discards results, counting them.
type nullSink struct{ n atomic.Int32 }

func (s *nullSink) Collect(Job, *gpu.Result) { s.n.Add(1) }

func manyStubJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Workload: "stub", Variant: string(rune('a' + i%26))}
	}
	return jobs
}

// TestRunJobsSemaphoreBound pins the dispatch invariant: at most
// Params.Workers jobs execute concurrently, however many are queued.
func TestRunJobsSemaphoreBound(t *testing.T) {
	exec := &stubExecutor{block: make(chan struct{})}
	p := Params{Workers: 3, Executor: exec}
	var sink nullSink
	errc := make(chan error, 1)
	go func() { errc <- RunJobs(p, manyStubJobs(20), &sink) }()

	// Wait for the semaphore to fill, then confirm it never overfills.
	deadline := time.Now().Add(5 * time.Second)
	for exec.started.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	if got := exec.started.Load(); got != 3 {
		t.Errorf("started %d jobs with 3 workers before release", got)
	}
	close(exec.block)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if peak := exec.peak.Load(); peak > 3 {
		t.Errorf("peak concurrency %d exceeds 3 workers", peak)
	}
	if sink.n.Load() != 20 {
		t.Errorf("collected %d results, want 20", sink.n.Load())
	}
}

// TestRunJobsCancellation pins the drain contract: a canceled sweep
// context stops dispatching (remaining jobs fail with the context
// error), in-flight jobs run to completion and release their slots,
// and no dispatch goroutines leak.
func TestRunJobsCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	exec := &stubExecutor{block: make(chan struct{})}
	ctx, cancel := context.WithCancel(context.Background())
	p := Params{Workers: 2, Executor: exec, Ctx: ctx}
	var sink nullSink
	errc := make(chan error, 1)
	go func() { errc <- RunJobs(p, manyStubJobs(30), &sink) }()

	deadline := time.Now().Add(5 * time.Second)
	for exec.started.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	// Give the dispatcher a beat to observe cancellation, then release
	// the two in-flight jobs so they drain.
	time.Sleep(20 * time.Millisecond)
	close(exec.block)

	err := <-errc
	if err == nil {
		t.Fatal("canceled sweep returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("joined error does not carry context.Canceled: %v", err)
	}
	started, done := exec.started.Load(), exec.done.Load()
	if started != done {
		t.Errorf("started %d jobs but only %d drained", started, done)
	}
	if started >= 30 {
		t.Errorf("all %d jobs started despite cancellation", started)
	}
	if int32(sink.n.Load()) != done {
		t.Errorf("collected %d results from %d drained jobs", sink.n.Load(), done)
	}

	// No dispatch goroutines may outlive RunJobs.
	deadline = time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Errorf("goroutines grew from %d to %d after canceled RunJobs", before, after)
	}
}

// TestRunJobsPreCanceledContext: a context canceled before dispatch
// fails every job without starting any.
func TestRunJobsPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	exec := &stubExecutor{}
	var sink nullSink
	err := RunJobs(Params{Workers: 2, Executor: exec, Ctx: ctx}, manyStubJobs(5), &sink)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if exec.started.Load() != 0 {
		t.Errorf("%d jobs started under a pre-canceled context", exec.started.Load())
	}
}

// --- storeRetry -------------------------------------------------------

func TestStoreRetryBoundedAttempts(t *testing.T) {
	ResetMetrics()
	defer ResetMetrics()
	calls := 0
	err := storeRetry(context.Background(), func() error {
		calls++
		return syscall.EIO // transient every time
	})
	if calls != storeRetryAttempts {
		t.Errorf("transient op ran %d times, want %d", calls, storeRetryAttempts)
	}
	if !errors.Is(err, syscall.EIO) {
		t.Errorf("final error = %v", err)
	}
	if m := Metrics(); m.StoreRetries != storeRetryAttempts-1 {
		t.Errorf("StoreRetries = %d, want %d", m.StoreRetries, storeRetryAttempts-1)
	}
}

func TestStoreRetryNonTransientFailsFast(t *testing.T) {
	calls := 0
	sentinel := errors.New("corrupt")
	if err := storeRetry(context.Background(), func() error {
		calls++
		return sentinel
	}); !errors.Is(err, sentinel) || calls != 1 {
		t.Errorf("non-transient: %d calls, err %v", calls, err)
	}
	calls = 0
	if err := storeRetry(context.Background(), func() error {
		calls++
		return nil
	}); err != nil || calls != 1 {
		t.Errorf("success: %d calls, err %v", calls, err)
	}
}

// TestStoreRetryContextCancel pins the shutdown contract: a canceled
// context aborts the backoff sleep immediately and the returned error
// carries both the op error and the cancellation.
func TestStoreRetryContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	start := time.Now()
	err := storeRetry(ctx, func() error {
		calls++
		return syscall.EIO
	})
	if calls != 1 {
		t.Errorf("op ran %d times under a canceled context, want 1", calls)
	}
	if !errors.Is(err, syscall.EIO) || !errors.Is(err, context.Canceled) {
		t.Errorf("joined error missing a side: %v", err)
	}
	// The full backoff schedule is ~10ms+; cancellation must not sit
	// through it. Generous bound to stay robust on loaded CI machines.
	if d := time.Since(start); d > time.Second {
		t.Errorf("canceled retry took %s", d)
	}
}

// TestStoreRetryNilContext: a nil context (no sweep context attached)
// must behave like Background, not panic.
func TestStoreRetryNilContext(t *testing.T) {
	calls := 0
	err := storeRetry(nil, func() error { //nolint:staticcheck // nil ctx is the documented default seam
		calls++
		if calls < 2 {
			return syscall.EAGAIN
		}
		return nil
	})
	if err != nil || calls != 2 {
		t.Errorf("nil-ctx retry: %d calls, err %v", calls, err)
	}
}

// TestStoreRetryBackoffDesynchronizes samples the jittered sleeps via
// wall time: two retries under the 2ms/8ms equal-jitter schedule must
// finish within the schedule's bounds (1ms+4ms min, 2ms+8ms max, plus
// scheduling slack) — catching a regression to unjittered fixed sleeps
// would need statistics, so this pins only the envelope.
func TestStoreRetryBackoffEnvelope(t *testing.T) {
	start := time.Now()
	storeRetry(context.Background(), func() error { return syscall.EIO })
	d := time.Since(start)
	if d < 5*time.Millisecond {
		t.Errorf("retry schedule completed in %s, faster than the minimum backoff", d)
	}
	if d > 2*time.Second {
		t.Errorf("retry schedule took %s", d)
	}
}

// TestOnOutcomeHook pins the fabric worker's streaming seam: every
// journaled outcome is surfaced through Params.OnOutcome with the
// entry's cache key, including concurrent runs.
func TestOnOutcomeHook(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	ResetMetrics()
	defer ResetMetrics()
	var mu sync.Mutex
	seen := map[string]JournalEntry{}
	p := testParams()
	p.Workers = 2
	p.OnOutcome = func(e JournalEntry, res *gpu.Result) {
		if res == nil || e.Cycles != res.Cycles {
			t.Errorf("OnOutcome entry cycles %d do not match result", e.Cycles)
		}
		mu.Lock()
		seen[e.FP] = e
		mu.Unlock()
	}
	jobs := []Job{
		{Workload: "pathfinder", Variant: "a"},
		{Workload: "nw", Variant: "b"},
	}
	if _, err := runMany(p, jobs); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 {
		t.Fatalf("OnOutcome fired for %d entries, want 2", len(seen))
	}
	for k, e := range seen {
		if e.Status != "ok" || e.FP != k || e.Attempts != 1 {
			t.Errorf("unexpected entry %+v", e)
		}
	}
}
