package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/config"
	"repro/internal/faultinject"
	"repro/internal/gpu"
	"repro/internal/resultstore"
)

// Harness-level drills for the transactional result store: crash-fault
// sweeps through real memoRun/journalRecord commits, mirror repair
// through the cache path, and the journal's rotation and concurrent-
// append contracts. The store's own kill-point property test lives in
// internal/resultstore; these tests prove the same guarantees hold
// end-to-end through the harness.

// TestJournalRotateNoClobber is the regression test for the rotation
// clobbering bug: two successive foreign-journal rotations used to both
// target path+".old", silently destroying the first superseded sweep's
// bytes. Every rotation must land on a fresh name.
func TestJournalRotateNoClobber(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	open := func(scale int) {
		jl, err := OpenJournal(path, JournalMeta{Scale: scale, Dilute: 60, Config: "small"}, false)
		if err != nil {
			t.Fatalf("open scale=%d: %v", scale, err)
		}
		jl.Record(JournalEntry{FP: fmt.Sprintf("fp-scale-%d", scale), Status: "ok", Attempts: 1})
		jl.Close()
	}
	open(1) // original sweep
	open(2) // foreign: rotates scale=1 to .old
	open(3) // foreign again: must NOT clobber .old

	wantScale := func(p string, scale int) {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("rotated journal missing: %v", err)
		}
		want := fmt.Sprintf(`"scale":%d`, scale)
		if !strings.Contains(string(b), want) {
			t.Fatalf("%s does not hold the scale=%d sweep:\n%s", p, scale, b)
		}
	}
	wantScale(path+".old", 1)
	wantScale(path+".old.1", 2)
	wantScale(path, 3)
}

// TestJournalConcurrentAppendsNoInterleave opens the same journal from
// two handles (two simulated processes sharing a store directory) and
// hammers Record from both: O_APPEND single-write appends may interleave
// lines but must never interleave bytes within one, so every line must
// parse as a complete entry from exactly one writer.
func TestJournalConcurrentAppendsNoInterleave(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	meta := JournalMeta{Scale: 1, Dilute: 60, Config: "small"}
	a, err := OpenJournal(path, meta, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OpenJournal(path, meta, false) // loads the matching header, appends
	if err != nil {
		t.Fatal(err)
	}

	const perWriter = 200
	var wg sync.WaitGroup
	for _, w := range []struct {
		jl  *Journal
		tag string
	}{{a, "aaaa"}, {b, "bbbb"}} {
		wg.Add(1)
		go func(jl *Journal, tag string) {
			defer wg.Done()
			// A long recognizable payload makes any byte interleaving
			// corrupt the JSON or pollute the tag.
			filler := strings.Repeat(tag, 100)
			for i := 0; i < perWriter; i++ {
				jl.Record(JournalEntry{
					FP: fmt.Sprintf("%s-%03d", tag, i), Workload: "vecadd",
					Status: "ok", Attempts: 1, Error: filler,
				})
			}
		}(w.jl, w.tag)
	}
	wg.Wait()
	a.Close()
	b.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) != 1+2*perWriter {
		t.Fatalf("journal holds %d lines, want header + %d entries", len(lines), 2*perWriter)
	}
	for i, ln := range lines[1:] {
		var e JournalEntry
		if err := json.Unmarshal([]byte(ln), &e); err != nil {
			t.Fatalf("line %d is not one complete entry (byte interleaving?): %v\n%s", i+1, err, ln)
		}
		tag := e.FP[:4]
		if tag != "aaaa" && tag != "bbbb" {
			t.Fatalf("line %d carries a mixed fp %q", i+1, e.FP)
		}
		if e.Error != strings.Repeat(tag, 100) {
			t.Fatalf("line %d mixes payloads from both writers", i+1)
		}
	}
}

// drillJobs is the crash-drill sweep shape: one workload under two
// policies, heavily diluted, with distinct fingerprints.
func drillJobs() (Params, []Job) {
	p := Params{Scale: 1, Config: config.Small(), Dilute: 60}
	jobs := policyJobs([]string{"vecadd"},
		[]config.Policy{config.PolicyBaseline, config.PolicyVT})
	return p, jobs
}

// drillKeys returns the cache keys (journal FPs) of the drill jobs.
func drillKeys(t *testing.T, p Params, jobs []Job) []string {
	keys := make([]string, len(jobs))
	for i, j := range jobs {
		cfg := p.Config
		j.Mutate(&cfg)
		fp, err := fingerprint(j.Workload, p.Scale, p.Dilute, &cfg, p.Sampling)
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = cacheKey(fp)
	}
	return keys
}

// journalOKSet parses a journal file and returns the FPs whose latest
// recorded status is "ok". Duplicate lines (the store's at-least-once
// append replay after roll-forward recovery) collapse naturally.
func journalOKSet(t *testing.T, path string) map[string]bool {
	out := map[string]bool{}
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return out
		}
		t.Fatal(err)
	}
	for _, ln := range strings.Split(string(raw), "\n") {
		var e JournalEntry
		if json.Unmarshal([]byte(ln), &e) != nil || e.FP == "" {
			continue
		}
		if e.Status == "ok" {
			out[e.FP] = true
		} else {
			delete(out, e.FP)
		}
	}
	return out
}

// runDrillSweep executes the drill jobs sequentially through memoRun
// under the given Params, stopping at a simulated process death
// (*faultinject.StoreKill) like a real crash would. Returns whether the
// sweep was killed and the per-job results gathered before death.
func runDrillSweep(t *testing.T, p Params, jobs []Job) (killed bool, results []*gpu.Result) {
	results = make([]*gpu.Result, len(jobs))
	for i, j := range jobs {
		res, died := func() (r *gpu.Result, died bool) {
			defer func() {
				if rec := recover(); rec != nil {
					if _, ok := rec.(*faultinject.StoreKill); ok {
						died = true
						return
					}
					panic(rec)
				}
			}()
			r, err := memoRun(p, j)
			if err != nil {
				t.Fatalf("%s/%s: %v", j.Workload, j.Variant, err)
			}
			return r, false
		}()
		if died {
			return true, results
		}
		results[i] = res
	}
	return false, results
}

// TestStoreCrashDrillResume is the satellite-3 property test, end to end
// through the harness: enumerate every store filesystem operation of a
// two-job journaled sweep commit sequence, then re-run the sweep once
// per operation with a kill injected exactly there. After every kill,
// reopening the store recovers to a consistent state (Verify clean, a
// journal "ok" line if and only if its Result is servable) and -resume
// re-executes exactly the jobs whose commits had not landed.
func TestStoreCrashDrillResume(t *testing.T) {
	defer ResetMetrics()
	base, jobs := drillJobs()
	keys := drillKeys(t, base, jobs)

	// Reference results from an uncached clean sweep.
	ResetMetrics()
	_, refs := runDrillSweep(t, base, jobs)

	// Pass 1: record the operation trace of a clean cached sweep.
	recorder := faultinject.NewStoreRecorder()
	rp := base
	rp.CacheDir = filepath.Join(t.TempDir(), "primary")
	rp.MirrorDir = filepath.Join(t.TempDir(), "mirror")
	rp.StoreFault = recorder
	ResetMetrics()
	runJournaled := func(p Params, resume bool) (killed bool, res []*gpu.Result) {
		jl, err := OpenJournal(filepath.Join(p.CacheDir, JournalFileName),
			JournalMeta{Scale: p.Scale, Dilute: p.Dilute, Config: "small"}, resume)
		if err != nil {
			t.Fatalf("open journal (resume=%v): %v", resume, err)
		}
		defer jl.Close()
		p.Journal = jl
		p.Resume = resume
		return runDrillSweep(t, p, jobs)
	}
	runJournaled(rp, false)
	trace := recorder.Trace()
	if len(trace) < 15 {
		t.Fatalf("trace too short to be a real commit sequence (%d ops):\n%s",
			len(trace), strings.Join(trace, "\n"))
	}

	kinds := []faultinject.StoreFaultKind{
		faultinject.StoreCrash, faultinject.StoreCrashAfter, faultinject.StoreTruncate,
	}
	for point := 0; point < len(trace); point++ {
		kind := kinds[point%len(kinds)]
		t.Run(fmt.Sprintf("op%02d-%s", point, kind), func(t *testing.T) {
			p := base
			p.CacheDir = filepath.Join(t.TempDir(), "primary")
			p.MirrorDir = filepath.Join(t.TempDir(), "mirror")
			spec := faultinject.StoreSpec{Op: faultinject.StoreOpAny, N: point, Kind: kind}
			hook := spec.StoreHook()
			p.StoreFault = hook

			ResetMetrics()
			killed, _ := runJournaled(p, false)
			if !killed || !hook.Fired() {
				t.Fatalf("kill point %d did not fire (killed=%v fired=%v)", point, killed, hook.Fired())
			}

			// Reboot: drop every in-process cache and handle, then validate
			// the recovered on-disk state directly.
			ResetMetrics()
			st, err := resultstore.Open(resultstore.Options{Dir: p.CacheDir, Mirror: p.MirrorDir})
			if err != nil {
				t.Fatalf("reopen after kill: %v", err)
			}
			okSet := journalOKSet(t, filepath.Join(p.CacheDir, JournalFileName))
			for i, k := range keys {
				_, gerr := st.Get(resultstore.KindResult, k)
				if okSet[k] && gerr != nil {
					t.Errorf("job %d: journal says ok but the Result is not servable: %v", i, gerr)
				}
				if !okSet[k] && gerr == nil {
					t.Errorf("job %d: Result cached but the journal never heard of it", i)
				}
			}
			rep := st.Verify()
			if len(rep.Damaged) > 0 || len(rep.Unrecoverable) > 0 {
				t.Fatalf("store inconsistent after recovery: %+v", rep)
			}
			st.Close()
			if t.Failed() {
				return
			}

			// Resume: exactly the uncommitted jobs re-execute, and the sweep
			// converges to the reference results with every job journaled ok.
			committed := 0
			for _, k := range keys {
				if okSet[k] {
					committed++
				}
			}
			ResetMetrics()
			p.StoreFault = nil
			p.Resume = true
			killed, res := runJournaled(p, true)
			if killed {
				t.Fatal("resume sweep died with no fault installed")
			}
			if m := Metrics(); m.Executed != len(jobs)-committed {
				t.Fatalf("resume executed %d jobs, want exactly the %d uncommitted ones (metrics %+v)",
					m.Executed, len(jobs)-committed, m)
			}
			for i := range jobs {
				if !reflect.DeepEqual(res[i], refs[i]) {
					t.Fatalf("job %d: resumed result differs from the reference run", i)
				}
			}
			finalOK := journalOKSet(t, filepath.Join(p.CacheDir, JournalFileName))
			for i, k := range keys {
				if !finalOK[k] {
					t.Fatalf("job %d missing from the journal after resume", i)
				}
			}
		})
	}
}

// TestHarnessMirrorRepair drives replication and heal-on-read through
// the cache path: a journaled run replicates its Result and journal
// line to the mirror; at-rest corruption of the primary object is then
// healed bit-identically during an ordinary cached sweep.
func TestHarnessMirrorRepair(t *testing.T) {
	defer ResetMetrics()
	p, jobs := drillJobs()
	j := jobs[0]
	p.CacheDir = filepath.Join(t.TempDir(), "primary")
	p.MirrorDir = filepath.Join(t.TempDir(), "mirror")

	ResetMetrics()
	jl, err := OpenJournal(filepath.Join(p.CacheDir, JournalFileName),
		JournalMeta{Scale: p.Scale, Dilute: p.Dilute, Config: "small"}, false)
	if err != nil {
		t.Fatal(err)
	}
	p.Journal = jl
	fresh, err := memoRun(p, j)
	if err != nil {
		t.Fatal(err)
	}
	jl.Close()

	// The Result object and the journal entry line replicated.
	primObjs, _ := filepath.Glob(filepath.Join(p.CacheDir, "vtsim-*.json"))
	if len(primObjs) != 1 {
		t.Fatalf("primary holds %d result objects, want 1", len(primObjs))
	}
	mirObj := filepath.Join(p.MirrorDir, filepath.Base(primObjs[0]))
	pb, err := os.ReadFile(primObjs[0])
	if err != nil {
		t.Fatal(err)
	}
	mb, err := os.ReadFile(mirObj)
	if err != nil {
		t.Fatalf("mirror replica missing: %v", err)
	}
	if string(pb) != string(mb) {
		t.Fatal("mirror replica is not bit-identical to the primary object")
	}
	key := drillKeys(t, p, jobs)[0]
	if ok := journalOKSet(t, filepath.Join(p.MirrorDir, JournalFileName)); !ok[key] {
		t.Fatal("journal entry line did not replicate to the mirror")
	}

	// Flip a byte of the primary at rest; the next cached sweep must heal
	// it from the mirror and serve the verified payload without
	// re-simulating.
	flipped := append([]byte(nil), pb...)
	flipped[len(flipped)/2] ^= 0x04
	if err := os.WriteFile(primObjs[0], flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	ResetMetrics()
	p.Journal = nil
	cached, err := memoRun(p, j)
	if err != nil {
		t.Fatal(err)
	}
	m := Metrics()
	if m.Executed != 0 || m.StoreHits != 1 || m.StoreRepairs != 1 {
		t.Fatalf("corruption was not healed as a cache hit: %+v", m)
	}
	if !reflect.DeepEqual(fresh, cached) {
		t.Fatal("healed result differs from the original")
	}
	healed, err := os.ReadFile(primObjs[0])
	if err != nil {
		t.Fatal(err)
	}
	if string(healed) != string(mb) {
		t.Fatal("repair did not restore the primary bit-identically from the mirror")
	}
}

// TestHarnessLegacyCacheDirCompat seeds a cache directory the way
// pre-store builds laid it out — a bare vtsim-<key>.json with no
// .vtstore metadata — and verifies the migrated harness serves it as a
// hit.
func TestHarnessLegacyCacheDirCompat(t *testing.T) {
	defer ResetMetrics()
	p, jobs := drillJobs()
	j := jobs[0]
	p.CacheDir = t.TempDir()

	ResetMetrics()
	fresh, err := memoRun(p, j)
	if err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(p.CacheDir, "vtsim-*.json"))
	if len(files) != 1 {
		t.Fatalf("cache dir holds %d entries, want 1", len(files))
	}
	b, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	legacyDir := t.TempDir()
	if err := os.WriteFile(filepath.Join(legacyDir, filepath.Base(files[0])), b, 0o644); err != nil {
		t.Fatal(err)
	}

	ResetMetrics()
	p.CacheDir = legacyDir
	cached, err := memoRun(p, j)
	if err != nil {
		t.Fatal(err)
	}
	if m := Metrics(); m.Executed != 0 || m.StoreHits != 1 {
		t.Fatalf("legacy entry not served as a hit: %+v", m)
	}
	if !reflect.DeepEqual(fresh, cached) {
		t.Fatal("legacy round-trip altered the result")
	}
}

// TestHarnessTransientStoreRetry injects a one-shot EIO into the first
// store write of a cached run: the bounded retry-with-backoff must
// absorb it (counted in StoreRetries), the commit must land, and a
// fresh invocation must hit the cache.
func TestHarnessTransientStoreRetry(t *testing.T) {
	defer ResetMetrics()
	p, jobs := drillJobs()
	j := jobs[0]
	p.CacheDir = t.TempDir()
	spec := faultinject.StoreSpec{Op: faultinject.StoreOpWrite, N: 0, Kind: faultinject.StoreEIO}
	hook := spec.StoreHook()
	p.StoreFault = hook

	ResetMetrics()
	if _, err := memoRun(p, j); err != nil {
		t.Fatal(err)
	}
	if m := Metrics(); m.StoreRetries != 1 {
		t.Fatalf("transient EIO not absorbed by the retry ladder: %+v", m)
	}
	if !hook.Fired() {
		t.Fatal("injected EIO never fired")
	}

	ResetMetrics()
	p.StoreFault = nil
	if _, err := memoRun(p, j); err != nil {
		t.Fatal(err)
	}
	if m := Metrics(); m.Executed != 0 || m.StoreHits != 1 {
		t.Fatalf("retried commit did not land: %+v", m)
	}
}
