package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"strings"
	"time"

	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/resultstore"
	"repro/internal/telemetry"
)

// The run supervisor wraps every simulation the harness executes:
//
//   - a panic anywhere in the engine (worker panics are re-raised on the
//     coordinator goroutine) is recovered with its stack instead of
//     killing the whole sweep;
//   - Params.RunTimeout bounds each run's wall-clock time through
//     gpu.Options.Ctx;
//   - a run that panicked or tripped an invariant is retried once in safe
//     mode (DisableIssueFastPath, Parallelism=1) — those two failure
//     classes are the ones a fast-path or parallel-engine bug can cause,
//     and the safe engine path cannot hit them. The downgrade is counted
//     in RunMetrics and surfaced in the final report;
//   - a run that still fails becomes a RunFailure: a structured repro
//     bundle (fingerprint, config JSON, stack, AbortDiagnostic) written
//     to Params.FailDir, while the rest of the sweep keeps running.

// RunFailure is the forensic record of one simulation that failed after
// the retry ladder. It is what a repro bundle contains.
type RunFailure struct {
	Workload    string `json:"workload"`
	Variant     string `json:"variant,omitempty"`
	Fingerprint string `json:"fingerprint"`
	// Config is the exact hardware configuration of the failed run, so
	// the bundle alone reproduces it.
	Config json.RawMessage `json:"config,omitempty"`
	Scale  int             `json:"scale"`
	Dilute int             `json:"dilute,omitempty"`

	Error string `json:"error"`
	// Stack is the goroutine stack at panic recovery (panics only).
	Stack string `json:"stack,omitempty"`
	// Diagnostic is the gpu abort snapshot (deadlock/max-cycles/deadline/
	// invariant aborts only).
	Diagnostic *gpu.AbortDiagnostic `json:"diagnostic,omitempty"`

	Attempts        int    `json:"attempts"`
	SafeModeRetried bool   `json:"safe_mode_retried"`
	SafeModeError   string `json:"safe_mode_error,omitempty"`
	Time            string `json:"time"`
}

// FailedRunError is the error a supervised run returns after exhausting
// the retry ladder; runMany joins these into the sweep error while the
// remaining jobs keep running.
type FailedRunError struct {
	Failure *RunFailure
}

func (e *FailedRunError) Error() string {
	f := e.Failure
	return fmt.Sprintf("harness: run %s/%s failed after %d attempt(s): %s",
		f.Workload, f.Variant, f.Attempts, f.Error)
}

// attempt is the outcome of one supervised gpu.Run attempt.
type attempt struct {
	res      *gpu.Result
	err      error
	panicked bool
	stack    string
	// ck is the last prefix checkpoint the attempt captured (donor runs
	// under a capture spec only; see fork.go).
	ck *gpu.Checkpoint
}

// runAttempt performs one simulation attempt under panic recovery. The
// workload is rebuilt from scratch each attempt: a panicked run may have
// left its launch state half-mutated. A non-nil spec makes the attempt a
// checkpoint donor (capture while the fork guard holds) or a fork (resume
// from spec.ck instead of cycle zero).
func runAttempt(p Params, j Job, cfg config.GPUConfig, safeMode bool, spec *forkSpec) (a attempt) {
	eid := p.Trace.Begin(p.span, "execute", j.Workload, j.Variant)
	if safeMode {
		p.Trace.SetAttr(eid, "safe_mode", "true")
	}
	if spec != nil {
		if spec.capture {
			p.Trace.SetAttr(eid, "fork_donor", "true")
		}
		if spec.ck != nil {
			p.Trace.SetAttr(eid, "forked_from", spec.forkedFrom)
			p.Trace.SetAttr(eid, "resume_cycle", fmt.Sprint(spec.ck.Cycle))
		}
	}
	// One deferred closure handles both panic recovery and span close,
	// so the outcome attrs are final before End records the duration.
	defer func() {
		if r := recover(); r != nil {
			a.res = nil
			a.err = fmt.Errorf("panic: %v", r)
			a.panicked = true
			a.stack = string(debug.Stack())
		}
		switch {
		case a.panicked:
			p.Trace.SetAttr(eid, "outcome", "panic")
		case a.err != nil:
			p.Trace.SetAttr(eid, "outcome", "error")
		default:
			p.Trace.SetAttr(eid, "outcome", "ok")
		}
		if a.res != nil && a.res.Sampling != nil {
			p.Trace.SetAttr(eid, "sampled", "true")
		}
		if a.ck != nil {
			p.Trace.Event(eid, "fork.capture", j.Workload, j.Variant,
				"cycle", fmt.Sprint(a.ck.Cycle))
		}
		p.Trace.End(eid)
	}()
	w, err := kernels.Build(j.Workload, p.Scale)
	if err != nil {
		a.err = err
		return
	}
	if p.Dilute > 1 {
		g := w.Launch.GridDim.Size() / p.Dilute
		if g < 8 {
			g = 8
		}
		w.Launch.GridDim = isa.Dim1(g)
	}
	opts := gpu.Options{
		InitMemory:      w.Init,
		Parallelism:     p.runParallelism(),
		CheckInvariants: p.CheckInvariants,
	}
	// Fault-injected runs force the invariant checker, which sampling's
	// extrapolated issue-slot accounting cannot satisfy mid-span, so they
	// execute exactly; every other run in a sampled sweep samples. Fork
	// specs never coexist with sampling (see forkPlan and memoRun).
	injected := p.Inject != nil && p.Inject.Matches(j.Workload, j.Variant)
	if p.Sampling.Enabled() && !injected {
		opts.Sampling = p.Sampling
	}
	if safeMode {
		opts.DisableIssueFastPath = true
		opts.Parallelism = 1
	}
	if injected {
		n := 0
		if safeMode {
			n = 1
		}
		opts.FaultHook = p.Inject.Hook(n)
		// Injected corruption must be caught, not silently folded into
		// results, so injected runs always check invariants.
		opts.CheckInvariants = true
	}
	if p.RunTimeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), p.RunTimeout)
		defer cancel()
		opts.Ctx = ctx
	}
	var col *telemetry.Collector
	if p.Telemetry {
		col = telemetry.NewCollector(telemetry.Config{})
		opts.Telemetry = col
	}
	if spec != nil && spec.capture {
		if spec.at > 0 {
			opts.CheckpointAt = spec.at
		} else {
			opts.CheckpointEvery = defaultCheckpointEvery
		}
		// The guard applies to pinned captures too: a checkpoint taken
		// after the first swap depends on the donor's swap latencies and
		// must never seed other configs.
		opts.CheckpointGuard = forkGuard
		opts.OnCheckpoint = func(c *gpu.Checkpoint) { a.ck = c }
	}
	if spec != nil && spec.ck != nil {
		a.res, a.err = gpu.Resume(spec.ck, []*isa.Launch{w.Launch}, cfg, opts)
	} else {
		a.res, a.err = gpu.Run(w.Launch, cfg, opts)
	}
	if col != nil && a.err == nil {
		windows, spans := col.Totals()
		bumpMetric(func(m *RunMetrics) {
			m.TelemetryWindows += int64(windows)
			m.TelemetrySpans += int64(spans)
		})
	}
	if a.err == nil && a.res != nil && a.res.Sampling != nil {
		ss := a.res.Sampling
		bumpMetric(func(m *RunMetrics) {
			m.SampledRuns++
			m.SampledSpans += ss.Spans
			m.ExtrapolatedCycles += ss.ExtrapolatedCycles
			m.FunctionalInstrs += ss.FunctionalInstrs
			if ss.ErrorBound > m.MaxErrorBound {
				m.MaxErrorBound = ss.ErrorBound
			}
		})
	}
	return a
}

// retryable reports whether a failed attempt warrants the safe-mode
// retry. Deadlocks, cycle budgets, and wall-clock deadlines are properties
// of the simulated kernel, not the engine path, so retrying them would
// only double the cost of the same failure.
func retryable(a attempt) bool {
	if a.panicked {
		return true
	}
	d := gpu.DiagnosticOf(a.err)
	return d != nil && d.Reason == gpu.ReasonInvariant
}

// firstFailureReason labels a retryable failure for the trace event.
func firstFailureReason(a attempt) string {
	if a.panicked {
		return "panic"
	}
	return "invariant"
}

// bumpMetric applies a counter update under the metrics lock.
func bumpMetric(f func(*RunMetrics)) {
	memoMu.Lock()
	defer memoMu.Unlock()
	f(&memoStats)
}

// countFirstFailure classifies a first-attempt failure into the metrics
// and emits the matching supervisor trace event under the job span.
func countFirstFailure(p Params, j Job, a attempt) {
	bumpMetric(func(m *RunMetrics) {
		switch d := gpu.DiagnosticOf(a.err); {
		case a.panicked:
			m.Panics++
		case d != nil && d.Reason == gpu.ReasonInvariant:
			m.InvariantTrips++
		case d != nil && d.Reason == gpu.ReasonDeadline:
			m.Deadlines++
		}
	})
	switch d := gpu.DiagnosticOf(a.err); {
	case a.panicked:
		p.Trace.Event(p.span, "supervisor.panic", j.Workload, j.Variant)
	case d != nil && d.Reason == gpu.ReasonInvariant:
		p.Trace.Event(p.span, "supervisor.invariant", j.Workload, j.Variant)
	case d != nil && d.Reason == gpu.ReasonDeadline:
		p.Trace.Event(p.span, "supervisor.deadline", j.Workload, j.Variant)
	}
}

// supervisedExecute runs one job through the supervisor: attempt, retry
// ladder, journaling, and repro-bundle emission. fp may be empty when the
// config was unfingerprintable (journaling is skipped then).
func supervisedExecute(p Params, j Job, cfg config.GPUConfig, fp string) (*gpu.Result, error) {
	return supervisedExecuteFork(p, j, cfg, fp, nil)
}

// supervisedExecuteFork is supervisedExecute with an optional fork spec:
// capture checkpoints (donor) or resume from one (fork). spec.captured is
// set only from the attempt whose result is returned, so a checkpoint
// from a failed or superseded attempt never seeds forks.
func supervisedExecuteFork(p Params, j Job, cfg config.GPUConfig, fp string, spec *forkSpec) (*gpu.Result, error) {
	if p.Resume && p.Journal != nil && fp != "" &&
		p.Journal.Status(cacheKey(fp)) == "failed" {
		bumpMetric(func(m *RunMetrics) { m.ResumedFailed++ })
	}
	forkedFrom := ""
	if spec != nil {
		forkedFrom = spec.forkedFrom
	}

	first := runAttempt(p, j, cfg, false, spec)
	if first.err == nil {
		if spec != nil {
			spec.captured = first.ck
		}
		p.journalRecord(j, fp, "ok", 1, first.res, nil, forkedFrom)
		return first.res, nil
	}
	countFirstFailure(p, j, first)

	attempts := 1
	retried := false
	var second attempt
	if retryable(first) {
		bumpMetric(func(m *RunMetrics) { m.Retries++ })
		p.Trace.Event(p.span, "supervisor.retry", j.Workload, j.Variant,
			"reason", firstFailureReason(first))
		retried = true
		second = runAttempt(p, j, cfg, true, spec)
		attempts = 2
		if second.err == nil {
			// The safe path succeeded where the fast path / parallel
			// engine failed: record the downgrade and keep the sweep
			// moving with the safe result.
			bumpMetric(func(m *RunMetrics) { m.Degraded++ })
			if spec != nil {
				spec.captured = second.ck
			}
			p.journalRecord(j, fp, "degraded", attempts, second.res, nil, forkedFrom)
			return second.res, nil
		}
	}

	f := &RunFailure{
		Workload:        j.Workload,
		Variant:         j.Variant,
		Fingerprint:     fp,
		Scale:           p.Scale,
		Dilute:          p.Dilute,
		Error:           first.err.Error(),
		Stack:           first.stack,
		Diagnostic:      gpu.DiagnosticOf(first.err),
		Attempts:        attempts,
		SafeModeRetried: retried,
		Time:            time.Now().UTC().Format(time.RFC3339),
	}
	if retried {
		f.SafeModeError = second.err.Error()
		if f.Stack == "" {
			f.Stack = second.stack
		}
		if f.Diagnostic == nil {
			f.Diagnostic = gpu.DiagnosticOf(second.err)
		}
	}
	if b, err := json.Marshal(&cfg); err == nil {
		f.Config = b
	}
	writeBundle(p.FailDir, f)
	bumpMetric(func(m *RunMetrics) { m.Failures++ })
	p.journalRecord(j, fp, "failed", attempts, nil, first.err, forkedFrom)
	return nil, &FailedRunError{Failure: f}
}

// buildJournalEntry assembles the completion-log line for one run
// outcome. The same shape travels the JSONL journal, the result-store
// transaction, and — in fabric mode — the wire between a worker and the
// coordinator's distributed completion log.
func buildJournalEntry(j Job, fp, status string, attempts int, res *gpu.Result, err error, forkedFrom string) JournalEntry {
	e := JournalEntry{
		FP:         cacheKey(fp),
		Workload:   j.Workload,
		Variant:    j.Variant,
		Status:     status,
		Attempts:   attempts,
		ForkedFrom: forkedFrom,
		Time:       time.Now().UTC().Format(time.RFC3339),
	}
	if res != nil {
		e.Cycles = res.Cycles
		if res.Sampling != nil {
			e.ErrorBound = res.Sampling.ErrorBound
		}
	}
	if err != nil {
		e.Error = err.Error()
	}
	return e
}

// journalRecord persists one fingerprintable run's outcome. With a
// result store attached (Params.CacheDir), the memoized Result and the
// completion-journal line commit as a single store transaction —
// all-or-nothing, replicated to the mirror, retried with backoff on
// transient I/O — so a crash can never leave a journal entry whose
// Result is missing or a cached Result the journal never heard of.
// Without a store, the journal line is appended directly as before.
func (p Params) journalRecord(j Job, fp, status string, attempts int, res *gpu.Result, err error, forkedFrom string) {
	if fp == "" {
		return
	}
	entry := buildJournalEntry(j, fp, status, attempts, res, err, forkedFrom)
	if p.OnOutcome != nil {
		p.OnOutcome(entry, res)
	}
	// Faulted (or degraded-by-injection) outcomes must never be served to
	// an un-injected sweep, so injected runs journal but never cache.
	injected := p.Inject != nil && p.Inject.Matches(j.Workload, j.Variant)
	p.commitOutcome(j, fp, entry, res, status != "failed" && !injected)
}

// RecordRemote commits a remotely executed job's outcome into this
// process's journal and result store exactly as a local run would: the
// Result and the completion-log line land in one store transaction.
// This is how the fabric coordinator owns the distributed completion
// log — workers stream outcomes back, the coordinator makes them
// durable, and a worker crash loses nothing that was acknowledged. fp
// is the raw content fingerprint (the store envelope carries it for
// content verification); e.FP must be its cache key.
func RecordRemote(p Params, fp string, e JournalEntry, res *gpu.Result) {
	if fp == "" {
		return
	}
	j := Job{Workload: e.Workload, Variant: e.Variant}
	p.commitOutcome(j, fp, e, res, e.Status != "failed")
}

// commitOutcome writes one outcome to the journal and, when allowed and
// available, the result store — atomically when both are present.
func (p Params) commitOutcome(j Job, fp string, entry JournalEntry, res *gpu.Result, cacheable bool) {
	var je *JournalEntry
	if p.Journal != nil {
		je = &entry
	}
	st := storeFor(p)
	storeResult := st != nil && res != nil && cacheable
	if st == nil || (!storeResult && je == nil) {
		if je != nil {
			p.Journal.Record(*je)
		}
		return
	}
	tx := st.Begin()
	if storeResult {
		if b, merr := json.Marshal(diskEntry{Version: diskCacheVersion, Fingerprint: fp, Result: res}); merr == nil {
			tx.Put(resultstore.KindResult, cacheKey(fp), b)
		}
	}
	if je != nil {
		if b, merr := json.Marshal(je); merr == nil {
			tx.Append(JournalFileName, b)
		}
	}
	txSpan := p.Trace.Begin(p.span, "store.tx", j.Workload, j.Variant)
	commitStoreTx(p.ctx(), tx)
	// File the commit protocol's self-timed WAL phases (stage, commit,
	// apply, replicate) as children of the transaction span.
	for _, ph := range tx.Phases() {
		p.Trace.Record(txSpan, "store."+ph.Name, j.Workload, j.Variant, ph.Start, ph.Dur)
	}
	p.Trace.End(txSpan)
	if je != nil {
		// The line is durable (or best-effort failed) via the transaction;
		// only the in-memory status map still needs the update.
		p.Journal.noteStatus(*je)
	}
}

// writeBundle persists a repro bundle into dir as one pretty-printed JSON
// file. Best-effort: failing to record a failure must not mask it.
func writeBundle(dir string, f *RunFailure) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return
	}
	name := fmt.Sprintf("failure-%s-%s.json",
		sanitizeName(f.Workload), sanitizeName(f.Variant))
	if f.Fingerprint != "" {
		name = fmt.Sprintf("failure-%s-%s-%s.json",
			sanitizeName(f.Workload), sanitizeName(f.Variant), cacheKey(f.Fingerprint)[:12])
	}
	os.WriteFile(filepath.Join(dir, name), append(b, '\n'), 0o644)
}

// sanitizeName makes a workload/variant label filename-safe.
func sanitizeName(s string) string {
	if s == "" {
		return "run"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, s)
}
