package harness

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/resultstore"
	"repro/internal/sweepobs"
)

// Sweep-trace persistence: the span dump of a traced sweep is stored
// through the result store as a vtart- artifact, so traces commit with
// the same durability (WAL, checksums, mirror replication) as results
// and survive for later `vtreport -tracepath <storedir>` analysis.

// SweepTraceArtifactKey is the artifact key (and so the on-disk object
// name, vtart-sweeptrace.json) of the persisted sweep trace. One per
// store: a re-run overwrites the previous sweep's trace.
const SweepTraceArtifactKey = "sweeptrace"

// PersistSweepTrace commits the dump into p's result store as a
// segmented artifact blob. No-op without a store or a dump; returns the
// commit error so the caller can report (not fail) the sweep.
func PersistSweepTrace(p Params, d *sweepobs.Dump) error {
	st := storeFor(p)
	if st == nil || d == nil {
		return nil
	}
	b, err := json.Marshal(d)
	if err != nil {
		return err
	}
	tx := st.Begin()
	if err := tx.PutBlob(resultstore.KindArtifact, SweepTraceArtifactKey, bytes.NewReader(b)); err != nil {
		return err
	}
	return storeRetry(p.ctx(), tx.Commit)
}

// LoadSweepTrace reads a persisted sweep trace back from a store
// directory (vtreport's -tracepath with a directory argument). The
// store is opened read-mostly and closed again; mirror may be empty.
func LoadSweepTrace(dir, mirror string) (*sweepobs.Dump, error) {
	st, err := resultstore.Open(resultstore.Options{Dir: dir, Mirror: mirror})
	if err != nil {
		return nil, fmt.Errorf("open store %s: %w", dir, err)
	}
	defer st.Close()
	b, err := st.GetBlob(resultstore.KindArtifact, SweepTraceArtifactKey)
	if err != nil {
		return nil, fmt.Errorf("read sweep trace from %s: %w", dir, err)
	}
	var d sweepobs.Dump
	if err := json.Unmarshal(b, &d); err != nil {
		return nil, fmt.Errorf("decode sweep trace: %w", err)
	}
	if d.SchemaVersion != sweepobs.DumpSchemaVersion {
		return nil, fmt.Errorf("sweep trace schema %d (want %d)", d.SchemaVersion, sweepobs.DumpSchemaVersion)
	}
	return &d, nil
}
