package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/config"
)

// swapLatJobs builds a small swap-latency sweep over one workload — the
// canonical prefix-fork shape: every job shares the run prefix up to the
// first swap.
func swapLatJobs(workload string, lats []int) []Job {
	var jobs []Job
	for _, l := range lats {
		l := l
		jobs = append(jobs, Job{
			Workload: workload,
			Variant:  fmt.Sprintf("lat%d", l),
			Mutate: func(c *config.GPUConfig) {
				c.Policy = config.PolicyVT
				c.VT.SwapOutLatency = l
				c.VT.SwapInLatency = l
			},
		})
	}
	return jobs
}

func forkTestParams() Params {
	return Params{Scale: 1, Config: config.Small(), Dilute: 40, Workers: 2}
}

// TestForkPlanGrouping pins what forkPlan marks: jobs that differ only in
// the neutralized parameters share a prefix group; jobs that differ
// structurally, or singleton groups, are left alone.
func TestForkPlanGrouping(t *testing.T) {
	p := forkTestParams()
	p.Checkpoint = true
	jobs := swapLatJobs("pathfinder", []int{0, 64, 256})
	jobs = append(jobs, Job{
		Workload: "pathfinder",
		Variant:  "bigger",
		Mutate: func(c *config.GPUConfig) {
			c.Policy = config.PolicyVT
			c.NumSMs++ // structural: its prefix differs
		},
	})
	jobs = append(jobs, Job{Workload: "nw", Variant: "solo"})

	planned := forkPlan(p, jobs)
	for i := 0; i < 3; i++ {
		if planned[i].PrefixFP == "" {
			t.Errorf("sweep job %d not marked for forking", i)
		}
		if planned[i].PrefixFP != planned[0].PrefixFP {
			t.Errorf("sweep job %d in a different prefix group", i)
		}
	}
	if planned[3].PrefixFP != "" {
		t.Error("structurally different job joined the prefix group")
	}
	if planned[4].PrefixFP != "" {
		t.Error("singleton job marked for forking")
	}

	p.Checkpoint = false
	for i, j := range forkPlan(p, jobs) {
		if j.PrefixFP != "" {
			t.Errorf("job %d marked with Checkpoint disabled", i)
		}
	}
}

// TestPrefixForkEquivalence is the correctness bar: a prefix-forked sweep
// returns results bit-identical to the same sweep run without forking,
// while executing one donor and forking everyone else.
func TestPrefixForkEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	defer ResetMetrics()
	lats := []int{0, 8, 64, 256}
	jobs := swapLatJobs("pathfinder", lats)

	ResetMetrics()
	plain, err := runMany(forkTestParams(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	plainM := Metrics()
	if plainM.Executed != len(lats) {
		t.Fatalf("plain sweep executed %d runs, want %d", plainM.Executed, len(lats))
	}

	ResetMetrics()
	p := forkTestParams()
	p.Checkpoint = true
	forked, err := runMany(p, jobs)
	if err != nil {
		t.Fatal(err)
	}
	m := Metrics()
	if m.CheckpointsCaptured != 1 {
		t.Fatalf("captured %d checkpoints, want 1 donor: %+v", m.CheckpointsCaptured, m)
	}
	if m.CheckpointHits != len(lats)-1 || m.CheckpointMisses != 0 {
		t.Fatalf("hits=%d misses=%d, want %d hits: %+v",
			m.CheckpointHits, m.CheckpointMisses, len(lats)-1, m)
	}
	if m.PrefixCyclesSaved <= 0 {
		t.Fatalf("no prefix cycles saved: %+v", m)
	}
	if m.SimCycles >= plainM.SimCycles {
		t.Fatalf("forked sweep simulated %d cycles, plain %d: forking saved nothing",
			m.SimCycles, plainM.SimCycles)
	}

	for k, ref := range plain {
		got := forked[k]
		if got == nil {
			t.Fatalf("%v missing from forked sweep", k)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("%v: forked result diverged from plain run:\nplain:  cycles=%d vt=%+v\nforked: cycles=%d vt=%+v",
				k, ref.Cycles, ref.VT, got.Cycles, got.VT)
		}
	}
}

// TestPrefixForkDiskCheckpoint covers the cross-process path: the donor
// persists its checkpoint in the cache dir, and a later invocation (the
// in-memory caches reset, the cached Results removed) forks every sweep
// point from disk without re-simulating any prefix.
func TestPrefixForkDiskCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	defer ResetMetrics()
	lats := []int{0, 64, 256}
	jobs := swapLatJobs("pathfinder", lats)
	dir := t.TempDir()
	p := forkTestParams()
	p.Checkpoint = true
	p.CacheDir = dir

	ResetMetrics()
	first, err := runMany(p, jobs)
	if err != nil {
		t.Fatal(err)
	}
	cks, _ := filepath.Glob(filepath.Join(dir, "vtck-*.json"))
	if len(cks) != 1 {
		t.Fatalf("cache dir holds %d checkpoint files, want 1", len(cks))
	}

	// A fresh process that lost its result cache but kept the checkpoint:
	// every point forks, nobody simulates the prefix again.
	results, _ := filepath.Glob(filepath.Join(dir, "vtsim-*.json"))
	for _, f := range results {
		os.Remove(f)
	}
	ResetMetrics()
	second, err := runMany(p, jobs)
	if err != nil {
		t.Fatal(err)
	}
	m := Metrics()
	if m.CheckpointsCaptured != 0 {
		t.Fatalf("re-captured a checkpoint despite the disk copy: %+v", m)
	}
	if m.CheckpointHits != len(lats) {
		t.Fatalf("hits=%d, want all %d points to fork from disk: %+v", m.CheckpointHits, len(lats), m)
	}
	for k, ref := range first {
		if !reflect.DeepEqual(ref, second[k]) {
			t.Fatalf("%v: disk-forked result diverged", k)
		}
	}
}

// TestPrefixForkCheckpointQuarantine is the corruption regression: a
// truncated checkpoint file must be quarantined (renamed *.corrupt) and
// the sweep must fall back to full simulation with correct results.
func TestPrefixForkCheckpointQuarantine(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	defer ResetMetrics()
	lats := []int{0, 256}
	jobs := swapLatJobs("pathfinder", lats)
	dir := t.TempDir()
	p := forkTestParams()
	p.Checkpoint = true
	p.CacheDir = dir

	ResetMetrics()
	baseline, err := runMany(p, jobs)
	if err != nil {
		t.Fatal(err)
	}
	cks, _ := filepath.Glob(filepath.Join(dir, "vtck-*.json"))
	if len(cks) != 1 {
		t.Fatalf("cache dir holds %d checkpoint files, want 1", len(cks))
	}
	// Truncate mid-write, and drop the cached Results so the sweep really
	// re-executes.
	body, err := os.ReadFile(cks[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cks[0], body[:len(body)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	results, _ := filepath.Glob(filepath.Join(dir, "vtsim-*.json"))
	for _, f := range results {
		os.Remove(f)
	}

	ResetMetrics()
	again, err := runMany(p, jobs)
	if err != nil {
		t.Fatal(err)
	}
	quarantined, _ := filepath.Glob(filepath.Join(dir, "*.corrupt"))
	if len(quarantined) != 1 || !strings.Contains(quarantined[0], "vtck-") {
		t.Fatalf("truncated checkpoint not quarantined: %v", quarantined)
	}
	// The donor re-ran and re-captured; results stay bit-identical.
	m := Metrics()
	if m.CheckpointsCaptured != 1 {
		t.Fatalf("donor did not re-capture after quarantine: %+v", m)
	}
	for k, ref := range baseline {
		if !reflect.DeepEqual(ref, again[k]) {
			t.Fatalf("%v: result diverged after checkpoint quarantine", k)
		}
	}
	// And the re-capture wrote a healthy replacement.
	cks, _ = filepath.Glob(filepath.Join(dir, "vtck-*.json"))
	if len(cks) != 1 {
		t.Fatalf("cache dir holds %d checkpoint files after re-capture, want 1", len(cks))
	}
}

// TestPrefixForkAblationSpeedup is the acceptance bar for the prefix-fork
// layer: a 12-point swap-latency ablation on a full-size workload must be
// at least 1.5x faster end-to-end when prefix-forked, while every point's
// Result stays bit-identical to the unforked sweep.
func TestPrefixForkAblationSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	defer ResetMetrics()
	lats := []int{0, 4, 8, 16, 32, 48, 64, 96, 128, 192, 256, 512}
	jobs := swapLatJobs("nw", lats)
	// Workers=1 serializes the jobs so wall time measures simulated work,
	// not scheduling luck.
	p := Params{Scale: 1, Config: config.GTX480(), Dilute: 4, Workers: 1}
	// Hold an elevated minimum residency constant across the sweep (it is
	// a pre-swap scheduling parameter, so it must NOT diverge between
	// points): it pushes the first swap — and with it the latest legal
	// fork point — deep into the run, which is the regime prefix forking
	// targets. 6144 keeps nw swapping (it stops above ~7168, which would
	// make the latency ablation vacuous); the first swap then lands just
	// past the residency floor, so pinning the capture at 6000 puts the
	// fork right below the swap onset instead of wherever the periodic
	// cadence last fired.
	p.Config.VT.MinResidencyCycles = 6144
	p.ForkCycle = 6000

	ResetMetrics()
	t0 := time.Now()
	plain, err := runMany(p, jobs)
	if err != nil {
		t.Fatal(err)
	}
	plainWall := time.Since(t0)

	ResetMetrics()
	pf := p
	pf.Checkpoint = true
	t0 = time.Now()
	forked, err := runMany(pf, jobs)
	if err != nil {
		t.Fatal(err)
	}
	forkWall := time.Since(t0)

	swapping := 0
	for k, ref := range plain {
		got := forked[k]
		if got == nil {
			t.Fatalf("%v missing from forked sweep", k)
		}
		if got.Cycles != ref.Cycles {
			t.Fatalf("%v: sim_cycles diverged: plain %d, forked %d", k, ref.Cycles, got.Cycles)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("%v: forked result not DeepEqual to plain run", k)
		}
		if ref.VT.SwapsOut > 0 {
			swapping++
		}
	}
	// The sweep must actually exercise the ablated parameter: if no point
	// ever swaps, every suffix is identical and the speedup is vacuous.
	if swapping == 0 {
		t.Fatal("no point in the ablation performed any swaps; the latency sweep is vacuous")
	}
	m := Metrics()
	speedup := float64(plainWall) / float64(forkWall)
	t.Logf("plain %s, forked %s: %.2fx speedup (%d captured, %d forks, %d prefix cycles saved)",
		plainWall.Round(time.Millisecond), forkWall.Round(time.Millisecond), speedup,
		m.CheckpointsCaptured, m.CheckpointHits, m.PrefixCyclesSaved)
	if m.CheckpointHits != len(lats)-1 {
		t.Fatalf("only %d of %d points forked: %+v", m.CheckpointHits, len(lats)-1, m)
	}
	if speedup < 1.5 {
		t.Fatalf("prefix forking sped the ablation up only %.2fx, want >= 1.5x", speedup)
	}
}

// TestPrefixForkJournal verifies forked runs record which checkpoint they
// resumed from.
func TestPrefixForkJournal(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	defer ResetMetrics()
	dir := t.TempDir()
	jl, err := OpenJournal(filepath.Join(dir, "journal.jsonl"),
		JournalMeta{Scale: 1, Dilute: 40, Config: "small"}, false)
	if err != nil {
		t.Fatal(err)
	}
	defer jl.Close()

	p := forkTestParams()
	p.Checkpoint = true
	p.Journal = jl
	ResetMetrics()
	if _, err := runMany(p, swapLatJobs("pathfinder", []int{0, 64, 256})); err != nil {
		t.Fatal(err)
	}
	jl.Close()

	b, err := os.ReadFile(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	n := strings.Count(string(b), `"forked_from":"`)
	if n != 2 {
		t.Fatalf("journal records %d forked runs, want 2 (3 points, 1 donor):\n%s", n, b)
	}
	if !strings.Contains(string(b), "@") {
		t.Fatalf("forked_from lacks the @cycle marker:\n%s", b)
	}
}
